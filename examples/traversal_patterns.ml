(* Traversal patterns (the §5.4 limitation study): forward, random and
   reverse scans under Native / GiantSan / ASan, reporting metadata loads
   — the quantity wall-clock differences in Figure 11 derive from.

   Run with: dune exec examples/traversal_patterns.exe *)

module Runner = Giantsan_workload.Runner
module Traversal = Giantsan_workload.Traversal
module Table = Giantsan_util.Table

let tools =
  [
    ("Native", Runner.Native); ("GiantSan", Runner.Giantsan); ("ASan", Runner.Asan);
  ]

let patterns =
  [
    ("forward", fun san ~base ~size -> Traversal.forward san ~base ~size);
    ("random", fun san ~base ~size -> Traversal.random san ~seed:3 ~base ~size);
    ("reverse", fun san ~base ~size -> Traversal.reverse san ~base ~size);
  ]

let () =
  print_endline "== Metadata loads per full traversal of a 16 KiB buffer ==\n";
  let size = 16 * 1024 in
  let rows =
    List.map
      (fun (pname, kernel) ->
        pname
        :: List.map
             (fun (_, config) ->
               let san = Runner.make_sanitizer config in
               let base = Traversal.prepare san ~size in
               let r = kernel san ~base ~size in
               assert (r.Traversal.t_reports = 0);
               string_of_int r.Traversal.t_shadow_loads)
             tools)
      patterns
  in
  Table.print ([ "pattern"; "Native"; "GiantSan"; "ASan" ] :: rows);
  Printf.printf
    "\n%d words are traversed each time. Forward/random scans converge to\n\
     the object bound in O(log n) quasi-bound updates. The reverse scan\n\
     was the paper's documented weak spot (Figure 11c, §5.4): with a\n\
     single-sided summary it paid one underflow region check per access\n\
     (6102 loads on this pass). The MRU window history fixes that — the\n\
     first miss below a cached base extends the window downward, so the\n\
     descending stream hits cache from then on.\n"
    (size / 8);

  (* the §5.4 mitigation sketch: locating the bound once via the folded
     segments (Figure 7), then checking the whole span up front *)
  print_endline "== Mitigation: pre-locating the object end (Figure 7) ==\n";
  let san = Runner.make_sanitizer Runner.Giantsan in
  let base = Traversal.prepare san ~size in
  let module San = Giantsan_sanitizer.Sanitizer in
  let loads0 = san.San.shadow_loads () in
  (match san.San.check_region ~lo:base ~hi:(base + size) with
  | None -> ()
  | Some r -> print_endline (Giantsan_sanitizer.Report.to_string r));
  Printf.printf
    "one region check over the whole buffer costs %d loads; a reverse scan\n\
     inside that verified span then needs no further metadata at all.\n"
    (san.San.shadow_loads () - loads0)
