(* giantsan-repro: run the paper's experiments.

   Subcommands: one per table/figure, plus `all`. Each prints its rendered
   report to stdout and can optionally append to a file. *)

open Cmdliner

let write_out path body =
  match path with
  | None -> ()
  | Some p ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
    output_string oc body;
    output_string oc "\n";
    close_out oc

(* Run [f] with the telemetry subsystem live (event sink + sanitizer
   registry + span log) and write the summary JSON afterwards. *)
let with_telemetry telemetry f =
  match telemetry with
  | None -> f ()
  | Some path ->
    let module T = Giantsan_telemetry in
    let module Registry = Giantsan_sanitizer.Sanitizer.Registry in
    T.Trace.enable ();
    Registry.enable ();
    T.Span.reset ();
    Fun.protect
      ~finally:(fun () ->
        let body =
          T.Export.summary_json
            ~spans:(T.Span.completed ())
            ~tools:(Registry.snapshot ())
            ()
        in
        T.Export.write_file path body;
        Registry.disable ();
        Registry.clear ();
        T.Trace.disable ();
        Printf.eprintf "telemetry summary written to %s\n" path)
      f

let run_ids ids quick jobs out telemetry =
  with_telemetry telemetry (fun () ->
      List.iter
        (fun id ->
          let o = Giantsan_report.Experiments.run ~quick ~jobs id in
          print_string o.Giantsan_report.Experiments.o_body;
          print_newline ();
          write_out out o.Giantsan_report.Experiments.o_body)
        ids;
      0)

let quick_flag =
  let doc = "Smaller populations / fewer profiles (smoke-test mode)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Shard the parallelizable work across $(docv) domains (0 = one per \
     recommended core). Results are byte-identical for every value; only \
     wall-clock changes."
  in
  let resolve n =
    if n <= 0 then Giantsan_parallel.Pool.default_jobs () else n
  in
  Term.(
    const resolve
    $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc))

(* like [jobs_arg] but defaulting to the recommended domain count — for the
   subcommands whose whole point is the parallel sweep *)
let jobs_default_parallel =
  let doc =
    "Domain-pool size (0 = one per recommended core). Results are \
     byte-identical for every value; only wall-clock changes."
  in
  let resolve n =
    if n <= 0 then Giantsan_parallel.Pool.default_jobs () else n
  in
  Term.(
    const resolve
    $ Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc))

let out_file =
  let doc = "Append the rendered report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let telemetry_file =
  let doc =
    "Run with the telemetry subsystem enabled (event tracing, per-tool \
     metric registry, span profiling) and write the summary JSON to \
     $(docv)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE" ~doc)

let experiment_cmd id title =
  let doc = Printf.sprintf "Reproduce the paper's %s." title in
  Cmd.v
    (Cmd.info id ~doc)
    Term.(
      const (fun quick jobs out telemetry ->
          run_ids [ id ] quick jobs out telemetry)
      $ quick_flag $ jobs_arg $ out_file $ telemetry_file)

let all_cmd =
  let doc = "Run every experiment (all tables and figures)." in
  Cmd.v
    (Cmd.info "all" ~doc)
    Term.(
      const (fun quick jobs out telemetry ->
          run_ids Giantsan_report.Experiments.all_ids quick jobs out telemetry)
      $ quick_flag $ jobs_arg $ out_file $ telemetry_file)

let extras_cmd =
  let doc =
    "Run the extension experiments (encoding ablation, redzone sweep, \
     quarantine sweep)."
  in
  Cmd.v
    (Cmd.info "extras" ~doc)
    Term.(
      const (fun quick jobs out telemetry ->
          run_ids Giantsan_report.Experiments.extra_ids quick jobs out
            telemetry)
      $ quick_flag $ jobs_arg $ out_file $ telemetry_file)

let fuzz_matrix_cmd =
  let doc =
    "One-shot differential fuzzing: independent random scenarios across \
     every tool, reporting detection matrices and anomalies (the \
     pre-coverage-guided loop; see $(b,fuzz) for the evolutionary one)."
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Scenarios per population.")
  in
  Cmd.v
    (Cmd.info "fuzz-matrix" ~doc)
    Term.(
      const (fun seed count jobs out ->
          let body = Giantsan_report.Corpus_tools.fuzz ~jobs ~seed ~count () in
          print_string body;
          write_out out body;
          0)
      $ seed $ count $ jobs_arg $ out_file)

let fuzz_cmd =
  let doc =
    "Coverage-guided differential fuzzing: evolve a corpus of scenarios by \
     mutation, chase new coverage features, and shrink any cross-sanitizer \
     divergence to a minimal reproducer. Deterministic for a fixed \
     ($(b,--seed), $(b,--runs)) pair."
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Rng seed.")
  in
  let runs =
    Arg.(
      value & opt int 2000
      & info [ "runs" ] ~docv:"N" ~doc:"Mutation-execution iterations.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Shrink findings to minimal reproducers before reporting.")
  in
  let inject_misfold =
    Arg.(
      value & flag
      & info [ "inject-misfold" ]
          ~doc:
            "Plant a deliberate folding bug (an overstated degree on each \
             object's last segment) and let the fuzzer find it — the \
             subsystem's self-test.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:
            "Write every (shrunk) finding to $(docv) as a replayable corpus \
             file.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("rebuild", Giantsan_fuzz.Exec.Rebuild);
                    ("persistent", Giantsan_fuzz.Exec.Persistent) ])
          Giantsan_fuzz.Exec.Rebuild
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution profile: $(b,rebuild) constructs a fresh sanitizer \
             per exec; $(b,persistent) snapshots each tool once and \
             restores between execs (incremental shadow re-poisoning, PAC \
             salt rollback). Verdicts and findings are identical.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const (fun seed runs minimize inject_misfold corpus_dir mode out ->
          let summary =
            Giantsan_fuzz.Engine.run
              { Giantsan_fuzz.Engine.runs; seed; minimize; inject_misfold;
                mode }
          in
          let body = Giantsan_fuzz.Engine.summary_to_string summary in
          print_string body;
          write_out out body;
          (match corpus_dir with
          | None -> ()
          | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            List.iter
              (fun f ->
                Giantsan_fuzz.Corpus.save_file
                  ~trace:f.Giantsan_fuzz.Engine.f_trace
                  (Filename.concat dir
                     (f.Giantsan_fuzz.Engine.f_id ^ ".scn"))
                  f.Giantsan_fuzz.Engine.f_scenario)
              summary.Giantsan_fuzz.Engine.s_findings);
          if summary.Giantsan_fuzz.Engine.s_divergent_runs > 0 then 1 else 0)
      $ seed $ runs $ minimize $ inject_misfold $ corpus_dir $ mode
      $ out_file)

let replay_cmd =
  let doc =
    "Replay a corpus directory: parse every scenario file, run it across \
     all tools, and fail on any parse error, label drift or divergence."
  in
  let dir =
    Arg.(
      value
      & pos 0 string "test/corpus/regressions"
      & info [] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("rebuild", Giantsan_fuzz.Exec.Rebuild);
                    ("persistent", Giantsan_fuzz.Exec.Persistent) ])
          Giantsan_fuzz.Exec.Rebuild
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution profile (see $(b,fuzz --mode)). Replay output must \
             be byte-identical between modes — the CI leg compares them.")
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const (fun dir mode ->
          if not (Sys.file_exists dir && Sys.is_directory dir) then begin
            Printf.eprintf "replay: no such corpus directory: %s\n" dir;
            2
          end
          else begin
            let results = Giantsan_fuzz.Engine.replay ~mode ~dir () in
            let bad = ref 0 in
            List.iter
              (fun (name, problems) ->
                match problems with
                | [] -> Printf.printf "%-40s OK\n" name
                | ps ->
                  incr bad;
                  Printf.printf "%-40s FAIL\n" name;
                  List.iter (fun p -> Printf.printf "    %s\n" p) ps)
              results;
            Printf.printf "%d file(s), %d failing\n" (List.length results) !bad;
            if !bad > 0 then 1 else 0
          end)
      $ dir $ mode)

let trace_cmd =
  let doc =
    "Replay one corpus scenario across every sanitizer with the event \
     tracer on and print the combined NDJSON trace (events carry a \
     $(b,tool) field). Deterministic: the same file always prints \
     byte-identical lines."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.scn" ~doc:"Scenario file (corpus format).")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const (fun file ->
          match Giantsan_fuzz.Corpus.load_file file with
          | Error e ->
            Printf.eprintf "trace: %s: %s\n" file e;
            2
          | Ok sc ->
            let lines = Giantsan_fuzz.Exec.capture_trace sc in
            List.iter print_endline lines;
            if lines = [] then begin
              Printf.eprintf "trace: %s produced no events\n" file;
              1
            end
            else 0)
      $ file)

let check_ndjson_cmd =
  let doc =
    "Validate an NDJSON trace dump: every non-empty line must be one JSON \
     object with an $(b,ev) string field naming a known event kind and a \
     non-negative $(b,seq) int field."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"NDJSON file to validate.")
  in
  let lax =
    Arg.(
      value & flag
      & info [ "lax" ]
          ~doc:
            "Accept unknown $(b,ev) kinds (shape checks only) — the escape \
             hatch for dumps produced by a newer writer.")
  in
  Cmd.v
    (Cmd.info "check-ndjson" ~doc)
    Term.(
      const (fun file lax ->
          match In_channel.with_open_text file In_channel.input_all with
          | exception Sys_error e ->
            Printf.eprintf "check-ndjson: %s\n" e;
            2
          | text -> (
            match Giantsan_telemetry.Export.check_ndjson ~lax text with
            | Ok n ->
              Printf.printf "%s: %d event line(s) OK\n" file n;
              0
            | Error e ->
              Printf.eprintf "check-ndjson: %s: %s\n" file e;
              2))
      $ file $ lax)

let bench_compare_cmd =
  let doc =
    "Performance regression gate: compare a fresh BENCH_giantsan.json \
     against the committed baseline. Deterministic event counts (ops, \
     shadow loads/stores, region/fast/slow checks) must match exactly; \
     per-profile ns/op may drift within $(b,--tolerance). Wall-clock \
     bechamel groups are not gated. Exits non-zero on any violation."
  in
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Freshly generated bench JSON.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Relative ns/op tolerance (0.25 = ±25%).")
  in
  Cmd.v
    (Cmd.info "bench-compare" ~doc)
    Term.(
      const (fun baseline current tolerance ->
          let read path =
            match In_channel.with_open_text path In_channel.input_all with
            | exception Sys_error e ->
              Printf.eprintf "bench-compare: %s\n" e;
              None
            | text -> Some text
          in
          match (read baseline, read current) with
          | None, _ | _, None -> 1
          | Some b, Some c -> (
            match
              Giantsan_telemetry.Export.compare_bench ~tolerance ~baseline:b
                ~current:c
            with
            | Ok n ->
              Printf.printf
                "perf gate OK: %d profile rows within ±%.0f%% ns/op, all \
                 event counts exact\n"
                n (tolerance *. 100.0);
              0
            | Error failures ->
              Printf.eprintf "perf gate FAILED (%d violation(s)):\n"
                (List.length failures);
              List.iter (Printf.eprintf "  %s\n") failures;
              1))
      $ baseline $ current $ tolerance)

let fig11_gate_cmd =
  let doc =
    "Gate the Figure 11 deterministic rows of a bench JSON: the GiantSan \
     reverse-traversal row must settle at least $(b,--min-word-ratio) of \
     its region checks on the word path, and its ns/op must not exceed \
     ASan's on the same kernel (the historical reverse-traversal \
     regression). Exits 1 with named violations otherwise."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Bench JSON with fig11.* profile rows.")
  in
  let min_ratio =
    Arg.(
      value & opt float 0.5
      & info [ "min-word-ratio" ] ~docv:"FRAC"
          ~doc:"Minimum word_checks / region_checks on the reverse row.")
  in
  Cmd.v
    (Cmd.info "fig11-gate" ~doc)
    Term.(
      const (fun file min_ratio ->
          match In_channel.with_open_text file In_channel.input_all with
          | exception Sys_error e ->
            Printf.eprintf "fig11-gate: %s\n" e;
            2
          | text -> (
            match Giantsan_telemetry.Export.parse_bench_profiles text with
            | Error e ->
              Printf.eprintf "fig11-gate: %s: %s\n" file e;
              2
            | Ok rows -> (
              let module E = Giantsan_telemetry.Export in
              let find config =
                List.find_opt
                  (fun g ->
                    g.E.g_profile = "fig11.reverse-16KiB"
                    && g.E.g_config = config)
                  rows
              in
              match (find "giantsan", find "asan") with
              | None, _ | _, None ->
                Printf.eprintf
                  "fig11-gate: %s has no fig11.reverse-16KiB rows for both \
                   giantsan and asan\n"
                  file;
                2
              | Some gs, Some asan ->
                let count k g =
                  match List.assoc_opt k g.E.g_counts with
                  | Some v -> v
                  | None -> 0
                in
                let checks = count "region_checks" gs in
                let ratio =
                  if checks = 0 then 0.0
                  else
                    float_of_int (count "word_checks" gs)
                    /. float_of_int checks
                in
                let failures =
                  (if ratio < min_ratio then
                     [
                       Printf.sprintf
                         "reverse word-path ratio %.3f below the %.3f floor \
                          (%d of %d checks)"
                         ratio min_ratio (count "word_checks" gs) checks;
                     ]
                   else [])
                  @
                  if gs.E.g_ns_per_op > asan.E.g_ns_per_op then
                    [
                      Printf.sprintf
                        "GiantSan reverse %.2f ns/op is slower than ASan's \
                         %.2f — the fig11 regression is back"
                        gs.E.g_ns_per_op asan.E.g_ns_per_op;
                    ]
                  else []
                in
                if failures = [] then begin
                  Printf.printf
                    "fig11 gate OK: reverse word-path ratio %.3f (>= %.3f), \
                     GiantSan %.2f ns/op vs ASan %.2f\n"
                    ratio min_ratio gs.E.g_ns_per_op asan.E.g_ns_per_op;
                  0
                end
                else begin
                  Printf.eprintf "fig11 gate FAILED (%d violation(s)):\n"
                    (List.length failures);
                  List.iter (Printf.eprintf "  %s\n") failures;
                  1
                end)))
      $ file $ min_ratio)

let fuzzmode_gate_cmd =
  let doc =
    "Gate the fuzz-mode throughput rows of a bench JSON: for every backend \
     the persistent and rebuild rows must carry identical event counts \
     (mode equivalence — a restored sanitizer is indistinguishable from a \
     fresh one) and persistent must be no slower per exec; on the giantsan \
     backend the persistent/rebuild execs-per-second speedup must reach \
     $(b,--min-speedup). Exits 1 with named violations otherwise."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Bench JSON with fuzzmode.* profile rows.")
  in
  let min_speedup =
    Arg.(
      value & opt float 5.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "Minimum persistent-over-rebuild execs/sec ratio on the \
             giantsan backend.")
  in
  Cmd.v
    (Cmd.info "fuzzmode-gate" ~doc)
    Term.(
      const (fun file min_speedup ->
          match In_channel.with_open_text file In_channel.input_all with
          | exception Sys_error e ->
            Printf.eprintf "fuzzmode-gate: %s\n" e;
            2
          | text -> (
            match Giantsan_telemetry.Export.parse_bench_profiles text with
            | Error e ->
              Printf.eprintf "fuzzmode-gate: %s: %s\n" file e;
              2
            | Ok rows -> (
              let module E = Giantsan_telemetry.Export in
              let find profile config =
                List.find_opt
                  (fun g -> g.E.g_profile = profile && g.E.g_config = config)
                  rows
              in
              let configs =
                List.sort_uniq compare
                  (List.filter_map
                     (fun g ->
                       if
                         g.E.g_profile = "fuzzmode.rebuild"
                         || g.E.g_profile = "fuzzmode.persistent"
                       then Some g.E.g_config
                       else None)
                     rows)
              in
              match (configs, find "fuzzmode.rebuild" "giantsan") with
              | [], _ | _, None ->
                Printf.eprintf
                  "fuzzmode-gate: %s has no fuzzmode.* rows for the giantsan \
                   backend\n"
                  file;
                2
              | _ -> (
                let failures =
                  List.concat_map
                    (fun config ->
                      match
                        ( find "fuzzmode.rebuild" config,
                          find "fuzzmode.persistent" config )
                      with
                      | None, _ | _, None ->
                        [
                          Printf.sprintf
                            "backend %s is missing one of its two mode rows"
                            config;
                        ]
                      | Some rb, Some ps ->
                        (if rb.E.g_counts <> ps.E.g_counts then
                           [
                             Printf.sprintf
                               "backend %s: event counts differ between \
                                modes — a restored run is not equivalent \
                                to a fresh one"
                               config;
                           ]
                         else [])
                        @
                        if ps.E.g_ns_per_op > rb.E.g_ns_per_op then
                          [
                            Printf.sprintf
                              "backend %s: persistent %.1f ns/exec is \
                               slower than rebuild %.1f"
                              config ps.E.g_ns_per_op rb.E.g_ns_per_op;
                          ]
                        else [])
                    configs
                  @
                  match
                    ( find "fuzzmode.rebuild" "giantsan",
                      find "fuzzmode.persistent" "giantsan" )
                  with
                  | Some rb, Some ps
                    when ps.E.g_ns_per_op > 0.0
                         && rb.E.g_ns_per_op /. ps.E.g_ns_per_op < min_speedup
                    ->
                    [
                      Printf.sprintf
                        "giantsan speedup %.2fx below the %.2fx floor \
                         (rebuild %.0f execs/sec, persistent %.0f)"
                        (rb.E.g_ns_per_op /. ps.E.g_ns_per_op)
                        min_speedup
                        (1e9 /. rb.E.g_ns_per_op)
                        (1e9 /. ps.E.g_ns_per_op);
                    ]
                  | _ -> []
                in
                match failures with
                | [] ->
                  let rb = Option.get (find "fuzzmode.rebuild" "giantsan")
                  and ps =
                    Option.get (find "fuzzmode.persistent" "giantsan")
                  in
                  Printf.printf
                    "fuzzmode gate OK: %d backend(s), counts identical \
                     across modes; giantsan %.0f execs/sec persistent vs \
                     %.0f rebuild (%.2fx >= %.2fx)\n"
                    (List.length configs)
                    (1e9 /. ps.E.g_ns_per_op)
                    (1e9 /. rb.E.g_ns_per_op)
                    (rb.E.g_ns_per_op /. ps.E.g_ns_per_op)
                    min_speedup;
                  0
                | _ ->
                  Printf.eprintf "fuzzmode gate FAILED (%d violation(s)):\n"
                    (List.length failures);
                  List.iter (Printf.eprintf "  %s\n") failures;
                  1))))
      $ file $ min_speedup)

let sweep_cmd =
  let module Sweep = Giantsan_parallel.Sweep in
  let module Merge = Giantsan_parallel.Merge in
  let module Specgen = Giantsan_workload.Specgen in
  let module Profiles = Giantsan_workload.Profiles in
  let module Runner = Giantsan_workload.Runner in
  let doc =
    "Run the full profile x config matrix on a domain pool and print a \
     deterministic summary. Event counts, merged counters and the \
     $(b,--ndjson) trace are byte-identical for every $(b,--jobs) value \
     and any $(b,--shuffle) submission order — the CI determinism leg \
     diffs exactly this."
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Reduced scale (4 phases / 128 iterations per profile — the \
             same shrink the bench profile sweep uses).")
  in
  let shuffle =
    Arg.(
      value
      & opt (some int) None
      & info [ "shuffle" ] ~docv:"SEED"
          ~doc:
            "Submit the cells to the pool in a seeded random order instead \
             of canonical order (results are de-permuted back, so output \
             must not change — that is the point).")
  in
  let ndjson =
    Arg.(
      value
      & opt (some string) None
      & info [ "ndjson" ] ~docv:"FILE"
          ~doc:
            "Capture each cell's trace in a private per-shard ring and \
             write the deterministically merged NDJSON to $(docv).")
  in
  let capacity =
    Arg.(
      value & opt int 1024
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Per-shard trace ring capacity (with $(b,--ndjson)).")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const (fun jobs quick shuffle ndjson capacity ->
          let profiles =
            if quick then
              List.map
                (fun p -> { p with Specgen.p_phases = 4; p_iters = 128 })
                Profiles.all
            else Profiles.all
          in
          let configs = Runner.all_configs in
          let n = List.length profiles * List.length configs in
          let order =
            Option.map
              (fun seed ->
                let o = Array.init n Fun.id in
                Giantsan_util.Rng.shuffle (Giantsan_util.Rng.create seed) o;
                o)
              shuffle
          in
          (* jobs/shuffle only to stderr: stdout and the NDJSON file must
             diff clean across schedules *)
          Printf.eprintf "sweep: %d cells on %d domain(s)%s\n%!" n jobs
            (match shuffle with
            | None -> ""
            | Some s -> Printf.sprintf ", submission shuffled (seed %d)" s);
          let outcome =
            Sweep.run ?order ~trace:(ndjson <> None) ~capacity ~jobs
              ~profiles ~configs ()
          in
          let completed =
            List.filter
              (fun r -> r.Runner.r_status = Runner.Completed)
              (Array.to_list outcome.Sweep.o_results)
          in
          let merged =
            Merge.counters
              (List.map (fun r -> r.Runner.r_counters) completed)
          in
          let sum f = List.fold_left (fun acc r -> acc + f r) 0 completed in
          Printf.printf "%d/%d cells completed (%d profiles x %d configs)\n"
            (List.length completed) n (List.length profiles)
            (List.length configs);
          Printf.printf "ops=%d shadow_loads=%d shadow_stores=%d\n"
            (sum (fun r -> r.Runner.r_ops))
            (sum (fun r -> r.Runner.r_shadow_loads))
            (sum (fun r -> r.Runner.r_shadow_stores));
          Format.printf "merged counters:@.%a@."
            Giantsan_sanitizer.Counters.pp merged;
          (match ndjson with
          | None -> ()
          | Some path ->
            let lines = Sweep.ndjson outcome in
            let oc = open_out path in
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              lines;
            close_out oc;
            Printf.printf "trace: %d merged events -> %s\n"
              (List.length lines) path);
          0)
      $ jobs_default_parallel $ quick $ shuffle $ ndjson $ capacity)

(* Catch allocator exhaustion inside the term (cmdliner would otherwise
   convert the escaping exception into its generic 125): diagnostic on
   stderr, distinct exit code 3, never a backtrace. *)
let guard_oom f =
  try f ()
  with Out_of_memory ->
    Printf.eprintf
      "giantsan-repro: out of memory (arena exhausted beyond graceful \
       degradation)\n";
    3

let chaos_cmd =
  let doc =
    "Run the deterministic fault-injection matrix: seeded faults across \
     four planes (shadow corruption, allocator pressure, execution \
     faults, corrupt inputs), each checked against its degradation \
     contract by a shadow-vs-oracle audit. Output is byte-identical for a \
     fixed $(b,--seed) across runs and across $(b,--jobs). Exits 0 when \
     the contract holds, 1 on any silent corruption."
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Fault-matrix seed; every knob in the schedule derives from it.")
  in
  let soak =
    Arg.(
      value & opt int 1
      & info [ "soak" ] ~docv:"ROUNDS"
          ~doc:
            "Repeat the matrix over $(docv) derived seeds and append \
             aggregate counters (soak mode).")
  in
  let oom_demo =
    Arg.(
      value & flag
      & info [ "oom-demo" ]
          ~doc:
            "Exhaust a tiny arena past graceful degradation and let the \
             resulting $(b,Out_of_memory) reach the top level (exit-code \
             demo: must exit 3 with a diagnostic, never a backtrace).")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const (fun seed jobs soak oom_demo out ->
          guard_oom (fun () ->
              if oom_demo then begin
                let module Heap = Giantsan_memsim.Heap in
                let heap =
                  Heap.create
                    { Heap.arena_size = 2048; redzone = 16;
                      quarantine_budget = 0 }
                in
                ignore (Heap.malloc heap 4096);
                0
              end
              else begin
                let report, held =
                  Giantsan_chaos.Engine.run ~soak ~seed ~jobs ()
                in
                print_string report;
                write_out out report;
                if held then 0 else 1
              end))
      $ seed $ jobs_arg $ soak $ oom_demo $ out_file)

let spec_cmd =
  let doc =
    "Run the executable-specification refinement harness: the real \
     GiantSan runtime and the pure model in lockstep over seeded \
     operation streams, with full-state audits (shadow, arena bytes, \
     quarantine FIFO, counters) after every step. With $(b,--mutate), \
     plant seeded shadow-plane faults instead and demand every one is \
     caught by the audit. Output is byte-identical for a fixed \
     $(b,--seed). Exits 0 when every run is equivalent (and every mutant \
     killed), 1 otherwise."
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed; per-run seeds derive from it.")
  in
  let runs =
    Arg.(
      value & opt int 16
      & info [ "runs" ] ~docv:"N" ~doc:"Number of lockstep runs.")
  in
  let steps =
    Arg.(
      value & opt int 200
      & info [ "steps" ] ~docv:"N" ~doc:"Operations per lockstep run.")
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"WHICH"
          ~doc:
            "Mutation-kill mode: $(b,all) or one of $(b,bit-flip), \
             $(b,stale-free), $(b,overclaim), $(b,misfold). Each fault is \
             planted into the real shadow plane only; a surviving mutant \
             is a harness failure.")
  in
  Cmd.v (Cmd.info "spec" ~doc)
    Term.(
      const (fun seed runs steps mutate ->
          guard_oom (fun () ->
              let module Refine = Giantsan_spec.Refine in
              let module Heap = Giantsan_memsim.Heap in
              let rng = Giantsan_util.Rng.create seed in
              let budget0 =
                { Refine.default_config with Heap.quarantine_budget = 0 }
              in
              let config_of i =
                if i mod 2 = 0 then ("default", Refine.default_config)
                else ("budget0", budget0)
              in
              match mutate with
              | None ->
                Printf.printf "spec: lockstep seed=%d runs=%d steps=%d\n" seed
                  runs steps;
                let bad = ref 0 in
                for i = 0 to runs - 1 do
                  let run_seed = Giantsan_util.Rng.int rng 1_000_000 in
                  let cname, config = config_of i in
                  (match Refine.run ~config ~seed:run_seed ~steps () with
                  | Refine.Equivalent e ->
                    Printf.printf
                      "run %02d seed=%06d config=%-7s equivalent (%d \
                       reports, %d allocs, %d frees)\n"
                      i run_seed cname e.reports e.allocs e.frees
                  | Refine.Diverged d ->
                    incr bad;
                    Printf.printf "run %02d seed=%06d config=%-7s DIVERGED %s\n"
                      i run_seed cname
                      (Refine.divergence_to_string d));
                  (* the fuzz-mode snapshot/restore audit rides every
                     lockstep run: restore must land byte-equal to the
                     from-scratch rebuild the model embodies *)
                  match Refine.check_restore ~config ~seed:run_seed ~steps () with
                  | Refine.Equivalent _ ->
                    Printf.printf
                      "run %02d seed=%06d config=%-7s restore-audit ok\n" i
                      run_seed cname
                  | Refine.Diverged d ->
                    incr bad;
                    Printf.printf
                      "run %02d seed=%06d config=%-7s RESTORE DIVERGED %s\n" i
                      run_seed cname
                      (Refine.divergence_to_string d)
                done;
                Printf.printf "spec: %d/%d runs equivalent\n" (runs - !bad) runs;
                if !bad = 0 then 0 else 1
              | Some which ->
                let mutations =
                  match which with
                  | "all" -> Refine.all_mutations
                  | _ -> (
                    match
                      List.find_opt
                        (fun m ->
                          (* match on the family prefix of the display name *)
                          let n = Refine.mutation_name m in
                          String.length n >= String.length which
                          && String.sub n 0 (String.length which) = which)
                        Refine.all_mutations
                    with
                    | Some m -> [ m ]
                    | None ->
                      Printf.eprintf "spec: unknown mutation %S\n" which;
                      Stdlib.exit 2)
                in
                Printf.printf "spec: mutation kills seed=%d runs=%d steps=%d\n"
                  seed runs steps;
                let survived = ref 0 and total = ref 0 in
                for i = 0 to runs - 1 do
                  let run_seed = Giantsan_util.Rng.int rng 1_000_000 in
                  let cname, config = config_of i in
                  List.iter
                    (fun m ->
                      incr total;
                      let killed, detail =
                        Refine.check_mutation ~config ~seed:run_seed ~steps m
                      in
                      if not killed then incr survived;
                      Printf.printf
                        "run %02d seed=%06d config=%-7s %-14s %s (%s)\n" i
                        run_seed cname (Refine.mutation_name m)
                        (if killed then "killed" else "SURVIVED")
                        detail)
                    mutations
                done;
                Printf.printf "spec: %d/%d mutants killed\n"
                  (!total - !survived) !total;
                if !survived = 0 then 0 else 1))
      $ seed $ runs $ steps $ mutate)

let serve_cmd =
  let module Service = Giantsan_service in
  let doc =
    "Run the long-lived multi-tenant sanitizer service: $(b,--tenants) \
     isolated arenas served round-robin over the domain pool, each with a \
     seeded open-ended request stream, an HDR latency histogram, \
     sliding-window rate counters, a bounded flight recorder, and an SLO \
     watchdog that escalates breach streaks breached/degraded/quarantined \
     without perturbing other tenants. Under the (default) virtual clock \
     stdout is byte-identical across runs and across $(b,--jobs). Exits 0 \
     when every tenant ends healthy, 1 on any SLO breach, audit fault or \
     quarantine."
  in
  let tenants =
    Arg.(
      value & opt int 4
      & info [ "tenants" ] ~docv:"N" ~doc:"Number of isolated tenants.")
  in
  let duration =
    Arg.(
      value & opt int 64
      & info [ "duration" ] ~docv:"TICKS" ~doc:"Run length, in service ticks.")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed; every tenant's streams derive from it.")
  in
  let quantum =
    Arg.(
      value & opt int 32
      & info [ "quantum" ] ~docv:"OPS"
          ~doc:"Max requests served per tenant per tick (halved while \
                degraded).")
  in
  let slo =
    Arg.(
      value & opt string "none"
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "SLO thresholds as comma-separated key=value clauses: $(b,p999) \
             (ns ceiling), $(b,err) (error-rate ceiling), $(b,ops) \
             (throughput floor); e.g. $(b,p999=20000,err=0.05,ops=50000).")
  in
  let policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy" ] ~docv:"SPEC"
          ~doc:
            "PartiSan-style backend policy as comma-separated key=value \
             clauses: $(b,budget) (mean overhead ceiling, native=1.0), \
             $(b,prefer) (detection-class weights, \
             $(b,cls:w) pairs joined by $(b,;) over oob/uaf/uaf-realloc/\
             double-free), $(b,fallback) (backend when nothing fits); e.g. \
             $(b,budget=1.5,prefer=oob:3;uaf:2,fallback=native). Tenants \
             get backends from the budget, and a tenant that would be \
             quarantined is first downshifted to a cheaper backend. A \
             malformed spec exits 2.")
  in
  let recorder =
    Arg.(
      value & opt int 64
      & info [ "recorder" ] ~docv:"M"
          ~doc:"Flight-recorder depth: the last $(docv) events per tenant.")
  in
  let real_clock =
    Arg.(
      value & flag
      & info [ "real-clock" ]
          ~doc:
            "Measure wall-clock latencies instead of the deterministic \
             virtual clock (output no longer byte-reproducible).")
  in
  let chaos_tenant =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-tenant" ] ~docv:"T"
          ~doc:
            "Plant a seeded shadow-plane fault into tenant $(docv) mid-run; \
             the audit must catch it in exactly that tenant's flight \
             recorder.")
  in
  let chaos_tick =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-tick" ] ~docv:"TICK"
          ~doc:"Tick the chaos fault lands at (default: half the duration).")
  in
  let report_every =
    Arg.(
      value & opt int 16
      & info [ "report-every" ] ~docv:"TICKS"
          ~doc:"Live summary cadence (0 disables).")
  in
  let upshift_after =
    Arg.(
      value & opt int 4
      & info [ "upshift-after" ] ~docv:"WINDOWS"
          ~doc:
            "With $(b,--policy): repartition a downshifted tenant back \
             toward its original backend after $(docv) consecutive clean \
             SLO windows (0 disables the return direction of the ladder).")
  in
  let bench_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Write a bench-JSON document whose $(b,service) section carries \
             the run's latency/throughput rows to $(docv).")
  in
  let dump_ndjson =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-ndjson" ] ~docv:"FILE"
          ~doc:
            "Write every tenant's final flight-recorder contents to $(docv) \
             as replayable NDJSON.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun tenants duration seed quantum slo policy recorder real_clock
                 chaos_tenant chaos_tick report_every upshift_after bench_out
                 dump_ndjson jobs ->
          guard_oom (fun () ->
              match Service.Slo.parse slo with
              | Error e ->
                Printf.eprintf "serve: bad --slo: %s\n" e;
                2
              | Ok slo ->
              match
                match policy with
                | None -> Ok None
                | Some s -> Result.map Option.some (Giantsan_policy.Policy.parse s)
              with
              | Error e ->
                Printf.eprintf "serve: bad --policy: %s\n" e;
                2
              | Ok policy ->
                let chaos =
                  Option.map
                    (fun t ->
                      let at =
                        match chaos_tick with
                        | Some k -> k
                        | None -> duration / 2
                      in
                      ( t,
                        Giantsan_chaos.Fault.Stale_free { pick = 1 + seed },
                        at ))
                    chaos_tenant
                in
                let tenant_cfg =
                  {
                    Service.Tenant.default_config with
                    virtual_clock = not real_clock;
                    recorder_cap = recorder;
                  }
                in
                let cfg =
                  {
                    Service.Loop.default_config with
                    tenants;
                    seed;
                    ticks = duration;
                    quantum;
                    jobs;
                    slo;
                    policy;
                    tenant_cfg;
                    chaos;
                    report_every;
                    upshift_after;
                  }
                in
                (* jobs only to stderr: stdout must diff clean across --jobs *)
                Printf.eprintf "serve: %d tenant(s) on %d domain(s)\n%!" tenants
                  jobs;
                Printf.printf
                  "serve: tenants=%d ticks=%d quantum=%d seed=%d slo=%s \
                   clock=%s\n"
                  tenants duration quantum seed (Service.Slo.to_string slo)
                  (if real_clock then "monotonic" else "virtual");
                (match policy with
                | None -> ()
                | Some spec ->
                  let module Policy = Giantsan_policy.Policy in
                  let module Backend = Giantsan_policy.Backend in
                  Printf.printf "policy: %s\n" (Policy.to_string spec);
                  List.iteri
                    (fun i b ->
                      Printf.printf "policy: tenant-%d -> %s\n" i
                        (Backend.name b))
                    (Policy.assign spec ~tenants));
                let o = Service.Loop.run ~progress:print_endline cfg in
                print_string (Service.Loop.render_summary o);
                (match o.Service.Loop.o_chaos with
                | Some (t, d) ->
                  Printf.printf "chaos: planted %s into tenant-%d\n" d t
                | None -> ());
                List.iter
                  (fun (t, d) -> Printf.printf "fault: tenant-%d %s\n" t d)
                  o.Service.Loop.o_faults;
                List.iter
                  (fun (t, b) ->
                    Printf.printf "downshift: tenant-%d -> %s\n" t b)
                  o.Service.Loop.o_downshifts;
                List.iter
                  (fun (t, b) ->
                    Printf.printf "upshift: tenant-%d -> %s\n" t b)
                  o.Service.Loop.o_upshifts;
                List.iter
                  (fun (t, lines) ->
                    Printf.printf
                      "flight recorder dumped for tenant-%d (%d events)\n" t
                      (List.length lines))
                  o.Service.Loop.o_dumps;
                Printf.printf
                  (if Service.Loop.healthy o then
                     format_of_string "service healthy: %d ops, 0 breaches\n"
                   else
                     format_of_string
                       "service DEGRADED: %d ops (see breaches/faults above)\n")
                  o.Service.Loop.o_ops;
                (match dump_ndjson with
                | None -> ()
                | Some path ->
                  let oc = open_out path in
                  List.iter
                    (fun (_, lines) ->
                      List.iter
                        (fun l ->
                          output_string oc l;
                          output_char oc '\n')
                        lines)
                    o.Service.Loop.o_recorders;
                  close_out oc;
                  Printf.eprintf "flight recorders written to %s\n" path);
                (match bench_out with
                | None -> ()
                | Some path ->
                  Giantsan_telemetry.Export.write_file path
                    (Giantsan_telemetry.Export.bench_json ~groups:[]
                       ~profiles:[]
                       ~service:(Service.Loop.service_rows o)
                       ());
                  Printf.eprintf "service bench rows written to %s\n" path);
                if Service.Loop.healthy o then 0 else 1))
      $ tenants $ duration $ seed $ quantum $ slo $ policy $ recorder
      $ real_clock $ chaos_tenant $ chaos_tick $ report_every $ upshift_after
      $ bench_out $ dump_ndjson $ jobs_arg)

let validate_cmd =
  let doc = "Re-validate the ground-truth labels of every generated corpus." in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(
      const (fun out ->
          let body = Giantsan_report.Corpus_tools.validate () in
          print_string body;
          write_out out body;
          0)
      $ out_file)

let () =
  let info =
    Cmd.info "giantsan-repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'GiantSan: Efficient Memory Sanitization with \
         Segment Folding' (ASPLOS 2024)"
  in
  let cmds =
    all_cmd :: extras_cmd :: fuzz_cmd :: fuzz_matrix_cmd :: replay_cmd
    :: trace_cmd :: check_ndjson_cmd :: bench_compare_cmd :: fig11_gate_cmd
    :: fuzzmode_gate_cmd :: sweep_cmd
    :: chaos_cmd :: spec_cmd :: serve_cmd :: validate_cmd
    :: List.map
         (fun id -> experiment_cmd id id)
         (Giantsan_report.Experiments.all_ids
         @ Giantsan_report.Experiments.extra_ids)
  in
  (* Exit-code conventions (documented in README):
     0 success; 1 findings / contract violation; 2 unreadable or corrupt
     input; 3 out of memory; 124/125 cmdliner CLI misuse / internal error.
     Allocator exhaustion past graceful degradation must end in a
     diagnostic and a distinct code, never an uncaught exception trace. *)
  let code =
    try Cmd.eval' (Cmd.group info cmds)
    with Out_of_memory ->
      Printf.eprintf
        "giantsan-repro: out of memory (arena exhausted beyond graceful \
         degradation)\n";
      3
  in
  exit code
