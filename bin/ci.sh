#!/bin/sh
# CI gate: build, tests, API docs, regression-corpus replay, a fixed-seed
# fuzz smoke including a byte-identical determinism check of two runs,
# the sharded-execution determinism gate (serial vs --jobs NDJSON diff),
# and the performance regression gate against the committed bench
# baseline — which also runs once more under --jobs 2 to prove the
# parallel engine reproduces the same event counts.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== docs =="
# @doc needs odoc for public packages; the libraries here are private so
# this validates the doc setup cheaply. When odoc is installed we also
# build the private-library docs, which parses every odoc comment.
dune build @doc
if command -v odoc >/dev/null 2>&1; then
  dune build @doc-private
fi

echo "== tests =="
dune runtest

echo "== regression corpus replay =="
dune exec bin/main.exe -- replay test/corpus/regressions

echo "== fuzz smoke (2000 runs, seed 42) =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/main.exe -- fuzz --runs 2000 --seed 42 -o "$tmpdir/run1.txt"
dune exec bin/main.exe -- fuzz --runs 2000 --seed 42 -o "$tmpdir/run2.txt"

echo "== fuzz determinism =="
if ! cmp -s "$tmpdir/run1.txt" "$tmpdir/run2.txt"; then
  echo "FAIL: fuzz summaries differ between identical seeded runs" >&2
  diff "$tmpdir/run1.txt" "$tmpdir/run2.txt" >&2 || true
  exit 1
fi
echo "byte-identical summaries across two seeded runs"

echo "== fuzz-mode smoke (persistent vs rebuild, seed 42) =="
# The fuzz-mode contract: persistent execution (snapshot once, restore
# between execs) must reach the exact same verdicts as rebuilding the
# sanitizers from scratch per exec. Everything but the mode banner line
# must be byte-identical — coverage, corpus, divergences, findings.
dune exec bin/main.exe -- fuzz --runs 800 --seed 42 --mode persistent \
  -o "$tmpdir/fuzz_persistent.txt"
dune exec bin/main.exe -- fuzz --runs 800 --seed 42 --mode rebuild \
  -o "$tmpdir/fuzz_rebuild.txt"
grep -v 'mode=' "$tmpdir/fuzz_persistent.txt" > "$tmpdir/fuzz_p.norm"
grep -v 'mode=' "$tmpdir/fuzz_rebuild.txt" > "$tmpdir/fuzz_r.norm"
if ! cmp -s "$tmpdir/fuzz_p.norm" "$tmpdir/fuzz_r.norm"; then
  echo "FAIL: persistent and rebuild fuzz modes reached different verdicts" >&2
  diff "$tmpdir/fuzz_p.norm" "$tmpdir/fuzz_r.norm" >&2 || true
  exit 1
fi
echo "byte-identical verdicts across persistent and rebuild modes"

echo "== telemetry trace smoke =="
dune exec bin/main.exe -- trace test/corpus/regressions/uaf_then_double_free.scn \
  > "$tmpdir/trace1.ndjson"
if ! test -s "$tmpdir/trace1.ndjson"; then
  echo "FAIL: trace produced no output" >&2
  exit 1
fi
dune exec bin/main.exe -- check-ndjson "$tmpdir/trace1.ndjson"

echo "== trace determinism =="
dune exec bin/main.exe -- trace test/corpus/regressions/uaf_then_double_free.scn \
  > "$tmpdir/trace2.ndjson"
if ! cmp -s "$tmpdir/trace1.ndjson" "$tmpdir/trace2.ndjson"; then
  echo "FAIL: traces differ between identical runs" >&2
  diff "$tmpdir/trace1.ndjson" "$tmpdir/trace2.ndjson" >&2 || true
  exit 1
fi
echo "byte-identical traces across two runs"

echo "== parallel sweep determinism (serial vs --jobs 2, shuffled) =="
# The sharded engine must merge to byte-identical output: same stdout
# summary and same NDJSON telemetry regardless of jobs and submission
# order. --shuffle only reorders task submission; results and events are
# always merged back in canonical cell order.
dune exec bin/main.exe -- sweep --quick --jobs 1 \
  --ndjson "$tmpdir/sweep_serial.ndjson" > "$tmpdir/sweep_serial.txt" \
  2> /dev/null
dune exec bin/main.exe -- sweep --quick --jobs 2 --shuffle 7 \
  --ndjson "$tmpdir/sweep_par.ndjson" > "$tmpdir/sweep_par.txt" 2> /dev/null
if ! cmp -s "$tmpdir/sweep_serial.ndjson" "$tmpdir/sweep_par.ndjson"; then
  echo "FAIL: serial and --jobs 2 sweeps produced different NDJSON" >&2
  diff "$tmpdir/sweep_serial.ndjson" "$tmpdir/sweep_par.ndjson" >&2 || true
  exit 1
fi
# stdout embeds the NDJSON output path, so normalise it before diffing
sed "s|$tmpdir/sweep_serial.ndjson|OUT|" "$tmpdir/sweep_serial.txt" \
  > "$tmpdir/sweep_serial.norm"
sed "s|$tmpdir/sweep_par.ndjson|OUT|" "$tmpdir/sweep_par.txt" \
  > "$tmpdir/sweep_par.norm"
if ! cmp -s "$tmpdir/sweep_serial.norm" "$tmpdir/sweep_par.norm"; then
  echo "FAIL: serial and --jobs 2 sweep summaries differ" >&2
  diff "$tmpdir/sweep_serial.norm" "$tmpdir/sweep_par.norm" >&2 || true
  exit 1
fi
echo "byte-identical NDJSON and summary across jobs=1 and jobs=2"

echo "== chaos smoke (fixed seed, vs committed expectation) =="
# The fault-injection matrix is byte-deterministic for a fixed seed, so it
# diffs against a checked-in expectation — and must reproduce identically
# under --jobs 2 (cells are independent; results render in cell order).
dune exec bin/main.exe -- chaos --seed 42 > "$tmpdir/chaos1.txt"
if ! cmp -s test/expect/chaos_seed42.txt "$tmpdir/chaos1.txt"; then
  echo "FAIL: chaos output drifted from test/expect/chaos_seed42.txt" >&2
  diff test/expect/chaos_seed42.txt "$tmpdir/chaos1.txt" >&2 || true
  exit 1
fi
dune exec bin/main.exe -- chaos --seed 42 --jobs 2 > "$tmpdir/chaos2.txt"
if ! cmp -s "$tmpdir/chaos1.txt" "$tmpdir/chaos2.txt"; then
  echo "FAIL: chaos output differs between jobs=1 and jobs=2" >&2
  diff "$tmpdir/chaos1.txt" "$tmpdir/chaos2.txt" >&2 || true
  exit 1
fi
echo "byte-identical chaos matrix across jobs=1 and jobs=2"

echo "== spec refinement harness (two fixed seeds) =="
# Lockstep refinement of the real sanitizer against the executable spec
# heap: every divergence is a bug in one of the worlds. Two seeds, both
# byte-deterministic; the alternating default/budget0 configs inside each
# run cover quarantine-eviction and bypass paths.
dune exec bin/main.exe -- spec --seed 7 --runs 8 --steps 200
dune exec bin/main.exe -- spec --seed 1234 --runs 8 --steps 200

echo "== spec mutation kills =="
# Plant each chaos fault family into the real shadow plane and require the
# harness to notice. A surviving mutant means the audit lost its teeth.
dune exec bin/main.exe -- spec --seed 7 --runs 2 --steps 40 --mutate all

echo "== spec property suite (pinned qcheck seed) =="
# The @spec alias re-runs the model/kernel/refinement qcheck properties
# under a fixed generator seed so CI failures replay locally verbatim.
QCHECK_SEED=42 dune build --force @spec

echo "== exit-code conventions =="
# 0 success, 1 findings/contract violation, 2 corrupt input, 3 OOM,
# 124 CLI misuse. Bad input and exhaustion must end in a diagnostic and a
# distinct code, never an uncaught exception trace.
assert_exit() {
  want=$1; shift
  rc=0
  "$@" > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne "$want" ]; then
    echo "FAIL: '$*' exited $rc, expected $want" >&2
    exit 1
  fi
}
printf 'alloc 0 not-a-size heap\n' > "$tmpdir/corrupt.scn"
assert_exit 2 dune exec bin/main.exe -- trace "$tmpdir/corrupt.scn"
printf '{"broken\n' > "$tmpdir/corrupt.ndjson"
assert_exit 2 dune exec bin/main.exe -- check-ndjson "$tmpdir/corrupt.ndjson"
assert_exit 3 dune exec bin/main.exe -- chaos --oom-demo
assert_exit 124 dune exec bin/main.exe -- no-such-subcommand
echo "exit codes 2/3/124 as documented"

echo "== service loop smoke (fixed seed, vs committed expectation) =="
# The multi-tenant service under the virtual clock is byte-deterministic,
# so its stdout diffs against a checked-in expectation, and the flight
# recorder dump must pass the strict NDJSON checker (the new service
# event kinds are on the whitelist).
dune exec bin/main.exe -- serve --seed 7 --tenants 4 --duration 48 \
  --dump-ndjson "$tmpdir/serve.ndjson" > "$tmpdir/serve1.txt" 2> /dev/null
if ! cmp -s test/expect/serve_seed7.txt "$tmpdir/serve1.txt"; then
  echo "FAIL: serve output drifted from test/expect/serve_seed7.txt" >&2
  diff test/expect/serve_seed7.txt "$tmpdir/serve1.txt" >&2 || true
  exit 1
fi
dune exec bin/main.exe -- check-ndjson "$tmpdir/serve.ndjson"

echo "== service determinism (serial vs --jobs 2) =="
# One pool task per tenant per tick; tenants share nothing, so stdout and
# the recorder dump must be byte-identical for any pool width.
dune exec bin/main.exe -- serve --seed 7 --tenants 4 --duration 48 --jobs 2 \
  --dump-ndjson "$tmpdir/serve_j2.ndjson" > "$tmpdir/serve2.txt" 2> /dev/null
if ! cmp -s "$tmpdir/serve1.txt" "$tmpdir/serve2.txt"; then
  echo "FAIL: serve stdout differs between jobs=1 and jobs=2" >&2
  diff "$tmpdir/serve1.txt" "$tmpdir/serve2.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$tmpdir/serve.ndjson" "$tmpdir/serve_j2.ndjson"; then
  echo "FAIL: serve recorder dump differs between jobs=1 and jobs=2" >&2
  diff "$tmpdir/serve.ndjson" "$tmpdir/serve_j2.ndjson" >&2 || true
  exit 1
fi
echo "byte-identical service run across jobs=1 and jobs=2"

echo "== service SLO watchdog exit codes =="
# An unmeetable throughput floor must quarantine and exit 1; a malformed
# SLO spec is corrupt input (2); unknown NDJSON kinds are rejected
# strictly but pass with --lax.
assert_exit 1 dune exec bin/main.exe -- serve --seed 7 --tenants 2 \
  --duration 48 --slo ops=999999999
assert_exit 2 dune exec bin/main.exe -- serve --slo p999=banana
printf '{"seq":0,"ev":"wormhole"}\n' > "$tmpdir/foreign.ndjson"
assert_exit 2 dune exec bin/main.exe -- check-ndjson "$tmpdir/foreign.ndjson"
assert_exit 0 dune exec bin/main.exe -- check-ndjson --lax \
  "$tmpdir/foreign.ndjson"
echo "SLO breach exits 1, bad spec 2, strict/lax NDJSON as documented"

echo "== policy engine (fixed spec/seed, vs committed expectation) =="
# PartiSan-style partitioning: under an unmeetable throughput floor every
# tenant must downshift (giantsan -> native under this 1.5x budget) before
# quarantining, and the whole run — assignment lines, downshift lines,
# summary table — is byte-deterministic, pinned against a checked-in
# expectation and reproduced identically under --jobs 2.
policy_spec='budget=1.5,prefer=oob:3;uaf:2,fallback=native'
rc=0
dune exec bin/main.exe -- serve --seed 7 --tenants 4 --duration 48 \
  --slo ops=999999999 --policy "$policy_spec" \
  > "$tmpdir/policy1.txt" 2> /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: policy breach run exited $rc, expected 1" >&2
  exit 1
fi
if ! cmp -s test/expect/policy_seed7.txt "$tmpdir/policy1.txt"; then
  echo "FAIL: policy output drifted from test/expect/policy_seed7.txt" >&2
  diff test/expect/policy_seed7.txt "$tmpdir/policy1.txt" >&2 || true
  exit 1
fi
if ! grep -q '^downshift: ' "$tmpdir/policy1.txt"; then
  echo "FAIL: breached policy run recorded no downshift" >&2
  exit 1
fi
rc=0
dune exec bin/main.exe -- serve --seed 7 --tenants 4 --duration 48 \
  --slo ops=999999999 --policy "$policy_spec" --jobs 2 \
  > "$tmpdir/policy2.txt" 2> /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: policy breach run (--jobs 2) exited $rc, expected 1" >&2
  exit 1
fi
if ! cmp -s "$tmpdir/policy1.txt" "$tmpdir/policy2.txt"; then
  echo "FAIL: policy run differs between jobs=1 and jobs=2" >&2
  diff "$tmpdir/policy1.txt" "$tmpdir/policy2.txt" >&2 || true
  exit 1
fi
# exit-code contract: healthy policy run 0, malformed spec 2
assert_exit 0 dune exec bin/main.exe -- serve --seed 7 --tenants 4 \
  --duration 48 --policy "$policy_spec"
assert_exit 2 dune exec bin/main.exe -- serve --policy budget=0.5
assert_exit 2 dune exec bin/main.exe -- serve --policy speed=11
echo "policy downshifts pinned, byte-identical across jobs, exits 1/0/2"

echo "== perf gate (vs BENCH_giantsan.json baseline) =="
# The deterministic profile sweep only: event counts must reproduce the
# committed baseline exactly, ns/op within ±25%. Wall-clock bechamel
# groups vary per machine and are not gated (see EXPERIMENTS.md for the
# comparison rules and how to re-baseline intentionally).
dune exec bench/main.exe -- --profiles-only --telemetry "$tmpdir/bench.json" \
  > /dev/null
dune exec bin/main.exe -- bench-compare BENCH_giantsan.json "$tmpdir/bench.json"

echo "== fig11 word-path gate =="
# The deterministic reverse-traversal row: most region checks must settle
# on the single-load word kernel, and GiantSan's reverse ns/op must not
# fall behind ASan's again (the §5.4 one-sided-summary regression the MRU
# window history fixed).
dune exec bin/main.exe -- fig11-gate "$tmpdir/bench.json"

echo "== fuzz-mode throughput gate =="
# The fuzzmode.* bench rows: per backend, event counts must be identical
# between the rebuild and persistent projections (the in-JSON witness of
# mode equivalence), persistent must never be slower, and on giantsan the
# persistent profile must clear the 5x execs/sec floor the fuzz-mode
# design promises.
dune exec bin/main.exe -- fuzzmode-gate "$tmpdir/bench.json"

echo "== perf gate under sharding (--jobs 2) =="
# sim_ns is derived from deterministic event counts, never wall-clock, so
# the same baseline must hold bit-for-bit when the sweep runs sharded.
dune exec bench/main.exe -- --profiles-only --jobs 2 \
  --telemetry "$tmpdir/bench_j2.json" > /dev/null
dune exec bin/main.exe -- bench-compare BENCH_giantsan.json \
  "$tmpdir/bench_j2.json"

echo "== ci green =="
