#!/bin/sh
# CI gate: build, tests, regression-corpus replay, a fixed-seed fuzz
# smoke including a byte-identical determinism check of two runs, and the
# performance regression gate against the committed bench baseline.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== regression corpus replay =="
dune exec bin/main.exe -- replay test/corpus/regressions

echo "== fuzz smoke (2000 runs, seed 42) =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/main.exe -- fuzz --runs 2000 --seed 42 -o "$tmpdir/run1.txt"
dune exec bin/main.exe -- fuzz --runs 2000 --seed 42 -o "$tmpdir/run2.txt"

echo "== fuzz determinism =="
if ! cmp -s "$tmpdir/run1.txt" "$tmpdir/run2.txt"; then
  echo "FAIL: fuzz summaries differ between identical seeded runs" >&2
  diff "$tmpdir/run1.txt" "$tmpdir/run2.txt" >&2 || true
  exit 1
fi
echo "byte-identical summaries across two seeded runs"

echo "== telemetry trace smoke =="
dune exec bin/main.exe -- trace test/corpus/regressions/uaf_then_double_free.scn \
  > "$tmpdir/trace1.ndjson"
if ! test -s "$tmpdir/trace1.ndjson"; then
  echo "FAIL: trace produced no output" >&2
  exit 1
fi
dune exec bin/main.exe -- check-ndjson "$tmpdir/trace1.ndjson"

echo "== trace determinism =="
dune exec bin/main.exe -- trace test/corpus/regressions/uaf_then_double_free.scn \
  > "$tmpdir/trace2.ndjson"
if ! cmp -s "$tmpdir/trace1.ndjson" "$tmpdir/trace2.ndjson"; then
  echo "FAIL: traces differ between identical runs" >&2
  diff "$tmpdir/trace1.ndjson" "$tmpdir/trace2.ndjson" >&2 || true
  exit 1
fi
echo "byte-identical traces across two runs"

echo "== perf gate (vs BENCH_giantsan.json baseline) =="
# The deterministic profile sweep only: event counts must reproduce the
# committed baseline exactly, ns/op within ±25%. Wall-clock bechamel
# groups vary per machine and are not gated (see EXPERIMENTS.md for the
# comparison rules and how to re-baseline intentionally).
dune exec bench/main.exe -- --profiles-only --telemetry "$tmpdir/bench.json" \
  > /dev/null
dune exec bin/main.exe -- bench-compare BENCH_giantsan.json "$tmpdir/bench.json"

echo "== ci green =="
