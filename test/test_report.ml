(* Smoke tests of the experiment drivers (quick variants). *)

module Experiments = Giantsan_report.Experiments

let contains = Astring_contains.contains

let test_table1 () =
  let o = Experiments.table1 () in
  Alcotest.(check bool) "has rows" true (contains o.Experiments.o_body "memset");
  Alcotest.(check bool) "mentions loads" true
    (contains o.Experiments.o_body "loads")

let test_table2_quick () =
  let o = Experiments.table2 ~quick:true () in
  Alcotest.(check bool) "geomeans present" true
    (contains o.Experiments.o_body "Geometric Means");
  Alcotest.(check bool) "CE rendered for LFP" true
    (contains o.Experiments.o_body "CE")

let test_fig10_quick () =
  let o = Experiments.fig10 ~quick:true () in
  Alcotest.(check bool) "columns" true
    (contains o.Experiments.o_body "Eliminated")

let test_table5_scaled () =
  let o = Experiments.table5 ~scale:100 () in
  Alcotest.(check bool) "php row" true (contains o.Experiments.o_body "php")

let test_fig11_tiny () =
  let o = Experiments.fig11 ~sizes_kb:[ 1 ] ~reps:5 () in
  Alcotest.(check bool) "three patterns" true
    (contains o.Experiments.o_body "Reverse")

let test_run_dispatch () =
  Alcotest.(check int) "seven experiments" 7 (List.length Experiments.all_ids);
  List.iter
    (fun id ->
      match id with
      | "table2" | "fig10" | "table3" | "table5" | "fig11" ->
        (* covered by the dedicated quick tests above / too heavy here *)
        ()
      | id ->
        let o = Experiments.run ~quick:true id in
        Alcotest.(check string) "id round-trips" id o.Experiments.o_id)
    Experiments.all_ids;
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Experiments.run: unknown experiment nope") (fun () ->
      ignore (Experiments.run "nope"))

let test_fuzz_tool_is_anomaly_free () =
  let body = Giantsan_report.Corpus_tools.fuzz ~seed:42 ~count:25 () in
  Alcotest.(check bool) "matrix rendered" true (contains body "far-jump");
  Alcotest.(check bool) "no anomalies" true (contains body "No anomalies")

let test_validate_tool_all_ok () =
  let body = Giantsan_report.Corpus_tools.validate () in
  Alcotest.(check bool) "no label errors" false (contains body "LABEL ERRORS");
  Alcotest.(check bool) "covers magma" true (contains body "magma php")

let suite =
  ( "report",
    [
      Helpers.qt "table1 driver" `Quick test_table1;
      Helpers.qt "table2 driver (quick)" `Slow test_table2_quick;
      Helpers.qt "fig10 driver (quick)" `Slow test_fig10_quick;
      Helpers.qt "table5 driver (scaled)" `Quick test_table5_scaled;
      Helpers.qt "fig11 driver (tiny)" `Quick test_fig11_tiny;
      Helpers.qt "dispatch" `Quick test_run_dispatch;
      Helpers.qt "fuzz tool: anomaly-free" `Quick test_fuzz_tool_is_anomaly_free;
      Helpers.qt "validate tool: corpora OK" `Slow test_validate_tool_all_ok;
    ] )
