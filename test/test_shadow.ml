(* The shadow substrate's batched kernels: store-counter discipline under
   clamping (the fill_range drift bug), and blit_pattern's equivalence with
   a per-byte store loop. The cost model charges w_poison_segment per
   counted store, so a drifting counter corrupts every Table 2 number. *)

module Shadow_mem = Giantsan_shadow.Shadow_mem

(* clamped intersection of [lo, hi) with [0, segments) *)
let clamped_len ~segments ~lo ~hi =
  let lo' = max 0 lo and hi' = min segments hi in
  max 0 (hi' - lo')

let test_fill_range_counts_only_clamped =
  Helpers.q "fill_range stores = clamped length (no drift past the arena)"
    QCheck.(triple (int_range 1 200) (int_range (-100) 300) (int_range 0 300))
    (fun (segments, lo, len) ->
      let hi = lo + len in
      let m = Shadow_mem.create ~segments ~fill:0 in
      let before = Shadow_mem.stores m in
      Shadow_mem.fill_range m ~lo ~hi 7;
      Shadow_mem.stores m - before = clamped_len ~segments ~lo ~hi)

let test_fill_range_tail_eviction_case =
  Helpers.qt "quarantine-eviction-shaped fill at the arena tail" `Quick
    (fun () ->
      (* the original drift: a fill whose range sticks out past the last
         segment counted the out-of-range bytes as stores *)
      let m = Shadow_mem.create ~segments:64 ~fill:0 in
      Shadow_mem.fill_range m ~lo:60 ~hi:80 9;
      Alcotest.(check int) "only 4 in-arena stores counted" 4
        (Shadow_mem.stores m);
      Alcotest.(check int) "last segment written" 9 (Shadow_mem.peek m 63);
      (* fully out-of-range fills cost nothing *)
      Shadow_mem.fill_range m ~lo:64 ~hi:90 9;
      Shadow_mem.fill_range m ~lo:(-10) ~hi:0 9;
      Alcotest.(check int) "out-of-arena fills are free" 4
        (Shadow_mem.stores m))

let test_blit_pattern_equals_per_byte_loop =
  Helpers.q "blit_pattern = per-byte set loop (bytes and counters)"
    QCheck.(
      quad (int_range 1 128) (int_range (-20) 140) (int_range 0 64)
        (int_range 0 255))
    (fun (segments, lo, len, seed) ->
      let pattern =
        Bytes.init (len + 8) (fun i -> Char.chr ((seed + (31 * i)) land 0xff))
      in
      let pat_off = seed mod 8 in
      let m1 = Shadow_mem.create ~segments ~fill:0 in
      let m2 = Shadow_mem.create ~segments ~fill:0 in
      Shadow_mem.blit_pattern m1 ~lo ~pattern ~pat_off ~len;
      (* reference: per-byte sets, skipping (not counting) out-of-arena
         writes — the batched kernels' counting discipline *)
      for j = 0 to len - 1 do
        if lo + j >= 0 && lo + j < segments then
          Shadow_mem.set m2 (lo + j) (Char.code (Bytes.get pattern (pat_off + j)))
      done;
      let same_bytes = ref true in
      for p = 0 to segments - 1 do
        if Shadow_mem.peek m1 p <> Shadow_mem.peek m2 p then same_bytes := false
      done;
      !same_bytes && Shadow_mem.stores m1 = Shadow_mem.stores m2)

let test_blit_pattern_window_slides_on_clamp =
  Helpers.qt "negative lo slides the pattern window" `Quick (fun () ->
      let m = Shadow_mem.create ~segments:8 ~fill:0 in
      let pattern = Bytes.of_string "\001\002\003\004\005" in
      Shadow_mem.blit_pattern m ~lo:(-2) ~pattern ~pat_off:0 ~len:5;
      (* bytes 0,1 of the pattern fall before the arena; 3,4,5 land at 0.. *)
      Alcotest.(check (list int)) "pattern tail lands at segment 0"
        [ 3; 4; 5; 0 ]
        (List.map (Shadow_mem.peek m) [ 0; 1; 2; 3 ]);
      Alcotest.(check int) "three counted stores" 3 (Shadow_mem.stores m))

let suite =
  ( "shadow",
    [
      test_fill_range_counts_only_clamped;
      test_fill_range_tail_eviction_case;
      test_blit_pattern_equals_per_byte_loop;
      test_blit_pattern_window_slides_on_clamp;
    ] )
