(* The shadow substrate's batched kernels: store-counter discipline under
   clamping (the fill_range drift bug), and blit_pattern's equivalence with
   a per-byte store loop. The cost model charges w_poison_segment per
   counted store, so a drifting counter corrupts every Table 2 number. *)

module Shadow_mem = Giantsan_shadow.Shadow_mem
module Ref_kernel = Giantsan_spec.Ref_kernel

(* clamped intersection of [lo, hi) with [0, segments) *)
let clamped_len ~segments ~lo ~hi =
  let lo' = max 0 lo and hi' = min segments hi in
  max 0 (hi' - lo')

(* byte-for-byte and counter-for-counter agreement with the scalar
   reference kernel from the executable spec *)
let agrees_with_ref m (r : Ref_kernel.t) =
  let same = ref (Shadow_mem.stores m = Ref_kernel.stores r) in
  for p = 0 to Shadow_mem.segments m - 1 do
    if Shadow_mem.peek m p <> Ref_kernel.peek r p then same := false
  done;
  !same

let test_fill_range_counts_only_clamped =
  Helpers.q "fill_range stores = clamped length (no drift past the arena)"
    QCheck.(triple (int_range 1 200) (int_range (-100) 300) (int_range 0 300))
    (fun (segments, lo, len) ->
      let hi = lo + len in
      let m = Shadow_mem.create ~segments ~fill:0 in
      let before = Shadow_mem.stores m in
      Shadow_mem.fill_range m ~lo ~hi 7;
      Shadow_mem.stores m - before = clamped_len ~segments ~lo ~hi)

let test_fill_range_tail_eviction_case =
  Helpers.qt "quarantine-eviction-shaped fill at the arena tail" `Quick
    (fun () ->
      (* the original drift: a fill whose range sticks out past the last
         segment counted the out-of-range bytes as stores *)
      let m = Shadow_mem.create ~segments:64 ~fill:0 in
      Shadow_mem.fill_range m ~lo:60 ~hi:80 9;
      Alcotest.(check int) "only 4 in-arena stores counted" 4
        (Shadow_mem.stores m);
      Alcotest.(check int) "last segment written" 9 (Shadow_mem.peek m 63);
      (* fully out-of-range fills cost nothing *)
      Shadow_mem.fill_range m ~lo:64 ~hi:90 9;
      Shadow_mem.fill_range m ~lo:(-10) ~hi:0 9;
      Alcotest.(check int) "out-of-arena fills are free" 4
        (Shadow_mem.stores m))

let test_blit_pattern_equals_per_byte_loop =
  Helpers.q "blit_pattern = per-byte set loop (bytes and counters)"
    QCheck.(
      quad (int_range 1 128) (int_range (-20) 140) (int_range 0 64)
        (int_range 0 255))
    (fun (segments, lo, len, seed) ->
      let pattern =
        Bytes.init (len + 8) (fun i -> Char.chr ((seed + (31 * i)) land 0xff))
      in
      let pat_off = seed mod 8 in
      let m1 = Shadow_mem.create ~segments ~fill:0 in
      let m2 = Ref_kernel.create ~segments ~fill:0 in
      Shadow_mem.blit_pattern m1 ~lo ~pattern ~pat_off ~len;
      Ref_kernel.blit_pattern m2 ~lo ~pattern ~pat_off ~len;
      agrees_with_ref m1 m2)

let test_blit_pattern_window_slides_on_clamp =
  Helpers.qt "negative lo slides the pattern window" `Quick (fun () ->
      let m = Shadow_mem.create ~segments:8 ~fill:0 in
      let pattern = Bytes.of_string "\001\002\003\004\005" in
      Shadow_mem.blit_pattern m ~lo:(-2) ~pattern ~pat_off:0 ~len:5;
      (* bytes 0,1 of the pattern fall before the arena; 3,4,5 land at 0.. *)
      Alcotest.(check (list int)) "pattern tail lands at segment 0"
        [ 3; 4; 5; 0 ]
        (List.map (Shadow_mem.peek m) [ 0; 1; 2; 3 ]);
      Alcotest.(check int) "three counted stores" 3 (Shadow_mem.stores m))

let test_fill_range_equals_ref_kernel =
  Helpers.q "fill_range = spec reference (bytes + store count)"
    QCheck.(triple (int_range 1 200) (int_range (-100) 300) (int_range 0 300))
    (fun (segments, lo, len) ->
      let m1 = Shadow_mem.create ~segments ~fill:0 in
      let m2 = Ref_kernel.create ~segments ~fill:0 in
      Shadow_mem.fill_range m1 ~lo ~hi:(lo + len) 7;
      Ref_kernel.fill_range m2 ~lo ~hi:(lo + len) 7;
      agrees_with_ref m1 m2)

(* Pinned model-audit cases: zero-length ranges and ranges ending exactly
   at the arena end must write nothing / everything they claim and count
   exactly the clamped length (the divergence classes the refinement
   generator is required to cover). *)
let test_batched_kernels_zero_length_and_arena_end =
  Helpers.qt "zero-length and arena-end edges match the reference" `Quick
    (fun () ->
      let segments = 64 in
      let check ~what ~lo ~hi =
        let m1 = Shadow_mem.create ~segments ~fill:0 in
        let m2 = Ref_kernel.create ~segments ~fill:0 in
        Shadow_mem.fill_range m1 ~lo ~hi 5;
        Ref_kernel.fill_range m2 ~lo ~hi 5;
        Alcotest.(check bool) what true (agrees_with_ref m1 m2)
      in
      check ~what:"len=0 in the middle" ~lo:10 ~hi:10;
      check ~what:"len=0 at the arena end" ~lo:segments ~hi:segments;
      check ~what:"len=0 past the arena end" ~lo:(segments + 4) ~hi:(segments + 4);
      check ~what:"range ending exactly at the arena end" ~lo:60 ~hi:segments;
      let pattern = Bytes.of_string "\001\002\003\004" in
      let m1 = Shadow_mem.create ~segments ~fill:0 in
      let m2 = Ref_kernel.create ~segments ~fill:0 in
      Shadow_mem.blit_pattern m1 ~lo:62 ~pattern ~pat_off:0 ~len:4;
      Ref_kernel.blit_pattern m2 ~lo:62 ~pattern ~pat_off:0 ~len:4;
      Alcotest.(check bool) "blit straddling the arena end" true
        (agrees_with_ref m1 m2);
      Shadow_mem.blit_pattern m1 ~lo:30 ~pattern ~pat_off:2 ~len:0;
      Ref_kernel.blit_pattern m2 ~lo:30 ~pattern ~pat_off:2 ~len:0;
      Alcotest.(check bool) "zero-length blit" true (agrees_with_ref m1 m2))

let suite =
  ( "shadow",
    [
      test_fill_range_counts_only_clamped;
      test_fill_range_tail_eviction_case;
      test_fill_range_equals_ref_kernel;
      test_blit_pattern_equals_per_byte_loop;
      test_blit_pattern_window_slides_on_clamp;
      test_batched_kernels_zero_length_and_arena_end;
    ] )
