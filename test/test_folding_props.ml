(* Folding.upper_bound / lower_bound against a brute-force linear shadow
   scan, over randomly populated heaps, plus the logarithmic shadow-load
   bounds the .mli contracts promise (the O(1)-loads-per-region-check story
   of Algorithm 1 rests on these). *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Shadow_mem = Giantsan_shadow.Shadow_mem
module SC = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Rng = Giantsan_util.Rng
module Bitops = Giantsan_util.Bitops

(* A GiantSan heap with random live and freed objects, shadow exposed. *)
let random_scene seed =
  let rng = Rng.create (seed + 4242) in
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let n_objects = Rng.int_in rng 3 12 in
  for _ = 1 to n_objects do
    let size = Rng.int_in rng 0 600 in
    let obj = san.San.malloc size in
    if Rng.int rng 4 = 0 then ignore (san.San.free obj.Memsim.Memobj.base)
  done;
  (san, m, rng)

(* Brute force: walk the shadow one segment at a time, treating every
   folded code as "this one segment is good" and ignoring the fold's
   claim about its successors. Agreement with [upper_bound] is exactly the
   encoding's soundness: a degree-d fold may only exist where d successive
   segments really are good. *)
let linear_upper m ~addr =
  let segments = Shadow_mem.segments m in
  let rec scan seg =
    if seg >= segments then seg * 8
    else
      let v = Shadow_mem.peek m seg in
      if SC.is_folded v then scan (seg + 1)
      else (seg * 8) + SC.addressable_in_segment v
  in
  max addr (scan (addr / 8))

(* Brute force for the reverse direction: the start of the maximal run of
   fully-addressable segments ending just before [addr]'s segment. *)
let linear_lower m ~addr =
  let rec down seg =
    if seg < 0 then 0
    else
      let v = Shadow_mem.peek m seg in
      if SC.is_folded v then down (seg - 1) else (seg + 1) * 8
  in
  down ((addr / 8) - 1)

let probe_addr rng m =
  (* probe everywhere: object interiors, redzones, freed blocks, the tail *)
  Rng.int rng (8 * Shadow_mem.segments m)

let test_upper_bound_matches_brute_force =
  Helpers.q "upper_bound = linear shadow scan" QCheck.small_int (fun seed ->
      let _, m, rng = random_scene seed in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        ok :=
          !ok && Folding.upper_bound m ~addr = linear_upper m ~addr
      done;
      !ok)

let test_upper_bound_load_bound =
  Helpers.q "upper_bound loads O(log n) shadow bytes" QCheck.small_int
    (fun seed ->
      let _, m, rng = random_scene seed in
      let budget = Bitops.log2_ceil (Shadow_mem.segments m) + 3 in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        Shadow_mem.reset_counters m;
        ignore (Folding.upper_bound m ~addr);
        ok := !ok && Shadow_mem.loads m <= budget
      done;
      !ok)

let test_lower_bound_matches_brute_force =
  Helpers.q "lower_bound = linear shadow scan" QCheck.small_int (fun seed ->
      let _, m, rng = random_scene seed in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        ok := !ok && Folding.lower_bound m ~addr = linear_lower m ~addr
      done;
      !ok)

let test_lower_bound_load_bound =
  Helpers.q "lower_bound loads O(log^2 n) shadow bytes" QCheck.small_int
    (fun seed ->
      let _, m, rng = random_scene seed in
      let log_n = Bitops.log2_ceil (Shadow_mem.segments m) in
      let budget = (log_n + 2) * (log_n + 2) in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        Shadow_mem.reset_counters m;
        ignore (Folding.lower_bound m ~addr);
        ok := !ok && Shadow_mem.loads m <= budget
      done;
      !ok)

(* The bounds bracket the truth: everything in [lower, align8 addr) and in
   [addr, upper) really is addressable per the byte-level oracle. *)
let test_bounds_sound_against_oracle =
  Helpers.q "bounds only ever claim addressable bytes" QCheck.small_int
    (fun seed ->
      let san, m, rng = random_scene seed in
      let oracle = Memsim.Heap.oracle san.San.heap in
      let arena = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        let u = min (Folding.upper_bound m ~addr) arena in
        let l = Folding.lower_bound m ~addr in
        if u > addr then
          ok := !ok && Memsim.Oracle.range_addressable oracle ~lo:addr ~hi:u;
        let hi = Bitops.align_down 8 addr in
        if hi > l then
          ok := !ok && Memsim.Oracle.range_addressable oracle ~lo:l ~hi
      done;
      !ok)

let suite =
  ( "folding-props",
    [
      test_upper_bound_matches_brute_force;
      test_upper_bound_load_bound;
      test_lower_bound_matches_brute_force;
      test_lower_bound_load_bound;
      test_bounds_sound_against_oracle;
    ] )
