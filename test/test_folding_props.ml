(* Folding.upper_bound / lower_bound against a brute-force linear shadow
   scan, over randomly populated heaps, plus the logarithmic shadow-load
   bounds the .mli contracts promise (the O(1)-loads-per-region-check story
   of Algorithm 1 rests on these). *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Shadow_mem = Giantsan_shadow.Shadow_mem
module SC = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Rng = Giantsan_util.Rng
module Bitops = Giantsan_util.Bitops

(* A GiantSan heap with random live and freed objects, shadow exposed. *)
let random_scene seed =
  let rng = Rng.create (seed + 4242) in
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let n_objects = Rng.int_in rng 3 12 in
  for _ = 1 to n_objects do
    let size = Rng.int_in rng 0 600 in
    let obj = san.San.malloc size in
    if Rng.int rng 4 = 0 then ignore (san.San.free obj.Memsim.Memobj.base)
  done;
  (san, m, rng)

(* Brute force from the executable spec: walk the shadow one byte at a
   time, trusting only each byte's own segment and ignoring any fold's
   claim about its successors. Agreement with [upper_bound] is exactly the
   encoding's soundness: a degree-d fold may only exist where d successive
   segments really are good. *)
let linear_upper m ~addr =
  Giantsan_spec.Ref_kernel.upper_bound (Giantsan_spec.Ref_kernel.of_shadow m)
    ~addr

(* Brute force for the reverse direction: the start of the maximal run of
   fully-addressable segments ending just before [addr]'s segment. *)
let linear_lower m ~addr =
  let rec down seg =
    if seg < 0 then 0
    else
      let v = Shadow_mem.peek m seg in
      if SC.is_folded v then down (seg - 1) else (seg + 1) * 8
  in
  down ((addr / 8) - 1)

let probe_addr rng m =
  (* probe everywhere: object interiors, redzones, freed blocks, the tail *)
  Rng.int rng (8 * Shadow_mem.segments m)

let test_upper_bound_matches_brute_force =
  Helpers.q "upper_bound = linear shadow scan" QCheck.small_int (fun seed ->
      let _, m, rng = random_scene seed in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        ok :=
          !ok && Folding.upper_bound m ~addr = linear_upper m ~addr
      done;
      !ok)

let test_upper_bound_load_bound =
  Helpers.q "upper_bound loads O(log n) shadow bytes" QCheck.small_int
    (fun seed ->
      let _, m, rng = random_scene seed in
      let budget = Bitops.log2_ceil (Shadow_mem.segments m) + 3 in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        Shadow_mem.reset_counters m;
        ignore (Folding.upper_bound m ~addr);
        ok := !ok && Shadow_mem.loads m <= budget
      done;
      !ok)

let test_lower_bound_matches_brute_force =
  Helpers.q "lower_bound = linear shadow scan" QCheck.small_int (fun seed ->
      let _, m, rng = random_scene seed in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        ok := !ok && Folding.lower_bound m ~addr = linear_lower m ~addr
      done;
      !ok)

let test_lower_bound_load_bound =
  Helpers.q "lower_bound loads O(log^2 n) shadow bytes" QCheck.small_int
    (fun seed ->
      let _, m, rng = random_scene seed in
      let log_n = Bitops.log2_ceil (Shadow_mem.segments m) in
      let budget = (log_n + 2) * (log_n + 2) in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        Shadow_mem.reset_counters m;
        ignore (Folding.lower_bound m ~addr);
        ok := !ok && Shadow_mem.loads m <= budget
      done;
      !ok)

(* The bounds bracket the truth: everything in [lower, align8 addr) and in
   [addr, upper) really is addressable per the byte-level oracle. *)
let test_bounds_sound_against_oracle =
  Helpers.q "bounds only ever claim addressable bytes" QCheck.small_int
    (fun seed ->
      let san, m, rng = random_scene seed in
      let oracle = Memsim.Heap.oracle san.San.heap in
      let arena = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 32 do
        let addr = probe_addr rng m in
        let u = min (Folding.upper_bound m ~addr) arena in
        let l = Folding.lower_bound m ~addr in
        if u > addr then
          ok := !ok && Memsim.Oracle.range_addressable oracle ~lo:addr ~hi:u;
        let hi = Bitops.align_down 8 addr in
        if hi > l then
          ok := !ok && Memsim.Oracle.range_addressable oracle ~lo:l ~hi
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Template-blit poisoning vs. the scalar reference kernel              *)
(* ------------------------------------------------------------------ *)

(* The batched kernel memoizes the degree sequence per power-of-two
   bracket and blits it in; both it and the incremental scalar loop must be
   observationally identical to the spec's reference kernel (the degree
   definition evaluated per position): same shadow bytes for every run
   length (crossing bracket boundaries, which force template rebuilds) and
   the same store count, with and without the seeded misfold hook. *)
let poison_kernels_agree ~misfold (first_pick, counts) =
  let module Ref_kernel = Giantsan_spec.Ref_kernel in
  let segments = 1024 in
  let fault = if misfold then Some (Folding.Overstate_last 1) else None in
  let check count =
    let count = count mod 700 in
    let first_seg = 1 + (first_pick mod (segments - 701)) in
    let m1 = Shadow_mem.create ~segments ~fill:SC.unallocated in
    let m2 = Shadow_mem.create ~segments ~fill:SC.unallocated in
    let r = Ref_kernel.create ~segments ~fill:SC.unallocated in
    Folding.with_fault fault (fun () ->
        Folding.poison_good_run m1 ~first_seg ~count;
        Folding.poison_good_run_scalar m2 ~first_seg ~count);
    Ref_kernel.poison_good_run ?fault r ~first_seg ~count;
    let same =
      ref
        (Shadow_mem.stores m1 = Ref_kernel.stores r
        && Shadow_mem.stores m2 = Ref_kernel.stores r)
    in
    for p = 0 to segments - 1 do
      if
        Shadow_mem.peek m1 p <> Ref_kernel.peek r p
        || Shadow_mem.peek m2 p <> Ref_kernel.peek r p
      then same := false
    done;
    !same
  in
  List.for_all check counts

let test_template_blit_equals_scalar =
  Helpers.q "template blit = scalar loop (bytes + store count)"
    QCheck.(pair small_nat (list_of_size (Gen.int_range 1 12) small_nat))
    (poison_kernels_agree ~misfold:false)

let test_template_blit_equals_scalar_misfolded =
  Helpers.q "template blit = scalar loop under the misfold hook"
    QCheck.(pair small_nat (list_of_size (Gen.int_range 1 12) small_nat))
    (poison_kernels_agree ~misfold:true)

let test_template_rebuild_order_independent =
  Helpers.qt "big-then-small and small-then-big runs agree" `Quick (fun () ->
      (* the memoized template only grows; a small run after a large one
         must still blit the correct suffix *)
      let m = Shadow_mem.create ~segments:2048 ~fill:SC.unallocated in
      Folding.poison_good_run m ~first_seg:0 ~count:2000;
      Folding.poison_good_run m ~first_seg:0 ~count:3;
      Alcotest.(check (list int)) "3-run degrees 1,1,0"
        [ SC.folded 1; SC.folded 1; SC.folded 0 ]
        (List.map (Shadow_mem.peek m) [ 0; 1; 2 ]))

let test_upper_bound_clamped_at_arena_tail =
  Helpers.qt "upper_bound never overshoots the arena" `Quick (fun () ->
      let segments = 64 in
      let m = Shadow_mem.create ~segments ~fill:SC.unallocated in
      (* a (3)-folded code on the last segment claims 8 good segments, 7 of
         which would live past the shadow end *)
      Shadow_mem.set m (segments - 1) (SC.folded 3);
      let u = Folding.upper_bound m ~addr:(8 * (segments - 1)) in
      Alcotest.(check int) "clamped to 8 * segments" (8 * segments) u;
      (* a well-formed run ending exactly at the tail is not disturbed *)
      let m2 = Shadow_mem.create ~segments ~fill:SC.unallocated in
      Folding.poison_good_run m2 ~first_seg:(segments - 16) ~count:16;
      Alcotest.(check int) "exact-tail run reaches the arena end"
        (8 * segments)
        (Folding.upper_bound m2 ~addr:(8 * (segments - 16))))

let suite =
  ( "folding-props",
    [
      test_upper_bound_matches_brute_force;
      test_upper_bound_load_bound;
      test_lower_bound_matches_brute_force;
      test_lower_bound_load_bound;
      test_bounds_sound_against_oracle;
      test_template_blit_equals_scalar;
      test_template_blit_equals_scalar_misfolded;
      test_template_rebuild_order_independent;
      test_upper_bound_clamped_at_arena_tail;
    ] )
