(* Workload generation, the runner, traversal kernels and the cost model. *)

module Specgen = Giantsan_workload.Specgen
module Profiles = Giantsan_workload.Profiles
module Runner = Giantsan_workload.Runner
module Traversal = Giantsan_workload.Traversal
module Cost_model = Giantsan_workload.Cost_model
module Pp = Giantsan_ir.Pp
module Counters = Giantsan_sanitizer.Counters
module Interp = Giantsan_analysis.Interp
module San = Giantsan_sanitizer.Sanitizer
module Memsim = Giantsan_memsim

let tiny_profile =
  {
    (Profiles.find "505.mcf_r") with
    Specgen.p_name = "tiny";
    p_phases = 3;
    p_iters = 64;
    p_obj_size = 150;
  }

let tiny_heap =
  { Memsim.Heap.arena_size = 1 lsl 17; redzone = 16; quarantine_budget = 8192 }

let test_generation_deterministic () =
  let p1 = Specgen.generate tiny_profile in
  let p2 = Specgen.generate tiny_profile in
  Alcotest.(check string) "same program twice"
    (Pp.program_to_string p1) (Pp.program_to_string p2)

let test_profiles_complete () =
  Alcotest.(check int) "24 projects" 24 (List.length Profiles.all);
  List.iter
    (fun (p : Specgen.profile) ->
      ignore (Profiles.native_seconds p.Specgen.p_name);
      Alcotest.(check bool)
        (p.Specgen.p_name ^ " has work")
        true
        (p.Specgen.p_phases > 0 && p.Specgen.p_iters > 0))
    Profiles.all;
  (* Table 2's CE/RE cells *)
  let ce =
    List.filter
      (fun (p : Specgen.profile) -> p.Specgen.p_lfp_status = `Compile_error)
      Profiles.all
  in
  (* perlbench (both runs), gcc_r, parest, imagick_r: Table 2's CE cells *)
  Alcotest.(check int) "five LFP compile errors" 5 (List.length ce)

let test_workloads_are_clean () =
  (* generated workloads must be violation-free: any report would poison
     the overhead comparison *)
  List.iter
    (fun config ->
      let r = Runner.run_one ~heap:tiny_heap tiny_profile config in
      Alcotest.(check int)
        (Runner.config_name config ^ " reports")
        0 r.Runner.r_reports;
      Alcotest.(check bool) "completed" true (r.Runner.r_status = Runner.Completed))
    Runner.all_configs

let test_all_profiles_clean_under_giantsan () =
  (* the full 24 programs, GiantSan only (the expensive sweep lives in
     bin/main.exe table2) *)
  List.iter
    (fun (p : Specgen.profile) ->
      let r = Runner.run_one p Runner.Giantsan in
      Alcotest.(check int) (p.Specgen.p_name ^ " clean") 0 r.Runner.r_reports)
    Profiles.all

let test_lfp_skips_ce_projects () =
  let p = Profiles.find "502.gcc_r" in
  let r = Runner.run_one p Runner.Lfp in
  Alcotest.(check bool) "CE" true (r.Runner.r_status = Runner.Compile_error)

let test_check_ordering () =
  (* the paper's core claim at workload level: GiantSan executes far fewer
     checks + loads than ASan on the same program *)
  let g = Runner.run_one ~heap:tiny_heap tiny_profile Runner.Giantsan in
  let a = Runner.run_one ~heap:tiny_heap tiny_profile Runner.Asan in
  Alcotest.(check bool) "fewer metadata loads" true
    (g.Runner.r_shadow_loads < a.Runner.r_shadow_loads / 2);
  Alcotest.(check bool) "identical native work" true
    (g.Runner.r_ops = a.Runner.r_ops)

let test_overhead_ordering () =
  let results = Runner.run_profile ~configs:Runner.all_configs tiny_profile in
  let sim c =
    (List.find (fun r -> r.Runner.r_config = c) results).Runner.r_sim_ns
  in
  Alcotest.(check bool) "native cheapest" true
    (sim Runner.Native < sim Runner.Giantsan);
  Alcotest.(check bool) "giantsan beats asan" true
    (sim Runner.Giantsan < sim Runner.Asan);
  Alcotest.(check bool) "ablations sit between" true
    (sim Runner.Giantsan <= sim Runner.Cache_only
    && sim Runner.Giantsan <= sim Runner.Elim_only)

let test_cost_model_monotone () =
  let base =
    {
      Cost_model.ops = 1000;
      shadow_loads = 0;
      counters = Counters.create ();
      is_sanitized = false;
      is_lfp = false;
      stack_fraction = 0.0;
    }
  in
  let t0 = Cost_model.simulated_ns base in
  let t1 = Cost_model.simulated_ns { base with Cost_model.ops = 2000 } in
  Alcotest.(check bool) "more ops, more time" true (t1 > t0);
  let c = Counters.create () in
  c.Counters.instr_checks <- 500;
  let t2 =
    Cost_model.simulated_ns
      { base with Cost_model.counters = c; is_sanitized = true; shadow_loads = 500 }
  in
  Alcotest.(check bool) "checks cost" true (t2 > t0);
  (* unsanitized runs ignore check counters *)
  let t3 =
    Cost_model.simulated_ns { base with Cost_model.counters = c; shadow_loads = 500 }
  in
  Alcotest.(check (float 1e-9)) "native ignores sanitizer events" t0 t3

let test_traversal_kernels_clean () =
  List.iter
    (fun config ->
      let san = Runner.make_sanitizer ~heap:tiny_heap config in
      let base = Traversal.prepare san ~size:4096 in
      let f = Traversal.forward san ~base ~size:4096 in
      let r = Traversal.random san ~seed:5 ~base ~size:4096 in
      let v = Traversal.reverse san ~base ~size:4096 in
      List.iter
        (fun (label, (res : Traversal.result)) ->
          Alcotest.(check int)
            (Runner.config_name config ^ " " ^ label ^ " reports")
            0 res.Traversal.t_reports)
        [ ("forward", f); ("random", r); ("reverse", v) ];
      (* every kernel reads the same bytes *)
      Alcotest.(check int) "same checksum fwd/rev" f.Traversal.t_checksum
        v.Traversal.t_checksum)
    [ Runner.Native; Runner.Giantsan; Runner.Asan ]

let test_traversal_load_asymmetry () =
  (* the Figure 11 story in loads. Historically: forward tiny, reverse
     huge (a dedicated underflow check per descending access — the §5.4
     single-sided-summary limitation), ASan flat. The MRU window history
     now caches the low side too: one miss extends the window down to the
     fold-derived run floor, so reverse is O(log) like forward and far
     below ASan's one-load-per-access. *)
  let gs = Runner.make_sanitizer ~heap:tiny_heap Runner.Giantsan in
  let base = Traversal.prepare gs ~size:8192 in
  let fwd = Traversal.forward gs ~base ~size:8192 in
  let rev = Traversal.reverse gs ~base ~size:8192 in
  Alcotest.(check bool)
    (Printf.sprintf "forward O(log n) loads (%d)" fwd.Traversal.t_shadow_loads)
    true
    (fwd.Traversal.t_shadow_loads < 24);
  Alcotest.(check bool)
    (Printf.sprintf "reverse no longer pays per access (%d)"
       rev.Traversal.t_shadow_loads)
    true
    (rev.Traversal.t_shadow_loads < 100);
  let asan = Runner.make_sanitizer ~heap:tiny_heap Runner.Asan in
  let abase = Traversal.prepare asan ~size:8192 in
  let afwd = Traversal.forward asan ~base:abase ~size:8192 in
  let arev = Traversal.reverse asan ~base:abase ~size:8192 in
  Alcotest.(check int) "ASan flat forward" 1024 afwd.Traversal.t_shadow_loads;
  Alcotest.(check int) "ASan flat reverse" 1024 arev.Traversal.t_shadow_loads;
  Alcotest.(check bool) "GiantSan reverse beats ASan" true
    (rev.Traversal.t_shadow_loads < arev.Traversal.t_shadow_loads)

let test_traversal_detects_overflow () =
  (* kernels are honest: scanning one word too far is caught *)
  let gs = Runner.make_sanitizer ~heap:tiny_heap Runner.Giantsan in
  let base = Traversal.prepare gs ~size:4096 in
  let r = Traversal.forward gs ~base ~size:4104 in
  Alcotest.(check bool) "overflow reported" true (r.Traversal.t_reports > 0)

let suite =
  ( "workload",
    [
      Helpers.qt "generation is deterministic" `Quick test_generation_deterministic;
      Helpers.qt "24 profiles, metadata complete" `Quick test_profiles_complete;
      Helpers.qt "workloads run clean under every tool" `Quick
        test_workloads_are_clean;
      Helpers.qt "all 24 profiles clean under GiantSan" `Slow
        test_all_profiles_clean_under_giantsan;
      Helpers.qt "LFP CE projects are skipped" `Quick test_lfp_skips_ce_projects;
      Helpers.qt "check/load ordering GiantSan vs ASan" `Quick test_check_ordering;
      Helpers.qt "simulated overhead ordering" `Quick test_overhead_ordering;
      Helpers.qt "cost model sanity" `Quick test_cost_model_monotone;
      Helpers.qt "traversal kernels are clean + honest" `Quick
        test_traversal_kernels_clean;
      Helpers.qt "traversal load asymmetry (Fig 11)" `Quick
        test_traversal_load_asymmetry;
      Helpers.qt "traversal catches overflow" `Quick test_traversal_detects_overflow;
    ] )
