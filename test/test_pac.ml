(* The PAC backend: tag mechanics, the sign/authenticate/strip lifecycle,
   the post-recycling detection the other backends lose, and the tag-forge
   chaos plane. White-box tests drive [Pac] directly (tagged pointers);
   black-box tests drive the untagged [Pac_runtime] adapter through the
   common sanitizer interface. *)

module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Memsim = Giantsan_memsim
module Pac = Giantsan_pac.Pac
module Pac_runtime = Giantsan_pac.Pac_runtime
module Rng = Giantsan_util.Rng

let fresh ?(config = Helpers.mid_config) () = Pac_runtime.create_exposed config

(* ------------------------------------------------------------------ *)
(* Tag mechanics                                                       *)
(* ------------------------------------------------------------------ *)

let test_tag_bits () =
  let t = Pac.create () in
  let base = 0x1234 in
  let ptr = Pac.sign t ~base in
  Alcotest.(check int) "address bits survive signing" base (Pac.strip ptr);
  Alcotest.(check bool) "tag lives above bit 48" true
    (ptr lsr Pac.pac_shift = Pac.tag_of ptr);
  Alcotest.(check int) "with_tag/tag_of round-trip" (Pac.tag_of ptr)
    (Pac.tag_of (Pac.with_tag base (Pac.tag_of ptr)));
  Alcotest.(check int) "strip removes the tag" base
    (Pac.strip (Pac.with_tag base 0xffff))

let test_compute_is_keyed =
  Helpers.q "different keys, salts or bases give different PACs (mostly)"
    QCheck.(triple (int_bound 1_000_000) (int_bound 10_000) (int_bound 1000))
    (fun (base, salt, key) ->
      let a = Pac.create ~key () and b = Pac.create ~key:(key + 1) () in
      let pa = Pac.compute a ~base ~salt in
      (* 16-bit PACs collide; the property that must hold exactly is
         determinism per (key, base, salt) and range *)
      pa = Pac.compute a ~base ~salt
      && pa land lnot ((1 lsl Pac.pac_bits) - 1) = 0
      && Pac.compute b ~base ~salt
         land lnot ((1 lsl Pac.pac_bits) - 1)
         = 0)

(* ------------------------------------------------------------------ *)
(* Lifecycle: sign / authenticate / strip                              *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  let t = Pac.create () in
  let ptr = Pac.sign t ~base:4096 in
  (match Pac.authenticate t ptr ~base:4096 with
  | Ok a -> Alcotest.(check int) "auth strips" 4096 a
  | Error f -> Alcotest.fail (Pac.failure_to_string f));
  Alcotest.(check bool) "release strips the signature" true
    (Pac.release t ~base:4096);
  (match Pac.authenticate t ptr ~base:4096 with
  | Error Pac.Stale -> ()
  | Ok _ -> Alcotest.fail "stale pointer authenticated"
  | Error f -> Alcotest.fail (Pac.failure_to_string f));
  Alcotest.(check bool) "second release is a no-op" false
    (Pac.release t ~base:4096)

(* Use-after-free where the memory has already been recycled: the freed
   base is re-signed with a fresh salt, so the stale pointer sees a live
   signature with the wrong tag — Forged, not missed. This is exactly the
   detection redzone/quarantine schemes lose once the quarantine rotates
   (Backend.detection Pac Uaf_realloc = 2, everyone else 0). *)
let test_salt_reuse_after_recycle () =
  let t = Pac.create () in
  let stale = Pac.sign t ~base:8192 in
  ignore (Pac.release t ~base:8192);
  let fresh_ptr = Pac.sign t ~base:8192 in
  Alcotest.(check bool) "fresh salt, different tag" true
    (Pac.tag_of stale <> Pac.tag_of fresh_ptr);
  (match Pac.authenticate t stale ~base:8192 with
  | Error (Pac.Forged _) -> ()
  | Ok _ -> Alcotest.fail "stale pointer authenticated against recycled base"
  | Error Pac.Stale -> Alcotest.fail "recycled base should hold a live signature");
  match Pac.authenticate t fresh_ptr ~base:8192 with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Pac.failure_to_string f)

let test_salts_never_repeat =
  Helpers.q "salts are fresh across sign/release cycles"
    QCheck.(int_range 1 32)
    (fun cycles ->
      let t = Pac.create () in
      let salts = ref [] in
      for _ = 1 to cycles do
        ignore (Pac.sign t ~base:64);
        (match Pac.salt_of t ~base:64 with
        | Some s -> salts := s :: !salts
        | None -> ());
        ignore (Pac.release t ~base:64)
      done;
      List.length (List.sort_uniq compare !salts) = cycles)

(* Interior pointers: arithmetic preserves the tag on real hardware, so
   [retag] must hand out the allocation's live tag for any offset, and the
   result must authenticate. *)
let test_interior_pointer () =
  let t = Pac.create () in
  let ptr = Pac.sign t ~base:4096 in
  (match Pac.retag t (4096 + 40) ~base:4096 with
  | Some interior ->
    Alcotest.(check int) "interior keeps the allocation tag" (Pac.tag_of ptr)
      (Pac.tag_of interior);
    Alcotest.(check int) "interior keeps its address" (4096 + 40)
      (Pac.strip interior);
    (match Pac.authenticate t interior ~base:4096 with
    | Ok a -> Alcotest.(check int) "authenticates at its offset" (4096 + 40) a
    | Error f -> Alcotest.fail (Pac.failure_to_string f))
  | None -> Alcotest.fail "retag refused a live base");
  ignore (Pac.release t ~base:4096);
  Alcotest.(check bool) "retag refuses a dead base" true
    (Pac.retag t (4096 + 40) ~base:4096 = None)

(* Realloc modelled as the allocator does it: new allocation, then free of
   the old one. The old pointer's tag must die with the old allocation and
   the new pointer's tag must keep working. *)
let test_tag_across_realloc () =
  let san, pac = fresh () in
  let old_obj = san.San.malloc 64 in
  let old_base = old_obj.Memsim.Memobj.base in
  let old_ptr = Pac.sign pac ~base:old_base in
  ignore (Pac.release pac ~base:old_base);
  (* grow: fresh allocation gets its own signature *)
  let new_obj = san.San.malloc 128 in
  let new_base = new_obj.Memsim.Memobj.base in
  ignore (san.San.free old_base);
  Alcotest.(check bool) "old tag is dead" true
    (match Pac.authenticate pac old_ptr ~base:old_base with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "new base stays signed" true (Pac.has pac ~base:new_base);
  Alcotest.(check bool) "new object accessible" true
    (Helpers.check_is_safe
       (san.San.access ~base:new_base ~addr:(new_base + 8) ~width:8))

(* ------------------------------------------------------------------ *)
(* The untagged adapter through the common interface                   *)
(* ------------------------------------------------------------------ *)

let test_adapter_inbounds_and_oob () =
  let san, _ = fresh () in
  let obj = san.San.malloc 100 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check bool) "inside" true
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 50) ~width:4));
  match san.San.access ~base ~addr:(base + 100) ~width:1 with
  | Some r ->
    Alcotest.(check string) "one past the end" "heap-buffer-overflow"
      (Report.kind_name r.Report.kind)
  | None -> Alcotest.fail "overflow missed"

(* PAC enforces the exact signed size — the size-class slack LFP tolerates
   (char p[600] rounded to 640, p[610] missed) is out of bounds here. *)
let test_adapter_no_size_class_slack () =
  let san, _ = fresh () in
  let obj = san.San.malloc 600 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check bool) "p[610] caught (LFP misses it)" false
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 610) ~width:1))

let test_adapter_uaf_and_double_free () =
  let san, _ = fresh () in
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  ignore (san.San.free base);
  (match san.San.access ~base ~addr:(base + 8) ~width:4 with
  | Some r ->
    Alcotest.(check string) "stale access" "heap-use-after-free"
      (Report.kind_name r.Report.kind)
  | None -> Alcotest.fail "use-after-free missed");
  match san.San.free base with
  | Some r ->
    Alcotest.(check string) "second free" "double-free"
      (Report.kind_name r.Report.kind)
  | None -> Alcotest.fail "double free missed"

let test_adapter_region_checks () =
  let san, _ = fresh () in
  let obj = san.San.malloc 256 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check bool) "whole object" true
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 256)));
  Alcotest.(check bool) "one past" false
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 257)));
  Alcotest.(check bool) "empty region is trivially safe" true
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:base))

let test_adapter_counters () =
  let san, pac = fresh () in
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  ignore (san.San.access ~base ~addr:base ~width:8);
  ignore (san.San.check_region ~lo:base ~hi:(base + 64));
  let c = san.San.counters in
  Alcotest.(check int) "every check is one authentication" 2
    c.Counters.auth_checks;
  Alcotest.(check int) "auth_checks joins total_checks" 2
    (Counters.total_checks c);
  Alcotest.(check int) "shadow loads = authentications" (Pac.auths pac)
    (san.San.shadow_loads ());
  Alcotest.(check int) "shadow stores = signature writes" (Pac.signs pac)
    (san.San.shadow_stores ())

(* ------------------------------------------------------------------ *)
(* Chaos plane: tag forging is always detected                         *)
(* ------------------------------------------------------------------ *)

(* [forge] xors an odd mask into a stored PAC, so authentication of the
   victim can never accidentally still pass — a forged tag must always be
   detected, across any seed. *)
let test_forged_tags_always_detected =
  Helpers.q "seeded tag-forge sweep: every forge detected"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let san, pac = fresh ~config:Helpers.small_config () in
      let bases =
        List.init (1 + Rng.int rng 6) (fun _ ->
            (san.San.malloc (16 + Rng.int rng 64)).Memsim.Memobj.base)
      in
      match Pac.forge pac ~pick:(Rng.int rng 64) ~mask:(Rng.int rng 0xffff) with
      | None -> false (* live signatures exist; forge must land *)
      | Some victim ->
        List.for_all
          (fun base ->
            let safe =
              Helpers.check_is_safe (san.San.access ~base ~addr:base ~width:8)
            in
            if base = victim then (not safe) && Pac.audit pac <> None
            else safe)
          bases)

let test_forged_report_is_wild_access () =
  let san, pac = fresh () in
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  ignore (Pac.forge pac ~pick:0 ~mask:0b1010);
  match san.San.access ~base ~addr:base ~width:8 with
  | Some r ->
    Alcotest.(check string) "forged tag reports wild access" "wild-access"
      (Report.kind_name r.Report.kind)
  | None -> Alcotest.fail "forged tag authenticated"

let test_drop_is_stale_not_forged () =
  let san, pac = fresh () in
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  (match Pac.drop pac ~pick:0 with
  | Some victim -> Alcotest.(check int) "drop hits the only base" base victim
  | None -> Alcotest.fail "drop found nothing");
  Alcotest.(check bool) "audit alone cannot see a drop" true
    (Pac.audit pac = None);
  match Pac.check pac ~base with
  | Error Pac.Stale -> ()
  | Ok _ -> Alcotest.fail "dropped signature still authenticated"
  | Error (Pac.Forged _) -> Alcotest.fail "drop misclassified as forge"

let suite =
  ( "pac",
    [
      Helpers.qt "tag bits: pack/strip/with_tag round-trip" `Quick test_tag_bits;
      test_compute_is_keyed;
      Helpers.qt "sign/authenticate/strip lifecycle" `Quick test_lifecycle;
      Helpers.qt "salt reuse: recycled base rejects the stale tag" `Quick
        test_salt_reuse_after_recycle;
      test_salts_never_repeat;
      Helpers.qt "interior pointers authenticate via retag" `Quick
        test_interior_pointer;
      Helpers.qt "realloc: old tag dies, new tag lives" `Quick
        test_tag_across_realloc;
      Helpers.qt "adapter: in-bounds pass, overflow reported" `Quick
        test_adapter_inbounds_and_oob;
      Helpers.qt "adapter: exact bounds, no size-class slack" `Quick
        test_adapter_no_size_class_slack;
      Helpers.qt "adapter: use-after-free and double-free" `Quick
        test_adapter_uaf_and_double_free;
      Helpers.qt "adapter: region checks cost one authentication" `Quick
        test_adapter_region_checks;
      Helpers.qt "adapter: auth_checks and signature traffic" `Quick
        test_adapter_counters;
      test_forged_tags_always_detected;
      Helpers.qt "forged tag reports wild-access" `Quick
        test_forged_report_is_wild_access;
      Helpers.qt "stolen strip: stale, invisible to audit alone" `Quick
        test_drop_is_stale_not_forged;
    ] )
