(* The bug corpora and detection harness (Tables 3-5). *)

module Scenario = Giantsan_bugs.Scenario
module Juliet = Giantsan_bugs.Juliet
module Cves = Giantsan_bugs.Cves
module Magma = Giantsan_bugs.Magma
module Harness = Giantsan_bugs.Harness
module Memobj = Giantsan_memsim.Memobj
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report

let take n l = List.filteri (fun i _ -> i < n) l

let test_corpus_sizes () =
  List.iter
    (fun cwe ->
      Alcotest.(check int)
        (Printf.sprintf "CWE %d corpus size" cwe)
        (Juliet.total cwe)
        (List.length (Juliet.buggy_cases cwe)))
    Juliet.cwe_ids;
  Alcotest.(check int) "grand total" 5948
    (List.fold_left (fun acc c -> acc + Juliet.total c) 0 Juliet.cwe_ids)

let test_corpus_labels_validate () =
  List.iter
    (fun cwe ->
      let errors =
        Harness.validate_corpus
          (Juliet.buggy_cases cwe @ Juliet.clean_cases cwe)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "CWE %d labels" cwe)
        [] errors)
    Juliet.cwe_ids

let test_asan_family_detects_live_cases () =
  (* on a slice of each CWE: GiantSan/ASan/ASan-- detect every non-latent
     buggy case *)
  List.iter
    (fun cwe ->
      let cases = take 50 (Juliet.buggy_cases cwe) in
      let live = List.filter (fun c -> c.Scenario.sc_buggy) cases in
      List.iter
        (fun tool ->
          Alcotest.(check int)
            (Printf.sprintf "CWE %d %s" cwe (Harness.tool_name tool))
            (List.length live)
            (Harness.count_detected tool live))
        [ Harness.Giantsan; Harness.Asan; Harness.Asanmm ])
    Juliet.cwe_ids

let test_no_false_positives_on_clean () =
  List.iter
    (fun cwe ->
      let clean = take 60 (Juliet.clean_cases cwe) in
      List.iter
        (fun tool ->
          Alcotest.(check int)
            (Printf.sprintf "CWE %d clean %s" cwe (Harness.tool_name tool))
            0
            (Harness.false_positives tool clean))
        Harness.all_tools)
    Juliet.cwe_ids

let test_latent_cases_flagged_by_nobody () =
  let latent =
    List.filter
      (fun c -> not c.Scenario.sc_buggy)
      (Juliet.buggy_cases 121 @ Juliet.buggy_cases 126)
  in
  Alcotest.(check int) "latent population" 12 (List.length latent);
  List.iter
    (fun tool ->
      Alcotest.(check int)
        (Harness.tool_name tool ^ " stays silent")
        0
        (Harness.count_detected tool latent))
    Harness.all_tools

let test_lfp_blindness_pattern () =
  (* LFP misses overflow/overread inside slack, sees everything on the
     low side: the Table 3 fingerprint *)
  let heap_ov = take 100 (Juliet.buggy_cases 122) in
  let underwrite = take 100 (Juliet.buggy_cases 124) in
  let lfp_ov = Harness.count_detected Harness.Lfp heap_ov in
  Alcotest.(check bool)
    (Printf.sprintf "LFP nearly blind to heap overflow (%d/100)" lfp_ov)
    true (lfp_ov <= 5);
  Alcotest.(check int) "LFP sees every underwrite" 100
    (Harness.count_detected Harness.Lfp underwrite)

let test_cve_table_matches_paper () =
  let expected_lfp_misses =
    [ "CVE-2017-12858"; "CVE-2017-9165"; "CVE-2017-14409" ]
  in
  List.iter
    (fun (c : Cves.t) ->
      List.iter
        (fun tool ->
          let expect =
            match tool with
            | Harness.Lfp -> not (List.mem c.Cves.cve_id expected_lfp_misses)
            | _ -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s" c.Cves.cve_id (Harness.tool_name tool))
            expect
            (Harness.detected tool c.Cves.cve_scenario))
        Harness.all_tools)
    Cves.all

let test_cve_count () =
  Alcotest.(check int) "25 scenario rows (Table 4's expanded ranges)" 25
    (List.length Cves.all)

let scaled_php =
  let p = List.hd Magma.projects in
  {
    p with
    Magma.mg_short = 40;
    mg_mid = 30;
    mg_far = 10;
    mg_latent = 20;
  }

let test_magma_php_mechanism () =
  let cases = Magma.cases scaled_php in
  Alcotest.(check int) "population" 100 (List.length cases);
  (* rz16 ASan: only the short jumps *)
  Alcotest.(check int) "ASan rz16" 40
    (Harness.count_detected ~redzone:16 Harness.Asan cases);
  (* rz512 recovers the mid jumps *)
  Alcotest.(check int) "ASan rz512" 70
    (Harness.count_detected ~redzone:512 Harness.Asan cases);
  (* the anchor catches everything non-latent at rz16 *)
  Alcotest.(check int) "GiantSan rz16" 80
    (Harness.count_detected ~redzone:16 Harness.Giantsan cases);
  (* ASan-- behaves like ASan on detection *)
  Alcotest.(check int) "ASan-- rz16" 40
    (Harness.count_detected ~redzone:16 Harness.Asanmm cases)

let test_magma_labels () =
  Alcotest.(check (list string)) "magma ground truth" []
    (Harness.validate_corpus (Magma.cases scaled_php))

let test_magma_totals_match_paper () =
  List.iter
    (fun p ->
      let expected =
        match p.Magma.mg_name with
        | "php" -> 3072
        | "libpng" -> 1881
        | "libtiff" -> 9858
        | "libxml2" -> 30574
        | "openssl" -> 1509
        | "sqlite3" -> 1528
        | "poppler" -> 10547
        | _ -> -1
      in
      Alcotest.(check int) (p.Magma.mg_name ^ " total") expected (Magma.total p))
    Magma.projects

(* ------------------------------------------------------------------ *)
(* Documented limitations (§5.4), demonstrated                          *)
(* ------------------------------------------------------------------ *)

let test_quarantine_bypass_window () =
  (* once a freed block leaves quarantine and is re-allocated, a stale
     pointer dereference is indistinguishable from a valid access — the
     common location-based blind spot the paper acknowledges. The newest
     entry is never self-evicted (budget 0 = one-deep quarantine), so a
     second free is what pushes the victim out. *)
  let san = Harness.make_sanitizer ~quarantine:0 Harness.Giantsan in
  let a = san.San.malloc 64 in
  let pa = a.Memobj.base in
  let b = san.San.malloc 64 in
  ignore (san.San.free pa);
  ignore (san.San.free b.Memobj.base);
  let c = san.San.malloc 64 in
  Alcotest.(check int) "block was recycled" pa c.Memobj.base;
  Alcotest.(check bool) "stale pointer access is missed" true
    (san.San.access ~base:pa ~addr:(pa + 8) ~width:8 = None);
  (* with a real quarantine budget the same flow is caught *)
  let san2 = Harness.make_sanitizer ~quarantine:4096 Harness.Giantsan in
  let a2 = san2.San.malloc 64 in
  let pa2 = a2.Memobj.base in
  ignore (san2.San.free pa2);
  let _b2 = san2.San.malloc 64 in
  Alcotest.(check bool) "caught while quarantined" true
    (san2.San.access ~base:pa2 ~addr:(pa2 + 8) ~width:8 <> None)

let test_quarantine_uaf_large_block () =
  (* regression: a block bigger than the whole quarantine budget used to be
     bounced straight back out on free, so an immediate use-after-free was
     missed; the retained-newest rule keeps the detection window open *)
  let san = Harness.make_sanitizer ~quarantine:16 Harness.Giantsan in
  let a = san.San.malloc 64 in
  let pa = a.Memobj.base in
  ignore (san.San.free pa);
  (* a fresh same-size malloc must not reuse the quarantined block *)
  let b = san.San.malloc 64 in
  Alcotest.(check bool) "quarantined block not reused" true
    (b.Memobj.base <> pa);
  match san.San.access ~base:pa ~addr:(pa + 8) ~width:8 with
  | Some r ->
    Alcotest.(check string) "classified as UAF" "heap-use-after-free"
      (Report.kind_name r.Report.kind)
  | None -> Alcotest.fail "use-after-free missed despite budget < block_len"

let test_sub_object_insensitivity () =
  (* struct { char name[8]; int id; }: overflowing [name] into [id] stays
     inside the allocation — invisible to all location-based tools *)
  List.iter
    (fun tool ->
      let san = Harness.make_sanitizer tool in
      let obj = san.San.malloc 16 in
      let base = obj.Memobj.base in
      Alcotest.(check bool)
        (Harness.tool_name tool ^ " cannot see sub-object overflow")
        true
        (san.San.access ~base ~addr:(base + 8) ~width:4 = None))
    Harness.all_tools

let test_softbound_precision_and_fragility () =
  let module Softbound = Giantsan_bugs.Softbound in
  (* with the tag intact, the pointer-based model is EXACT: it even sees an
     overflow that lands inside another object (no redzone involved) *)
  let far =
    {
      Scenario.sc_id = "sb_far";
      sc_cwe = 0;
      sc_buggy = true;
      sc_steps =
        [
          Scenario.Alloc { slot = 0; size = 32; kind = Memobj.Heap };
          Scenario.Alloc { slot = 1; size = 2048; kind = Memobj.Heap };
          Scenario.Access { slot = 0; off = 200; width = 1 };
        ];
    }
  in
  Alcotest.(check bool) "tagged: exact bounds catch the far jump" true
    (Softbound.run_with_laundering ~launder_slots:[] far);
  (* laundering the pointer silently disables everything *)
  Alcotest.(check bool) "laundered: nothing is checked" false
    (Softbound.run_with_laundering ~launder_slots:[ 0 ] far);
  (* ...including temporal checks *)
  let uaf =
    {
      Scenario.sc_id = "sb_uaf";
      sc_cwe = 416;
      sc_buggy = true;
      sc_steps =
        [
          Scenario.Alloc { slot = 0; size = 64; kind = Memobj.Heap };
          Scenario.Free_slot 0;
          Scenario.Access { slot = 0; off = 0; width = 8 };
        ];
    }
  in
  Alcotest.(check bool) "tagged UAF caught" true
    (Softbound.run_with_laundering ~launder_slots:[] uaf);
  Alcotest.(check bool) "laundered UAF missed" false
    (Softbound.run_with_laundering ~launder_slots:[ 0 ] uaf);
  (* while GiantSan does not care about laundering at all *)
  Alcotest.(check bool) "GiantSan catches both regardless" true
    (Harness.detected Harness.Giantsan far
    && Harness.detected Harness.Giantsan uaf)

let test_softbound_no_false_positives () =
  let module Softbound = Giantsan_bugs.Softbound in
  let module Difftest = Giantsan_bugs.Difftest in
  let ok = ref true in
  for seed = 0 to 99 do
    let sc = Difftest.gen_clean ~seed in
    if Softbound.run_with_laundering ~launder_slots:[] sc then ok := false
  done;
  Alcotest.(check bool) "clean scenarios stay clean" true !ok

let suite =
  ( "bugs",
    [
      Helpers.qt "Juliet corpus sizes match Table 3" `Quick test_corpus_sizes;
      Helpers.qt "corpus ground-truth labels validate" `Slow
        test_corpus_labels_validate;
      Helpers.qt "ASan family detects all live cases" `Quick
        test_asan_family_detects_live_cases;
      Helpers.qt "no false positives on clean twins" `Quick
        test_no_false_positives_on_clean;
      Helpers.qt "latent cases flagged by nobody" `Quick
        test_latent_cases_flagged_by_nobody;
      Helpers.qt "LFP blindness fingerprint" `Quick test_lfp_blindness_pattern;
      Helpers.qt "Table 4 verdicts match the paper" `Quick
        test_cve_table_matches_paper;
      Helpers.qt "Table 4 row count" `Quick test_cve_count;
      Helpers.qt "Magma: redzone-bypass mechanism" `Quick test_magma_php_mechanism;
      Helpers.qt "Magma: ground truth validates" `Quick test_magma_labels;
      Helpers.qt "Magma: totals match Table 5" `Quick test_magma_totals_match_paper;
      Helpers.qt "limitation: quarantine bypass" `Quick
        test_quarantine_bypass_window;
      Helpers.qt "quarantine: UAF caught at budget < block" `Quick
        test_quarantine_uaf_large_block;
      Helpers.qt "limitation: sub-object overflows" `Quick
        test_sub_object_insensitivity;
      Helpers.qt "softbound: precise but fragile (§2.1)" `Quick
        test_softbound_precision_and_fragility;
      Helpers.qt "softbound: no false positives" `Quick
        test_softbound_no_false_positives;
    ] )
