(* Shared helpers for the test suites. *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report

let small_config =
  { Memsim.Heap.arena_size = 1 lsl 16; redzone = 16; quarantine_budget = 4096 }

let mid_config =
  { Memsim.Heap.arena_size = 1 lsl 20; redzone = 16; quarantine_budget = 64 * 1024 }

let giantsan ?(config = mid_config) () = Giantsan_core.Gs_runtime.create config
let asan ?(config = mid_config) () = Giantsan_asan.Asan_runtime.create config
let lfp ?(config = mid_config) () = Giantsan_lfp.Lfp_runtime.create config
let native ?(config = mid_config) () = Giantsan_sanitizer.Native.create config

let check_is_safe = function None -> true | Some (_ : Report.t) -> false

(* A randomly populated heap: some live objects, some freed. Returns the
   sanitizer plus the object lists, for oracle-vs-checker property tests. *)
let random_scene (rng : Giantsan_util.Rng.t) make_san =
  let san = make_san () in
  let live = ref [] and freed = ref [] in
  let n_objects = Giantsan_util.Rng.int_in rng 3 12 in
  for _ = 1 to n_objects do
    let size = Giantsan_util.Rng.int_in rng 0 300 in
    let obj = san.San.malloc size in
    if Giantsan_util.Rng.int rng 4 = 0 then begin
      ignore (san.San.free obj.Memsim.Memobj.base);
      freed := obj :: !freed
    end
    else live := obj :: !live
  done;
  (san, !live, !freed)

let oracle_safe (san : San.t) ~lo ~hi =
  let oracle = Memsim.Heap.oracle san.San.heap in
  let size = Memsim.Arena.size (Memsim.Heap.arena san.San.heap) in
  if lo < 0 || hi > size || lo > hi then false
  else Memsim.Oracle.range_addressable oracle ~lo ~hi

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Quick alcotest shorthands *)
let qt = Alcotest.test_case
let q name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 arb prop)
