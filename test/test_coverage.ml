(* Targeted small tests for surfaces the larger suites exercise only
   incidentally. *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Counters = Giantsan_sanitizer.Counters
module Interceptors = Giantsan_sanitizer.Interceptors
module Table = Giantsan_util.Table
module Rng = Giantsan_util.Rng
module Shadow_mem = Giantsan_shadow.Shadow_mem
module SC = Giantsan_core.State_code
module B = Giantsan_ir.Builder
module Pp = Giantsan_ir.Pp
module Ast = Giantsan_ir.Ast

let contains = Astring_contains.contains

let test_table_alignment () =
  let out =
    Table.render
      ~aligns:[ Table.Left; Table.Left ]
      [ [ "h1"; "h2" ]; [ "a"; "b" ] ]
  in
  Alcotest.(check bool) "rendered" true (contains out "h1");
  Alcotest.(check string) "fpct" "12.34%" (Table.fpct 12.336);
  Alcotest.(check string) "f2" "1.50" (Table.f2 1.5)

let test_report_classification_edges () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let heap = san.San.heap in
  (* near-null *)
  Alcotest.(check string) "null page" "null-dereference"
    (Report.kind_name (Report.classify_access heap ~addr:4 ~base:None));
  (* unallocated middle of the arena *)
  Alcotest.(check string) "wild" "wild-access"
    (Report.kind_name (Report.classify_access heap ~addr:30000 ~base:None));
  (* beyond the arena *)
  Alcotest.(check string) "off the end" "wild-access"
    (Report.kind_name
       (Report.classify_access heap ~addr:(1 lsl 40) ~base:None));
  (* overflow vs underflow depends on the anchor *)
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check string) "underflow rel anchor" "heap-buffer-underflow"
    (Report.kind_name
       (Report.classify_access heap ~addr:(base - 2) ~base:(Some base)));
  Alcotest.(check string) "overflow rel anchor" "heap-buffer-overflow"
    (Report.kind_name
       (Report.classify_access heap ~addr:(base + 66) ~base:(Some base)))

let test_counters_add_reset () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.instr_checks <- 3;
  b.Counters.instr_checks <- 4;
  b.Counters.cache_hits <- 2;
  Counters.add a b;
  Alcotest.(check int) "summed" 7 a.Counters.instr_checks;
  Alcotest.(check int) "merged" 2 a.Counters.cache_hits;
  Alcotest.(check int) "total" 9 (Counters.total_checks a);
  Counters.reset a;
  Alcotest.(check int) "reset" 0 (Counters.total_checks a);
  Alcotest.(check bool) "pp renders" true
    (contains (Format.asprintf "%a" Counters.pp b) "instr_checks")

let test_native_is_silent_everywhere () =
  let san = Helpers.native ~config:Helpers.small_config () in
  let obj = san.San.malloc 64 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check bool) "wild access unnoticed" true
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 5000) ~width:8));
  Alcotest.(check bool) "bad region unnoticed" true
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 5000)));
  Alcotest.(check bool) "double free unnoticed" true
    (san.San.free base = None && san.San.free base = None);
  Alcotest.(check int) "no shadow" 0 (san.San.shadow_loads ())

let test_pp_functions_and_globals () =
  let f =
    B.func "f" ~params:[ "x"; "y" ]
      [ B.alloca "t" (B.i 16); B.return_ (Some B.(v "x" + v "y")) ]
  in
  let prog =
    B.program ~globals:[ ("g", 64) ] ~funcs:[ f ] "main"
      [ B.call ~dst:"r" "f" [ B.i 1; B.i 2 ]; B.return_ None ]
  in
  let s = Pp.program_to_string prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prints " ^ needle) true (contains s needle))
    [ "global g[64]"; "f(x, y)"; "alloca(16)"; "return (x + y);"; "r = f(1, 2)";
      "return;" ]

let test_shadow_mem_edges () =
  let m = Shadow_mem.create ~segments:8 ~fill:SC.unallocated in
  (* regression: out-of-range loads return the fill WITHOUT counting —
     they touch no metadata, so charging them skewed the event-count
     ns/op model for workloads straddling the arena end (the load-side
     mirror of the fill_range clamp-then-count fix) *)
  Alcotest.(check int) "past the end" SC.unallocated (Shadow_mem.load m 100);
  Alcotest.(check int) "negative" SC.unallocated (Shadow_mem.load m (-1));
  Alcotest.(check int) "out-of-arena probes are free" 0 (Shadow_mem.loads m);
  Alcotest.(check int) "in-range load counts" SC.unallocated
    (Shadow_mem.load m 3);
  Alcotest.(check int) "exactly the in-arena load counted" 1
    (Shadow_mem.loads m);
  (* word loads follow the same rule: one load per word that overlaps the
     arena, nothing for a word entirely outside *)
  Shadow_mem.reset_counters m;
  ignore (Shadow_mem.load_word m 0);
  Alcotest.(check int) "in-arena word: one load" 1 (Shadow_mem.loads m);
  ignore (Shadow_mem.load_word m 4);
  Alcotest.(check int) "arena-end straddle: one load" 2 (Shadow_mem.loads m);
  ignore (Shadow_mem.load_word m 100);
  ignore (Shadow_mem.load_word m (-8));
  Alcotest.(check int) "fully outside words are free" 2 (Shadow_mem.loads m);
  ignore (Shadow_mem.peek_word m 0);
  Alcotest.(check int) "peek_word is uncounted" 2 (Shadow_mem.loads m);
  (* out-of-range stores are dropped silently *)
  Shadow_mem.set m 100 7;
  Alcotest.(check int) "in-range unaffected" SC.unallocated (Shadow_mem.peek m 7);
  Shadow_mem.fill_range m ~lo:(-3) ~hi:3 9;
  Alcotest.(check int) "clamped fill" 9 (Shadow_mem.peek m 0)

let test_interceptor_edges () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let obj = san.San.malloc 16 in
  let base = obj.Memsim.Memobj.base in
  Alcotest.(check int) "strncpy n=0" 0
    (List.length (Interceptors.strncpy san ~dst:base ~src:base ~n:0));
  Alcotest.(check int) "memmove n=0" 0
    (List.length (Interceptors.memmove san ~dst:base ~src:base ~n:0));
  Alcotest.(check int) "memset n<0" 0
    (List.length (Interceptors.memset san ~dst:base ~n:(-5) ~byte:1));
  (* empty string round trip *)
  let a = Memsim.Heap.arena san.San.heap in
  Memsim.Arena.store a ~addr:base ~width:1 0;
  let len, reps = Interceptors.strlen san ~addr:base in
  Alcotest.(check int) "empty strlen" 0 len;
  Alcotest.(check int) "clean" 0 (List.length reps)

let test_realloc_shrink () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let obj = san.San.malloc 128 in
  let a = Memsim.Heap.arena san.San.heap in
  Memsim.Arena.store a ~addr:obj.Memsim.Memobj.base ~width:8 777;
  match Interceptors.realloc san ~ptr:obj.Memsim.Memobj.base ~size:32 with
  | Ok fresh ->
    Alcotest.(check int) "shrunk" 32 fresh.Memsim.Memobj.size;
    Alcotest.(check int) "prefix kept" 777
      (Memsim.Arena.load a ~addr:fresh.Memsim.Memobj.base ~width:8);
    Alcotest.(check bool) "tail not addressable" false
      (Helpers.check_is_safe
         (san.San.access ~base:fresh.Memsim.Memobj.base
            ~addr:(fresh.Memsim.Memobj.base + 32) ~width:1))
  | Error r -> Alcotest.failf "shrink failed: %s" (Report.to_string r)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  let va = Rng.next64 a and vb = Rng.next64 b in
  Alcotest.(check int64) "same next after copy" va vb;
  ignore (Rng.next64 a);
  (* b unaffected by a's extra draws *)
  Alcotest.(check bool) "independent streams" true (Rng.next64 a <> Rng.next64 b)

let test_exposed_shadow_is_the_live_one () =
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let obj = san.San.malloc 64 in
  Alcotest.(check int) "freshly folded" (SC.folded 3)
    (Shadow_mem.peek m (obj.Memsim.Memobj.base / 8));
  ignore (san.San.free obj.Memsim.Memobj.base);
  Alcotest.(check int) "freed through the same shadow" SC.freed
    (Shadow_mem.peek m (obj.Memsim.Memobj.base / 8))

let test_scenario_loop_offsets_edges () =
  let open Giantsan_bugs.Scenario in
  (* one descending step, none, and an empty ascending range *)
  let sc from_ to_ step =
    {
      sc_id = "x";
      sc_cwe = 0;
      sc_buggy = false;
      sc_steps =
        [
          Alloc { slot = 0; size = 64; kind = Memsim.Memobj.Heap };
          Access_loop { slot = 0; from_; to_; step; width = 1 };
        ];
    }
  in
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  Alcotest.(check bool) "empty range runs clean" true
    (not (run san (sc 5 5 1)));
  Alcotest.(check bool) "single descending step clean" true
    (not (run (Helpers.giantsan ~config:Helpers.small_config ()) (sc 5 4 (-1))))

let test_lfp_region_of_freed () =
  let san = Helpers.lfp ~config:Helpers.small_config () in
  let obj = san.San.malloc 64 in
  ignore (san.San.free obj.Memsim.Memobj.base);
  Alcotest.(check bool) "region over freed slot flagged" false
    (Helpers.check_is_safe
       (san.San.check_region ~lo:obj.Memsim.Memobj.base
          ~hi:(obj.Memsim.Memobj.base + 32)))

let test_asanmm_shares_asan_runtime_behaviour () =
  let asan = Helpers.asan ~config:Helpers.small_config () in
  let asanmm =
    Giantsan_asan.Asan_runtime.create_named "ASan--" Helpers.small_config
  in
  let oa = asan.San.malloc 100 and om = asanmm.San.malloc 100 in
  Alcotest.(check int) "identical layout" oa.Memsim.Memobj.base
    om.Memsim.Memobj.base;
  let probe (san : San.t) base =
    List.map
      (fun off ->
        Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + off) ~width:1))
      [ 0; 99; 100; -1 ]
  in
  Alcotest.(check (list bool)) "identical verdicts"
    (probe asan oa.Memsim.Memobj.base)
    (probe asanmm om.Memsim.Memobj.base)

let suite =
  ( "coverage",
    [
      Helpers.qt "table rendering options" `Quick test_table_alignment;
      Helpers.qt "report classification edges" `Quick
        test_report_classification_edges;
      Helpers.qt "counters add/reset/pp" `Quick test_counters_add_reset;
      Helpers.qt "native baseline is truly blind" `Quick
        test_native_is_silent_everywhere;
      Helpers.qt "pp: functions and globals" `Quick test_pp_functions_and_globals;
      Helpers.qt "shadow memory edges" `Quick test_shadow_mem_edges;
      Helpers.qt "interceptor edge cases" `Quick test_interceptor_edges;
      Helpers.qt "realloc shrink keeps prefix" `Quick test_realloc_shrink;
      Helpers.qt "rng copy independence" `Quick test_rng_copy_independent;
      Helpers.qt "create_exposed shadow is live" `Quick
        test_exposed_shadow_is_the_live_one;
      Helpers.qt "scenario loop edge ranges" `Quick
        test_scenario_loop_offsets_edges;
      Helpers.qt "lfp: region over freed slot" `Quick test_lfp_region_of_freed;
      Helpers.qt "asan--: same runtime as asan" `Quick
        test_asanmm_shares_asan_runtime_behaviour;
    ] )
