open Giantsan_util

let test_log2_floor () =
  Alcotest.(check int) "log2 1" 0 (Bitops.log2_floor 1);
  Alcotest.(check int) "log2 2" 1 (Bitops.log2_floor 2);
  Alcotest.(check int) "log2 3" 1 (Bitops.log2_floor 3);
  Alcotest.(check int) "log2 4" 2 (Bitops.log2_floor 4);
  Alcotest.(check int) "log2 1023" 9 (Bitops.log2_floor 1023);
  Alcotest.(check int) "log2 1024" 10 (Bitops.log2_floor 1024);
  Alcotest.(check int) "log2 max" 61 (Bitops.log2_floor (1 lsl 61))

let test_log2_ceil () =
  Alcotest.(check int) "ceil 1" 0 (Bitops.log2_ceil 1);
  Alcotest.(check int) "ceil 2" 1 (Bitops.log2_ceil 2);
  Alcotest.(check int) "ceil 3" 2 (Bitops.log2_ceil 3);
  Alcotest.(check int) "ceil 1025" 11 (Bitops.log2_ceil 1025)

let test_align () =
  Alcotest.(check int) "down 0" 0 (Bitops.align_down 8 7);
  Alcotest.(check int) "down 8" 8 (Bitops.align_down 8 15);
  Alcotest.(check int) "down exact" 16 (Bitops.align_down 8 16);
  Alcotest.(check int) "up 8" 8 (Bitops.align_up 8 1);
  Alcotest.(check int) "up exact" 16 (Bitops.align_up 8 16);
  Alcotest.(check int) "up 0" 0 (Bitops.align_up 8 0);
  Alcotest.(check bool) "aligned yes" true (Bitops.is_aligned 8 64);
  Alcotest.(check bool) "aligned no" false (Bitops.is_aligned 8 63)

let test_cdiv () =
  Alcotest.(check int) "cdiv exact" 4 (Bitops.cdiv 32 8);
  Alcotest.(check int) "cdiv up" 5 (Bitops.cdiv 33 8);
  Alcotest.(check int) "cdiv zero" 0 (Bitops.cdiv 0 8)

let test_pow2_props =
  Helpers.q "pow2/log2 round-trip"
    QCheck.(int_range 0 60)
    (fun x -> Bitops.log2_floor (Bitops.pow2 x) = x)

let test_log2_bounds =
  Helpers.q "2^floor(log2 n) <= n < 2^(floor+1)"
    QCheck.(int_range 1 (1 lsl 40))
    (fun n ->
      let f = Bitops.log2_floor n in
      Bitops.pow2 f <= n && n < Bitops.pow2 (f + 1))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 9)
  done

let test_rng_weighted () =
  let rng = Rng.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.weighted rng [ (1, "a"); (2, "b"); (0, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Alcotest.(check bool) "no zero-weight picks" true
    (Hashtbl.find_opt counts "c" = None);
  let a = Hashtbl.find counts "a" and b = Hashtbl.find counts "b" in
  Alcotest.(check bool) "roughly 1:2" true (b > a)

let test_rng_shuffle () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_weighted_edges () =
  let rng = Rng.create 23 in
  (* zero-weight entries surrounding the only live one are never picked *)
  for _ = 1 to 500 do
    Alcotest.(check string) "single live entry" "only"
      (Rng.weighted rng [ (0, "a"); (5, "only"); (0, "b") ])
  done;
  (* a zero-weight head must not absorb the roll for the first live entry *)
  for _ = 1 to 500 do
    Alcotest.(check string) "zero-weight head skipped" "live"
      (Rng.weighted rng [ (0, "dead"); (1, "live") ])
  done

let test_rng_int_in_degenerate () =
  let rng = Rng.create 29 in
  for _ = 1 to 100 do
    Alcotest.(check int) "lo = hi" 7 (Rng.int_in rng 7 7);
    Alcotest.(check int) "negative point range" (-3) (Rng.int_in rng (-3) (-3))
  done;
  Alcotest.(check int) "bound 1" 0 (Rng.int rng 1)

let test_rng_shuffle_tiny () =
  let rng = Rng.create 31 in
  let empty : int array = [||] in
  Rng.shuffle rng empty;
  Alcotest.(check (array int)) "empty untouched" [||] empty;
  let one = [| 42 |] in
  Rng.shuffle rng one;
  Alcotest.(check (array int)) "singleton untouched" [| 42 |] one;
  Alcotest.(check int) "pick singleton" 9 (Rng.pick rng [| 9 |])

let test_bitops_edges () =
  Alcotest.(check int) "pow2 0" 1 (Bitops.pow2 0);
  Alcotest.(check int) "pow2 61" (1 lsl 61) (Bitops.pow2 61);
  Alcotest.(check bool) "is_pow2 1" true (Bitops.is_pow2 1);
  Alcotest.(check bool) "is_pow2 2" true (Bitops.is_pow2 2);
  Alcotest.(check bool) "is_pow2 3" false (Bitops.is_pow2 3);
  Alcotest.(check bool) "is_pow2 63" false (Bitops.is_pow2 63);
  Alcotest.(check bool) "is_pow2 64" true (Bitops.is_pow2 64);
  Alcotest.(check int) "align_down 1" 17 (Bitops.align_down 1 17);
  Alcotest.(check int) "align_up 1" 17 (Bitops.align_up 1 17);
  Alcotest.(check bool) "everything 1-aligned" true (Bitops.is_aligned 1 13);
  Alcotest.(check int) "cdiv 1 1" 1 (Bitops.cdiv 1 1);
  Alcotest.(check int) "cdiv n<d" 1 (Bitops.cdiv 3 8)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "ratio" 150.0 (Stats.ratio_pct 3.0 2.0);
  Alcotest.(check (float 1e-9)) "stddev const" 0.0 (Stats.stddev [ 5.0; 5.0 ])

let test_geomean_scale_invariance =
  Helpers.q "geomean(kx) = k*geomean(x)"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 8) (float_range 0.5 10.0)) (float_range 0.5 4.0))
    (fun (xs, k) ->
      match xs with
      | [] -> true
      | xs ->
        let a = Stats.geomean (List.map (fun x -> x *. k) xs) in
        let b = k *. Stats.geomean xs in
        abs_float (a -. b) < 1e-6 *. (1.0 +. abs_float b))

let test_table_render () =
  let out =
    Table.render [ [ "name"; "value" ]; [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  (* all data lines share the same width *)
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "4 lines" 4 (List.length lines)

let suite =
  ( "util",
    [
      Helpers.qt "bitops: log2_floor" `Quick test_log2_floor;
      Helpers.qt "bitops: log2_ceil" `Quick test_log2_ceil;
      Helpers.qt "bitops: align" `Quick test_align;
      Helpers.qt "bitops: cdiv" `Quick test_cdiv;
      test_pow2_props;
      test_log2_bounds;
      Helpers.qt "rng: determinism" `Quick test_rng_determinism;
      Helpers.qt "rng: bounds" `Quick test_rng_bounds;
      Helpers.qt "rng: weighted" `Quick test_rng_weighted;
      Helpers.qt "rng: shuffle is a permutation" `Quick test_rng_shuffle;
      Helpers.qt "rng: weighted zero-weight edges" `Quick
        test_rng_weighted_edges;
      Helpers.qt "rng: degenerate ranges" `Quick test_rng_int_in_degenerate;
      Helpers.qt "rng: shuffle/pick on tiny arrays" `Quick
        test_rng_shuffle_tiny;
      Helpers.qt "bitops: edge cases" `Quick test_bitops_edges;
      Helpers.qt "stats: basics" `Quick test_stats;
      test_geomean_scale_invariance;
      Helpers.qt "table: render" `Quick test_table_render;
    ] )
