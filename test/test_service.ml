(* The multi-tenant service loop's contracts: byte-determinism of the
   whole observability plane across runs and across --jobs, strict tenant
   isolation under planted chaos faults, SLO watchdog escalation, flight
   recorder boundedness, and backpressure accounting. *)

module Loop = Giantsan_service.Loop
module Tenant = Giantsan_service.Tenant
module Slo = Giantsan_service.Slo
module Fault = Giantsan_chaos.Fault
module Export = Giantsan_telemetry.Export
module Backend = Giantsan_policy.Backend
module Pac = Giantsan_pac.Pac

let base_cfg =
  { Loop.default_config with Loop.tenants = 3; seed = 13; ticks = 40 }

(* Everything observable about a run, as one string. *)
let fingerprint (o : Loop.outcome) =
  String.concat "\n"
    (Loop.render_summary o
     :: List.concat_map
          (fun (id, lines) -> Printf.sprintf "recorder %d" id :: lines)
          o.Loop.o_recorders)

let test_deterministic_across_runs =
  Helpers.qt "same config, same bytes" `Quick (fun () ->
      let a = Loop.run base_cfg and b = Loop.run base_cfg in
      Alcotest.(check string) "fingerprint" (fingerprint a) (fingerprint b))

let test_deterministic_across_jobs =
  Helpers.qt "jobs 1/2/4 are byte-identical" `Quick (fun () ->
      let expected = fingerprint (Loop.run { base_cfg with Loop.jobs = 1 }) in
      List.iter
        (fun jobs ->
          let got = fingerprint (Loop.run { base_cfg with Loop.jobs = jobs }) in
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d" jobs)
            expected got)
        [ 2; 4 ])

let test_chaos_isolated_to_victim =
  Helpers.qt "planted fault perturbs exactly the victim tenant" `Quick
    (fun () ->
      let clean = Loop.run base_cfg in
      let chaotic =
        Loop.run
          { base_cfg with Loop.chaos = Some (1, Fault.Stale_free { pick = 9 }, 8) }
      in
      Alcotest.(check bool) "clean run healthy" true (Loop.healthy clean);
      Alcotest.(check bool) "chaotic run degraded" false (Loop.healthy chaotic);
      (* the fault is attributed to tenant 1 and only tenant 1 *)
      Alcotest.(check (list int))
        "faulted tenants" [ 1 ]
        (List.map fst chaotic.Loop.o_faults);
      Alcotest.(check (list int))
        "dumped tenants" [ 1 ]
        (List.map fst chaotic.Loop.o_dumps);
      (* the victim's recorder carries the fault event ... *)
      let recorder o id = List.assoc id o.Loop.o_recorders in
      Alcotest.(check bool)
        "victim recorder has tenant_fault" true
        (List.exists
           (fun l -> Helpers.contains l "\"ev\":\"tenant_fault\"")
           (recorder chaotic 1));
      (* ... and the bystanders' planes are byte-identical to the clean
         run: quarantining tenant 1 never perturbs tenants 0 and 2 *)
      List.iter
        (fun id ->
          Alcotest.(check (list string))
            (Printf.sprintf "tenant %d recorder unperturbed" id)
            (recorder clean id) (recorder chaotic id))
        [ 0; 2 ])

let test_slo_escalation =
  Helpers.qt "impossible SLO walks every tenant to quarantined" `Quick
    (fun () ->
      let cfg =
        {
          base_cfg with
          Loop.slo = { Slo.none with Slo.min_ops_per_sec = Some 1e12 };
        }
      in
      let o = Loop.run cfg in
      Alcotest.(check bool) "not healthy" false (Loop.healthy o);
      Alcotest.(check int) "all quarantined" cfg.Loop.tenants o.Loop.o_quarantined;
      List.iter
        (fun (s : Loop.tenant_summary) ->
          Alcotest.(check bool)
            (Printf.sprintf "tenant %d state" s.Loop.s_id)
            true
            (s.Loop.s_state = Tenant.Quarantined);
          (* the escalation ladder needs exactly three breached windows *)
          Alcotest.(check int)
            (Printf.sprintf "tenant %d breaches" s.Loop.s_id)
            3 s.Loop.s_breaches;
          (* the recorder is a *bounded* window: earlier breach events get
             evicted by the ops between windows, but the terminal breach
             and the quarantine transition must be on it *)
          let rec_lines = List.assoc s.Loop.s_id o.Loop.o_recorders in
          let has needle =
            List.exists (fun l -> Helpers.contains l needle) rec_lines
          in
          Alcotest.(check bool) "slo_breach on recorder" true
            (has "\"ev\":\"slo_breach\"");
          Alcotest.(check bool) "quarantine transition on recorder" true
            (has "\"state\":\"quarantined\""))
        o.Loop.o_tenants;
      (* a quarantined tenant sheds its whole arrival stream *)
      Alcotest.(check bool) "arrivals shed after quarantine" true (o.Loop.o_shed > 0))

let test_recovery_resets_streak =
  Helpers.qt "breach streak resets on a clean window" `Quick (fun () ->
      (* generous SLO: no window can breach, streaks stay at 0 *)
      let cfg =
        { base_cfg with Loop.slo = { Slo.none with Slo.max_error_rate = Some 1.0 } }
      in
      let o = Loop.run cfg in
      Alcotest.(check bool) "healthy" true (Loop.healthy o);
      Alcotest.(check int) "no breaches" 0 o.Loop.o_breaches)

let test_recorder_bounded =
  Helpers.qt "flight recorder never exceeds its cap" `Quick (fun () ->
      let cap = 16 in
      let cfg =
        {
          base_cfg with
          Loop.tenant_cfg =
            { Tenant.default_config with Tenant.recorder_cap = cap };
        }
      in
      let o = Loop.run cfg in
      List.iter
        (fun (id, lines) ->
          Alcotest.(check bool)
            (Printf.sprintf "tenant %d recorder bounded" id)
            true
            (List.length lines <= cap);
          (* dumps are replayable: every line passes the strict checker *)
          match Export.check_ndjson (String.concat "\n" lines) with
          | Ok n -> Alcotest.(check int) "all lines valid" (List.length lines) n
          | Error e -> Alcotest.fail e)
        o.Loop.o_recorders)

let test_backpressure_sheds =
  Helpers.qt "a tiny queue sheds arrivals without corrupting the stream"
    `Quick (fun () ->
      let cfg =
        {
          base_cfg with
          Loop.quantum = 2;
          arrival_mean = 24;
          tenant_cfg = { Tenant.default_config with Tenant.queue_cap = 8 };
        }
      in
      let o = Loop.run cfg in
      Alcotest.(check bool) "shed some arrivals" true (o.Loop.o_shed > 0);
      Alcotest.(check bool) "still served ops" true (o.Loop.o_ops > 0);
      (* shedding must not break determinism *)
      Alcotest.(check string) "still deterministic" (fingerprint o)
        (fingerprint (Loop.run cfg)))

let test_stalled_tenant_escalates =
  Helpers.qt "a fully stalled tenant escalates instead of looking healthy"
    `Quick (fun () ->
      (* quantum 0: nothing is ever served, so no rate window ever closes
         and the watchdog has no window to evaluate — the old logic left
         the wedged tenants Healthy for the whole run. Zero-progress ticks
         with queued demand now count against the breach streak. *)
      let cfg =
        {
          base_cfg with
          Loop.tenants = 2;
          ticks = 12;
          quantum = 0;
          slo = { Slo.none with Slo.min_ops_per_sec = Some 1.0 };
        }
      in
      let o = Loop.run cfg in
      Alcotest.(check bool) "not healthy" false (Loop.healthy o);
      Alcotest.(check int) "both tenants quarantined" 2 o.Loop.o_quarantined;
      Alcotest.(check int) "no ops were ever completed" 0 o.Loop.o_ops;
      Alcotest.(check bool) "backpressure: demand was shed" true
        (o.Loop.o_shed > 0);
      List.iter
        (fun (s : Loop.tenant_summary) ->
          Alcotest.(check int)
            (Printf.sprintf "tenant %d: three stall breaches" s.Loop.s_id)
            3 s.Loop.s_breaches)
        o.Loop.o_tenants;
      let rec_lines = List.assoc 0 o.Loop.o_recorders in
      Alcotest.(check bool) "synthetic breach named on the recorder" true
        (List.exists (fun l -> Helpers.contains l "stalled") rec_lines);
      (* without an SLO the stall gate stays off: a wedged tenant is only
         an SLO matter when objectives are configured *)
      let off = Loop.run { cfg with Loop.slo = Slo.none } in
      Alcotest.(check int) "gate off without an SLO" 0 off.Loop.o_breaches;
      Alcotest.(check int) "nobody quarantined without an SLO" 0
        off.Loop.o_quarantined)

let test_service_rows =
  Helpers.qt "service rows: global row aggregates the tenant rows" `Quick
    (fun () ->
      let o = Loop.run base_cfg in
      match Loop.service_rows o with
      | [] -> Alcotest.fail "no rows"
      | global :: tenants ->
        Alcotest.(check string) "global first" "global" global.Export.sv_scope;
        Alcotest.(check int) "tenant rows" base_cfg.Loop.tenants
          (List.length tenants);
        let sum f = List.fold_left (fun a r -> a + f r) 0 tenants in
        Alcotest.(check int) "ops add up" global.Export.sv_ops
          (sum (fun r -> r.Export.sv_ops));
        Alcotest.(check int) "errors add up" global.Export.sv_errors
          (sum (fun r -> r.Export.sv_errors));
        Alcotest.(check bool) "latency populated" true
          (global.Export.sv_latency_p50 > 0.0
          && global.Export.sv_latency_p999 >= global.Export.sv_latency_p99
          && global.Export.sv_latency_p99 >= global.Export.sv_latency_p50);
        Alcotest.(check bool) "throughput populated" true
          (global.Export.sv_ops_per_sec > 0.0))

let test_bench_roundtrip =
  Helpers.qt "bench JSON service section survives a write/parse loop" `Quick
    (fun () ->
      let o = Loop.run base_cfg in
      let rows = Loop.service_rows o in
      let body = Export.bench_json ~groups:[] ~profiles:[] ~service:rows () in
      match Export.parse_bench_service body with
      | Error e -> Alcotest.fail e
      | Ok parsed ->
        Alcotest.(check int) "row count" (List.length rows) (List.length parsed);
        List.iter2
          (fun (a : Export.service_row) (b : Export.service_row) ->
            Alcotest.(check string) "scope" a.Export.sv_scope b.Export.sv_scope;
            Alcotest.(check int) "ops" a.Export.sv_ops b.Export.sv_ops;
            Alcotest.(check (float 1e-9)) "p999" a.Export.sv_latency_p999
              b.Export.sv_latency_p999;
            Alcotest.(check (float 1e-9)) "ops/s" a.Export.sv_ops_per_sec
              b.Export.sv_ops_per_sec)
          rows parsed)

let test_slo_parse =
  Helpers.qt "SLO spec parse/print round trip and named errors" `Quick
    (fun () ->
      (match Slo.parse "p999=20000,err=0.05,ops=50000" with
      | Error e -> Alcotest.fail e
      | Ok t ->
        Alcotest.(check string) "round trip" "p999=20000,err=0.05,ops=50000"
          (Slo.to_string t));
      (match Slo.parse "" with
      | Ok t -> Alcotest.(check bool) "empty is none" true (Slo.is_none t)
      | Error e -> Alcotest.fail e);
      (match Slo.parse "latency=3" with
      | Ok _ -> Alcotest.fail "unknown key accepted"
      | Error e ->
        Alcotest.(check bool) "names the key" true
          (Helpers.contains e "latency"));
      match Slo.parse "p999=banana" with
      | Ok _ -> Alcotest.fail "bad number accepted"
      | Error e ->
        Alcotest.(check bool) "names the value" true
          (Helpers.contains e "banana"))

let test_quantum_halved_when_degraded =
  Helpers.qt "a degraded tenant serves at half quantum" `Quick (fun () ->
      (* SLO low enough to breach once windows close, but watch only two
         windows' worth: the tenant should pass through Degraded *)
      let cfg =
        {
          base_cfg with
          Loop.tenants = 1;
          ticks = 60;
          slo = { Slo.none with Slo.min_ops_per_sec = Some 1e12 };
          (* deep recorder: keep the whole escalation ladder on it *)
          tenant_cfg =
            { Tenant.default_config with Tenant.recorder_cap = 4096 };
        }
      in
      let o = Loop.run cfg in
      let s = List.hd o.Loop.o_tenants in
      let rec_lines = List.assoc 0 o.Loop.o_recorders in
      Alcotest.(check bool) "went through degraded" true
        (List.exists
           (fun l -> Helpers.contains l "\"state\":\"degraded\"")
           rec_lines);
      Alcotest.(check bool) "ended quarantined" true
        (s.Loop.s_state = Tenant.Quarantined))

(* Per-tenant PA keys: two tenants of the same service run derive
   distinct keys, the key survives repartition (a tenant downshifted off
   PAC and upshifted back keeps its signing identity), and a pointer
   signed under tenant A's key fails authentication — as a forge, not a
   stale — under tenant B's, even at the same salt-counter position. *)
let test_per_tenant_pac_keys =
  Helpers.qt "cross-tenant PAC forge isolation" `Quick (fun () ->
      let cfg = { Tenant.default_config with Tenant.backend = Backend.Pac } in
      let ta = Tenant.create ~id:0 ~seed:13 cfg in
      let tb = Tenant.create ~id:1 ~seed:13 cfg in
      Alcotest.(check bool)
        "keys differ" true
        (Tenant.pac_key ta <> Tenant.pac_key tb);
      let key_before = Tenant.pac_key ta in
      Tenant.repartition ta ~backend:Backend.Giantsan;
      Tenant.repartition ta ~backend:Backend.Pac;
      Alcotest.(check int) "key survives repartition" key_before
        (Tenant.pac_key ta);
      let pa = Pac.create ~key:(Tenant.pac_key ta) () in
      let pb = Pac.create ~key:(Tenant.pac_key tb) () in
      let base = 4096 in
      let tagged_a = Pac.sign pa ~base in
      ignore (Pac.sign pb ~base);
      (match Pac.authenticate pb tagged_a ~base with
      | Error (Pac.Forged _) -> ()
      | Ok _ ->
        Alcotest.fail "tenant A's signature authenticated under tenant B's key"
      | Error Pac.Stale -> Alcotest.fail "expected forged, got stale");
      match Pac.authenticate pa tagged_a ~base with
      | Ok _ -> ()
      | Error f -> Alcotest.fail ("self-auth failed: " ^ Pac.failure_to_string f))

let suite =
  ( "service",
    [
      test_deterministic_across_runs;
      test_deterministic_across_jobs;
      test_chaos_isolated_to_victim;
      test_slo_escalation;
      test_recovery_resets_streak;
      test_recorder_bounded;
      test_backpressure_sheds;
      test_stalled_tenant_escalates;
      test_service_rows;
      test_bench_roundtrip;
      test_slo_parse;
      test_quantum_halved_when_degraded;
      test_per_tenant_pac_keys;
    ] )
