(* The coverage-guided differential fuzzing subsystem: corpus format
   round-trips, mutation well-formedness, engine determinism, coverage
   growth over the pure-random baseline, the injected-misfold self-test
   (find + shrink), and the regression-corpus replay. *)

module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Harness = Giantsan_bugs.Harness
module Rng = Giantsan_util.Rng
module Folding = Giantsan_core.Folding
module Coverage = Giantsan_fuzz.Coverage
module Corpus = Giantsan_fuzz.Corpus
module Mutate = Giantsan_fuzz.Mutate
module Shrink = Giantsan_fuzz.Shrink
module Exec = Giantsan_fuzz.Exec
module Engine = Giantsan_fuzz.Engine

let regressions_dir = "corpus/regressions"

let violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
    Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
  ]

let any_scenario seed =
  if seed mod 2 = 0 then Difftest.gen_clean ~seed
  else
    Difftest.gen_buggy ~seed
      (List.nth violations (seed / 2 mod List.length violations))

(* --- coverage map ------------------------------------------------------- *)

let test_coverage_map () =
  let c = Coverage.create () in
  Alcotest.(check int) "fresh empty" 0 (Coverage.size c);
  Alcotest.(check int) "two novel" 2 (Coverage.add c [ "a"; "b" ]);
  Alcotest.(check int) "one novel, one repeat" 1 (Coverage.add c [ "a"; "c" ]);
  Alcotest.(check int) "all seen" 0 (Coverage.add c [ "a"; "b"; "c" ]);
  Alcotest.(check int) "size" 3 (Coverage.size c);
  Alcotest.(check bool) "mem" true (Coverage.mem c "b");
  Alcotest.(check int) "bucket 0" 0 (Coverage.bucket 0);
  Alcotest.(check int) "bucket 1" 1 (Coverage.bucket 1);
  Alcotest.(check int) "bucket 2,3 equal" (Coverage.bucket 2) (Coverage.bucket 3);
  Alcotest.(check bool) "bucket separates decades" true
    (Coverage.bucket 10 <> Coverage.bucket 1000)

(* --- corpus format ------------------------------------------------------ *)

let test_corpus_roundtrip =
  Helpers.q "corpus text round-trips every generated scenario"
    QCheck.small_int
    (fun seed ->
      let sc = any_scenario seed in
      match Corpus.of_string (Corpus.to_string sc) with
      | Ok back ->
        back.Scenario.sc_id = sc.Scenario.sc_id
        && back.Scenario.sc_cwe = sc.Scenario.sc_cwe
        && back.Scenario.sc_buggy = sc.Scenario.sc_buggy
        && back.Scenario.sc_steps = sc.Scenario.sc_steps
      | Error _ -> false)

let test_corpus_rejects () =
  (match Corpus.of_string "alloc 0 8 heap\nbuggy true\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a lying label");
  (match Corpus.of_string "alloc 0 8 pluto\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bad kind");
  (match Corpus.of_string "loop 0 0 8 0 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a zero-step loop");
  match Corpus.of_string "# only comments\n\n" with
  | Ok sc -> Alcotest.(check int) "empty scenario" 0 (List.length sc.Scenario.sc_steps)
  | Error e -> Alcotest.failf "rejected empty corpus file: %s" e

(* --- mutation engine ---------------------------------------------------- *)

let test_mutants_always_executable =
  Helpers.q "every mutant executes (no unallocated slots, no OOM)"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 101) in
      let pool = Array.of_list (List.init 4 (fun i -> any_scenario (seed + i))) in
      let sc = ref pool.(0) in
      let ok = ref true in
      (* a lineage of 12 successive mutations, like the fuzzer produces *)
      for _ = 1 to 12 do
        sc := Mutate.mutate rng ~pool !sc;
        (match Exec.run !sc with Ok _ -> () | Error _ -> ok := false);
        ok := !ok && List.length !sc.Scenario.sc_steps <= Mutate.max_steps
      done;
      !ok)

let test_repair_relabel =
  Helpers.q "repair keeps sc_buggy consistent with ground truth"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 55) in
      let pool = [| any_scenario seed |] in
      let m = Mutate.mutate rng ~pool pool.(0) in
      m.Scenario.sc_buggy = Scenario.ground_truth m
      && Scenario.validate m = Ok ())

(* --- shrinker ----------------------------------------------------------- *)

let test_shrink_overflow () =
  let sc = Difftest.gen_buggy ~seed:9 Difftest.V_overflow in
  let interesting s = Harness.detected Harness.Giantsan s in
  let shrunk = Shrink.shrink ~interesting sc in
  Alcotest.(check bool) "still interesting" true (interesting shrunk);
  Alcotest.(check bool) "no longer than input" true
    (List.length shrunk.Scenario.sc_steps <= List.length sc.Scenario.sc_steps);
  Alcotest.(check bool)
    (Printf.sprintf "minimal reproducer (got %d steps)"
       (List.length shrunk.Scenario.sc_steps))
    true
    (List.length shrunk.Scenario.sc_steps <= 3)

let test_shrink_uninteresting_input () =
  let sc = Difftest.gen_clean ~seed:3 in
  let shrunk = Shrink.shrink ~interesting:(fun _ -> false) sc in
  Alcotest.(check bool) "returned unchanged" true (shrunk = sc)

(* --- engine ------------------------------------------------------------- *)

let small_config =
  { Engine.runs = 150; seed = 11; minimize = false; inject_misfold = false;
    mode = Exec.Rebuild }

let test_engine_deterministic () =
  let a = Engine.run small_config and b = Engine.run small_config in
  Alcotest.(check string) "byte-identical summaries"
    (Engine.summary_to_string a)
    (Engine.summary_to_string b)

let test_engine_invariants_hold () =
  let s = Engine.run { small_config with Engine.runs = 400; seed = 5 } in
  Alcotest.(check int) "no divergent runs on the real runtime" 0
    s.Engine.s_divergent_runs;
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> f.Engine.f_id) s.Engine.s_findings)

let test_engine_beats_random_baseline () =
  let s = Engine.run { small_config with Engine.runs = 500; seed = 42 } in
  Alcotest.(check bool)
    (Printf.sprintf "guided %d > baseline %d on the same budget"
       s.Engine.s_coverage s.Engine.s_baseline_coverage)
    true
    (s.Engine.s_coverage > s.Engine.s_baseline_coverage)

let test_misfold_found_and_shrunk () =
  let s =
    Engine.run
      { Engine.runs = 800; seed = 42; minimize = true; inject_misfold = true;
        mode = Exec.Rebuild }
  in
  Alcotest.(check bool) "fault plan restored" true
    (Folding.current_fault () = None);
  Alcotest.(check bool) "the planted bug is found" true
    (s.Engine.s_divergent_runs > 0);
  Alcotest.(check bool) "at least one finding recorded" true
    (s.Engine.s_findings <> []);
  List.iter
    (fun f ->
      let steps = List.length f.Engine.f_scenario.Scenario.sc_steps in
      Alcotest.(check bool)
        (Printf.sprintf "%s shrunk to <= 8 events (got %d)" f.Engine.f_id steps)
        true (steps <= 8))
    s.Engine.s_findings

(* --- regression corpus -------------------------------------------------- *)

let test_regressions_replay_green () =
  let results = Engine.replay ~dir:regressions_dir () in
  Alcotest.(check bool) "corpus is not empty" true (List.length results > 0);
  List.iter
    (fun (name, problems) ->
      Alcotest.(check (list string)) (name ^ " replays green") [] problems)
    results

let test_misfold_regressions_guard_the_bug () =
  (* the two shrunk findings checked into the corpus must actually diverge
     again if the planted bug ever comes back *)
  let guards =
    List.filter
      (fun (name, _) ->
        String.length name >= 7 && String.sub name 0 7 = "misfold")
      (Engine.replay ~dir:regressions_dir ())
  in
  Alcotest.(check int) "two misfold guards present" 2 (List.length guards);
  Folding.with_fault (Some (Folding.Overstate_last 1)) (fun () ->
      List.iter
        (fun (name, _) ->
          match Corpus.load_file (Filename.concat regressions_dir name) with
          | Error e -> Alcotest.failf "%s: %s" name e
          | Ok sc ->
            Alcotest.(check bool)
              (name ^ " diverges under the planted bug")
              true (Exec.diverges sc))
        guards)

let suite =
  ( "fuzz",
    [
      Helpers.qt "coverage map basics" `Quick test_coverage_map;
      test_corpus_roundtrip;
      Helpers.qt "corpus rejects malformed input" `Quick test_corpus_rejects;
      test_mutants_always_executable;
      test_repair_relabel;
      Helpers.qt "shrinker: seeded overflow to minimal" `Quick
        test_shrink_overflow;
      Helpers.qt "shrinker: uninteresting input unchanged" `Quick
        test_shrink_uninteresting_input;
      Helpers.qt "engine: deterministic summaries" `Quick
        test_engine_deterministic;
      Helpers.qt "engine: invariants hold on the real runtime" `Slow
        test_engine_invariants_hold;
      Helpers.qt "engine: guided coverage beats random baseline" `Slow
        test_engine_beats_random_baseline;
      Helpers.qt "engine: planted misfold found and shrunk" `Slow
        test_misfold_found_and_shrunk;
      Helpers.qt "regression corpus replays green" `Quick
        test_regressions_replay_green;
      Helpers.qt "misfold regressions guard the bug class" `Quick
        test_misfold_regressions_guard_the_bug;
    ] )
