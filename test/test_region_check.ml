(* Algorithm 1 (CI) correctness: unit cases on crafted shadows, then
   property tests against the byte-level oracle on random heaps. *)

module SC = Giantsan_core.State_code
module RC = Giantsan_core.Region_check
module Folding = Giantsan_core.Folding
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer

let mk_object_shadow ~size =
  (* a standalone shadow holding one object at byte 64 *)
  let m = Shadow_mem.create ~segments:256 ~fill:SC.unallocated in
  let full = size / 8 and rem = size mod 8 in
  Shadow_mem.set m 6 SC.heap_redzone;
  Shadow_mem.set m 7 SC.heap_redzone;
  Folding.poison_good_run m ~first_seg:8 ~count:full;
  if rem > 0 then Shadow_mem.set m (8 + full) (SC.partial rem);
  (m, 64)

let safe o = RC.is_safe o

let test_whole_object_safe () =
  List.iter
    (fun size ->
      let m, base = mk_object_shadow ~size in
      Alcotest.(check bool)
        (Printf.sprintf "whole object of %d" size)
        true
        (safe (RC.check m ~l:base ~r:(base + size))))
    [ 1; 7; 8; 9; 16; 63; 64; 65; 100; 128; 1000 ]

let test_one_past_end_fails () =
  List.iter
    (fun size ->
      let m, base = mk_object_shadow ~size in
      Alcotest.(check bool)
        (Printf.sprintf "size %d + 1 overflows" size)
        false
        (safe (RC.check m ~l:base ~r:(base + size + 1))))
    [ 1; 7; 8; 9; 16; 63; 64; 65; 100; 128; 1000 ]

let test_fast_path_hit () =
  (* a large object: any prefix within the first fold's coverage is settled
     by the fast check with a single metadata load *)
  let m, base = mk_object_shadow ~size:1024 in
  Shadow_mem.reset_counters m;
  (match RC.check m ~l:base ~r:(base + 1024) with
  | RC.Safe_fast -> ()
  | _ -> Alcotest.fail "expected fast check");
  Alcotest.(check int) "exactly one metadata load" 1 (Shadow_mem.loads m)

let test_slow_path_two_folds () =
  (* Figure 6c: a region needing two folded segments. 24 segments from the
     start of a 24-segment object: fold at l covers 16, suffix fold covers
     the remaining 8. *)
  let m, base = mk_object_shadow ~size:192 in
  Shadow_mem.reset_counters m;
  (match RC.check m ~l:base ~r:(base + 192) with
  | RC.Safe_slow -> ()
  | RC.Safe_fast | RC.Safe_word -> Alcotest.fail "expected slow check"
  | RC.Bad _ -> Alcotest.fail "region is safe");
  Alcotest.(check bool) "O(1) loads even on slow path" true
    (Shadow_mem.loads m <= 3)

let test_constant_loads_any_size () =
  (* the headline claim: checks cost O(1) metadata loads regardless of
     region size (ASan would need size/8) *)
  List.iter
    (fun size ->
      let m, base = mk_object_shadow ~size in
      Shadow_mem.reset_counters m;
      ignore (RC.check m ~l:base ~r:(base + size));
      Alcotest.(check bool)
        (Printf.sprintf "<=3 loads for %d bytes" size)
        true
        (Shadow_mem.loads m <= 3))
    [ 8; 64; 512; 1024; 1496; 2048 ]

let test_empty_region () =
  let m, base = mk_object_shadow ~size:64 in
  Alcotest.(check bool) "empty region safe" true
    (safe (RC.check m ~l:base ~r:base));
  Alcotest.(check bool) "reversed region safe" true
    (safe (RC.check m ~l:base ~r:(base - 8)));
  (* regression, found by the refinement harness: a zero-length region at
     an UNALIGNED address over non-addressable memory used to align down
     first and report bytes the operation never touches *)
  Alcotest.(check bool) "empty region at an unaligned redzone address" true
    (safe (RC.check_unaligned m ~l:(base - 3) ~r:(base - 3)));
  Alcotest.(check bool) "empty region at unaligned unallocated memory" true
    (safe (RC.check_unaligned m ~l:(base + 517) ~r:(base + 517)));
  Alcotest.(check bool) "reversed unaligned region safe" true
    (safe (RC.check_unaligned m ~l:(base + 517) ~r:(base + 509)))

let test_region_in_redzone () =
  let m, base = mk_object_shadow ~size:64 in
  Alcotest.(check bool) "redzone access caught" false
    (safe (RC.check m ~l:(base - 8) ~r:base));
  Alcotest.(check bool) "unallocated caught" false
    (safe (RC.check m ~l:(base + 512) ~r:(base + 520)))

let test_partial_segment_cases () =
  let m, base = mk_object_shadow ~size:20 in
  (* bytes 16..20 live in the partial segment *)
  Alcotest.(check bool) "prefix of partial ok" true
    (safe (RC.check m ~l:base ~r:(base + 18)));
  Alcotest.(check bool) "full partial ok" true
    (safe (RC.check m ~l:base ~r:(base + 20)));
  Alcotest.(check bool) "past partial bad" false
    (safe (RC.check m ~l:base ~r:(base + 21)));
  (* unaligned start inside the object *)
  Alcotest.(check bool) "tail from byte 17" true
    (safe (RC.check_unaligned m ~l:(base + 17) ~r:(base + 20)))

let test_mid_object_start () =
  let m, base = mk_object_shadow ~size:128 in
  Alcotest.(check bool) "mid-object region" true
    (safe (RC.check m ~l:(base + 40) ~r:(base + 120)));
  Alcotest.(check bool) "mid-object overflow" false
    (safe (RC.check m ~l:(base + 40) ~r:(base + 129)))

(* ------------------------------------------------------------------ *)
(* Oracle equivalence properties                                       *)
(* ------------------------------------------------------------------ *)

(* GiantSan runtime's region check vs. ground truth over random heaps.
   check_region is safe  <=>  all bytes [align8(lo), hi) addressable. *)
let region_agrees_with_oracle (seed, picks) =
  let rng = Giantsan_util.Rng.create seed in
  let san, live, freed = Helpers.random_scene rng Helpers.giantsan in
  let objects = Array.of_list (live @ freed) in
  if Array.length objects = 0 then true
  else
    List.for_all
      (fun (obj_pick, off_pick, len_pick) ->
        let obj = objects.(obj_pick mod Array.length objects) in
        let lo = obj.Memsim.Memobj.base + (off_pick mod 400) - 50 in
        let hi = lo + (len_pick mod 400) in
        let lo = max 8 lo in
        let hi = min (Memsim.Arena.size (Memsim.Heap.arena san.San.heap) - 8) hi in
        if hi <= lo then true
        else begin
          let said_safe = Helpers.check_is_safe (san.San.check_region ~lo ~hi) in
          let lo' = lo land lnot 7 in
          let truly_safe = Helpers.oracle_safe san ~lo:lo' ~hi in
          said_safe = truly_safe
        end)
      picks

let test_region_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"CI(L,R) <=> oracle addressability" ~count:300
       QCheck.(
         pair small_int
           (list_of_size (Gen.int_range 1 20)
              (triple small_nat small_nat small_nat)))
       region_agrees_with_oracle)

(* The anchored single-access path must agree with the oracle too: safe
   iff every byte between anchor and access end is addressable. *)
let access_agrees_with_oracle (seed, picks) =
  let rng = Giantsan_util.Rng.create seed in
  let san, live, freed = Helpers.random_scene rng Helpers.giantsan in
  let objects = Array.of_list (live @ freed) in
  if Array.length objects = 0 then true
  else
    List.for_all
      (fun (obj_pick, off_pick, w_pick) ->
        let obj = objects.(obj_pick mod Array.length objects) in
        let base = obj.Memsim.Memobj.base in
        let off = (off_pick mod 400) - 60 in
        let width = [| 1; 2; 4; 8 |].(w_pick mod 4) in
        let addr = base + off in
        let arena_hi = Memsim.Arena.size (Memsim.Heap.arena san.San.heap) - 16 in
        if addr < 8 || addr + width > arena_hi then true
        else begin
          let said_safe =
            Helpers.check_is_safe (san.San.access ~base ~addr ~width)
          in
          let lo, hi =
            if addr >= base then (base, addr + width)
            else ((addr land lnot 7), max (addr + width) base)
          in
          let truly_safe = Helpers.oracle_safe san ~lo ~hi in
          said_safe = truly_safe
        end)
      picks

let test_access_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"anchored access <=> oracle" ~count:300
       QCheck.(
         pair small_int
           (list_of_size (Gen.int_range 1 20)
              (triple small_nat small_nat small_nat)))
       access_agrees_with_oracle)

(* Every Bad verdict must name an address inside the checked region:
   l <= addr < r. Algorithm 1's suffix branch rounds the first
   non-addressable byte up to its segment end, which without clamping
   could report an address at or past r. *)
let bad_addr_within_region (seed, picks) =
  let rng = Giantsan_util.Rng.create seed in
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let n_objects = Giantsan_util.Rng.int_in rng 3 10 in
  for _ = 1 to n_objects do
    let size = Giantsan_util.Rng.int_in rng 0 300 in
    let obj = san.San.malloc size in
    if Giantsan_util.Rng.int rng 3 = 0 then
      ignore (san.San.free obj.Memsim.Memobj.base)
  done;
  let arena = 8 * Shadow_mem.segments m in
  List.for_all
    (fun (l_pick, len_pick) ->
      let l = (l_pick mod (arena - 16)) land lnot 7 in
      let r = min arena (l + 1 + (len_pick mod 400)) in
      match RC.check m ~l ~r with
      | RC.Safe_fast | RC.Safe_slow | RC.Safe_word -> true
      | RC.Bad addr -> l <= addr && addr < r)
    picks

let test_bad_addr_within_region =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Bad addr satisfies l <= addr < r" ~count:300
       QCheck.(
         pair small_int
           (list_of_size (Gen.int_range 1 24) (pair small_nat small_nat)))
       bad_addr_within_region)

let test_bad_addr_suffix_branch_unit () =
  (* the concrete overshoot shape: a region whose prefix is good and whose
     failure is found by the suffix check in the last segment *)
  let m, base = mk_object_shadow ~size:64 in
  List.iter
    (fun r_off ->
      match RC.check m ~l:base ~r:(base + r_off) with
      | RC.Bad addr ->
          Alcotest.(check bool)
            (Printf.sprintf "Bad addr %d in [%d, %d)" addr base (base + r_off))
            true
            (base <= addr && addr < base + r_off)
      | RC.Safe_fast | RC.Safe_slow | RC.Safe_word ->
          Alcotest.fail "overflowing region reported safe")
    [ 65; 66; 70; 72; 100 ]

let suite =
  ( "region_check",
    [
      Helpers.qt "whole-object regions are safe" `Quick test_whole_object_safe;
      Helpers.qt "one past the end is caught" `Quick test_one_past_end_fails;
      Helpers.qt "fast path: 1 load" `Quick test_fast_path_hit;
      Helpers.qt "slow path: two folds (Fig 6c)" `Quick test_slow_path_two_folds;
      Helpers.qt "O(1) loads at any size" `Quick test_constant_loads_any_size;
      Helpers.qt "empty regions" `Quick test_empty_region;
      Helpers.qt "redzone / unallocated regions" `Quick test_region_in_redzone;
      Helpers.qt "partial-segment boundaries" `Quick test_partial_segment_cases;
      Helpers.qt "mid-object regions" `Quick test_mid_object_start;
      test_region_oracle;
      test_access_oracle;
      test_bad_addr_within_region;
      Helpers.qt "suffix-branch Bad addr stays below r" `Quick
        test_bad_addr_suffix_branch_unit;
    ] )
