(* The encoding-ablation module and the extension experiments. *)

module SC = Giantsan_core.State_code
module Linear = Giantsan_core.Linear_encoding
module RC = Giantsan_core.Region_check
module Folding = Giantsan_core.Folding
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Experiments = Giantsan_report.Experiments
module B = Giantsan_ir.Builder
module Interp = Giantsan_analysis.Interp
module Instrument = Giantsan_analysis.Instrument
module Report = Giantsan_sanitizer.Report

let mk_shadow ~good =
  let m = Shadow_mem.create ~segments:2048 ~fill:SC.unallocated in
  Linear.poison_good_run m ~first_seg:8 ~count:good;
  m

let test_linear_safe_regions () =
  let m = mk_shadow ~good:200 in
  List.iter
    (fun (l, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "[%d,%d) safe" l r)
        true
        (Linear.check m ~l:(64 + l) ~r:(64 + r)))
    [ (0, 8); (0, 1600); (800, 1600); (0, 1); (0, 1599) ]

let test_linear_bad_regions () =
  let m = mk_shadow ~good:200 in
  List.iter
    (fun (l, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "[%d,%d) bad" l r)
        false
        (Linear.check m ~l:(64 + l) ~r:(64 + r)))
    [ (0, 1601); (1592, 1608); (-8, 8); (1600, 1601) ]

let test_linear_partial_segment () =
  let m = mk_shadow ~good:10 in
  Shadow_mem.set m 18 (SC.partial 5);
  Alcotest.(check bool) "into partial ok" true (Linear.check m ~l:64 ~r:(64 + 85));
  Alcotest.(check bool) "past partial bad" false
    (Linear.check m ~l:64 ~r:(64 + 86))

let test_linear_agrees_with_folding =
  Helpers.q "run-length and folding verdicts agree"
    QCheck.(triple (int_range 1 300) (int_range 0 310) (int_range 1 330))
    (fun (good, l_seg, len) ->
      let m_lin = mk_shadow ~good in
      let m_fold = Shadow_mem.create ~segments:2048 ~fill:SC.unallocated in
      Folding.poison_good_run m_fold ~first_seg:8 ~count:good;
      let l = 64 + (8 * l_seg) and r = 64 + (8 * l_seg) + len in
      Linear.check m_lin ~l ~r = RC.is_safe (RC.check m_fold ~l ~r))

let test_linear_loads_between_asan_and_folding () =
  let m = mk_shadow ~good:1024 in
  Shadow_mem.reset_counters m;
  assert (Linear.check m ~l:64 ~r:(64 + 8192));
  let lin = Shadow_mem.loads m in
  Alcotest.(check bool)
    (Printf.sprintf "ceil(1024/63) = 17 loads, got %d" lin)
    true
    (lin >= 16 && lin <= 18)

let test_globals_supported () =
  let b = B.create () in
  let prog =
    B.program
      ~globals:[ ("g", 80) ]
      "globals"
      [
        B.store b ~base:"g" ~index:(B.i 9) ~scale:8 ~value:(B.i 5) ();
        B.assign "x" (B.load b ~base:"g" ~index:(B.i 9) ~scale:8 ());
      ]
  in
  let san = Helpers.giantsan () in
  let out = Interp.run san (Instrument.plan Instrument.Giantsan prog) prog in
  Alcotest.(check (list string)) "clean" []
    (List.map Report.to_string out.Interp.reports);
  Alcotest.(check int) "value through the global" 5 (Interp.var out "x")

let test_global_overflow_classified () =
  let b = B.create () in
  let prog =
    B.program
      ~globals:[ ("g", 80) ]
      "global_ov"
      [ B.store b ~base:"g" ~index:(B.i 10) ~scale:8 ~value:(B.i 5) () ]
  in
  let san = Helpers.giantsan () in
  let out = Interp.run san (Instrument.plan Instrument.Giantsan prog) prog in
  match out.Interp.reports with
  | [ r ] ->
    Alcotest.(check string) "kind" "global-buffer-overflow"
      (Report.kind_name r.Report.kind)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

let contains = Astring_contains.contains

let test_extra_experiments_run () =
  let a = Experiments.run "ablation-encoding" in
  Alcotest.(check bool) "encoding table rendered" true
    (contains a.Experiments.o_body "Binary folding");
  let r = Experiments.run "sweep-redzone" in
  Alcotest.(check bool) "anchored column flat" true
    (contains r.Experiments.o_body "196/196");
  let q = Experiments.run "sweep-quarantine" in
  (* budget 0 is a one-deep quarantine (newest block always retained), so
     the un-churned stale dereference is still caught: no row catches
     nothing *)
  Alcotest.(check bool) "no zero-detection row" false
    (contains q.Experiments.o_body "0/64");
  Alcotest.(check bool) "big budget catches most" true
    (contains q.Experiments.o_body "51/64")

let suite =
  ( "ablation",
    [
      Helpers.qt "run-length: safe regions" `Quick test_linear_safe_regions;
      Helpers.qt "run-length: bad regions" `Quick test_linear_bad_regions;
      Helpers.qt "run-length: partial segments" `Quick test_linear_partial_segment;
      test_linear_agrees_with_folding;
      Helpers.qt "run-length loads sit between ASan and folding" `Quick
        test_linear_loads_between_asan_and_folding;
      Helpers.qt "globals live and checked" `Quick test_globals_supported;
      Helpers.qt "global overflow classified" `Quick test_global_overflow_classified;
      Helpers.qt "extension experiments run" `Quick test_extra_experiments_run;
    ] )
