(* The telemetry subsystem's own invariants: ring wraparound arithmetic,
   the histogram merge monoid, JSON printing/parsing, byte-identical trace
   determinism, and the zero-allocation guarantee of the disabled path. *)

module Ring = Giantsan_telemetry.Ring
module Json = Giantsan_telemetry.Json
module Histogram = Giantsan_telemetry.Histogram
module Trace = Giantsan_telemetry.Trace
module Export = Giantsan_telemetry.Export
module Corpus = Giantsan_fuzz.Corpus
module Exec = Giantsan_fuzz.Exec

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound =
  Helpers.qt "wraparound keeps the trailing window" `Quick (fun () ->
      let r = Ring.create ~capacity:4 in
      for i = 0 to 9 do
        Ring.push r i
      done;
      Alcotest.(check (list int)) "retained" [ 6; 7; 8; 9 ] (Ring.to_list r);
      Alcotest.(check int) "pushed" 10 (Ring.pushed r);
      Alcotest.(check int) "dropped" 6 (Ring.dropped r);
      Alcotest.(check int) "length" 4 (Ring.length r);
      Alcotest.(check (list (pair int int)))
        "global sequence numbers survive wraparound"
        [ (6, 6); (7, 7); (8, 8); (9, 9) ]
        (Ring.to_seq_list r);
      Ring.clear r;
      Alcotest.(check (list int)) "clear empties" [] (Ring.to_list r))

let test_ring_under_capacity =
  Helpers.qt "no wraparound below capacity" `Quick (fun () ->
      let r = Ring.create ~capacity:8 in
      List.iter (Ring.push r) [ 1; 2; 3 ];
      Alcotest.(check (list int)) "all retained" [ 1; 2; 3 ] (Ring.to_list r);
      Alcotest.(check int) "dropped" 0 (Ring.dropped r))

let test_ring_property =
  Helpers.q "ring always holds the last min(pushed,capacity) entries"
    QCheck.(pair (int_range 1 16) (small_list small_int))
    (fun (capacity, xs) ->
      let r = Ring.create ~capacity in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let keep = min n capacity in
      let expected = List.filteri (fun i _ -> i >= n - keep) xs in
      Ring.to_list r = expected
      && Ring.pushed r = n
      && Ring.dropped r = n - keep)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries =
  Helpers.qt "log2 bucket boundaries" `Quick (fun () ->
      let cases =
        [
          (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
          (1023, 10); (1024, 11);
        ]
      in
      List.iter
        (fun (v, b) ->
          Alcotest.(check int)
            (Printf.sprintf "bucket_of_value %d" v)
            b
            (Histogram.bucket_of_value v))
        cases;
      (* bucket_lo is a left inverse on bucket starts *)
      for b = 0 to 20 do
        Alcotest.(check int)
          (Printf.sprintf "bucket_of_value (bucket_lo %d)" b)
          b
          (Histogram.bucket_of_value (Histogram.bucket_lo b))
      done)

let hist_of_observations obs =
  let h = Histogram.create "h" in
  List.iter (Histogram.observe h) obs;
  h

let arb_hist =
  QCheck.make
    ~print:(fun obs ->
      Format.asprintf "%a" Histogram.pp (hist_of_observations obs))
    QCheck.Gen.(small_list (int_bound 100_000))

let test_hist_merge_commutative =
  Helpers.q "merge is commutative"
    QCheck.(pair arb_hist arb_hist)
    (fun (a, b) ->
      let a = hist_of_observations a and b = hist_of_observations b in
      Histogram.equal (Histogram.merge a b) (Histogram.merge b a))

let test_hist_merge_associative =
  Helpers.q "merge is associative"
    QCheck.(triple arb_hist arb_hist arb_hist)
    (fun (a, b, c) ->
      let a = hist_of_observations a
      and b = hist_of_observations b
      and c = hist_of_observations c in
      Histogram.equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let test_hist_merge_identity =
  Helpers.q "empty histogram is the identity of merge" arb_hist (fun a ->
      let a = hist_of_observations a in
      let zero = Histogram.create "h" in
      Histogram.equal (Histogram.merge a zero) a
      && Histogram.equal (Histogram.merge zero a) a)

let test_hist_merge_counts =
  Helpers.q "merge sums counts, sums and maxima"
    QCheck.(pair arb_hist arb_hist)
    (fun (xa, xb) ->
      let a = hist_of_observations xa and b = hist_of_observations xb in
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count a + Histogram.count b
      && Histogram.sum m = Histogram.sum a + Histogram.sum b
      && Histogram.max_value m = max (Histogram.max_value a) (Histogram.max_value b))

let test_hist_name_mismatch =
  Helpers.qt "merge rejects mismatched names" `Quick (fun () ->
      let a = Histogram.create "a" and b = Histogram.create "b" in
      Alcotest.check_raises "name mismatch"
        (Invalid_argument "Histogram.merge: a vs b") (fun () ->
          ignore (Histogram.merge a b)))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip =
  Helpers.qt "print/parse round-trip" `Quick (fun () ->
      let v =
        Json.Obj
          [
            ("s", Json.Str "a \"quoted\"\n\tstring");
            ("i", Json.Int (-42));
            ("f", Json.Float 2.5);
            ("b", Json.Bool true);
            ("n", Json.Null);
            ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
          ]
      in
      match Json.parse (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.fail e)

let test_json_rejects =
  Helpers.qt "parser rejects malformed input" `Quick (fun () ->
      List.iter
        (fun text ->
          match Json.parse text with
          | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" text)
          | Error _ -> ())
        [ ""; "{"; "[1,]"; "{\"a\":}"; "{} trailing"; "nul"; "\"open" ])

let test_json_nonfinite =
  Helpers.qt "non-finite floats render as null" `Quick (fun () ->
      Alcotest.(check string)
        "nan" "[null,null,1.5]"
        (Json.to_string
           (Json.List [ Json.Float nan; Json.Float infinity; Json.Float 1.5 ])))

(* ------------------------------------------------------------------ *)
(* Trace determinism and NDJSON validity                               *)
(* ------------------------------------------------------------------ *)

let load_scn path =
  match Corpus.load_file path with
  | Ok sc -> sc
  | Error e -> Alcotest.fail (path ^ ": " ^ e)

let regression = "corpus/regressions/uaf_then_double_free.scn"

let test_trace_deterministic =
  Helpers.qt "same scenario twice => byte-identical NDJSON" `Quick (fun () ->
      let sc = load_scn regression in
      let t1 = Exec.capture_trace sc and t2 = Exec.capture_trace sc in
      Alcotest.(check bool) "non-empty" true (t1 <> []);
      Alcotest.(check (list string)) "identical" t1 t2)

let test_trace_covers_all_tools =
  Helpers.qt "the trace carries events from every tool" `Quick (fun () ->
      let sc = load_scn regression in
      let text = String.concat "\n" (Exec.capture_trace sc) in
      List.iter
        (fun tool ->
          let needle = Printf.sprintf "\"tool\":%s" (Json.to_string (Json.Str tool)) in
          let found =
            let nl = String.length needle and tl = String.length text in
            let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) tool true found)
        [ "GiantSan"; "ASan"; "ASan--"; "LFP" ])

let test_trace_lines_valid_ndjson =
  Helpers.qt "every captured line passes the NDJSON checker" `Quick (fun () ->
      let sc = load_scn regression in
      let lines = Exec.capture_trace sc in
      match Export.check_ndjson (String.concat "\n" lines) with
      | Ok n -> Alcotest.(check int) "all lines counted" (List.length lines) n
      | Error e -> Alcotest.fail e)

let test_with_capture_restores =
  Helpers.qt "with_capture restores the previous sink state" `Quick (fun () ->
      Alcotest.(check bool) "off before" false (Trace.is_on ());
      let (), events =
        Trace.with_capture (fun () ->
            Trace.emit_free ~tool:"t" ~addr:1;
            Alcotest.(check bool) "on inside" true (Trace.is_on ()))
      in
      Alcotest.(check int) "captured" 1 (List.length events);
      Alcotest.(check bool) "off after" false (Trace.is_on ()))

let test_disabled_path_allocates_nothing =
  Helpers.qt "disabled emitters allocate nothing" `Quick (fun () ->
      Trace.disable ();
      (* warm up so the closure itself is built *)
      Trace.emit_access ~tool:"t" ~addr:0 ~width:8 ~fast:true;
      let before = Gc.minor_words () in
      for i = 1 to 100_000 do
        Trace.emit_access ~tool:"t" ~addr:i ~width:8 ~fast:true;
        Trace.emit_region_check ~tool:"t" ~lo:0 ~hi:i ~fast:true ~loads:0;
        Trace.emit_malloc ~tool:"t" ~base:i ~size:8 ~kind:"heap"
      done;
      let delta = Gc.minor_words () -. before in
      if delta > 256.0 then
        Alcotest.fail
          (Printf.sprintf "disabled emit path allocated %.0f words" delta))

(* ------------------------------------------------------------------ *)
(* Performance regression gate                                         *)
(* ------------------------------------------------------------------ *)

let mk_profile ?(sim_ns = 5000.0) ?(ops = 100) ?(stores = 40) name config =
  {
    Export.bp_profile = name;
    bp_config = config;
    bp_sim_ns = sim_ns;
    bp_ops = ops;
    bp_shadow_loads = 250;
    bp_shadow_stores = stores;
    bp_region_checks = 30;
    bp_fast_checks = 25;
    bp_slow_checks = 5;
  }

let mk_doc profiles = Export.bench_json ~groups:[] ~profiles ()

let gate_ok = function
  | Ok n -> n
  | Error es -> Alcotest.fail (String.concat "; " es)

let gate_failures = function
  | Ok n -> Alcotest.failf "gate passed (%d rows) but should fail" n
  | Error es -> es

let test_gate_identical_passes =
  Helpers.qt "gate: identical documents pass" `Quick (fun () ->
      let doc =
        mk_doc [ mk_profile "seq" "giantsan"; mk_profile "churn" "asan" ]
      in
      let n =
        gate_ok (Export.compare_bench ~tolerance:0.25 ~baseline:doc ~current:doc)
      in
      Alcotest.(check int) "both rows compared" 2 n)

let test_gate_tolerates_small_ns_drift =
  Helpers.qt "gate: ns/op drift within tolerance passes" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:6000.0 "seq" "giantsan" ] in
      ignore
        (gate_ok
           (Export.compare_bench ~tolerance:0.25 ~baseline ~current)))

let test_gate_rejects_ns_regression =
  Helpers.qt "gate: >tolerance ns/op regression fails" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:7000.0 "seq" "giantsan" ] in
      match Export.compare_bench ~tolerance:0.25 ~baseline ~current with
      | Ok _ -> Alcotest.fail "40% regression passed the gate"
      | Error [ msg ] ->
          Alcotest.(check bool) "message names the row" true
            (Helpers.contains msg "seq")
      | Error es ->
          Alcotest.failf "expected one violation, got %d" (List.length es))

let test_gate_rejects_large_improvement =
  Helpers.qt "gate: improvement beyond tolerance demands re-baseline" `Quick
    (fun () ->
      (* a big speed-up is good news but still a baseline mismatch; the
         gate insists the committed baseline be refreshed intentionally *)
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:2000.0 "seq" "giantsan" ] in
      let es =
        gate_failures (Export.compare_bench ~tolerance:0.25 ~baseline ~current)
      in
      Alcotest.(check bool) "suggests re-baselining" true
        (List.exists (fun m -> Helpers.contains m "re-baseline") es))

let test_gate_rejects_count_mismatch =
  Helpers.qt "gate: any event-count mismatch fails exactly" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~stores:40 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~stores:41 "seq" "giantsan" ] in
      let es =
        gate_failures (Export.compare_bench ~tolerance:0.25 ~baseline ~current)
      in
      Alcotest.(check bool) "names shadow_stores" true
        (List.exists (fun m -> Helpers.contains m "shadow_stores") es))

let test_gate_rejects_missing_rows =
  Helpers.qt "gate: rows missing from either side fail" `Quick (fun () ->
      let both = [ mk_profile "seq" "giantsan"; mk_profile "churn" "asan" ] in
      let one = [ mk_profile "seq" "giantsan" ] in
      (match
         Export.compare_bench ~tolerance:0.25 ~baseline:(mk_doc both)
           ~current:(mk_doc one)
       with
      | Ok _ -> Alcotest.fail "dropped row passed the gate"
      | Error _ -> ());
      match
        Export.compare_bench ~tolerance:0.25 ~baseline:(mk_doc one)
          ~current:(mk_doc both)
      with
      | Ok _ -> Alcotest.fail "new unbaselined row passed the gate"
      | Error _ -> ())

let suite =
  ( "telemetry",
    [
      test_ring_wraparound;
      test_ring_under_capacity;
      test_ring_property;
      test_bucket_boundaries;
      test_hist_merge_commutative;
      test_hist_merge_associative;
      test_hist_merge_identity;
      test_hist_merge_counts;
      test_hist_name_mismatch;
      test_json_roundtrip;
      test_json_rejects;
      test_json_nonfinite;
      test_trace_deterministic;
      test_trace_covers_all_tools;
      test_trace_lines_valid_ndjson;
      test_with_capture_restores;
      test_disabled_path_allocates_nothing;
      test_gate_identical_passes;
      test_gate_tolerates_small_ns_drift;
      test_gate_rejects_ns_regression;
      test_gate_rejects_large_improvement;
      test_gate_rejects_count_mismatch;
      test_gate_rejects_missing_rows;
    ] )
