(* The telemetry subsystem's own invariants: ring wraparound arithmetic,
   the histogram merge monoid, JSON printing/parsing, byte-identical trace
   determinism, and the zero-allocation guarantee of the disabled path. *)

module Ring = Giantsan_telemetry.Ring
module Json = Giantsan_telemetry.Json
module Histogram = Giantsan_telemetry.Histogram
module Trace = Giantsan_telemetry.Trace
module Export = Giantsan_telemetry.Export
module Corpus = Giantsan_fuzz.Corpus
module Exec = Giantsan_fuzz.Exec

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound =
  Helpers.qt "wraparound keeps the trailing window" `Quick (fun () ->
      let r = Ring.create ~capacity:4 in
      for i = 0 to 9 do
        Ring.push r i
      done;
      Alcotest.(check (list int)) "retained" [ 6; 7; 8; 9 ] (Ring.to_list r);
      Alcotest.(check int) "pushed" 10 (Ring.pushed r);
      Alcotest.(check int) "dropped" 6 (Ring.dropped r);
      Alcotest.(check int) "length" 4 (Ring.length r);
      Alcotest.(check (list (pair int int)))
        "global sequence numbers survive wraparound"
        [ (6, 6); (7, 7); (8, 8); (9, 9) ]
        (Ring.to_seq_list r);
      Ring.clear r;
      Alcotest.(check (list int)) "clear empties" [] (Ring.to_list r))

let test_ring_under_capacity =
  Helpers.qt "no wraparound below capacity" `Quick (fun () ->
      let r = Ring.create ~capacity:8 in
      List.iter (Ring.push r) [ 1; 2; 3 ];
      Alcotest.(check (list int)) "all retained" [ 1; 2; 3 ] (Ring.to_list r);
      Alcotest.(check int) "dropped" 0 (Ring.dropped r))

let test_ring_property =
  Helpers.q "ring always holds the last min(pushed,capacity) entries"
    QCheck.(pair (int_range 1 16) (small_list small_int))
    (fun (capacity, xs) ->
      let r = Ring.create ~capacity in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let keep = min n capacity in
      let expected = List.filteri (fun i _ -> i >= n - keep) xs in
      Ring.to_list r = expected
      && Ring.pushed r = n
      && Ring.dropped r = n - keep)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries =
  Helpers.qt "log2 bucket boundaries" `Quick (fun () ->
      let cases =
        [
          (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
          (1023, 10); (1024, 11);
        ]
      in
      List.iter
        (fun (v, b) ->
          Alcotest.(check int)
            (Printf.sprintf "bucket_of_value %d" v)
            b
            (Histogram.bucket_of_value v))
        cases;
      (* bucket_lo is a left inverse on bucket starts *)
      for b = 0 to 20 do
        Alcotest.(check int)
          (Printf.sprintf "bucket_of_value (bucket_lo %d)" b)
          b
          (Histogram.bucket_of_value (Histogram.bucket_lo b))
      done)

let hist_of_observations obs =
  let h = Histogram.create "h" in
  List.iter (Histogram.observe h) obs;
  h

let arb_hist =
  QCheck.make
    ~print:(fun obs ->
      Format.asprintf "%a" Histogram.pp (hist_of_observations obs))
    QCheck.Gen.(small_list (int_bound 100_000))

let test_hist_merge_commutative =
  Helpers.q "merge is commutative"
    QCheck.(pair arb_hist arb_hist)
    (fun (a, b) ->
      let a = hist_of_observations a and b = hist_of_observations b in
      Histogram.equal (Histogram.merge a b) (Histogram.merge b a))

let test_hist_merge_associative =
  Helpers.q "merge is associative"
    QCheck.(triple arb_hist arb_hist arb_hist)
    (fun (a, b, c) ->
      let a = hist_of_observations a
      and b = hist_of_observations b
      and c = hist_of_observations c in
      Histogram.equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let test_hist_merge_identity =
  Helpers.q "empty histogram is the identity of merge" arb_hist (fun a ->
      let a = hist_of_observations a in
      let zero = Histogram.create "h" in
      Histogram.equal (Histogram.merge a zero) a
      && Histogram.equal (Histogram.merge zero a) a)

let test_hist_merge_counts =
  Helpers.q "merge sums counts, sums and maxima"
    QCheck.(pair arb_hist arb_hist)
    (fun (xa, xb) ->
      let a = hist_of_observations xa and b = hist_of_observations xb in
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count a + Histogram.count b
      && Histogram.sum m = Histogram.sum a + Histogram.sum b
      && Histogram.max_value m = max (Histogram.max_value a) (Histogram.max_value b))

let test_hist_name_mismatch =
  Helpers.qt "merge rejects mismatched names" `Quick (fun () ->
      let a = Histogram.create "a" and b = Histogram.create "b" in
      Alcotest.check_raises "name mismatch"
        (Invalid_argument "Histogram.merge: a vs b") (fun () ->
          ignore (Histogram.merge a b)))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip =
  Helpers.qt "print/parse round-trip" `Quick (fun () ->
      let v =
        Json.Obj
          [
            ("s", Json.Str "a \"quoted\"\n\tstring");
            ("i", Json.Int (-42));
            ("f", Json.Float 2.5);
            ("b", Json.Bool true);
            ("n", Json.Null);
            ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
          ]
      in
      match Json.parse (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.fail e)

let test_json_rejects =
  Helpers.qt "parser rejects malformed input" `Quick (fun () ->
      List.iter
        (fun text ->
          match Json.parse text with
          | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" text)
          | Error _ -> ())
        [ ""; "{"; "[1,]"; "{\"a\":}"; "{} trailing"; "nul"; "\"open" ])

let test_json_nonfinite =
  Helpers.qt "non-finite floats render as null" `Quick (fun () ->
      Alcotest.(check string)
        "nan" "[null,null,1.5]"
        (Json.to_string
           (Json.List [ Json.Float nan; Json.Float infinity; Json.Float 1.5 ])))

(* ------------------------------------------------------------------ *)
(* Trace determinism and NDJSON validity                               *)
(* ------------------------------------------------------------------ *)

let load_scn path =
  match Corpus.load_file path with
  | Ok sc -> sc
  | Error e -> Alcotest.fail (path ^ ": " ^ e)

let regression = "corpus/regressions/uaf_then_double_free.scn"

let test_trace_deterministic =
  Helpers.qt "same scenario twice => byte-identical NDJSON" `Quick (fun () ->
      let sc = load_scn regression in
      let t1 = Exec.capture_trace sc and t2 = Exec.capture_trace sc in
      Alcotest.(check bool) "non-empty" true (t1 <> []);
      Alcotest.(check (list string)) "identical" t1 t2)

let test_trace_covers_all_tools =
  Helpers.qt "the trace carries events from every tool" `Quick (fun () ->
      let sc = load_scn regression in
      let text = String.concat "\n" (Exec.capture_trace sc) in
      List.iter
        (fun tool ->
          let needle = Printf.sprintf "\"tool\":%s" (Json.to_string (Json.Str tool)) in
          let found =
            let nl = String.length needle and tl = String.length text in
            let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) tool true found)
        [ "GiantSan"; "ASan"; "ASan--"; "LFP" ])

let test_trace_lines_valid_ndjson =
  Helpers.qt "every captured line passes the NDJSON checker" `Quick (fun () ->
      let sc = load_scn regression in
      let lines = Exec.capture_trace sc in
      match Export.check_ndjson (String.concat "\n" lines) with
      | Ok n -> Alcotest.(check int) "all lines counted" (List.length lines) n
      | Error e -> Alcotest.fail e)

let test_with_capture_restores =
  Helpers.qt "with_capture restores the previous sink state" `Quick (fun () ->
      Alcotest.(check bool) "off before" false (Trace.is_on ());
      let (), events =
        Trace.with_capture (fun () ->
            Trace.emit_free ~tool:"t" ~addr:1;
            Alcotest.(check bool) "on inside" true (Trace.is_on ()))
      in
      Alcotest.(check int) "captured" 1 (List.length events);
      Alcotest.(check bool) "off after" false (Trace.is_on ()))

let test_disabled_path_allocates_nothing =
  Helpers.qt "disabled emitters allocate nothing" `Quick (fun () ->
      Trace.disable ();
      (* warm up so the closure itself is built *)
      Trace.emit_access ~tool:"t" ~addr:0 ~width:8 ~fast:true;
      let before = Gc.minor_words () in
      for i = 1 to 100_000 do
        Trace.emit_access ~tool:"t" ~addr:i ~width:8 ~fast:true;
        Trace.emit_region_check ~tool:"t" ~lo:0 ~hi:i ~fast:true ~loads:0;
        Trace.emit_malloc ~tool:"t" ~base:i ~size:8 ~kind:"heap"
      done;
      let delta = Gc.minor_words () -. before in
      if delta > 256.0 then
        Alcotest.fail
          (Printf.sprintf "disabled emit path allocated %.0f words" delta))

(* ------------------------------------------------------------------ *)
(* Performance regression gate                                         *)
(* ------------------------------------------------------------------ *)

let mk_profile ?(sim_ns = 5000.0) ?(ops = 100) ?(stores = 40) name config =
  {
    Export.bp_profile = name;
    bp_config = config;
    bp_sim_ns = sim_ns;
    bp_ops = ops;
    bp_shadow_loads = 250;
    bp_shadow_stores = stores;
    bp_region_checks = 30;
    bp_fast_checks = 25;
    bp_slow_checks = 5;
    bp_word_checks = 20;
  }

let mk_doc profiles = Export.bench_json ~groups:[] ~profiles ()

let gate_ok = function
  | Ok n -> n
  | Error es -> Alcotest.fail (String.concat "; " es)

let gate_failures = function
  | Ok n -> Alcotest.failf "gate passed (%d rows) but should fail" n
  | Error es -> es

let test_gate_identical_passes =
  Helpers.qt "gate: identical documents pass" `Quick (fun () ->
      let doc =
        mk_doc [ mk_profile "seq" "giantsan"; mk_profile "churn" "asan" ]
      in
      let n =
        gate_ok (Export.compare_bench ~tolerance:0.25 ~baseline:doc ~current:doc)
      in
      Alcotest.(check int) "both rows compared" 2 n)

let test_gate_tolerates_small_ns_drift =
  Helpers.qt "gate: ns/op drift within tolerance passes" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:6000.0 "seq" "giantsan" ] in
      ignore
        (gate_ok
           (Export.compare_bench ~tolerance:0.25 ~baseline ~current)))

let test_gate_rejects_ns_regression =
  Helpers.qt "gate: >tolerance ns/op regression fails" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:7000.0 "seq" "giantsan" ] in
      match Export.compare_bench ~tolerance:0.25 ~baseline ~current with
      | Ok _ -> Alcotest.fail "40% regression passed the gate"
      | Error [ msg ] ->
          Alcotest.(check bool) "message names the row" true
            (Helpers.contains msg "seq")
      | Error es ->
          Alcotest.failf "expected one violation, got %d" (List.length es))

let test_gate_rejects_large_improvement =
  Helpers.qt "gate: improvement beyond tolerance demands re-baseline" `Quick
    (fun () ->
      (* a big speed-up is good news but still a baseline mismatch; the
         gate insists the committed baseline be refreshed intentionally *)
      let baseline = mk_doc [ mk_profile ~sim_ns:5000.0 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~sim_ns:2000.0 "seq" "giantsan" ] in
      let es =
        gate_failures (Export.compare_bench ~tolerance:0.25 ~baseline ~current)
      in
      Alcotest.(check bool) "suggests re-baselining" true
        (List.exists (fun m -> Helpers.contains m "re-baseline") es))

let test_gate_rejects_count_mismatch =
  Helpers.qt "gate: any event-count mismatch fails exactly" `Quick (fun () ->
      let baseline = mk_doc [ mk_profile ~stores:40 "seq" "giantsan" ] in
      let current = mk_doc [ mk_profile ~stores:41 "seq" "giantsan" ] in
      let es =
        gate_failures (Export.compare_bench ~tolerance:0.25 ~baseline ~current)
      in
      Alcotest.(check bool) "names shadow_stores" true
        (List.exists (fun m -> Helpers.contains m "shadow_stores") es))

let test_gate_rejects_missing_rows =
  Helpers.qt "gate: rows missing from either side fail" `Quick (fun () ->
      let both = [ mk_profile "seq" "giantsan"; mk_profile "churn" "asan" ] in
      let one = [ mk_profile "seq" "giantsan" ] in
      (match
         Export.compare_bench ~tolerance:0.25 ~baseline:(mk_doc both)
           ~current:(mk_doc one)
       with
      | Ok _ -> Alcotest.fail "dropped row passed the gate"
      | Error _ -> ());
      match
        Export.compare_bench ~tolerance:0.25 ~baseline:(mk_doc one)
          ~current:(mk_doc both)
      with
      | Ok _ -> Alcotest.fail "new unbaselined row passed the gate"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Quantile readouts vs the sorted-array oracle                        *)
(* ------------------------------------------------------------------ *)

module Latency = Giantsan_telemetry.Latency
module Clock = Giantsan_telemetry.Clock
module Window = Giantsan_telemetry.Window
module Event = Giantsan_telemetry.Event

(* numpy-linear order statistic at fractional rank q*(n-1) *)
let oracle_quantile sorted q =
  let n = Array.length sorted in
  let rank = q *. float_of_int (n - 1) in
  let lo = sorted.(int_of_float (Float.of_int (truncate rank) *. 1.0)) in
  let hi = sorted.(min (n - 1) (truncate rank + 1)) in
  let frac = rank -. Float.of_int (truncate rank) in
  (float_of_int lo +. (frac *. float_of_int (hi - lo)), lo, hi)

let obs_q_arb =
  QCheck.(
    pair
      (list_of_size Gen.(1 -- 80) (int_bound 5000))
      (make ~print:string_of_float Gen.(float_bound_inclusive 1.0)))

let prop_hist_quantile_vs_oracle =
  QCheck.Test.make ~count:500 ~name:"Histogram.quantile tracks the oracle"
    obs_q_arb (fun (obs, q) ->
      let h = Histogram.create "h" in
      List.iter (Histogram.observe h) obs;
      let sorted = Array.of_list (List.sort compare obs) in
      let oracle, olo, ohi = oracle_quantile sorted q in
      let got = Histogram.quantile h q in
      (* the histogram only knows log2 buckets: the readout must land in
         the value range spanned by the two order statistics' buckets,
         and hit the oracle exactly at the extremes *)
      let lo_bound = float_of_int (Histogram.bucket_lo (Histogram.bucket_of_value olo)) in
      let hi_bound =
        Float.min
          (float_of_int (Histogram.bucket_hi (Histogram.bucket_of_value ohi)))
          (float_of_int (Histogram.max_value h))
      in
      if q = 0.0 || q = 1.0 then got = oracle
      else got >= lo_bound && got <= hi_bound)

let prop_latency_quantile_vs_oracle =
  QCheck.Test.make ~count:500 ~name:"Latency.quantile tracks the oracle"
    obs_q_arb (fun (obs, q) ->
      let h = Latency.create "l" in
      List.iter (Latency.observe h) obs;
      let sorted = Array.of_list (List.sort compare obs) in
      let oracle, olo, ohi = oracle_quantile sorted q in
      let got = Latency.quantile h q in
      let lo_bound = fst (Latency.bucket_bounds (Latency.bucket_of_value olo)) in
      let hi_bound =
        min
          (snd (Latency.bucket_bounds (Latency.bucket_of_value ohi)))
          (Latency.max_value h)
      in
      if q = 0.0 || q = 1.0 then got = oracle
      else got >= float_of_int lo_bound && got <= float_of_int hi_bound)

let test_latency_small_values_exact =
  Helpers.qt "Latency: values below 64 are recorded exactly" `Quick (fun () ->
      let h = Latency.create "l" in
      List.iter (Latency.observe h) [ 3; 17; 42; 63 ];
      (* at whole ranks (q = i/(n-1)) the readout is the order statistic
         itself: sub-64 values live in unit-width buckets *)
      List.iteri
        (fun i (q, want) ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "q%d" i)
            want (Latency.quantile h q))
        [
          (0.0, 3.0);
          (1.0 /. 3.0, 17.0);
          (2.0 /. 3.0, 42.0);
          (1.0, 63.0);
          (* a fractional rank interpolates within the unit bucket of the
             floor-rank order statistic *)
          (0.5, 17.5);
        ])

let latency_of_list obs =
  let h = Latency.create "l" in
  List.iter (Latency.observe h) obs;
  h

let obs_arb = QCheck.(list_of_size Gen.(0 -- 60) (int_bound 100_000))

let prop_latency_merge_laws =
  QCheck.Test.make ~count:300 ~name:"Latency.merge monoid laws"
    QCheck.(pair obs_arb obs_arb)
    (fun (xs, ys) ->
      let a = latency_of_list xs and b = latency_of_list ys in
      let ab = Latency.merge a b and ba = Latency.merge b a in
      let zero = Latency.create "l" in
      Latency.equal ab ba
      && Latency.equal (Latency.merge a zero) a
      && Latency.count ab = Latency.count a + Latency.count b
      && Latency.equal ab (latency_of_list (xs @ ys)))

let test_latency_merge_name_mismatch =
  Helpers.qt "Latency.merge rejects name mismatch, merge_as waives it" `Quick
    (fun () ->
      let a = Latency.create "a" and b = Latency.create "b" in
      Alcotest.check_raises "mismatch raises"
        (Invalid_argument "Latency.merge: a vs b") (fun () ->
          ignore (Latency.merge a b));
      Latency.observe a 5;
      Latency.observe b 9;
      let g = Latency.merge_as "global" a b in
      Alcotest.(check string) "renamed" "global" (Latency.name g);
      Alcotest.(check int) "merged count" 2 (Latency.count g))

let prop_latency_quantiles_ordered =
  QCheck.Test.make ~count:300 ~name:"Latency: p50 <= p99 <= p999 <= max"
    obs_arb (fun obs ->
      let h = latency_of_list obs in
      Latency.p50 h <= Latency.p99 h
      && Latency.p99 h <= Latency.p999 h
      && Latency.p999 h <= float_of_int (Latency.max_value h))

(* ------------------------------------------------------------------ *)
(* Clock + sliding windows                                             *)
(* ------------------------------------------------------------------ *)

let test_virtual_clock =
  Helpers.qt "virtual clock advances only when told" `Quick (fun () ->
      let c = Clock.virtual_ ~start_ns:100 () in
      Alcotest.(check bool) "is virtual" true (Clock.is_virtual c);
      Alcotest.(check int) "start" 100 (Clock.now_ns c);
      Clock.advance c 50;
      Clock.advance c 0;
      Clock.advance c (-10);
      Alcotest.(check int) "monotone advance" 150 (Clock.now_ns c);
      let m = Clock.monotonic () in
      Alcotest.(check bool) "monotonic is not virtual" false (Clock.is_virtual m);
      Clock.advance m 1_000_000;
      ())

let test_window_rates =
  Helpers.qt "sliding window closes, zero-fills and rates" `Quick (fun () ->
      let w = Window.create ~window_ns:100 ~windows:4 in
      Alcotest.(check (float 0.0)) "empty rate" 0.0 (Window.rate w);
      Window.record w ~now_ns:10 5;
      Window.record w ~now_ns:90 5;
      Alcotest.(check int) "nothing closed yet" 0 (Window.closed w);
      (* crossing into window 1 closes window 0 with 10 ops *)
      Window.record w ~now_ns:110 2;
      Alcotest.(check int) "one closed" 1 (Window.closed w);
      Alcotest.(check int) "last window ops" 10 (Window.last_window_ops w);
      Alcotest.(check (float 1e-6)) "rate 10 ops / 100 ns"
        (10.0 /. (100.0 /. 1e9))
        (Window.rate w);
      (* jumping to window 5 closes 1..4; 2..4 are zero-filled stalls *)
      ignore (Window.roll w ~now_ns:510);
      Alcotest.(check int) "five closed" 5 (Window.closed w);
      Alcotest.(check int) "stall window" 0 (Window.last_window_ops w);
      Alcotest.(check (float 1e-6)) "stall collapses the rate"
        (2.0 /. (400.0 /. 1e9))
        (Window.rate w);
      Alcotest.(check int) "total includes open window" 12 (Window.total w))

(* ------------------------------------------------------------------ *)
(* Strict NDJSON checking (known-kind whitelist + --lax)               *)
(* ------------------------------------------------------------------ *)

(* One event per constructor: any rename or field change must be a
   conscious decision (this pin + the checker whitelist both move). *)
let one_of_each =
  [
    Event.Malloc { tool = "t"; base = 64; size = 32; kind = "heap" };
    Event.Free { tool = "t"; addr = 64 };
    Event.Access { tool = "t"; addr = 72; width = 8; path = Event.Fast };
    Event.Shadow_load { tool = "t"; count = 2 };
    Event.Cache_hit { tool = "t"; off = 8 };
    Event.Cache_update { tool = "t"; ub = 96 };
    Event.Region_check { tool = "t"; lo = 64; hi = 96; path = Event.Slow; loads = 3 };
    Event.Report { tool = "t"; kind = "heap-buffer-overflow"; addr = 96 };
    Event.Phase_begin { name = "p" };
    Event.Phase_end { name = "p" };
    Event.Service_op
      { tenant = 1; op = "access"; slot = 3; arg = 8; width = 4;
        latency_ns = 41; t_ns = 1000 };
    Event.Service_report
      { tenant = 1; kind = "heap-use-after-free"; addr = 128; t_ns = 1001 };
    Event.Slo_breach
      { tenant = 1; slo = "p999"; value = 9000.0; limit = 5000.0; t_ns = 1002 };
    Event.Tenant_state { tenant = 1; state = "degraded"; t_ns = 1003 };
    Event.Tenant_fault { tenant = 1; detail = "seg 8: drift"; t_ns = 1004 };
    Event.Tenant_backend { tenant = 1; backend = "pac"; t_ns = 1005 };
  ]

let test_every_event_kind_passes_strict =
  Helpers.qt "one event per constructor passes the strict checker" `Quick
    (fun () ->
      let lines =
        Export.ndjson_lines (List.mapi (fun i e -> (i, e)) one_of_each)
      in
      Alcotest.(check int) "covers the whole whitelist"
        (List.length Event.all_names)
        (List.length one_of_each);
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "kind %s rendered" name)
            true
            (List.exists
               (fun l ->
                 Helpers.contains l (Printf.sprintf "\"ev\":%S" name))
               lines))
        Event.all_names;
      match Export.check_ndjson (String.concat "\n" lines) with
      | Ok n -> Alcotest.(check int) "all accepted" (List.length lines) n
      | Error e -> Alcotest.fail e)

let test_unknown_kind_rejected =
  Helpers.qt "unknown event kinds: named error strictly, accepted lax" `Quick
    (fun () ->
      let bogus = {|{"seq":0,"ev":"wormhole","tenant":3}|} in
      (match Export.check_ndjson bogus with
      | Ok _ -> Alcotest.fail "strict checker accepted an unknown kind"
      | Error e ->
        Alcotest.(check bool) "names the kind" true
          (Helpers.contains e "unknown event kind" && Helpers.contains e "wormhole"));
      (match Export.check_ndjson ~lax:true bogus with
      | Ok n -> Alcotest.(check int) "lax accepts" 1 n
      | Error e -> Alcotest.fail e);
      (* lax still demands well-formed lines *)
      match Export.check_ndjson ~lax:true {|{"seq":-1,"ev":"wormhole"}|} with
      | Ok _ -> Alcotest.fail "lax accepted a negative seq"
      | Error _ -> ())

(* summary.json must key its tool rows by name, not registration order:
   the same backends reported in any order — or the same backend reported
   twice (two instances) — must render byte-identically, with duplicate
   rows merged. This was a real bug: rows used to be labelled by position,
   so skipping one backend shifted every later label. *)
let test_summary_keys_rows_by_name =
  Helpers.qt "summary.json keys tool rows by name, merging duplicates" `Quick
    (fun () ->
      let row name checks =
        (name, [ ("total_checks", checks) ], Histogram.create_set ())
      in
      let a = [ row "asan" 5; row "giantsan" 7; row "pac" 2 ] in
      let b = [ row "pac" 2; row "asan" 5; row "giantsan" 7 ] in
      Alcotest.(check string) "order-independent"
        (Export.summary_json ~tools:a ())
        (Export.summary_json ~tools:b ());
      let doubled = Export.summary_json ~tools:[ row "pac" 2; row "pac" 3 ] () in
      Alcotest.(check bool) "duplicate names merge (counters summed)" true
        (Helpers.contains doubled "\"total_checks\":5");
      let occurrences needle hay =
        let nl = String.length needle in
        let rec go i n =
          if i + nl > String.length hay then n
          else if String.sub hay i nl = needle then go (i + 1) (n + 1)
          else go (i + 1) n
        in
        go 0 0
      in
      Alcotest.(check int) "merged row appears exactly once" 1
        (occurrences "\"tool\":\"pac\"" doubled);
      (* dropping a backend must not relabel the others *)
      let without = Export.summary_json ~tools:[ row "asan" 5; row "pac" 2 ] () in
      Alcotest.(check bool) "asan row survives giantsan's absence" true
        (Helpers.contains without "\"tool\":\"asan\"");
      Alcotest.(check bool) "pac row survives giantsan's absence" true
        (Helpers.contains without "\"tool\":\"pac\""))

let suite =
  ( "telemetry",
    [
      test_ring_wraparound;
      test_ring_under_capacity;
      test_ring_property;
      test_bucket_boundaries;
      test_hist_merge_commutative;
      test_hist_merge_associative;
      test_hist_merge_identity;
      test_hist_merge_counts;
      test_hist_name_mismatch;
      test_json_roundtrip;
      test_json_rejects;
      test_json_nonfinite;
      test_trace_deterministic;
      test_trace_covers_all_tools;
      test_trace_lines_valid_ndjson;
      test_with_capture_restores;
      test_disabled_path_allocates_nothing;
      test_gate_identical_passes;
      test_gate_tolerates_small_ns_drift;
      test_gate_rejects_ns_regression;
      test_gate_rejects_large_improvement;
      test_gate_rejects_count_mismatch;
      test_gate_rejects_missing_rows;
      QCheck_alcotest.to_alcotest prop_hist_quantile_vs_oracle;
      QCheck_alcotest.to_alcotest prop_latency_quantile_vs_oracle;
      test_latency_small_values_exact;
      QCheck_alcotest.to_alcotest prop_latency_merge_laws;
      test_latency_merge_name_mismatch;
      QCheck_alcotest.to_alcotest prop_latency_quantiles_ordered;
      test_virtual_clock;
      test_window_rates;
      test_every_event_kind_passes_strict;
      test_unknown_kind_rejected;
      test_summary_keys_rows_by_name;
    ] )
