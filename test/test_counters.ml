(* Counter algebra and the fast/slow partition invariant: Table 2 and
   Figure 10 are sums of these counters, so [add] must be a commutative
   monoid with [reset] as identity, and every region check must be settled
   by exactly one of the two paths. *)

module Counters = Giantsan_sanitizer.Counters
module Harness = Giantsan_bugs.Harness
module Difftest = Giantsan_bugs.Difftest

let gen_counters =
  QCheck.Gen.(
    map
      (fun l ->
        let c = Counters.create () in
        let v i = List.nth l i in
        c.Counters.mallocs <- v 0;
        c.Counters.frees <- v 1;
        c.Counters.poison_segments <- v 2;
        c.Counters.instr_checks <- v 3;
        c.Counters.region_checks <- v 4;
        c.Counters.fast_checks <- v 5;
        c.Counters.slow_checks <- v 6;
        c.Counters.cache_hits <- v 7;
        c.Counters.cache_updates <- v 8;
        c.Counters.underflow_checks <- v 9;
        c.Counters.bounds_checks <- v 10;
        c.Counters.auth_checks <- v 11;
        c.Counters.errors <- v 12;
        c)
      (list_repeat 13 (int_bound 10_000)))

let arb_counters = QCheck.make gen_counters

let snapshot = Counters.to_assoc

let plus a b =
  let acc = Counters.create () in
  Counters.add acc a;
  Counters.add acc b;
  acc

let test_add_commutative =
  Helpers.q "add is commutative"
    QCheck.(pair arb_counters arb_counters)
    (fun (a, b) -> snapshot (plus a b) = snapshot (plus b a))

let test_add_associative =
  Helpers.q "add is associative"
    QCheck.(triple arb_counters arb_counters arb_counters)
    (fun (a, b, c) ->
      snapshot (plus (plus a b) c) = snapshot (plus a (plus b c)))

let test_reset_is_identity =
  Helpers.q "reset yields the identity of add" arb_counters (fun a ->
      let zero = Counters.create () in
      Counters.reset zero;
      snapshot (plus a zero) = snapshot a
      && snapshot (plus zero a) = snapshot a
      && Counters.total_checks zero = 0)

let test_add_does_not_mutate_rhs =
  Helpers.q "add leaves its argument untouched"
    QCheck.(pair arb_counters arb_counters)
    (fun (a, b) ->
      let before = snapshot b in
      let acc = Counters.create () in
      Counters.add acc a;
      Counters.add acc b;
      snapshot b = before)

(* [total_checks] counts each check event once: instruction checks, region
   checks (fast/slow only partition those, so they must NOT be added on
   top), cache consultations, bound-table checks and pointer
   authentications. Derived through the metric spec, so a new field can't
   silently join or leave the sum. *)
let test_total_checks_definition =
  Helpers.q "total_checks sums exactly the six check counters" arb_counters
    (fun c ->
      let a = Counters.to_assoc c in
      let v k = List.assoc k a in
      Counters.total_checks c
      = v "instr_checks" + v "region_checks" + v "cache_hits"
        + v "cache_updates" + v "bounds_checks" + v "auth_checks")

let test_spec_matches_assoc =
  Helpers.q "the metric spec and to_assoc agree field by field" arb_counters
    (fun c ->
      let module Metric = Giantsan_telemetry.Metric in
      Counters.to_assoc c
      = List.map
          (fun name -> (name, Metric.get Counters.spec name c))
          (Metric.names Counters.spec))

let violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
    Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
  ]

(* After any workload: GiantSan's fast and slow paths partition its region
   checks; ASan and ASan-- do monolithic region checks (no path split); LFP
   checks pointer arithmetic, never regions. *)
let test_fast_slow_partition =
  Helpers.q "fast_checks + slow_checks = region_checks after any workload"
    QCheck.(pair small_int bool)
    (fun (seed, buggy) ->
      let sc =
        if buggy then
          Difftest.gen_buggy ~seed
            (List.nth violations (seed mod List.length violations))
        else Difftest.gen_clean ~seed
      in
      List.for_all
        (fun tool ->
          let san = Harness.make_sanitizer tool in
          let _ = Giantsan_bugs.Scenario.run san sc in
          let c = san.Giantsan_sanitizer.Sanitizer.counters in
          match tool with
          | Harness.Giantsan ->
            c.Counters.fast_checks + c.Counters.slow_checks
            = c.Counters.region_checks
          | Harness.Asan | Harness.Asanmm ->
            c.Counters.fast_checks = 0 && c.Counters.slow_checks = 0
          | Harness.Lfp ->
            c.Counters.region_checks = 0
            && c.Counters.fast_checks = 0
            && c.Counters.slow_checks = 0
          | Harness.Pac ->
            (* PAC authenticates; it never walks shadow paths *)
            c.Counters.fast_checks = 0 && c.Counters.slow_checks = 0)
        Harness.all_tools)

let suite =
  ( "counters",
    [
      test_add_commutative;
      test_add_associative;
      test_reset_is_identity;
      test_add_does_not_mutate_rhs;
      test_total_checks_definition;
      test_spec_matches_assoc;
      test_fast_slow_partition;
    ] )
