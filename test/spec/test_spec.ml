(* The executable-specification suites: the pure model's own refinement
   units (quarantine FIFO, placement validation), every optimized kernel
   against its scalar reference, and the lockstep harness with its
   mutation kills. These are the properties that license the unsafe
   kernels; everything else in the test tree can assume them. *)

module Memsim = Giantsan_memsim
module Heap = Memsim.Heap
module Memobj = Memsim.Memobj
module Arena = Memsim.Arena
module Shadow_mem = Giantsan_shadow.Shadow_mem
module SC = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Linear_encoding = Giantsan_core.Linear_encoding
module RC = Giantsan_core.Region_check
module Gs_runtime = Giantsan_core.Gs_runtime
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Interceptors = Giantsan_sanitizer.Interceptors
module Rng = Giantsan_util.Rng
module Model = Giantsan_spec.Model
module Ref_kernel = Giantsan_spec.Ref_kernel
module Refine = Giantsan_spec.Refine
module Backend = Giantsan_policy.Backend
module Pac = Giantsan_pac.Pac
module Counters = Giantsan_sanitizer.Counters

let qt = Alcotest.test_case

let q ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ------------------------------------------------------------------ *)
(* spec-model: the pure model's own refinement units                   *)
(* ------------------------------------------------------------------ *)

(* Drive the REAL allocator and the model side by side through a
   quarantine-churning schedule and compare the FIFO view after every
   operation. *)
let lockstep_heap config ops =
  let heap = Heap.create config in
  let model = ref (Model.create config) in
  let objs = ref [] in
  let agree what =
    Alcotest.(check (list int))
      (what ^ ": quarantine ids")
      (Heap.quarantine_ids heap)
      (Model.quarantine_ids !model);
    Alcotest.(check int)
      (what ^ ": held bytes")
      (Heap.quarantine_held heap)
      (Model.quarantine_held !model);
    Alcotest.(check int)
      (what ^ ": bypasses")
      (Heap.quarantine_bypasses heap)
      (Model.quarantine_bypasses !model)
  in
  List.iter
    (fun op ->
      (match op with
      | `Alloc size ->
        let obj = Heap.malloc heap size in
        objs := !objs @ [ obj ];
        (match
           Model.alloc !model ~kind:Memobj.Heap ~size
             (Model.placement_of_obj obj)
         with
        | Ok m -> model := m
        | Error e -> Alcotest.failf "model rejected a real placement: %s" e)
      | `Free i -> (
        let obj = List.nth !objs i in
        let ptr = obj.Memobj.base in
        match (Heap.free heap ptr, Model.free !model ~ptr) with
        | Ok _, Ok m -> model := m
        | Error _, Error _ -> ()
        | Ok _, Error _ -> Alcotest.fail "model rejected a real free"
        | Error _, Ok _ -> Alcotest.fail "model accepted a bad free"));
      agree "after op")
    ops

let churn_config =
  { Heap.arena_size = 4096; redzone = 16; quarantine_budget = 150 }

let test_quarantine_fifo_eviction_order () =
  (* blocks of size 24 are 56 bytes; a 150-byte budget holds two, so the
     third free must evict the OLDEST — and the model is a plain list
     append + head drop, so agreement is exactly FIFO order *)
  lockstep_heap churn_config
    [
      `Alloc 24; `Alloc 24; `Alloc 24; `Alloc 24;
      `Free 0; `Free 1; `Free 2; `Free 3;
    ]

let test_quarantine_budget0_one_deep () =
  (* budget 0: every free still quarantines the newcomer (never evict the
     block being freed), evicting the previous tenant and counting a
     bypass each time *)
  let config = { churn_config with Heap.quarantine_budget = 0 } in
  let heap = Heap.create config in
  let model = ref (Model.create config) in
  let o1 = Heap.malloc heap 24 and o2 = Heap.malloc heap 24 in
  List.iter
    (fun (o : Memobj.t) ->
      (match
         Model.alloc !model ~kind:Memobj.Heap ~size:o.Memobj.size
           (Model.placement_of_obj o)
       with
      | Ok m -> model := m
      | Error e -> Alcotest.failf "placement rejected: %s" e);
      (match (Heap.free heap o.Memobj.base, Model.free !model ~ptr:o.Memobj.base) with
      | Ok _, Ok m -> model := m
      | _ -> Alcotest.fail "free disagreement");
      Alcotest.(check (list int))
        "exactly the newcomer is retained"
        [ o.Memobj.id ]
        (Heap.quarantine_ids heap);
      Alcotest.(check (list int))
        "model agrees" [ o.Memobj.id ]
        (Model.quarantine_ids !model))
    [ o1; o2 ];
  Alcotest.(check int) "one bypass per over-budget newcomer" 2
    (Heap.quarantine_bypasses heap);
  Alcotest.(check int) "model counted the same bypasses" 2
    (Model.quarantine_bypasses !model)

let test_quarantine_random_churn =
  q ~count:60 "random alloc/free churn refines the pure FIFO"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 77) in
      let ops = ref [] in
      let allocated = ref 0 in
      for _ = 1 to 24 do
        if !allocated = 0 || Rng.int rng 3 < 2 then begin
          ops := `Alloc (Rng.int_in rng 0 80) :: !ops;
          incr allocated
        end
        else ops := `Free (Rng.int rng !allocated) :: !ops
      done;
      lockstep_heap churn_config (List.rev !ops);
      true)

let test_placement_validation_has_teeth () =
  let m = Model.create churn_config in
  let reject what p =
    match Model.alloc m ~kind:Memobj.Heap ~size:24 p with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec accepted %s" what
  in
  reject "a misaligned base"
    { Model.p_id = 1; p_base = 84; p_block_base = 80; p_block_len = 64 };
  reject "a block inside the null guard"
    { Model.p_id = 1; p_base = 16 + 16; p_block_base = 16; p_block_len = 64 };
  reject "a block past the arena end"
    {
      Model.p_id = 1;
      p_base = 4080 + 16;
      p_block_base = 4080;
      p_block_len = 64;
    };
  reject "a block with no room for the redzones"
    { Model.p_id = 1; p_base = 80 + 16; p_block_base = 80; p_block_len = 32 };
  (* a legal placement, then an overlapping one *)
  match
    Model.alloc m ~kind:Memobj.Heap ~size:24
      { Model.p_id = 1; p_base = 96; p_block_base = 80; p_block_len = 64 }
  with
  | Error e -> Alcotest.failf "spec rejected a legal placement: %s" e
  | Ok m ->
    (match
       Model.alloc m ~kind:Memobj.Heap ~size:24
         { Model.p_id = 2; p_base = 128; p_block_base = 112; p_block_len = 64 }
     with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "spec accepted an overlapping block")

(* ------------------------------------------------------------------ *)
(* spec-kernels: every optimized kernel against its scalar reference   *)
(* ------------------------------------------------------------------ *)

(* A random well-formed scene: live and freed objects through the real
   GiantSan runtime, shadow exposed, reference snapshot taken. *)
let scene seed =
  let rng = Rng.create (seed + 1371) in
  let config =
    { Heap.arena_size = 2048; redzone = 16; quarantine_budget = 512 }
  in
  let san, m = Gs_runtime.create_exposed config in
  (try
     for _ = 1 to Rng.int_in rng 2 9 do
       let obj = san.San.malloc (Rng.int_in rng 0 180) in
       if Rng.int rng 3 = 0 then ignore (san.San.free obj.Memsim.Memobj.base)
     done
   with Out_of_memory -> ());
  (san, m, Ref_kernel.of_shadow m, rng)

let test_region_check_matches_reference =
  q ~count:120 "Region_check.check_unaligned = byte-wise reference"
    QCheck.small_int
    (fun seed ->
      let _, m, r, rng = scene seed in
      let arena_end = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 48 do
        (* unaligned starts, zero and negative lengths, arena-end
           straddles — every generator obligation from the satellites *)
        let l = Rng.int rng (arena_end + 16) in
        let len = Rng.int_in rng (-8) 72 in
        let real = RC.check_unaligned m ~l ~r:(l + len) in
        let reference = Ref_kernel.region_check_unaligned r ~l ~r:(l + len) in
        (match (real, reference) with
        | (RC.Safe_fast | RC.Safe_slow | RC.Safe_word), `Safe -> ()
        | RC.Bad a, `Bad _ ->
          (* blame containment: anywhere in the aligned window *)
          if not (a >= l land lnot 7 && a < l + len) then ok := false
        | (RC.Safe_fast | RC.Safe_slow | RC.Safe_word), `Bad _
        | RC.Bad _, `Safe ->
          ok := false);
        ignore (Shadow_mem.loads m)
      done;
      !ok)

let test_word_check_matches_scalar =
  q ~count:120 "word check path = scalar Algorithm 1, corrupted shadows too"
    QCheck.small_int
    (fun seed ->
      let san, m, _, rng = scene seed in
      (* plant a misfolded allocation (armed fault plan) and raw pokes: the
         word kernel extracts the scalar probe bytes from one load, so it
         must agree on ANY shadow contents — a misfold has to make both
         paths diverge from the truth identically, never from each other *)
      (try
         ignore
           (Folding.with_fault
              (Some (Folding.Overstate_last (1 + Rng.int rng 6)))
              (fun () -> san.San.malloc (8 * Rng.int_in rng 3 20)))
       with Out_of_memory -> ());
      for _ = 1 to 6 do
        Shadow_mem.poke m (Rng.int rng (Shadow_mem.segments m)) (Rng.int rng 256)
      done;
      let arena_end = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 64 do
        (* aligned spans <= 64 bytes dispatch to the word kernel, including
           arena-end straddles and fully out-of-arena starts *)
        let l = 8 * Rng.int rng ((arena_end / 8) + 2) in
        let len = Rng.int_in rng 1 64 in
        let before = Shadow_mem.loads m in
        let word = RC.check m ~l ~r:(l + len) in
        let word_loads = Shadow_mem.loads m - before in
        let scalar = RC.check_scalar m ~l ~r:(l + len) in
        (match (word, scalar) with
        | RC.Safe_word, (RC.Safe_fast | RC.Safe_slow) -> ()
        | RC.Bad a, RC.Bad b -> if a <> b then ok := false
        | _ -> ok := false);
        (* the whole verdict costs one counted load (zero past the arena) *)
        let expect_loads = if l < arena_end then 1 else 0 in
        if word_loads <> expect_loads then ok := false
      done;
      (* unaligned wrapper vs its scalar twin: unaligned l and r, zero and
         negative lengths *)
      for _ = 1 to 32 do
        let l = Rng.int rng (arena_end + 16) in
        let len = Rng.int_in rng (-8) 72 in
        let a = RC.check_unaligned m ~l ~r:(l + len)
        and b = RC.check_unaligned_scalar m ~l ~r:(l + len) in
        match (a, b) with
        | ( (RC.Safe_fast | RC.Safe_slow | RC.Safe_word),
            (RC.Safe_fast | RC.Safe_slow | RC.Safe_word) ) -> ()
        | RC.Bad x, RC.Bad y -> if x <> y then ok := false
        | _ -> ok := false
      done;
      !ok)

let test_load_word_matches_reference =
  q ~count:120 "Shadow_mem.load_word = eight-peek reference, counting exact"
    QCheck.small_int
    (fun seed ->
      let _, m, r, rng = scene seed in
      let n = Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 64 do
        (* in-arena words, arena-end straddles, fully outside, negative *)
        let p = Rng.int_in rng (-12) (n + 12) in
        let before = Shadow_mem.loads m in
        let w = Shadow_mem.load_word m p in
        let counted = Shadow_mem.loads m - before in
        if w <> Ref_kernel.word_at r p then ok := false;
        if counted <> (if Ref_kernel.word_load_counted r p then 1 else 0) then
          ok := false;
        (* peek_word answers the same word without touching the counter *)
        let before = Shadow_mem.loads m in
        if Shadow_mem.peek_word m p <> w then ok := false;
        if Shadow_mem.loads m <> before then ok := false;
        (* lane extraction = the scalar peeks it batches *)
        for k = 0 to 7 do
          if Shadow_mem.word_byte w k <> Shadow_mem.peek m (p + k) then
            ok := false
        done
      done;
      !ok)

let test_mru_windows_stay_addressable =
  q ~count:80 "MRU history windows only ever cover addressable bytes"
    QCheck.small_int
    (fun seed ->
      let san, m, _, rng = scene seed in
      match (try Some (san.San.malloc 120) with Out_of_memory -> None) with
      | None -> true
      | Some obj ->
        let r = Ref_kernel.of_shadow m in
        let base = obj.Memsim.Memobj.base + (8 * Rng.int rng 16) in
        let cache = san.San.new_cache ~base in
        let ok = ref true in
        for _ = 1 to 32 do
          let off = Rng.int_in rng (-32) 140 in
          let width = Rng.pick rng [| 1; 2; 4; 8 |] in
          ignore (san.San.cached_access cache ~off ~width);
          (* after every access — note, merge, promote or evict — each
             retained window must re-check clean against the byte-wise
             reference: no merge or eviction may ever leave a cached span
             reaching past the true object extent *)
          List.iter
            (fun (lo, hi) ->
              match Ref_kernel.region_check_unaligned r ~l:lo ~r:hi with
              | `Safe -> ()
              | `Bad _ -> ok := false)
            (San.cache_windows cache)
        done;
        !ok)

let test_upper_bound_matches_reference =
  q ~count:120 "Folding.upper_bound = byte-walk reference" QCheck.small_int
    (fun seed ->
      let _, m, r, rng = scene seed in
      let arena_end = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 48 do
        let addr = Rng.int rng arena_end in
        if Folding.upper_bound m ~addr <> Ref_kernel.upper_bound r ~addr then
          ok := false
      done;
      !ok)

let test_lower_bound_sound_per_reference =
  q ~count:120 "Folding.lower_bound stays inside the reference envelope"
    QCheck.small_int
    (fun seed ->
      let _, m, r, rng = scene seed in
      let arena_end = 8 * Shadow_mem.segments m in
      let ok = ref true in
      for _ = 1 to 48 do
        let addr = Rng.int rng arena_end in
        if not (Ref_kernel.lower_bound_sound r ~addr (Folding.lower_bound m ~addr))
        then ok := false
      done;
      !ok)

let test_quasi_bound_matches_reference =
  q ~count:80 "quasi-bound verdicts = reference addressability"
    QCheck.small_int
    (fun seed ->
      let san, m, _, rng = scene seed in
      let objs =
        (* cache bases must be 8-aligned live pointers *)
        match
          try Some (san.San.malloc 96) with Out_of_memory -> None
        with
        | None -> []
        | Some o -> [ o ]
      in
      match objs with
      | [] -> true
      | obj :: _ ->
        let r = Ref_kernel.of_shadow m in
        let base = obj.Memsim.Memobj.base + 8 * Rng.int rng 13 in
        let cache = san.San.new_cache ~base in
        let ok = ref true in
        for _ = 1 to 24 do
          let off = Rng.int_in rng (-24) 120 in
          let width = Rng.pick rng [| 1; 2; 4; 8 |] in
          let verdict =
            match san.San.cached_access cache ~off ~width with
            | None -> true
            | Some _ -> false
          in
          let window_safe ~l ~r:hi =
            match Ref_kernel.region_check_unaligned r ~l ~r:hi with
            | `Safe -> true
            | `Bad _ -> false
          in
          let expected =
            if off < 0 then
              window_safe ~l:(base + off) ~r:base
              && (off + width <= 0 || window_safe ~l:base ~r:(base + off + width))
            else window_safe ~l:base ~r:(base + off + width)
          in
          if verdict <> expected then ok := false
        done;
        !ok)

let test_linear_poison_matches_reference =
  q ~count:120 "Linear_encoding.poison_good_run = reference"
    QCheck.(pair small_nat small_nat)
    (fun (first_pick, count) ->
      let segments = 512 in
      let count = count mod 300 in
      let first_seg = first_pick mod (segments - 300) in
      let m = Shadow_mem.create ~segments ~fill:SC.unallocated in
      let r = Ref_kernel.create ~segments ~fill:SC.unallocated in
      Linear_encoding.poison_good_run m ~first_seg ~count;
      Ref_kernel.linear_poison_good_run r ~first_seg ~count;
      let same = ref (Shadow_mem.stores m = Ref_kernel.stores r) in
      for p = 0 to segments - 1 do
        if Shadow_mem.peek m p <> Ref_kernel.peek r p then same := false
      done;
      !same)

(* ------------------------------------------------------------------ *)
(* spec-refine: the lockstep harness and its mutation kills            *)
(* ------------------------------------------------------------------ *)

let assert_equivalent outcome =
  match outcome with
  | Refine.Equivalent _ -> true
  | Refine.Diverged d ->
    QCheck.Test.fail_reportf "lockstep divergence: %s"
      (Refine.divergence_to_string d)

let test_lockstep_default =
  q ~count:40 "lockstep: the real runtime refines the model"
    QCheck.small_int
    (fun seed -> assert_equivalent (Refine.run ~seed ~steps:150 ()))

let test_lockstep_budget0 =
  q ~count:25 "lockstep under a zero quarantine budget" QCheck.small_int
    (fun seed ->
      let config =
        { Heap.arena_size = 2048; redzone = 16; quarantine_budget = 0 }
      in
      assert_equivalent (Refine.run ~config ~seed ~steps:150 ()))

let test_lockstep_pressure =
  q ~count:25 "lockstep under allocation pressure (tiny arena)"
    QCheck.small_int
    (fun seed ->
      let config =
        { Heap.arena_size = 768; redzone = 16; quarantine_budget = 256 }
      in
      assert_equivalent (Refine.run ~config ~seed ~steps:150 ()))

let mutation_kill_test m =
  qt
    (Printf.sprintf "mutation kill: %s" (Refine.mutation_name m))
    `Quick
    (fun () ->
      List.iter
        (fun seed ->
          let killed, detail = Refine.check_mutation ~seed ~steps:24 m in
          if not killed then
            Alcotest.failf "mutant survived (seed %d): %s" seed detail)
        [ 3; 7; 11; 42 ])

(* ------------------------------------------------------------------ *)
(* memcpy/memset edges across all four backends (satellite 4)          *)
(* ------------------------------------------------------------------ *)

let backend_config =
  { Heap.arena_size = 1024; redzone = 16; quarantine_budget = 256 }

let backends : (string * (unit -> San.t)) list =
  [
    ("giantsan", fun () -> Gs_runtime.create backend_config);
    ("asan", fun () -> Giantsan_asan.Asan_runtime.create backend_config);
    ("lfp", fun () -> Giantsan_lfp.Lfp_runtime.create backend_config);
    ("native", fun () -> Giantsan_sanitizer.Native.create backend_config);
  ]

(* Mirror of the clamped data plane: Interceptors.memmove/memset run the
   data operation only when every region check passed, and clamp it to the
   arena so an undetected wild operation (Native has no detector) stays a
   MISSED DETECTION instead of a crash. The mirror applies the same rule
   to a plain Bytes copy of the arena; the arena must match it byte for
   byte afterwards — overlap, adjacency, zero length and out-of-bounds
   included. *)
let test_memcpy_memset_edges_all_backends =
  q ~count:60 "memcpy/memset overlap+adjacency edges, all four backends"
    QCheck.small_int
    (fun seed ->
      List.for_all
        (fun (bname, make) ->
          let san = make () in
          let rng = Rng.create ((seed * 7) + 13) in
          let limit = Arena.size (Heap.arena san.San.heap) in
          let objs =
            List.filter_map
              (fun size ->
                try Some (san.San.malloc size) with Out_of_memory -> None)
              [ 40; 64; 24 ]
          in
          if objs = [] then true
          else begin
            let arena = Heap.arena san.San.heap in
            let mirror =
              Bytes.init limit (fun i ->
                  Char.chr (Arena.load arena ~addr:i ~width:1))
            in
            let mirror_set ~dst ~n byte =
              if dst >= 0 then begin
                let n = min n (limit - dst) in
                if n > 0 then Bytes.fill mirror dst n (Char.chr (byte land 0xff))
              end
            in
            let mirror_move ~src ~dst ~n =
              if src >= 0 && dst >= 0 then begin
                let n = min n (min (limit - src) (limit - dst)) in
                if n > 0 then Bytes.blit mirror src mirror dst n
              end
            in
            let pick_addr () =
              let o = List.nth objs (Rng.int rng (List.length objs)) in
              o.Memobj.base + Rng.int_in rng (-24) (o.Memobj.size + 24)
            in
            for _ = 1 to 30 do
              if Rng.bool rng then begin
                let dst = pick_addr () and n = Rng.int_in rng 0 48 in
                let byte = Rng.int rng 256 in
                let reports = Interceptors.memset san ~dst ~n ~byte in
                if reports = [] then mirror_set ~dst ~n byte
              end
              else begin
                let src = pick_addr ()
                and dst = pick_addr ()
                and n = Rng.int_in rng 0 48 in
                let reports = Interceptors.memmove san ~dst ~src ~n in
                if reports = [] then mirror_move ~src ~dst ~n
              end
            done;
            let ok = ref true in
            for i = 0 to limit - 1 do
              if Arena.load arena ~addr:i ~width:1 <> Char.code (Bytes.get mirror i)
              then ok := false
            done;
            if not !ok then
              QCheck.Test.fail_reportf "arena/mirror divergence on %s" bname
            else true
          end)
        backends)

(* ------------------------------------------------------------------ *)
(* Fuzz-mode restore = rebuild, all five backends (satellite 4)        *)
(* ------------------------------------------------------------------ *)

(* The fuzz-mode contract, as a property: running prefix -> snapshot ->
   arbitrary drift -> restore -> continuation must land byte-identical —
   arena, metadata plane, quarantine FIFO, every counter — to running
   prefix -> continuation on a fresh runtime. The snapshot is taken
   mid-quarantine-churn (a deterministic warm phase frees into the FIFO
   first), and the comparison covers the PAC salt counter: a restored
   context must re-issue the same salts a fresh one would. *)

let restore_config =
  { Heap.arena_size = 4096; redzone = 16; quarantine_budget = 512 }

let restore_slots = 12

let run_random_ops san (slots : (int * int) option array) rng n =
  for _ = 1 to n do
    match Rng.int rng 6 with
    | 0 | 1 -> (
      let size = Rng.int_in rng 0 96 in
      try
        let obj = san.San.malloc size in
        slots.(Rng.int rng restore_slots) <-
          Some (obj.Memobj.base, obj.Memobj.size)
      with Out_of_memory -> ())
    | 2 -> (
      let i = Rng.int rng restore_slots in
      match slots.(i) with
      | Some (base, _) ->
        ignore (san.San.free base);
        (* sometimes keep the stale slot: later frees become double-frees
           and later accesses UAFs, so error verdicts are compared too *)
        if Rng.int rng 3 < 2 then slots.(i) <- None
      | None -> ())
    | 3 -> (
      match slots.(Rng.int rng restore_slots) with
      | Some (base, size) ->
        let off = Rng.int_in rng (-8) (size + 8) in
        let width = Rng.pick rng [| 1; 2; 4; 8 |] in
        ignore (san.San.access ~base ~addr:(base + off) ~width)
      | None -> ())
    | _ -> (
      match slots.(Rng.int rng restore_slots) with
      | Some (base, size) ->
        let lo = base + Rng.int_in rng (-8) size in
        ignore (san.San.check_region ~lo ~hi:(lo + Rng.int_in rng 0 40))
      | None -> ())
  done

let state_fingerprint san plane =
  let b = Buffer.create 8192 in
  let heap = san.San.heap in
  let arena = Heap.arena heap in
  for i = 0 to Arena.size arena - 1 do
    Buffer.add_char b (Char.chr (Arena.load arena ~addr:i ~width:1))
  done;
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Counters.to_assoc san.San.counters)));
  Buffer.add_string b
    (Printf.sprintf "|loads=%d stores=%d live=%d flushes=%d byp=%d held=%d q=%s"
       (san.San.shadow_loads ()) (san.San.shadow_stores ())
       (Heap.live_bytes heap) (Heap.pressure_flushes heap)
       (Heap.quarantine_bypasses heap) (Heap.quarantine_held heap)
       (String.concat ","
          (List.map string_of_int (Heap.quarantine_ids heap))));
  (match plane with
  | Backend.Shadow m ->
    Buffer.add_string b "|shadow=";
    for p = 0 to Shadow_mem.segments m - 1 do
      Buffer.add_char b (Char.chr (Shadow_mem.peek m p))
    done
  | Backend.Sigs p ->
    Buffer.add_string b "|sigs=";
    List.iter
      (fun base ->
        Buffer.add_string b
          (Printf.sprintf "%d:%d:%d;" base
             (Option.value ~default:(-1) (Pac.salt_of p ~base))
             (Option.value ~default:(-1) (Pac.pac_of p ~base))))
      (Pac.bases p)
  | Backend.Plain -> ());
  Buffer.contents b

let run_restore_procedure ~with_restore id seed =
  let san, plane = Backend.create_exposed id restore_config in
  let slots = Array.make restore_slots None in
  (* deterministic warm churn: mallocs then frees, so the snapshot below
     lands while the quarantine FIFO is mid-rotation *)
  let warm = Rng.create (seed + 901) in
  run_random_ops san slots warm 24;
  let prefix = Rng.create (seed + 17) in
  run_random_ops san slots prefix 40;
  if with_restore then begin
    san.San.snapshot ();
    let saved = Array.copy slots in
    let churn = Rng.create (seed + 5555) in
    run_random_ops san slots churn 40;
    san.San.restore ();
    Array.blit saved 0 slots 0 restore_slots
  end;
  let cont = Rng.create (seed + 33) in
  run_random_ops san slots cont 40;
  (* the fast/slow partition must survive the rewind on the folded shadow *)
  (if id = Backend.Giantsan then
     let c = san.San.counters in
     if c.Counters.fast_checks + c.Counters.slow_checks
        <> c.Counters.region_checks
     then
       QCheck.Test.fail_reportf
         "giantsan fast/slow partition broken after restore: %d + %d <> %d"
         c.Counters.fast_checks c.Counters.slow_checks
         c.Counters.region_checks);
  state_fingerprint san plane

let test_restore_equals_rebuild_all_backends =
  q ~count:40 "restore-after-random-ops = rebuild-from-scratch, 5 backends"
    QCheck.small_int
    (fun seed ->
      List.for_all
        (fun id ->
          let restored = run_restore_procedure ~with_restore:true id seed in
          let rebuilt = run_restore_procedure ~with_restore:false id seed in
          if String.equal restored rebuilt then true
          else
            QCheck.Test.fail_reportf
              "%s: restored state differs from a from-scratch rebuild \
               (seed %d)"
              (Backend.name id) seed)
        Backend.all)

let () =
  Alcotest.run "giantsan-spec"
    [
      ( "spec-model",
        [
          qt "quarantine eviction order is FIFO" `Quick
            test_quarantine_fifo_eviction_order;
          qt "budget 0 retains exactly the newcomer" `Quick
            test_quarantine_budget0_one_deep;
          test_quarantine_random_churn;
          qt "placement validation has teeth" `Quick
            test_placement_validation_has_teeth;
        ] );
      ( "spec-kernels",
        [
          test_region_check_matches_reference;
          test_word_check_matches_scalar;
          test_load_word_matches_reference;
          test_mru_windows_stay_addressable;
          test_upper_bound_matches_reference;
          test_lower_bound_sound_per_reference;
          test_quasi_bound_matches_reference;
          test_linear_poison_matches_reference;
        ] );
      ( "spec-refine",
        test_lockstep_default :: test_lockstep_budget0 :: test_lockstep_pressure
        :: test_memcpy_memset_edges_all_backends
        :: test_restore_equals_rebuild_all_backends
        :: List.map mutation_kill_test Refine.all_mutations );
    ]
