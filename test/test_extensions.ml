(* Extensions beyond the core reproduction: the §5.4 reverse-scan
   mitigations, guardian interceptors, realloc/calloc, shadow dumps. *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Interceptors = Giantsan_sanitizer.Interceptors
module Folding = Giantsan_core.Folding
module SC = Giantsan_core.State_code
module Shadow_dump = Giantsan_core.Shadow_dump
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Traversal = Giantsan_workload.Traversal
module Runner = Giantsan_workload.Runner

let put_string (san : San.t) ~addr s =
  let a = Memsim.Heap.arena san.San.heap in
  String.iteri
    (fun i c -> Memsim.Arena.store a ~addr:(addr + i) ~width:1 (Char.code c))
    s;
  Memsim.Arena.store a ~addr:(addr + String.length s) ~width:1 0

(* ---------------- lower_bound (§5.4 second mitigation) -------------- *)

let test_lower_bound_finds_object_base () =
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let obj = san.San.malloc 1999 in
  let base = obj.Memsim.Memobj.base in
  List.iter
    (fun off ->
      Alcotest.(check int)
        (Printf.sprintf "from offset %d" off)
        base
        (Folding.lower_bound m ~addr:(base + off)))
    [ 8; 64; 512; 1024; 1992 ]

let test_lower_bound_logarithmic_loads () =
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.mid_config in
  let obj = san.San.malloc 65536 in
  let base = obj.Memsim.Memobj.base in
  Shadow_mem.reset_counters m;
  ignore (Folding.lower_bound m ~addr:(base + 65528));
  Alcotest.(check bool)
    (Printf.sprintf "O(log^2 n) loads, got %d" (Shadow_mem.loads m))
    true
    (Shadow_mem.loads m <= 200)

let test_lower_bound_never_crosses_redzone =
  Helpers.q "lower_bound stays within addressable run"
    QCheck.(pair small_int (int_range 0 400))
    (fun (seed, probe) ->
      let rng = Giantsan_util.Rng.create seed in
      let config = Helpers.small_config in
      let san, m =
        ( (fun () -> Giantsan_core.Gs_runtime.create_exposed config) ()
          : San.t * Shadow_mem.t )
      in
      let sizes = List.init 5 (fun _ -> Giantsan_util.Rng.int_in rng 1 500) in
      let objs = List.map (fun s -> san.San.malloc s) sizes in
      let obj = List.nth objs (probe mod 5) in
      let size = obj.Memsim.Memobj.size in
      if size = 0 then true
      else begin
        let addr = obj.Memsim.Memobj.base + (probe mod size) in
        let lb = Folding.lower_bound m ~addr in
        (* sound: everything from lb to the probe's segment is addressable *)
        lb >= obj.Memsim.Memobj.base
        && Helpers.oracle_safe san ~lo:lb ~hi:(addr land lnot 7)
      end)

let test_reverse_prescan_fixes_the_asymmetry () =
  (* the prescan was the workload-side workaround for the §5.4 reverse
     asymmetry; the MRU window history has since fixed the naive path
     itself, so the prescan is now only a small further saving (it skips
     the lower_bound walk and the per-window flush) rather than a rescue *)
  let san = Runner.make_sanitizer Runner.Giantsan in
  let base = Traversal.prepare san ~size:8192 in
  let naive = Traversal.reverse san ~base ~size:8192 in
  let smart = Traversal.reverse_prescan san ~base ~size:8192 in
  Alcotest.(check int) "same data" naive.Traversal.t_checksum
    smart.Traversal.t_checksum;
  Alcotest.(check bool)
    (Printf.sprintf "prescan loads tiny (%d vs %d)"
       smart.Traversal.t_shadow_loads naive.Traversal.t_shadow_loads)
    true
    (smart.Traversal.t_shadow_loads <= 4
    && naive.Traversal.t_shadow_loads <= 100
    && smart.Traversal.t_shadow_loads <= naive.Traversal.t_shadow_loads)

let test_reverse_prescan_still_detects () =
  let san = Runner.make_sanitizer Runner.Giantsan in
  let base = Traversal.prepare san ~size:4096 in
  let r = Traversal.reverse_prescan san ~base ~size:4104 in
  Alcotest.(check bool) "overflowing span caught up front" true
    (r.Traversal.t_reports > 0)

(* ---------------- degraded underflow mode (§5.4 alternative 1) ------ *)

let test_no_underflow_anchor_variant () =
  let mk ?check_underflow () =
    Giantsan_core.Gs_runtime.create_variant ~name:"GiantSan-noUA"
      ~use_cache:true ?check_underflow Helpers.small_config
  in
  (* long-jump underflow past the redzone into the previous object *)
  let exercise san =
    let module M = Giantsan_memsim.Memobj in
    let _prev = san.San.malloc 256 in
    let obj = san.San.malloc 64 in
    let base = obj.M.base in
    san.San.access ~base ~addr:(base - 64) ~width:1
  in
  Alcotest.(check bool) "full GiantSan catches the long underflow" false
    (Helpers.check_is_safe (exercise (mk ())));
  Alcotest.(check bool) "degraded mode misses it (ASan semantics)" true
    (Helpers.check_is_safe (exercise (mk ~check_underflow:false ())));
  (* but direct redzone hits are still caught in degraded mode *)
  let san = mk ~check_underflow:false () in
  let obj = san.San.malloc 64 in
  Alcotest.(check bool) "redzone hit still caught" false
    (Helpers.check_is_safe
       (san.San.access ~base:obj.Giantsan_memsim.Memobj.base
          ~addr:(obj.Giantsan_memsim.Memobj.base - 1) ~width:1))

(* ---------------- shadow dumps -------------------------------------- *)

let test_shadow_dump () =
  let san, m = Giantsan_core.Gs_runtime.create_exposed Helpers.small_config in
  let obj = san.San.malloc 68 in
  let base = obj.Memsim.Memobj.base in
  let txt = Shadow_dump.around m ~addr:base () in
  Alcotest.(check bool) "marks the segment" true
    (Astring_contains.contains txt "=>");
  Alcotest.(check bool) "shows the fold" true
    (Astring_contains.contains txt "(3)-folded");
  let summary =
    Shadow_dump.run_summary m ~lo:obj.Memsim.Memobj.block_base
      ~hi:(Memsim.Memobj.block_end obj)
  in
  Alcotest.(check bool) "summary shows folded run" true
    (Astring_contains.contains summary "8x folded");
  Alcotest.(check bool) "summary shows partial" true
    (Astring_contains.contains summary "4-partial")

(* ---------------- interceptors -------------------------------------- *)

let test_strlen_strcpy () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let src = san.San.malloc 32 in
  let dst = san.San.malloc 32 in
  let s = src.Memsim.Memobj.base and d = dst.Memsim.Memobj.base in
  put_string san ~addr:s "hello";
  let len, reps = Interceptors.strlen san ~addr:s in
  Alcotest.(check int) "strlen" 5 len;
  Alcotest.(check int) "clean" 0 (List.length reps);
  Alcotest.(check int) "strcpy clean" 0
    (List.length (Interceptors.strcpy san ~dst:d ~src:s));
  let copied, _ = Interceptors.strlen san ~addr:d in
  Alcotest.(check int) "copied string" 5 copied

let test_strcpy_overflow_detected () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let src = san.San.malloc 32 in
  let dst = san.San.malloc 4 in
  let s = src.Memsim.Memobj.base and d = dst.Memsim.Memobj.base in
  put_string san ~addr:s "this string is too long";
  let reps = Interceptors.strcpy san ~dst:d ~src:s in
  Alcotest.(check bool) "overflow reported" true (reps <> []);
  (* and the copy must NOT have clobbered the redzone *)
  let a = Memsim.Heap.arena san.San.heap in
  Alcotest.(check int) "no partial copy" 0 (Memsim.Arena.load a ~addr:d ~width:1)

let test_strcpy_linear_vs_constant_loads () =
  let run make_san =
    let san = make_san () in
    let src = san.San.malloc 2048 in
    let dst = san.San.malloc 2048 in
    let s = src.Memsim.Memobj.base and d = dst.Memsim.Memobj.base in
    put_string san ~addr:s (String.make 2000 'x');
    let before = san.San.shadow_loads () in
    let reps = Interceptors.strcpy san ~dst:d ~src:s in
    Alcotest.(check int) "clean" 0 (List.length reps);
    san.San.shadow_loads () - before
  in
  let gs = run (Helpers.giantsan ~config:Helpers.small_config) in
  let asan = run (Helpers.asan ~config:Helpers.small_config) in
  Alcotest.(check bool)
    (Printf.sprintf "GiantSan guardian O(1) (%d) vs ASan linear (%d)" gs asan)
    true
    (gs <= 8 && asan >= 500)

let test_strncpy_padding () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let src = san.San.malloc 16 in
  let dst = san.San.malloc 16 in
  let s = src.Memsim.Memobj.base and d = dst.Memsim.Memobj.base in
  put_string san ~addr:s "ab";
  Alcotest.(check int) "clean" 0
    (List.length (Interceptors.strncpy san ~dst:d ~src:s ~n:8));
  let a = Memsim.Heap.arena san.San.heap in
  Alcotest.(check int) "copied" (Char.code 'b') (Memsim.Arena.load a ~addr:(d + 1) ~width:1);
  Alcotest.(check int) "padded" 0 (Memsim.Arena.load a ~addr:(d + 7) ~width:1);
  (* n overflowing dst is caught *)
  Alcotest.(check bool) "overflowing n caught" true
    (Interceptors.strncpy san ~dst:d ~src:s ~n:20 <> [])

let test_strcat () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let dst = san.San.malloc 32 in
  let src = san.San.malloc 32 in
  let d = dst.Memsim.Memobj.base and s = src.Memsim.Memobj.base in
  put_string san ~addr:d "foo";
  put_string san ~addr:s "bar";
  Alcotest.(check int) "clean" 0 (List.length (Interceptors.strcat san ~dst:d ~src:s));
  let len, _ = Interceptors.strlen san ~addr:d in
  Alcotest.(check int) "foobar" 6 len

let test_memmove_and_memset () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let obj = san.San.malloc 64 in
  let b = obj.Memsim.Memobj.base in
  Alcotest.(check int) "memset ok" 0
    (List.length (Interceptors.memset san ~dst:b ~n:64 ~byte:7));
  Alcotest.(check int) "memmove overlap ok" 0
    (List.length (Interceptors.memmove san ~dst:(b + 8) ~src:b ~n:32));
  Alcotest.(check bool) "memmove OOB caught" true
    (Interceptors.memmove san ~dst:b ~src:b ~n:65 <> [])

let test_unterminated_string () =
  (* a "string" with no NUL before the arena's end: strlen reports *)
  let config =
    { Giantsan_memsim.Heap.arena_size = 4096; redzone = 16; quarantine_budget = 0 }
  in
  let san = Helpers.giantsan ~config () in
  let obj = san.San.malloc 64 in
  let b = obj.Memsim.Memobj.base in
  let a = Memsim.Heap.arena san.San.heap in
  (* fill the rest of the arena with non-zero bytes *)
  Memsim.Arena.fill a ~addr:b ~len:(4096 - b) 1;
  let _, reps = Interceptors.strlen san ~addr:b in
  Alcotest.(check bool) "runaway string reported" true (reps <> [])

let test_strlen_attribution () =
  (* regression: strlen used to fabricate a Wild_access report credited to
     whatever tool ran it, so Native "detected" runaway strings it cannot
     see. The scan now goes through each tool's own check_region: GiantSan
     flags the redzone/unallocated bytes it walked, Native stays blind. *)
  let config =
    { Giantsan_memsim.Heap.arena_size = 4096; redzone = 16; quarantine_budget = 0 }
  in
  let mk san =
    let obj = san.San.malloc 64 in
    let b = obj.Memsim.Memobj.base in
    let a = Memsim.Heap.arena san.San.heap in
    Memsim.Arena.fill a ~addr:b ~len:(4096 - b) 1;
    let len, reps = Interceptors.strlen san ~addr:b in
    (san, len, reps)
  in
  let _, glen, greps = mk (Helpers.giantsan ~config ()) in
  Alcotest.(check bool) "giantsan detects via its shadow" true (greps <> []);
  List.iter
    (fun (r : Report.t) ->
      Alcotest.(check string) "credited to GiantSan" "GiantSan"
        r.Report.detected_by)
    greps;
  let _, nlen, nreps = mk (Helpers.native ~config ()) in
  Alcotest.(check int) "same scan length" glen nlen;
  Alcotest.(check (list string)) "native detects nothing" []
    (List.map Report.to_string nreps)

let test_calloc_realloc () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let obj = Interceptors.calloc san ~count:8 ~size:16 in
  Alcotest.(check int) "calloc size" 128 obj.Memsim.Memobj.size;
  let a = Memsim.Heap.arena san.San.heap in
  Alcotest.(check int) "zeroed" 0
    (Memsim.Arena.load a ~addr:(obj.Memsim.Memobj.base + 120) ~width:8);
  Memsim.Arena.store a ~addr:obj.Memsim.Memobj.base ~width:8 424242;
  (match Interceptors.realloc san ~ptr:obj.Memsim.Memobj.base ~size:256 with
  | Ok fresh ->
    Alcotest.(check int) "grown" 256 fresh.Memsim.Memobj.size;
    Alcotest.(check int) "data carried over" 424242
      (Memsim.Arena.load a ~addr:fresh.Memsim.Memobj.base ~width:8);
    (* the old block is now quarantined: UAF on it is caught *)
    Alcotest.(check bool) "old pointer poisoned" false
      (Helpers.check_is_safe
         (san.San.access ~base:obj.Memsim.Memobj.base
            ~addr:obj.Memsim.Memobj.base ~width:8))
  | Error r -> Alcotest.failf "realloc failed: %s" (Report.to_string r));
  (* realloc of a wild pointer is an error *)
  match Interceptors.realloc san ~ptr:12345 ~size:64 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wild realloc must fail"

let test_realloc_null_is_malloc () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  match Interceptors.realloc san ~ptr:0 ~size:64 with
  | Ok obj -> Alcotest.(check int) "malloc'd" 64 obj.Memsim.Memobj.size
  | Error _ -> Alcotest.fail "realloc(NULL, n) is malloc"

let test_interceptors_work_for_all_tools () =
  List.iter
    (fun (name, make) ->
      let san = make () in
      let src = san.San.malloc 64 in
      let dst = san.San.malloc 8 in
      (* long enough to clear even LFP's 16-byte size class for dst *)
      put_string san ~addr:src.Memsim.Memobj.base "01234567890123456789";
      let reps =
        Interceptors.strcpy san ~dst:dst.Memsim.Memobj.base
          ~src:src.Memsim.Memobj.base
      in
      Alcotest.(check bool) (name ^ " catches strcpy overflow") true (reps <> []))
    [
      ("GiantSan", Helpers.giantsan ~config:Helpers.small_config);
      ("ASan", Helpers.asan ~config:Helpers.small_config);
      ("LFP", Helpers.lfp ~config:Helpers.small_config);
    ]

let suite =
  ( "extensions",
    [
      Helpers.qt "lower_bound finds the object base" `Quick
        test_lower_bound_finds_object_base;
      Helpers.qt "lower_bound is logarithmic" `Quick
        test_lower_bound_logarithmic_loads;
      test_lower_bound_never_crosses_redzone;
      Helpers.qt "reverse prescan fixes the asymmetry" `Quick
        test_reverse_prescan_fixes_the_asymmetry;
      Helpers.qt "reverse prescan still detects" `Quick
        test_reverse_prescan_still_detects;
      Helpers.qt "degraded underflow mode (§5.4 alt 1)" `Quick
        test_no_underflow_anchor_variant;
      Helpers.qt "shadow dumps" `Quick test_shadow_dump;
      Helpers.qt "strlen/strcpy" `Quick test_strlen_strcpy;
      Helpers.qt "strcpy overflow detected, copy suppressed" `Quick
        test_strcpy_overflow_detected;
      Helpers.qt "guardian loads: O(1) vs linear" `Quick
        test_strcpy_linear_vs_constant_loads;
      Helpers.qt "strncpy pads and checks" `Quick test_strncpy_padding;
      Helpers.qt "strcat" `Quick test_strcat;
      Helpers.qt "memmove/memset guardians" `Quick test_memmove_and_memset;
      Helpers.qt "unterminated string reported" `Quick test_unterminated_string;
      Helpers.qt "strlen credits only real detections" `Quick
        test_strlen_attribution;
      Helpers.qt "calloc + realloc lifecycle" `Quick test_calloc_realloc;
      Helpers.qt "realloc(NULL) is malloc" `Quick test_realloc_null_is_malloc;
      Helpers.qt "interceptors across tools" `Quick
        test_interceptors_work_for_all_tools;
    ] )
