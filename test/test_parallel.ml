(* The sharded execution engine: pool semantics, shard trace isolation,
   and the load-bearing property of the whole subsystem — a parallel run
   merges to output byte-identical to the serial run, for any jobs value
   and any submission order. *)

module Pool = Giantsan_parallel.Pool
module Shard = Giantsan_parallel.Shard
module Merge = Giantsan_parallel.Merge
module Sweep = Giantsan_parallel.Sweep
module Runner = Giantsan_workload.Runner
module Profiles = Giantsan_workload.Profiles
module Specgen = Giantsan_workload.Specgen
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer
module Histogram = Giantsan_telemetry.Histogram
module Json = Giantsan_telemetry.Json
module Trace = Giantsan_telemetry.Trace
module Rng = Giantsan_util.Rng

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_order () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "results in task order (jobs=%d)" jobs)
        (Array.init 37 (fun i -> i * i))
        (Pool.run ~jobs tasks))
    [ 1; 2; 4; 64 ]

let test_pool_edges () =
  Alcotest.(check (array int)) "empty" [||] (Pool.run ~jobs:4 [||]);
  Alcotest.(check (array int))
    "jobs clamped up from 0" [| 7 |]
    (Pool.run ~jobs:0 [| (fun () -> 7) |]);
  Alcotest.(check (list int))
    "map preserves order" [ 2; 4; 6 ]
    (Pool.map ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

exception Boom of int

let test_pool_exn () =
  (* mid-array failure: the lowest failing index is re-raised at every jobs
     value (the lowest failing index is always claimed before any later
     failure can poison the pool) *)
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 16 (fun i () -> if i = 11 || i = 3 then raise (Boom i) else i)
      in
      match Pool.run ~jobs tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index re-raised (jobs=%d)" jobs)
          3 i)
    [ 1; 2; 4 ]

let test_pool_poison_stops_claims () =
  (* task 0 fails instantly; every other task does real spinning work. For
     all 199 others to run anyway, one worker would have to claim (and so
     execute) every one of them inside the nanoseconds it takes the task-0
     claimer to raise and set the poison flag — so observing at least one
     skipped task is robust evidence that claiming stopped. *)
  let n = 200 in
  let ran = Atomic.make 0 in
  let sink = ref 0 in
  let tasks =
    Array.init n (fun i () ->
        if i = 0 then raise (Boom 0)
        else begin
          for k = 1 to 10_000 do
            sink := Sys.opaque_identity (!sink + k)
          done;
          Atomic.incr ran
        end)
  in
  (match Pool.run ~jobs:2 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 0 -> ()
  | exception e -> raise e);
  Alcotest.(check bool)
    (Printf.sprintf "claiming stopped after poison (%d of %d ran)"
       (Atomic.get ran) (n - 1))
    true
    (Atomic.get ran < n - 1)

(* ------------------------------------------------------------------ *)
(* Shard trace isolation                                               *)
(* ------------------------------------------------------------------ *)

let test_shard_isolation () =
  let tasks =
    Array.init 6 (fun i () ->
        for k = 0 to i do
          Trace.emit_free ~tool:(Printf.sprintf "shard%d" i) ~addr:k
        done;
        i)
  in
  let traced = Shard.run_traced ~jobs:3 tasks in
  Array.iteri
    (fun i (t : int Shard.traced) ->
      Alcotest.(check int) "result" i t.Shard.t_result;
      Alcotest.(check int)
        "each shard saw exactly its own events" (i + 1)
        (List.length t.Shard.t_events);
      List.iteri
        (fun k (seq, ev) ->
          Alcotest.(check int) "per-shard seq from 0" k seq;
          match ev with
          | Giantsan_telemetry.Event.Free { tool; _ } ->
            Alcotest.(check string) "no cross-shard leak"
              (Printf.sprintf "shard%d" i) tool
          | _ -> Alcotest.fail "unexpected event")
        t.Shard.t_events)
    traced;
  Alcotest.(check bool)
    "main-domain sink untouched by shards" false (Trace.is_on ())

let test_merge_resequence () =
  let mk tool n =
    List.init n (fun k ->
        (k, Giantsan_telemetry.Event.Free { tool; addr = k }))
  in
  let merged = Merge.resequence [ mk "a" 2; []; mk "b" 3 ] in
  Alcotest.(check (list int))
    "global seq renumbered" [ 0; 1; 2; 3; 4 ]
    (List.map fst merged);
  Alcotest.(check (list string))
    "shard-major order"
    [ "a"; "a"; "b"; "b"; "b" ]
    (List.map
       (function
         | _, Giantsan_telemetry.Event.Free { tool; _ } -> tool
         | _ -> "?")
       merged)

(* ------------------------------------------------------------------ *)
(* Sweep determinism: the qcheck property                              *)
(* ------------------------------------------------------------------ *)

(* tiny profiles so a property trial runs the matrix twice in milliseconds *)
let tiny p = { p with Specgen.p_phases = 2; p_iters = 24 }

let result_fingerprint (r : Runner.result) =
  ( ( r.Runner.r_profile,
      Runner.config_name r.Runner.r_config,
      r.Runner.r_status = Runner.Completed,
      r.Runner.r_ops ),
    ( r.Runner.r_shadow_loads,
      r.Runner.r_shadow_stores,
      r.Runner.r_reports,
      Counters.to_assoc r.Runner.r_counters,
      (* sim_ns is a pure function of the counts: require bitwise equality *)
      Int64.bits_of_float r.Runner.r_sim_ns ) )

let sweep_fingerprint (o : Sweep.outcome) =
  ( Array.to_list (Array.map result_fingerprint o.Sweep.o_results),
    Sweep.ndjson o )

let prop_sweep_deterministic =
  QCheck.Test.make ~count:8 ~name:"parallel sweep == serial sweep"
    QCheck.(
      triple (int_bound 1000) (oneofl [ 2; 3; 4 ]) (int_bound 3))
    (fun (shuffle_seed, jobs, profile_skip) ->
      let profiles =
        List.filteri
          (fun i _ -> i mod (2 + profile_skip) = 0)
          (List.map tiny Profiles.all)
      in
      let configs = Runner.all_configs in
      let n = List.length profiles * List.length configs in
      let serial = Sweep.run ~trace:true ~capacity:256 ~jobs:1 ~profiles ~configs () in
      let order = Array.init n Fun.id in
      Rng.shuffle (Rng.create shuffle_seed) order;
      let parallel =
        Sweep.run ~order ~trace:true ~capacity:256 ~jobs ~profiles ~configs ()
      in
      sweep_fingerprint serial = sweep_fingerprint parallel)

let test_sweep_bad_order () =
  let profiles = [ tiny (List.hd Profiles.all) ] in
  let configs = [ Runner.Native ] in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Sweep.run: order is not a permutation") (fun () ->
      ignore (Sweep.run ~order:[| 0; 0 |] ~jobs:2 ~profiles ~configs:(Runner.Native :: configs) ()))

(* ------------------------------------------------------------------ *)
(* Registry aggregation across domains                                 *)
(* ------------------------------------------------------------------ *)

let snapshot_fingerprint snap =
  List.map
    (fun (name, counters, hists) ->
      (name, counters, Json.to_string (Histogram.set_to_json hists)))
    snap

let registry_sweep ~jobs =
  San.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      San.Registry.disable ();
      San.Registry.clear ())
    (fun () ->
      let profiles =
        List.filteri (fun i _ -> i mod 6 = 0) (List.map tiny Profiles.all)
      in
      ignore
        (Sweep.run ~trace:true ~capacity:64 ~jobs ~profiles
           ~configs:Runner.all_configs ());
      snapshot_fingerprint (San.Registry.snapshot ()))

let test_registry_parallel () =
  let serial = registry_sweep ~jobs:1 in
  let parallel = registry_sweep ~jobs:4 in
  Alcotest.(check bool) "snapshot non-empty" true (serial <> []);
  Alcotest.(check bool)
    "per-tool counters+histograms identical under sharding" true
    (serial = parallel)

(* ------------------------------------------------------------------ *)
(* Two concurrent sweeps: module-level state stays uncorrupted         *)
(* ------------------------------------------------------------------ *)

let test_concurrent_sweeps () =
  let profiles =
    List.filteri (fun i _ -> i mod 8 = 0) (List.map tiny Profiles.all)
  in
  let configs = [ Runner.Giantsan; Runner.Asan ] in
  let expected =
    sweep_fingerprint
      (Sweep.run ~trace:true ~capacity:128 ~jobs:1 ~profiles ~configs ())
  in
  (* two whole sweeps racing on two domains — exercises the domain-local
     folding template and trace sink under genuine concurrency *)
  let both =
    Pool.run ~jobs:2
      (Array.make 2 (fun () ->
           sweep_fingerprint
             (Sweep.run ~trace:true ~capacity:128 ~jobs:1 ~profiles ~configs ())))
  in
  Array.iteri
    (fun i got ->
      Alcotest.(check bool)
        (Printf.sprintf "concurrent sweep %d matches serial" i)
        true (got = expected))
    both

(* The service loop calls Pool.run once per tick, thousands of times per
   process: the pool must behave identically on the 1st and the 500th
   cycle — results in order, failures still deterministic, and no state
   (poison flag, DLS trace sinks) leaking from one cycle into the next. *)
let test_pool_long_lived_reuse () =
  let cycles = 500 in
  for cycle = 0 to cycles - 1 do
    let jobs = 1 + (cycle mod 4) in
    let n = 1 + (cycle mod 7) in
    let got = Pool.run ~jobs (Array.init n (fun i () -> (cycle * 31) + i)) in
    Alcotest.(check (array int))
      (Printf.sprintf "cycle %d results" cycle)
      (Array.init n (fun i -> (cycle * 31) + i))
      got;
    (* every 16th cycle poisons the pool; the next cycle must be clean *)
    if cycle mod 16 = 0 then
      match
        Pool.run ~jobs
          (Array.init 8 (fun i () -> if i >= 2 then raise (Boom i) else i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "cycle %d lowest failure" cycle)
          2 i
  done;
  (* the global trace sink must not have accumulated anything: worker
     domains get private DLS sinks and the pool installs no global one *)
  Alcotest.(check int) "no trace events leaked" 0
    (List.length (Trace.events ()))

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool: results in task order" `Quick test_pool_order;
      Alcotest.test_case "pool: edge cases" `Quick test_pool_edges;
      Alcotest.test_case "pool: deterministic exception" `Quick test_pool_exn;
      Alcotest.test_case "pool: poison stops claiming" `Quick
        test_pool_poison_stops_claims;
      Alcotest.test_case "pool: long-lived reuse stays clean" `Quick
        test_pool_long_lived_reuse;
      Alcotest.test_case "shard: private traces" `Quick test_shard_isolation;
      Alcotest.test_case "merge: resequence" `Quick test_merge_resequence;
      QCheck_alcotest.to_alcotest prop_sweep_deterministic;
      Alcotest.test_case "sweep: rejects bad order" `Quick test_sweep_bad_order;
      Alcotest.test_case "registry: parallel == serial" `Quick
        test_registry_parallel;
      Alcotest.test_case "concurrent sweeps don't corrupt" `Quick
        test_concurrent_sweeps;
    ] )
