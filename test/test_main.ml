let () =
  Alcotest.run "giantsan"
    [
      Test_util.suite;
      Test_memsim.suite;
      Test_encoding.suite;
      Test_region_check.suite;
      Test_quasi_bound.suite;
      Test_asan.suite;
      Test_lfp.suite;
      Test_ir.suite;
      Test_instrument.suite;
      Test_interp.suite;
      Test_workload.suite;
      Test_bugs.suite;
      Test_report.suite;
      Test_functions.suite;
      Test_extensions.suite;
      Test_difftest.suite;
      Test_ablation.suite;
      Test_stress.suite;
      Test_progfuzz.suite;
      Test_coverage.suite;
      Test_counters.suite;
      Test_telemetry.suite;
      Test_folding_props.suite;
      Test_fuzz.suite;
    ]
