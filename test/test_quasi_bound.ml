(* History caching (§4.3, Figure 9): correctness and the metadata-loading
   guarantees that motivate it. *)

module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Memsim = Giantsan_memsim

let fresh () =
  let san = Helpers.giantsan ~config:Helpers.small_config () in
  let obj = san.San.malloc 1024 in
  (san, obj.Memsim.Memobj.base)

let test_forward_loop_loads_logarithmic () =
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  let loads_before = san.San.shadow_loads () in
  for j = 0 to 255 do
    match san.San.cached_access cache ~off:(4 * j) ~width:4 with
    | None -> ()
    | Some r ->
      Alcotest.failf "spurious report: %s" (Giantsan_sanitizer.Report.to_string r)
  done;
  let loads = san.San.shadow_loads () - loads_before in
  (* paper: at most ceil(log2 (n/8)) quasi-bound updates; each costs O(1)
     loads. 1024/8 = 128 segments -> <= 7 updates, a handful of loads each *)
  Alcotest.(check bool)
    (Printf.sprintf "O(log n) loads, got %d" loads)
    true (loads <= 30);
  Alcotest.(check bool) "far fewer than ASan's 256" true (loads < 64)

let test_cache_hits_dominate () =
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  for j = 0 to 255 do
    ignore (san.San.cached_access cache ~off:(4 * j) ~width:4)
  done;
  let c = san.San.counters in
  Alcotest.(check bool) "hits >> updates" true
    (c.Counters.cache_hits > 200 && c.Counters.cache_updates <= 10)

let test_overflow_detected_at_boundary () =
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  for j = 0 to 255 do
    ignore (san.San.cached_access cache ~off:(4 * j) ~width:4)
  done;
  (* one past the end *)
  match san.San.cached_access cache ~off:1024 ~width:4 with
  | Some _ -> ()
  | None -> Alcotest.fail "overflow missed through the cache"

let test_cache_never_claims_beyond_object =
  Helpers.q "quasi-bound stays within the object"
    QCheck.(pair (int_range 1 500) (list_of_size (Gen.int_range 1 50) small_nat))
    (fun (size, offsets) ->
      let san = Helpers.giantsan ~config:Helpers.small_config () in
      let obj = san.San.malloc size in
      let base = obj.Memsim.Memobj.base in
      let cache = san.San.new_cache ~base in
      List.for_all
        (fun off_pick ->
          let off = off_pick mod (size + 64) in
          let verdict_safe =
            Helpers.check_is_safe (san.San.cached_access cache ~off ~width:1)
          in
          let truly_safe = off + 1 <= size in
          verdict_safe = truly_safe)
        offsets)

let test_negative_offsets_always_checked () =
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  (* warm the cache *)
  for j = 0 to 99 do
    ignore (san.San.cached_access cache ~off:(4 * j) ~width:4)
  done;
  let c = san.San.counters in
  let before = c.Counters.underflow_checks in
  (* in-object negative offsets relative to a mid-object pointer are not a
     thing here (base is the object base), so these hit the left redzone *)
  (match san.San.cached_access cache ~off:(-4) ~width:4 with
  | Some _ -> ()
  | None -> Alcotest.fail "underflow missed");
  Alcotest.(check int) "dedicated underflow check ran" (before + 1)
    c.Counters.underflow_checks

let test_negative_offset_within_object () =
  (* a pointer into the middle of an object: a descending stream used to
     pay a dedicated underflow check on EVERY access (the §5.4 fig11
     regression — "no caching on the low side"). The window history now
     caches the low side: the first miss pays the check once and extends
     the window down to the fold-derived run floor, and every later
     in-window access is a cache hit. *)
  let san, base = fresh () in
  let mid = base + 512 in
  let cache = san.San.new_cache ~base:mid in
  for j = 1 to 10 do
    match san.San.cached_access cache ~off:(-4 * j) ~width:4 with
    | None -> ()
    | Some r ->
      Alcotest.failf "spurious underflow report: %s"
        (Giantsan_sanitizer.Report.to_string r)
  done;
  let c = san.San.counters in
  Alcotest.(check int) "one dedicated underflow check for the whole stream"
    1 c.Counters.underflow_checks;
  Alcotest.(check int) "the other nine accesses hit the history" 9
    c.Counters.cache_hits

let test_underflow_tail_uses_cache () =
  (* an access straddling the cache base (off < 0 < off + width) splits
     into a dedicated underflow check plus a non-negative tail; once the
     quasi-bound already covers the tail, only the underflow side should
     cost a region check, and the tail counts as a cache hit *)
  let san, base = fresh () in
  let mid = base + 512 in
  let cache = san.San.new_cache ~base:mid in
  (* warm the quasi-bound well past the tail we'll need *)
  for j = 0 to 15 do
    ignore (san.San.cached_access cache ~off:(8 * j) ~width:8)
  done;
  let c = san.San.counters in
  let hits = c.Counters.cache_hits in
  let regions = c.Counters.region_checks in
  let unders = c.Counters.underflow_checks in
  (match san.San.cached_access cache ~off:(-4) ~width:8 with
  | None -> ()
  | Some r ->
    Alcotest.failf "spurious report: %s" (Giantsan_sanitizer.Report.to_string r));
  Alcotest.(check int) "tail counted as a cache hit" (hits + 1)
    c.Counters.cache_hits;
  Alcotest.(check int) "only the underflow side ran a region check"
    (regions + 1) c.Counters.region_checks;
  Alcotest.(check int) "dedicated underflow check ran" (unders + 1)
    c.Counters.underflow_checks;
  (* a cold cache cannot vouch for the tail: both sides must check *)
  let cold = san.San.new_cache ~base:mid in
  let regions2 = c.Counters.region_checks in
  ignore (san.San.cached_access cold ~off:(-4) ~width:8);
  Alcotest.(check int) "cold cache checks both sides" (regions2 + 2)
    c.Counters.region_checks

let test_offset_zero_straddle_cache_ub_tail () =
  (* named regression for the straddle tail at offset 0 (a divergence
     class the refinement harness generator is required to cover): a
     straddling access (off < 0 < off + width) splits at the cache base;
     each side is served by the window history independently, and an
     access ending exactly at offset 0 does no tail work at all *)
  let san, base = fresh () in
  let mid = base + 256 in
  let cache = san.San.new_cache ~base:mid in
  let c = san.San.counters in
  let regions = c.Counters.region_checks and hits = c.Counters.cache_hits in
  Alcotest.(check bool) "ends exactly at offset 0: safe" true
    (Helpers.check_is_safe (san.San.cached_access cache ~off:(-4) ~width:4));
  Alcotest.(check int) "ends exactly at offset 0: underflow side only"
    (regions + 1) c.Counters.region_checks;
  Alcotest.(check int) "ends exactly at offset 0: no tail work at all" hits
    c.Counters.cache_hits;
  (* the miss above extended the history down to the run floor, so the
     straddle's low side is now a hit; only the never-proven tail checks *)
  let regions = c.Counters.region_checks and hits = c.Counters.cache_hits in
  Alcotest.(check bool) "straddle after a low-side miss: safe" true
    (Helpers.check_is_safe (san.San.cached_access cache ~off:(-4) ~width:8));
  Alcotest.(check int) "straddle: only the unproven tail checked"
    (regions + 1) c.Counters.region_checks;
  Alcotest.(check int) "straddle: low side served by the history" (hits + 1)
    c.Counters.cache_hits;
  (* warm the bound past the tail, then straddle again: both sides hit *)
  for j = 0 to 7 do
    ignore (san.San.cached_access cache ~off:(8 * j) ~width:8)
  done;
  let regions = c.Counters.region_checks and hits = c.Counters.cache_hits in
  Alcotest.(check bool) "warm straddle: safe" true
    (Helpers.check_is_safe (san.San.cached_access cache ~off:(-4) ~width:8));
  Alcotest.(check int) "warm straddle: no region check at all" regions
    c.Counters.region_checks;
  Alcotest.(check int) "warm straddle: both sides are history hits"
    (hits + 2) c.Counters.cache_hits;
  (* a fully-cold cache still checks both sides of a straddle *)
  let cold = san.San.new_cache ~base:mid in
  let regions = c.Counters.region_checks in
  Alcotest.(check bool) "cold straddle: safe" true
    (Helpers.check_is_safe (san.San.cached_access cold ~off:(-4) ~width:8));
  Alcotest.(check int) "cold straddle: both sides checked" (regions + 2)
    c.Counters.region_checks

let test_underflow_tail_refreshes_bound () =
  (* regression (satellite 1): the underflow tail used to be checked but
     NEVER noted — `access` returned without refreshing the bound, so the
     very next positive access paid a full region check again. The tail
     now refreshes the history exactly like a positive miss does. *)
  let san, base = fresh () in
  let mid = base + 512 in
  let cache = san.San.new_cache ~base:mid in
  let c = san.San.counters in
  (* cold straddle: low side pays the dedicated underflow check, tail pays
     a region check — and BOTH sides are noted (one update for the low
     window, one for the tail refresh) *)
  (match san.San.cached_access cache ~off:(-4) ~width:12 with
  | None -> ()
  | Some r ->
    Alcotest.failf "spurious report: %s" (Giantsan_sanitizer.Report.to_string r));
  Alcotest.(check int) "cold straddle: dedicated underflow check" 1
    c.Counters.underflow_checks;
  Alcotest.(check int) "cold straddle: two region checks" 2
    c.Counters.region_checks;
  Alcotest.(check int) "cold straddle: both sides noted" 2
    c.Counters.cache_updates;
  (* the refresh read the fold at the probe, which covers the rest of the
     object — the next positive access must be a pure history hit *)
  let regions = c.Counters.region_checks and hits = c.Counters.cache_hits in
  Alcotest.(check bool) "follow-up positive access: safe" true
    (Helpers.check_is_safe (san.San.cached_access cache ~off:0 ~width:8));
  Alcotest.(check int) "follow-up: no region check (the old bug)" regions
    c.Counters.region_checks;
  Alcotest.(check int) "follow-up: served by the refreshed history"
    (hits + 1) c.Counters.cache_hits;
  Alcotest.(check bool) "flush of the merged window is silent" true
    (Helpers.check_is_safe (san.San.flush_cache cache))

let test_mru_note_merge_promote_evict () =
  (* the window-history data structure itself: note/merge/promote/evict *)
  let c = San.new_cache ~base:100 in
  Alcotest.(check int) "three slots" 3 San.mru_slots;
  Alcotest.(check bool) "empty cache never hits" false
    (San.cache_hit c ~lo:0 ~hi:8);
  Alcotest.(check bool) "empty query is vacuously covered" true
    (San.cache_hit c ~lo:8 ~hi:8);
  (* three disjoint windows fill the slots, most recent first *)
  San.cache_note c ~lo:0 ~hi:8;
  San.cache_note c ~lo:16 ~hi:24;
  San.cache_note c ~lo:32 ~hi:40;
  Alcotest.(check (list (pair int int)))
    "three disjoint windows, MRU order"
    [ (32, 40); (16, 24); (0, 8) ]
    (San.cache_windows c);
  (* hitting the LRU window promotes it to the front *)
  Alcotest.(check bool) "sub-span hit" true (San.cache_hit c ~lo:2 ~hi:6);
  Alcotest.(check (list (pair int int)))
    "hit promoted to the MRU front"
    [ (0, 8); (32, 40); (16, 24) ]
    (San.cache_windows c);
  (* a note bridging two windows merges all three spans to fixpoint *)
  San.cache_note c ~lo:6 ~hi:18;
  Alcotest.(check (list (pair int int)))
    "overlap merged to fixpoint, survivor behind"
    [ (0, 24); (32, 40) ]
    (San.cache_windows c);
  (* disjoint notes beyond capacity evict the least recently used *)
  San.cache_note c ~lo:60 ~hi:68;
  San.cache_note c ~lo:80 ~hi:88;
  Alcotest.(check (list (pair int int)))
    "LRU window fell off"
    [ (80, 88); (60, 68); (0, 24) ]
    (San.cache_windows c);
  Alcotest.(check bool) "evicted span is no longer vouched for" false
    (San.cache_hit c ~lo:32 ~hi:40)

let test_flush_catches_mid_loop_free () =
  (* Figure 9 line 14: a free during the loop is caught by the final check *)
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  for j = 0 to 49 do
    ignore (san.San.cached_access cache ~off:(8 * j) ~width:8)
  done;
  ignore (san.San.free base);
  (* cache hits keep passing (that is the documented trade)... *)
  Alcotest.(check bool) "cached access sails through" true
    (Helpers.check_is_safe (san.San.cached_access cache ~off:16 ~width:8));
  (* ...but the loop-exit flush sees the freed shadow *)
  match san.San.flush_cache cache with
  | Some r ->
    Alcotest.(check string) "classified as UAF" "heap-use-after-free"
      (Giantsan_sanitizer.Report.kind_name r.Giantsan_sanitizer.Report.kind)
  | None -> Alcotest.fail "flush missed the mid-loop free"

let test_flush_clean_loop_is_silent () =
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  for j = 0 to 49 do
    ignore (san.San.cached_access cache ~off:(8 * j) ~width:8)
  done;
  Alcotest.(check bool) "clean flush" true
    (Helpers.check_is_safe (san.San.flush_cache cache));
  (* an untouched cache flushes silently too *)
  let cold = san.San.new_cache ~base in
  Alcotest.(check bool) "cold flush" true
    (Helpers.check_is_safe (san.San.flush_cache cold))

let test_random_access_converges () =
  (* random order: the quasi-bound still converges in O(log n) updates *)
  let san, base = fresh () in
  let cache = san.San.new_cache ~base in
  let rng = Giantsan_util.Rng.create 99 in
  for _ = 1 to 2000 do
    let j = Giantsan_util.Rng.int rng 128 in
    match san.San.cached_access cache ~off:(8 * j) ~width:8 with
    | None -> ()
    | Some r ->
      Alcotest.failf "spurious report: %s" (Giantsan_sanitizer.Report.to_string r)
  done;
  let c = san.San.counters in
  Alcotest.(check bool)
    (Printf.sprintf "few updates (%d)" c.Counters.cache_updates)
    true
    (c.Counters.cache_updates <= 12);
  Alcotest.(check bool) "rest were hits" true (c.Counters.cache_hits >= 1980)

let suite =
  ( "quasi_bound",
    [
      Helpers.qt "forward loop: O(log n) metadata loads" `Quick
        test_forward_loop_loads_logarithmic;
      Helpers.qt "hits dominate updates" `Quick test_cache_hits_dominate;
      Helpers.qt "overflow at the boundary detected" `Quick
        test_overflow_detected_at_boundary;
      test_cache_never_claims_beyond_object;
      Helpers.qt "negative offsets: dedicated check" `Quick
        test_negative_offsets_always_checked;
      Helpers.qt "negative offsets inside object pass" `Quick
        test_negative_offset_within_object;
      Helpers.qt "straddling access: tail served by the cache" `Quick
        test_underflow_tail_uses_cache;
      Helpers.qt "offset-0 straddle: cache_ub tail paths" `Quick
        test_offset_zero_straddle_cache_ub_tail;
      Helpers.qt "underflow tail refreshes the bound (regression)" `Quick
        test_underflow_tail_refreshes_bound;
      Helpers.qt "MRU note/merge/promote/evict unit" `Quick
        test_mru_note_merge_promote_evict;
      Helpers.qt "flush catches mid-loop free" `Quick
        test_flush_catches_mid_loop_free;
      Helpers.qt "flush is silent on clean loops" `Quick
        test_flush_clean_loop_is_silent;
      Helpers.qt "random access converges" `Quick test_random_access_converges;
    ] )
