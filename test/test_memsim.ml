open Giantsan_memsim

let test_arena_roundtrip () =
  let a = Arena.create ~size:1024 in
  Arena.store a ~addr:16 ~width:8 123456789;
  Alcotest.(check int) "w8" 123456789 (Arena.load a ~addr:16 ~width:8);
  Arena.store a ~addr:24 ~width:4 0xDEADBEEF;
  Alcotest.(check int) "w4" 0xDEADBEEF (Arena.load a ~addr:24 ~width:4);
  Arena.store a ~addr:30 ~width:2 0xFFFF;
  Alcotest.(check int) "w2" 0xFFFF (Arena.load a ~addr:30 ~width:2);
  Arena.store a ~addr:33 ~width:1 300;
  Alcotest.(check int) "w1 truncates" (300 land 0xFF) (Arena.load a ~addr:33 ~width:1)

let test_arena_fill_blit () =
  let a = Arena.create ~size:256 in
  Arena.fill a ~addr:8 ~len:16 0xAB;
  Alcotest.(check int) "filled" 0xAB (Arena.load a ~addr:15 ~width:1);
  Arena.blit a ~src:8 ~dst:100 ~len:16;
  Alcotest.(check int) "blitted" 0xAB (Arena.load a ~addr:110 ~width:1);
  (* overlap-safe like memmove *)
  Arena.blit a ~src:100 ~dst:104 ~len:8;
  Alcotest.(check int) "overlap" 0xAB (Arena.load a ~addr:108 ~width:1)

let test_arena_bounds () =
  let a = Arena.create ~size:128 in
  Alcotest.check_raises "load past end" (Invalid_argument "Arena: access [128, 129) outside arena of 128 bytes")
    (fun () -> ignore (Arena.load a ~addr:128 ~width:1));
  Alcotest.check_raises "negative" (Invalid_argument "Arena: access [-8, 0) outside arena of 128 bytes")
    (fun () -> ignore (Arena.load a ~addr:(-8) ~width:8))

let test_malloc_alignment () =
  let h = Heap.create Helpers.small_config in
  for size = 0 to 40 do
    let obj = Heap.malloc h size in
    Alcotest.(check bool) "8-aligned base" true (obj.Memobj.base mod 8 = 0);
    Alcotest.(check int) "requested size" size obj.Memobj.size
  done

let test_malloc_redzones () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 24 in
  let b = Heap.malloc h 24 in
  (* at least the configured redzone of poison between consecutive objects *)
  Alcotest.(check bool) "gap >= redzone" true
    (b.Memobj.base - (a.Memobj.base + a.Memobj.size) >= 16);
  let oracle = Heap.oracle h in
  Alcotest.(check bool) "left rz poisoned" true
    (Oracle.state oracle (a.Memobj.base - 1) = Oracle.Redzone);
  Alcotest.(check bool) "right rz poisoned" true
    (Oracle.state oracle (a.Memobj.base + a.Memobj.size) = Oracle.Redzone);
  Alcotest.(check bool) "interior addressable" true
    (Oracle.range_addressable oracle ~lo:a.Memobj.base
       ~hi:(a.Memobj.base + a.Memobj.size))

let test_malloc_no_overlap () =
  let h = Heap.create Helpers.small_config in
  let objs = List.init 20 (fun i -> Heap.malloc h (i * 7)) in
  let sorted =
    List.sort (fun (a : Memobj.t) b -> compare a.base b.base) objs
  in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "disjoint blocks" true
        (Memobj.block_end a <= b.Memobj.block_base);
      pairwise rest
    | _ -> ()
  in
  pairwise sorted

let test_free_and_errors () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 100 in
  (match Heap.free h (a.Memobj.base + 8) with
  | Error Heap.Free_not_at_start -> ()
  | _ -> Alcotest.fail "expected Free_not_at_start");
  (match Heap.free h 0 with
  | Error Heap.Free_null -> ()
  | _ -> Alcotest.fail "expected Free_null");
  (match Heap.free h (a.Memobj.base - 2000) with
  | Error Heap.Invalid_free -> ()
  | _ -> Alcotest.fail "expected Invalid_free");
  (match Heap.free h a.Memobj.base with
  | Ok { freed; _ } -> Alcotest.(check bool) "freed" true (freed.Memobj.id = a.Memobj.id)
  | Error _ -> Alcotest.fail "free should succeed");
  (match Heap.free h a.Memobj.base with
  | Error Heap.Double_free -> ()
  | _ -> Alcotest.fail "expected Double_free")

let test_freed_state () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 64 in
  ignore (Heap.free h a.Memobj.base);
  let oracle = Heap.oracle h in
  Alcotest.(check bool) "freed bytes" true
    (Oracle.state oracle a.Memobj.base = Oracle.Freed);
  Alcotest.(check bool) "status quarantined" true
    (a.Memobj.status = Memobj.Quarantined)

let test_quarantine_fifo () =
  let q = Quarantine.create ~budget:100 in
  let mk id len =
    {
      Memobj.id;
      kind = Memobj.Heap;
      base = 0;
      size = len;
      block_base = 0;
      block_len = len;
      status = Memobj.Quarantined;
    }
  in
  Alcotest.(check (list int)) "no evict" []
    (List.map (fun (o : Memobj.t) -> o.id) (Quarantine.push q (mk 1 40)));
  Alcotest.(check (list int)) "no evict 2" []
    (List.map (fun (o : Memobj.t) -> o.id) (Quarantine.push q (mk 2 40)));
  (* 40+40+40 > 100: oldest goes *)
  Alcotest.(check (list int)) "evict oldest" [ 1 ]
    (List.map (fun (o : Memobj.t) -> o.id) (Quarantine.push q (mk 3 40)));
  Alcotest.(check int) "held" 80 (Quarantine.bytes_held q)

let test_quarantine_recycling () =
  (* budget 0 behaves as a one-deep quarantine: a free never evicts its own
     block (that would collapse the use-after-free window to zero); the
     next free pushes it out, and only then is the block reusable *)
  let config = { Helpers.small_config with Giantsan_memsim.Heap.quarantine_budget = 0 } in
  let h = Heap.create config in
  let a = Heap.malloc h 64 in
  let b = Heap.malloc h 64 in
  (match Heap.free h a.Memobj.base with
  | Ok { evicted; _ } ->
    Alcotest.(check int) "newest retained" 0 (List.length evicted)
  | Error _ -> Alcotest.fail "free failed");
  Alcotest.(check bool) "status quarantined" true
    (a.Memobj.status = Memobj.Quarantined);
  (match Heap.free h b.Memobj.base with
  | Ok { evicted; _ } ->
    Alcotest.(check (list int)) "previous block evicted" [ a.Memobj.id ]
      (List.map (fun (o : Memobj.t) -> o.Memobj.id) evicted)
  | Error _ -> Alcotest.fail "free failed");
  Alcotest.(check bool) "status recycled" true (a.Memobj.status = Memobj.Recycled);
  let c = Heap.malloc h 64 in
  Alcotest.(check int) "block reused" a.Memobj.base c.Memobj.base

let test_quarantine_bypass_counter () =
  (* a block bigger than the whole budget stays quarantined and is counted
     as a bypass each time the overrun persists after a push *)
  let q = Quarantine.create ~budget:50 in
  let mk id len =
    {
      Memobj.id;
      kind = Memobj.Heap;
      base = 0;
      size = len;
      block_base = 0;
      block_len = len;
      status = Memobj.Quarantined;
    }
  in
  Alcotest.(check (list int)) "oversized block retained" []
    (List.map (fun (o : Memobj.t) -> o.id) (Quarantine.push q (mk 1 120)));
  Alcotest.(check int) "bypass counted" 1 (Quarantine.bypasses q);
  Alcotest.(check int) "held over budget" 120 (Quarantine.bytes_held q);
  (* the next push evicts the oversized block and fits: no new bypass *)
  Alcotest.(check (list int)) "oversized evicted by successor" [ 1 ]
    (List.map (fun (o : Memobj.t) -> o.id) (Quarantine.push q (mk 2 40)));
  Alcotest.(check int) "no further bypass" 1 (Quarantine.bypasses q)

let test_pressure_flush () =
  (* when bump space and free cache are both empty, malloc flushes the
     quarantine instead of dying: graceful degradation under pressure *)
  let config =
    { Giantsan_memsim.Heap.arena_size = 4096; redzone = 16;
      quarantine_budget = 1 lsl 20 }
  in
  let h = Heap.create config in
  let evicted_ids = ref [] in
  Heap.set_evict_hook h (fun o -> evicted_ids := o.Memobj.id :: !evicted_ids);
  let big = Heap.malloc h 3800 in
  ignore (Heap.free h big.Memobj.base);
  Alcotest.(check bool) "still quarantined" true
    (big.Memobj.status = Memobj.Quarantined);
  let a = Heap.malloc h 400 in
  Alcotest.(check int) "one pressure flush" 1 (Heap.pressure_flushes h);
  Alcotest.(check (list int)) "evict hook saw the block" [ big.Memobj.id ]
    !evicted_ids;
  Alcotest.(check bool) "carved from the flushed block" true
    (a.Memobj.block_base >= big.Memobj.block_base
    && Memobj.block_end a <= Memobj.block_end big);
  Alcotest.(check bool) "recycled" true (big.Memobj.status = Memobj.Recycled)

let test_chaos_oom_countdown () =
  let h = Heap.create Helpers.small_config in
  Heap.chaos_oom_after h 2;
  ignore (Heap.malloc h 8);
  ignore (Heap.malloc h 8);
  Alcotest.check_raises "armed malloc raises" Out_of_memory (fun () ->
      ignore (Heap.malloc h 8));
  (* the countdown disarms itself after firing *)
  ignore (Heap.malloc h 8)

let test_stack_objects_recycle_immediately () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h ~kind:Memobj.Stack 48 in
  (match Heap.free h a.Memobj.base with
  | Ok { evicted; _ } ->
    Alcotest.(check int) "stack skips quarantine" 1 (List.length evicted)
  | Error _ -> Alcotest.fail "free failed");
  let oracle = Heap.oracle h in
  Alcotest.(check bool) "unallocated after pop" true
    (Oracle.state oracle a.Memobj.base = Oracle.Unallocated)

let test_owner_lookup () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 100 in
  (match Heap.find_object h (a.Memobj.base + 50) with
  | Some o -> Alcotest.(check int) "inside" a.Memobj.id o.Memobj.id
  | None -> Alcotest.fail "owner expected");
  (match Heap.find_object h (a.Memobj.base - 4) with
  | Some o -> Alcotest.(check int) "left redzone owned" a.Memobj.id o.Memobj.id
  | None -> Alcotest.fail "redzone owner expected");
  Alcotest.(check bool) "null unowned" true (Heap.find_object h 0 = None)

let test_out_of_memory () =
  let config =
    { Giantsan_memsim.Heap.arena_size = 2048; redzone = 16; quarantine_budget = 0 }
  in
  let h = Heap.create config in
  Alcotest.check_raises "oom" Out_of_memory (fun () ->
      for _ = 1 to 100 do
        ignore (Heap.malloc h 128)
      done)

let test_live_bytes () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 100 in
  let _b = Heap.malloc h 50 in
  Alcotest.(check int) "after allocs" 150 (Heap.live_bytes h);
  ignore (Heap.free h a.Memobj.base);
  Alcotest.(check int) "after free" 50 (Heap.live_bytes h)

let test_oracle_first_bad () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 32 in
  let oracle = Heap.oracle h in
  Alcotest.(check (option int)) "clean" None
    (Oracle.first_bad oracle ~lo:a.Memobj.base ~hi:(a.Memobj.base + 32));
  Alcotest.(check (option int)) "first bad is end" (Some (a.Memobj.base + 32))
    (Oracle.first_bad oracle ~lo:a.Memobj.base ~hi:(a.Memobj.base + 40))

let test_first_fit_reuse () =
  (* exhaust the bump space, then satisfy smaller requests by splitting a
     recycled large block *)
  let config =
    { Giantsan_memsim.Heap.arena_size = 4096; redzone = 16; quarantine_budget = 0 }
  in
  let h = Heap.create config in
  (* the big block leaves almost no bump space behind it *)
  let big = Heap.malloc h 3800 in
  ignore (Heap.free h big.Memobj.base);
  (* bump space is nearly gone; these must carve the recycled block *)
  let a = Heap.malloc h 400 in
  let b = Heap.malloc h 400 in
  Alcotest.(check bool) "a inside the old block" true
    (a.Memobj.block_base >= big.Memobj.block_base
    && Memobj.block_end a <= Memobj.block_end big);
  Alcotest.(check bool) "disjoint" true
    (Memobj.block_end a <= b.Memobj.block_base
    || Memobj.block_end b <= a.Memobj.block_base);
  let oracle = Heap.oracle h in
  Alcotest.(check bool) "both addressable" true
    (Oracle.range_addressable oracle ~lo:a.Memobj.base ~hi:(a.Memobj.base + 400)
    && Oracle.range_addressable oracle ~lo:b.Memobj.base ~hi:(b.Memobj.base + 400))

let test_malloc_zero () =
  let h = Heap.create Helpers.small_config in
  let a = Heap.malloc h 0 in
  let oracle = Heap.oracle h in
  Alcotest.(check bool) "no addressable bytes" true
    (Oracle.state oracle a.Memobj.base <> Oracle.Addressable);
  (* freeing a zero-size object still works *)
  match Heap.free h a.Memobj.base with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "free of size-0 object"

let suite =
  ( "memsim",
    [
      Helpers.qt "arena: load/store round-trip" `Quick test_arena_roundtrip;
      Helpers.qt "arena: fill and blit" `Quick test_arena_fill_blit;
      Helpers.qt "arena: bounds checked" `Quick test_arena_bounds;
      Helpers.qt "heap: 8-byte alignment" `Quick test_malloc_alignment;
      Helpers.qt "heap: redzones surround objects" `Quick test_malloc_redzones;
      Helpers.qt "heap: blocks never overlap" `Quick test_malloc_no_overlap;
      Helpers.qt "heap: free error taxonomy" `Quick test_free_and_errors;
      Helpers.qt "heap: freed bytes poisoned" `Quick test_freed_state;
      Helpers.qt "quarantine: FIFO with byte budget" `Quick test_quarantine_fifo;
      Helpers.qt "quarantine: zero budget is one-deep" `Quick
        test_quarantine_recycling;
      Helpers.qt "quarantine: oversized block bypasses budget" `Quick
        test_quarantine_bypass_counter;
      Helpers.qt "heap: pressure flush under exhaustion" `Quick
        test_pressure_flush;
      Helpers.qt "heap: chaos OOM countdown" `Quick test_chaos_oom_countdown;
      Helpers.qt "heap: stack frames skip quarantine" `Quick
        test_stack_objects_recycle_immediately;
      Helpers.qt "heap: owner lookup" `Quick test_owner_lookup;
      Helpers.qt "heap: out of memory" `Quick test_out_of_memory;
      Helpers.qt "heap: live byte accounting" `Quick test_live_bytes;
      Helpers.qt "oracle: first_bad" `Quick test_oracle_first_bad;
      Helpers.qt "heap: first-fit splits recycled blocks" `Quick
        test_first_fit_reuse;
      Helpers.qt "heap: malloc(0)" `Quick test_malloc_zero;
    ] )
