(* The policy engine: spec grammar, scoring/decision pins against the
   calibrated overhead table, budgeted per-tenant assignment, the
   downshift ladder — and the acceptance test: a service run whose
   breached tenant demonstrably downshifts instead of quarantining. *)

module Backend = Giantsan_policy.Backend
module Policy = Giantsan_policy.Policy
module Loop = Giantsan_service.Loop
module Tenant = Giantsan_service.Tenant
module Slo = Giantsan_service.Slo

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_round_trip () =
  let s = "budget=1.5,prefer=oob:3;uaf:2,fallback=native" in
  match Policy.parse s with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    Alcotest.(check (float 1e-9)) "budget" 1.5 spec.Policy.budget;
    Alcotest.(check string) "canonical render re-parses to itself"
      (Policy.to_string spec)
      (match Policy.parse (Policy.to_string spec) with
      | Ok spec' -> Policy.to_string spec'
      | Error e -> e);
    (* prefer is a full re-ranking: unnamed classes weigh 0 *)
    Alcotest.(check int) "unnamed class weighs 0" 0
      (List.assoc Backend.Double_free spec.Policy.weights);
    Alcotest.(check int) "named class keeps its weight" 3
      (List.assoc Backend.Oob spec.Policy.weights)

let expect_error name input fragment =
  match Policy.parse input with
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error %S names the problem" name e)
      true
      (Helpers.contains e fragment)

let test_parse_errors () =
  expect_error "empty" "" "empty";
  expect_error "sub-native budget" "budget=0.5" "below 1.0";
  expect_error "bad number" "budget=fast" "bad number";
  expect_error "unknown key" "speed=11" "unknown policy key";
  expect_error "unknown class" "prefer=heap:1" "unknown detection class";
  expect_error "duplicate class" "prefer=oob:1;oob:2" "named twice";
  expect_error "bad weight" "prefer=oob:-1" "bad weight";
  expect_error "unknown fallback" "fallback=valgrind" "unknown backend";
  expect_error "not key=value" "budget" "not key=value"

(* ------------------------------------------------------------------ *)
(* Scoring and decisions (pinned against the calibrated tables)        *)
(* ------------------------------------------------------------------ *)

let test_score_pins () =
  let d = Policy.default in
  (* weight 1 everywhere: score = sum of detection levels *)
  Alcotest.(check int) "pac: full on all four classes" 8
    (Policy.score d Backend.Pac);
  Alcotest.(check int) "giantsan: blind to uaf-realloc" 6
    (Policy.score d Backend.Giantsan);
  Alcotest.(check int) "asan: same classes as giantsan" 6
    (Policy.score d Backend.Asan);
  Alcotest.(check int) "lfp: partial everywhere it sees" 3
    (Policy.score d Backend.Lfp);
  Alcotest.(check int) "native: blind" 0 (Policy.score d Backend.Native)

let test_decide () =
  let d = Policy.default in
  Alcotest.(check string) "permissive budget picks pac" "pac"
    (Backend.name (Policy.decide d));
  (match Policy.parse "budget=1.5" with
  | Ok spec ->
    Alcotest.(check string) "budget 1.5 only fits giantsan" "giantsan"
      (Backend.name (Policy.decide spec))
  | Error e -> Alcotest.fail e);
  (match Policy.parse "budget=1.0" with
  | Ok spec ->
    Alcotest.(check string) "budget 1.0 leaves only native" "native"
      (Backend.name (Policy.decide spec))
  | Error e -> Alcotest.fail e);
  (* under oob+uaf weights pac/giantsan/asan all score 4: the tie breaks
     toward the cheapest of them *)
  match Policy.parse "budget=2.5,prefer=oob:1;uaf:1" with
  | Ok spec ->
    Alcotest.(check string) "score tie breaks cheaper" "giantsan"
      (Backend.name (Policy.decide spec))
  | Error e -> Alcotest.fail e

let test_assign_respects_mean_budget =
  Helpers.q "greedy assignment never exceeds the mean budget"
    QCheck.(pair (int_range 1 12) (int_range 10 25))
    (fun (tenants, tenths) ->
      let budget = float_of_int tenths /. 10.0 in
      let spec = { Policy.default with Policy.budget } in
      let bs = Policy.assign spec ~tenants in
      let spent =
        List.fold_left (fun a b -> a +. Backend.overhead b) 0.0 bs
      in
      List.length bs = tenants
      && spent <= (budget *. float_of_int tenants) +. 1e-9)

let test_assign_head_gets_coverage () =
  (* mean 1.5 over 4 tenants = 6.0 total: pac (1.58) three times leaves
     1.26, which only native (1.0) fits — the head gets the coverage, the
     tail pays for it *)
  match Policy.parse "budget=1.5" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    let names = List.map Backend.name (Policy.assign spec ~tenants:4) in
    Alcotest.(check (list string)) "head rich, tail cheap"
      [ "pac"; "pac"; "pac"; "native" ]
      names

let test_downshift_ladder () =
  let d = Policy.default in
  let step current =
    Option.map Backend.name (Policy.downshift d ~current)
  in
  Alcotest.(check (option string)) "asan -> pac" (Some "pac")
    (step Backend.Asan);
  Alcotest.(check (option string)) "pac -> giantsan" (Some "giantsan")
    (step Backend.Pac);
  Alcotest.(check (option string)) "giantsan -> native" (Some "native")
    (step Backend.Giantsan);
  Alcotest.(check (option string)) "native is the last rung" None
    (step Backend.Native)

let test_upshift_ladder () =
  let d = Policy.default in
  let climb current ceiling =
    Option.map Backend.name (Policy.upshift d ~current ~ceiling)
  in
  (* the climb jumps straight to the best-scoring backend under the
     ceiling (pac scores highest under the default weights) ... *)
  Alcotest.(check (option string)) "native -> pac under an asan ceiling"
    (Some "pac")
    (climb Backend.Native Backend.Asan);
  Alcotest.(check (option string)) "native -> pac under a pac ceiling"
    (Some "pac")
    (climb Backend.Native Backend.Pac);
  (* ... never past the ceiling ... *)
  Alcotest.(check (option string)) "native -> giantsan under its ceiling"
    (Some "giantsan")
    (climb Backend.Native Backend.Giantsan);
  (* ... and stops once the tenant is back where it was assigned *)
  Alcotest.(check (option string)) "at the ceiling there is no climb" None
    (climb Backend.Pac Backend.Pac);
  Alcotest.(check (option string)) "above the ceiling there is no climb" None
    (climb Backend.Asan Backend.Pac)

(* ------------------------------------------------------------------ *)
(* The acceptance scenario: breach -> downshift, not quarantine        *)
(* ------------------------------------------------------------------ *)

let impossible_slo =
  match Slo.parse "ops=99999999999" with
  | Ok slo -> slo
  | Error e -> failwith e

let run_with policy =
  Loop.run
    {
      Loop.default_config with
      Loop.tenants = 2;
      ticks = 48;
      slo = impossible_slo;
      policy;
    }

let test_breach_downshifts_not_quarantines () =
  let spec =
    match Policy.parse "budget=2.5,fallback=native" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let o = run_with (Some spec) in
  Alcotest.(check bool) "at least one downshift happened" true
    (o.Loop.o_downshifts <> []);
  (* every downshift steps strictly down the ladder, ending at native *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant-%d ended on a cheaper backend" s.Loop.s_id)
        true
        (Backend.overhead s.Loop.s_backend < Backend.overhead Backend.Pac))
    o.Loop.o_tenants;
  (* the policy-less control run quarantines under the same pressure *)
  let control = run_with None in
  Alcotest.(check bool) "without a policy the same SLO quarantines" true
    (control.Loop.o_quarantined > 0);
  Alcotest.(check int) "with a policy nothing above native quarantines" 0
    (List.length
       (List.filter
          (fun s ->
            s.Loop.s_state = Tenant.Quarantined
            && s.Loop.s_backend <> Backend.Native)
          o.Loop.o_tenants))

let test_downshift_run_is_deterministic () =
  let spec =
    match Policy.parse "budget=2.5" with Ok s -> s | Error e -> failwith e
  in
  let render cfg = Loop.render_summary (Loop.run cfg) in
  let cfg jobs =
    {
      Loop.default_config with
      Loop.tenants = 3;
      ticks = 48;
      jobs;
      slo = impossible_slo;
      policy = Some spec;
    }
  in
  Alcotest.(check string) "same bytes across runs" (render (cfg 1))
    (render (cfg 1));
  Alcotest.(check string) "same bytes across jobs 1/2" (render (cfg 1))
    (render (cfg 2))

(* The ladder's round trip, pinned to a floor a pac tenant misses but
   native meets: tenant-0 walks pac -> giantsan -> native under the
   breaches, then a clean window on native earns the climb straight back
   to its original pac assignment — recorded as an upshift and a
   tenant_backend event, ending healthy on the backend it started on. *)
let test_clean_windows_upshift () =
  let spec =
    match Policy.parse "budget=2.5,fallback=native" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let floor =
    match Slo.parse "ops=12400000" with Ok s -> s | Error e -> failwith e
  in
  let o =
    Loop.run
      {
        Loop.default_config with
        Loop.tenants = 2;
        ticks = 64;
        slo = floor;
        policy = Some spec;
        upshift_after = 1;
        tenant_cfg =
          { Tenant.default_config with Tenant.recorder_cap = 8192 };
      }
  in
  Alcotest.(check bool) "tenant-0 downshifted first" true
    (List.mem_assoc 0 o.Loop.o_downshifts);
  Alcotest.(check (list (pair int string)))
    "one upshift, straight back to pac"
    [ (0, "pac") ]
    o.Loop.o_upshifts;
  let t0 = List.hd o.Loop.o_tenants in
  Alcotest.(check string) "ended on its original assignment" "pac"
    (Backend.name t0.Loop.s_backend);
  Alcotest.(check bool) "ended healthy" true
    (t0.Loop.s_state = Tenant.Healthy);
  (* the recorder carries the climb as a tenant_backend event naming pac *)
  let lines = List.assoc 0 o.Loop.o_recorders in
  Alcotest.(check bool) "recorder has the pac tenant_backend event" true
    (List.exists
       (fun l ->
         Helpers.contains l "\"ev\":\"tenant_backend\""
         && Helpers.contains l "\"backend\":\"pac\"")
       lines)

let test_tenant_backend_event_recorded () =
  let spec =
    match Policy.parse "budget=2.5" with Ok s -> s | Error e -> failwith e
  in
  (* deep recorder so later service traffic cannot evict the
     repartition marker before the end-of-run dump *)
  let o =
    Loop.run
      {
        Loop.default_config with
        Loop.tenants = 2;
        ticks = 48;
        slo = impossible_slo;
        policy = Some spec;
        tenant_cfg =
          { Tenant.default_config with Tenant.recorder_cap = 8192 };
      }
  in
  let lines = List.concat_map snd o.Loop.o_recorders in
  Alcotest.(check bool) "recorder carries a tenant_backend event" true
    (List.exists
       (fun l -> Helpers.contains l "\"ev\":\"tenant_backend\"")
       lines)

let suite =
  ( "policy",
    [
      Helpers.qt "spec grammar round-trips" `Quick test_parse_round_trip;
      Helpers.qt "malformed specs fail with named errors" `Quick
        test_parse_errors;
      Helpers.qt "detection scores pin the matrix" `Quick test_score_pins;
      Helpers.qt "decide: budget gates, score picks, ties break cheap" `Quick
        test_decide;
      test_assign_respects_mean_budget;
      Helpers.qt "assignment: head gets coverage, tail absorbs" `Quick
        test_assign_head_gets_coverage;
      Helpers.qt "downshift walks asan/pac/giantsan/native" `Quick
        test_downshift_ladder;
      Helpers.qt "upshift climbs back, bounded by the assignment" `Quick
        test_upshift_ladder;
      Helpers.qt "breached tenant downshifts instead of quarantining" `Quick
        test_breach_downshifts_not_quarantines;
      Helpers.qt "clean windows upshift back to the assignment" `Quick
        test_clean_windows_upshift;
      Helpers.qt "policy runs stay byte-deterministic across jobs" `Quick
        test_downshift_run_is_deterministic;
      Helpers.qt "repartition records a tenant_backend event" `Quick
        test_tenant_backend_event_recorded;
    ] )
