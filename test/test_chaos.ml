(* The chaos subsystem: the shadow-vs-oracle self-check, the fault matrix
   and the engine's two load-bearing contracts — corruption is always
   flagged, and the rendered report is byte-identical for a fixed seed
   across runs and across jobs. *)

module Memsim = Giantsan_memsim
module Heap = Memsim.Heap
module Memobj = Memsim.Memobj
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Gs_runtime = Giantsan_core.Gs_runtime
module San = Giantsan_sanitizer.Sanitizer
module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Fault = Giantsan_chaos.Fault
module Selfcheck = Giantsan_chaos.Selfcheck
module Engine = Giantsan_chaos.Engine
module Rng = Giantsan_util.Rng

(* ------------------------------------------------------------------ *)
(* Selfcheck                                                           *)
(* ------------------------------------------------------------------ *)

(* A correct runtime's shadow is a pure function of the heap's ground
   truth, so the audit must stay empty after any legal op sequence. The
   clean-scenario generator covers the whole op surface (alloc sizes 0..,
   frees, loops, regions). *)
let test_selfcheck_clean_on_pristine =
  Helpers.q "selfcheck: clean after any legal op sequence" QCheck.small_int
    (fun seed ->
      let sc = Difftest.gen_clean ~seed in
      let san, shadow = Gs_runtime.create_exposed Helpers.small_config in
      ignore (Scenario.run_reports san sc);
      Selfcheck.run ~heap:san.San.heap ~shadow = [])

let test_corruption_always_flagged =
  Helpers.q "selfcheck: any shadow byte change is flagged" QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let san, shadow = Gs_runtime.create_exposed Helpers.small_config in
      (* populate: a few live objects, some freed *)
      for _ = 1 to Rng.int_in rng 2 8 do
        let obj = san.San.malloc (Rng.int_in rng 0 200) in
        if Rng.bool rng then ignore (san.San.free obj.Memobj.base)
      done;
      assert (Selfcheck.run ~heap:san.San.heap ~shadow = []);
      let seg = Rng.int rng (Shadow_mem.segments shadow) in
      let mask = 1 + Rng.int rng 255 in
      Shadow_mem.poke shadow seg (Shadow_mem.peek shadow seg lxor mask);
      match Selfcheck.run ~heap:san.San.heap ~shadow with
      | [] -> false
      | ms -> List.exists (fun m -> m.Selfcheck.seg = seg) ms)

let test_selfcheck_classification () =
  let san, shadow = Gs_runtime.create_exposed Helpers.small_config in
  let obj = san.San.malloc 64 in
  let base_seg = obj.Memobj.base / 8 in
  (* live payload marked freed: shadow claims fewer bytes than truth *)
  Shadow_mem.poke shadow base_seg Giantsan_core.State_code.freed;
  (match Selfcheck.run ~heap:san.San.heap ~shadow with
  | [ m ] ->
    Alcotest.(check bool) "stale free is an underclaim" true
      (m.Selfcheck.cls = Selfcheck.Underclaim)
  | ms ->
    Alcotest.failf "expected exactly one mismatch, got %d" (List.length ms));
  (* restore, then overclaim a redzone segment: the dangerous direction *)
  Shadow_mem.poke shadow base_seg (Selfcheck.expected_code san.San.heap base_seg);
  Shadow_mem.poke shadow (base_seg - 1) Giantsan_core.State_code.good;
  match Selfcheck.run ~heap:san.San.heap ~shadow with
  | [ m ] ->
    Alcotest.(check bool) "good-over-redzone is an overclaim" true
      (m.Selfcheck.cls = Selfcheck.Overclaim)
  | ms -> Alcotest.failf "expected exactly one mismatch, got %d" (List.length ms)

(* ------------------------------------------------------------------ *)
(* Fault matrix                                                        *)
(* ------------------------------------------------------------------ *)

let test_matrix_deterministic_and_complete () =
  let a = Fault.matrix ~seed:123 and b = Fault.matrix ~seed:123 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "different seed, different schedule" true
    (a <> Fault.matrix ~seed:124);
  let planes_of cells =
    List.sort_uniq compare (List.map (fun c -> c.Fault.plane) cells)
  in
  Alcotest.(check int) "all four planes represented" 4
    (List.length (planes_of a));
  let ids = List.map (fun c -> c.Fault.cell_id) a in
  Alcotest.(check int) "cell ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

(* The subsystem's headline property: for a fixed seed the rendered
   report is byte-identical across runs and across jobs, and no fault is
   ever silently absorbed. *)
let test_engine_deterministic_across_jobs () =
  List.iter
    (fun seed ->
      let serial, held1 = Engine.run ~seed ~jobs:1 () in
      let parallel, held2 = Engine.run ~seed ~jobs:2 () in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical serial vs jobs=2 (seed %d)" seed)
        serial parallel;
      Alcotest.(check bool)
        (Printf.sprintf "contract held (seed %d)" seed)
        true (held1 && held2))
    [ 5; 42 ]

let test_engine_counters () =
  let rows = Engine.run_round ~seed:42 ~jobs:1 in
  let stats = Engine.fresh_stats () in
  Engine.tally stats rows;
  Alcotest.(check int) "every cell injects one fault"
    (List.length rows) stats.Engine.faults_injected;
  Alcotest.(check int) "no silent corruption" 0 stats.Engine.silent_corruptions;
  Alcotest.(check bool) "some faults detected" true
    (stats.Engine.faults_detected > 0);
  Alcotest.(check bool) "some runs degraded" true
    (stats.Engine.runs_degraded > 0)

let suite =
  ( "chaos",
    [
      test_selfcheck_clean_on_pristine;
      test_corruption_always_flagged;
      Helpers.qt "selfcheck classifies under/overclaim" `Quick
        test_selfcheck_classification;
      Helpers.qt "fault matrix is seeded and complete" `Quick
        test_matrix_deterministic_and_complete;
      Helpers.qt "engine output identical across jobs" `Quick
        test_engine_deterministic_across_jobs;
      Helpers.qt "engine counters account for every cell" `Quick
        test_engine_counters;
    ] )
