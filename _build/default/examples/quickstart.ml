(* Quickstart: create a GiantSan runtime, allocate, check regions, and see
   how segment folding keeps checks O(1).

   Run with: dune exec examples/quickstart.exe *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report

let show label = function
  | None -> Printf.printf "  %-42s OK\n" label
  | Some r -> Printf.printf "  %-42s %s\n" label (Report.to_string r)

let () =
  print_endline "== GiantSan quickstart ==";
  (* A sanitizer instance owns a simulated heap + shadow memory. *)
  let san =
    Giantsan_core.Gs_runtime.create
      { Memsim.Heap.arena_size = 1 lsl 20; redzone = 16; quarantine_budget = 65536 }
  in

  (* 1. allocate a 10 KiB buffer: the runtime poisons redzones and writes
     the folded-segment summary over the object *)
  let obj = san.San.malloc 10240 in
  let p = obj.Memsim.Memobj.base in
  Printf.printf "allocated 10 KiB at address %d\n\n" p;

  (* 2. region checks are O(1) regardless of size (Algorithm 1) *)
  let loads0 = san.San.shadow_loads () in
  show "check whole 10 KiB buffer" (san.San.check_region ~lo:p ~hi:(p + 10240));
  Printf.printf "  ... using %d metadata loads (ASan would need %d)\n\n"
    (san.San.shadow_loads () - loads0)
    (10240 / 8);

  (* 3. violations: one byte past the end, anchored long jumps, underflow *)
  show "one byte past the end"
    (san.San.access ~base:p ~addr:(p + 10240) ~width:1);
  show "long jump over the redzone (anchor catches)"
    (san.San.access ~base:p ~addr:(p + 90000) ~width:4);
  show "one byte before the start"
    (san.San.access ~base:p ~addr:(p - 1) ~width:1);
  print_newline ();

  (* 4. history caching: a loop over the buffer costs O(log n) loads *)
  let cache = san.San.new_cache ~base:p in
  let loads1 = san.San.shadow_loads () in
  for j = 0 to (10240 / 8) - 1 do
    match san.San.cached_access cache ~off:(8 * j) ~width:8 with
    | None -> ()
    | Some r -> print_endline (Report.to_string r)
  done;
  Printf.printf "forward scan of all %d words: %d metadata loads\n\n"
    (10240 / 8)
    (san.San.shadow_loads () - loads1);

  (* 5. temporal errors via quarantine *)
  (match san.San.free p with
  | None -> print_endline "freed the buffer"
  | Some r -> print_endline (Report.to_string r));
  show "use after free" (san.San.access ~base:p ~addr:(p + 16) ~width:8);
  show "double free" (san.San.free p);

  Printf.printf "\ncounters:\n%s\n"
    (Format.asprintf "%a" Giantsan_sanitizer.Counters.pp san.San.counters)
