(* Shadow explorer: watch the folded encoding evolve through an object's
   lifetime — allocation, partial view, free, quarantine eviction.

   Run with: dune exec examples/shadow_explorer.exe *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module SC = Giantsan_core.State_code
module Shadow_dump = Giantsan_core.Shadow_dump
module Folding = Giantsan_core.Folding

let () =
  let san, m =
    Giantsan_core.Gs_runtime.create_exposed
      { Memsim.Heap.arena_size = 1 lsl 16; redzone = 16; quarantine_budget = 128 }
  in

  print_endline "== The 68-byte object of Figure 5 ==\n";
  let obj = san.San.malloc 68 in
  let base = obj.Memsim.Memobj.base in
  print_string (Shadow_dump.around m ~addr:base ~radius:6 ());
  Printf.printf "\nblock summary: %s\n\n"
    (Shadow_dump.run_summary m ~lo:obj.Memsim.Memobj.block_base
       ~hi:(Memsim.Memobj.block_end obj));

  print_endline "== What one shadow byte tells a check ==\n";
  List.iter
    (fun off ->
      let seg = (base + off) / 8 in
      let v = Giantsan_shadow.Shadow_mem.peek m seg in
      Printf.printf
        "  at offset %2d: state %-12s -> %d bytes known addressable from here\n"
        off (SC.describe v) (SC.covered_bytes v))
    [ 0; 8; 16; 32; 48; 56; 64 ];

  Printf.printf
    "\nbound walks: upper_bound(base) = base + %d, lower_bound(base + 60) = \
     base + %d\n\n"
    (Folding.upper_bound m ~addr:base - base)
    (Folding.lower_bound m ~addr:(base + 60) - base);

  print_endline "== After free: quarantined (poisoned, not reusable) ==\n";
  ignore (san.San.free base);
  print_string (Shadow_dump.around m ~addr:base ~radius:3 ());
  Printf.printf "\nsummary: %s\n\n"
    (Shadow_dump.run_summary m ~lo:obj.Memsim.Memobj.block_base
       ~hi:(Memsim.Memobj.block_end obj));

  print_endline
    "== After the 128-byte quarantine cycles: recycled (unallocated) ==\n";
  (* churn enough frees through the tiny quarantine to evict the object *)
  for _ = 1 to 4 do
    let tmp = san.San.malloc 64 in
    ignore (san.San.free tmp.Memsim.Memobj.base)
  done;
  Printf.printf "summary: %s\n"
    (Shadow_dump.run_summary m ~lo:obj.Memsim.Memobj.block_base
       ~hi:(Memsim.Memobj.block_end obj))
