(* Bug hunting: run slices of the Juliet-shaped corpus and the CVE
   scenarios under all four tools and compare what each one catches.

   Run with: dune exec examples/bug_hunting.exe *)

module Harness = Giantsan_bugs.Harness
module Juliet = Giantsan_bugs.Juliet
module Cves = Giantsan_bugs.Cves
module Table = Giantsan_util.Table

let () =
  print_endline "== Detection across tools (Juliet slice: 40 cases per CWE) ==\n";
  let rows =
    List.map
      (fun cwe ->
        let cases =
          List.filteri (fun i _ -> i < 40) (Juliet.buggy_cases cwe)
        in
        Printf.sprintf "CWE-%d %s" cwe (Juliet.cwe_name cwe)
        :: List.map
             (fun tool ->
               string_of_int (Harness.count_detected tool cases))
             Harness.all_tools
        @ [ string_of_int (List.length cases) ])
      Juliet.cwe_ids
  in
  Table.print
    ([ "CWE"; "GiantSan"; "ASan"; "ASan--"; "LFP"; "cases" ] :: rows);

  print_endline "\n== CVE scenarios where the tools disagree ==\n";
  List.iter
    (fun (c : Cves.t) ->
      let verdicts =
        List.map (fun t -> Harness.detected t c.Cves.cve_scenario) Harness.all_tools
      in
      if List.exists not verdicts then begin
        Printf.printf "%s (%s, %s):\n" c.Cves.cve_id c.Cves.cve_program
          c.Cves.cve_class;
        List.iter2
          (fun tool found ->
            Printf.printf "  %-10s %s\n" (Harness.tool_name tool)
              (if found then "detected" else "MISSED"))
          Harness.all_tools verdicts
      end)
    Cves.all;

  print_endline "\n== Why LFP misses: the rounding slack ==\n";
  let lfp = Harness.make_sanitizer Harness.Lfp in
  let gs = Harness.make_sanitizer Harness.Giantsan in
  let module San = Giantsan_sanitizer.Sanitizer in
  let module Memsim = Giantsan_memsim in
  let lo = lfp.San.malloc 600 and go = gs.San.malloc 600 in
  let lbase = lo.Memsim.Memobj.base and gbase = go.Memsim.Memobj.base in
  Printf.printf "char p[600] is placed in a %d-byte size class (slack %d)\n"
    (Giantsan_lfp.Size_class.round_up 600)
    (Giantsan_lfp.Size_class.slack 600);
  List.iter
    (fun off ->
      let l = lfp.San.access ~base:lbase ~addr:(lbase + off) ~width:1 in
      let g = gs.San.access ~base:gbase ~addr:(gbase + off) ~width:1 in
      Printf.printf "  p[%d]: LFP %-8s GiantSan %s\n" off
        (if l = None then "ok" else "caught")
        (if g = None then "ok" else "caught"))
    [ 599; 610; 700 ]
