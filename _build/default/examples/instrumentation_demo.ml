(* Instrumentation demo: the Figure 8 program through the check-instance
   pipeline. Prints the program, each tool's plan, and the executed-check
   counts that make operation-level protection pay off.

   Run with: dune exec examples/instrumentation_demo.exe *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Pp = Giantsan_ir.Pp
module Plan = Giantsan_analysis.Plan
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Runner = Giantsan_workload.Runner
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer

(* Figure 8a, with concrete allocations so it can run:
     p[0] = x buffer, p[1] = y buffer
     for (i = 0; i < N; i++) { j = x[i]; y[j] = i; }
     memset(x, 0, 4N)                                         *)
let build n =
  let b = B.create () in
  let x_load = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  let y_load = B.access b ~base:"p" ~index:(B.i 1) ~scale:8 () in
  let xi = B.access b ~base:"x" ~index:(B.v "i") ~scale:4 () in
  let yj = B.access b ~base:"y" ~index:(B.v "j") ~scale:4 () in
  let prog =
    B.program "figure8"
      [
        B.assign "N" (B.i n);
        B.malloc "p" (B.i 16);
        B.malloc "xbuf" (B.i (4 * n));
        B.malloc "ybuf" (B.i (4 * n));
        B.store b ~base:"p" ~index:(B.i 0) ~scale:8 ~value:(B.v "xbuf") ();
        B.store b ~base:"p" ~index:(B.i 1) ~scale:8 ~value:(B.v "ybuf") ();
        (* x[i] will hold in-bounds indices for y *)
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.v "N")
          [
            B.store b ~base:"xbuf" ~index:(B.v "i") ~scale:4
              ~value:B.(v "i" % i n) ();
          ];
        B.assign "x" (Ast.Load x_load);
        B.assign "y" (Ast.Load y_load);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.v "N")
          [ B.assign "j" (Ast.Load xi); Ast.Store (yj, B.v "i") ];
        B.memset b ~dst:"x" ~doff:(B.i 0) ~len:B.(i 4 * v "N") ~value:(B.i 0);
      ]
  in
  (prog, [ ("p[0]", x_load); ("p[1]", y_load); ("x[i]", xi); ("y[j]", yj) ])

let decision_name = function
  | Plan.Plain -> "plain check"
  | Plan.Cached -> "history-cached"
  | Plan.Eliminated -> "eliminated (covered by a merged/promoted check)"

let () =
  let n = 1000 in
  let prog, accesses = build n in
  print_endline "== The program (Figure 8a) ==\n";
  print_string (Pp.program_to_string prog);

  List.iter
    (fun mode ->
      let plan = Instrument.plan mode prog in
      Printf.printf "\n== %s plan ==\n" (Instrument.mode_name mode);
      List.iter
        (fun (label, (acc : Ast.access)) ->
          Printf.printf "  %-6s -> %s\n" label
            (decision_name (Plan.decision_of plan acc.Ast.acc_id)))
        accesses)
    [ Instrument.Asan; Instrument.Asanmm; Instrument.Giantsan ];

  print_endline "\n== Executed checks (N = 1000) ==\n";
  List.iter
    (fun config ->
      let san = Runner.make_sanitizer config in
      let plan = Instrument.plan (Runner.instrument_mode config) prog in
      let out = Interp.run san plan prog in
      assert (out.Interp.reports = []);
      Printf.printf "  %-10s checks executed: %6d   metadata loads: %6d\n"
        (Runner.config_name config)
        (Counters.total_checks san.San.counters)
        (san.San.shadow_loads ()))
    [ Runner.Asan; Runner.Asanmm; Runner.Giantsan ];
  print_endline
    "\nThe paper's claim in miniature: 2 checks + N cached hits instead of\n\
     2 + 3N instruction-level checks."
