examples/shadow_explorer.mli:
