examples/quickstart.mli:
