examples/quickstart.ml: Format Giantsan_core Giantsan_memsim Giantsan_sanitizer Printf
