examples/instrumentation_demo.mli:
