examples/traversal_patterns.mli:
