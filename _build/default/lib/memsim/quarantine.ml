type t = { budget : int; queue : Memobj.t Queue.t; mutable held : int }

let create ~budget =
  assert (budget >= 0);
  { budget; queue = Queue.create (); held = 0 }

let push t obj =
  Queue.push obj t.queue;
  t.held <- t.held + obj.Memobj.block_len;
  let evicted = ref [] in
  while t.held > t.budget && not (Queue.is_empty t.queue) do
    let old = Queue.pop t.queue in
    t.held <- t.held - old.Memobj.block_len;
    evicted := old :: !evicted
  done;
  List.rev !evicted

let flush t =
  let all = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  t.held <- 0;
  all

let bytes_held t = t.held
let length t = Queue.length t.queue
