(** Allocated-object metadata: the ground-truth registry of every object the
    simulated program ever allocated. Sanitizers do NOT read this (they only
    see shadow memory); the oracle and the test harness do. *)

type kind = Heap | Stack | Global

type status =
  | Live  (** allocated, bytes addressable *)
  | Quarantined  (** freed, still poisoned, in the quarantine queue *)
  | Recycled  (** freed and evicted from quarantine: memory may be reused *)

type t = {
  id : int;
  kind : kind;
  base : int;  (** first addressable byte (8-aligned) *)
  size : int;  (** requested size in bytes *)
  block_base : int;  (** start of the whole block incl. left redzone *)
  block_len : int;  (** full block length incl. both redzones *)
  mutable status : status;
}

val right_redzone_base : t -> int
(** First byte after the object proper, i.e. [base + size]. *)

val block_end : t -> int
val contains : t -> int -> bool
(** [contains obj addr]: is [addr] inside the object's addressable range? *)

val in_block : t -> int -> bool
(** Is [addr] anywhere inside the block, redzones included? *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
