type kind = Heap | Stack | Global
type status = Live | Quarantined | Recycled

type t = {
  id : int;
  kind : kind;
  base : int;
  size : int;
  block_base : int;
  block_len : int;
  mutable status : status;
}

let right_redzone_base t = t.base + t.size
let block_end t = t.block_base + t.block_len
let contains t addr = addr >= t.base && addr < t.base + t.size
let in_block t addr = addr >= t.block_base && addr < block_end t

let kind_name = function
  | Heap -> "heap"
  | Stack -> "stack"
  | Global -> "global"

let status_name = function
  | Live -> "live"
  | Quarantined -> "quarantined"
  | Recycled -> "recycled"

let pp ppf t =
  Format.fprintf ppf "%s object #%d [%d, %d) (%d bytes, %s)" (kind_name t.kind)
    t.id t.base (t.base + t.size) t.size (status_name t.status)
