(** FIFO quarantine for freed heap blocks, as in ASan: a freed block's memory
    is kept poisoned (not reusable) until the total quarantined byte count
    exceeds a budget, at which point the oldest blocks are evicted and become
    reusable again. Temporal-error detection holds only while a block sits in
    the queue — eviction opens the (rare) bypass window the paper discusses
    in §5.4. *)

type t

val create : budget:int -> t
(** [budget] is the maximum number of bytes held in quarantine. A budget of
    [0] disables quarantine (every push evicts immediately). *)

val push : t -> Memobj.t -> Memobj.t list
(** Enqueue a freed object's block; returns the objects evicted to stay
    within budget (possibly including the one just pushed). *)

val flush : t -> Memobj.t list
(** Evict everything (used at teardown). *)

val bytes_held : t -> int
val length : t -> int
