lib/memsim/arena.mli:
