lib/memsim/quarantine.ml: List Memobj Queue
