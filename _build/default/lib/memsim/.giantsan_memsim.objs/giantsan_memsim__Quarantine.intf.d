lib/memsim/quarantine.mli: Memobj
