lib/memsim/oracle.mli: Memobj
