lib/memsim/memobj.mli: Format
