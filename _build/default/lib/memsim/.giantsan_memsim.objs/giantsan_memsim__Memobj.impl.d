lib/memsim/memobj.ml: Format
