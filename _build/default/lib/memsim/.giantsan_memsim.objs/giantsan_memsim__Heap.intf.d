lib/memsim/heap.mli: Arena Memobj Oracle
