lib/memsim/arena.ml: Bytes Char Giantsan_util Int32 Int64 Printf
