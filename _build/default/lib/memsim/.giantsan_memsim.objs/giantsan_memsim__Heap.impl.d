lib/memsim/heap.ml: Arena Giantsan_util Hashtbl List Memobj Oracle Quarantine
