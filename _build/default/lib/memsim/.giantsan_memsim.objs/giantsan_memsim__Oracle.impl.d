lib/memsim/oracle.ml: Array Bytes Giantsan_util Memobj Printf
