(** AddressSanitizer, the most widely deployed location-based sanitizer and
    the paper's main baseline.

    Protection is instruction-level: every access of width <= 8 costs one
    shadow load + compare (Example 1 of §2.2); larger operations and libc
    guardians ([memset], [strcpy], ...) scan the region's shadow linearly —
    the low-protection-density behaviour GiantSan attacks.

    The same runtime also backs ASan--: ASan-- differs only in *which*
    checks the instrumentation emits (redundant ones eliminated), not in how
    a check works. *)

val create : Giantsan_memsim.Heap.config -> Giantsan_sanitizer.Sanitizer.t

val create_named :
  string -> Giantsan_memsim.Heap.config -> Giantsan_sanitizer.Sanitizer.t
(** Same runtime under a different display name (used for "ASan--"). *)

val create_exposed :
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t * Giantsan_shadow.Shadow_mem.t
(** Also hands back the shadow, for white-box consistency tests. *)

val check_access :
  Giantsan_shadow.Shadow_mem.t -> addr:int -> width:int -> bool
(** The raw single-access check (true = safe), exposed for tests and
    microbenchmarks. Width must be within [1..8]. *)

val region_is_safe :
  Giantsan_shadow.Shadow_mem.t -> lo:int -> hi:int -> int option
(** Linear guardian scan of [lo, hi): address of the first bad byte, [None]
    if clean. Loads one shadow byte per overlapped segment. *)
