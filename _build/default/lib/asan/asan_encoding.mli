(** ASan's shadow encoding (§2.2, Example 1, and Figure 1).

    One signed shadow byte per 8-byte segment:
    - [0]: all 8 bytes addressable ("good");
    - [k] with [1 <= k <= 7]: only the first [k] bytes addressable
      ("k-partial");
    - negative (as signed int8): non-addressable, the value recording *why*
      (heap redzone, freed, stack redzone, ...). *)

val good : int
val partial : int -> int
(** [partial k] for [1 <= k <= 7]. *)

(** The error codes follow the real ASan runtime's magic values (0xfa heap
    redzone, 0xfd freed, 0xf1 stack redzone, 0xf9 global redzone, 0xfe
    unallocated/fill). Stored as unsigned bytes; [decode_signed] recovers
    the signed reading. *)

val heap_redzone : int

val freed : int
val stack_redzone : int
val global_redzone : int
val unallocated : int

val decode_signed : int -> int
(** Unsigned shadow byte (0..255) to its signed int8 reading. *)

val is_error_code : int -> bool
(** Is the (unsigned) byte one of the negative error codes? *)

val addressable_in_segment : int -> int
(** How many leading bytes of the segment the (unsigned) state makes
    addressable: 8 for good, [k] for k-partial, 0 for error codes. *)

val redzone_code : Giantsan_memsim.Memobj.kind -> int
(** Redzone error code matching the object kind. *)

val poison_alloc : Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit
(** Write the shadow for a fresh allocation: redzones, good segments, and
    the trailing partial segment. *)

val poison_free : Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit
(** Mark the object's segments freed (redzones stay redzones). *)

val poison_evict : Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit
(** Reset the whole block to [unallocated] once it leaves quarantine. *)
