module Memsim = Giantsan_memsim
module Shadow_mem = Giantsan_shadow.Shadow_mem
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module E = Asan_encoding

(* Example 1 (§2.2): one shadow load, one compare. *)
let check_access m ~addr ~width =
  assert (width >= 1 && width <= 8);
  let v = E.decode_signed (Shadow_mem.load m (addr / 8)) in
  not (v <> 0 && (addr land 7) + width > v)

let region_is_safe m ~lo ~hi =
  if hi <= lo then None
  else begin
    let first_seg = lo / 8 and last_seg = (hi - 1) / 8 in
    let bad = ref None in
    let seg = ref first_seg in
    while !bad = None && !seg <= last_seg do
      let v = Shadow_mem.load m !seg in
      let ok_upto = E.addressable_in_segment v in
      let seg_base = !seg * 8 in
      let want_from = max lo seg_base and want_to = min hi (seg_base + 8) in
      if want_to - seg_base > ok_upto then
        bad := Some (max want_from (seg_base + ok_upto));
      incr seg
    done;
    !bad
  end

let create_exposed_named name config =
  let heap = Memsim.Heap.create config in
  let m = Shadow_mem.of_heap heap ~fill:E.unallocated in
  let counters = Counters.create () in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    Some
      (Report.make
         ~kind:(Report.classify_access heap ~addr ~base)
         ~addr ~size ~detected_by:name)
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    let obj = Memsim.Heap.malloc heap ?kind size in
    E.poison_alloc m obj;
    counters.Counters.poison_segments <-
      counters.Counters.poison_segments + (obj.Memsim.Memobj.block_len / 8);
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    match Memsim.Heap.free heap ptr with
    | Ok { freed; evicted } ->
      E.poison_free m freed;
      List.iter (E.poison_evict m) evicted;
      None
    | Error err ->
      let r = San.free_error_report ~name ~addr:ptr err in
      if r <> None then counters.Counters.errors <- counters.Counters.errors + 1;
      r
  in
  let access ~base ~addr ~width =
    (* ASan ignores the anchor: instruction-level protection only. *)
    ignore base;
    if width <= 8 then begin
      counters.Counters.instr_checks <- counters.Counters.instr_checks + 1;
      if check_access m ~addr ~width then None
      else report ~addr ~size:width ()
    end
    else begin
      counters.Counters.region_checks <- counters.Counters.region_checks + 1;
      match region_is_safe m ~lo:addr ~hi:(addr + width) with
      | None -> None
      | Some bad -> report ~addr:bad ~size:width ()
    end
  in
  let check_region ~lo ~hi =
    counters.Counters.region_checks <- counters.Counters.region_checks + 1;
    match region_is_safe m ~lo ~hi with
    | None -> None
    | Some bad -> report ~base:lo ~addr:bad ~size:(hi - lo) ()
  in
  ( {
    San.name;
    heap;
    counters;
    shadow_loads = (fun () -> Shadow_mem.loads m);
    malloc;
    free;
    access;
    check_region;
    new_cache = (fun ~base -> { San.cache_base = base; cache_ub = 0 });
    cached_access =
      (fun cache ~off ~width ->
        (* No history caching in ASan: every iteration pays a fresh
           instruction-level check. *)
        access ~base:cache.San.cache_base
          ~addr:(cache.San.cache_base + off) ~width);
    flush_cache = (fun _ -> None);
    supports_operation_level = false;
  },
    m )

let create_named name config = fst (create_exposed_named name config)
let create config = create_named "ASan" config
let create_exposed config = create_exposed_named "ASan" config
