module Shadow_mem = Giantsan_shadow.Shadow_mem
module Memobj = Giantsan_memsim.Memobj

let good = 0

let partial k =
  assert (k >= 1 && k <= 7);
  k

let heap_redzone = 0xfa
let freed = 0xfd
let stack_redzone = 0xf1
let global_redzone = 0xf9
let unallocated = 0xfe

let decode_signed v = if v >= 128 then v - 256 else v
let is_error_code v = v >= 128

let addressable_in_segment v =
  if v = 0 then 8 else if v >= 1 && v <= 7 then v else 0

let redzone_code = function
  | Memobj.Heap -> heap_redzone
  | Memobj.Stack -> stack_redzone
  | Memobj.Global -> global_redzone

let poison_alloc m (obj : Memobj.t) =
  let rz = redzone_code obj.kind in
  let base_seg = obj.base / 8 in
  let full = obj.size / 8 in
  let rem = obj.size mod 8 in
  (* left redzone *)
  Shadow_mem.fill_range m ~lo:(obj.block_base / 8) ~hi:base_seg rz;
  (* good segments *)
  Shadow_mem.fill_range m ~lo:base_seg ~hi:(base_seg + full) good;
  (* trailing partial segment, if the size is not 8-aligned *)
  let after = if rem > 0 then begin
      Shadow_mem.set m (base_seg + full) (partial rem);
      base_seg + full + 1
    end
    else base_seg + full
  in
  (* right redzone *)
  Shadow_mem.fill_range m ~lo:after ~hi:(Memobj.block_end obj / 8) rz

let object_segments (obj : Memobj.t) =
  let base_seg = obj.base / 8 in
  let hi = if obj.size = 0 then base_seg else (obj.base + obj.size - 1) / 8 + 1 in
  (base_seg, hi)

let poison_free m obj =
  let lo, hi = object_segments obj in
  Shadow_mem.fill_range m ~lo ~hi freed

let poison_evict m (obj : Memobj.t) =
  Shadow_mem.fill_range m ~lo:(obj.block_base / 8) ~hi:(Memobj.block_end obj / 8)
    unallocated
