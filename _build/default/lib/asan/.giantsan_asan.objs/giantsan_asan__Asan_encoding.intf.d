lib/asan/asan_encoding.mli: Giantsan_memsim Giantsan_shadow
