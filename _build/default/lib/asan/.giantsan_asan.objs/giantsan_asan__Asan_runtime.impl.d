lib/asan/asan_runtime.ml: Asan_encoding Giantsan_memsim Giantsan_sanitizer Giantsan_shadow List
