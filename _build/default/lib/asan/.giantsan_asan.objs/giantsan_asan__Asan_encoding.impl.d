lib/asan/asan_encoding.ml: Giantsan_memsim Giantsan_shadow
