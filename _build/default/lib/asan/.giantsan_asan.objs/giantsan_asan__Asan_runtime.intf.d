lib/asan/asan_runtime.mli: Giantsan_memsim Giantsan_sanitizer Giantsan_shadow
