(** Human-readable shadow memory dumps, in the spirit of the shadow-byte
    legend ASan prints under its crash reports. Debugging aid for the
    simulator and the examples. *)

val segment_line :
  Giantsan_shadow.Shadow_mem.t -> seg:int -> string
(** One segment's state, e.g. ["seg   42 [336,344)  (3)-folded"]. *)

val around :
  Giantsan_shadow.Shadow_mem.t -> addr:int -> ?radius:int -> unit -> string
(** Render the segments surrounding [addr] ([radius] segments each side,
    default 4), marking the segment containing [addr] with an arrow. Does
    not count metadata loads (uses peeks). *)

val run_summary : Giantsan_shadow.Shadow_mem.t -> lo:int -> hi:int -> string
(** Compact run-length summary of a segment range, e.g.
    ["2x heap-redzone, 128x folded(<=7), 1x 4-partial, 2x heap-redzone"]. *)
