lib/core/gs_runtime.mli: Giantsan_memsim Giantsan_sanitizer Giantsan_shadow
