lib/core/linear_encoding.ml: Giantsan_memsim Giantsan_shadow State_code
