lib/core/quasi_bound.mli: Giantsan_sanitizer Giantsan_shadow
