lib/core/state_code.ml: Giantsan_memsim Printf
