lib/core/linear_encoding.mli: Giantsan_memsim Giantsan_shadow
