lib/core/shadow_dump.mli: Giantsan_shadow
