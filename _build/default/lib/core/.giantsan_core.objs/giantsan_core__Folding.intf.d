lib/core/folding.mli: Giantsan_memsim Giantsan_shadow
