lib/core/state_code.mli: Giantsan_memsim
