lib/core/region_check.mli: Giantsan_shadow
