lib/core/quasi_bound.ml: Giantsan_sanitizer Giantsan_shadow Region_check State_code
