lib/core/shadow_dump.ml: Buffer Giantsan_shadow List Printf State_code String
