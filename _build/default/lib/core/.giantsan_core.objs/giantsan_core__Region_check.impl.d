lib/core/region_check.ml: Giantsan_shadow State_code
