lib/core/folding.ml: Giantsan_memsim Giantsan_shadow Giantsan_util State_code
