lib/core/gs_runtime.ml: Folding Giantsan_memsim Giantsan_sanitizer Giantsan_shadow List Quasi_bound Region_check State_code
