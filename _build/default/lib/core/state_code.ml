module Memobj = Giantsan_memsim.Memobj

let max_degree = 45
let good = 64

let folded i =
  assert (i >= 0 && i <= max_degree);
  64 - i

let degree v =
  assert (v >= 64 - max_degree && v <= 64);
  64 - v

let partial k =
  assert (k >= 1 && k <= 7);
  72 - k

let is_folded v = v <= 64
let is_partial v = v >= 65 && v <= 71
let is_error v = v > 72

(* 73..79 would also be legal; spreading the codes out keeps accidental
   collisions with arithmetic on partial codes visible in tests. *)
let heap_redzone = 73
let freed = 74
let stack_redzone = 75
let global_redzone = 76
let unallocated = 80

let covered_bytes v = if v <= 64 then 1 lsl (67 - v) else 0

let addressable_in_segment v =
  if v <= 64 then 8 else if v <= 71 then 72 - v else 0

let redzone_code = function
  | Memobj.Heap -> heap_redzone
  | Memobj.Stack -> stack_redzone
  | Memobj.Global -> global_redzone

let describe v =
  if v <= 64 then Printf.sprintf "(%d)-folded" (64 - v)
  else if v <= 71 then Printf.sprintf "%d-partial" (72 - v)
  else if v = heap_redzone then "heap-redzone"
  else if v = freed then "freed"
  else if v = stack_redzone then "stack-redzone"
  else if v = global_redzone then "global-redzone"
  else if v = unallocated then "unallocated"
  else Printf.sprintf "error(%d)" v
