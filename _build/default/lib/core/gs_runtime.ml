module Memsim = Giantsan_memsim
module Shadow_mem = Giantsan_shadow.Shadow_mem
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report

let create_exposed_variant ~name ~use_cache ~check_underflow config =
  let heap = Memsim.Heap.create config in
  let m = Shadow_mem.of_heap heap ~fill:State_code.unallocated in
  let counters = Counters.create () in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    Some
      (Report.make
         ~kind:(Report.classify_access heap ~addr ~base)
         ~addr ~size ~detected_by:name)
  in
  let count_region outcome =
    counters.Counters.region_checks <- counters.Counters.region_checks + 1;
    match outcome with
    | Region_check.Safe_fast ->
      counters.Counters.fast_checks <- counters.Counters.fast_checks + 1
    | Region_check.Safe_slow | Region_check.Bad _ ->
      counters.Counters.slow_checks <- counters.Counters.slow_checks + 1
  in
  let ci ?anchor ~l ~r ~size () =
    let outcome = Region_check.check_unaligned m ~l ~r in
    count_region outcome;
    match outcome with
    | Region_check.Safe_fast | Region_check.Safe_slow -> None
    | Region_check.Bad addr -> report ?base:anchor ~addr ~size ()
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    let obj = Memsim.Heap.malloc heap ?kind size in
    Folding.poison_alloc m obj;
    counters.Counters.poison_segments <-
      counters.Counters.poison_segments + (obj.Memsim.Memobj.block_len / 8);
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    match Memsim.Heap.free heap ptr with
    | Ok { freed; evicted } ->
      Folding.poison_free m freed;
      List.iter (Folding.poison_evict m) evicted;
      None
    | Error err ->
      let r = San.free_error_report ~name ~addr:ptr err in
      if r <> None then
        counters.Counters.errors <- counters.Counters.errors + 1;
      r
  in
  let access ~base ~addr ~width =
    if base > 0 && addr >= base then
      (* anchor-based: protect everything between the anchor and the access *)
      ci ~anchor:base ~l:base ~r:(addr + width) ~size:width ()
    else if base > 0 && check_underflow then begin
      counters.Counters.underflow_checks <-
        counters.Counters.underflow_checks + 1;
      match ci ~anchor:base ~l:addr ~r:base ~size:width () with
      | Some r -> Some r
      | None ->
        if addr + width > base then
          ci ~anchor:base ~l:base ~r:(addr + width) ~size:width ()
        else None
    end
    else
      (* no anchor (or underflow anchoring disabled, the §5.4 degraded
         mode): check only the accessed bytes *)
      ci ~l:addr ~r:(addr + width) ~size:width ()
  in
  let check_region ~lo ~hi =
    ci ~anchor:lo ~l:lo ~r:hi ~size:(hi - lo) ()
  in
  let cached_access (cache : San.cache) ~off ~width =
    if off < 0 && not check_underflow then
      (* degraded §5.4 mode: unanchored check of the accessed bytes only *)
      ci
        ~l:(cache.San.cache_base + off)
        ~r:(cache.San.cache_base + off + width)
        ~size:width ()
    else if use_cache then begin
      match Quasi_bound.access m counters cache ~off ~width with
      | Quasi_bound.Ok_cached | Quasi_bound.Ok_checked -> None
      | Quasi_bound.Bad addr ->
        report ~base:cache.San.cache_base ~addr ~size:width ()
    end
    else
      access ~base:cache.San.cache_base
        ~addr:(cache.San.cache_base + off) ~width
  in
  let flush_cache cache =
    if not use_cache then None
    else
      match Quasi_bound.flush m counters cache with
      | None -> None
      | Some addr -> report ~base:cache.San.cache_base ~addr ~size:0 ()
  in
  ( {
      San.name;
      heap;
      counters;
      shadow_loads = (fun () -> Shadow_mem.loads m);
      malloc;
      free;
      access;
      check_region;
      new_cache = (fun ~base -> { San.cache_base = base; cache_ub = 0 });
      cached_access;
      flush_cache;
      supports_operation_level = true;
    },
    m )

let create_variant ~name ~use_cache ?(check_underflow = true) config =
  fst (create_exposed_variant ~name ~use_cache ~check_underflow config)

let create config = create_variant ~name:"GiantSan" ~use_cache:true config

let create_exposed config =
  create_exposed_variant ~name:"GiantSan" ~use_cache:true
    ~check_underflow:true config
