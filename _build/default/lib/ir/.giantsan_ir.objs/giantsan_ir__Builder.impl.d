lib/ir/builder.ml: Ast Stdlib
