(** C-flavoured pretty printer for IR programs (used by the
    instrumentation-demo example and error messages). *)

val expr : Format.formatter -> Ast.expr -> unit
val stmt : Format.formatter -> Ast.stmt -> unit
val program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
