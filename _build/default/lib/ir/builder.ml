type t = { mutable next_id : int }

let create () = { next_id = 0 }

let fresh t =
  let id = t.next_id in
  t.next_id <- Stdlib.( + ) id 1;
  id

let default_width scale =
  match scale with
  | 1 -> Ast.W1
  | 2 -> Ast.W2
  | 4 -> Ast.W4
  | 8 -> Ast.W8
  | _ -> Ast.W1

let access t ?(disp = 0) ?width ~base ~index ~scale () =
  let width = match width with Some w -> w | None -> default_width scale in
  { Ast.acc_id = fresh t; base; index; scale; disp; width }

let load t ?disp ?width ~base ~index ~scale () =
  Ast.Load (access t ?disp ?width ~base ~index ~scale ())

let store t ?disp ?width ~base ~index ~scale ~value () =
  Ast.Store (access t ?disp ?width ~base ~index ~scale (), value)

let memset t ~dst ~doff ~len ~value =
  Ast.Memset { mem_id = fresh t; dst; doff; len; value }

let memcpy t ~dst ~doff ~src ~soff ~len =
  Ast.Memcpy { mem_id = fresh t; dst; doff; src; soff; len }

let for_ t ~idx ~lo ~hi body = Ast.For { loop_id = fresh t; idx; lo; hi; body }
let while_ t ~cond body = Ast.While { loop_id = fresh t; cond; body }

let i n = Ast.Int n
let v name = Ast.Var name
let ( + ) a b = Ast.Bin (Ast.Add, a, b)
let ( - ) a b = Ast.Bin (Ast.Sub, a, b)
let ( * ) a b = Ast.Bin (Ast.Mul, a, b)
let ( / ) a b = Ast.Bin (Ast.Div, a, b)
let ( % ) a b = Ast.Bin (Ast.Rem, a, b)
let ( < ) a b = Ast.Cmp (Ast.Lt, a, b)
let ( <= ) a b = Ast.Cmp (Ast.Le, a, b)
let ( > ) a b = Ast.Cmp (Ast.Gt, a, b)
let ( >= ) a b = Ast.Cmp (Ast.Ge, a, b)
let ( = ) a b = Ast.Cmp (Ast.Eq, a, b)
let ( <> ) a b = Ast.Cmp (Ast.Ne, a, b)

let assign name e = Ast.Assign (name, e)
let malloc name size = Ast.Malloc (name, size)
let alloca name size = Ast.Alloca (name, size)
let free e = Ast.Free e
let if_ cond then_ else_ = Ast.If { cond; then_; else_ }
let call ?dst callee args = Ast.Call { dst; callee; args }
let return_ e = Ast.Return e
let func name ~params body = { Ast.fn_name = name; fn_params = params; fn_body = body }

let program ?(globals = []) ?(funcs = []) name body =
  { Ast.name; globals; funcs; body }
