open Format

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Rem -> "%"

let cmp_str = function
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="

let width_str = function
  | Ast.W1 -> "i8"
  | Ast.W2 -> "i16"
  | Ast.W4 -> "i32"
  | Ast.W8 -> "i64"

let rec expr ppf = function
  | Ast.Int n -> fprintf ppf "%d" n
  | Ast.Var v -> fprintf ppf "%s" v
  | Ast.Bin (op, a, b) -> fprintf ppf "(%a %s %a)" expr a (binop_str op) expr b
  | Ast.Cmp (op, a, b) -> fprintf ppf "(%a %s %a)" expr a (cmp_str op) expr b
  | Ast.Load acc -> access ppf acc

and access ppf (a : Ast.access) =
  if a.disp = 0 then
    fprintf ppf "%s[%a]:%s*%d" a.base expr a.index (width_str a.width) a.scale
  else
    fprintf ppf "%s[%a]+%d:%s*%d" a.base expr a.index a.disp
      (width_str a.width) a.scale

let rec stmt ppf = function
  | Ast.Assign (v, e) -> fprintf ppf "%s = %a;" v expr e
  | Ast.Store (a, e) -> fprintf ppf "%a = %a;" access a expr e
  | Ast.Malloc (v, e) -> fprintf ppf "%s = malloc(%a);" v expr e
  | Ast.Alloca (v, e) -> fprintf ppf "%s = alloca(%a);" v expr e
  | Ast.Free e -> fprintf ppf "free(%a);" expr e
  | Ast.Call { dst; callee; args } ->
    (match dst with
    | Some v -> fprintf ppf "%s = %s(" v callee
    | None -> fprintf ppf "%s(" callee);
    List.iteri
      (fun i a ->
        if i > 0 then fprintf ppf ", ";
        expr ppf a)
      args;
    fprintf ppf ");"
  | Ast.Return None -> fprintf ppf "return;"
  | Ast.Return (Some e) -> fprintf ppf "return %a;" expr e
  | Ast.Memset { dst; doff; len; value; _ } ->
    fprintf ppf "memset(%s + %a, %a, %a);" dst expr doff expr value expr len
  | Ast.Memcpy { dst; doff; src; soff; len; _ } ->
    fprintf ppf "memcpy(%s + %a, %s + %a, %a);" dst expr doff src expr soff
      expr len
  | Ast.For { idx; lo; hi; body; _ } ->
    fprintf ppf "@[<v 2>for (%s = %a; %s < %a; %s++) {%a@]@,}" idx expr lo idx
      expr hi idx block body
  | Ast.While { cond; body; _ } ->
    fprintf ppf "@[<v 2>while (%a) {%a@]@,}" expr cond block body
  | Ast.If { cond; then_; else_ } ->
    if else_ = [] then
      fprintf ppf "@[<v 2>if (%a) {%a@]@,}" expr cond block then_
    else
      fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" expr cond
        block then_ block else_

and block ppf stmts = List.iter (fun s -> fprintf ppf "@,%a" stmt s) stmts

let func ppf (f : Ast.func) =
  fprintf ppf "@[<v 2>%s(%s) {%a@]@,}@," f.Ast.fn_name
    (String.concat ", " f.Ast.fn_params)
    block f.Ast.fn_body

let program ppf (p : Ast.program) =
  List.iter
    (fun (name, size) -> fprintf ppf "global %s[%d];@," name size)
    p.globals;
  List.iter (func ppf) p.funcs;
  fprintf ppf "@[<v 2>%s() {%a@]@,}@." p.name block p.body

let program_to_string p = asprintf "%a" program p
