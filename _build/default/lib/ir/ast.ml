(** The mini pointer IR.

    A deliberately small stand-in for the LLVM IR the real GiantSan pass
    operates on, yet rich enough to express every idiom the paper's
    instrumentation reasons about (Table 1, Figure 8): constant-offset
    accesses, [memset]/[memcpy] intrinsics, counted loops with affine
    subscripts, unbounded loops with data-dependent subscripts, and
    pointers flowing through locals.

    Every memory access and every loop carries a unique integer id assigned
    by {!Builder}; instrumentation plans key their decisions on those ids. *)

type width = W1 | W2 | W4 | W8

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

type binop = Add | Sub | Mul | Div | Rem
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Cmp of cmp * expr * expr  (** 1 if true, 0 otherwise *)
  | Load of access  (** memory read; checked like any access *)

and access = {
  acc_id : int;
  base : string;  (** pointer-holding variable *)
  index : expr;  (** element index *)
  scale : int;  (** bytes per element *)
  disp : int;  (** constant byte displacement *)
  width : width;
}
(** Effective address: [env(base) + index * scale + disp]. *)

type stmt =
  | Assign of string * expr
  | Store of access * expr
  | Malloc of string * expr  (** var := malloc(size) *)
  | Alloca of string * expr
      (** var := stack allocation in the current frame; freed (and its
          shadow poisoned) automatically when the frame returns *)
  | Free of expr
  | Memset of { mem_id : int; dst : string; doff : expr; len : expr; value : expr }
  | Memcpy of {
      mem_id : int;
      dst : string;
      doff : expr;
      src : string;
      soff : expr;
      len : expr;
    }
  | For of { loop_id : int; idx : string; lo : expr; hi : expr; body : stmt list }
      (** counted loop: [for idx = lo; idx < hi; idx++] — the shape SCEV
          loop-bound analysis understands *)
  | While of { loop_id : int; cond : expr; body : stmt list }
      (** unbounded loop: bounds unknown statically *)
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | Call of { dst : string option; callee : string; args : expr list }
      (** call a program-level function; its allocas live until it returns.
          Calls are optimization barriers: the instrumentation is
          intra-procedural, like the paper's use of LLVM's must-alias. *)
  | Return of expr option

type func = { fn_name : string; fn_params : string list; fn_body : stmt list }

type program = {
  name : string;
  globals : (string * int) list;
      (** global arrays (name, byte size): allocated and poisoned with
          global redzones before [body] runs, never freed — like ASan's
          instrumented globals *)
  funcs : func list;
  body : stmt list;
}

(** {2 Structural helpers} *)

let rec expr_accesses e =
  match e with
  | Int _ | Var _ -> []
  | Bin (_, a, b) | Cmp (_, a, b) -> expr_accesses a @ expr_accesses b
  | Load acc -> (acc :: expr_accesses acc.index)

let rec stmt_accesses s =
  match s with
  | Assign (_, e) | Free e -> expr_accesses e
  | Store (acc, e) -> (acc :: expr_accesses acc.index) @ expr_accesses e
  | Malloc (_, e) | Alloca (_, e) -> expr_accesses e
  | Call { args; _ } -> List.concat_map expr_accesses args
  | Return e -> (match e with None -> [] | Some e -> expr_accesses e)
  | Memset { doff; len; value; _ } ->
    expr_accesses doff @ expr_accesses len @ expr_accesses value
  | Memcpy { doff; soff; len; _ } ->
    expr_accesses doff @ expr_accesses soff @ expr_accesses len
  | For { lo; hi; body; _ } ->
    expr_accesses lo @ expr_accesses hi @ List.concat_map stmt_accesses body
  | While { cond; body; _ } ->
    expr_accesses cond @ List.concat_map stmt_accesses body
  | If { cond; then_; else_ } ->
    expr_accesses cond
    @ List.concat_map stmt_accesses then_
    @ List.concat_map stmt_accesses else_

let program_accesses p =
  List.concat_map stmt_accesses p.body
  @ List.concat_map (fun f -> List.concat_map stmt_accesses f.fn_body) p.funcs

let rec expr_vars e =
  match e with
  | Int _ -> []
  | Var v -> [ v ]
  | Bin (_, a, b) | Cmp (_, a, b) -> expr_vars a @ expr_vars b
  | Load acc -> (acc.base :: expr_vars acc.index)

(** Variables a statement list may write (assignments and malloc results). *)
let rec assigned_vars stmts =
  List.concat_map
    (fun s ->
      match s with
      | Assign (v, _) | Malloc (v, _) | Alloca (v, _) -> [ v ]
      | Call { dst = Some v; _ } -> [ v ]
      | Call { dst = None; _ } | Store _ | Free _ | Memset _ | Memcpy _
      | Return _ ->
        []
      | For { idx; body; _ } -> idx :: assigned_vars body
      | While { body; _ } -> assigned_vars body
      | If { then_; else_; _ } -> assigned_vars then_ @ assigned_vars else_)
    stmts

(** Does any expression in the statements read memory? (Loads make values
    loop-variant for the purposes of invariance reasoning.) *)
let rec expr_has_load = function
  | Int _ | Var _ -> false
  | Bin (_, a, b) | Cmp (_, a, b) -> expr_has_load a || expr_has_load b
  | Load _ -> true
