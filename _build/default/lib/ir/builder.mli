(** Program construction with automatic id assignment.

    A builder carries the id counter; all accesses and loops created through
    it get unique ids, which the instrumentation plans key on. *)

type t

val create : unit -> t

val access :
  t -> ?disp:int -> ?width:Ast.width -> base:string -> index:Ast.expr ->
  scale:int -> unit -> Ast.access
(** Fresh access node; [width] defaults to the scale's natural width when
    the scale is 1, 2, 4 or 8, else [W1]. *)

val load :
  t -> ?disp:int -> ?width:Ast.width -> base:string -> index:Ast.expr ->
  scale:int -> unit -> Ast.expr

val store :
  t -> ?disp:int -> ?width:Ast.width -> base:string -> index:Ast.expr ->
  scale:int -> value:Ast.expr -> unit -> Ast.stmt

val memset :
  t -> dst:string -> doff:Ast.expr -> len:Ast.expr -> value:Ast.expr ->
  Ast.stmt

val memcpy :
  t -> dst:string -> doff:Ast.expr -> src:string -> soff:Ast.expr ->
  len:Ast.expr -> Ast.stmt

val for_ :
  t -> idx:string -> lo:Ast.expr -> hi:Ast.expr -> Ast.stmt list -> Ast.stmt

val while_ : t -> cond:Ast.expr -> Ast.stmt list -> Ast.stmt

(** {2 Expression shorthands (no ids involved)} *)

val i : int -> Ast.expr
val v : string -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( = ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <> ) : Ast.expr -> Ast.expr -> Ast.expr

val assign : string -> Ast.expr -> Ast.stmt
val malloc : string -> Ast.expr -> Ast.stmt

val alloca : string -> Ast.expr -> Ast.stmt
(** Stack allocation; reclaimed when the enclosing function returns. *)

val free : Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt

val call : ?dst:string -> string -> Ast.expr list -> Ast.stmt
(** [call ~dst f args]: invoke function [f]; its return value (0 when it
    falls off the end) lands in [dst] if given. *)

val return_ : Ast.expr option -> Ast.stmt
val func : string -> params:string list -> Ast.stmt list -> Ast.func

val program :
  ?globals:(string * int) list ->
  ?funcs:Ast.func list ->
  string ->
  Ast.stmt list ->
  Ast.program
(** [globals] are (name, byte-size) pairs, materialized with global
    redzones before the body runs. *)
