lib/lfp/size_class.mli:
