lib/lfp/lfp_runtime.mli: Giantsan_memsim Giantsan_sanitizer
