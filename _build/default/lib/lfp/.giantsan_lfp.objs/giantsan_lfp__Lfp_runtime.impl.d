lib/lfp/lfp_runtime.ml: Giantsan_memsim Giantsan_sanitizer Size_class
