lib/lfp/size_class.ml:
