(* Classes: for each power of two p >= 16, the sizes p, p+p/4, p+p/2,
   p+3p/4. This mirrors LFP's "more variety of allocation sizes" refinement
   over BBC's plain powers of two. *)

let round_up size =
  if size <= 16 then 16
  else begin
    let p = ref 16 in
    while !p * 2 < size do
      p := !p * 2
    done;
    (* size is in (p, 2p]; quarter steps of p *)
    let q = !p / 4 in
    let steps = (size - !p + q - 1) / q in
    !p + (steps * q)
  end

let slack size = round_up size - size

let is_class_size n =
  n >= 16 && round_up n = n
