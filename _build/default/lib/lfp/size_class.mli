(** Low-fat-pointer size classes.

    LFP (and BBC before it) derives an object's bounds from the pointer
    value alone, which is only possible if allocation sizes come from a
    fixed menu of size classes. The price is over-approximation: an object
    is believed to extend to its class size, so overflows that land inside
    the rounding slack are invisible — the false-negative behaviour
    Tables 3-5 quantify. We use LFP's quarter-spaced classes
    (16, 20, 24, 28, 32, 40, 48, 56, 64, ...): denser than BBC's plain
    powers of two but still leaving slack. *)

val round_up : int -> int
(** Smallest class size >= the requested size (minimum class 16). *)

val slack : int -> int
(** [slack size] is [round_up size - size]: bytes of overflow the class
    cannot see. *)

val is_class_size : int -> bool
