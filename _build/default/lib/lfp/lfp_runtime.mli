(** LFP (low-fat pointers), the rounded-up-bound baseline (§2.1, §6).

    No shadow memory: an access is checked against bounds derived from the
    pointer value, i.e. from the size-class slot of the anchor pointer. The
    believed upper bound is the class size, not the requested size, so any
    overflow inside the rounding slack is missed; accesses whose anchor is
    unknown (tag-propagation failure) fall back to bounds derived from the
    faulting address itself and miss everything inside that slot. Freed
    slots are detected via the allocator's own metadata, which is how the
    LFP row of Table 3 still catches use-after-free and invalid frees. *)

val create : Giantsan_memsim.Heap.config -> Giantsan_sanitizer.Sanitizer.t

val believed_end : Giantsan_memsim.Memobj.t -> int
(** [base + round_up size]: where LFP thinks the object ends. *)
