(** Small integer/bit utilities shared across the sanitizer stack.

    All functions operate on non-negative OCaml [int]s (63-bit). *)

val log2_floor : int -> int
(** [log2_floor n] is the largest [x] with [2^x <= n]. Requires [n >= 1]. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [x] with [2^x >= n]. Requires [n >= 1]. *)

val pow2 : int -> int
(** [pow2 x] is [2^x]. Requires [0 <= x <= 61]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a power of two. Requires [n >= 1]. *)

val align_down : int -> int -> int
(** [align_down a n] rounds [n] down to a multiple of alignment [a]
    (a power of two). *)

val align_up : int -> int -> int
(** [align_up a n] rounds [n] up to a multiple of alignment [a]
    (a power of two). *)

val is_aligned : int -> int -> bool
(** [is_aligned a n] is true iff [n] is a multiple of [a] (a power of two). *)

val cdiv : int -> int -> int
(** [cdiv n d] is [ceil (n / d)] for non-negative [n], positive [d]. *)
