lib/util/bitops.mli:
