lib/util/bitops.ml:
