lib/util/table.mli:
