lib/util/stats.mli:
