lib/util/rng.mli:
