type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns rows =
  match rows with
  | [] -> ""
  | header :: _ ->
    let ncols = List.length header in
    assert (List.for_all (fun r -> List.length r = ncols) rows);
    let aligns =
      match aligns with
      | Some a ->
        assert (List.length a = ncols);
        Array.of_list a
      | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
    in
    let widths = Array.make ncols 0 in
    List.iter
      (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
      rows;
    let buf = Buffer.create 1024 in
    let emit_row row =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
        row;
      Buffer.add_char buf '\n'
    in
    let rule () =
      let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
      Buffer.add_string buf (String.make total '-');
      Buffer.add_char buf '\n'
    in
    (match rows with
    | h :: rest ->
      emit_row h;
      rule ();
      List.iter emit_row rest
    | [] -> ());
    Buffer.contents buf

let print ?aligns rows = print_string (render ?aligns rows)
let fpct f = Printf.sprintf "%.2f%%" f
let f2 f = Printf.sprintf "%.2f" f
