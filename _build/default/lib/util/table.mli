(** Minimal ASCII table renderer for experiment output.

    Columns are sized to the widest cell; the first row is treated as a
    header and separated by a rule. *)

type align = Left | Right

val render : ?aligns:align list -> string list list -> string
(** [render rows] lays the rows out as an aligned ASCII table. All rows must
    have the same number of cells. [aligns] defaults to [Left] for the first
    column and [Right] for the rest. *)

val print : ?aligns:align list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fpct : float -> string
(** Format a percentage like the paper: ["146.04%"]. *)

val f2 : float -> string
(** Two-decimal float. *)
