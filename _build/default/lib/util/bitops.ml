let log2_floor n =
  assert (n >= 1);
  (* Count the position of the highest set bit. *)
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let pow2 x =
  assert (x >= 0 && x <= 61);
  1 lsl x

let log2_ceil n =
  assert (n >= 1);
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

let is_pow2 n =
  assert (n >= 1);
  n land (n - 1) = 0

let align_down a n =
  assert (is_pow2 a);
  n land lnot (a - 1)

let align_up a n =
  assert (is_pow2 a);
  (n + a - 1) land lnot (a - 1)

let is_aligned a n =
  assert (is_pow2 a);
  n land (a - 1) = 0

let cdiv n d =
  assert (n >= 0 && d > 0);
  (n + d - 1) / d
