(** Summary statistics used by the experiment reports. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val geomean : float list -> float
(** Geometric mean; the paper reports SPEC overheads this way.
    Requires a non-empty list of positive values. *)

val stddev : float list -> float
(** Population standard deviation. Requires a non-empty list. *)

val median : float list -> float
(** Requires a non-empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [[0,1]], nearest-rank on the sorted list.
    Requires a non-empty list. *)

val ratio_pct : float -> float -> float
(** [ratio_pct x base] is [100 * x / base]: the paper's "R" columns. *)
