(** Deterministic splitmix64 pseudo-random generator.

    Used everywhere instead of [Stdlib.Random] so experiment output is
    reproducible bit-for-bit across runs and OCaml versions. *)

type t

val create : int -> t
(** [create seed] makes a generator from a seed. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [[lo, hi]] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the integer weights.
    Requires at least one strictly positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
