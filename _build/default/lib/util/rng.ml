type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, and passes BigCrush
   when used as a stream; more than enough for workload generation. *)
let next64 t =
  let z = Int64.add t.state 0x9E3779B97F4A7C15L in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  assert (total > 0);
  let roll = int t total in
  let rec go acc = function
    | [] -> assert false
    | (w, v) :: rest -> if roll < acc + w then v else go (acc + w) rest
  in
  go 0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
