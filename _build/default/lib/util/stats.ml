let mean xs =
  assert (xs <> []);
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  assert (xs <> []);
  let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  assert (xs <> []);
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
  sqrt var

let sorted xs = List.sort compare xs

let percentile p xs =
  assert (xs <> [] && p >= 0.0 && p <= 1.0);
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
  arr.(max 0 (min (n - 1) idx))

let median xs = percentile 0.5 xs
let ratio_pct x base = 100.0 *. x /. base
