(** Instrumentation plans: the output of the compilation phase.

    A plan records, for every access id, how the runtime must protect it
    (per-instruction check, history-cached check, or nothing because a
    merged/promoted region check covers it), plus the synthesized region
    checks to execute at loop preheaders and before merged access groups.
    The interpreter executes a (program, plan, sanitizer) triple. *)

type decision =
  | Plain  (** standalone check at the access *)
  | Cached  (** protected through the loop's quasi-bound cache *)
  | Eliminated  (** covered by a merged or promoted region check *)

type region = {
  rg_base : string;  (** pointer variable the region hangs off *)
  rg_lo : Giantsan_ir.Ast.expr;  (** byte offset of region start *)
  rg_hi : Giantsan_ir.Ast.expr;  (** byte offset of region end (exclusive) *)
}

type t = {
  mode_name : string;
  enabled : bool;  (** false = Native: no checks at all *)
  use_anchor : bool;  (** pass the base pointer as anchor (GiantSan) *)
  decisions : (int, decision) Hashtbl.t;
  loop_pre : (int, region list) Hashtbl.t;
      (** loop id -> region checks at the preheader (executed only when the
          loop runs at least one iteration) *)
  stmt_pre : (int, region list) Hashtbl.t;
      (** access id -> merged region checks fired just before that access
          first executes in its statement *)
  loop_caches : (int, string list) Hashtbl.t;
      (** loop id -> base variables that get a quasi-bound cache *)
}

val create : mode_name:string -> enabled:bool -> use_anchor:bool -> t
val decision_of : t -> int -> decision
val set_decision : t -> int -> decision -> unit
val add_loop_pre : t -> int -> region -> unit
val add_stmt_pre : t -> int -> region -> unit
val add_loop_cache : t -> int -> string -> unit
val loop_pre_of : t -> int -> region list
val stmt_pre_of : t -> int -> region list
val caches_of : t -> int -> string list

type static_stats = {
  s_plain : int;
  s_cached : int;
  s_eliminated : int;
  s_pre_checks : int;
}

val static_stats : t -> static_stats
(** Static (per-site) counts, for reporting alongside Figure 10's dynamic
    proportions. *)
