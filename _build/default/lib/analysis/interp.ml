module Ast = Giantsan_ir.Ast
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Counters = Giantsan_sanitizer.Counters
module Memsim = Giantsan_memsim

type exec_stats = {
  mutable x_plain : int;
  mutable x_plain_fast : int;
  mutable x_cached : int;
  mutable x_eliminated : int;
  mutable x_unchecked : int;
}

type outcome = {
  reports : Report.t list;
  ops : int;
  stats : exec_stats;
  crashed : bool;
  out_of_memory : bool;
  fuel_exhausted : bool;
  final_env : (string * int) list;
}

exception Crash
exception Fuel
exception Oom
exception Return_value of int

let max_call_depth = 200

type state = {
  san : San.t;
  plan : Plan.t;
  mutable env : (string, int) Hashtbl.t;
  arena : Memsim.Arena.t;
  funcs : (string, Ast.func) Hashtbl.t;
  stats : exec_stats;
  mutable fuel : int;
  mutable ops : int;
  mutable depth : int;
  mutable frame : int list ref;  (** allocas of the current function frame *)
  mutable reports_rev : Report.t list;
  mutable cache_frames : (string, San.cache) Hashtbl.t list;
}

let tick st n =
  st.ops <- st.ops + n;
  st.fuel <- st.fuel - n;
  if st.fuel < 0 then raise Fuel

let record st = function
  | None -> false
  | Some r ->
    st.reports_rev <- r :: st.reports_rev;
    true

let lookup st v =
  match Hashtbl.find_opt st.env v with
  | Some x -> x
  | None -> failwith ("Interp: unbound variable " ^ v)

let find_cache st base =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match Hashtbl.find_opt frame base with
      | Some c -> Some c
      | None -> go rest)
  in
  go st.cache_frames

let run_region st (r : Plan.region) eval =
  let base = lookup st r.Plan.rg_base in
  let lo = base + eval r.Plan.rg_lo and hi = base + eval r.Plan.rg_hi in
  if hi > lo then ignore (record st (st.san.San.check_region ~lo ~hi))

let rec eval st (e : Ast.expr) =
  match e with
  | Ast.Int n -> n
  | Ast.Var v -> lookup st v
  | Ast.Bin (op, a, b) -> (
    tick st 1;
    let x = eval st a and y = eval st b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> if y = 0 then raise Crash else x / y
    | Ast.Rem -> if y = 0 then raise Crash else x mod y)
  | Ast.Cmp (op, a, b) ->
    tick st 1;
    let x = eval st a and y = eval st b in
    let r =
      match op with
      | Ast.Lt -> x < y
      | Ast.Le -> x <= y
      | Ast.Gt -> x > y
      | Ast.Ge -> x >= y
      | Ast.Eq -> x = y
      | Ast.Ne -> x <> y
    in
    if r then 1 else 0
  | Ast.Load acc ->
    let addr = address st acc in
    if checked_access st acc addr then
      try Memsim.Arena.load st.arena ~addr ~width:(Ast.bytes_of_width acc.width)
      with Invalid_argument _ -> raise Crash
    else 0

and address st (acc : Ast.access) =
  lookup st acc.Ast.base + (eval st acc.Ast.index * acc.Ast.scale) + acc.Ast.disp

(* Returns true when the memory operation should really execute (no
   detected violation stands in the way). *)
and checked_access st (acc : Ast.access) addr =
  tick st 1;
  let width = Ast.bytes_of_width acc.Ast.width in
  (* merged-span checks scheduled just before this access: the span check
     IS this site's check, so it counts as the (possibly fast) plain one *)
  let pres = Plan.stmt_pre_of st.plan acc.Ast.acc_id in
  let ran_span =
    match pres with
    | [] -> false
    | pres ->
      let fast0 = st.san.San.counters.Counters.fast_checks in
      let slow0 = st.san.San.counters.Counters.slow_checks in
      List.iter (fun r -> run_region st r (eval st)) pres;
      if st.plan.Plan.enabled then begin
        st.stats.x_plain <- st.stats.x_plain + 1;
        let fast1 = st.san.San.counters.Counters.fast_checks in
        let slow1 = st.san.San.counters.Counters.slow_checks in
        if fast1 > fast0 && slow1 = slow0 then
          st.stats.x_plain_fast <- st.stats.x_plain_fast + 1
      end;
      true
  in
  if not st.plan.Plan.enabled then begin
    st.stats.x_unchecked <- st.stats.x_unchecked + 1;
    true
  end
  else
    match Plan.decision_of st.plan acc.Ast.acc_id with
    | Plan.Eliminated ->
      if not ran_span then
        st.stats.x_eliminated <- st.stats.x_eliminated + 1;
      true
    | Plan.Cached -> (
      match find_cache st acc.Ast.base with
      | Some cache ->
        st.stats.x_cached <- st.stats.x_cached + 1;
        let off = addr - cache.San.cache_base in
        not (record st (st.san.San.cached_access cache ~off ~width))
      | None -> plain_access st acc addr width)
    | Plan.Plain -> plain_access st acc addr width

and plain_access st (acc : Ast.access) addr width =
  st.stats.x_plain <- st.stats.x_plain + 1;
  let anchor =
    if st.plan.Plan.use_anchor then lookup st acc.Ast.base else 0
  in
  let fast0 = st.san.San.counters.Counters.fast_checks in
  let slow0 = st.san.San.counters.Counters.slow_checks in
  let r = st.san.San.access ~base:anchor ~addr ~width in
  let fast1 = st.san.San.counters.Counters.fast_checks in
  let slow1 = st.san.San.counters.Counters.slow_checks in
  if fast1 > fast0 && slow1 = slow0 then
    st.stats.x_plain_fast <- st.stats.x_plain_fast + 1;
  not (record st r)

let enter_caches st loop_id =
  let vars = Plan.caches_of st.plan loop_id in
  if vars = [] then None
  else begin
    let frame = Hashtbl.create (List.length vars) in
    List.iter
      (fun v ->
        match Hashtbl.find_opt st.env v with
        | Some base -> Hashtbl.replace frame v (st.san.San.new_cache ~base)
        | None -> ())
      vars;
    st.cache_frames <- frame :: st.cache_frames;
    Some frame
  end

let exit_caches st = function
  | None -> ()
  | Some frame ->
    (match st.cache_frames with
    | f :: rest when f == frame -> st.cache_frames <- rest
    | _ -> ());
    Hashtbl.iter
      (fun _ cache -> ignore (record st (st.san.San.flush_cache cache)))
      frame

let rec exec_block st stmts = List.iter (exec_stmt st) stmts

and exec_stmt st stmt =
  tick st 1;
  match stmt with
  | Ast.Assign (v, e) -> Hashtbl.replace st.env v (eval st e)
  | Ast.Store (acc, e) ->
    let value = eval st e in
    let addr = address st acc in
    if checked_access st acc addr then begin
      try
        Memsim.Arena.store st.arena ~addr
          ~width:(Ast.bytes_of_width acc.Ast.width) value
      with Invalid_argument _ -> raise Crash
    end
  | Ast.Malloc (v, e) ->
    let size = eval st e in
    if size < 0 then raise Crash;
    let obj = try st.san.San.malloc size with Out_of_memory -> raise Oom in
    Hashtbl.replace st.env v obj.Memsim.Memobj.base
  | Ast.Alloca (v, e) ->
    let size = eval st e in
    if size < 0 then raise Crash;
    let obj =
      try st.san.San.malloc ~kind:Memsim.Memobj.Stack size
      with Out_of_memory -> raise Oom
    in
    st.frame := obj.Memsim.Memobj.base :: !(st.frame);
    Hashtbl.replace st.env v obj.Memsim.Memobj.base
  | Ast.Call { dst; callee; args } ->
    let f =
      match Hashtbl.find_opt st.funcs callee with
      | Some f -> f
      | None -> failwith ("Interp: unknown function " ^ callee)
    in
    let arg_values = List.map (eval st) args in
    if st.depth >= max_call_depth then raise Crash;
    let caller_env = st.env and caller_frame = st.frame in
    let callee_env = Hashtbl.create 16 in
    (try List.iter2 (Hashtbl.replace callee_env) f.Ast.fn_params arg_values
     with Invalid_argument _ ->
       failwith ("Interp: arity mismatch calling " ^ callee));
    st.env <- callee_env;
    st.frame <- ref [];
    st.depth <- st.depth + 1;
    let restore () =
      (* the frame dies: every alloca is reclaimed and its shadow poisoned *)
      List.iter
        (fun base -> ignore (record st (st.san.San.free base)))
        !(st.frame);
      st.env <- caller_env;
      st.frame <- caller_frame;
      st.depth <- st.depth - 1
    in
    let result =
      try
        exec_block st f.Ast.fn_body;
        restore ();
        0
      with
      | Return_value v ->
        restore ();
        v
      | e ->
        restore ();
        raise e
    in
    (match dst with
    | Some v -> Hashtbl.replace st.env v result
    | None -> ())
  | Ast.Return e ->
    let v = match e with None -> 0 | Some e -> eval st e in
    raise (Return_value v)
  | Ast.Free e ->
    let ptr = eval st e in
    ignore (record st (st.san.San.free ptr))
  | Ast.Memset { mem_id; dst; doff; len; value } ->
    let base = lookup st dst in
    let lo = base + eval st doff in
    let n = eval st len in
    let v = eval st value in
    if n > 0 then begin
      tick st (1 + (n / 8));
      let checked =
        if st.plan.Plan.enabled then
          match Plan.decision_of st.plan mem_id with
          | Plan.Eliminated -> true
          | Plan.Plain | Plan.Cached ->
            not (record st (st.san.San.check_region ~lo ~hi:(lo + n)))
        else true
      in
      if checked then begin
        try Memsim.Arena.fill st.arena ~addr:lo ~len:n v
        with Invalid_argument _ -> raise Crash
      end
    end
  | Ast.Memcpy { mem_id; dst; doff; src; soff; len } ->
    let dbase = lookup st dst and sbase = lookup st src in
    let dlo = dbase + eval st doff and slo = sbase + eval st soff in
    let n = eval st len in
    if n > 0 then begin
      tick st (1 + (n / 8));
      let checked =
        if st.plan.Plan.enabled then
          match Plan.decision_of st.plan mem_id with
          | Plan.Eliminated -> true
          | Plan.Plain | Plan.Cached ->
            let r1 = record st (st.san.San.check_region ~lo:slo ~hi:(slo + n)) in
            let r2 = record st (st.san.San.check_region ~lo:dlo ~hi:(dlo + n)) in
            not (r1 || r2)
        else true
      in
      if checked then begin
        try Memsim.Arena.blit st.arena ~src:slo ~dst:dlo ~len:n
        with Invalid_argument _ -> raise Crash
      end
    end
  | Ast.For { loop_id; idx; lo; hi; body } ->
    let lo = eval st lo and hi = eval st hi in
    let frame = enter_caches st loop_id in
    if lo < hi && st.plan.Plan.enabled then
      List.iter
        (fun r -> run_region st r (eval st))
        (Plan.loop_pre_of st.plan loop_id);
    let i = ref lo in
    (try
       while !i < hi do
         tick st 1;
         Hashtbl.replace st.env idx !i;
         exec_block st body;
         incr i
       done;
       exit_caches st frame
     with e ->
       exit_caches st frame;
       raise e)
  | Ast.While { loop_id; cond; body } ->
    let frame = enter_caches st loop_id in
    (try
       while eval st cond <> 0 do
         tick st 1;
         exec_block st body
       done;
       exit_caches st frame
     with e ->
       exit_caches st frame;
       raise e)
  | Ast.If { cond; then_; else_ } ->
    if eval st cond <> 0 then exec_block st then_ else exec_block st else_

let run ?(fuel = 50_000_000) (san : San.t) plan (prog : Ast.program) =
  let stats =
    { x_plain = 0; x_plain_fast = 0; x_cached = 0; x_eliminated = 0; x_unchecked = 0 }
  in
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace funcs f.Ast.fn_name f)
    prog.Ast.funcs;
  let st =
    {
      san;
      plan;
      env = Hashtbl.create 64;
      arena = Memsim.Heap.arena san.San.heap;
      funcs;
      stats;
      fuel;
      ops = 0;
      depth = 0;
      frame = ref [];
      reports_rev = [];
      cache_frames = [];
    }
  in
  let crashed = ref false and oom = ref false and starved = ref false in
  (* globals come to life (and get their redzones) before main runs *)
  (try
     List.iter
       (fun (name, size) ->
         let obj = san.San.malloc ~kind:Memsim.Memobj.Global size in
         Hashtbl.replace st.env name obj.Memsim.Memobj.base)
       prog.Ast.globals
   with Out_of_memory -> oom := true);
  (try if not !oom then exec_block st prog.Ast.body with
  | Crash -> crashed := true
  | Oom -> oom := true
  | Fuel -> starved := true
  | Return_value _ -> () (* return from main ends the program *));
  (* main's frame dies with the program *)
  (try
     List.iter (fun base -> ignore (record st (san.San.free base))) !(st.frame)
   with Crash | Oom | Fuel -> ());
  {
    reports = List.rev st.reports_rev;
    ops = st.ops;
    stats = st.stats;
    crashed = !crashed;
    out_of_memory = !oom;
    fuel_exhausted = !starved;
    final_env = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.env [];
  }

let var outcome name = List.assoc name outcome.final_env
