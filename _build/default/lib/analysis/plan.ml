type decision = Plain | Cached | Eliminated

type region = {
  rg_base : string;
  rg_lo : Giantsan_ir.Ast.expr;
  rg_hi : Giantsan_ir.Ast.expr;
}

type t = {
  mode_name : string;
  enabled : bool;
  use_anchor : bool;
  decisions : (int, decision) Hashtbl.t;
  loop_pre : (int, region list) Hashtbl.t;
  stmt_pre : (int, region list) Hashtbl.t;
  loop_caches : (int, string list) Hashtbl.t;
}

let create ~mode_name ~enabled ~use_anchor =
  {
    mode_name;
    enabled;
    use_anchor;
    decisions = Hashtbl.create 64;
    loop_pre = Hashtbl.create 16;
    stmt_pre = Hashtbl.create 16;
    loop_caches = Hashtbl.create 16;
  }

let decision_of t id =
  match Hashtbl.find_opt t.decisions id with Some d -> d | None -> Plain

let set_decision t id d = Hashtbl.replace t.decisions id d

let add_to_list tbl key v =
  let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (prev @ [ v ])

let add_loop_pre t id r = add_to_list t.loop_pre id r
let add_stmt_pre t id r = add_to_list t.stmt_pre id r

let add_loop_cache t id v =
  let prev =
    match Hashtbl.find_opt t.loop_caches id with Some l -> l | None -> []
  in
  if not (List.mem v prev) then Hashtbl.replace t.loop_caches id (prev @ [ v ])

let find_list tbl key =
  match Hashtbl.find_opt tbl key with Some l -> l | None -> []

let loop_pre_of t id = find_list t.loop_pre id
let stmt_pre_of t id = find_list t.stmt_pre id
let caches_of t id = find_list t.loop_caches id

type static_stats = {
  s_plain : int;
  s_cached : int;
  s_eliminated : int;
  s_pre_checks : int;
}

let static_stats t =
  let plain = ref 0 and cached = ref 0 and elim = ref 0 in
  Hashtbl.iter
    (fun _ d ->
      match d with
      | Plain -> incr plain
      | Cached -> incr cached
      | Eliminated -> incr elim)
    t.decisions;
  let pre = ref 0 in
  Hashtbl.iter (fun _ l -> pre := !pre + List.length l) t.loop_pre;
  Hashtbl.iter (fun _ l -> pre := !pre + List.length l) t.stmt_pre;
  { s_plain = !plain; s_cached = !cached; s_eliminated = !elim; s_pre_checks = !pre }
