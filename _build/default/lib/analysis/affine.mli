(** SCEV-lite: linear-form analysis of index expressions.

    The real GiantSan runs LLVM's scalar-evolution analysis to recognise
    bounded loops and affine subscripts (§4.4.2, "Check-in-Loop Promotion").
    This module provides the equivalent on the mini IR: it rewrites an
    expression as [coeff * idx + rest] where [rest] does not mention the
    loop index, or reports that no such form exists. *)

type linear = {
  coeff : int;  (** multiplier of the loop index *)
  rest : Giantsan_ir.Ast.expr;  (** index-free remainder *)
}

val const_eval : Giantsan_ir.Ast.expr -> int option
(** Constant folding; [None] if the expression mentions variables or
    memory. *)

val linearize : idx:string -> Giantsan_ir.Ast.expr -> linear option
(** [linearize ~idx e] writes [e] as [coeff * idx + rest] when possible.
    Expressions containing loads, or the index under a non-linear operator
    ([*] by a non-constant, [/], [%], comparisons), yield [None]. *)

val is_invariant : assigned:string list -> Giantsan_ir.Ast.expr -> bool
(** Is the expression loop-invariant: free of loads and of any variable in
    [assigned] (the variables the loop body may write)? *)

val byte_offset :
  idx:string -> Giantsan_ir.Ast.access -> (int * Giantsan_ir.Ast.expr) option
(** Byte offset of the access relative to its base pointer, as
    [coeff_bytes * idx + rest_bytes]: [(coeff * scale, rest * scale + disp)].
    [None] if the subscript is not linear in [idx]. *)

val simplify : Giantsan_ir.Ast.expr -> Giantsan_ir.Ast.expr
(** Light algebraic cleanup (constant folding, [x + 0], [1 * x], ...) so
    generated pre-check bounds stay readable. *)
