lib/analysis/affine.mli: Giantsan_ir
