lib/analysis/plan.mli: Giantsan_ir Hashtbl
