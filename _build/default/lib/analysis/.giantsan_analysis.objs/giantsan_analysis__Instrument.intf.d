lib/analysis/instrument.mli: Giantsan_ir Plan
