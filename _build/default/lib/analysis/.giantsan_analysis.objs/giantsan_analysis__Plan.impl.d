lib/analysis/plan.ml: Giantsan_ir Hashtbl List
