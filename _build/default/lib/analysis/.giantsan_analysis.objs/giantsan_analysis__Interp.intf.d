lib/analysis/interp.mli: Giantsan_ir Giantsan_sanitizer Plan
