lib/analysis/instrument.ml: Affine Giantsan_ir Hashtbl List Option Plan
