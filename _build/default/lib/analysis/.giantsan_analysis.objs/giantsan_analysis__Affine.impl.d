lib/analysis/affine.ml: Giantsan_ir List Option
