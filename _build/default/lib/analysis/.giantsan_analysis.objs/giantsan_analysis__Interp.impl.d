lib/analysis/interp.ml: Giantsan_ir Giantsan_memsim Giantsan_sanitizer Hashtbl List Plan
