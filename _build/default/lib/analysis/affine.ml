module Ast = Giantsan_ir.Ast

type linear = { coeff : int; rest : Ast.expr }

let rec const_eval (e : Ast.expr) =
  match e with
  | Ast.Int n -> Some n
  | Ast.Var _ | Ast.Load _ -> None
  | Ast.Bin (op, a, b) -> (
    match (const_eval a, const_eval b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Rem -> if y = 0 then None else Some (x mod y))
    | _ -> None)
  | Ast.Cmp (op, a, b) -> (
    match (const_eval a, const_eval b) with
    | Some x, Some y ->
      let r =
        match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | Ast.Ge -> x >= y
        | Ast.Eq -> x = y
        | Ast.Ne -> x <> y
      in
      Some (if r then 1 else 0)
    | _ -> None)

let rec simplify (e : Ast.expr) =
  match const_eval e with
  | Some n -> Ast.Int n
  | None -> (
    match e with
    | Ast.Bin (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match (op, a, b) with
      | Ast.Add, Ast.Int 0, x | Ast.Add, x, Ast.Int 0 -> x
      | Ast.Sub, x, Ast.Int 0 -> x
      | Ast.Mul, Ast.Int 1, x | Ast.Mul, x, Ast.Int 1 -> x
      | Ast.Mul, Ast.Int 0, _ | Ast.Mul, _, Ast.Int 0 -> Ast.Int 0
      | _ -> Ast.Bin (op, a, b))
    | Ast.Cmp (op, a, b) -> Ast.Cmp (op, simplify a, simplify b)
    | Ast.Int _ | Ast.Var _ | Ast.Load _ -> e)

let rec mentions_idx idx (e : Ast.expr) =
  match e with
  | Ast.Int _ -> false
  | Ast.Var v -> v = idx
  | Ast.Bin (_, a, b) | Ast.Cmp (_, a, b) ->
    mentions_idx idx a || mentions_idx idx b
  | Ast.Load acc -> acc.Ast.base = idx || mentions_idx idx acc.Ast.index

let rec linearize ~idx (e : Ast.expr) =
  match e with
  | Ast.Int n -> Some { coeff = 0; rest = Ast.Int n }
  | Ast.Var v ->
    if v = idx then Some { coeff = 1; rest = Ast.Int 0 }
    else Some { coeff = 0; rest = Ast.Var v }
  | Ast.Load _ -> None
  | Ast.Cmp _ -> if mentions_idx idx e then None else Some { coeff = 0; rest = e }
  | Ast.Bin (Ast.Add, a, b) ->
    Option.bind (linearize ~idx a) (fun la ->
        Option.map
          (fun lb ->
            {
              coeff = la.coeff + lb.coeff;
              rest = Ast.Bin (Ast.Add, la.rest, lb.rest);
            })
          (linearize ~idx b))
  | Ast.Bin (Ast.Sub, a, b) ->
    Option.bind (linearize ~idx a) (fun la ->
        Option.map
          (fun lb ->
            {
              coeff = la.coeff - lb.coeff;
              rest = Ast.Bin (Ast.Sub, la.rest, lb.rest);
            })
          (linearize ~idx b))
  | Ast.Bin (Ast.Mul, a, b) -> (
    match (linearize ~idx a, linearize ~idx b) with
    | Some la, Some lb -> (
      match (const_eval la.rest, const_eval lb.rest) with
      | Some ka, _ when la.coeff = 0 ->
        Some { coeff = ka * lb.coeff; rest = Ast.Bin (Ast.Mul, Ast.Int ka, lb.rest) }
      | _, Some kb when lb.coeff = 0 ->
        Some { coeff = la.coeff * kb; rest = Ast.Bin (Ast.Mul, la.rest, Ast.Int kb) }
      | _ ->
        if la.coeff = 0 && lb.coeff = 0 then
          Some { coeff = 0; rest = Ast.Bin (Ast.Mul, la.rest, lb.rest) }
        else None)
    | _ -> None)
  | Ast.Bin ((Ast.Div | Ast.Rem), _, _) ->
    if mentions_idx idx e then None else Some { coeff = 0; rest = e }

let is_invariant ~assigned (e : Ast.expr) =
  (not (Ast.expr_has_load e))
  && List.for_all (fun v -> not (List.mem v assigned)) (Ast.expr_vars e)

let byte_offset ~idx (acc : Ast.access) =
  Option.map
    (fun { coeff; rest } ->
      ( coeff * acc.Ast.scale,
        simplify
          (Ast.Bin
             ( Ast.Add,
               Ast.Bin (Ast.Mul, rest, Ast.Int acc.Ast.scale),
               Ast.Int acc.Ast.disp )) ))
    (linearize ~idx acc.Ast.index)
