(** Execute an IR program under a sanitizer according to an instrumentation
    plan.

    The interpreter plays the CPU: it evaluates expressions against a
    variable environment and a {!Giantsan_memsim.Arena}, fires the plan's
    checks (preheader region checks, cached accesses, plain accesses), and
    counts abstract "native operations" — the unit of work the cost model
    multiplies into simulated time.

    Error handling mirrors [halt_on_error=false]: a detected violation is
    recorded and the offending memory operation is skipped (the simulated
    process is not corrupted); an UNdetected violation really executes, and
    genuinely wild ones crash the run like a segfault would. *)

type exec_stats = {
  mutable x_plain : int;  (** accesses executed under a plain check *)
  mutable x_plain_fast : int;  (** ... of which the fast path sufficed *)
  mutable x_cached : int;  (** accesses executed under the cache *)
  mutable x_eliminated : int;  (** accesses executed with no check at all *)
  mutable x_unchecked : int;  (** native mode accesses *)
}

type outcome = {
  reports : Giantsan_sanitizer.Report.t list;  (** in program order *)
  ops : int;  (** abstract native operations executed *)
  stats : exec_stats;
  crashed : bool;  (** wild access escaped detection and left the arena *)
  out_of_memory : bool;
  fuel_exhausted : bool;
  final_env : (string * int) list;  (** variable snapshot, for tests *)
}

val run :
  ?fuel:int ->
  Giantsan_sanitizer.Sanitizer.t ->
  Plan.t ->
  Giantsan_ir.Ast.program ->
  outcome
(** [fuel] bounds executed statements+expressions (default 50 million). *)

val var : outcome -> string -> int
(** Final value of a variable. Raises [Not_found]. *)
