(** Differential scenario fuzzing.

    Generates random allocate/access/free scenarios that are memory-safe by
    construction, optionally with exactly one seeded violation, and runs
    them across sanitizers. The property suite uses this to check, over
    thousands of random heaps:

    - no tool ever reports on a violation-free scenario (no false
      positives — the paper's Table 3 claim);
    - every tool in the ASan family (ASan, ASan--, GiantSan) detects every
      seeded near-object violation;
    - GiantSan's verdicts dominate ASan's (anything instruction-level
      checking catches, anchored operation-level checking catches too);
    - seeded far-jump violations split the tools exactly as Table 5 says:
      GiantSan catches them, ASan at the default redzone does not. *)

type violation =
  | V_overflow  (** small out-of-bounds beyond the object end *)
  | V_underflow  (** access below the base *)
  | V_far_jump  (** lands in a neighbouring allocation (redzone bypass) *)
  | V_uaf  (** access through a freed (quarantined) pointer *)
  | V_double_free
  | V_mid_free  (** free of an interior pointer *)

val violation_name : violation -> string

val gen_clean : seed:int -> Scenario.t
(** A random safe scenario: allocations, in-bounds accesses/loops/regions,
    frees. *)

val gen_buggy : seed:int -> violation -> Scenario.t
(** A random scenario with exactly one seeded violation of the given kind,
    guaranteed to execute. *)
