(** A SoftBound-flavoured pointer-based checker, at scenario granularity.

    §2.1's compatibility argument: pointer-based tools attach bounds to
    pointers and propagate them through pointer arithmetic, so when a
    pointer round-trips through an integer cast or an uninstrumented
    library, the tag is lost and everything derived from that pointer is
    unprotected. Location-based tools read their metadata from the address
    itself and do not care.

    The model: each scenario slot carries a [tagged] flag. Allocation tags
    the slot with exact bounds; the {!Scenario.step} extension point
    {!launder} strips it (pointer -> int -> pointer). Accesses on tagged
    slots are checked against exact bounds (better than any redzone!);
    accesses on laundered slots are unchecked, because the tool has nothing
    to check against. *)

type t

val create : unit -> t

val launder : t -> slot:int -> unit
(** The slot's pointer goes through an integer cast / an uninstrumented
    callee: its tag is gone, and so is every pointer derived from it. *)

val run : t -> Scenario.t -> bool
(** Execute the scenario under the pointer-based model; [true] when a
    violation is detected. Laundering applied via [launder] persists for
    the given instance across the run (the scenario's own steps cannot
    launder; use {!run_with_laundering} for that). *)

val run_with_laundering : launder_slots:int list -> Scenario.t -> bool
(** Run a fresh instance with the given slots laundered as soon as they are
    allocated. *)
