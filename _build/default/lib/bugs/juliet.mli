(** A Juliet-Test-Suite-shaped corpus (Table 3).

    NIST's Juliet 1.3 cannot be vendored into this sealed reproduction, so
    we generate a corpus with the same structure: for each of the eight
    CWEs the paper evaluates, the same number of buggy cases as the paper's
    Total column (1439 stack overflows, 1504 heap overflows, ...), spanning
    the same flavours Juliet uses (single accesses, loop walks, region
    operations) over a deterministic spread of object sizes and overflow
    distances. Each buggy case has a non-buggy twin, mirroring Juliet's
    good/bad function pairs; a handful of cases per the paper's discussion
    are "latent" — labelled buggy in the suite but never performing the bad
    access at runtime (uninitialized-value guards), which no dynamic tool
    can or should flag. *)

val cwe_ids : int list
(** [121; 122; 124; 126; 127; 416; 476; 761], Table 3's rows. *)

val cwe_name : int -> string
val total : int -> int
(** Paper's Total column for the CWE. *)

val buggy_cases : int -> Scenario.t list
(** The corpus for one CWE; length = [total cwe]. Latent cases carry
    [sc_buggy = false]. *)

val clean_cases : int -> Scenario.t list
(** The non-buggy twins (same length). *)
