lib/bugs/scenario.mli: Giantsan_memsim Giantsan_sanitizer
