lib/bugs/softbound.ml: Hashtbl List Scenario
