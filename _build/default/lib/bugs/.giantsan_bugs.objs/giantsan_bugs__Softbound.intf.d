lib/bugs/softbound.mli: Scenario
