lib/bugs/cves.mli: Scenario
