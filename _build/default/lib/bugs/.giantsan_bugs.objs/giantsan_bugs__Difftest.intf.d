lib/bugs/difftest.mli: Scenario
