lib/bugs/scenario.ml: Giantsan_memsim Giantsan_sanitizer Hashtbl List Printf
