lib/bugs/juliet.mli: Scenario
