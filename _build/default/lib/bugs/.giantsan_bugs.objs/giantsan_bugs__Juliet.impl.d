lib/bugs/juliet.ml: Array Giantsan_memsim List Printf Scenario
