lib/bugs/magma.mli: Scenario
