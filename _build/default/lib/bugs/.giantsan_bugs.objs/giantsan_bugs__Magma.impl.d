lib/bugs/magma.ml: Giantsan_memsim List Printf Scenario
