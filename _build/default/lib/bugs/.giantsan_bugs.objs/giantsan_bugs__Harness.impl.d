lib/bugs/harness.ml: Giantsan_asan Giantsan_core Giantsan_lfp Giantsan_memsim List Scenario
