lib/bugs/harness.mli: Giantsan_sanitizer Scenario
