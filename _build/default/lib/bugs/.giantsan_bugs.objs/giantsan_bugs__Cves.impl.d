lib/bugs/cves.ml: Giantsan_memsim List Printf Scenario
