lib/bugs/difftest.ml: Array Giantsan_memsim Giantsan_util List Printf Scenario
