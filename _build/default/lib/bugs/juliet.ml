module Memobj = Giantsan_memsim.Memobj

let cwe_ids = [ 121; 122; 124; 126; 127; 416; 476; 761 ]

let cwe_name = function
  | 121 -> "Stack Buffer Overflow"
  | 122 -> "Heap Buffer Overflow"
  | 124 -> "Buffer Underwrite"
  | 126 -> "Buffer Overread"
  | 127 -> "Buffer Underread"
  | 416 -> "Use After Free"
  | 476 -> "NULL Pointer Dereference"
  | 761 -> "Free Pointer Not at Start of Buffer"
  | n -> Printf.sprintf "CWE-%d" n

(* Table 3's Total column. *)
let total = function
  | 121 -> 1439
  | 122 -> 1504
  | 124 -> 767
  | 126 -> 449
  | 127 -> 916
  | 416 -> 393
  | 476 -> 288
  | 761 -> 192
  | _ -> 0

(* latent cases: labelled buggy in the suite, no bad access at runtime *)
let latent = function 121 -> 4 | 126 -> 8 | _ -> 0

(* Sizes with comfortable rounding slack, so LFP's class-size blindness
   shows as in the paper; a sparse sprinkle of exact class sizes gives LFP
   its few detections. *)
let overflow_sizes = [| 65; 100; 130; 200; 263; 333; 500; 650; 1000; 1300 |]

(* overread sizes skew tighter to their classes: overreads often run far *)
let overread_sizes = [| 17; 20; 33; 48; 65; 80; 129; 200 |]

let id cwe i = Printf.sprintf "CWE%d_%05d" cwe i

type flavour = Single | Loop | RegionOp

let flavour_of i = match i mod 3 with 0 -> Single | 1 -> Loop | _ -> RegionOp

(* overflow-style CWEs use five flavours; the extra two start mid-buffer,
   like strncat-style tail writes and resume-from-offset scans *)
type flavour5 = F_single | F_loop | F_region | F_region_tail | F_loop_from

let flavour5_of i =
  match i mod 5 with
  | 0 -> F_single
  | 1 -> F_loop
  | 2 -> F_region
  | 3 -> F_region_tail
  | _ -> F_loop_from

(* One buggy overflow case: access [dist] bytes past the end. *)
let overflow_case ~cwe ~kind i =
  let exact_class = i mod 376 = 0 in
  let big_stack = kind = Memobj.Stack && i mod 29 = 0 in
  let size =
    if exact_class then 1024
    else if big_stack then 2048
    else overflow_sizes.(i mod Array.length overflow_sizes)
  in
  let dist = 1 + (i mod 6) in
  let steps =
    match flavour5_of i with
    | F_single ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access { slot = 0; off = size + dist - 1; width = 1 };
      ]
    | F_loop ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access_loop
          { slot = 0; from_ = 0; to_ = size + dist; step = 1; width = 1 };
      ]
    | F_region ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Region { slot = 0; off = 0; len = size + dist };
      ]
    | F_region_tail ->
      (* strncat-style: the tail write starts mid-buffer and runs past *)
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Region
          { slot = 0; off = size / 2; len = (size - (size / 2)) + dist };
      ]
    | F_loop_from ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access_loop
          { slot = 0; from_ = size / 2; to_ = size + dist; step = 1; width = 1 };
      ]
  in
  { Scenario.sc_id = id cwe i; sc_cwe = cwe; sc_buggy = true; sc_steps = steps }

let overflow_clean ~cwe ~kind i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  let steps =
    match flavour5_of i with
    | F_single ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access { slot = 0; off = size - 1; width = 1 };
      ]
    | F_loop ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access_loop { slot = 0; from_ = 0; to_ = size; step = 1; width = 1 };
      ]
    | F_region ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Region { slot = 0; off = 0; len = size };
      ]
    | F_region_tail ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Region { slot = 0; off = size / 2; len = size - (size / 2) };
      ]
    | F_loop_from ->
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access_loop
          { slot = 0; from_ = size / 2; to_ = size; step = 1; width = 1 };
      ]
  in
  {
    Scenario.sc_id = id cwe i ^ "_good";
    sc_cwe = cwe;
    sc_buggy = false;
    sc_steps = steps;
  }

(* a latent "buggy" case: the guard kept the bad index in bounds *)
let latent_case ~cwe ~kind i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  {
    Scenario.sc_id = id cwe i ^ "_latent";
    sc_cwe = cwe;
    sc_buggy = false;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind };
        Scenario.Access { slot = 0; off = size - 1; width = 1 };
      ];
  }

let underflow_case ~cwe i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  let dist = 1 + (i mod 12) in
  let steps =
    match flavour_of i with
    | Single ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = -dist; width = 1 };
      ]
    | Loop ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access_loop
          { slot = 0; from_ = 32; to_ = -dist - 1; step = -1; width = 1 };
      ]
    | RegionOp ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Region { slot = 0; off = -dist; len = dist + 8 };
      ]
  in
  { Scenario.sc_id = id cwe i; sc_cwe = cwe; sc_buggy = true; sc_steps = steps }

let underflow_clean ~cwe i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  {
    Scenario.sc_id = id cwe i ^ "_good";
    sc_cwe = cwe;
    sc_buggy = false;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = 0; width = 1 };
      ];
  }

let overread_case ~cwe i =
  let size = overread_sizes.(i mod Array.length overread_sizes) in
  let dist = 1 + (i * 7 mod 64) in
  let steps =
    match flavour_of i with
    | Single ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = size + dist - 1; width = 1 };
      ]
    | Loop ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access_loop
          { slot = 0; from_ = 0; to_ = size + dist; step = 1; width = 1 };
      ]
    | RegionOp ->
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Region { slot = 0; off = 0; len = size + dist };
      ]
  in
  { Scenario.sc_id = id cwe i; sc_cwe = cwe; sc_buggy = true; sc_steps = steps }

let uaf_case i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  let steps =
    [ Scenario.Alloc { slot = 0; size; kind = Memobj.Heap }; Scenario.Free_slot 0 ]
    @
    match flavour_of i with
    | Single -> [ Scenario.Access { slot = 0; off = i mod size; width = 1 } ]
    | Loop ->
      [
        Scenario.Access_loop
          { slot = 0; from_ = 0; to_ = min size 64; step = 8; width = 8 };
      ]
    | RegionOp -> [ Scenario.Region { slot = 0; off = 0; len = min size 64 } ]
  in
  { Scenario.sc_id = id 416 i; sc_cwe = 416; sc_buggy = true; sc_steps = steps }

let uaf_clean i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  {
    Scenario.sc_id = id 416 i ^ "_good";
    sc_cwe = 416;
    sc_buggy = false;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = 0; width = 8 };
        Scenario.Free_slot 0;
      ];
  }

let null_case i =
  {
    Scenario.sc_id = id 476 i;
    sc_cwe = 476;
    sc_buggy = true;
    sc_steps = [ Scenario.Access_null { off = i mod 56; width = 1 } ];
  }

let null_clean i =
  {
    Scenario.sc_id = id 476 i ^ "_good";
    sc_cwe = 476;
    sc_buggy = false;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size = 64; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = 0; width = 8 };
      ];
  }

let free_mid_case i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  {
    Scenario.sc_id = id 761 i;
    sc_cwe = 761;
    sc_buggy = true;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Free_at { slot = 0; delta = 8 * (1 + (i mod 4)) };
      ];
  }

let free_mid_clean i =
  let size = overflow_sizes.(i mod Array.length overflow_sizes) in
  {
    Scenario.sc_id = id 761 i ^ "_good";
    sc_cwe = 761;
    sc_buggy = false;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Free_at { slot = 0; delta = 0 };
      ];
  }

let buggy_cases cwe =
  let n = total cwe in
  let n_latent = latent cwe in
  let live = n - n_latent in
  let mk i =
    match cwe with
    | 121 -> overflow_case ~cwe ~kind:Memobj.Stack i
    | 122 -> overflow_case ~cwe ~kind:Memobj.Heap i
    | 124 -> underflow_case ~cwe i
    | 126 -> overread_case ~cwe i
    | 127 -> underflow_case ~cwe i
    | 416 -> uaf_case i
    | 476 -> null_case i
    | 761 -> free_mid_case i
    | _ -> invalid_arg "Juliet.buggy_cases: unknown CWE"
  in
  let kind = if cwe = 121 then Memobj.Stack else Memobj.Heap in
  List.init live mk
  @ List.init n_latent (fun i -> latent_case ~cwe ~kind (live + i))

let clean_cases cwe =
  let n = total cwe in
  let mk i =
    match cwe with
    | 121 -> overflow_clean ~cwe ~kind:Memobj.Stack i
    | 122 -> overflow_clean ~cwe ~kind:Memobj.Heap i
    | 124 | 127 -> underflow_clean ~cwe i
    | 126 -> overflow_clean ~cwe ~kind:Memobj.Heap i
    | 416 -> uaf_clean i
    | 476 -> null_clean i
    | 761 -> free_mid_clean i
    | _ -> invalid_arg "Juliet.clean_cases: unknown CWE"
  in
  List.init n mk
