module Memobj = Giantsan_memsim.Memobj

type t = {
  cve_program : string;
  cve_id : string;
  cve_class : string;
  cve_scenario : Scenario.t;
}

let heap_overflow ~id ~size ~dist =
  {
    Scenario.sc_id = id;
    sc_cwe = 0;
    sc_buggy = true;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = size + dist - 1; width = 1 };
      ];
  }

let stack_overflow ~id ~size ~dist =
  {
    Scenario.sc_id = id;
    sc_cwe = 0;
    sc_buggy = true;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Stack };
        Scenario.Access { slot = 0; off = size + dist - 1; width = 1 };
      ];
  }

let heap_overread ~id ~size ~dist =
  {
    Scenario.sc_id = id;
    sc_cwe = 0;
    sc_buggy = true;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access_loop
          { slot = 0; from_ = 0; to_ = size + dist; step = 1; width = 1 };
      ];
  }

let heap_underflow ~id ~size ~dist =
  {
    Scenario.sc_id = id;
    sc_cwe = 0;
    sc_buggy = true;
    sc_steps =
      [
        Scenario.Alloc { slot = 0; size; kind = Memobj.Heap };
        Scenario.Access { slot = 0; off = -dist; width = 1 };
      ];
  }

let mk program id class_ scenario =
  { cve_program = program; cve_id = id; cve_class = class_; cve_scenario = scenario }

let all =
  [
    (* heap overflow landing inside the 640-byte class of a 600-byte
       buffer: the first LFP miss in Table 4 *)
    mk "libzip" "CVE-2017-12858" "heap overflow (slack)"
      (heap_overflow ~id:"CVE-2017-12858" ~size:600 ~dist:10);
    mk "autotrace" "CVE-2017-9164" "heap overread"
      (heap_overread ~id:"CVE-2017-9164" ~size:100 ~dist:40);
    (* stack buffer below LFP's protection threshold: its second miss *)
    mk "autotrace" "CVE-2017-9165" "stack overflow (unprotected alloca)"
      (stack_overflow ~id:"CVE-2017-9165" ~size:128 ~dist:4);
  ]
  @ List.init 8 (fun k ->
        let id = Printf.sprintf "CVE-2017-%d" (9166 + k) in
        mk "autotrace" id "heap overflow"
          (heap_overflow ~id ~size:(100 + (17 * k)) ~dist:(40 + k)))
  @ List.init 4 (fun k ->
        let id = Printf.sprintf "CVE-2017-%d" (9204 + k) in
        mk "imageworsener" id "heap overread"
          (heap_overread ~id ~size:(64 + (8 * k)) ~dist:(30 + k)))
  @ [
      mk "lame" "CVE-2015-9101" "heap overflow"
        (heap_overflow ~id:"CVE-2015-9101" ~size:200 ~dist:60);
    ]
  @ List.init 2 (fun k ->
        let id = Printf.sprintf "CVE-2017-%d" (5976 + k) in
        mk "zziplib" id "heap overread"
          (heap_overread ~id ~size:(80 + (16 * k)) ~dist:(50 + k)))
  @ List.init 2 (fun k ->
        let id = Printf.sprintf "CVE-2016-%d" (10270 + k) in
        mk "libtiff" id "heap overread"
          (heap_overread ~id ~size:(128 + (32 * k)) ~dist:(64 + k)))
  @ [
      mk "libtiff" "CVE-2016-10095" "stack overflow (large)"
        (stack_overflow ~id:"CVE-2016-10095" ~size:2048 ~dist:600);
      mk "potrace" "CVE-2017-7263" "heap underflow"
        (heap_underflow ~id:"CVE-2017-7263" ~size:128 ~dist:4);
    ]
  @ List.init 2 (fun k ->
        let id = Printf.sprintf "CVE-2017-%d" (14407 + k) in
        mk "mp3gain" id "heap overflow"
          (heap_overflow ~id ~size:(150 + (50 * k)) ~dist:(80 + k)))
  @ [
      (* overflow fully inside the slack of a 650-byte buffer *)
      mk "mp3gain" "CVE-2017-14409" "heap overflow (slack)"
        (heap_overflow ~id:"CVE-2017-14409" ~size:650 ~dist:20);
    ]
