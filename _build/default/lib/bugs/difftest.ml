module Rng = Giantsan_util.Rng
module Memobj = Giantsan_memsim.Memobj

type violation =
  | V_overflow
  | V_underflow
  | V_far_jump
  | V_uaf
  | V_double_free
  | V_mid_free

let violation_name = function
  | V_overflow -> "overflow"
  | V_underflow -> "underflow"
  | V_far_jump -> "far-jump"
  | V_uaf -> "use-after-free"
  | V_double_free -> "double-free"
  | V_mid_free -> "mid-pointer-free"

(* Build a random safe scenario and remember which slots are live and how
   big they are, so violations can be seeded consistently. *)
type slot_state = { mutable size : int; mutable live : bool }

let widths = [| 1; 2; 4; 8 |]

let gen_steps ?(allow_free = true) rng n_slots n_steps =
  let slots = Array.init n_slots (fun _ -> { size = 0; live = false }) in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  (* allocate every slot up front so accesses always have a target *)
  Array.iteri
    (fun i s ->
      s.size <- Rng.int_in rng 16 300;
      s.live <- true;
      emit (Scenario.Alloc { slot = i; size = s.size; kind = Memobj.Heap }))
    slots;
  for _ = 1 to n_steps do
    let i = Rng.int rng n_slots in
    let s = slots.(i) in
    if s.live then begin
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        (* aligned in-bounds access *)
        let width = Rng.pick rng widths in
        let max_off = s.size - width in
        if max_off >= 0 then
          let off = Rng.int rng (max_off + 1) / width * width in
          emit (Scenario.Access { slot = i; off; width })
      | 4 | 5 ->
        (* in-bounds loop *)
        let hi = Rng.int_in rng 1 s.size in
        emit
          (Scenario.Access_loop
             { slot = i; from_ = 0; to_ = hi; step = 1; width = 1 })
      | 6 | 7 ->
        (* in-bounds region *)
        let len = Rng.int_in rng 1 s.size in
        emit (Scenario.Region { slot = i; off = 0; len })
      | 8 ->
        (* reverse in-bounds loop *)
        let hi = Rng.int_in rng 0 (s.size - 1) in
        emit
          (Scenario.Access_loop
             { slot = i; from_ = hi; to_ = -1; step = -1; width = 1 })
      | _ ->
        (* free roughly every tenth action, but always keep at least one
           slot alive (violations need a live victim) *)
        let live_count =
          Array.fold_left (fun n s -> if s.live then n + 1 else n) 0 slots
        in
        if allow_free && live_count > 1 then begin
          s.live <- false;
          emit (Scenario.Free_slot i)
        end
    end
  done;
  (slots, fun () -> List.rev !steps)

let gen_clean ~seed =
  let rng = Rng.create seed in
  let _, finish = gen_steps rng (Rng.int_in rng 1 4) (Rng.int_in rng 2 25) in
  {
    Scenario.sc_id = Printf.sprintf "diff_clean_%d" seed;
    sc_cwe = 0;
    sc_buggy = false;
    sc_steps = finish ();
  }

let gen_buggy ~seed violation =
  let rng = Rng.create (seed * 7 + 13) in
  let n_slots = Rng.int_in rng 2 4 in
  (* far-jump cases must control the heap layout around the victim: no
     frees, so the victim and its landing pad are bump-allocated
     back-to-back and the jump provably lands on addressable bytes *)
  let allow_free = violation <> V_far_jump in
  let slots, finish = gen_steps ~allow_free rng n_slots (Rng.int_in rng 2 20) in
  (* seed the violation on a still-live slot (there is always one: the
     generator frees at most ~1/10 of actions) *)
  let victim =
    let rec find i = if slots.(i).live then i else find ((i + 1) mod n_slots) in
    find (Rng.int rng n_slots)
  in
  let s = slots.(victim) in
  let tail =
    match violation with
    | V_overflow ->
      [ Scenario.Access { slot = victim; off = s.size + Rng.int rng 8; width = 1 } ]
    | V_underflow ->
      [ Scenario.Access { slot = victim; off = -(1 + Rng.int rng 12); width = 1 } ]
    | V_far_jump ->
      (* a fresh victim and its landing pad, bump-allocated back to back
         (no frees happened, so no block reuse): the jump clears the
         victim's redzone (<= 24 + 16 bytes) and lands inside the pad *)
      let vsize = 32 in
      [
        Scenario.Alloc { slot = victim + 100; size = vsize; kind = Memobj.Heap };
        Scenario.Alloc { slot = victim + 101; size = 2048; kind = Memobj.Heap };
        Scenario.Access
          { slot = victim + 100; off = vsize + 64 + Rng.int rng 300; width = 1 };
      ]
    | V_uaf ->
      [
        Scenario.Free_slot victim;
        Scenario.Access { slot = victim; off = Rng.int rng s.size; width = 1 };
      ]
    | V_double_free -> [ Scenario.Free_slot victim; Scenario.Free_slot victim ]
    | V_mid_free -> [ Scenario.Free_at { slot = victim; delta = 8 } ]
  in
  {
    Scenario.sc_id =
      Printf.sprintf "diff_%s_%d" (violation_name violation) seed;
    sc_cwe = 0;
    sc_buggy = true;
    sc_steps = finish () @ tail;
  }
