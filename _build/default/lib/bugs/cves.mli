(** Linux-Flaw-Project-shaped CVE scenarios (Table 4).

    Each row of Table 4 becomes one scenario whose memory-safety shape
    mirrors the real CVE's class (heap/stack overflow, overread,
    underflow). The three rows where the paper reports an LFP miss are the
    overflows that land inside LFP's rounding slack, or inside stack
    buffers LFP does not protect. *)

type t = {
  cve_program : string;
  cve_id : string;
  cve_class : string;  (** human-readable bug class *)
  cve_scenario : Scenario.t;
}

val all : t list
(** In Table 4's order; ranges like 9166~9173 are expanded. *)
