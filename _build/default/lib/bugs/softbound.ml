type slot_info = { sb_size : int; mutable sb_freed : bool; mutable sb_tagged : bool }
type t = { slots : (int, slot_info) Hashtbl.t; pre_laundered : (int, unit) Hashtbl.t }

let create () = { slots = Hashtbl.create 8; pre_laundered = Hashtbl.create 4 }

let launder t ~slot =
  Hashtbl.replace t.pre_laundered slot ();
  match Hashtbl.find_opt t.slots slot with
  | Some info -> info.sb_tagged <- false
  | None -> ()

(* A tagged access is checked against exact bounds; an untagged one is
   invisible. Temporal checking works through the tag too (CETS-style
   key/lock, abstracted to the freed flag). *)
let check_access t ~slot ~lo ~hi =
  match Hashtbl.find_opt t.slots slot with
  | None -> false
  | Some info ->
    info.sb_tagged && (info.sb_freed || lo < 0 || hi > info.sb_size)

let run t (sc : Scenario.t) =
  let detected = ref false in
  let note b = if b then detected := true in
  List.iter
    (fun step ->
      match step with
      | Scenario.Alloc { slot; size; _ } ->
        Hashtbl.replace t.slots slot
          {
            sb_size = size;
            sb_freed = false;
            sb_tagged = not (Hashtbl.mem t.pre_laundered slot);
          }
      | Scenario.Free_slot slot -> (
        match Hashtbl.find_opt t.slots slot with
        | Some info ->
          (* double free is caught only while the tag lives *)
          if info.sb_freed && info.sb_tagged then detected := true;
          info.sb_freed <- true
        | None -> ())
      | Scenario.Free_at { slot; delta } -> (
        match Hashtbl.find_opt t.slots slot with
        | Some info ->
          if info.sb_tagged && delta <> 0 then detected := true;
          if delta = 0 then info.sb_freed <- true
        | None -> ())
      | Scenario.Access { slot; off; width } ->
        note (check_access t ~slot ~lo:off ~hi:(off + width))
      | Scenario.Access_loop { slot; from_; to_; step; width } ->
        List.iter
          (fun off -> note (check_access t ~slot ~lo:off ~hi:(off + width)))
          (Scenario.loop_offsets ~from_ ~to_ ~step)
      | Scenario.Region { slot; off; len } ->
        if len > 0 then note (check_access t ~slot ~lo:off ~hi:(off + len))
      | Scenario.Access_null _ ->
        (* a null dereference faults regardless of tags *)
        detected := true)
    sc.Scenario.sc_steps;
  !detected

let run_with_laundering ~launder_slots sc =
  let t = create () in
  List.iter (fun slot -> launder t ~slot) launder_slots;
  run t sc
