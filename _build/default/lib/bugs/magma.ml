module Memobj = Giantsan_memsim.Memobj

type project = {
  mg_name : string;
  mg_loc : string;
  mg_short : int;
  mg_mid : int;
  mg_far : int;
  mg_latent : int;
}

let total p = p.mg_short + p.mg_mid + p.mg_far + p.mg_latent

(* Populations derived from Table 5's counts:
   php:      ASan(16)=1556, ASan(512)=1962, GiantSan=2019, total 3072
             => short 1556, mid 406, far 57, latent 1053 *)
let projects =
  [
    { mg_name = "php"; mg_loc = "1.3M"; mg_short = 1556; mg_mid = 406; mg_far = 57; mg_latent = 1053 };
    { mg_name = "libpng"; mg_loc = "86K"; mg_short = 1881; mg_mid = 0; mg_far = 0; mg_latent = 0 };
    { mg_name = "libtiff"; mg_loc = "91K"; mg_short = 9858; mg_mid = 0; mg_far = 0; mg_latent = 0 };
    { mg_name = "libxml2"; mg_loc = "284K"; mg_short = 30566; mg_mid = 0; mg_far = 0; mg_latent = 8 };
    { mg_name = "openssl"; mg_loc = "535K"; mg_short = 46; mg_mid = 0; mg_far = 0; mg_latent = 1463 };
    { mg_name = "sqlite3"; mg_loc = "367K"; mg_short = 1528; mg_mid = 0; mg_far = 0; mg_latent = 0 };
    { mg_name = "poppler"; mg_loc = "43K"; mg_short = 10201; mg_mid = 0; mg_far = 0; mg_latent = 346 };
  ]

(* One PoC: a small object, a large neighbour to land in, and an access at
   a distance decided by the population. *)
let case ~project ~kind ~i =
  let dist =
    match kind with
    | `Short -> 1 + (i mod 8)
    | `Mid -> 40 + (i mod 460)
    | `Far -> 1100 + (i mod 800)
    | `Latent -> 0
  in
  let steps =
    [
      Scenario.Alloc { slot = 0; size = 32; kind = Memobj.Heap };
      Scenario.Alloc { slot = 1; size = 2048; kind = Memobj.Heap };
    ]
    @
    match kind with
    | `Latent -> [ Scenario.Access { slot = 0; off = 0; width = 1 } ]
    | `Short | `Mid | `Far ->
      [ Scenario.Access { slot = 0; off = dist + 31; width = 1 } ]
  in
  let tag =
    match kind with
    | `Short -> "short"
    | `Mid -> "mid"
    | `Far -> "far"
    | `Latent -> "latent"
  in
  {
    Scenario.sc_id = Printf.sprintf "magma_%s_%s_%05d" project tag i;
    sc_cwe = 0;
    sc_buggy = kind <> `Latent;
    sc_steps = steps;
  }

let cases p =
  List.init p.mg_short (fun i -> case ~project:p.mg_name ~kind:`Short ~i)
  @ List.init p.mg_mid (fun i -> case ~project:p.mg_name ~kind:`Mid ~i)
  @ List.init p.mg_far (fun i -> case ~project:p.mg_name ~kind:`Far ~i)
  @ List.init p.mg_latent (fun i -> case ~project:p.mg_name ~kind:`Latent ~i)
