(** Magma-shaped redzone-bypass study (Table 5).

    Magma's fuzzing campaign produced tens of thousands of proof-of-concept
    inputs per project; what Table 5 measures is how many of them a
    sanitizer flags under a given redzone size. The decisive population is
    PHP's long-jump overflows (the CVE-2018-14883 PoCs): indices so large
    the access leaps over the redzone into the next allocation, invisible
    to instruction-level checks but caught by GiantSan's anchor-based
    region [\[base, access)].

    Each project is modelled as four scenario populations whose sizes are
    taken from Table 5:
    - {b short}: the access lands inside any redzone (everyone detects);
    - {b mid}: jump of ~40..500 bytes — lands in the neighbouring object
      under a 16-byte redzone (missed) but inside an enlarged 512-byte
      redzone (caught);
    - {b far}: jump of ~1100..1900 bytes — clears even the 512-byte
      redzone; only anchor-based checking sees it;
    - {b latent}: PoCs that do not trigger a memory-unsafe access at all
      (nobody should flag them). *)

type project = {
  mg_name : string;
  mg_loc : string;  (** the LoC annotation of Table 5, e.g. "1.3M" *)
  mg_short : int;
  mg_mid : int;
  mg_far : int;
  mg_latent : int;
}

val projects : project list
val total : project -> int
val cases : project -> Scenario.t list
(** Deterministic expansion; length = [total p]. *)
