(** The 24 SPEC CPU2017 projects of Table 2, as workload profiles.

    Mixes are derived from what each project is (interpreter, solver,
    ray-tracer, ...) and from the per-project optimization breakdown the
    paper reports in Figure 10 — e.g. [mcf]/[namd]/[lbm] are dominated by
    promotable or cacheable loop accesses ("more than 80% of the checks...
    eliminated or cached"), while [perlbench]/[gcc] carry much more
    irregular pointer traffic. The four projects LFP cannot build
    ([perlbench], [gcc], [parest], [imagick]) and the one where it dies at
    runtime ([602.gcc_s]) are marked. *)

val all : Specgen.profile list
(** Rate (5xx) then speed (6xx) projects, in Table 2's order. *)

val find : string -> Specgen.profile
(** Lookup by name (e.g. ["505.mcf_r"]). Raises [Not_found]. *)

val native_seconds : string -> float
(** The paper's native-execution wall time for the project (Table 2's
    "Native" column, in seconds). Used only to print a familiar-looking
    seconds column next to the simulated ratios. *)
