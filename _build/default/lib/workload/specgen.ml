module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Rng = Giantsan_util.Rng

type profile = {
  p_name : string;
  p_seed : int;
  p_phases : int;
  p_iters : int;
  p_compute : int;  (* arithmetic operations per loop iteration *)
  w_seq_loop : int;
  w_unbounded : int;
  w_random : int;
  w_const : int;
  w_memset : int;
  w_memcpy : int;
  w_reverse : int;
  w_chase : int;
  w_stackcall : int;
  p_alloc_churn : int;
  p_obj_size : int;
  p_stack_fraction : float;
  p_lfp_status : [ `Ok | `Compile_error | `Runtime_error ];
}

type phase_kind =
  | Seq_loop
  | Unbounded
  | Random
  | Const
  | Memset
  | Memcpy
  | Reverse
  | Chase
  | Stackcall

let arrays = [| "a0"; "a1"; "a2"; "a3" |]

(* a chain of [k] arithmetic nodes over the loop index: the surrounding
   compute that real kernels amortize their checks against *)
let compute_expr k idx =
  let rec go acc j =
    if j <= 0 then acc
    else if j mod 2 = 0 then go B.(acc + (v idx * i 3)) (j - 2)
    else go B.(acc + i 7) (j - 1)
  in
  go (B.v idx) k

(* a bounded counted loop with an affine subscript: the promotable shape *)
let seq_loop_phase b ~arr ~n ~write ~compute =
  let work = compute_expr compute "i" in
  let body =
    if write then
      [ B.store b ~base:arr ~index:(B.v "i") ~scale:8 ~value:work () ]
    else
      [
        B.assign "s"
          B.(v "s" + work + load b ~base:arr ~index:(v "i") ~scale:8 ());
      ]
  in
  [ B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i n) body ]

(* forward scan whose trip count the compiler cannot see: cacheable *)
let unbounded_phase b ~arr ~n ~compute =
  [
    B.assign "j" (B.i 0);
    B.while_ b ~cond:B.(v "j" < i n)
      [
        B.assign "s"
          B.(
            v "s"
            + compute_expr compute "j"
            + load b ~base:arr ~index:(v "j") ~scale:8 ());
        B.assign "j" B.(v "j" + i 1);
      ];
  ]

(* data-dependent subscripts: the y[j] of Figure 8 *)
let random_phase b ~arr ~n =
  [
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i n)
      [
        B.assign "t" (B.load b ~base:"idx" ~index:(B.v "i") ~scale:8 ());
        B.store b ~base:arr ~index:(B.v "t") ~scale:8 ~value:(B.v "i") ();
      ];
  ]

(* straight-line constant-offset accesses: structure fields *)
let const_phase b ~arr =
  [
    B.assign "s"
      B.(
        v "s"
        + load b ~base:arr ~index:(i 0) ~scale:8 ()
        + load b ~base:arr ~index:(i 1) ~scale:8 ()
        + load b ~base:arr ~index:(i 2) ~scale:8 ());
    B.store b ~base:arr ~index:(B.i 3) ~scale:8 ~value:(B.v "s") ();
  ]

let memset_phase b ~arr ~n =
  [ B.memset b ~dst:arr ~doff:(B.i 0) ~len:(B.i (8 * n)) ~value:(B.i 0) ]

let memcpy_phase b ~dst ~src ~n =
  [ B.memcpy b ~dst ~doff:(B.i 0) ~src ~soff:(B.i 0) ~len:(B.i (8 * n)) ]

(* reverse scan through a pointer anchored at the high end: every access is
   a negative offset off the anchor — the single-sided-summary weak spot *)
let reverse_phase b ~arr ~n =
  let top = 8 * (n - 1) in
  [
    B.assign "q" B.(v arr + i top);
    B.assign "j" (B.i 0);
    B.while_ b ~cond:B.(v "j" < i n)
      [
        B.assign "s"
          B.(v "s" + load b ~base:"q" ~index:(i 0 - v "j") ~scale:8 ());
        B.assign "j" B.(v "j" + i 1);
      ];
  ]

(* interpreter-style dispatch: the pointer is re-loaded from a pointer
   table each iteration, so the dependent accesses defeat both promotion
   and the history cache — every tool checks each one. The second loop
   re-derives the array base each iteration (as across opaque calls) and
   pokes deep into the object: for non-power-of-two objects the offset
   exceeds the base segment's folding coverage, forcing GiantSan's slow
   path (the Figure 10 "FullCheck" population). *)
let chase_phase b ~arr ~n ~obj_elems =
  let half = n / 2 in
  let deep = obj_elems - 50 in
  [
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i half)
      [
        B.assign "chq" (B.load b ~base:"ptrs" ~index:(B.v "i") ~scale:8 ());
        B.assign "s" B.(v "s" + load b ~base:"chq" ~index:(i 0) ~scale:8 ());
        B.store b ~base:"chq" ~index:(B.i 1) ~scale:8 ~value:(B.v "s") ();
      ];
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i (n - half))
      [
        B.assign "chq" (B.v arr);
        B.assign "s" B.(v "s" + load b ~base:"chq" ~index:(i deep) ~scale:8 ());
      ];
  ]

(* call-heavy code with a stack buffer per frame: each call allocas,
   scribbles with a non-affine subscript (cacheable but not promotable),
   and returns. ASan/GiantSan poison and unpoison the frame every call;
   LFP leaves small allocas unprotected. *)
let stack_helper b =
  B.func "stack_work" ~params:[ "m" ]
    [
      B.alloca "sbuf" (B.i 512);
      B.for_ b ~idx:"k" ~lo:(B.i 0) ~hi:(B.v "m")
        [
          B.store b ~base:"sbuf" ~index:B.((v "k" * v "k") % i 64) ~scale:8
            ~value:(B.v "k") ();
        ];
      B.return_ (Some (B.load b ~base:"sbuf" ~index:(B.i 0) ~scale:8 ()));
    ]

let stackcall_phase b ~n =
  [
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i (n / 8))
      [ B.call ~dst:"r" "stack_work" [ B.i 16 ] ];
  ]

let churn_phase b ~bytes ~count =
  List.concat
    (List.init count (fun k ->
         let v = Printf.sprintf "tmp%d" k in
         [
           B.malloc v (B.i bytes);
           B.store b ~base:v ~index:(B.i 0) ~scale:8 ~value:(B.i 1) ();
           B.free (B.v v);
         ]))

let generate p =
  let b = B.create () in
  let rng = Rng.create p.p_seed in
  let n = p.p_obj_size in
  let half_bytes = 4 * n in
  let preamble =
    List.concat_map
      (fun arr -> [ B.malloc arr (B.i (8 * n)) ])
      (Array.to_list arrays)
    @ [
        B.malloc "idx" (B.i (8 * n));
        B.malloc "ptrs" (B.i (8 * n));
        B.assign "s" (B.i 0);
        (* fill the index array with a fixed pseudo-random permutation-ish
           pattern, in bounds by construction; only the entries the phases
           will read are needed *)
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i (min n p.p_iters))
          [
            B.store b ~base:"idx" ~index:(B.v "i") ~scale:8
              ~value:B.(((v "i" * i 17) + i 5) % i n)
              ();
            (* the pointer table: interior pointers into a0 at varying
               8-aligned offsets (always >= 16 bytes from the end) *)
            B.store b ~base:"ptrs" ~index:(B.v "i") ~scale:8
              ~value:B.(v "a0" + ((v "i" * i 88) % i half_bytes))
              ();
          ];
      ]
  in
  let weights =
    [
      (p.w_seq_loop, Seq_loop);
      (p.w_unbounded, Unbounded);
      (p.w_random, Random);
      (p.w_const, Const);
      (p.w_memset, Memset);
      (p.w_memcpy, Memcpy);
      (p.w_reverse, Reverse);
      (p.w_chase, Chase);
      (p.w_stackcall, Stackcall);
    ]
  in
  let phase () =
    let arr = Rng.pick rng arrays in
    let iters = min n p.p_iters in
    let stmts =
      match Rng.weighted rng weights with
      | Seq_loop ->
        seq_loop_phase b ~arr ~n:iters ~write:(Rng.bool rng)
          ~compute:p.p_compute
      | Unbounded -> unbounded_phase b ~arr ~n:iters ~compute:p.p_compute
      | Random -> random_phase b ~arr ~n:iters
      | Const ->
        (* a burst of straight-line work so the phase is not trivially
           cheaper than the loop phases *)
        List.concat (List.init (max 1 (iters / 8)) (fun _ -> const_phase b ~arr))
      | Memset -> memset_phase b ~arr ~n:iters
      | Memcpy ->
        let src = Rng.pick rng arrays in
        if src = arr then memset_phase b ~arr ~n:iters
        else memcpy_phase b ~dst:arr ~src ~n:iters
      | Reverse -> reverse_phase b ~arr ~n:iters
      | Chase -> chase_phase b ~arr ~n:iters ~obj_elems:n
      | Stackcall -> stackcall_phase b ~n:iters
    in
    let churn =
      if p.p_alloc_churn > 0 then
        churn_phase b ~bytes:(8 * Rng.int_in rng 2 32) ~count:p.p_alloc_churn
      else []
    in
    stmts @ churn
  in
  let body = preamble @ List.concat (List.init p.p_phases (fun _ -> phase ())) in
  let funcs = if p.w_stackcall > 0 then [ stack_helper b ] else [] in
  B.program ~funcs p.p_name body
