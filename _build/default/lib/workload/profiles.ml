(* Behavioural mixes for the 24 Table 2 projects. The weights draw on what
   each program does and on Figure 10's per-project optimization breakdown;
   [calib] in comments gives the paper's (GiantSan/ASan/ASan--/LFP) ratios
   the profile should roughly land near. *)

let mk name seed ~seq ~unb ~rnd ~cst ~mst ~mcp ~rev ~chs ~stk ~cmp ~churn ~obj
    ~stack ~lfp =
  {
    Specgen.p_name = name;
    p_seed = seed;
    p_phases = 12;
    p_iters = 512;
    p_compute = cmp;
    w_seq_loop = seq;
    w_unbounded = unb;
    w_random = rnd;
    w_const = cst;
    w_memset = mst;
    w_memcpy = mcp;
    w_reverse = rev;
    w_chase = chs;
    w_stackcall = stk;
    p_alloc_churn = churn;
    p_obj_size = obj;
    p_stack_fraction = stack;
    p_lfp_status = lfp;
  }

let all =
  [
    (* calib 200/230/218/CE: interpreter, irregular pointer traffic *)
    mk "500.perlbench_r" 101 ~seq:10 ~unb:25 ~rnd:30 ~cst:20 ~mst:5 ~mcp:5
      ~rev:5 ~chs:30 ~stk:8 ~cmp:2 ~churn:3 ~obj:1200 ~stack:0.3 ~lfp:`Compile_error;
    (* calib 279/331/285/CE: compiler, heaviest irregular mix *)
    mk "502.gcc_r" 102 ~seq:5 ~unb:25 ~rnd:40 ~cst:15 ~mst:5 ~mcp:5 ~rev:5 ~chs:35 ~stk:8 ~cmp:2
      ~churn:5 ~obj:1200 ~stack:0.35 ~lfp:`Compile_error;
    (* calib 128/167/138/151: pointer-chasing solver, mostly cacheable *)
    mk "505.mcf_r" 103 ~seq:30 ~unb:30 ~rnd:30 ~cst:5 ~mst:0 ~mcp:0 ~rev:0 ~chs:10 ~stk:0 ~cmp:6
      ~churn:0 ~obj:2400 ~stack:0.1 ~lfp:`Ok;
    (* calib 107/225/162/229: molecular dynamics, dense numeric loops *)
    mk "508.namd_r" 104 ~seq:70 ~unb:15 ~rnd:5 ~cst:5 ~mst:5 ~mcp:0 ~rev:0 ~chs:0 ~stk:3 ~cmp:14
      ~churn:0 ~obj:2400 ~stack:0.4 ~lfp:`Ok;
    (* calib 136/306/206/CE: finite elements, numeric + some indirection *)
    mk "510.parest_r" 105 ~seq:55 ~unb:15 ~rnd:25 ~cst:5 ~mst:0 ~mcp:0 ~rev:0 ~chs:5 ~stk:4 ~cmp:8
      ~churn:1 ~obj:2400 ~stack:0.2 ~lfp:`Compile_error;
    (* calib 251/377/290/288: ray tracer, heavy mixed traffic *)
    mk "511.povray_r" 106 ~seq:10 ~unb:30 ~rnd:35 ~cst:15 ~mst:0 ~mcp:5 ~rev:5 ~chs:20 ~stk:10 ~cmp:2
      ~churn:3 ~obj:1200 ~stack:0.3 ~lfp:`Ok;
    (* calib 101/157/126/201: lattice Boltzmann, pure streaming loops *)
    mk "519.lbm_r" 107 ~seq:85 ~unb:5 ~rnd:0 ~cst:0 ~mst:10 ~mcp:0 ~rev:0 ~chs:0 ~stk:0 ~cmp:20
      ~churn:0 ~obj:4800 ~stack:0.35 ~lfp:`Ok;
    (* calib 197/294/254/155: discrete events, churn-dominated *)
    mk "520.omnetpp_r" 108 ~seq:10 ~unb:20 ~rnd:30 ~cst:20 ~mst:5 ~mcp:5
      ~rev:0 ~chs:20 ~stk:4 ~cmp:3 ~churn:10 ~obj:600 ~stack:0.05 ~lfp:`Ok;
    (* calib 137/181/147/102: XML transforms, strings + memcpy + churn *)
    mk "523.xalancbmk_r" 109 ~seq:25 ~unb:15 ~rnd:10 ~cst:15 ~mst:10 ~mcp:25
      ~rev:0 ~chs:10 ~stk:2 ~cmp:4 ~churn:8 ~obj:1200 ~stack:0.05 ~lfp:`Ok;
    (* calib 141/203/153/206: chess search, tables + random probes *)
    mk "531.deepsjeng_r" 110 ~seq:20 ~unb:15 ~rnd:35 ~cst:25 ~mst:5 ~mcp:0
      ~rev:0 ~chs:15 ~stk:10 ~cmp:4 ~churn:1 ~obj:1200 ~stack:0.35 ~lfp:`Ok;
    (* calib 136/186/173/CE: image ops, kernels + memset *)
    mk "538.imagick_r" 111 ~seq:50 ~unb:10 ~rnd:15 ~cst:5 ~mst:20 ~mcp:0
      ~rev:0 ~chs:5 ~stk:2 ~cmp:10 ~churn:1 ~obj:2400 ~stack:0.15 ~lfp:`Compile_error;
    (* calib 146/205/177/199: MCTS, random playouts *)
    mk "541.leela_r" 112 ~seq:25 ~unb:20 ~rnd:35 ~cst:10 ~mst:5 ~mcp:5 ~rev:0 ~chs:15 ~stk:8 ~cmp:4
      ~churn:2 ~obj:1200 ~stack:0.3 ~lfp:`Ok;
    (* calib 115/153/135/159: compression, scanning loops *)
    mk "557.xz_r" 113 ~seq:30 ~unb:40 ~rnd:10 ~cst:5 ~mst:0 ~mcp:15 ~rev:0 ~chs:5 ~stk:6 ~cmp:8
      ~churn:0 ~obj:4800 ~stack:0.25 ~lfp:`Ok;
    (* calib 207/319/231/CE *)
    mk "600.perlbench_s" 114 ~seq:10 ~unb:25 ~rnd:32 ~cst:18 ~mst:5 ~mcp:5
      ~rev:5 ~chs:32 ~stk:8 ~cmp:2 ~churn:3 ~obj:1200 ~stack:0.3 ~lfp:`Compile_error;
    (* calib 127/282/153/RE: speed-run gcc with a lighter input mix *)
    mk "602.gcc_s" 115 ~seq:35 ~unb:20 ~rnd:30 ~cst:10 ~mst:0 ~mcp:5 ~rev:0 ~chs:18 ~stk:8 ~cmp:6
      ~churn:2 ~obj:2400 ~stack:0.3 ~lfp:`Runtime_error;
    (* calib 135/162/153/141 *)
    mk "605.mcf_s" 116 ~seq:28 ~unb:32 ~rnd:30 ~cst:5 ~mst:0 ~mcp:0 ~rev:0 ~chs:10 ~stk:0 ~cmp:6
      ~churn:0 ~obj:2400 ~stack:0.1 ~lfp:`Ok;
    (* calib 106/123/110/97 *)
    mk "619.lbm_s" 117 ~seq:88 ~unb:4 ~rnd:0 ~cst:0 ~mst:8 ~mcp:0 ~rev:0 ~chs:0 ~stk:0 ~cmp:22
      ~churn:0 ~obj:4800 ~stack:0.1 ~lfp:`Ok;
    (* calib 212/323/270/160 *)
    mk "620.omnetpp_s" 118 ~seq:8 ~unb:20 ~rnd:32 ~cst:20 ~mst:5 ~mcp:5 ~rev:0 ~chs:22 ~stk:4 ~cmp:3
      ~churn:10 ~obj:600 ~stack:0.05 ~lfp:`Ok;
    (* calib 135/180/156/105 *)
    mk "623.xalancbmk_s" 119 ~seq:25 ~unb:15 ~rnd:10 ~cst:15 ~mst:10 ~mcp:25
      ~rev:0 ~chs:10 ~stk:2 ~cmp:4 ~churn:8 ~obj:1200 ~stack:0.05 ~lfp:`Ok;
    (* calib 144/216/156/203 *)
    mk "631.deepsjeng_s" 120 ~seq:20 ~unb:15 ~rnd:35 ~cst:25 ~mst:5 ~mcp:0
      ~rev:0 ~chs:15 ~stk:10 ~cmp:4 ~churn:1 ~obj:1200 ~stack:0.35 ~lfp:`Ok;
    (* calib 124/177/202/170 *)
    mk "638.imagick_s" 121 ~seq:55 ~unb:10 ~rnd:12 ~cst:3 ~mst:20 ~mcp:0
      ~rev:0 ~chs:4 ~stk:2 ~cmp:12 ~churn:1 ~obj:2400 ~stack:0.15 ~lfp:`Ok;
    (* calib 148/230/181/200 *)
    mk "641.leela_s" 122 ~seq:22 ~unb:20 ~rnd:38 ~cst:10 ~mst:5 ~mcp:5 ~rev:0 ~chs:16 ~stk:8 ~cmp:4
      ~churn:2 ~obj:1200 ~stack:0.3 ~lfp:`Ok;
    (* calib 113/160/124/122: molecular modelling, numeric *)
    mk "644.nab_s" 123 ~seq:60 ~unb:20 ~rnd:10 ~cst:5 ~mst:5 ~mcp:0 ~rev:0 ~chs:0 ~stk:0 ~cmp:14
      ~churn:0 ~obj:2400 ~stack:0.15 ~lfp:`Ok;
    (* calib 120/152/154/142 *)
    mk "657.xz_s" 124 ~seq:28 ~unb:42 ~rnd:10 ~cst:5 ~mst:0 ~mcp:15 ~rev:0 ~chs:5 ~stk:6 ~cmp:8
      ~churn:0 ~obj:4800 ~stack:0.25 ~lfp:`Ok;
  ]

let find name =
  List.find (fun (p : Specgen.profile) -> p.Specgen.p_name = name) all

(* Table 2's Native column, for a familiar seconds display. *)
let native_seconds_tbl =
  [
    ("500.perlbench_r", 358.0); ("502.gcc_r", 256.0); ("505.mcf_r", 399.0);
    ("508.namd_r", 295.0); ("510.parest_r", 430.0); ("511.povray_r", 426.0);
    ("519.lbm_r", 275.0); ("520.omnetpp_r", 343.0); ("523.xalancbmk_r", 408.0);
    ("531.deepsjeng_r", 289.0); ("538.imagick_r", 499.0); ("541.leela_r", 456.0);
    ("557.xz_r", 362.0); ("600.perlbench_s", 349.0); ("602.gcc_s", 476.0);
    ("605.mcf_s", 788.0); ("619.lbm_s", 551.0); ("620.omnetpp_s", 323.0);
    ("623.xalancbmk_s", 396.0); ("631.deepsjeng_s", 347.0);
    ("638.imagick_s", 2119.0); ("641.leela_s", 452.0); ("644.nab_s", 1198.0);
    ("657.xz_s", 871.0);
  ]

let native_seconds name = List.assoc name native_seconds_tbl
