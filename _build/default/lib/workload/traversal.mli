(** Buffer-traversal kernels for the §5.4 limitation study (Figure 11).

    Three patterns over one buffer, written directly against the sanitizer
    API (no interpreter) so they can be timed for real with Bechamel:

    - {b forward}: ascending scan through the history cache — GiantSan's
      quasi-bound converges in O(log n) updates and everything else is a
      compare;
    - {b random}: uniform random probes through the cache — same
      convergence, which is where GiantSan wins biggest over ASan;
    - {b reverse}: descending scan through a pointer anchored at the high
      end, as Perl-style string code does. Every access sits below the
      anchor, the summary is single-sided, so GiantSan pays a fresh
      underflow region check per access — its documented weak spot, slower
      than ASan.

    Each kernel performs the same data loads, so Native / ASan / GiantSan
    runs differ only in check work. *)

type result = {
  t_checksum : int;  (** sum of loaded bytes: keeps the work honest *)
  t_shadow_loads : int;
  t_reports : int;
}

val forward :
  Giantsan_sanitizer.Sanitizer.t -> base:int -> size:int -> result
(** One ascending pass of 8-byte loads over [\[base, base+size)]. *)

val random :
  Giantsan_sanitizer.Sanitizer.t ->
  seed:int -> base:int -> size:int -> result
(** [size/8] probes at uniformly random 8-aligned offsets. *)

val reverse :
  Giantsan_sanitizer.Sanitizer.t -> base:int -> size:int -> result
(** One descending pass, anchored at the last element. *)

val reverse_prescan :
  Giantsan_sanitizer.Sanitizer.t -> base:int -> size:int -> result
(** The §5.4 mitigation: verify the whole span with one region check
    before the loop (O(1) for GiantSan, linear for ASan), then scan
    downward with no per-access metadata. Equivalent protection for a
    loop known to stay within [\[base, base+size)]. *)

val prepare :
  Giantsan_sanitizer.Sanitizer.t -> size:int -> int
(** Allocate and zero-fill a buffer; returns its base. *)
