(** Synthetic SPEC-like workload generator.

    Each SPEC CPU2017 project in Table 2 is modelled as a {!profile}: a
    behavioural mix (bounded affine loops, unbounded loops, data-dependent
    subscripts, straight-line field accesses, [memset]/[memcpy] traffic,
    reverse traversals, allocation churn) with a deterministic seed. The
    generator expands a profile into one IR program; the same program is
    then executed under every sanitizer configuration.

    The mixes are chosen so each profile exercises the check-site
    distribution the paper reports for that project in Figure 10 (e.g.
    [lbm] is almost entirely promotable array loops, [perlbench] is
    interpreter-style pointer chasing) — the overhead *spread* of Table 2
    then falls out of the measured event counts. *)

type profile = {
  p_name : string;
  p_seed : int;
  p_phases : int;  (** number of workload phases to generate *)
  p_iters : int;  (** iterations per loop phase *)
  p_compute : int;
      (** arithmetic operations per loop iteration: the compute density
          real kernels amortize their checks against (high for numeric
          codes like lbm/namd, low for pointer-chasing codes) *)
  (* phase mix, integer weights *)
  w_seq_loop : int;  (** bounded loop, affine subscript (promotable) *)
  w_unbounded : int;  (** while-loop forward scan (cacheable) *)
  w_random : int;  (** data-dependent subscripts (cacheable, uncached
                       tools pay per access) *)
  w_const : int;  (** straight-line constant-offset accesses (mergeable) *)
  w_memset : int;
  w_memcpy : int;
  w_reverse : int;  (** reverse scan through a moving high anchor — the
                        §5.4 weak spot *)
  w_chase : int;
      (** interpreter-style pointer chasing: the base pointer itself is
          loaded from memory each iteration, so no promotion and no cache
          applies to the dependent accesses — every tool pays per access *)
  w_stackcall : int;
      (** call-heavy phases: each call allocates (and on return reclaims) a
          stack buffer, so shadow poisoning churns with the call rate *)
  p_alloc_churn : int;  (** malloc/free pairs per phase (0 = none) *)
  p_obj_size : int;  (** base object size in elements *)
  p_stack_fraction : float;  (** share of stack-ish work (LFP penalty) *)
  p_lfp_status : [ `Ok | `Compile_error | `Runtime_error ];
      (** Table 2 marks four projects CE and one RE for LFP *)
}

val generate : profile -> Giantsan_ir.Ast.program
(** Deterministically expand the profile into a program. *)
