module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer

type result = { t_checksum : int; t_shadow_loads : int; t_reports : int }

let prepare (san : San.t) ~size =
  let obj = san.San.malloc size in
  let arena = Memsim.Heap.arena san.San.heap in
  Memsim.Arena.fill arena ~addr:obj.Memsim.Memobj.base ~len:size 1;
  obj.Memsim.Memobj.base

let finish (san : San.t) ~loads0 ~reports ~checksum =
  {
    t_checksum = checksum;
    t_shadow_loads = san.San.shadow_loads () - loads0;
    t_reports = reports;
  }

let forward (san : San.t) ~base ~size =
  let arena = Memsim.Heap.arena san.San.heap in
  let loads0 = san.San.shadow_loads () in
  let cache = san.San.new_cache ~base in
  let sum = ref 0 and reports = ref 0 in
  let n = size / 8 in
  for j = 0 to n - 1 do
    (match san.San.cached_access cache ~off:(8 * j) ~width:8 with
    | None -> ()
    | Some _ -> incr reports);
    sum := !sum + Memsim.Arena.load arena ~addr:(base + (8 * j)) ~width:8
  done;
  (match san.San.flush_cache cache with None -> () | Some _ -> incr reports);
  finish san ~loads0 ~reports:!reports ~checksum:!sum

let random (san : San.t) ~seed ~base ~size =
  let arena = Memsim.Heap.arena san.San.heap in
  let rng = Giantsan_util.Rng.create seed in
  let loads0 = san.San.shadow_loads () in
  let cache = san.San.new_cache ~base in
  let sum = ref 0 and reports = ref 0 in
  let n = size / 8 in
  for _ = 1 to n do
    let j = Giantsan_util.Rng.int rng n in
    (match san.San.cached_access cache ~off:(8 * j) ~width:8 with
    | None -> ()
    | Some _ -> incr reports);
    sum := !sum + Memsim.Arena.load arena ~addr:(base + (8 * j)) ~width:8
  done;
  (match san.San.flush_cache cache with None -> () | Some _ -> incr reports);
  finish san ~loads0 ~reports:!reports ~checksum:!sum

let reverse_prescan (san : San.t) ~base ~size =
  let arena = Memsim.Heap.arena san.San.heap in
  let loads0 = san.San.shadow_loads () in
  let reports = ref 0 in
  (match san.San.check_region ~lo:base ~hi:(base + size) with
  | None -> ()
  | Some _ -> incr reports);
  let sum = ref 0 in
  let n = size / 8 in
  if !reports = 0 then
    for j = n - 1 downto 0 do
      sum := !sum + Memsim.Arena.load arena ~addr:(base + (8 * j)) ~width:8
    done;
  finish san ~loads0 ~reports:!reports ~checksum:!sum

let reverse (san : San.t) ~base ~size =
  let arena = Memsim.Heap.arena san.San.heap in
  let loads0 = san.San.shadow_loads () in
  let n = size / 8 in
  (* the anchor is the first dereferenced (highest) address; all further
     accesses are negative offsets below it *)
  let anchor = base + (8 * (n - 1)) in
  let cache = san.San.new_cache ~base:anchor in
  let sum = ref 0 and reports = ref 0 in
  for j = 0 to n - 1 do
    (match san.San.cached_access cache ~off:(-8 * j) ~width:8 with
    | None -> ()
    | Some _ -> incr reports);
    sum := !sum + Memsim.Arena.load arena ~addr:(anchor - (8 * j)) ~width:8
  done;
  (match san.San.flush_cache cache with None -> () | Some _ -> incr reports);
  finish san ~loads0 ~reports:!reports ~checksum:!sum
