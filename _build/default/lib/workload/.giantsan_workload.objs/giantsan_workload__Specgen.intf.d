lib/workload/specgen.mli: Giantsan_ir
