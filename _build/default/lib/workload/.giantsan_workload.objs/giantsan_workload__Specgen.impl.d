lib/workload/specgen.ml: Array Giantsan_ir Giantsan_util List Printf
