lib/workload/cost_model.mli: Giantsan_sanitizer
