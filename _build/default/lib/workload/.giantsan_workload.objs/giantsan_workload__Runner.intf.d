lib/workload/runner.mli: Giantsan_analysis Giantsan_memsim Giantsan_sanitizer Specgen
