lib/workload/traversal.mli: Giantsan_sanitizer
