lib/workload/profiles.ml: List Specgen
