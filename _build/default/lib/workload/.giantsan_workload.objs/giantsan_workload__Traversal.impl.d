lib/workload/traversal.ml: Giantsan_memsim Giantsan_sanitizer Giantsan_util
