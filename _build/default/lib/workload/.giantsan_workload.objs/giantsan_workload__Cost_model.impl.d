lib/workload/cost_model.ml: Giantsan_sanitizer
