lib/workload/profiles.mli: Specgen
