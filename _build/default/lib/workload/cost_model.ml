module Counters = Giantsan_sanitizer.Counters

type weights = {
  w_op : float;
  w_shadow_load : float;
  w_instr_check : float;
  w_region_check : float;
  w_slow_check : float;
  w_cache_hit : float;
  w_cache_update : float;
  w_underflow : float;
  w_bounds_check : float;
  w_malloc : float;
  w_free : float;
  w_malloc_sanitized : float;
  w_poison_segment : float;
  w_lfp_stack_op : float;
}

let default =
  {
    w_op = 1.0;
    w_shadow_load = 3.6;
    w_instr_check = 2.4;
    w_region_check = 3.6;
    w_slow_check = 2.8;
    w_cache_hit = 2.6;
    w_cache_update = 3.8;
    w_underflow = 4.4;
    w_bounds_check = 3.6;
    w_malloc = 30.0;
    w_free = 20.0;
    w_malloc_sanitized = 45.0;
    w_poison_segment = 0.55;
    w_lfp_stack_op = 0.33;
  }

type input = {
  ops : int;
  shadow_loads : int;
  counters : Counters.t;
  is_sanitized : bool;
  is_lfp : bool;
  stack_fraction : float;
}

let simulated_ns ?(weights = default) i =
  let f = float_of_int in
  let c = i.counters in
  let base =
    (weights.w_op *. f i.ops)
    +. (weights.w_malloc *. f c.Counters.mallocs)
    +. (weights.w_free *. f c.Counters.frees)
  in
  let sanitizer =
    if not i.is_sanitized then 0.0
    else
      (weights.w_shadow_load *. f i.shadow_loads)
      +. (weights.w_instr_check *. f c.Counters.instr_checks)
      +. (weights.w_region_check *. f c.Counters.region_checks)
      +. (weights.w_slow_check *. f c.Counters.slow_checks)
      +. (weights.w_cache_hit *. f c.Counters.cache_hits)
      +. (weights.w_cache_update *. f c.Counters.cache_updates)
      +. (weights.w_underflow *. f c.Counters.underflow_checks)
      +. (weights.w_bounds_check *. f c.Counters.bounds_checks)
      +. (weights.w_malloc_sanitized *. f c.Counters.mallocs)
      +. (weights.w_poison_segment *. f c.Counters.poison_segments)
  in
  let lfp_extra =
    if i.is_lfp then weights.w_lfp_stack_op *. i.stack_fraction *. f i.ops
    else 0.0
  in
  base +. sanitizer +. lfp_extra
