lib/report/corpus_tools.ml: Buffer Giantsan_bugs Giantsan_util List Printf
