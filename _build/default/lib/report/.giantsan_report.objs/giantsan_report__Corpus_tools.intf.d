lib/report/corpus_tools.mli:
