lib/report/experiments.mli:
