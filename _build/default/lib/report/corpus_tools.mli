(** CLI-facing corpus utilities: differential fuzzing runs and corpus
    ground-truth validation. *)

val fuzz : seed:int -> count:int -> string
(** Run [count] random clean scenarios and [count] scenarios per violation
    kind through all four tools plus the SoftBound-flavoured checker;
    render a detection matrix and a list of anomalies (false positives, or
    ASan-family misses of near-object violations). An empty anomaly list is
    the expected steady state. *)

val validate : unit -> string
(** Re-validate the ground-truth labels of every generated corpus (Juliet,
    Magma, CVEs, fuzzer smoke samples) and report. *)
