module Table = Giantsan_util.Table
module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Harness = Giantsan_bugs.Harness
module Softbound = Giantsan_bugs.Softbound
module Juliet = Giantsan_bugs.Juliet
module Magma = Giantsan_bugs.Magma
module Cves = Giantsan_bugs.Cves

let violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
    Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
  ]

let fuzz ~seed ~count =
  let buf = Buffer.create 2048 in
  let anomalies = ref [] in
  let note fmt = Printf.ksprintf (fun s -> anomalies := s :: !anomalies) fmt in
  let detect_row label scenarios ~expect_asan_family =
    let det tool = Harness.count_detected tool scenarios in
    let sb =
      List.length
        (List.filter (Softbound.run_with_laundering ~launder_slots:[]) scenarios)
    in
    let g = det Harness.Giantsan
    and a = det Harness.Asan
    and am = det Harness.Asanmm
    and l = det Harness.Lfp in
    let n = List.length scenarios in
    (match expect_asan_family with
    | `All ->
      if g < n then note "%s: GiantSan missed %d" label (n - g);
      if a < n then note "%s: ASan missed %d" label (n - a);
      if am < n then note "%s: ASan-- missed %d" label (n - am)
    | `None ->
      if g > 0 then note "%s: GiantSan false positives: %d" label g;
      if a > 0 then note "%s: ASan false positives: %d" label a;
      if am > 0 then note "%s: ASan-- false positives: %d" label am;
      if l > 0 then note "%s: LFP false positives: %d" label l;
      if sb > 0 then note "%s: SoftBound false positives: %d" label sb
    | `Giantsan_only ->
      if g < n then note "%s: GiantSan missed %d" label (n - g);
      if a > 0 then note "%s: ASan unexpectedly caught %d" label a);
    [
      label; string_of_int g; string_of_int a; string_of_int am;
      string_of_int l; string_of_int sb; string_of_int n;
    ]
  in
  let clean =
    List.init count (fun i -> Difftest.gen_clean ~seed:(seed + i))
  in
  let rows =
    detect_row "clean" clean ~expect_asan_family:`None
    :: List.map
         (fun v ->
           let scenarios =
             List.init count (fun i -> Difftest.gen_buggy ~seed:(seed + i) v)
           in
           let expect =
             match v with
             | Difftest.V_far_jump -> `Giantsan_only
             | _ -> `All
           in
           detect_row (Difftest.violation_name v) scenarios
             ~expect_asan_family:expect)
         violations
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Differential fuzz: %d scenarios per row (seed %d)\n\n" count seed);
  Buffer.add_string buf
    (Table.render
       ([ "population"; "GiantSan"; "ASan"; "ASan--"; "LFP"; "SoftBound"; "n" ]
       :: rows));
  (match List.rev !anomalies with
  | [] -> Buffer.add_string buf "\nNo anomalies.\n"
  | l ->
    Buffer.add_string buf "\nANOMALIES:\n";
    List.iter (fun a -> Buffer.add_string buf ("  " ^ a ^ "\n")) l);
  Buffer.contents buf

let validate () =
  let buf = Buffer.create 1024 in
  let check label scenarios =
    let errors = Harness.validate_corpus scenarios in
    Buffer.add_string buf
      (Printf.sprintf "%-28s %6d cases  %s\n" label (List.length scenarios)
         (if errors = [] then "OK"
          else Printf.sprintf "%d LABEL ERRORS" (List.length errors)));
    List.iteri
      (fun i e -> if i < 5 then Buffer.add_string buf ("    " ^ e ^ "\n"))
      errors
  in
  List.iter
    (fun cwe ->
      check
        (Printf.sprintf "juliet CWE-%d (buggy+clean)" cwe)
        (Juliet.buggy_cases cwe @ Juliet.clean_cases cwe))
    Juliet.cwe_ids;
  List.iter
    (fun p -> check ("magma " ^ p.Magma.mg_name) (Magma.cases p))
    Magma.projects;
  check "cves"
    (List.map (fun (c : Cves.t) -> c.Cves.cve_scenario) Cves.all);
  check "difftest smoke"
    (List.init 200 (fun i ->
         if i mod 2 = 0 then Difftest.gen_clean ~seed:i
         else
           Difftest.gen_buggy ~seed:i
             (List.nth violations (i mod List.length violations))));
  Buffer.contents buf
