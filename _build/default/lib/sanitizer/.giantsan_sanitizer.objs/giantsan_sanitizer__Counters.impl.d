lib/sanitizer/counters.ml: Format List
