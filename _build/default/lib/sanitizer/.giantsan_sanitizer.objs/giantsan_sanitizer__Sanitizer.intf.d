lib/sanitizer/sanitizer.mli: Counters Giantsan_memsim Report
