lib/sanitizer/report.mli: Format Giantsan_memsim
