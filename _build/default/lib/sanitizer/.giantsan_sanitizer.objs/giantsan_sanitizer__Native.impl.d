lib/sanitizer/native.ml: Counters Giantsan_memsim Sanitizer
