lib/sanitizer/interceptors.ml: Fun Giantsan_memsim List Report Sanitizer
