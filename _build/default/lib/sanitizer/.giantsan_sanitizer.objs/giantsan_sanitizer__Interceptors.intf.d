lib/sanitizer/interceptors.mli: Giantsan_memsim Report Sanitizer
