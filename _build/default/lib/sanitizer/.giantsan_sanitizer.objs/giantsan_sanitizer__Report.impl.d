lib/sanitizer/report.ml: Format Giantsan_memsim
