lib/sanitizer/sanitizer.ml: Counters Giantsan_memsim Option Report
