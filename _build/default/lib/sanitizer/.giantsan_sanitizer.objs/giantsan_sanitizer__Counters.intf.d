lib/sanitizer/counters.mli: Format
