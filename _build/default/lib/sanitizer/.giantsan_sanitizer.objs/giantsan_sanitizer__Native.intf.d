lib/sanitizer/native.mli: Giantsan_memsim Sanitizer
