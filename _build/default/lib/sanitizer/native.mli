(** The "Native" configuration: the allocator substrate with no shadow
    memory and no checks. It is the baseline all overhead ratios in Table 2
    are computed against. *)

val create : Giantsan_memsim.Heap.config -> Sanitizer.t
