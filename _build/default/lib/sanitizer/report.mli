(** Error reports produced by sanitizer checks (the simulation's equivalent
    of ASan's red crash banner). With [halt_on_error=false] semantics — as
    the paper configures all tools — checks return reports and execution
    continues, so one run can collect many reports. *)

type kind =
  | Heap_buffer_overflow
  | Heap_buffer_underflow
  | Stack_buffer_overflow
  | Stack_buffer_underflow
  | Global_buffer_overflow
  | Use_after_free
  | Invalid_free
  | Double_free
  | Free_not_at_start
  | Null_dereference
  | Wild_access  (** access to memory never returned by the allocator *)

type t = {
  kind : kind;
  addr : int;  (** faulting address *)
  size : int;  (** bytes the failing operation wanted to touch *)
  detected_by : string;  (** sanitizer name *)
}

val make : kind:kind -> addr:int -> size:int -> detected_by:string -> t

val classify_access :
  Giantsan_memsim.Heap.t -> addr:int -> base:int option -> kind
(** Best-effort diagnosis of a bad access from allocator ground truth, the
    way ASan decodes its shadow error codes: redzone hits become overflows
    or underflows (relative to [base] when known), freed bytes become
    use-after-free, low addresses become null dereferences. *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
