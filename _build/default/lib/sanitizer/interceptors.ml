module Memsim = Giantsan_memsim

let arena (san : Sanitizer.t) = Memsim.Heap.arena san.Sanitizer.heap

let collect checks = List.filter_map Fun.id checks

let strlen (san : Sanitizer.t) ~addr =
  let a = arena san in
  let limit = Memsim.Arena.size a in
  let rec scan i =
    if addr + i >= limit then (i, false)
    else if Memsim.Arena.load a ~addr:(addr + i) ~width:1 = 0 then (i, true)
    else scan (i + 1)
  in
  let len, terminated = scan 0 in
  let reports =
    if not terminated then
      [
        Report.make ~kind:Report.Wild_access ~addr:(addr + len) ~size:1
          ~detected_by:san.Sanitizer.name;
      ]
    else
      collect [ san.Sanitizer.check_region ~lo:addr ~hi:(addr + len + 1) ]
  in
  (len, reports)

let strcpy (san : Sanitizer.t) ~dst ~src =
  let len, src_reports = strlen san ~addr:src in
  let dst_reports =
    collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + len + 1) ]
  in
  let reports = src_reports @ dst_reports in
  if reports = [] then
    Memsim.Arena.blit (arena san) ~src ~dst ~len:(len + 1);
  reports

let strncpy (san : Sanitizer.t) ~dst ~src ~n =
  if n <= 0 then []
  else begin
    let len, src_reports = strlen san ~addr:src in
    let copy = min n (len + 1) in
    let reports =
      (if copy < n then src_reports
       else collect [ san.Sanitizer.check_region ~lo:src ~hi:(src + n) ])
      @ collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + n) ]
    in
    if reports = [] then begin
      let a = arena san in
      Memsim.Arena.blit a ~src ~dst ~len:copy;
      if copy < n then Memsim.Arena.fill a ~addr:(dst + copy) ~len:(n - copy) 0
    end;
    reports
  end

let strcat (san : Sanitizer.t) ~dst ~src =
  let dlen, dst_reports = strlen san ~addr:dst in
  if dst_reports <> [] then dst_reports
  else strcpy san ~dst:(dst + dlen) ~src

let memmove (san : Sanitizer.t) ~dst ~src ~n =
  if n <= 0 then []
  else begin
    let reports =
      collect
        [
          san.Sanitizer.check_region ~lo:src ~hi:(src + n);
          san.Sanitizer.check_region ~lo:dst ~hi:(dst + n);
        ]
    in
    if reports = [] then Memsim.Arena.blit (arena san) ~src ~dst ~len:n;
    reports
  end

let memset (san : Sanitizer.t) ~dst ~n ~byte =
  if n <= 0 then []
  else begin
    let reports = collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + n) ] in
    if reports = [] then Memsim.Arena.fill (arena san) ~addr:dst ~len:n byte;
    reports
  end

let calloc (san : Sanitizer.t) ~count ~size =
  assert (count >= 0 && size >= 0);
  let total = count * size in
  let obj = san.Sanitizer.malloc total in
  if total > 0 then
    Memsim.Arena.fill (arena san) ~addr:obj.Memsim.Memobj.base ~len:total 0;
  obj

let realloc (san : Sanitizer.t) ~ptr ~size =
  if ptr = 0 then Ok (san.Sanitizer.malloc size)
  else
    match Memsim.Heap.find_object san.Sanitizer.heap ptr with
    | Some old
      when old.Memsim.Memobj.status = Memsim.Memobj.Live
           && old.Memsim.Memobj.base = ptr ->
      let fresh = san.Sanitizer.malloc size in
      let keep = min size old.Memsim.Memobj.size in
      if keep > 0 then
        Memsim.Arena.blit (arena san) ~src:ptr
          ~dst:fresh.Memsim.Memobj.base ~len:keep;
      (match san.Sanitizer.free ptr with
      | None -> Ok fresh
      | Some r -> Error r)
    | _ -> (
      (* wild / mid-object / stale pointer: let free's detector speak *)
      match san.Sanitizer.free ptr with
      | Some r -> Error r
      | None ->
        Error
          (Report.make ~kind:Report.Invalid_free ~addr:ptr ~size:0
             ~detected_by:san.Sanitizer.name))
