module Memsim = Giantsan_memsim

type cache = { mutable cache_base : int; mutable cache_ub : int }

type t = {
  name : string;
  heap : Memsim.Heap.t;
  counters : Counters.t;
  shadow_loads : unit -> int;
  malloc : ?kind:Memsim.Memobj.kind -> int -> Memsim.Memobj.t;
  free : int -> Report.t option;
  access : base:int -> addr:int -> width:int -> Report.t option;
  check_region : lo:int -> hi:int -> Report.t option;
  new_cache : base:int -> cache;
  cached_access : cache -> off:int -> width:int -> Report.t option;
  flush_cache : cache -> Report.t option;
  supports_operation_level : bool;
}

let record_error t = function
  | None -> None
  | Some r ->
    t.counters.Counters.errors <- t.counters.Counters.errors + 1;
    Some r

let plain_malloc heap counters ?kind size =
  counters.Counters.mallocs <- counters.Counters.mallocs + 1;
  Memsim.Heap.malloc heap ?kind size

let free_error_report ~name ~addr err =
  let kind =
    match err with
    | Memsim.Heap.Free_null -> None
    | Memsim.Heap.Invalid_free -> Some Report.Invalid_free
    | Memsim.Heap.Free_not_at_start -> Some Report.Free_not_at_start
    | Memsim.Heap.Double_free -> Some Report.Double_free
  in
  Option.map
    (fun kind -> Report.make ~kind ~addr ~size:0 ~detected_by:name)
    kind
