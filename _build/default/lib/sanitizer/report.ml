module Memsim = Giantsan_memsim

type kind =
  | Heap_buffer_overflow
  | Heap_buffer_underflow
  | Stack_buffer_overflow
  | Stack_buffer_underflow
  | Global_buffer_overflow
  | Use_after_free
  | Invalid_free
  | Double_free
  | Free_not_at_start
  | Null_dereference
  | Wild_access

type t = { kind : kind; addr : int; size : int; detected_by : string }

let make ~kind ~addr ~size ~detected_by = { kind; addr; size; detected_by }

let kind_name = function
  | Heap_buffer_overflow -> "heap-buffer-overflow"
  | Heap_buffer_underflow -> "heap-buffer-underflow"
  | Stack_buffer_overflow -> "stack-buffer-overflow"
  | Stack_buffer_underflow -> "stack-buffer-underflow"
  | Global_buffer_overflow -> "global-buffer-overflow"
  | Use_after_free -> "heap-use-after-free"
  | Invalid_free -> "invalid-free"
  | Double_free -> "double-free"
  | Free_not_at_start -> "free-not-at-start"
  | Null_dereference -> "null-dereference"
  | Wild_access -> "wild-access"

let classify_access heap ~addr ~base =
  let oracle = Memsim.Heap.oracle heap in
  let arena_size = Memsim.Arena.size (Memsim.Heap.arena heap) in
  if addr < 64 then Null_dereference
  else if addr >= arena_size then Wild_access
  else
    match Memsim.Oracle.state oracle addr with
    | Memsim.Oracle.Freed -> Use_after_free
    | Memsim.Oracle.Unallocated -> Wild_access
    | Memsim.Oracle.Redzone | Memsim.Oracle.Addressable -> (
      (* Addressable can still be reported faulty by a region check whose
         first bad byte we were not told; fall through to object layout. *)
      match Memsim.Oracle.owner oracle addr with
      | None -> Wild_access
      | Some obj ->
        let underflow =
          match base with
          | Some b -> addr < b
          | None -> addr < obj.Memsim.Memobj.base
        in
        (match obj.Memsim.Memobj.kind with
        | Memsim.Memobj.Heap ->
          if underflow then Heap_buffer_underflow else Heap_buffer_overflow
        | Memsim.Memobj.Stack ->
          if underflow then Stack_buffer_underflow else Stack_buffer_overflow
        | Memsim.Memobj.Global -> Global_buffer_overflow))

let pp ppf t =
  Format.fprintf ppf "[%s] %s at address %d (operation size %d)" t.detected_by
    (kind_name t.kind) t.addr t.size

let to_string t = Format.asprintf "%a" pp t
