type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable poison_segments : int;
  mutable instr_checks : int;
  mutable region_checks : int;
  mutable fast_checks : int;
  mutable slow_checks : int;
  mutable cache_hits : int;
  mutable cache_updates : int;
  mutable underflow_checks : int;
  mutable bounds_checks : int;
  mutable errors : int;
}

let create () =
  {
    mallocs = 0;
    frees = 0;
    poison_segments = 0;
    instr_checks = 0;
    region_checks = 0;
    fast_checks = 0;
    slow_checks = 0;
    cache_hits = 0;
    cache_updates = 0;
    underflow_checks = 0;
    bounds_checks = 0;
    errors = 0;
  }

let reset t =
  t.mallocs <- 0;
  t.frees <- 0;
  t.poison_segments <- 0;
  t.instr_checks <- 0;
  t.region_checks <- 0;
  t.fast_checks <- 0;
  t.slow_checks <- 0;
  t.cache_hits <- 0;
  t.cache_updates <- 0;
  t.underflow_checks <- 0;
  t.bounds_checks <- 0;
  t.errors <- 0

let add acc x =
  acc.mallocs <- acc.mallocs + x.mallocs;
  acc.frees <- acc.frees + x.frees;
  acc.poison_segments <- acc.poison_segments + x.poison_segments;
  acc.instr_checks <- acc.instr_checks + x.instr_checks;
  acc.region_checks <- acc.region_checks + x.region_checks;
  acc.fast_checks <- acc.fast_checks + x.fast_checks;
  acc.slow_checks <- acc.slow_checks + x.slow_checks;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_updates <- acc.cache_updates + x.cache_updates;
  acc.underflow_checks <- acc.underflow_checks + x.underflow_checks;
  acc.bounds_checks <- acc.bounds_checks + x.bounds_checks;
  acc.errors <- acc.errors + x.errors

let total_checks t =
  t.instr_checks + t.region_checks + t.cache_hits + t.cache_updates
  + t.bounds_checks

let to_assoc t =
  [
    ("mallocs", t.mallocs);
    ("frees", t.frees);
    ("poison_segments", t.poison_segments);
    ("instr_checks", t.instr_checks);
    ("region_checks", t.region_checks);
    ("fast_checks", t.fast_checks);
    ("slow_checks", t.slow_checks);
    ("cache_hits", t.cache_hits);
    ("cache_updates", t.cache_updates);
    ("underflow_checks", t.underflow_checks);
    ("bounds_checks", t.bounds_checks);
    ("errors", t.errors);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-16s %d@," k v)
    (to_assoc t);
  Format.fprintf ppf "@]"
