type t = {
  bytes : Bytes.t;
  fill : int;
  mutable loads : int;
  mutable stores : int;
}

let create ~segments ~fill =
  assert (segments > 0 && fill >= 0 && fill < 256);
  { bytes = Bytes.make segments (Char.chr fill); fill; loads = 0; stores = 0 }

let of_heap heap ~fill =
  create ~segments:(Giantsan_memsim.Heap.segment_count heap) ~fill

let segments t = Bytes.length t.bytes

let load t p =
  t.loads <- t.loads + 1;
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else Char.code (Bytes.get t.bytes p)

let peek t p =
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else Char.code (Bytes.get t.bytes p)

let set t p v =
  assert (v >= 0 && v < 256);
  t.stores <- t.stores + 1;
  if p >= 0 && p < Bytes.length t.bytes then Bytes.set t.bytes p (Char.chr v)

let fill_range t ~lo ~hi v =
  assert (lo <= hi && v >= 0 && v < 256);
  t.stores <- t.stores + (hi - lo);
  let lo' = max 0 lo and hi' = min (Bytes.length t.bytes) hi in
  if hi' > lo' then Bytes.fill t.bytes lo' (hi' - lo') (Char.chr v)

let loads t = t.loads
let stores t = t.stores

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0
