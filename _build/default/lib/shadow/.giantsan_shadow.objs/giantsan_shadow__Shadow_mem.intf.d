lib/shadow/shadow_mem.mli: Giantsan_memsim
