lib/shadow/shadow_mem.ml: Bytes Char Giantsan_memsim
