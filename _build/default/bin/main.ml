(* giantsan-repro: run the paper's experiments.

   Subcommands: one per table/figure, plus `all`. Each prints its rendered
   report to stdout and can optionally append to a file. *)

open Cmdliner

let write_out path body =
  match path with
  | None -> ()
  | Some p ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
    output_string oc body;
    output_string oc "\n";
    close_out oc

let run_ids ids quick out =
  List.iter
    (fun id ->
      let o = Giantsan_report.Experiments.run ~quick id in
      print_string o.Giantsan_report.Experiments.o_body;
      print_newline ();
      write_out out o.Giantsan_report.Experiments.o_body)
    ids;
  0

let quick_flag =
  let doc = "Smaller populations / fewer profiles (smoke-test mode)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let out_file =
  let doc = "Append the rendered report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let experiment_cmd id title =
  let doc = Printf.sprintf "Reproduce the paper's %s." title in
  Cmd.v
    (Cmd.info id ~doc)
    Term.(const (fun quick out -> run_ids [ id ] quick out) $ quick_flag $ out_file)

let all_cmd =
  let doc = "Run every experiment (all tables and figures)." in
  Cmd.v
    (Cmd.info "all" ~doc)
    Term.(
      const (fun quick out ->
          run_ids Giantsan_report.Experiments.all_ids quick out)
      $ quick_flag $ out_file)

let extras_cmd =
  let doc =
    "Run the extension experiments (encoding ablation, redzone sweep, \
     quarantine sweep)."
  in
  Cmd.v
    (Cmd.info "extras" ~doc)
    Term.(
      const (fun quick out ->
          run_ids Giantsan_report.Experiments.extra_ids quick out)
      $ quick_flag $ out_file)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: random scenarios across every tool, reporting \
     detection matrices and anomalies."
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Scenarios per population.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const (fun seed count out ->
          let body = Giantsan_report.Corpus_tools.fuzz ~seed ~count in
          print_string body;
          write_out out body;
          0)
      $ seed $ count $ out_file)

let validate_cmd =
  let doc = "Re-validate the ground-truth labels of every generated corpus." in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(
      const (fun out ->
          let body = Giantsan_report.Corpus_tools.validate () in
          print_string body;
          write_out out body;
          0)
      $ out_file)

let () =
  let info =
    Cmd.info "giantsan-repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'GiantSan: Efficient Memory Sanitization with \
         Segment Folding' (ASPLOS 2024)"
  in
  let cmds =
    all_cmd :: extras_cmd :: fuzz_cmd :: validate_cmd
    :: List.map
         (fun id -> experiment_cmd id id)
         (Giantsan_report.Experiments.all_ids
         @ Giantsan_report.Experiments.extra_ids)
  in
  exit (Cmd.eval' (Cmd.group info cmds))
