(* The ASan baseline: Example-1 check semantics, linear guardians, and
   oracle agreement. *)

module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Memsim = Giantsan_memsim

let fresh size =
  let san = Helpers.asan ~config:Helpers.small_config () in
  let obj = san.San.malloc size in
  (san, obj.Memsim.Memobj.base)

let test_inbounds_access () =
  let san, base = fresh 100 in
  for off = 0 to 92 do
    Alcotest.(check bool) "inbounds w8" true
      (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + off) ~width:8))
  done

let test_overflow_byte () =
  let san, base = fresh 100 in
  Alcotest.(check bool) "just past end" false
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 100) ~width:1));
  Alcotest.(check bool) "crossing the end" false
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 96) ~width:8))

let test_underflow_byte () =
  let san, base = fresh 100 in
  Alcotest.(check bool) "byte before base" false
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base - 1) ~width:1))

let test_uaf_detected () =
  let san, base = fresh 64 in
  ignore (san.San.free base);
  match san.San.access ~base:0 ~addr:(base + 8) ~width:4 with
  | Some r ->
    Alcotest.(check string) "kind" "heap-use-after-free"
      (Giantsan_sanitizer.Report.kind_name r.Giantsan_sanitizer.Report.kind)
  | None -> Alcotest.fail "UAF missed"

let test_region_guardian_is_linear () =
  let san, base = fresh 1024 in
  let before = san.San.shadow_loads () in
  Alcotest.(check bool) "1 KiB region safe" true
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 1024)));
  let loads = san.San.shadow_loads () - before in
  (* the paper's example: checking 1KB costs 128 segment-state loads *)
  Alcotest.(check int) "128 loads for 1 KiB" 128 loads

let test_region_guardian_detects () =
  let san, base = fresh 1024 in
  Alcotest.(check bool) "overflowing region" false
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 1025)));
  Alcotest.(check bool) "region before object" false
    (Helpers.check_is_safe (san.San.check_region ~lo:(base - 8) ~hi:(base + 8)))

let test_redzone_bypass_false_negative () =
  (* the instruction-level blind spot the anchor enhancement fixes: a jump
     far past the 16-byte redzone can land in the NEXT object and pass *)
  let san = Helpers.asan ~config:Helpers.small_config () in
  let a = san.San.malloc 64 in
  let b = san.San.malloc 64 in
  let a_base = a.Memsim.Memobj.base and b_base = b.Memsim.Memobj.base in
  let jump = b_base - a_base + 8 in
  (* the same flawed index under GiantSan's anchored check is caught *)
  Alcotest.(check bool) "ASan misses the long jump" true
    (Helpers.check_is_safe (san.San.access ~base:a_base ~addr:(a_base + jump) ~width:4));
  let gs = Helpers.giantsan ~config:Helpers.small_config () in
  let ga = gs.San.malloc 64 in
  let _gb = gs.San.malloc 64 in
  let g_base = ga.Memsim.Memobj.base in
  Alcotest.(check bool) "GiantSan catches it via the anchor" false
    (Helpers.check_is_safe (gs.San.access ~base:g_base ~addr:(g_base + jump) ~width:4))

let test_partial_segment_semantics () =
  let san, base = fresh 13 in
  (* bytes 8..13 in a 5-partial segment *)
  Alcotest.(check bool) "within partial" true
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 12) ~width:1));
  Alcotest.(check bool) "past partial" false
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 13) ~width:1));
  Alcotest.(check bool) "crossing partial boundary" false
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 10) ~width:4))

let test_unaligned_crossing_blind_spot () =
  (* Known ASan false negative: an unaligned w<=8 access that starts in a
     good segment and crosses into a bad one is invisible to the
     single-shadow-byte check. GiantSan's CI inspects the full range. *)
  let san, base = fresh 96 in
  (* [93, 101): bytes 96..100 are out of bounds *)
  Alcotest.(check bool) "ASan misses the crossing access" true
    (Helpers.check_is_safe (san.San.access ~base:0 ~addr:(base + 93) ~width:8));
  let gs = Helpers.giantsan ~config:Helpers.small_config () in
  let go = gs.San.malloc 96 in
  let gbase = go.Memsim.Memobj.base in
  Alcotest.(check bool) "GiantSan catches it" false
    (Helpers.check_is_safe (gs.San.access ~base:0 ~addr:(gbase + 93) ~width:8))

let test_every_access_costs_a_load () =
  let san, base = fresh 256 in
  let before = san.San.shadow_loads () in
  for j = 0 to 31 do
    ignore (san.San.access ~base:0 ~addr:(base + (8 * j)) ~width:8)
  done;
  Alcotest.(check int) "one load per access" 32 (san.San.shadow_loads () - before)

(* oracle agreement for single accesses *)
let asan_agrees_with_oracle (seed, picks) =
  let rng = Giantsan_util.Rng.create seed in
  let san, live, freed = Helpers.random_scene rng Helpers.asan in
  let objects = Array.of_list (live @ freed) in
  if Array.length objects = 0 then true
  else
    List.for_all
      (fun (obj_pick, off_pick, w_pick) ->
        let obj = objects.(obj_pick mod Array.length objects) in
        let base = obj.Memsim.Memobj.base in
        let addr = base + (off_pick mod 400) - 60 in
        let width = [| 1; 2; 4; 8 |].(w_pick mod 4) in
        let arena_hi = Memsim.Arena.size (Memsim.Heap.arena san.San.heap) - 16 in
        if addr < 8 || addr + width > arena_hi then true
        else begin
          let said = Helpers.check_is_safe (san.San.access ~base:0 ~addr ~width) in
          let truth = Helpers.oracle_safe san ~lo:addr ~hi:(addr + width) in
          if (addr land 7) + width <= 8 then said = truth
          else
            (* segment-crossing unaligned access: real ASan only inspects
               the first shadow byte and can miss — never falsely report *)
            (not said) <= (not truth)
        end)
      picks

let test_asan_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ASan access <=> oracle" ~count:300
       QCheck.(
         pair small_int
           (list_of_size (Gen.int_range 1 20) (triple small_nat small_nat small_nat)))
       asan_agrees_with_oracle)

(* both tools agree on every single-access verdict (same detection power at
   instruction level; the differences are about cost and long jumps) *)
let parity (seed, picks) =
  let rng1 = Giantsan_util.Rng.create seed in
  let rng2 = Giantsan_util.Rng.copy rng1 in
  let asan, a_live, a_freed = Helpers.random_scene rng1 Helpers.asan in
  let gs, _, _ = Helpers.random_scene rng2 Helpers.giantsan in
  let objects = Array.of_list (a_live @ a_freed) in
  if Array.length objects = 0 then true
  else
    List.for_all
      (fun (obj_pick, off_pick, w_pick) ->
        let obj = objects.(obj_pick mod Array.length objects) in
        let base = obj.Memsim.Memobj.base in
        let width = [| 1; 2; 4; 8 |].(w_pick mod 4) in
        (* width-aligned accesses (what compiled code emits): both tools
           have identical per-instruction verdicts there *)
        let addr = base + (((off_pick mod 200) - 30) / width * width) in
        let arena_hi = Memsim.Arena.size (Memsim.Heap.arena asan.San.heap) - 16 in
        if addr < 8 || addr + width > arena_hi then true
        else begin
          (* identical allocation sequences -> identical layouts *)
          let a = Helpers.check_is_safe (asan.San.access ~base:0 ~addr ~width) in
          let g = Helpers.check_is_safe (gs.San.access ~base:0 ~addr ~width) in
          a = g
        end)
      picks

let test_parity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ASan and GiantSan agree per instruction" ~count:200
       QCheck.(
         pair small_int
           (list_of_size (Gen.int_range 1 15) (triple small_nat small_nat small_nat)))
       parity)

let suite =
  ( "asan",
    [
      Helpers.qt "in-bounds accesses pass" `Quick test_inbounds_access;
      Helpers.qt "overflow detected" `Quick test_overflow_byte;
      Helpers.qt "underflow detected" `Quick test_underflow_byte;
      Helpers.qt "use-after-free detected" `Quick test_uaf_detected;
      Helpers.qt "guardian loads are linear" `Quick test_region_guardian_is_linear;
      Helpers.qt "guardian detects bad regions" `Quick test_region_guardian_detects;
      Helpers.qt "redzone bypass: ASan misses, anchor catches" `Quick
        test_redzone_bypass_false_negative;
      Helpers.qt "partial segment semantics" `Quick test_partial_segment_semantics;
      Helpers.qt "unaligned crossing access: ASan blind spot" `Quick
        test_unaligned_crossing_blind_spot;
      Helpers.qt "one shadow load per access" `Quick test_every_access_costs_a_load;
      test_asan_oracle;
      test_parity;
    ] )
