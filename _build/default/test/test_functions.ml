(* Functions, calls, allocas and use-after-return in the IR. *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Plan = Giantsan_analysis.Plan
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Report = Giantsan_sanitizer.Report
module San = Giantsan_sanitizer.Sanitizer

let run ?(mode = Instrument.Giantsan) ?(san = Helpers.giantsan ()) prog =
  (san, Interp.run san (Instrument.plan mode prog) prog)

let test_call_and_return () =
  let double = B.func "double" ~params:[ "x" ] [ B.return_ (Some B.(v "x" * i 2)) ] in
  let prog =
    B.program ~funcs:[ double ] "calls"
      [ B.call ~dst:"r" "double" [ B.i 21 ] ]
  in
  let _, out = run prog in
  Alcotest.(check int) "return value" 42 (Interp.var out "r")

let test_fallthrough_returns_zero () =
  let noop = B.func "noop" ~params:[] [ B.assign "t" (B.i 9) ] in
  let prog =
    B.program ~funcs:[ noop ] "fallthrough" [ B.call ~dst:"r" "noop" [] ]
  in
  let _, out = run prog in
  Alcotest.(check int) "implicit 0" 0 (Interp.var out "r")

let test_recursion () =
  (* fact(n) = n <= 1 ? 1 : n * fact(n - 1) *)
  let fact =
    B.func "fact" ~params:[ "n" ]
      [
        B.if_ B.(v "n" <= i 1)
          [ B.return_ (Some (B.i 1)) ]
          [
            B.call ~dst:"sub" "fact" [ B.(v "n" - i 1) ];
            B.return_ (Some B.(v "n" * v "sub"));
          ];
      ]
  in
  let prog = B.program ~funcs:[ fact ] "rec" [ B.call ~dst:"r" "fact" [ B.i 10 ] ] in
  let _, out = run prog in
  Alcotest.(check int) "10!" 3628800 (Interp.var out "r")

let test_infinite_recursion_crashes () =
  let f = B.func "f" ~params:[] [ B.call "f" [] ] in
  let prog = B.program ~funcs:[ f ] "spin" [ B.call "f" [] ] in
  let _, out = run prog in
  Alcotest.(check bool) "stack exhaustion" true out.Interp.crashed

let test_scoping () =
  (* the callee cannot see caller locals, and parameters are by value *)
  let f =
    B.func "f" ~params:[ "x" ]
      [ B.assign "x" B.(v "x" + i 1); B.return_ (Some (B.v "x")) ]
  in
  let prog =
    B.program ~funcs:[ f ] "scope"
      [ B.assign "x" (B.i 5); B.call ~dst:"r" "f" [ B.v "x" ] ]
  in
  let _, out = run prog in
  Alcotest.(check int) "callee got a copy" 6 (Interp.var out "r");
  Alcotest.(check int) "caller's x untouched" 5 (Interp.var out "x")

let test_alloca_lifecycle () =
  let b = B.create () in
  (* the function uses its stack buffer legitimately *)
  let f =
    B.func "f" ~params:[]
      [
        B.alloca "buf" (B.i 64);
        B.store b ~base:"buf" ~index:(B.i 0) ~scale:8 ~value:(B.i 7) ();
        B.return_ (Some (B.load b ~base:"buf" ~index:(B.i 0) ~scale:8 ()));
      ]
  in
  let prog =
    B.program ~funcs:[ f ] "alloca"
      [
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 50) [ B.call ~dst:"r" "f" [] ];
      ]
  in
  let san, out = run prog in
  Alcotest.(check (list string)) "no reports" []
    (List.map Report.to_string out.Interp.reports);
  Alcotest.(check int) "value via stack" 7 (Interp.var out "r");
  (* 50 frames -> 50 stack allocations + 50 frees *)
  Alcotest.(check int) "allocas counted" 50
    san.San.counters.Giantsan_sanitizer.Counters.mallocs

let test_use_after_return () =
  let b = B.create () in
  (* f leaks the address of its stack buffer; main dereferences it *)
  let f =
    B.func "f" ~params:[]
      [ B.alloca "buf" (B.i 64); B.return_ (Some (B.v "buf")) ]
  in
  let prog =
    B.program ~funcs:[ f ] "uar"
      [
        B.call ~dst:"p" "f" [];
        B.assign "x" (B.load b ~base:"p" ~index:(B.i 0) ~scale:8 ());
      ]
  in
  List.iter
    (fun (name, make_san) ->
      let _, out = run ~san:(make_san ()) prog in
      Alcotest.(check bool) (name ^ " catches use-after-return") true
        (out.Interp.reports <> []))
    [
      ("GiantSan", fun () -> Helpers.giantsan ());
      ("ASan", fun () -> Helpers.asan ());
    ]

let test_stack_overflow_detected () =
  let b = B.create () in
  let f =
    B.func "f" ~params:[]
      [
        B.alloca "buf" (B.i 40);
        B.store b ~base:"buf" ~index:(B.i 5) ~scale:8 ~value:(B.i 1) ();
      ]
  in
  let prog = B.program ~funcs:[ f ] "stack_ov" [ B.call "f" [] ] in
  let _, out = run prog in
  match out.Interp.reports with
  | [ r ] ->
    Alcotest.(check string) "classified" "stack-buffer-overflow"
      (Report.kind_name r.Report.kind)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

let test_call_blocks_promotion () =
  let b = B.create () in
  let mayfree = B.func "mayfree" ~params:[ "q" ] [ B.free (B.v "q") ] in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:4 () in
  let prog =
    B.program ~funcs:[ mayfree ] "callblock"
      [
        B.malloc "p" (B.i 256);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 4)
          [
            Ast.Store (acc, B.i 1);
            B.if_ B.(v "i" = i 3) [ B.call "mayfree" [ B.v "p" ] ] [];
          ];
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "call in loop blocks promotion" true
    (Plan.decision_of plan acc.Ast.acc_id <> Plan.Eliminated);
  (* and the whole program runs with the mid-loop free caught at most
     at the cache flush, never as a false positive before it happens *)
  let _, out = run prog in
  Alcotest.(check bool) "mid-loop free detected eventually" true
    (out.Interp.reports <> [])

let test_return_in_loop_blocks_promotion () =
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:8 () in
  let f =
    B.func "f" ~params:[]
      [
        B.malloc "p" (B.i 80);
        (* returns after 3 iterations: only offsets 0..2 are ever touched;
           hoisting the full footprint 0..99 would false-positive *)
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 100)
          [
            Ast.Store (acc, B.v "i");
            B.if_ B.(v "i" = i 2) [ B.return_ None ] [];
          ];
      ]
  in
  let prog = B.program ~funcs:[ f ] "early_exit" [ B.call "f" [] ] in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "early-exit loop not promoted" true
    (Plan.decision_of plan acc.Ast.acc_id <> Plan.Eliminated);
  let _, out = run prog in
  Alcotest.(check (list string)) "no false positive" []
    (List.map Report.to_string out.Interp.reports)

let test_call_is_merge_barrier () =
  let b = B.create () in
  let freer = B.func "freer" ~params:[ "q" ] [ B.free (B.v "q") ] in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  let a2 = B.access b ~base:"p" ~index:(B.i 1) ~scale:8 () in
  let prog =
    B.program ~funcs:[ freer ] "barrier"
      [
        B.malloc "p" (B.i 64);
        B.assign "x" (Ast.Load a1);
        B.call "freer" [ B.v "p" ];
        B.assign "y" (Ast.Load a2);
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  (* merging p[0] with p[1] across the call would hide the UAF *)
  Alcotest.(check bool) "no merge across the call" true
    (Plan.decision_of plan a1.Ast.acc_id = Plan.Plain
    && Plan.decision_of plan a2.Ast.acc_id = Plan.Plain);
  let _, out = run prog in
  Alcotest.(check int) "the UAF after the call is caught" 1
    (List.length out.Interp.reports)

let test_frames_free_on_exception_paths () =
  (* a crash inside a callee still unwinds its frame bookkeeping *)
  let f =
    B.func "f" ~params:[]
      [ B.alloca "buf" (B.i 32); B.assign "x" B.(i 1 / i 0) ]
  in
  let prog = B.program ~funcs:[ f ] "unwind" [ B.call "f" [] ] in
  let san, out = run prog in
  Alcotest.(check bool) "crashed" true out.Interp.crashed;
  Alcotest.(check int) "frame was reclaimed" 1
    san.San.counters.Giantsan_sanitizer.Counters.frees

let suite =
  ( "functions",
    [
      Helpers.qt "call and return" `Quick test_call_and_return;
      Helpers.qt "fallthrough returns 0" `Quick test_fallthrough_returns_zero;
      Helpers.qt "recursion" `Quick test_recursion;
      Helpers.qt "infinite recursion crashes" `Quick
        test_infinite_recursion_crashes;
      Helpers.qt "scoping and by-value params" `Quick test_scoping;
      Helpers.qt "alloca lifecycle" `Quick test_alloca_lifecycle;
      Helpers.qt "use-after-return detected" `Quick test_use_after_return;
      Helpers.qt "stack overflow detected" `Quick test_stack_overflow_detected;
      Helpers.qt "calls block loop promotion" `Quick test_call_blocks_promotion;
      Helpers.qt "early return blocks promotion" `Quick
        test_return_in_loop_blocks_promotion;
      Helpers.qt "calls are merge barriers" `Quick test_call_is_merge_barrier;
      Helpers.qt "frames unwind on crashes" `Quick
        test_frames_free_on_exception_paths;
    ] )
