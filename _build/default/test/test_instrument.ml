(* Check-instance generation (§4.4): the Figure 8 pipeline and the Table 1
   idioms, as instrumentation plans. *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Plan = Giantsan_analysis.Plan
module Instrument = Giantsan_analysis.Instrument

(* Figure 8a as IR:
     x = p[0]; y = p[1];
     for (i = 0..N) { j = x[i]; y[j] = i; }
     memset(x, 0, 4N) *)
let figure8 () =
  let b = B.create () in
  let x_load = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  let y_load = B.access b ~base:"p" ~index:(B.i 1) ~scale:8 () in
  let xi = B.access b ~base:"x" ~index:(B.v "i") ~scale:4 () in
  let yj = B.access b ~base:"y" ~index:(B.v "j") ~scale:4 () in
  let loop =
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.v "N")
      [ B.assign "j" (Ast.Load xi); Ast.Store (yj, B.v "i") ]
  in
  let loop_id = match loop with Ast.For { loop_id; _ } -> loop_id | _ -> -1 in
  let prog =
    B.program "figure8"
      [
        B.assign "x" (Ast.Load x_load);
        B.assign "y" (Ast.Load y_load);
        loop;
        B.memset b ~dst:"x" ~doff:(B.i 0) ~len:B.(i 4 * v "N") ~value:(B.i 0);
      ]
  in
  (prog, x_load, y_load, xi, yj, loop_id)

let test_figure8_giantsan () =
  let prog, x_load, y_load, xi, yj, loop_id = figure8 () in
  let plan = Instrument.plan Instrument.Giantsan prog in
  (* p[0], p[1] merged into one span check *)
  Alcotest.(check bool) "p[0] eliminated" true
    (Plan.decision_of plan x_load.Ast.acc_id = Plan.Eliminated);
  Alcotest.(check bool) "p[1] eliminated" true
    (Plan.decision_of plan y_load.Ast.acc_id = Plan.Eliminated);
  let merged = Plan.stmt_pre_of plan x_load.Ast.acc_id in
  Alcotest.(check int) "one merged span check" 1 (List.length merged);
  (match merged with
  | [ { Plan.rg_base = "p"; rg_lo = Ast.Int 0; rg_hi = Ast.Int 16 } ] -> ()
  | _ -> Alcotest.fail "span should be CI(p, p+16)");
  (* x[i] promoted to a preheader check CI(x, x + 4N) *)
  Alcotest.(check bool) "x[i] eliminated" true
    (Plan.decision_of plan xi.Ast.acc_id = Plan.Eliminated);
  (match Plan.loop_pre_of plan loop_id with
  | [ { Plan.rg_base = "x"; _ } ] -> ()
  | l -> Alcotest.failf "expected 1 preheader check on x, got %d" (List.length l));
  (* y[j] is data-dependent: history-cached *)
  Alcotest.(check bool) "y[j] cached" true
    (Plan.decision_of plan yj.Ast.acc_id = Plan.Cached);
  Alcotest.(check (list string)) "cache on y" [ "y" ]
    (Plan.caches_of plan loop_id)

let test_figure8_asan () =
  let prog, x_load, y_load, xi, yj, _ = figure8 () in
  let plan = Instrument.plan Instrument.Asan prog in
  List.iter
    (fun (acc : Ast.access) ->
      Alcotest.(check bool) "everything plain" true
        (Plan.decision_of plan acc.Ast.acc_id = Plan.Plain))
    [ x_load; y_load; xi; yj ];
  Alcotest.(check bool) "no anchors" false plan.Plan.use_anchor

let test_figure8_asanmm () =
  let prog, x_load, y_load, xi, yj, loop_id = figure8 () in
  let plan = Instrument.plan Instrument.Asanmm prog in
  (* different offsets: ASan-- cannot span-merge them *)
  Alcotest.(check bool) "p[0] stays" true
    (Plan.decision_of plan x_load.Ast.acc_id = Plan.Plain);
  Alcotest.(check bool) "p[1] stays" true
    (Plan.decision_of plan y_load.Ast.acc_id = Plan.Plain);
  (* the affine LOAD x[i] gets ASan--'s first+last endpoint elision... *)
  Alcotest.(check bool) "x[i] endpoint-elided" true
    (Plan.decision_of plan xi.Ast.acc_id = Plan.Eliminated);
  Alcotest.(check int) "two endpoint checks" 2
    (List.length (Plan.loop_pre_of plan loop_id));
  (* ...but the data-dependent store y[j] stays instruction-level *)
  Alcotest.(check bool) "y[j] per-iteration" true
    (Plan.decision_of plan yj.Ast.acc_id = Plan.Plain)

let test_figure8_ablations () =
  let prog, _, _, xi, yj, _ = figure8 () in
  let cache_only = Instrument.plan Instrument.Giantsan_cache_only prog in
  Alcotest.(check bool) "CacheOnly: x[i] cached, not promoted" true
    (Plan.decision_of cache_only xi.Ast.acc_id = Plan.Cached);
  Alcotest.(check bool) "CacheOnly: y[j] cached" true
    (Plan.decision_of cache_only yj.Ast.acc_id = Plan.Cached);
  let elim_only = Instrument.plan Instrument.Giantsan_elim_only prog in
  Alcotest.(check bool) "ElimOnly: x[i] promoted" true
    (Plan.decision_of elim_only xi.Ast.acc_id = Plan.Eliminated);
  Alcotest.(check bool) "ElimOnly: y[j] plain (no cache)" true
    (Plan.decision_of elim_only yj.Ast.acc_id = Plan.Plain)

let test_asanmm_dedupe () =
  (* p[0] + p[0]: the second, identical check is redundant *)
  let b = B.create () in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:4 () in
  let a2 = B.access b ~base:"p" ~index:(B.i 0) ~scale:4 () in
  let prog =
    B.program "dup"
      [
        B.malloc "p" (B.i 64);
        B.assign "s" B.(Ast.Load a1 + Ast.Load a2);
      ]
  in
  let plan = Instrument.plan Instrument.Asanmm prog in
  Alcotest.(check bool) "first stays" true
    (Plan.decision_of plan a1.Ast.acc_id = Plan.Plain);
  Alcotest.(check bool) "duplicate dropped" true
    (Plan.decision_of plan a2.Ast.acc_id = Plan.Eliminated)

let test_reassignment_blocks_merge () =
  (* p[0]; p = q; p[0] — the two accesses are different objects *)
  let b = B.create () in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:4 () in
  let a2 = B.access b ~base:"p" ~index:(B.i 0) ~scale:4 () in
  let prog =
    B.program "reassign"
      [
        B.malloc "p" (B.i 64);
        B.malloc "q" (B.i 64);
        B.assign "s" (Ast.Load a1);
        B.assign "p" (B.v "q");
        B.assign "t" (Ast.Load a2);
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "no merge across reassignment" true
    (Plan.decision_of plan a1.Ast.acc_id = Plan.Plain
    && Plan.decision_of plan a2.Ast.acc_id = Plan.Plain)

let test_free_blocks_promotion () =
  (* a loop that frees inside its body must not be promoted *)
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:4 () in
  let prog =
    B.program "free_in_loop"
      [
        B.malloc "p" (B.i 256);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 4)
          [
            Ast.Store (acc, B.i 1);
            B.if_ B.(v "i" = i 3) [ B.free (B.v "p") ] [];
          ];
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "not promoted (freed in body)" true
    (Plan.decision_of plan acc.Ast.acc_id <> Plan.Eliminated)

let test_if_guard_blocks_promotion () =
  (* conditionally executed accesses must not be hoisted (could check bytes
     that are never touched) — they fall back to caching *)
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:4 () in
  let prog =
    B.program "guarded"
      [
        B.malloc "p" (B.i 256);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 100)
          [ B.if_ B.(v "i" < i 3) [ Ast.Store (acc, B.i 1) ] [] ];
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "guarded access cached, not promoted" true
    (Plan.decision_of plan acc.Ast.acc_id = Plan.Cached)

let test_variant_bound_blocks_promotion () =
  (* hi is reassigned inside the loop: bounds not invariant *)
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:4 () in
  let prog =
    B.program "variant_bound"
      [
        B.malloc "p" (B.i 256);
        B.assign "n" (B.i 10);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.v "n")
          [ Ast.Store (acc, B.i 1); B.assign "n" B.(v "n" - i 1) ];
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "variant bound: cached fallback" true
    (Plan.decision_of plan acc.Ast.acc_id = Plan.Cached)

let test_while_loop_cached () =
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.v "i") ~scale:8 () in
  let prog =
    B.program "while"
      [
        B.malloc "p" (B.i 256);
        B.assign "i" (B.i 0);
        B.while_ b ~cond:B.(v "i" < i 32)
          [ Ast.Store (acc, B.v "i"); B.assign "i" B.(v "i" + i 1) ];
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "while-loop access cached" true
    (Plan.decision_of plan acc.Ast.acc_id = Plan.Cached);
  let plan_elim = Instrument.plan Instrument.Giantsan_elim_only prog in
  Alcotest.(check bool) "no cache in ElimOnly: plain" true
    (Plan.decision_of plan_elim acc.Ast.acc_id = Plan.Plain)

let test_asanmm_invariant_hoist () =
  (* p[3] inside a loop: same address every iteration — ASan-- hoists it *)
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:(B.i 3) ~scale:4 () in
  let loop =
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 50) [ Ast.Store (acc, B.v "i") ]
  in
  let loop_id = match loop with Ast.For { loop_id; _ } -> loop_id | _ -> -1 in
  let prog = B.program "hoist" [ B.malloc "p" (B.i 64); loop ] in
  let plan = Instrument.plan Instrument.Asanmm prog in
  Alcotest.(check bool) "hoisted" true
    (Plan.decision_of plan acc.Ast.acc_id = Plan.Eliminated);
  Alcotest.(check int) "one preheader check" 1
    (List.length (Plan.loop_pre_of plan loop_id))

let test_negative_stride_promotion () =
  (* p[N-1-i]: coeff -4; the promoted footprint still covers [0, 4N) *)
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:B.(v "N" - i 1 - v "i") ~scale:4 () in
  let loop =
    B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.v "N") [ Ast.Store (acc, B.v "i") ]
  in
  let loop_id = match loop with Ast.For { loop_id; _ } -> loop_id | _ -> -1 in
  let prog =
    B.program "reverse" [ B.malloc "p" (B.i 256); B.assign "N" (B.i 64); loop ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "reverse affine promoted" true
    (Plan.decision_of plan acc.Ast.acc_id = Plan.Eliminated);
  Alcotest.(check int) "one preheader check" 1
    (List.length (Plan.loop_pre_of plan loop_id))

let test_copy_propagation_merges () =
  (* q = p: accesses through q must-alias accesses through p *)
  let b = B.create () in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  let a2 = B.access b ~base:"q" ~index:(B.i 1) ~scale:8 () in
  let prog =
    B.program "copyprop"
      [
        B.malloc "p" (B.i 64);
        B.assign "q" (B.v "p");
        B.assign "s" B.(Ast.Load a1 + Ast.Load a2);
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "both eliminated" true
    (Plan.decision_of plan a1.Ast.acc_id = Plan.Eliminated
    && Plan.decision_of plan a2.Ast.acc_id = Plan.Eliminated);
  (match Plan.stmt_pre_of plan a1.Ast.acc_id with
  | [ { Plan.rg_base = "p"; rg_lo = Ast.Int 0; rg_hi = Ast.Int 16 } ] -> ()
  | _ -> Alcotest.fail "expected one span CI(p, p+16) keyed on the root");
  (* the merged program still runs clean *)
  let san = Helpers.giantsan () in
  let out = Giantsan_analysis.Interp.run san plan prog in
  Alcotest.(check bool) "clean run" true (out.Giantsan_analysis.Interp.reports = [])

let test_copy_propagation_root_reassign () =
  (* reassigning the root kills the alias: no merge across it *)
  let b = B.create () in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  let a2 = B.access b ~base:"q" ~index:(B.i 1) ~scale:8 () in
  let prog =
    B.program "copyprop_kill"
      [
        B.malloc "p" (B.i 64);
        B.assign "q" (B.v "p");
        B.assign "s" (Ast.Load a1);
        B.malloc "p" (B.i 64);
        B.assign "t" (Ast.Load a2);
      ]
  in
  let plan = Instrument.plan Instrument.Giantsan prog in
  Alcotest.(check bool) "no merge across the root's death" true
    (Plan.decision_of plan a1.Ast.acc_id = Plan.Plain
    && Plan.decision_of plan a2.Ast.acc_id = Plan.Plain)

let test_native_plan_disabled () =
  let prog, _, _, _, _, _ = figure8 () in
  let plan = Instrument.plan Instrument.Native prog in
  Alcotest.(check bool) "disabled" false plan.Plan.enabled

let test_static_stats () =
  let prog, _, _, _, _, _ = figure8 () in
  let stats = Plan.static_stats (Instrument.plan Instrument.Giantsan prog) in
  Alcotest.(check int) "eliminated sites" 3 stats.Plan.s_eliminated;
  Alcotest.(check int) "cached sites" 1 stats.Plan.s_cached;
  Alcotest.(check bool) "pre-checks exist" true (stats.Plan.s_pre_checks >= 2)

let suite =
  ( "instrument",
    [
      Helpers.qt "Figure 8: GiantSan plan" `Quick test_figure8_giantsan;
      Helpers.qt "Figure 8: ASan plan" `Quick test_figure8_asan;
      Helpers.qt "Figure 8: ASan-- plan" `Quick test_figure8_asanmm;
      Helpers.qt "Figure 8: ablation plans" `Quick test_figure8_ablations;
      Helpers.qt "ASan--: duplicate elimination" `Quick test_asanmm_dedupe;
      Helpers.qt "reassignment is a merge barrier" `Quick
        test_reassignment_blocks_merge;
      Helpers.qt "free in loop blocks promotion" `Quick test_free_blocks_promotion;
      Helpers.qt "if-guard blocks promotion" `Quick test_if_guard_blocks_promotion;
      Helpers.qt "variant bound blocks promotion" `Quick
        test_variant_bound_blocks_promotion;
      Helpers.qt "while loops cache" `Quick test_while_loop_cached;
      Helpers.qt "ASan--: invariant hoisting" `Quick test_asanmm_invariant_hoist;
      Helpers.qt "negative stride promotion" `Quick test_negative_stride_promotion;
      Helpers.qt "copy propagation merges aliases" `Quick
        test_copy_propagation_merges;
      Helpers.qt "root reassignment kills aliases" `Quick
        test_copy_propagation_root_reassign;
      Helpers.qt "native plan is disabled" `Quick test_native_plan_disabled;
      Helpers.qt "static stats" `Quick test_static_stats;
    ] )
