(* End-to-end: programs run through plans and sanitizers. *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Plan = Giantsan_analysis.Plan
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report

let run_with mode make_san prog =
  let san = make_san () in
  let plan = Instrument.plan mode prog in
  (san, Interp.run san plan prog)

(* sum the first 100 integers through memory *)
let sum_program () =
  let b = B.create () in
  B.program "sum"
    [
      B.malloc "p" (B.i 800);
      B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 100)
        [ B.store b ~base:"p" ~index:(B.v "i") ~scale:8 ~value:(B.v "i") () ];
      B.assign "acc" (B.i 0);
      B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 100)
        [
          B.assign "acc"
            B.(v "acc" + load b ~base:"p" ~index:(v "i") ~scale:8 ());
        ];
      B.free (B.v "p");
    ]

let test_semantics_all_modes () =
  List.iter
    (fun (mode, make_san) ->
      let _, out = run_with mode make_san (sum_program ()) in
      Alcotest.(check int)
        (Instrument.mode_name mode ^ " computes the same sum")
        4950 (Interp.var out "acc");
      Alcotest.(check (list string)) "no reports" []
        (List.map Report.to_string out.Interp.reports))
    [
      (Instrument.Native, Helpers.native ?config:None);
      (Instrument.Asan, Helpers.asan ?config:None);
      (Instrument.Asanmm, fun () -> Giantsan_asan.Asan_runtime.create_named "ASan--" Helpers.mid_config);
      (Instrument.Giantsan, Helpers.giantsan ?config:None);
      (Instrument.Giantsan_cache_only, Helpers.giantsan ?config:None);
      (Instrument.Giantsan_elim_only, Helpers.giantsan ?config:None);
    ]

let test_check_counts_figure8_style () =
  (* counted-loop program: ASan pays N checks, GiantSan pays O(1) *)
  let prog = sum_program () in
  let asan, _ = run_with Instrument.Asan Helpers.asan prog in
  let gs, _ = run_with Instrument.Giantsan Helpers.giantsan prog in
  let a_checks = Counters.total_checks asan.San.counters in
  let g_checks = Counters.total_checks gs.San.counters in
  Alcotest.(check bool)
    (Printf.sprintf "ASan %d checks >= 200" a_checks)
    true (a_checks >= 200);
  Alcotest.(check bool)
    (Printf.sprintf "GiantSan %d checks <= 10" g_checks)
    true (g_checks <= 10)

let overflow_loop_program n_past =
  (* writes 0..N+n_past over a 400-byte buffer: the tail overflows *)
  let b = B.create () in
  let iters = Stdlib.( + ) 50 n_past in
  B.program "overflow"
    [
      B.malloc "p" (B.i 400);
      B.assign "i" (B.i 0);
      B.while_ b ~cond:B.(v "i" < i iters)
        [
          B.store b ~base:"p" ~index:(B.v "i") ~scale:8 ~value:(B.v "i") ();
          B.assign "i" B.(v "i" + i 1);
        ];
    ]

let test_overflow_detected_by_all_sanitizers () =
  List.iter
    (fun (mode, make_san, name) ->
      let _, out = run_with mode make_san (overflow_loop_program 3) in
      Alcotest.(check bool) (name ^ " detects loop overflow") true
        (out.Interp.reports <> []))
    [
      (Instrument.Asan, Helpers.asan ?config:None, "ASan");
      (Instrument.Giantsan, Helpers.giantsan ?config:None, "GiantSan");
      (Instrument.Giantsan_cache_only, Helpers.giantsan ?config:None, "CacheOnly");
      (Instrument.Giantsan_elim_only, Helpers.giantsan ?config:None, "ElimOnly");
    ]

let test_native_does_not_detect () =
  let _, out = run_with Instrument.Native Helpers.native (overflow_loop_program 1) in
  Alcotest.(check (list string)) "native sees nothing" []
    (List.map Report.to_string out.Interp.reports)

let test_promoted_check_fires_before_loop () =
  (* a bounded loop that would overflow: the preheader CI already reports,
     so exactly one report suffices for the whole loop *)
  let b = B.create () in
  let prog =
    B.program "promoted_overflow"
      [
        B.malloc "p" (B.i 80);
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 20)
          [ B.store b ~base:"p" ~index:(B.v "i") ~scale:8 ~value:(B.i 7) () ];
      ]
  in
  let san, out = run_with Instrument.Giantsan Helpers.giantsan prog in
  Alcotest.(check bool) "report raised" true (out.Interp.reports <> []);
  Alcotest.(check bool) "one region check, no per-iteration work" true
    (san.San.counters.Counters.region_checks <= 2)

let test_memset_checked () =
  let b = B.create () in
  let mk len =
    B.program "memset"
      [
        B.malloc "p" (B.i 256);
        B.memset b ~dst:"p" ~doff:(B.i 0) ~len:(B.i len) ~value:(B.i 0xCC);
      ]
  in
  let _, ok = run_with Instrument.Giantsan Helpers.giantsan (mk 256) in
  Alcotest.(check (list string)) "exact fit passes" []
    (List.map Report.to_string ok.Interp.reports);
  let _, bad = run_with Instrument.Giantsan Helpers.giantsan (mk 257) in
  Alcotest.(check int) "overflowing memset reported" 1
    (List.length bad.Interp.reports)

let test_memcpy_checked () =
  let b = B.create () in
  let prog =
    B.program "memcpy"
      [
        B.malloc "src" (B.i 64);
        B.malloc "dst" (B.i 32);
        B.memcpy b ~dst:"dst" ~doff:(B.i 0) ~src:"src" ~soff:(B.i 0)
          ~len:(B.i 64);
      ]
  in
  let _, out = run_with Instrument.Giantsan Helpers.giantsan prog in
  Alcotest.(check bool) "destination overflow caught" true
    (out.Interp.reports <> [])

let test_memset_data_effect () =
  let b = B.create () in
  let prog =
    B.program "memset_data"
      [
        B.malloc "p" (B.i 64);
        B.memset b ~dst:"p" ~doff:(B.i 0) ~len:(B.i 64) ~value:(B.i 0xAB);
        B.assign "v" (B.load b ~base:"p" ~index:(B.i 3) ~scale:1 ());
      ]
  in
  let _, out = run_with Instrument.Giantsan Helpers.giantsan prog in
  Alcotest.(check int) "filled byte readable" 0xAB (Interp.var out "v")

let test_uaf_flow () =
  let b = B.create () in
  let prog =
    B.program "uaf"
      [
        B.malloc "p" (B.i 64);
        B.free (B.v "p");
        B.assign "v" (B.load b ~base:"p" ~index:(B.i 0) ~scale:8 ());
      ]
  in
  List.iter
    (fun (mode, make_san, name) ->
      let _, out = run_with mode make_san prog in
      match out.Interp.reports with
      | [ r ] ->
        Alcotest.(check string) (name ^ " classifies UAF") "heap-use-after-free"
          (Report.kind_name r.Report.kind)
      | l -> Alcotest.failf "%s: expected 1 report, got %d" name (List.length l))
    [
      (Instrument.Asan, Helpers.asan ?config:None, "ASan");
      (Instrument.Giantsan, Helpers.giantsan ?config:None, "GiantSan");
    ]

let test_double_free_flow () =
  let b = B.create () in
  ignore b;
  let prog =
    B.program "df" [ B.malloc "p" (B.i 64); B.free (B.v "p"); B.free (B.v "p") ]
  in
  let _, out = run_with Instrument.Giantsan Helpers.giantsan prog in
  match out.Interp.reports with
  | [ r ] ->
    Alcotest.(check string) "double free" "double-free" (Report.kind_name r.Report.kind)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

let test_fuel_exhaustion () =
  let b = B.create () in
  let prog =
    B.program "spin"
      [ B.assign "i" (B.i 0); B.while_ b ~cond:(B.i 1) [ B.assign "i" B.(v "i" + i 1) ] ]
  in
  let san = Helpers.native () in
  let out = Interp.run ~fuel:10_000 san (Instrument.plan Instrument.Native prog) prog in
  Alcotest.(check bool) "fuel ran out" true out.Interp.fuel_exhausted

let test_out_of_memory_flow () =
  let b = B.create () in
  let prog =
    B.program "oom"
      [
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 1000000)
          [ B.malloc "p" (B.i 4096) ];
      ]
  in
  let config = { Helpers.small_config with Giantsan_memsim.Heap.quarantine_budget = 0 } in
  let san = Helpers.native ~config () in
  let out = Interp.run san (Instrument.plan Instrument.Native prog) prog in
  Alcotest.(check bool) "stopped on OOM" true out.Interp.out_of_memory

let test_wild_write_crashes_native () =
  let b = B.create () in
  let prog =
    B.program "wild"
      [
        B.malloc "p" (B.i 64);
        B.store b ~base:"p" ~index:(B.i 100000000) ~scale:8 ~value:(B.i 1) ();
      ]
  in
  let _, out = run_with Instrument.Native Helpers.native prog in
  Alcotest.(check bool) "native crashes" true out.Interp.crashed;
  (* under GiantSan the check fires first and the op is suppressed *)
  let _, out2 = run_with Instrument.Giantsan Helpers.giantsan prog in
  Alcotest.(check bool) "giantsan survives" false out2.Interp.crashed;
  Alcotest.(check bool) "giantsan reports" true (out2.Interp.reports <> [])

let test_exec_stats_breakdown () =
  let prog = sum_program () in
  let _, out = run_with Instrument.Giantsan Helpers.giantsan prog in
  let s = out.Interp.stats in
  (* both loops promoted: all 200 accesses eliminated *)
  Alcotest.(check int) "eliminated executions" 200 s.Interp.x_eliminated;
  Alcotest.(check int) "no plain executions" 0 s.Interp.x_plain;
  let _, out_asan = run_with Instrument.Asan Helpers.asan prog in
  Alcotest.(check int) "asan: everything plain" 200 out_asan.Interp.stats.Interp.x_plain

let test_if_branches () =
  let b = B.create () in
  ignore b;
  let prog =
    B.program "branches"
      [
        B.assign "x" (B.i 5);
        B.if_ B.(v "x" > i 3)
          [ B.assign "y" (B.i 1) ]
          [ B.assign "y" (B.i 2) ];
        B.if_ B.(v "x" > i 100)
          [ B.assign "z" (B.i 1) ]
          [ B.assign "z" (B.i 2) ];
      ]
  in
  let san = Helpers.native () in
  let out = Interp.run san (Instrument.plan Instrument.Native prog) prog in
  Alcotest.(check int) "then branch" 1 (Interp.var out "y");
  Alcotest.(check int) "else branch" 2 (Interp.var out "z")

let test_ops_counted () =
  let prog = sum_program () in
  let _, out = run_with Instrument.Native Helpers.native prog in
  Alcotest.(check bool) "work was accounted" true (out.Interp.ops > 500)

let suite =
  ( "interp",
    [
      Helpers.qt "semantics identical across all modes" `Quick
        test_semantics_all_modes;
      Helpers.qt "check counts: N vs O(1)" `Quick test_check_counts_figure8_style;
      Helpers.qt "loop overflow detected by all tools" `Quick
        test_overflow_detected_by_all_sanitizers;
      Helpers.qt "native detects nothing" `Quick test_native_does_not_detect;
      Helpers.qt "promoted preheader check fires" `Quick
        test_promoted_check_fires_before_loop;
      Helpers.qt "memset is guarded" `Quick test_memset_checked;
      Helpers.qt "memcpy is guarded" `Quick test_memcpy_checked;
      Helpers.qt "memset writes data" `Quick test_memset_data_effect;
      Helpers.qt "use-after-free flow" `Quick test_uaf_flow;
      Helpers.qt "double-free flow" `Quick test_double_free_flow;
      Helpers.qt "fuel exhaustion" `Quick test_fuel_exhaustion;
      Helpers.qt "out-of-memory stops the run" `Quick test_out_of_memory_flow;
      Helpers.qt "wild write: crash vs report" `Quick test_wild_write_crashes_native;
      Helpers.qt "execution stats breakdown" `Quick test_exec_stats_breakdown;
      Helpers.qt "if branches" `Quick test_if_branches;
      Helpers.qt "native ops counted" `Quick test_ops_counted;
    ] )
