(* The LFP baseline: size-class bounds, their false negatives, and the
   behaviours Table 3 relies on. *)

module San = Giantsan_sanitizer.Sanitizer
module Memsim = Giantsan_memsim
module Size_class = Giantsan_lfp.Size_class

let test_size_classes () =
  Alcotest.(check int) "min class" 16 (Size_class.round_up 1);
  Alcotest.(check int) "exact" 16 (Size_class.round_up 16);
  Alcotest.(check int) "17 -> 20" 20 (Size_class.round_up 17);
  Alcotest.(check int) "600 -> 640" 640 (Size_class.round_up 600);
  Alcotest.(check int) "1024 exact" 1024 (Size_class.round_up 1024);
  Alcotest.(check int) "1025 -> 1280" 1280 (Size_class.round_up 1025)

let test_class_props =
  Helpers.q "round_up is a sound class"
    QCheck.(int_range 0 100000)
    (fun size ->
      let c = Size_class.round_up size in
      c >= size && c >= 16 && Size_class.is_class_size c
      && Size_class.slack size = c - size)

let test_class_slack_bounded =
  Helpers.q "slack < size/4 + 16"
    QCheck.(int_range 1 100000)
    (fun size -> Size_class.slack size <= (size / 4) + 16)

let fresh size =
  let san = Helpers.lfp ~config:Helpers.small_config () in
  let obj = san.San.malloc size in
  (san, obj.Memsim.Memobj.base)

let test_inbounds () =
  let san, base = fresh 100 in
  Alcotest.(check bool) "inside" true
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 50) ~width:4))

let test_slack_false_negative () =
  (* char p[600]: rounded to 640 -> p[610] is missed, p[700] is caught *)
  let san, base = fresh 600 in
  Alcotest.(check bool) "inside slack: missed" true
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 610) ~width:1));
  Alcotest.(check bool) "beyond class: caught" false
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 700) ~width:1))

let test_underflow_detected () =
  let san, base = fresh 100 in
  Alcotest.(check bool) "below base" false
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base - 1) ~width:1))

let test_uaf_detected () =
  let san, base = fresh 64 in
  ignore (san.San.free base);
  Alcotest.(check bool) "freed slot" false
    (Helpers.check_is_safe (san.San.access ~base ~addr:(base + 8) ~width:4))

let test_free_errors_detected () =
  let san, base = fresh 64 in
  (match san.San.free (base + 8) with
  | Some r ->
    Alcotest.(check string) "free-not-at-start" "free-not-at-start"
      (Giantsan_sanitizer.Report.kind_name r.Giantsan_sanitizer.Report.kind)
  | None -> Alcotest.fail "free-not-at-start missed");
  ignore (san.San.free base);
  match san.San.free base with
  | Some _ -> ()
  | None -> Alcotest.fail "double free missed"

let test_region_check_constant_cost () =
  let san, base = fresh 2048 in
  Alcotest.(check bool) "large region ok" true
    (Helpers.check_is_safe (san.San.check_region ~lo:base ~hi:(base + 2048)));
  Alcotest.(check int) "no shadow memory at all" 0 (san.San.shadow_loads ())

let test_lfp_never_false_positive =
  (* LFP over-approximates: anything the oracle allows, LFP must allow *)
  Helpers.q "no false positives"
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 15) (pair small_nat small_nat)))
    (fun (seed, picks) ->
      let rng = Giantsan_util.Rng.create seed in
      let san, live, _ = Helpers.random_scene rng Helpers.lfp in
      let objects = Array.of_list live in
      if Array.length objects = 0 then true
      else
        List.for_all
          (fun (obj_pick, off_pick) ->
            let obj = objects.(obj_pick mod Array.length objects) in
            let base = obj.Memsim.Memobj.base in
            let off = off_pick mod (max 1 obj.Memsim.Memobj.size) in
            Helpers.check_is_safe (san.San.access ~base ~addr:(base + off) ~width:1))
          picks)

let test_lfp_vs_giantsan_detection_gap () =
  (* the Table 3 story in miniature: small overflows over a range of sizes *)
  let missed_by_lfp = ref 0 and missed_by_gs = ref 0 in
  let sizes = [ 10; 25; 33; 60; 100; 130; 250; 600; 1000 ] in
  List.iter
    (fun size ->
      let lfp = Helpers.lfp ~config:Helpers.small_config () in
      let gs = Helpers.giantsan ~config:Helpers.small_config () in
      let lo = lfp.San.malloc size and go = gs.San.malloc size in
      let l_base = lo.Memsim.Memobj.base and g_base = go.Memsim.Memobj.base in
      (* off-by-one write, the classic Juliet shape *)
      if Helpers.check_is_safe (lfp.San.access ~base:l_base ~addr:(l_base + size) ~width:1)
      then incr missed_by_lfp;
      if Helpers.check_is_safe (gs.San.access ~base:g_base ~addr:(g_base + size) ~width:1)
      then incr missed_by_gs)
    sizes;
  Alcotest.(check int) "GiantSan misses none" 0 !missed_by_gs;
  Alcotest.(check bool)
    (Printf.sprintf "LFP misses most (%d/%d)" !missed_by_lfp (List.length sizes))
    true
    (!missed_by_lfp >= 7)

let suite =
  ( "lfp",
    [
      Helpers.qt "size classes" `Quick test_size_classes;
      test_class_props;
      test_class_slack_bounded;
      Helpers.qt "in-bounds pass" `Quick test_inbounds;
      Helpers.qt "slack hides overflows (BBC's p[700])" `Quick
        test_slack_false_negative;
      Helpers.qt "underflow detected" `Quick test_underflow_detected;
      Helpers.qt "freed slot detected" `Quick test_uaf_detected;
      Helpers.qt "free errors detected" `Quick test_free_errors_detected;
      Helpers.qt "region checks cost no metadata" `Quick
        test_region_check_constant_cost;
      test_lfp_never_false_positive;
      Helpers.qt "off-by-one: LFP blind, GiantSan sharp" `Quick
        test_lfp_vs_giantsan_detection_gap;
    ] )
