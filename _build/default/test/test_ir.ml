(* IR construction, printing, and the SCEV-lite expression analysis. *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Pp = Giantsan_ir.Pp
module Affine = Giantsan_analysis.Affine

let test_builder_unique_ids () =
  let b = B.create () in
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:4 () in
  let a2 = B.access b ~base:"p" ~index:(B.i 1) ~scale:4 () in
  let l = B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 10) [] in
  Alcotest.(check bool) "distinct access ids" true (a1.Ast.acc_id <> a2.Ast.acc_id);
  (match l with
  | Ast.For { loop_id; _ } ->
    Alcotest.(check bool) "loop id distinct" true
      (loop_id <> a1.Ast.acc_id && loop_id <> a2.Ast.acc_id)
  | _ -> Alcotest.fail "expected For")

let test_default_widths () =
  let b = B.create () in
  let a = B.access b ~base:"p" ~index:(B.i 0) ~scale:8 () in
  Alcotest.(check int) "w8 for scale 8" 8 (Ast.bytes_of_width a.Ast.width);
  let a1 = B.access b ~base:"p" ~index:(B.i 0) ~scale:3 () in
  Alcotest.(check int) "w1 for odd scale" 1 (Ast.bytes_of_width a1.Ast.width)

let test_accesses_collection () =
  let b = B.create () in
  let prog =
    B.program "t"
      [
        B.malloc "p" (B.i 64);
        B.assign "x" (B.load b ~base:"p" ~index:(B.i 0) ~scale:4 ());
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i 4)
          [ B.store b ~base:"p" ~index:(B.v "i") ~scale:4 ~value:(B.v "i") () ];
      ]
  in
  Alcotest.(check int) "two accesses" 2 (List.length (Ast.program_accesses prog))

let test_assigned_vars () =
  let b = B.create () in
  let body =
    [
      B.assign "x" (B.i 1);
      B.if_ B.(v "x" < i 3) [ B.assign "y" (B.i 2) ] [];
      B.for_ b ~idx:"k" ~lo:(B.i 0) ~hi:(B.i 2) [ B.assign "z" (B.i 9) ];
    ]
  in
  let vars = Ast.assigned_vars body in
  List.iter
    (fun v -> Alcotest.(check bool) (v ^ " assigned") true (List.mem v vars))
    [ "x"; "y"; "k"; "z" ];
  Alcotest.(check bool) "p not assigned" false (List.mem "p" vars)

let test_pp_smoke () =
  let b = B.create () in
  let prog =
    B.program "demo"
      [
        B.malloc "p" (B.i 64);
        B.memset b ~dst:"p" ~doff:(B.i 0) ~len:(B.i 64) ~value:(B.i 0);
        B.free (B.v "p");
      ]
  in
  let s = Pp.program_to_string prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring_contains.contains s needle))
    [ "demo"; "malloc"; "memset"; "free" ]

let test_const_eval () =
  Alcotest.(check (option int)) "arith" (Some 14)
    (Affine.const_eval B.(i 2 + (i 3 * i 4)));
  Alcotest.(check (option int)) "cmp" (Some 1)
    (Affine.const_eval B.(i 2 < i 3));
  Alcotest.(check (option int)) "var blocks" None
    (Affine.const_eval B.(i 2 + v "x"));
  Alcotest.(check (option int)) "div by zero" None
    (Affine.const_eval B.(i 2 / i 0))

let test_linearize () =
  let lin e =
    match Affine.linearize ~idx:"i" e with
    | Some { Affine.coeff; rest } -> Some (coeff, Affine.const_eval rest)
    | None -> None
  in
  Alcotest.(check (option (pair int (option int)))) "i" (Some (1, Some 0))
    (lin (B.v "i"));
  Alcotest.(check (option (pair int (option int)))) "3*i+5" (Some (3, Some 5))
    (lin B.((i 3 * v "i") + i 5));
  Alcotest.(check (option (pair int (option int)))) "i*2 - i" (Some (1, Some 0))
    (lin B.((v "i" * i 2) - v "i"));
  Alcotest.(check (option (pair int (option int)))) "i*i rejected" None
    (lin B.(v "i" * v "i"));
  Alcotest.(check (option (pair int (option int)))) "i/2 rejected" None
    (lin B.(v "i" / i 2));
  (* invariant var in the rest *)
  (match Affine.linearize ~idx:"i" B.(v "i" + v "k") with
  | Some { Affine.coeff = 1; rest } ->
    Alcotest.(check (list string)) "rest mentions k" [ "k" ] (Ast.expr_vars rest)
  | _ -> Alcotest.fail "expected affine form")

let test_linearize_rejects_loads () =
  let b = B.create () in
  let e = B.(load b ~base:"p" ~index:(v "i") ~scale:4 () + v "i") in
  Alcotest.(check bool) "loads are not affine" true
    (Affine.linearize ~idx:"i" e = None)

let test_is_invariant () =
  Alcotest.(check bool) "const" true (Affine.is_invariant ~assigned:[ "i" ] (B.i 4));
  Alcotest.(check bool) "free var" true
    (Affine.is_invariant ~assigned:[ "i" ] (B.v "n"));
  Alcotest.(check bool) "assigned var" false
    (Affine.is_invariant ~assigned:[ "i"; "n" ] (B.v "n"));
  let b = B.create () in
  Alcotest.(check bool) "load" false
    (Affine.is_invariant ~assigned:[]
       (B.load b ~base:"p" ~index:(B.i 0) ~scale:4 ()))

let test_byte_offset () =
  let b = B.create () in
  let acc = B.access b ~base:"p" ~index:B.(v "i" + i 2) ~scale:4 ~disp:8 () in
  match Affine.byte_offset ~idx:"i" acc with
  | Some (a, rest) ->
    Alcotest.(check int) "coeff bytes" 4 a;
    Alcotest.(check (option int)) "rest bytes" (Some 16) (Affine.const_eval rest)
  | None -> Alcotest.fail "expected affine offset"

let test_simplify () =
  Alcotest.(check bool) "x+0 = x" true
    (Affine.simplify B.(v "x" + i 0) = B.v "x");
  Alcotest.(check bool) "1*x = x" true
    (Affine.simplify B.(i 1 * v "x") = B.v "x");
  Alcotest.(check bool) "0*x = 0" true
    (Affine.simplify B.(i 0 * v "x") = B.i 0);
  Alcotest.(check bool) "consts folded" true
    (Affine.simplify B.(i 2 + i 3) = B.i 5)

let suite =
  ( "ir",
    [
      Helpers.qt "builder: unique ids" `Quick test_builder_unique_ids;
      Helpers.qt "builder: default widths" `Quick test_default_widths;
      Helpers.qt "ast: access collection" `Quick test_accesses_collection;
      Helpers.qt "ast: assigned variables" `Quick test_assigned_vars;
      Helpers.qt "pp: renders the C-ish view" `Quick test_pp_smoke;
      Helpers.qt "affine: const_eval" `Quick test_const_eval;
      Helpers.qt "affine: linearize" `Quick test_linearize;
      Helpers.qt "affine: loads block linearity" `Quick test_linearize_rejects_loads;
      Helpers.qt "affine: invariance" `Quick test_is_invariant;
      Helpers.qt "affine: byte offsets" `Quick test_byte_offset;
      Helpers.qt "affine: simplify" `Quick test_simplify;
    ] )
