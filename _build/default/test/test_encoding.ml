module SC = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module AE = Giantsan_asan.Asan_encoding
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer

(* ------------------------------------------------------------------ *)
(* GiantSan state codes (Definition 1)                                 *)
(* ------------------------------------------------------------------ *)

let test_state_codes () =
  Alcotest.(check int) "(0)-folded is 64" 64 SC.good;
  Alcotest.(check int) "(3)-folded" 61 (SC.folded 3);
  Alcotest.(check int) "degree round-trip" 3 (SC.degree (SC.folded 3));
  Alcotest.(check int) "4-partial" 68 (SC.partial 4);
  Alcotest.(check bool) "partial not folded" false (SC.is_folded (SC.partial 1));
  Alcotest.(check bool) "freed is error" true (SC.is_error SC.freed);
  Alcotest.(check bool) "72 is reserved, not error" false (SC.is_error 72)

let test_monotonicity () =
  (* Definition 1: smaller state code = more addressable bytes following. *)
  let codes = List.init 10 (fun i -> SC.folded i) in
  List.iteri
    (fun i c ->
      List.iteri
        (fun j c' ->
          if i < j then
            Alcotest.(check bool) "deeper fold = smaller code" true (c > c'))
        codes)
    codes;
  Alcotest.(check bool) "folded < partial" true (SC.folded 0 < SC.partial 7);
  Alcotest.(check bool) "partial < error" true (SC.partial 1 < SC.freed)

let test_covered_bytes () =
  Alcotest.(check int) "(0)-folded covers 8" 8 (SC.covered_bytes SC.good);
  Alcotest.(check int) "(1)-folded covers 16" 16 (SC.covered_bytes (SC.folded 1));
  Alcotest.(check int) "(10)-folded covers 8*1024" 8192
    (SC.covered_bytes (SC.folded 10));
  Alcotest.(check int) "partial covers 0" 0 (SC.covered_bytes (SC.partial 4));
  Alcotest.(check int) "error covers 0" 0 (SC.covered_bytes SC.freed)

let test_covered_matches_paper_trick =
  (* (v <= 64) << (67 - v) from §4.2, on the codes where the shift is
     defined *)
  Helpers.q "covered = paper's shift trick"
    QCheck.(int_range (64 - SC.max_degree) 255)
    (fun v ->
      let expected = if v <= 64 then 1 lsl (67 - v) else 0 in
      SC.covered_bytes v = expected)

let test_addressable_in_segment () =
  Alcotest.(check int) "folded -> 8" 8 (SC.addressable_in_segment (SC.folded 5));
  Alcotest.(check int) "3-partial -> 3" 3 (SC.addressable_in_segment (SC.partial 3));
  Alcotest.(check int) "redzone -> 0" 0 (SC.addressable_in_segment SC.heap_redzone)

let test_describe () =
  Alcotest.(check string) "folded" "(2)-folded" (SC.describe (SC.folded 2));
  Alcotest.(check string) "partial" "4-partial" (SC.describe (SC.partial 4));
  Alcotest.(check string) "freed" "freed" (SC.describe SC.freed)

(* ------------------------------------------------------------------ *)
(* Folded poisoning (Figure 5)                                         *)
(* ------------------------------------------------------------------ *)

let test_figure5_pattern () =
  (* the 68-byte object of Figure 5: degrees 3 2 2 2 2 1 1 0 + 4-partial *)
  let m = Shadow_mem.create ~segments:64 ~fill:SC.unallocated in
  Folding.poison_good_run m ~first_seg:0 ~count:8;
  let degrees = List.init 8 (fun i -> SC.degree (Shadow_mem.peek m i)) in
  Alcotest.(check (list int)) "figure 5" [ 3; 2; 2; 2; 2; 1; 1; 0 ] degrees

let test_pattern_counts =
  (* "there are 2^i consecutive (i)-folded segments": for any G, reading
     the run tail-to-head we see 1 zero-fold, 2 one-folds, 4 two-folds...
     truncated at the top. *)
  Helpers.q "folded run structure"
    QCheck.(int_range 1 600)
    (fun count ->
      let m = Shadow_mem.create ~segments:1024 ~fill:SC.unallocated in
      Folding.poison_good_run m ~first_seg:0 ~count;
      let ok = ref true in
      for j = 0 to count - 1 do
        let expect = Giantsan_util.Bitops.log2_floor (count - j) in
        if SC.degree (Shadow_mem.peek m j) <> expect then ok := false
      done;
      !ok)

let test_fold_soundness =
  (* every fold's claim is truthful: the covered bytes are inside the run *)
  Helpers.q "fold claims stay within the good run"
    QCheck.(int_range 1 600)
    (fun count ->
      let m = Shadow_mem.create ~segments:1024 ~fill:SC.unallocated in
      Folding.poison_good_run m ~first_seg:0 ~count;
      let ok = ref true in
      for j = 0 to count - 1 do
        let covered = SC.covered_bytes (Shadow_mem.peek m j) in
        if (j * 8) + covered > count * 8 then ok := false
      done;
      !ok)

let test_fold_tightness =
  (* and the claim is the best binary claim: doubling it would overrun *)
  Helpers.q "fold degree is maximal"
    QCheck.(int_range 1 600)
    (fun count ->
      let m = Shadow_mem.create ~segments:1024 ~fill:SC.unallocated in
      Folding.poison_good_run m ~first_seg:0 ~count;
      let ok = ref true in
      for j = 0 to count - 1 do
        let covered = SC.covered_bytes (Shadow_mem.peek m j) in
        if (j * 8) + (2 * covered) <= count * 8 then ok := false
      done;
      !ok)

let test_poison_alloc_layout () =
  let m = Shadow_mem.create ~segments:64 ~fill:SC.unallocated in
  let obj =
    {
      Memsim.Memobj.id = 0;
      kind = Memsim.Memobj.Heap;
      base = 16;
      size = 20;
      block_base = 0;
      block_len = 56;
      status = Memsim.Memobj.Live;
    }
  in
  Folding.poison_alloc m obj;
  Alcotest.(check int) "left rz" SC.heap_redzone (Shadow_mem.peek m 0);
  Alcotest.(check int) "left rz 2" SC.heap_redzone (Shadow_mem.peek m 1);
  Alcotest.(check int) "first seg (1)-folded" (SC.folded 1) (Shadow_mem.peek m 2);
  Alcotest.(check int) "second seg (0)-folded" SC.good (Shadow_mem.peek m 3);
  Alcotest.(check int) "partial 4" (SC.partial 4) (Shadow_mem.peek m 4);
  Alcotest.(check int) "right rz" SC.heap_redzone (Shadow_mem.peek m 5)

let test_poison_free_evict () =
  let m = Shadow_mem.create ~segments:64 ~fill:SC.unallocated in
  let obj =
    {
      Memsim.Memobj.id = 0;
      kind = Memsim.Memobj.Heap;
      base = 16;
      size = 20;
      block_base = 0;
      block_len = 56;
      status = Memsim.Memobj.Live;
    }
  in
  Folding.poison_alloc m obj;
  Folding.poison_free m obj;
  Alcotest.(check int) "freed code" SC.freed (Shadow_mem.peek m 2);
  Alcotest.(check int) "partial seg freed too" SC.freed (Shadow_mem.peek m 4);
  Alcotest.(check int) "rz untouched" SC.heap_redzone (Shadow_mem.peek m 0);
  Folding.poison_evict m obj;
  Alcotest.(check int) "whole block unallocated" SC.unallocated (Shadow_mem.peek m 0)

let test_upper_bound_walk () =
  let m = Shadow_mem.create ~segments:64 ~fill:SC.unallocated in
  Folding.poison_good_run m ~first_seg:2 ~count:8;
  Shadow_mem.set m 10 (SC.partial 4);
  (* object of 68 bytes at byte 16: bound should be 16 + 68 = 84 *)
  Alcotest.(check int) "exact bound" 84 (Folding.upper_bound m ~addr:16);
  Alcotest.(check int) "bound from middle" 84 (Folding.upper_bound m ~addr:40);
  Alcotest.(check int) "non-addressable stays put" 8
    (Folding.upper_bound m ~addr:8)

(* ------------------------------------------------------------------ *)
(* ASan encoding                                                       *)
(* ------------------------------------------------------------------ *)

let test_asan_codes () =
  Alcotest.(check int) "signed decode" (-6) (AE.decode_signed AE.heap_redzone);
  Alcotest.(check int) "positive unchanged" 5 (AE.decode_signed 5);
  Alcotest.(check bool) "error code" true (AE.is_error_code AE.freed);
  Alcotest.(check int) "good covers 8" 8 (AE.addressable_in_segment AE.good);
  Alcotest.(check int) "partial covers k" 3 (AE.addressable_in_segment (AE.partial 3));
  Alcotest.(check int) "redzone covers 0" 0 (AE.addressable_in_segment AE.heap_redzone)

let test_asan_poison_alloc () =
  let m = Shadow_mem.create ~segments:64 ~fill:AE.unallocated in
  let obj =
    {
      Memsim.Memobj.id = 0;
      kind = Memsim.Memobj.Heap;
      base = 16;
      size = 20;
      block_base = 0;
      block_len = 56;
      status = Memsim.Memobj.Live;
    }
  in
  AE.poison_alloc m obj;
  Alcotest.(check int) "left rz" AE.heap_redzone (Shadow_mem.peek m 1);
  Alcotest.(check int) "good" 0 (Shadow_mem.peek m 2);
  Alcotest.(check int) "good" 0 (Shadow_mem.peek m 3);
  Alcotest.(check int) "4-partial" 4 (Shadow_mem.peek m 4);
  Alcotest.(check int) "right rz" AE.heap_redzone (Shadow_mem.peek m 5)

let suite =
  ( "encoding",
    [
      Helpers.qt "giantsan: Definition 1 codes" `Quick test_state_codes;
      Helpers.qt "giantsan: monotone codes" `Quick test_monotonicity;
      Helpers.qt "giantsan: covered_bytes" `Quick test_covered_bytes;
      test_covered_matches_paper_trick;
      Helpers.qt "giantsan: addressable prefix" `Quick test_addressable_in_segment;
      Helpers.qt "giantsan: describe" `Quick test_describe;
      Helpers.qt "folding: Figure 5 pattern" `Quick test_figure5_pattern;
      test_pattern_counts;
      test_fold_soundness;
      test_fold_tightness;
      Helpers.qt "folding: alloc layout" `Quick test_poison_alloc_layout;
      Helpers.qt "folding: free and evict" `Quick test_poison_free_evict;
      Helpers.qt "folding: bound walk (Figure 7)" `Quick test_upper_bound_walk;
      Helpers.qt "asan: code semantics" `Quick test_asan_codes;
      Helpers.qt "asan: alloc layout" `Quick test_asan_poison_alloc;
    ] )
