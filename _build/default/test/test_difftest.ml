(* Differential fuzzing across sanitizers: thousands of random heaps. *)

module Difftest = Giantsan_bugs.Difftest
module Scenario = Giantsan_bugs.Scenario
module Harness = Giantsan_bugs.Harness

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:400 arb f)

let test_clean_validates =
  prop "clean scenarios really are clean" QCheck.small_int (fun seed ->
      Scenario.validate (Difftest.gen_clean ~seed) = Ok ())

let test_no_false_positives =
  prop "no tool flags a clean scenario" QCheck.small_int (fun seed ->
      let sc = Difftest.gen_clean ~seed in
      List.for_all (fun tool -> not (Harness.detected tool sc)) Harness.all_tools)

let near_violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_uaf;
    Difftest.V_double_free; Difftest.V_mid_free;
  ]

let test_buggy_validates =
  prop "seeded violations really are violations"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, k) ->
      let sc = Difftest.gen_buggy ~seed (List.nth near_violations k) in
      Scenario.validate sc = Ok ())

let test_asan_family_completeness =
  (* every near-object violation is detected by the whole ASan family *)
  prop "ASan family detects every seeded violation"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, k) ->
      let sc = Difftest.gen_buggy ~seed (List.nth near_violations k) in
      List.for_all
        (fun tool -> Harness.detected tool sc)
        [ Harness.Giantsan; Harness.Asan; Harness.Asanmm ])

let test_giantsan_dominates_asan =
  (* anything ASan flags, GiantSan flags too (on identical scenarios) *)
  prop "GiantSan verdicts dominate ASan's"
    QCheck.(pair small_int bool)
    (fun (seed, make_buggy) ->
      let sc =
        if make_buggy then
          Difftest.gen_buggy ~seed
            (List.nth near_violations (seed mod List.length near_violations))
        else Difftest.gen_clean ~seed
      in
      let asan = Harness.detected Harness.Asan sc in
      let gs = Harness.detected Harness.Giantsan sc in
      (not asan) || gs)

let test_far_jump_split =
  (* the Table 5 mechanism, fuzzed: far jumps split GiantSan from ASan *)
  prop "far jumps: GiantSan catches, ASan(rz16) misses" QCheck.small_int
    (fun seed ->
      let sc = Difftest.gen_buggy ~seed Difftest.V_far_jump in
      Harness.detected ~redzone:16 Harness.Giantsan sc
      && not (Harness.detected ~redzone:16 Harness.Asan sc))

let test_lfp_never_beats_giantsan =
  prop "LFP never detects what GiantSan misses"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, k) ->
      let sc = Difftest.gen_buggy ~seed (List.nth near_violations k) in
      let lfp = Harness.detected Harness.Lfp sc in
      let gs = Harness.detected Harness.Giantsan sc in
      (not lfp) || gs)

let suite =
  ( "difftest",
    [
      test_clean_validates;
      test_no_false_positives;
      test_buggy_validates;
      test_asan_family_completeness;
      test_giantsan_dominates_asan;
      test_far_jump_split;
      test_lfp_never_beats_giantsan;
    ] )
