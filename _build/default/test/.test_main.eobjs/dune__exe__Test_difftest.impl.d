test/test_difftest.ml: Giantsan_bugs List QCheck QCheck_alcotest
