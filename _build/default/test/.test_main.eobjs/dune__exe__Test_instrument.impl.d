test/test_instrument.ml: Alcotest Giantsan_analysis Giantsan_ir Helpers List
