test/test_quasi_bound.ml: Alcotest Gen Giantsan_memsim Giantsan_sanitizer Giantsan_util Helpers List Printf QCheck
