test/test_memsim.ml: Alcotest Arena Giantsan_memsim Heap Helpers List Memobj Oracle Quarantine
