test/test_util.ml: Alcotest Array Bitops Fun Giantsan_util Hashtbl Helpers List Option QCheck Rng Stats String Table
