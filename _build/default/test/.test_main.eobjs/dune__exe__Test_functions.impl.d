test/test_functions.ml: Alcotest Giantsan_analysis Giantsan_ir Giantsan_sanitizer Helpers List
