test/test_bugs.ml: Alcotest Giantsan_bugs Giantsan_memsim Giantsan_sanitizer Helpers List Printf
