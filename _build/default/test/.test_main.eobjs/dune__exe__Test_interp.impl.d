test/test_interp.ml: Alcotest Giantsan_analysis Giantsan_asan Giantsan_ir Giantsan_memsim Giantsan_sanitizer Helpers List Printf Stdlib
