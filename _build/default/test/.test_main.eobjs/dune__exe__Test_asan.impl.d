test/test_asan.ml: Alcotest Array Gen Giantsan_memsim Giantsan_sanitizer Giantsan_util Helpers List QCheck QCheck_alcotest
