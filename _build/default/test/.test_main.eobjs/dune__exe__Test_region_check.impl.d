test/test_region_check.ml: Alcotest Array Gen Giantsan_core Giantsan_memsim Giantsan_sanitizer Giantsan_shadow Giantsan_util Helpers List Printf QCheck QCheck_alcotest
