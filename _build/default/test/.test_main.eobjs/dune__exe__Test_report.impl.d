test/test_report.ml: Alcotest Astring_contains Giantsan_report Helpers List
