test/test_ir.ml: Alcotest Astring_contains Giantsan_analysis Giantsan_ir Helpers List
