test/test_lfp.ml: Alcotest Array Gen Giantsan_lfp Giantsan_memsim Giantsan_sanitizer Giantsan_util Helpers List Printf QCheck
