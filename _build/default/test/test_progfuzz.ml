(* IR-level fuzzing of the whole pipeline: random programs through every
   instrumentation mode. Catches false positives from bad merging or
   promotion, semantic divergence between plans, and missed detections. *)

module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Runner = Giantsan_workload.Runner
module Report = Giantsan_sanitizer.Report
module Rng = Giantsan_util.Rng
module Memsim = Giantsan_memsim

let heap =
  { Memsim.Heap.arena_size = 1 lsl 17; redzone = 16; quarantine_budget = 8192 }

(* A random program over a few arrays whose every access is in bounds by
   construction. Mirrors the workload generator's shapes but with randomer
   structure: nested ifs, nested loops, functions with allocas. *)
let gen_safe_program seed =
  let rng = Rng.create (seed + 7777) in
  let b = B.create () in
  let n = Rng.int_in rng 8 64 in
  let arrays = [ "a"; "c" ] in
  let arr () = List.nth arrays (Rng.int rng 2) in
  let rec gen_stmts depth budget =
    if budget <= 0 then []
    else begin
      let stmt =
        match Rng.int rng (if depth > 2 then 6 else 8) with
        | 0 ->
          (* in-bounds affine store *)
          B.store b ~base:(arr ()) ~index:(B.v "i") ~scale:8 ~value:(B.v "i") ()
        | 1 -> B.assign "s" B.(v "s" + load b ~base:(arr ()) ~index:(v "i") ~scale:8 ())
        | 2 ->
          (* constant-offset accesses (merge fodder) *)
          B.assign "s"
            B.(
              load b ~base:(arr ()) ~index:(i (Rng.int rng n)) ~scale:8 ()
              + load b ~base:(arr ()) ~index:(i (Rng.int rng n)) ~scale:8 ())
        | 3 ->
          B.memset b ~dst:(arr ()) ~doff:(B.i 0)
            ~len:(B.i (8 * Rng.int_in rng 1 n))
            ~value:(B.i (Rng.int rng 255))
        | 4 ->
          (* data-dependent index, in bounds via modulo *)
          B.store b ~base:(arr ())
            ~index:B.((v "i" * i 13) % i n)
            ~scale:8 ~value:(B.v "s") ()
        | 5 -> B.assign "s" B.(v "s" + (v "i" * i 3))
        | 6 ->
          B.for_ b ~idx:(Printf.sprintf "i%d" depth) ~lo:(B.i 0)
            ~hi:(B.i (Rng.int_in rng 1 n))
            (B.assign "i" (B.v (Printf.sprintf "i%d" depth))
            :: gen_stmts (depth + 1) (budget / 2))
        | _ ->
          B.if_
            B.(v "s" % i 3 = i 0)
            (gen_stmts (depth + 1) (budget / 2))
            (gen_stmts (depth + 1) (budget / 2))
      in
      stmt :: gen_stmts depth (budget - 1)
    end
  in
  let helper =
    B.func "helper" ~params:[ "m" ]
      [
        B.alloca "hbuf" (B.i 64);
        (* ((m mod 8) + 8) mod 8: in bounds even for negative m — loads of
           memset-patterned memory are negative 64-bit values *)
        B.assign "mi" B.(((v "m" % i 8) + i 8) % i 8);
        B.store b ~base:"hbuf" ~index:(B.v "mi") ~scale:8 ~value:(B.v "m") ();
        B.return_ (Some (B.load b ~base:"hbuf" ~index:(B.v "mi") ~scale:8 ()));
      ]
  in
  let body =
    [
      B.malloc "a" (B.i (8 * n));
      B.malloc "c" (B.i (8 * n));
      B.assign "s" (B.i 1);
      B.assign "i" (B.i 0);
    ]
    @ gen_stmts 0 (Rng.int_in rng 3 10)
    @ [ B.call ~dst:"h" "helper" [ B.v "s" ] ]
  in
  B.program ~funcs:[ helper ] (Printf.sprintf "fuzz_%d" seed) body

let modes =
  [
    Runner.Native; Runner.Asan; Runner.Asanmm; Runner.Lfp; Runner.Giantsan;
    Runner.Cache_only; Runner.Elim_only;
  ]

let run_mode prog config =
  let san = Runner.make_sanitizer ~heap config in
  let plan = Instrument.plan (Runner.instrument_mode config) prog in
  Interp.run san plan prog

let test_no_false_positives =
  Helpers.q "random safe programs: silent under every mode" QCheck.small_int
    (fun seed ->
      let prog = gen_safe_program seed in
      List.for_all
        (fun config ->
          let out = run_mode prog config in
          out.Interp.reports = []
          && (not out.Interp.crashed)
          && not out.Interp.fuel_exhausted)
        modes)

let test_semantic_equivalence =
  Helpers.q "all modes compute identical results" QCheck.small_int
    (fun seed ->
      let prog = gen_safe_program seed in
      let reference = run_mode prog Runner.Native in
      let s0 = Interp.var reference "s" in
      let ops0 = reference.Interp.ops in
      List.for_all
        (fun config ->
          let out = run_mode prog config in
          Interp.var out "s" = s0 && out.Interp.ops = ops0)
        modes)

(* inject one out-of-bounds loop at the end of a random safe program *)
let test_injected_overflow_detected =
  Helpers.q "injected loop overflow detected by every sanitizer"
    QCheck.small_int
    (fun seed ->
      let safe = gen_safe_program seed in
      let b = B.create () in
      let bad_loop =
        (* trip count is data-dependent (loaded), so no tool can reject it
           statically; the last iterations run past the end of "a" *)
        [
          B.store b ~base:"a" ~index:(B.i 0) ~scale:8 ~value:(B.i 9) ();
          B.assign "lim" B.(load b ~base:"a" ~index:(i 0) ~scale:8 () * i 100);
          B.assign "k" (B.i 0);
          B.while_ b
            ~cond:B.(v "k" < v "lim")
            [
              B.store b ~base:"a" ~index:(B.v "k") ~scale:8 ~value:(B.i 1) ();
              B.assign "k" B.(v "k" + i 1);
            ];
        ]
      in
      let prog =
        { safe with Ast.body = safe.Ast.body @ bad_loop; name = "inj" }
      in
      List.for_all
        (fun config ->
          let out = run_mode prog config in
          out.Interp.reports <> [])
        [ Runner.Asan; Runner.Asanmm; Runner.Giantsan; Runner.Cache_only;
          Runner.Elim_only ])

let suite =
  ( "progfuzz",
    [
      test_no_false_positives;
      test_semantic_equivalence;
      test_injected_overflow_detected;
    ] )
