(* Whole-system stress properties: after ANY storm of allocator operations,
   shadow memory and ground truth agree byte for byte, and every folded
   summary is truthful. This is the invariant everything else rests on. *)

module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Interceptors = Giantsan_sanitizer.Interceptors
module SC = Giantsan_core.State_code
module AE = Giantsan_asan.Asan_encoding
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Rng = Giantsan_util.Rng

let storm_config =
  { Memsim.Heap.arena_size = 1 lsl 16; redzone = 16; quarantine_budget = 2048 }

(* Random operation storm against one sanitizer. Returns live pointer set. *)
let storm rng (san : San.t) n_ops =
  let live = ref [] in
  for _ = 1 to n_ops do
    match Rng.int rng 5 with
    | 0 | 1 ->
      (try
         let obj = san.San.malloc (Rng.int_in rng 0 400) in
         live := obj.Memsim.Memobj.base :: !live
       with Out_of_memory -> ())
    | 2 -> (
      match !live with
      | [] -> ()
      | ptr :: rest ->
        ignore (san.San.free ptr);
        live := rest)
    | 3 -> (
      (* realloc a random live pointer *)
      match !live with
      | [] -> ()
      | ptr :: rest -> (
        match Interceptors.realloc san ~ptr ~size:(Rng.int_in rng 0 300) with
        | Ok obj -> live := obj.Memsim.Memobj.base :: rest
        | Error _ -> live := rest))
    | _ -> (
      (* calloc for variety *)
      try
        let obj = Interceptors.calloc san ~count:(Rng.int_in rng 1 8)
            ~size:(Rng.int_in rng 1 32)
        in
        live := obj.Memsim.Memobj.base :: !live
      with Out_of_memory -> ())
  done;
  !live

(* byte-level addressability implied by a shadow byte *)
let shadow_says decode m addr =
  let v = Shadow_mem.peek m (addr / 8) in
  addr land 7 < decode v

let oracle_says oracle addr =
  Memsim.Oracle.state oracle addr = Memsim.Oracle.Addressable

let agree decode (san : San.t) m =
  let oracle = Memsim.Heap.oracle san.San.heap in
  let size = Memsim.Arena.size (Memsim.Heap.arena san.San.heap) in
  let ok = ref true in
  (* every byte of the arena: shadow and oracle agree *)
  let addr = ref 0 in
  while !ok && !addr < size do
    if shadow_says decode m !addr <> oracle_says oracle !addr then ok := false;
    incr addr
  done;
  !ok

let test_giantsan_shadow_oracle_agreement =
  Helpers.q "GiantSan shadow == oracle after any op storm" QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let san, m = Giantsan_core.Gs_runtime.create_exposed storm_config in
      ignore (storm rng san (Rng.int_in rng 5 120));
      agree SC.addressable_in_segment san m)

let test_asan_shadow_oracle_agreement =
  Helpers.q "ASan shadow == oracle after any op storm" QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let san, m = Giantsan_asan.Asan_runtime.create_exposed storm_config in
      ignore (storm rng san (Rng.int_in rng 5 120));
      agree AE.addressable_in_segment san m)

let test_folds_always_truthful =
  (* every folded code claims 2^d good segments: verify against the oracle
     for the whole shadow after a storm *)
  Helpers.q "every fold's claim holds" QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let san, m = Giantsan_core.Gs_runtime.create_exposed storm_config in
      ignore (storm rng san (Rng.int_in rng 5 120));
      let oracle = Memsim.Heap.oracle san.San.heap in
      let ok = ref true in
      for seg = 0 to Shadow_mem.segments m - 1 do
        let v = Shadow_mem.peek m seg in
        if SC.is_folded v then begin
          let covered = SC.covered_bytes v in
          let hi = min ((seg * 8) + covered) (Shadow_mem.segments m * 8) in
          if not (Memsim.Oracle.range_addressable oracle ~lo:(seg * 8) ~hi)
          then ok := false
        end
      done;
      !ok)

let test_live_pointers_stay_valid =
  (* after the storm, every live pointer's full extent passes its region
     check — no sanitizer state corruption *)
  Helpers.q "live objects remain fully addressable" QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let san = Giantsan_core.Gs_runtime.create storm_config in
      let live = storm rng san (Rng.int_in rng 5 120) in
      List.for_all
        (fun ptr ->
          match Memsim.Heap.find_object san.San.heap ptr with
          | Some obj when obj.Memsim.Memobj.status = Memsim.Memobj.Live ->
            Helpers.check_is_safe
              (san.San.check_region ~lo:ptr ~hi:(ptr + obj.Memsim.Memobj.size))
          | _ -> true)
        live)

let test_determinism_across_tools =
  (* identical storms against GiantSan and ASan leave identical heap
     layouts (placement does not depend on the sanitizer) *)
  Helpers.q "heap layout is sanitizer-independent" QCheck.small_int
    (fun seed ->
      let run make =
        let rng = Rng.create seed in
        let san = make storm_config in
        let live = storm rng san (Rng.int_in rng 5 80) in
        live
      in
      run Giantsan_core.Gs_runtime.create
      = run Giantsan_asan.Asan_runtime.create)

let suite =
  ( "stress",
    [
      test_giantsan_shadow_oracle_agreement;
      test_asan_shadow_oracle_agreement;
      test_folds_always_truthful;
      test_live_pointers_stay_valid;
      test_determinism_across_tools;
    ] )
