(** Shard = one task plus the sanitizer state it privately owns.

    The engine's safety story is ownership, not locking: a shard constructs
    its own [Arena]/[Shadow_mem]/sanitizer inside its task thunk and never
    lets them escape, and its telemetry goes to the running domain's private
    ring ({!Giantsan_telemetry.Trace} is domain-local, and [with_capture]
    swaps in a fresh ring per shard, so two shards that happen to run
    consecutively on the same worker domain cannot see each other's
    events either).

    What crosses domains is only the immutable result and the captured
    event list, both published at [Domain.join]. *)

type 'a traced = {
  t_result : 'a;
  t_events : (int * Giantsan_telemetry.Event.t) list;
      (** the shard's private trace, sequence numbers starting at 0 *)
}

val run_traced :
  ?capacity:int -> jobs:int -> (unit -> 'a) array -> 'a traced array
(** Run every task under {!Pool.run} with a per-shard trace capture
    ([capacity] as in [Trace.enable]). Results come back in task order;
    feed the event lists to {!Merge.resequence} to obtain the canonical
    merged trace. *)
