(** Fixed-size domain pool over a lock-free task queue.

    The queue is the simplest structure that is linearizable and
    contention-free enough for our task shapes: the tasks live in an
    immutable array and workers claim indices with a single
    [Atomic.fetch_and_add] — a Michael-Scott deque degenerates to exactly
    this when tasks are only pushed once, up front. Each result slot is
    written by the one worker that claimed its index, and [Domain.join]
    publishes all slots to the caller, so no further synchronisation is
    needed.

    Determinism contract: results come back in {e task order}, never in
    completion order, so callers observe the same value for any [jobs] —
    only wall-clock changes. Tasks must not share mutable sanitizer state;
    see the shard-ownership invariant in ARCHITECTURE.md. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — what the CLI [--jobs]
    flags default to. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** Run every task, [jobs] at a time, and return the results in task order.

    [jobs] is clamped to [1 .. Array.length tasks]; with [jobs = 1] the
    tasks run inline on the calling domain (no spawn), which is the serial
    reference the determinism tests compare against. If a task raises, the
    pool is poisoned: tasks already claimed run to completion, but no new
    tasks are claimed, and the exception of the {e lowest-indexed} failing
    task is re-raised — the raised exception is independent of scheduling
    (the lowest failing index is always claimed before any later failure
    can poison the pool). *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run] over [fun () -> f x], preserving list order. *)
