module Counters = Giantsan_sanitizer.Counters
module Histogram = Giantsan_telemetry.Histogram
module Export = Giantsan_telemetry.Export

let resequence per_shard =
  List.mapi (fun seq (_, ev) -> (seq, ev)) (List.concat per_shard)

let ndjson per_shard = Export.ndjson_lines (resequence per_shard)

let counters cs =
  let acc = Counters.create () in
  List.iter (Counters.add acc) cs;
  acc

let histograms hs =
  List.fold_left Histogram.merge_set (Histogram.create_set ()) hs
