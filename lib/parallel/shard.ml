module Trace = Giantsan_telemetry.Trace

type 'a traced = {
  t_result : 'a;
  t_events : (int * Giantsan_telemetry.Event.t) list;
}

let run_traced ?capacity ~jobs tasks =
  Pool.run ~jobs
    (Array.map
       (fun task () ->
         let t_result, t_events = Trace.with_capture ?capacity task in
         { t_result; t_events })
       tasks)
