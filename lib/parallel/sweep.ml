module Runner = Giantsan_workload.Runner
module Export = Giantsan_telemetry.Export

type cell = {
  c_profile : Giantsan_workload.Specgen.profile;
  c_config : Runner.config;
}

let cells ~profiles ~configs =
  Array.of_list
    (List.concat_map
       (fun p -> List.map (fun c -> { c_profile = p; c_config = c }) configs)
       profiles)

type outcome = {
  o_results : Runner.result array;
  o_events : (int * Giantsan_telemetry.Event.t) list;
}

let check_permutation n order =
  if Array.length order <> n then
    invalid_arg "Sweep.run: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Sweep.run: order is not a permutation";
      seen.(i) <- true)
    order

let run ?heap ?order ?(trace = false) ?capacity ~jobs ~profiles ~configs () =
  let cells = cells ~profiles ~configs in
  let n = Array.length cells in
  let order =
    match order with
    | None -> Array.init n Fun.id
    | Some o ->
      check_permutation n o;
      o
  in
  (* task j runs cell order.(j); de-permute afterwards so the outcome is in
     canonical cell order no matter how submission was shuffled *)
  let tasks =
    Array.map
      (fun idx () ->
        let cell = cells.(idx) in
        Runner.run_one ?heap cell.c_profile cell.c_config)
      order
  in
  if trace then begin
    let submitted = Shard.run_traced ?capacity ~jobs tasks in
    let results = Array.make n None and events = Array.make n [] in
    Array.iteri
      (fun j (t : Runner.result Shard.traced) ->
        results.(order.(j)) <- Some t.Shard.t_result;
        events.(order.(j)) <- t.Shard.t_events)
      submitted;
    {
      o_results = Array.map Option.get results;
      o_events = Merge.resequence (Array.to_list events);
    }
  end
  else begin
    let submitted = Pool.run ~jobs tasks in
    let results = Array.make n None in
    Array.iteri (fun j r -> results.(order.(j)) <- Some r) submitted;
    { o_results = Array.map Option.get results; o_events = [] }
  end

let ndjson outcome = Export.ndjson_lines outcome.o_events
