(** The sharded config × workload matrix — the paper's Table 2 sweep (and
    the CI perf-gate sweep) partitioned across a domain pool.

    One cell = one (profile, config) pair = one shard: [Runner.run_one]
    already builds a private heap, shadow and sanitizer per call, so the
    matrix is embarrassingly parallel once the module-level state it
    touches is domain-safe (trace sink, folding template — see
    DESIGN.md, "Concurrency model").

    Results and merged telemetry always come back in {e canonical order}
    (profile-major, config-minor over the input lists), whatever [jobs] is
    and however submission was shuffled — so event counts, histograms and
    NDJSON bytes are invariants of the matrix, not of the schedule. *)

type cell = {
  c_profile : Giantsan_workload.Specgen.profile;
  c_config : Giantsan_workload.Runner.config;
}

val cells :
  profiles:Giantsan_workload.Specgen.profile list ->
  configs:Giantsan_workload.Runner.config list ->
  cell array
(** The canonical enumeration: profile-major, config-minor. *)

type outcome = {
  o_results : Giantsan_workload.Runner.result array;
      (** one per cell, in canonical order *)
  o_events : (int * Giantsan_telemetry.Event.t) list;
      (** merged trace in canonical cell order, resequenced from 0; [[]]
          unless [trace] was set *)
}

val run :
  ?heap:Giantsan_memsim.Heap.config ->
  ?order:int array ->
  ?trace:bool ->
  ?capacity:int ->
  jobs:int ->
  profiles:Giantsan_workload.Specgen.profile list ->
  configs:Giantsan_workload.Runner.config list ->
  unit ->
  outcome
(** Run the whole matrix, [jobs] cells at a time.

    [order], when given, must be a permutation of the cell indices and
    fixes the submission order (the determinism tests shuffle it);
    results are de-permuted back to canonical order before returning.
    [trace] captures each cell's events in a private per-shard ring of
    [capacity] (default 65536, as in [Trace.enable]) and merges them with
    {!Merge.resequence}.

    @raise Invalid_argument if [order] is not a permutation. *)

val ndjson : outcome -> string list
(** The merged trace as NDJSON lines (byte-identical across [jobs] and
    submission orders — the CI determinism diff relies on this). *)
