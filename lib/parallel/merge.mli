(** Deterministic merges of per-shard state back into one serial-equivalent
    view.

    Everything a shard produces is mergeable by a commutative monoid
    (counters: per-field addition; histograms: bucket-wise addition) or by a
    canonical re-sequencing (traces: shard-major order). Because the merge
    depends only on (shard id, per-shard sequence number) — never on
    wall-clock interleaving — a parallel run merges to byte-identical
    output for every [jobs] value and submission order. The determinism
    tests in [test/test_parallel.ml] hold this as a qcheck property. *)

val resequence :
  (int * Giantsan_telemetry.Event.t) list list ->
  (int * Giantsan_telemetry.Event.t) list
(** Concatenate per-shard event lists in shard order and renumber the
    sequence numbers globally from 0 — the (shard id, seq) lexicographic
    order. A serial run through the same sharding (jobs = 1) yields exactly
    this list. *)

val ndjson :
  (int * Giantsan_telemetry.Event.t) list list -> string list
(** [resequence] rendered as NDJSON lines, ready to diff against another
    run byte for byte. *)

val counters :
  Giantsan_sanitizer.Counters.t list -> Giantsan_sanitizer.Counters.t
(** Fold shard counters into a fresh accumulator with [Counters.add]
    (per-field sum — commutative, so shard order is irrelevant). *)

val histograms :
  Giantsan_telemetry.Histogram.set list -> Giantsan_telemetry.Histogram.set
(** Fold shard histogram sets with [Histogram.merge_set] (bucket-wise sum,
    max of maxima — commutative likewise). *)
