let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ~jobs tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then
      (* inline serial reference: same claiming order, no domains; an
         exception propagates immediately, so later tasks never start —
         the behaviour the poison flag mirrors in the parallel path *)
      Array.map (fun task -> task ()) tasks
    else begin
      let next = Atomic.make 0 in
      (* set on the first failure: workers stop claiming new tasks, but any
         task already claimed runs to completion (a claimed slot is always
         written) *)
      let poisoned = Atomic.make false in
      (* one slot per task, written exactly once by the claiming worker;
         Domain.join publishes the writes back to the caller *)
      let slots = Array.make n None in
      let worker () =
        let rec loop () =
          if not (Atomic.get poisoned) then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match tasks.(i) () with
              | r -> slots.(i) <- Some (Ok r)
              | exception e ->
                slots.(i) <- Some (Error e);
                Atomic.set poisoned true);
              loop ()
            end
          end
        in
        loop ()
      in
      let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join domains;
      (* Claims are monotone, so unclaimed (None) slots form a suffix and
         exist only once poison is set — i.e. only after some claimed slot
         holds an Error at a strictly lower index. The lowest-indexed
         failing task is always claimed (everything below a claimed index
         is claimed first), so scanning in order re-raises its exception
         deterministically, for any schedule and any [jobs]. *)
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error e) -> raise e
          | None -> assert false)
        slots
    end
  end

let map ~jobs f xs =
  Array.to_list (run ~jobs (Array.map (fun x () -> f x) (Array.of_list xs)))
