let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ~jobs tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then
      (* inline serial reference: same claiming order, no domains *)
      Array.map (fun task -> task ()) tasks
    else begin
      let next = Atomic.make 0 in
      (* one slot per task, written exactly once by the claiming worker;
         Domain.join publishes the writes back to the caller *)
      let slots = Array.make n None in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            slots.(i) <-
              Some (match tasks.(i) () with
                   | r -> Ok r
                   | exception e -> Error e);
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join domains;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error e) -> raise e
          | None -> assert false)
        slots
    end
  end

let map ~jobs f xs =
  Array.to_list (run ~jobs (Array.map (fun x () -> f x) (Array.of_list xs)))
