(* PartiSan-style run-time partitioning: pick a sanitizer variant per run
   (and per tenant) from a declarative budget spec, and downshift to a
   cheaper variant when a tenant keeps breaching its SLO — degrade
   coverage before degrading service. *)

type spec = {
  budget : float;  (* mean overhead ceiling, 1.0 = native *)
  weights : (Backend.detection_class * int) list;  (* canonical class order *)
  fallback : Backend.id;  (* when nothing fits the budget *)
}

let default_weights = List.map (fun c -> (c, 1)) Backend.all_classes

let default =
  { budget = 2.5; weights = default_weights; fallback = Backend.Native }

let eps = 1e-9

(* Grammar (comma-separated clauses, each at most once):
     budget=1.6
     prefer=oob:3;uaf:2;double-free:1   (unnamed classes weigh 0)
     fallback=native
   e.g. "budget=1.5,prefer=oob:3;uaf:2,fallback=native". *)
let parse s =
  let s = String.trim s in
  if s = "" then Error "empty policy spec"
  else begin
    let ( let* ) = Result.bind in
    let parse_prefer v =
      let item acc part =
        let* acc = acc in
        let part = String.trim part in
        match String.index_opt part ':' with
        | None ->
          Error (Printf.sprintf "prefer item %S is not class:weight" part)
        | Some i ->
          let cls = String.sub part 0 i in
          let w = String.sub part (i + 1) (String.length part - i - 1) in
          let* cls =
            match Backend.class_of_name cls with
            | Some c -> Ok c
            | None ->
              Error
                (Printf.sprintf
                   "unknown detection class %S (want oob, uaf, uaf-realloc \
                    or double-free)"
                   cls)
          in
          let* w =
            match int_of_string_opt (String.trim w) with
            | Some w when w >= 0 -> Ok w
            | _ -> Error (Printf.sprintf "prefer item %S: bad weight" part)
          in
          if List.mem_assoc cls acc then
            Error
              (Printf.sprintf "detection class %S named twice"
                 (Backend.class_name cls))
          else Ok ((cls, w) :: acc)
      in
      let* given =
        List.fold_left item (Ok []) (String.split_on_char ';' v)
      in
      (* unnamed classes weigh 0: prefer is a full re-ranking, not a tweak *)
      Ok
        (List.map
           (fun c ->
             (c, match List.assoc_opt c given with Some w -> w | None -> 0))
           Backend.all_classes)
    in
    let clause acc item =
      let* acc = acc in
      match String.index_opt item '=' with
      | None -> Error (Printf.sprintf "policy clause %S is not key=value" item)
      | Some i ->
        let key = String.trim (String.sub item 0 i) in
        let v = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
        (match key with
        | "budget" -> (
          match float_of_string_opt v with
          | Some f when f >= 1.0 -> Ok { acc with budget = f }
          | Some _ ->
            Error
              (Printf.sprintf
                 "budget %S is below 1.0 (native costs 1.0 by definition)" v)
          | None -> Error (Printf.sprintf "budget %S: bad number" v))
        | "prefer" ->
          let* weights = parse_prefer v in
          Ok { acc with weights }
        | "fallback" -> (
          match Backend.of_name v with
          | Some b -> Ok { acc with fallback = b }
          | None ->
            Error
              (Printf.sprintf
                 "unknown backend %S (want giantsan, asan, lfp, pac or \
                  native)"
                 v))
        | _ ->
          Error
            (Printf.sprintf
               "unknown policy key %S (want budget, prefer or fallback)" key))
    in
    List.fold_left clause (Ok default) (String.split_on_char ',' s)
  end

let to_string t =
  Printf.sprintf "budget=%g,prefer=%s,fallback=%s" t.budget
    (String.concat ";"
       (List.map
          (fun (c, w) -> Printf.sprintf "%s:%d" (Backend.class_name c) w)
          t.weights))
    (Backend.name t.fallback)

let score t id =
  List.fold_left (fun a (c, w) -> a + (w * Backend.detection id c)) 0 t.weights

(* Highest score wins; ties break toward the cheaper backend, then toward
   the front of [Backend.all] (a total, deterministic order). *)
let best t = function
  | [] -> None
  | b :: rest ->
    Some
      (List.fold_left
         (fun acc c ->
           let sa = score t acc and sc = score t c in
           if sc > sa then c
           else if sc = sa && Backend.overhead c < Backend.overhead acc -. eps
           then c
           else acc)
         b rest)

let decide t =
  let fits =
    List.filter (fun b -> Backend.overhead b <= t.budget +. eps) Backend.all
  in
  match best t fits with Some b -> b | None -> t.fallback

(* Per-tenant assignment under a mean-overhead budget: greedy in tenant
   order, each choice feasibility-checked against the cheapest possible
   completion of the remaining tenants, so the head of the fleet gets the
   best coverage the budget allows and the tail absorbs the cost. *)
let assign t ~tenants =
  if tenants < 1 then []
  else begin
    let total = t.budget *. float_of_int tenants in
    let min_oh =
      List.fold_left (fun m b -> min m (Backend.overhead b)) infinity
        Backend.all
    in
    let spent = ref 0.0 in
    List.init tenants (fun i ->
        let remaining = float_of_int (tenants - i - 1) in
        let fits =
          List.filter
            (fun b ->
              !spent +. Backend.overhead b +. (remaining *. min_oh)
              <= total +. eps)
            Backend.all
        in
        let b = match best t fits with Some b -> b | None -> t.fallback in
        spent := !spent +. Backend.overhead b;
        b)
  end

let downshift t ~current =
  let cheaper =
    List.filter
      (fun b -> Backend.overhead b < Backend.overhead current -. eps)
      Backend.all
  in
  best t cheaper

(* The ladder's return direction: a tenant that has proven itself over N
   consecutive clean windows climbs back toward the coverage it was
   originally assigned. [ceiling] (that original assignment) bounds the
   climb — the budget arithmetic of [assign] stays valid because no
   tenant ever exceeds what it was billed for. *)
let upshift t ~current ~ceiling =
  let costlier =
    List.filter
      (fun b ->
        Backend.overhead b > Backend.overhead current +. eps
        && Backend.overhead b <= Backend.overhead ceiling +. eps)
      Backend.all
  in
  best t costlier
