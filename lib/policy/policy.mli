(** PartiSan-style run-time partitioning: choose a sanitizer backend per
    run — and per tenant — from a declarative budget spec, and downshift
    a persistently breaching tenant to a cheaper variant instead of
    quarantining it (degrade coverage before degrading service).

    A spec has three knobs:
    - [budget]: the mean overhead ceiling in native-multiples (>= 1.0);
    - [weights]: detection-class priorities that score each backend as
      [sum (weight * detection)];
    - [fallback]: the backend used when nothing fits the budget.

    Every function is a pure, deterministic computation over
    {!Backend.all} — the service loop stays byte-reproducible with a
    policy installed. *)

type spec = {
  budget : float;
  weights : (Backend.detection_class * int) list;
      (** always all four classes, canonical order *)
  fallback : Backend.id;
}

val default : spec
(** budget 2.5 (admits every backend), all classes weight 1, fallback
    native. *)

val parse : string -> (spec, string) result
(** Comma-separated [key=value] clauses over {!default}:
    [budget=F] (>= 1.0), [prefer=cls:w;cls:w;...] (classes not named
    weigh 0), [fallback=backend]. E.g.
    ["budget=1.5,prefer=oob:3;uaf:2,fallback=native"]. Errors name the
    offending clause. *)

val to_string : spec -> string
(** Canonical render; [parse (to_string s)] round-trips. *)

val score : spec -> Backend.id -> int
(** [sum (weight * detection)] over the four classes. *)

val decide : spec -> Backend.id
(** The best-scoring backend whose overhead fits the budget (ties break
    cheaper, then by {!Backend.all} order); [fallback] when none fits. *)

val assign : spec -> tenants:int -> Backend.id list
(** One backend per tenant under a {e mean}-overhead budget
    ([budget * tenants] total): greedy in tenant order, each choice
    feasibility-checked against the cheapest completion of the remaining
    tenants — the head of the fleet gets the best coverage the budget
    allows, the tail absorbs the cost. *)

val downshift : spec -> current:Backend.id -> Backend.id option
(** The best-scoring backend strictly cheaper than [current] (budget is
    not consulted — shedding overhead is the point); [None] at the
    cheapest rung, where the caller's only remaining move is quarantine.
    The default weights walk asan → pac → giantsan → native. *)

val upshift : spec -> current:Backend.id -> ceiling:Backend.id -> Backend.id option
(** The ladder's return direction: the best-scoring backend strictly
    costlier than [current] but no costlier than [ceiling] (the tenant's
    original assignment, so the [assign] budget arithmetic stays valid);
    [None] when [current] is already at or above the ceiling. The service
    loop calls this after [upshift_after] consecutive clean windows. *)
