(** The closed set of sanitizer backends the policy engine chooses among,
    with the static facts a choice needs: overhead factor, detection
    scores per bug class, and a uniform constructor. *)

type id = Giantsan | Asan | Lfp | Pac | Native

val all : id list
(** Every backend, in ascending-overhead order (ties in {!Policy} break
    toward the front of this list). *)

val name : id -> string
(** Lowercase spec name: "giantsan", "asan", "lfp", "pac", "native". *)

val of_name : string -> id option

val overhead : id -> float
(** Run-time overhead factor (1.0 = native), calibrated from the
    published SPEC geomeans each backend models. The policy budget is
    expressed in this unit. *)

type detection_class =
  | Oob  (** spatial: heap/stack/global out-of-bounds *)
  | Uaf  (** temporal: use-after-free while quarantined *)
  | Uaf_realloc
      (** temporal, post-recycling: the freed memory already belongs to a
          new allocation — only the tagged-pointer scheme catches this *)
  | Double_free

val all_classes : detection_class list

val class_name : detection_class -> string
(** Spec name: "oob", "uaf", "uaf-realloc", "double-free". *)

val class_of_name : string -> detection_class option

val detection : id -> detection_class -> int
(** 0 = blind, 1 = partial, 2 = full. The DESIGN.md matrix, scored. *)

(** The backend's metadata plane, exposed so the service tenant can plant
    faults into it and audit it. *)
type plane =
  | Shadow of Giantsan_shadow.Shadow_mem.t  (** GiantSan's folded shadow *)
  | Sigs of Giantsan_pac.Pac.t  (** PAC's signature table *)
  | Plain  (** no injectable metadata plane (ASan/LFP/Native here) *)

val create_exposed :
  ?pac_key:int ->
  id ->
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t * plane
(** Build a fresh, fully private runtime for [id] (own heap, own
    metadata), plus its plane. [pac_key] seeds the PA key when [id] is
    {!Pac} (ignored by the other backends, defaults to
    {!Giantsan_pac.Pac.default_key}) — the service plane derives one per
    tenant so a signature table forged under one tenant's key never
    authenticates under another's. *)

val create :
  ?pac_key:int ->
  id ->
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t
