module Heap = Giantsan_memsim.Heap
module San = Giantsan_sanitizer.Sanitizer

type id = Giantsan | Asan | Lfp | Pac | Native

(* ascending overhead — the order [Policy] breaks ties and walks the
   downshift ladder in *)
let all = [ Native; Giantsan; Pac; Lfp; Asan ]

let name = function
  | Giantsan -> "giantsan"
  | Asan -> "asan"
  | Lfp -> "lfp"
  | Pac -> "pac"
  | Native -> "native"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "giantsan" -> Some Giantsan
  | "asan" -> Some Asan
  | "lfp" -> Some Lfp
  | "pac" -> Some Pac
  | "native" -> Some Native
  | _ -> None

(* Run-time overhead factors (1.0 = uninstrumented), calibrated from the
   published SPEC geomeans the backends model: GiantSan 1.46x (the paper's
   headline), ASan 2.13x, LFP ~1.62x, PACSan ~1.58x. The policy engine
   only needs the ordering and rough spacing to be right; EXPERIMENTS.md
   records how the repo's own cost-model sweep compares. *)
let overhead = function
  | Native -> 1.0
  | Giantsan -> 1.46
  | Pac -> 1.58
  | Lfp -> 1.62
  | Asan -> 2.13

type detection_class = Oob | Uaf | Uaf_realloc | Double_free

let all_classes = [ Oob; Uaf; Uaf_realloc; Double_free ]

let class_name = function
  | Oob -> "oob"
  | Uaf -> "uaf"
  | Uaf_realloc -> "uaf-realloc"
  | Double_free -> "double-free"

let class_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "oob" -> Some Oob
  | "uaf" -> Some Uaf
  | "uaf-realloc" -> Some Uaf_realloc
  | "double-free" -> Some Double_free
  | _ -> None

(* 0 = blind, 1 = partial, 2 = full — the scores behind the DESIGN.md
   detection matrix, each justified there with the code path that earns
   it. [Uaf_realloc] is use-after-free where the quarantine has already
   recycled the memory for a new allocation: only the tagged-pointer
   scheme survives that (the stale tag fails authentication no matter who
   owns the bytes now); the shadow-based tools see plausible live shadow
   and LFP sees a plausible live slot. *)
let detection id cls =
  match (id, cls) with
  | Native, _ -> 0
  | Lfp, Oob -> 1 (* size-class rounding hides intra-slot overflows *)
  | Lfp, Uaf -> 1 (* only while the slot is still marked non-live *)
  | Lfp, Uaf_realloc -> 0
  | Lfp, Double_free -> 1
  | Asan, Uaf_realloc -> 0
  | Asan, _ -> 2
  | Giantsan, Uaf_realloc -> 0
  | Giantsan, _ -> 2
  | Pac, _ -> 2

(* The per-backend metadata plane, for fault injection and audits: what a
   chaos fault can corrupt and what the tenant audit can sweep. *)
type plane =
  | Shadow of Giantsan_shadow.Shadow_mem.t
  | Sigs of Giantsan_pac.Pac.t
  | Plain

let create_exposed ?pac_key id heap =
  match id with
  | Giantsan ->
    let san, shadow = Giantsan_core.Gs_runtime.create_exposed heap in
    (san, Shadow shadow)
  | Pac ->
    let san, sigs = Giantsan_pac.Pac_runtime.create_exposed ?key:pac_key heap in
    (san, Sigs sigs)
  | Asan -> (Giantsan_asan.Asan_runtime.create heap, Plain)
  | Lfp -> (Giantsan_lfp.Lfp_runtime.create heap, Plain)
  | Native -> (Giantsan_sanitizer.Native.create heap, Plain)

let create ?pac_key id heap = fst (create_exposed ?pac_key id heap)
