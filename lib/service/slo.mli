(** Declarative service-level objectives and the per-window verdicts the
    watchdog escalates on.

    An SLO is up to three thresholds, all optional: a p999 latency
    ceiling, an error-rate ceiling, and a throughput floor. Each closed
    rate window is evaluated against all three; every threshold the
    window violates yields one {!breach}. Escalation (breach streaks →
    degraded → quarantined) lives in {!Loop}; this module is pure. *)

type t = {
  max_p999_ns : float option;  (** latency ceiling on the window's p999 *)
  max_error_rate : float option;  (** reports / ops ceiling, in [0, 1] *)
  min_ops_per_sec : float option;  (** throughput floor *)
}

val none : t
(** No thresholds: every window is healthy. *)

val is_none : t -> bool

val parse : string -> (t, string) result
(** Parse a compact spec: comma-separated [key=value] clauses with keys
    [p999] (ns), [err] (fraction) and [ops] (per second), e.g.
    ["p999=20000,err=0.02,ops=50000"]. Unknown keys and malformed numbers
    are named errors. The empty string is {!none}. *)

val to_string : t -> string
(** Inverse of {!parse} (clauses in p999, err, ops order); ["none"] for
    {!none}. *)

type breach = {
  b_slo : string;  (** "p999" | "error_rate" | "ops_per_sec" *)
  b_value : float;  (** the window's measured value *)
  b_limit : float;  (** the configured threshold it violated *)
}

val evaluate :
  t -> p999_ns:float -> error_rate:float -> ops_per_sec:float -> breach list
(** Verdicts for one closed window, in p999, err, ops order; empty means
    the window met every configured objective. *)
