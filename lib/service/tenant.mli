(** One tenant of the sanitizer service: a private arena / quarantine /
    shadow (its own {!Giantsan_core.Gs_runtime} instance), a seeded
    open-ended request stream, a bounded pending-request queue
    (backpressure), an HDR latency histogram, a sliding-window rate
    counter, and a bounded flight recorder of the last M service events.

    Isolation invariant: nothing in here is shared between tenants — not
    the heap, not the shadow, not the RNG streams, not the recorder — so
    one tenant's fault, OOM or quarantine can never perturb another
    tenant's results, and a quantum may execute on any pool domain
    ({!Loop} runs one task per tenant per tick; the pool's join publishes
    the mutations back before the serial control plane reads them).

    Determinism invariant: under a virtual {!Giantsan_telemetry.Clock}
    every observable (latencies, window rates, recorder contents,
    timestamps) is a pure function of [(id, seed)] — request latency is
    {e synthesized} from the sanitizer's own deterministic event counts
    (shadow loads/stores consumed by the request) plus seeded jitter,
    never from wall time. *)

type state = Healthy | Breached | Degraded | Quarantined

val state_name : state -> string

type config = {
  heap : Giantsan_memsim.Heap.config;
  backend : Giantsan_policy.Backend.id;
      (** which sanitizer runtime guards this tenant's arena *)
  virtual_clock : bool;
  window_ns : int;  (** rate-window width (virtual ns) *)
  windows : int;  (** sliding windows retained for the rate readout *)
  recorder_cap : int;  (** flight-recorder depth (last M events) *)
  queue_cap : int;  (** pending-request bound; arrivals past it shed *)
}

val default_config : config
(** 256 KiB arena, GiantSan backend, virtual clock, 10 us windows x 8,
    64-event recorder, 256-request queue. *)

type t

val create : id:int -> seed:int -> config -> t

val id : t -> int

val pac_key : t -> int
(** The tenant's private PA key, derived from [(seed, id)] at {!create}
    and stable across {!repartition} — tenants on the PAC backend sign
    under it, so a signature forged under one tenant's key never
    authenticates under another's. *)

val backend : t -> Giantsan_policy.Backend.id
(** The backend currently serving this tenant (changes on
    {!repartition}). *)

val state : t -> state
val set_state : t -> state -> unit
val now_ns : t -> int
val ops : t -> int
(** Requests served (lifetime). *)

val errors : t -> int
(** Sanitizer reports produced while serving (lifetime). *)

val shed : t -> int
(** Arrivals dropped by backpressure (queue full or tenant quarantined). *)

val breaches : t -> int
val breach_streak : t -> int
val set_breach_streak : t -> int -> unit
val queue_depth : t -> int
val latency : t -> Giantsan_telemetry.Latency.t
(** Lifetime latency histogram (mergeable into the global one). *)

val rate : t -> float
(** Ops/sec over the retained closed windows. *)

val windows_closed : t -> int

val tick_arrivals : t -> mean:int -> unit
(** One tick of the arrival process: draw this tick's burst size
    ([mean ± 2]) from the tenant's private arrival stream and {!arrive} it.
    Called serially by {!Loop} so the arrival stream stays off the worker
    domains entirely. *)

val arrive : t -> n:int -> unit
(** Generate [n] requests from the tenant's stream and enqueue them;
    requests past [queue_cap] (or arriving at a quarantined tenant) are
    shed. Generation always consumes the stream, so shedding never shifts
    later requests — the stream stays a pure function of the seed. *)

val run_quantum : t -> max_ops:int -> unit
(** Serve up to [max_ops] pending requests: execute each against the
    private sanitizer, synthesize (or measure) its latency, advance the
    tenant clock, and record the op + any reports into the rate window,
    the latency histograms and the flight recorder. Safe to call from a
    pool worker domain — touches only tenant-private state. *)

(** {1 Watchdog hooks (called serially by {!Loop})} *)

type window_stats = {
  ws_closed : int;  (** windows closed since the previous watchdog call *)
  ws_p999_ns : float;  (** p999 of the latencies since the previous call *)
  ws_error_rate : float;
  ws_ops_per_sec : float;
}

val poll_windows : t -> window_stats option
(** Roll the rate window to the tenant clock; [None] while no new window
    has closed since the last call, otherwise the stats of the elapsed
    window span (and the per-span histogram/error counters reset). *)

val record_breach : t -> Slo.breach -> unit
val record_state : t -> state -> unit
val record_fault : t -> detail:string -> unit

val repartition : t -> backend:Giantsan_policy.Backend.id -> unit
(** PartiSan-style downshift: rebuild the tenant on [backend] — a fresh
    private runtime (new arena, new metadata plane), queued requests shed
    (counted), slots cleared, any armed misfold disarmed, breach streak
    reset — and record a [Tenant_backend] event. Lifetime counters (ops,
    errors, shed, breaches, latency histograms) and the request streams
    carry over, so the run stays a pure function of [(id, seed)]. *)

(** {1 Chaos integration} *)

val plant_fault : t -> Giantsan_chaos.Fault.shadow_fault -> string
(** Plant a shadow-plane fault into {e this} tenant only: byte corruptions
    land in the tenant's private shadow immediately; [Misfold] arms a
    folding fault plan that [run_quantum] re-arms around every quantum (so
    it follows the tenant to whichever pool domain executes it). Returns a
    human-readable description. *)

val audit : t -> string option
(** Shadow-vs-oracle selfcheck ({!Giantsan_chaos.Selfcheck}) of the
    tenant's private planes; [Some detail] on the first mismatch. *)

val dump : t -> string list
(** Flight-recorder contents (the last [recorder_cap] events) as NDJSON
    lines, sequence numbers preserved from the tenant's own counter —
    byte-deterministic under the virtual clock. *)
