(** The multi-tenant service loop: N isolated {!Tenant}s driven for a
    fixed number of ticks over the {!Giantsan_parallel.Pool} domain pool,
    with a serial control plane (watchdog + chaos + audit) between ticks.

    One tick is: (1) the control plane draws each tenant's arrival burst
    from its private stream and enqueues it (backpressure sheds past the
    queue bound); (2) the pool serves one quantum per tenant — one task
    each, any domain, safe because tenants share nothing; (3) serially, in
    tenant-id order: scheduled chaos faults are planted, the shadow-vs-
    oracle audit runs, and the SLO watchdog evaluates every newly closed
    rate window, escalating breach streaks breached → degraded (quantum
    halved) → quarantined (arrivals shed, flight recorder dumped).

    Under the virtual clock the whole run — summaries, recorder dumps,
    rendered table — is a pure function of [(seed, tenants, ticks, ...)]
    and independent of [jobs]: per-tenant state is only ever touched by
    one task per tick, the pool's join publishes it back, and the control
    plane runs in a fixed order. The determinism tests diff the rendered
    output byte-for-byte across [jobs] 1/2/4. *)

type config = {
  tenants : int;
  seed : int;
  ticks : int;  (** duration of the run, in ticks *)
  quantum : int;  (** max requests served per tenant per tick *)
  arrival_mean : int;  (** mean arrivals per tenant per tick *)
  jobs : int;  (** pool width for the serve phase *)
  slo : Slo.t;
  policy : Giantsan_policy.Policy.spec option;
      (** when set: initial backends come from [Policy.assign], and a
          tenant that reaches the quarantine rung of the escalation ladder
          is instead {!Tenant.repartition}ed onto [Policy.downshift] of
          its current backend (quarantine only once the cheapest rung
          breaches too) *)
  tenant_cfg : Tenant.config;
  chaos : (int * Giantsan_chaos.Fault.shadow_fault * int) option;
      (** [(tenant, fault, at_tick)]: plant [fault] into exactly that
          tenant's private planes at the start of that tick *)
  audit_every : int;  (** selfcheck cadence in ticks; 0 disables *)
  report_every : int;  (** live-summary cadence in ticks; 0 disables *)
  upshift_after : int;
      (** policy-gated ladder return: after this many consecutive clean
          windows a downshifted tenant is repartitioned onto
          [Policy.upshift] of its current backend, bounded by its
          original assignment; 0 disables *)
}

val default_config : config
(** 4 tenants, seed 7, 64 ticks, quantum 32, arrivals 24/tick, jobs 1,
    no SLO, no policy, {!Tenant.default_config}, no chaos, audit every 8
    ticks, upshift after 4 clean windows. *)

type tenant_summary = {
  s_id : int;
  s_backend : Giantsan_policy.Backend.id;  (** backend at end of run *)
  s_state : Tenant.state;
  s_ops : int;
  s_errors : int;
  s_shed : int;
  s_breaches : int;
  s_windows : int;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
  s_ops_per_sec : float;
  s_span_ns : int;  (** tenant-clock time consumed by the run *)
}

type outcome = {
  o_tenants : tenant_summary list;  (** in tenant-id order *)
  o_latency : Giantsan_telemetry.Latency.t;  (** all tenants, merged *)
  o_ops : int;
  o_errors : int;
  o_shed : int;
  o_breaches : int;
  o_quarantined : int;
  o_ops_per_sec : float;
      (** sum of per-tenant sustained rates — tenants run concurrently,
          each against its own clock, so rates add *)
  o_chaos : (int * string) option;  (** planted fault, human-readable *)
  o_faults : (int * string) list;  (** audit detections, in tick order *)
  o_downshifts : (int * string) list;
      (** policy downshifts [(tenant, new backend)], in tick order *)
  o_upshifts : (int * string) list;
      (** policy upshifts [(tenant, new backend)], in tick order — the
          ladder's return direction after [upshift_after] clean windows *)
  o_dumps : (int * string list) list;
      (** flight-recorder NDJSON dumped at each quarantine/fault *)
  o_recorders : (int * string list) list;
      (** every tenant's final flight-recorder contents, in id order —
          what [serve --dump-ndjson] writes and the isolation tests
          inspect *)
}

val run : ?progress:(string -> unit) -> config -> outcome
(** Drive the service for [ticks] ticks. [progress] receives one live
    summary line every [report_every] ticks (deterministic under the
    virtual clock). *)

val healthy : outcome -> bool
(** No SLO breach, no audit fault, no quarantined tenant. *)

val render_summary : outcome -> string
(** The deterministic end-of-run table (one row per tenant + a global
    row) the CLI prints and the CI expect-file pins. *)

val service_rows : outcome -> Giantsan_telemetry.Export.service_row list
(** Global row first, then one row per tenant — the [service] section of
    the bench export. *)
