type t = {
  max_p999_ns : float option;
  max_error_rate : float option;
  min_ops_per_sec : float option;
}

let none = { max_p999_ns = None; max_error_rate = None; min_ops_per_sec = None }

let is_none t =
  t.max_p999_ns = None && t.max_error_rate = None && t.min_ops_per_sec = None

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else begin
    let ( let* ) = Result.bind in
    let clause acc item =
      let* acc = acc in
      match String.index_opt item '=' with
      | None -> Error (Printf.sprintf "SLO clause %S is not key=value" item)
      | Some i ->
        let key = String.trim (String.sub item 0 i) in
        let v = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
        let* f =
          match float_of_string_opt v with
          | Some f when f >= 0.0 -> Ok f
          | _ -> Error (Printf.sprintf "SLO clause %S: bad number %S" item v)
        in
        (match key with
        | "p999" -> Ok { acc with max_p999_ns = Some f }
        | "err" -> Ok { acc with max_error_rate = Some f }
        | "ops" -> Ok { acc with min_ops_per_sec = Some f }
        | _ ->
          Error
            (Printf.sprintf "unknown SLO key %S (want p999, err or ops)" key))
    in
    List.fold_left clause (Ok none) (String.split_on_char ',' s)
  end

let to_string t =
  let clauses =
    List.filter_map Fun.id
      [
        Option.map (fun f -> Printf.sprintf "p999=%g" f) t.max_p999_ns;
        Option.map (fun f -> Printf.sprintf "err=%g" f) t.max_error_rate;
        Option.map (fun f -> Printf.sprintf "ops=%g" f) t.min_ops_per_sec;
      ]
  in
  if clauses = [] then "none" else String.concat "," clauses

type breach = { b_slo : string; b_value : float; b_limit : float }

let evaluate t ~p999_ns ~error_rate ~ops_per_sec =
  let check name value = function
    | Some limit when name = "ops_per_sec" && value < limit ->
      Some { b_slo = name; b_value = value; b_limit = limit }
    | Some limit when name <> "ops_per_sec" && value > limit ->
      Some { b_slo = name; b_value = value; b_limit = limit }
    | _ -> None
  in
  List.filter_map Fun.id
    [
      check "p999" p999_ns t.max_p999_ns;
      check "error_rate" error_rate t.max_error_rate;
      check "ops_per_sec" ops_per_sec t.min_ops_per_sec;
    ]
