module Pool = Giantsan_parallel.Pool
module Fault = Giantsan_chaos.Fault
module Table = Giantsan_util.Table
module Backend = Giantsan_policy.Backend
module Policy = Giantsan_policy.Policy
module T = Giantsan_telemetry

type config = {
  tenants : int;
  seed : int;
  ticks : int;
  quantum : int;
  arrival_mean : int;
  jobs : int;
  slo : Slo.t;
  policy : Policy.spec option;
  tenant_cfg : Tenant.config;
  chaos : (int * Fault.shadow_fault * int) option;
  audit_every : int;
  report_every : int;
  upshift_after : int;
}

let default_config =
  {
    tenants = 4;
    seed = 7;
    ticks = 64;
    quantum = 32;
    arrival_mean = 24;
    jobs = 1;
    slo = Slo.none;
    policy = None;
    tenant_cfg = Tenant.default_config;
    chaos = None;
    audit_every = 8;
    report_every = 0;
    upshift_after = 4;
  }

type tenant_summary = {
  s_id : int;
  s_backend : Backend.id;
  s_state : Tenant.state;
  s_ops : int;
  s_errors : int;
  s_shed : int;
  s_breaches : int;
  s_windows : int;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
  s_ops_per_sec : float;
  s_span_ns : int;
}

type outcome = {
  o_tenants : tenant_summary list;
  o_latency : T.Latency.t;
  o_ops : int;
  o_errors : int;
  o_shed : int;
  o_breaches : int;
  o_quarantined : int;
  o_ops_per_sec : float;
  o_chaos : (int * string) option;
  o_faults : (int * string) list;
  o_downshifts : (int * string) list;
  o_upshifts : (int * string) list;
  o_dumps : (int * string list) list;
  o_recorders : (int * string list) list;
}

(* Sustained per-tenant rate over the whole run, against the tenant's own
   clock. Window.rate only covers the last k windows; the summary wants
   the whole-run number. *)
let sustained_rate ~ops ~span_ns =
  if span_ns <= 0 then 0.0 else float_of_int ops /. (float_of_int span_ns /. 1e9)

let summarize (t : Tenant.t) =
  let lat = Tenant.latency t in
  let span_ns = Tenant.now_ns t in
  {
    s_id = Tenant.id t;
    s_backend = Tenant.backend t;
    s_state = Tenant.state t;
    s_ops = Tenant.ops t;
    s_errors = Tenant.errors t;
    s_shed = Tenant.shed t;
    s_breaches = Tenant.breaches t;
    s_windows = Tenant.windows_closed t;
    s_p50 = T.Latency.p50 lat;
    s_p99 = T.Latency.p99 lat;
    s_p999 = T.Latency.p999 lat;
    s_ops_per_sec = sustained_rate ~ops:(Tenant.ops t) ~span_ns;
    s_span_ns = span_ns;
  }

(* Escalation ladder: consecutive breached windows walk the tenant down
   breached -> degraded -> quarantined; one clean window walks it back to
   healthy (quarantine is terminal). *)
let escalate t streak =
  let open Tenant in
  let next =
    if streak >= 3 then Quarantined else if streak >= 2 then Degraded else Breached
  in
  if state t <> next then begin
    set_state t next;
    record_state t next
  end;
  next

let quarantine_with_dump t dumps ~detail =
  Tenant.record_fault t ~detail;
  if Tenant.state t <> Tenant.Quarantined then begin
    Tenant.set_state t Tenant.Quarantined;
    Tenant.record_state t Tenant.Quarantined
  end;
  dumps := (Tenant.id t, Tenant.dump t) :: !dumps

let run ?progress cfg =
  if cfg.tenants < 1 then invalid_arg "Loop.run: tenants < 1";
  if cfg.ticks < 0 then invalid_arg "Loop.run: ticks < 0";
  let backends =
    match cfg.policy with
    | None -> Array.make cfg.tenants cfg.tenant_cfg.Tenant.backend
    | Some spec -> Array.of_list (Policy.assign spec ~tenants:cfg.tenants)
  in
  let tenants =
    Array.init cfg.tenants (fun id ->
        Tenant.create ~id ~seed:cfg.seed
          { cfg.tenant_cfg with Tenant.backend = backends.(id) })
  in
  let dumps = ref [] in
  let faults = ref [] in
  let downshifts = ref [] in
  let upshifts = ref [] in
  let chaos_note = ref None in
  (* consecutive clean windows per tenant, for the ladder's return
     direction: [upshift_after] of them earn a climb back toward the
     tenant's original assignment (the [backends] array, which is the
     ceiling [Policy.upshift] honours) *)
  let clean_windows = Array.make cfg.tenants 0 in
  (* Escalation endpoint: without a policy a third consecutive breach
     quarantines; with one, the tenant first walks the downshift ladder —
     a fresh runtime on a cheaper backend, state back to Healthy, streak
     restarted — and only quarantines once it breaches at the cheapest
     rung (PartiSan's degrade-coverage-before-degrading-service move). *)
  let punish t =
    clean_windows.(Tenant.id t) <- 0;
    let streak = Tenant.breach_streak t + 1 in
    Tenant.set_breach_streak t streak;
    let quarantine () =
      if escalate t streak = Tenant.Quarantined then
        dumps := (Tenant.id t, Tenant.dump t) :: !dumps
    in
    match cfg.policy with
    | Some spec when streak >= 3 -> (
      match Policy.downshift spec ~current:(Tenant.backend t) with
      | Some backend ->
        downshifts := (Tenant.id t, Backend.name backend) :: !downshifts;
        Tenant.repartition t ~backend;
        if Tenant.state t <> Tenant.Healthy then begin
          Tenant.set_state t Tenant.Healthy;
          Tenant.record_state t Tenant.Healthy
        end
      | None -> quarantine ())
    | _ -> quarantine ()
  in
  (* per-tenant snapshots from the previous control-plane pass, for the
     stall detector: a tick that completed nothing is only visible as a
     delta against these *)
  let last_ops = Array.make cfg.tenants 0 in
  let last_shed = Array.make cfg.tenants 0 in
  for tick = 0 to cfg.ticks - 1 do
    (* 1. arrivals (serial; private arrival streams) *)
    Array.iter (fun t -> Tenant.tick_arrivals t ~mean:cfg.arrival_mean) tenants;
    (* 2. serve one quantum per tenant on the pool; a degraded tenant's
       quantum is halved, which is the visible cost of the Degraded state *)
    let tasks =
      Array.map
        (fun t () ->
          let q =
            (* half quantum, floored at one op — except that half of a zero
               quantum must stay zero, or degradation would grant a fully
               stalled loop more service than a healthy one *)
            if Tenant.state t = Tenant.Degraded then
              min cfg.quantum (max 1 (cfg.quantum / 2))
            else cfg.quantum
          in
          Tenant.run_quantum t ~max_ops:q)
        tenants
    in
    ignore (Pool.run ~jobs:cfg.jobs tasks);
    (* 3. control plane, serial, tenant-id order *)
    (match cfg.chaos with
    | Some (victim, fault, at_tick)
      when at_tick = tick && victim >= 0 && victim < cfg.tenants ->
      let detail = Tenant.plant_fault tenants.(victim) fault in
      chaos_note := Some (victim, detail)
    | _ -> ());
    Array.iter
      (fun t ->
        (* shadow-vs-oracle audit: a corrupted shadow plane is a fault,
           not an SLO matter — straight to quarantine, recorder dumped *)
        (if
           cfg.audit_every > 0
           && (tick + 1) mod cfg.audit_every = 0
           && Tenant.state t <> Tenant.Quarantined
         then
           match Tenant.audit t with
           | None -> ()
           | Some detail ->
             faults := (Tenant.id t, detail) :: !faults;
             quarantine_with_dump t dumps ~detail);
        (* SLO watchdog over every newly closed window span *)
        if Tenant.state t <> Tenant.Quarantined then
          match Tenant.poll_windows t with
          | None ->
            (* a tenant that closes no window produces nothing for the
               watchdog to evaluate — which used to make a fully wedged
               tenant (zero completed ops, demand piling up) look healthy
               forever. Under an active SLO, such a tick is a stall:
               count it against the breach streak so a stalled tenant
               walks the same escalation ladder as a slow one. *)
            let id = Tenant.id t in
            if
              (not (Slo.is_none cfg.slo))
              && Tenant.ops t = last_ops.(id)
              && (Tenant.queue_depth t > 0 || Tenant.shed t > last_shed.(id))
            then begin
              Tenant.record_breach t
                {
                  Slo.b_slo = "stalled";
                  b_value = 0.0;
                  b_limit =
                    (match cfg.slo.Slo.min_ops_per_sec with
                    | Some f -> f
                    | None -> 0.0);
                };
              punish t
            end
          | Some ws ->
            let breaches =
              Slo.evaluate cfg.slo ~p999_ns:ws.Tenant.ws_p999_ns
                ~error_rate:ws.Tenant.ws_error_rate
                ~ops_per_sec:ws.Tenant.ws_ops_per_sec
            in
            if breaches = [] then begin
              Tenant.set_breach_streak t 0;
              if Tenant.state t <> Tenant.Healthy then begin
                Tenant.set_state t Tenant.Healthy;
                Tenant.record_state t Tenant.Healthy
              end;
              (* the ladder's return direction: [upshift_after]
                 consecutive clean windows earn a climb back toward the
                 tenant's original assignment (repartition emits the
                 [Tenant_backend] recorder event) *)
              let id = Tenant.id t in
              clean_windows.(id) <- clean_windows.(id) + 1;
              match cfg.policy with
              | Some spec
                when cfg.upshift_after > 0
                     && clean_windows.(id) >= cfg.upshift_after -> (
                match
                  Policy.upshift spec ~current:(Tenant.backend t)
                    ~ceiling:backends.(id)
                with
                | Some backend ->
                  upshifts := (id, Backend.name backend) :: !upshifts;
                  Tenant.repartition t ~backend;
                  clean_windows.(id) <- 0
                | None -> ())
              | _ -> ()
            end
            else begin
              List.iter (Tenant.record_breach t) breaches;
              punish t
            end)
      tenants;
    Array.iter
      (fun t ->
        last_ops.(Tenant.id t) <- Tenant.ops t;
        last_shed.(Tenant.id t) <- Tenant.shed t)
      tenants;
    match progress with
    | Some f when cfg.report_every > 0 && (tick + 1) mod cfg.report_every = 0 ->
      let ops = Array.fold_left (fun a t -> a + Tenant.ops t) 0 tenants in
      let errors = Array.fold_left (fun a t -> a + Tenant.errors t) 0 tenants in
      let breaches = Array.fold_left (fun a t -> a + Tenant.breaches t) 0 tenants in
      let quar =
        Array.fold_left
          (fun a t -> if Tenant.state t = Tenant.Quarantined then a + 1 else a)
          0 tenants
      in
      f
        (Printf.sprintf "tick %*d/%d  ops=%-7d err=%-4d breach=%-3d quarantined=%d"
           (String.length (string_of_int cfg.ticks))
           (tick + 1) cfg.ticks ops errors breaches quar)
    | _ -> ()
  done;
  let summaries = Array.to_list (Array.map summarize tenants) in
  let latency =
    Array.fold_left
      (fun acc t -> T.Latency.merge_as "global" acc (Tenant.latency t))
      (T.Latency.create "global") tenants
  in
  {
    o_tenants = summaries;
    o_latency = latency;
    o_ops = List.fold_left (fun a s -> a + s.s_ops) 0 summaries;
    o_errors = List.fold_left (fun a s -> a + s.s_errors) 0 summaries;
    o_shed = List.fold_left (fun a s -> a + s.s_shed) 0 summaries;
    o_breaches = List.fold_left (fun a s -> a + s.s_breaches) 0 summaries;
    o_quarantined =
      List.fold_left
        (fun a s -> if s.s_state = Tenant.Quarantined then a + 1 else a)
        0 summaries;
    o_ops_per_sec = List.fold_left (fun a s -> a +. s.s_ops_per_sec) 0.0 summaries;
    o_chaos = !chaos_note;
    o_faults = List.rev !faults;
    o_downshifts = List.rev !downshifts;
    o_upshifts = List.rev !upshifts;
    o_dumps = List.rev !dumps;
    o_recorders =
      Array.to_list (Array.map (fun t -> (Tenant.id t, Tenant.dump t)) tenants);
  }

let healthy o = o.o_breaches = 0 && o.o_faults = [] && o.o_quarantined = 0

let render_summary o =
  let fns v = Printf.sprintf "%.0f" v in
  let row s =
    [
      Printf.sprintf "tenant-%d" s.s_id;
      Backend.name s.s_backend;
      Tenant.state_name s.s_state;
      string_of_int s.s_ops;
      string_of_int s.s_errors;
      string_of_int s.s_shed;
      string_of_int s.s_breaches;
      fns s.s_p50;
      fns s.s_p99;
      fns s.s_p999;
      fns s.s_ops_per_sec;
    ]
  in
  let global =
    [
      "global";
      "-";
      (if healthy o then "healthy" else "degraded");
      string_of_int o.o_ops;
      string_of_int o.o_errors;
      string_of_int o.o_shed;
      string_of_int o.o_breaches;
      fns (T.Latency.p50 o.o_latency);
      fns (T.Latency.p99 o.o_latency);
      fns (T.Latency.p999 o.o_latency);
      fns o.o_ops_per_sec;
    ]
  in
  let header =
    [
      "scope"; "backend"; "state"; "ops"; "err"; "shed"; "breach"; "p50";
      "p99"; "p999"; "ops/s";
    ]
  in
  Table.render ((header :: List.map row o.o_tenants) @ [ global ])

let service_rows o =
  let open T.Export in
  let global =
    {
      sv_scope = "global";
      sv_tenants = List.length o.o_tenants;
      sv_windows = List.fold_left (fun a s -> a + s.s_windows) 0 o.o_tenants;
      sv_ops = o.o_ops;
      sv_errors = o.o_errors;
      sv_breaches = o.o_breaches;
      sv_ops_per_sec = o.o_ops_per_sec;
      sv_latency_p50 = T.Latency.p50 o.o_latency;
      sv_latency_p99 = T.Latency.p99 o.o_latency;
      sv_latency_p999 = T.Latency.p999 o.o_latency;
    }
  in
  let tenant s =
    {
      sv_scope = Printf.sprintf "tenant-%d" s.s_id;
      sv_tenants = 1;
      sv_windows = s.s_windows;
      sv_ops = s.s_ops;
      sv_errors = s.s_errors;
      sv_breaches = s.s_breaches;
      sv_ops_per_sec = s.s_ops_per_sec;
      sv_latency_p50 = s.s_p50;
      sv_latency_p99 = s.s_p99;
      sv_latency_p999 = s.s_p999;
    }
  in
  global :: List.map tenant o.o_tenants
