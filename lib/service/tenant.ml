module Rng = Giantsan_util.Rng
module Heap = Giantsan_memsim.Heap
module Memobj = Giantsan_memsim.Memobj
module Shadow_mem = Giantsan_shadow.Shadow_mem
module State_code = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Selfcheck = Giantsan_chaos.Selfcheck
module Fault = Giantsan_chaos.Fault
module Backend = Giantsan_policy.Backend
module Pac = Giantsan_pac.Pac
module T = Giantsan_telemetry

type state = Healthy | Breached | Degraded | Quarantined

let state_name = function
  | Healthy -> "healthy"
  | Breached -> "breached"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

type config = {
  heap : Heap.config;
  backend : Backend.id;
  virtual_clock : bool;
  window_ns : int;
  windows : int;
  recorder_cap : int;
  queue_cap : int;
}

let default_config =
  {
    heap = { Heap.arena_size = 256 * 1024; redzone = 16; quarantine_budget = 16 * 1024 };
    backend = Backend.Giantsan;
    virtual_clock = true;
    (* one virtual op costs ~30-150 ns, a tick serves ~32 ops: a 10 us
       window closes every ~7 ticks, so a default run exercises the
       watchdog several times *)
    window_ns = 10_000;
    windows = 8;
    recorder_cap = 64;
    queue_cap = 256;
  }

type request =
  | R_alloc of { slot : int; size : int }
  | R_free of { slot : int }
  | R_access of { slot : int; off : int; width : int; oob : bool }
  | R_region of { slot : int; off : int; len : int }

let n_slots = 16

type t = {
  t_id : int;
  cfg : config;
  rng : Rng.t;  (* request contents + latency jitter, one stream *)
  arrival_rng : Rng.t;  (* arrival process, drawn by the control plane *)
  mutable backend : Backend.id;
  mutable san : San.t;
  mutable plane : Backend.plane;
  clock : T.Clock.t;
  lat_total : T.Latency.t;
  lat_span : T.Latency.t;  (* since the last watchdog poll *)
  win : T.Window.t;
  recorder : T.Event.t T.Ring.t;
  slots : (int * int) option array;  (* slot -> (base, size) *)
  queue : request Queue.t;
  mutable state : state;
  mutable breach_streak : int;
  mutable ops : int;
  mutable errors : int;
  mutable span_errors : int;
  mutable span_ops : int;
  mutable shed : int;
  mutable breaches : int;
  mutable rec_seq : int;  (* recorder sequence, lifetime *)
  mutable lat_span_mark : int;  (* windows closed at the last watchdog poll *)
  mutable misfold : Folding.fault option;
  t_pac_key : int;  (* per-tenant PA key, stable across repartitions *)
}

(* Each tenant signs under its own PA key, derived from (seed, id) with
   the same odd-constant mixing the request streams use. A signature
   table forged under one tenant's key never authenticates under
   another's, and [repartition] reuses the key so a tenant downshifted
   away from PAC and later upshifted back keeps its signing identity. *)
let derive_pac_key ~seed ~id =
  (Pac.default_key lxor (seed * 0x9E3779B1) lxor ((id + 1) * 0x85EBCA77))
  land max_int

let create ~id ~seed (config : config) =
  let pac_key = derive_pac_key ~seed ~id in
  let san, plane = Backend.create_exposed ~pac_key config.backend config.heap in
  {
    t_id = id;
    cfg = config;
    (* distinct derived seeds per stream so the arrival process (drawn by
       the serial control plane) and the request contents (drawn partly on
       worker domains) never share a cursor *)
    rng = Rng.create ((seed * 2_147_483_629) + (id * 2) + 1);
    arrival_rng = Rng.create ((seed * 1_000_003) + (id * 2));
    backend = config.backend;
    san;
    plane;
    clock =
      (if config.virtual_clock then T.Clock.virtual_ () else T.Clock.monotonic ());
    lat_total = T.Latency.create (Printf.sprintf "tenant-%d" id);
    lat_span = T.Latency.create (Printf.sprintf "tenant-%d-span" id);
    win = T.Window.create ~window_ns:config.window_ns ~windows:config.windows;
    recorder = T.Ring.create ~capacity:(max 1 config.recorder_cap);
    slots = Array.make n_slots None;
    queue = Queue.create ();
    state = Healthy;
    breach_streak = 0;
    ops = 0;
    errors = 0;
    span_errors = 0;
    span_ops = 0;
    shed = 0;
    breaches = 0;
    rec_seq = 0;
    lat_span_mark = 0;
    misfold = None;
    t_pac_key = pac_key;
  }

let id t = t.t_id
let pac_key t = t.t_pac_key
let backend t = t.backend
let state t = t.state
let set_state t s = t.state <- s
let now_ns t = T.Clock.now_ns t.clock
let ops t = t.ops
let errors t = t.errors
let shed t = t.shed
let breaches t = t.breaches
let breach_streak t = t.breach_streak
let set_breach_streak t n = t.breach_streak <- n
let queue_depth t = Queue.length t.queue
let latency t = t.lat_total
let rate t = T.Window.rate t.win
let windows_closed t = T.Window.closed t.win

let push_event t ev =
  T.Ring.push t.recorder ev;
  t.rec_seq <- t.rec_seq + 1

(* ------------------------------------------------------------------ *)
(* Request generation                                                  *)
(* ------------------------------------------------------------------ *)

(* One request from the stream. The occupancy snapshot used for the choice
   is the *queue-projected* one: pending allocs/frees are applied to a
   shadow occupancy bitmap so a burst of generated requests stays
   self-consistent even before any of them executes. *)
let gen_request t occ =
  let live = ref [] and free = ref [] in
  Array.iteri (fun i b -> if b then live := i :: !live else free := i :: !free) occ;
  let live = Array.of_list (List.rev !live) in
  let free = Array.of_list (List.rev !free) in
  let alloc () =
    let slot = free.(Rng.int t.rng (Array.length free)) in
    occ.(slot) <- true;
    R_alloc { slot; size = 16 + (8 * Rng.int t.rng 30) }
  in
  if Array.length live = 0 then alloc ()
  else if Array.length free > 0 && Rng.int t.rng 8 < 2 then alloc ()
  else begin
    let slot = live.(Rng.int t.rng (Array.length live)) in
    match Rng.int t.rng 16 with
    | 0 | 1 ->
      occ.(slot) <- false;
      R_free { slot }
    | 2 | 3 ->
      (* region op over a prefix of the object; length picked at execution
         time relative to the live size, offset here *)
      R_region { slot; off = 0; len = 1 + Rng.int t.rng 64 }
    | n ->
      let width = [| 1; 2; 4; 8 |].(Rng.int t.rng 4) in
      (* ~1/64 of accesses run off the end: the service's organic error
         traffic (drives the SLO error-rate axis) *)
      let oob = n = 15 && Rng.int t.rng 4 = 0 in
      R_access { slot; off = Rng.int t.rng 256; width; oob }
  end

let arrive t ~n =
  let occ = Array.map (fun s -> s <> None) t.slots in
  Queue.iter
    (fun r ->
      match r with
      | R_alloc { slot; _ } -> occ.(slot) <- true
      | R_free { slot } -> occ.(slot) <- false
      | _ -> ())
    t.queue;
  for _ = 1 to n do
    let req = gen_request t occ in
    if t.state = Quarantined || Queue.length t.queue >= t.cfg.queue_cap then
      t.shed <- t.shed + 1
    else Queue.add req t.queue
  done

let tick_arrivals t ~mean =
  let n = max 0 (mean - 2 + Rng.int t.arrival_rng 5) in
  arrive t ~n

(* ------------------------------------------------------------------ *)
(* Request execution + latency synthesis                               *)
(* ------------------------------------------------------------------ *)

(* Synthetic per-request cost (virtual-clock mode): a base cost per op
   kind plus the metadata traffic the sanitizer actually performed for
   this request (shadow loads/stores measured as deltas), plus seeded
   jitter with a rare heavy tail — the p999 the SLO watchdog guards. *)
let synth_latency t ~base_cost ~loads ~stores =
  let jitter = Rng.int t.rng 16 in
  let tail = if Rng.int t.rng 512 = 0 then 4096 + Rng.int t.rng 4096 else 0 in
  base_cost + (7 * loads) + (3 * stores) + jitter + tail

let note_report t reports report =
  match report with
  | None -> ()
  | Some (r : Report.t) ->
    t.errors <- t.errors + 1;
    t.span_errors <- t.span_errors + 1;
    reports := r :: !reports

let exec_request t req reports =
  match req with
  | R_alloc { slot; size } ->
    (match t.slots.(slot) with
    | Some (base, _) ->
      (* projection drift (e.g. after shed frees): recycle the slot *)
      note_report t reports (t.san.San.free base)
    | None -> ());
    let obj = t.san.San.malloc size in
    t.slots.(slot) <- Some (obj.Memobj.base, size);
    ("alloc", slot, size, 0, 140)
  | R_free { slot } -> (
    match t.slots.(slot) with
    | None -> ("free", slot, 0, 0, 30) (* request shed its target; no-op *)
    | Some (base, _) ->
      note_report t reports (t.san.San.free base);
      t.slots.(slot) <- None;
      ("free", slot, 0, 0, 90))
  | R_access { slot; off; width; oob } -> (
    match t.slots.(slot) with
    | None -> ("access", slot, off, width, 30)
    | Some (base, size) ->
      let off =
        if oob then size (* one past the end: redzone hit *)
        else if size >= width then off mod (size - width + 1)
        else 0
      in
      note_report t reports
        (t.san.San.access ~base ~addr:(base + off) ~width);
      ((if oob then "oob" else "access"), slot, off, width, 25))
  | R_region { slot; off = _; len } -> (
    match t.slots.(slot) with
    | None -> ("region", slot, 0, 0, 30)
    | Some (base, size) ->
      let len = 1 + (len mod max 1 size) in
      note_report t reports (t.san.San.check_region ~lo:base ~hi:(base + len));
      ("region", slot, 0, len, 40))

let serve_one t req =
  let reports = ref [] in
  let loads0 = t.san.San.shadow_loads () in
  let stores0 = t.san.San.shadow_stores () in
  let t0 = T.Clock.now_ns t.clock in
  let op, slot, arg, width, base_cost = exec_request t req reports in
  let latency =
    if T.Clock.is_virtual t.clock then
      synth_latency t ~base_cost
        ~loads:(t.san.San.shadow_loads () - loads0)
        ~stores:(t.san.San.shadow_stores () - stores0)
    else max 1 (T.Clock.now_ns t.clock - t0)
  in
  T.Clock.advance t.clock latency;
  let now = T.Clock.now_ns t.clock in
  t.ops <- t.ops + 1;
  t.span_ops <- t.span_ops + 1;
  T.Window.record t.win ~now_ns:now 1;
  T.Latency.observe t.lat_total latency;
  T.Latency.observe t.lat_span latency;
  push_event t
    (T.Event.Service_op
       { tenant = t.t_id; op; slot; arg; width; latency_ns = latency; t_ns = now });
  List.iter
    (fun (r : Report.t) ->
      push_event t
        (T.Event.Service_report
           {
             tenant = t.t_id;
             kind = Report.kind_name r.Report.kind;
             addr = r.Report.addr;
             t_ns = now;
           }))
    (List.rev !reports)

let run_quantum t ~max_ops =
  if t.state <> Quarantined then begin
    let budget = min max_ops (Queue.length t.queue) in
    let body () =
      for _ = 1 to budget do
        serve_one t (Queue.pop t.queue)
      done
    in
    (* re-arm the tenant's fault plan on whichever domain serves it *)
    match t.misfold with
    | None -> body ()
    | Some f -> Folding.with_fault (Some f) body
  end

(* ------------------------------------------------------------------ *)
(* Watchdog hooks                                                      *)
(* ------------------------------------------------------------------ *)

type window_stats = {
  ws_closed : int;
  ws_p999_ns : float;
  ws_error_rate : float;
  ws_ops_per_sec : float;
}

let poll_windows t =
  ignore (T.Window.roll t.win ~now_ns:(T.Clock.now_ns t.clock));
  let span = t.span_ops in
  if T.Window.closed t.win = 0 || t.lat_span_mark = T.Window.closed t.win then
    None
  else begin
    let closed = T.Window.closed t.win - t.lat_span_mark in
    t.lat_span_mark <- T.Window.closed t.win;
    let p999 = T.Latency.p999 t.lat_span in
    let err_rate =
      if span = 0 then 0.0 else float_of_int t.span_errors /. float_of_int span
    in
    let stats =
      {
        ws_closed = closed;
        ws_p999_ns = p999;
        ws_error_rate = err_rate;
        ws_ops_per_sec = T.Window.rate t.win;
      }
    in
    T.Latency.reset t.lat_span;
    t.span_errors <- 0;
    t.span_ops <- 0;
    Some stats
  end

let record_breach t (b : Slo.breach) =
  t.breaches <- t.breaches + 1;
  push_event t
    (T.Event.Slo_breach
       {
         tenant = t.t_id;
         slo = b.Slo.b_slo;
         value = b.Slo.b_value;
         limit = b.Slo.b_limit;
         t_ns = T.Clock.now_ns t.clock;
       })

let record_state t s =
  push_event t
    (T.Event.Tenant_state
       { tenant = t.t_id; state = state_name s; t_ns = T.Clock.now_ns t.clock })

let record_fault t ~detail =
  push_event t
    (T.Event.Tenant_fault
       { tenant = t.t_id; detail; t_ns = T.Clock.now_ns t.clock })

(* ------------------------------------------------------------------ *)
(* Chaos integration                                                   *)
(* ------------------------------------------------------------------ *)

(* The shadow faults of the chaos plane translate per metadata plane: the
   folded shadow takes them literally; the PAC signature table maps byte
   corruption to a tag forge and a stale-free plant to a stolen strip; a
   plane-less backend absorbs the fault (nothing to corrupt — which is
   itself a finding the chaos report records as "absorbed"). *)
let plant_shadow_fault t shadow fault =
  match fault with
  | Fault.Bit_flip { pick; mask } ->
    let seg = pick mod Shadow_mem.segments shadow in
    Shadow_mem.poke shadow seg
      (Shadow_mem.peek shadow seg lxor (mask land 0xff));
    Printf.sprintf "bit-flip x%02x at seg %d" (mask land 0xff) seg
  | Fault.Stale_free { pick } ->
    let seg = pick mod Shadow_mem.segments shadow in
    Shadow_mem.poke shadow seg State_code.freed;
    Printf.sprintf "stale free code at seg %d" seg
  | Fault.Overclaim_code { pick } ->
    let seg = pick mod Shadow_mem.segments shadow in
    Shadow_mem.poke shadow seg State_code.good;
    Printf.sprintf "overclaim at seg %d" seg
  | Fault.Misfold { degree } ->
    t.misfold <- Some (Folding.Overstate_last degree);
    Printf.sprintf "misfold armed d=%d" degree
  | Fault.Journal_drop { pick } -> (
    match Shadow_mem.chaos_drop_journal shadow ~pick with
    | Some (lo, len) -> Printf.sprintf "journal entry [%d, +%d) stolen" lo len
    | None -> "journal drop absorbed (no snapshot armed)")

let plant_sig_fault sigs fault =
  let forge ~pick ~mask =
    match Pac.forge sigs ~pick ~mask with
    | Some base -> Printf.sprintf "tag-forge at base %d" base
    | None -> "tag-forge absorbed (no live signatures)"
  in
  match fault with
  | Fault.Bit_flip { pick; mask } -> forge ~pick ~mask
  | Fault.Overclaim_code { pick } -> forge ~pick ~mask:(pick lor 1)
  | Fault.Stale_free { pick } -> (
    match Pac.drop sigs ~pick with
    | Some base -> Printf.sprintf "stolen strip at base %d" base
    | None -> "stolen strip absorbed (no live signatures)")
  | Fault.Misfold { degree } ->
    Printf.sprintf "misfold absorbed (no folded shadow) d=%d" degree
  | Fault.Journal_drop { pick } ->
    Printf.sprintf "journal drop absorbed (no dirty journal) p=%d" pick

let plant_fault t fault =
  match t.plane with
  | Backend.Shadow shadow -> plant_shadow_fault t shadow fault
  | Backend.Sigs sigs -> plant_sig_fault sigs fault
  | Backend.Plain -> "fault absorbed (no metadata plane)"

(* The PAC plane has no shadow to diff against the oracle; instead the
   audit recomputes every stored PAC (catches forges) and then sweeps the
   slot table checking every live slot still holds a signature (catches
   stolen strips, which Pac.audit alone cannot see). *)
let audit t =
  match t.plane with
  | Backend.Shadow shadow -> (
    match Selfcheck.run ~heap:t.san.San.heap ~shadow with
    | [] -> None
    | m :: _ -> Some (Selfcheck.mismatch_to_string m))
  | Backend.Sigs sigs -> (
    match Pac.audit sigs with
    | Some _ as detail -> detail
    | None ->
      let missing = ref None in
      Array.iter
        (fun slot ->
          match slot with
          | Some (base, _) when !missing = None && not (Pac.has sigs ~base) ->
            missing := Some (Printf.sprintf "live slot base %d unsigned" base)
          | _ -> ())
        t.slots;
      !missing)
  | Backend.Plain -> None

let repartition t ~backend =
  (* the queued requests were generated against the old arena's slots;
     shed them (counted) instead of serving them against a heap that no
     longer holds those objects *)
  t.shed <- t.shed + Queue.length t.queue;
  Queue.clear t.queue;
  Array.fill t.slots 0 n_slots None;
  t.misfold <- None;
  t.breach_streak <- 0;
  let san, plane =
    Backend.create_exposed ~pac_key:t.t_pac_key backend t.cfg.heap
  in
  t.backend <- backend;
  t.san <- san;
  t.plane <- plane;
  push_event t
    (T.Event.Tenant_backend
       {
         tenant = t.t_id;
         backend = Backend.name backend;
         t_ns = T.Clock.now_ns t.clock;
       })

let dump t =
  T.Export.ndjson_lines (T.Ring.to_seq_list t.recorder)
