module Shadow_mem = Giantsan_shadow.Shadow_mem
module Memobj = Giantsan_memsim.Memobj

let max_run = 63

(* Every run ends in the same descending ramp max_run, .., 2, 1; positions
   further than [max_run] from the end saturate at [max_run]. One fixed
   ramp template plus a fill covers any run length in two batched writes. *)
let ramp =
  Bytes.init max_run (fun i -> Char.chr (max_run - i))

let poison_good_run m ~first_seg ~count =
  if count > 0 then begin
    let tail = min count max_run in
    Shadow_mem.fill_range m ~lo:first_seg ~hi:(first_seg + count - tail) max_run;
    Shadow_mem.blit_pattern m ~lo:(first_seg + count - tail) ~pattern:ramp
      ~pat_off:(max_run - tail) ~len:tail
  end

let poison_alloc m (obj : Memobj.t) =
  let rz = State_code.redzone_code obj.kind in
  let base_seg = obj.base / 8 in
  let full = obj.size / 8 in
  let rem = obj.size mod 8 in
  Shadow_mem.fill_range m ~lo:(obj.block_base / 8) ~hi:base_seg rz;
  poison_good_run m ~first_seg:base_seg ~count:full;
  let after =
    if rem > 0 then begin
      Shadow_mem.set m (base_seg + full) (State_code.partial rem);
      base_seg + full + 1
    end
    else base_seg + full
  in
  Shadow_mem.fill_range m ~lo:after ~hi:(Memobj.block_end obj / 8) rz

let check m ~l ~r =
  assert (l land 7 = 0);
  if r <= l then true
  else begin
    let last_seg = (r - 1) / 8 in
    (* hop whole-good runs until the final (possibly partial) segment *)
    let rec hop p =
      if p > last_seg then true
      else begin
        let v = Shadow_mem.load m p in
        if v >= 1 && v <= max_run then
          if p + v > last_seg then
            (* the run covers through the last segment; the tail bytes of
               the last segment only matter when r is unaligned, and a good
               segment covers them too *)
            true
          else hop (p + v)
        else if p = last_seg then
          (* partial segment allowed only at the very end *)
          State_code.addressable_in_segment v >= ((r - 1) land 7) + 1
        else false
      end
    in
    hop (l / 8)
  end

let check_unaligned m ~l ~r = check m ~l:(l land lnot 7) ~r
