module Memsim = Giantsan_memsim
module Shadow_mem = Giantsan_shadow.Shadow_mem
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Trace = Giantsan_telemetry.Trace
module Histogram = Giantsan_telemetry.Histogram

let create_exposed_variant ~name ~use_cache ~check_underflow config =
  let heap = Memsim.Heap.create config in
  let m = Shadow_mem.of_heap heap ~fill:State_code.unallocated in
  Memsim.Heap.set_evict_hook heap (Folding.poison_evict m);
  let counters = Counters.create () in
  let hists = Histogram.create_set () in
  (* quarantine-residency bookkeeping (telemetry only): the free sequence
     number each block entered quarantine at, keyed by object id *)
  let quarantined_at : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    let r =
      Report.make
        ~kind:(Report.classify_access heap ~addr ~base)
        ~addr ~size ~detected_by:name
    in
    Trace.emit_report ~tool:name ~kind:(Report.kind_name r.Report.kind) ~addr;
    Some r
  in
  let count_region outcome =
    counters.Counters.region_checks <- counters.Counters.region_checks + 1;
    match outcome with
    | Region_check.Safe_fast ->
      counters.Counters.fast_checks <- counters.Counters.fast_checks + 1
    | Region_check.Safe_word ->
      counters.Counters.fast_checks <- counters.Counters.fast_checks + 1;
      counters.Counters.word_checks <- counters.Counters.word_checks + 1
    | Region_check.Safe_slow | Region_check.Bad _ ->
      counters.Counters.slow_checks <- counters.Counters.slow_checks + 1
  in
  let ci ?anchor ~l ~r ~size () =
    let loads_before = if Trace.is_on () then Shadow_mem.loads m else 0 in
    let outcome = Region_check.check_unaligned m ~l ~r in
    count_region outcome;
    if Trace.is_on () then begin
      let loads = Shadow_mem.loads m - loads_before in
      Histogram.observe hists.Histogram.h_loads_per_check loads;
      Trace.emit_region_check ~tool:name ~lo:l ~hi:r
        ~fast:
          (match outcome with
          | Region_check.Safe_fast | Region_check.Safe_word -> true
          | Region_check.Safe_slow | Region_check.Bad _ -> false)
        ~loads;
      if loads > 0 then Trace.emit_shadow_load ~tool:name ~count:loads
    end;
    match outcome with
    | Region_check.Safe_fast | Region_check.Safe_slow | Region_check.Safe_word
      ->
      None
    | Region_check.Bad addr -> report ?base:anchor ~addr ~size ()
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    let obj = Memsim.Heap.malloc heap ?kind size in
    Folding.poison_alloc m obj;
    counters.Counters.poison_segments <-
      counters.Counters.poison_segments + (obj.Memsim.Memobj.block_len / 8);
    if Trace.is_on () then begin
      Trace.emit_malloc ~tool:name ~base:obj.Memsim.Memobj.base ~size
        ~kind:(Memsim.Memobj.kind_name obj.Memsim.Memobj.kind);
      Histogram.observe hists.Histogram.h_fold_degree
        (if size >= 8 then Folding.degree_at ~good_segments:(size / 8) else 0)
    end;
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    Trace.emit_free ~tool:name ~addr:ptr;
    match Memsim.Heap.free heap ptr with
    | Ok { freed; evicted } ->
      Folding.poison_free m freed;
      List.iter (Folding.poison_evict m) evicted;
      if Trace.is_on () then begin
        let now = counters.Counters.frees in
        Hashtbl.replace quarantined_at freed.Memsim.Memobj.id now;
        List.iter
          (fun (o : Memsim.Memobj.t) ->
            match Hashtbl.find_opt quarantined_at o.Memsim.Memobj.id with
            | None -> ()
            | Some entered ->
              Hashtbl.remove quarantined_at o.Memsim.Memobj.id;
              Histogram.observe hists.Histogram.h_quarantine_residency
                (now - entered))
          evicted
      end;
      None
    | Error err ->
      let r = San.free_error_report ~name ~addr:ptr err in
      (match r with
      | Some r ->
        counters.Counters.errors <- counters.Counters.errors + 1;
        Trace.emit_report ~tool:name
          ~kind:(Report.kind_name r.Report.kind)
          ~addr:ptr
      | None -> ());
      r
  in
  let traced_access ~addr ~width check =
    if Trace.is_on () then begin
      Histogram.observe hists.Histogram.h_access_width width;
      let slow_before = counters.Counters.slow_checks in
      let r = check () in
      Trace.emit_access ~tool:name ~addr ~width
        ~fast:(counters.Counters.slow_checks = slow_before);
      r
    end
    else check ()
  in
  let access ~base ~addr ~width =
    traced_access ~addr ~width (fun () ->
        if base > 0 && addr >= base then
          (* anchor-based: protect everything between the anchor and the
             access *)
          ci ~anchor:base ~l:base ~r:(addr + width) ~size:width ()
        else if base > 0 && check_underflow then begin
          counters.Counters.underflow_checks <-
            counters.Counters.underflow_checks + 1;
          match ci ~anchor:base ~l:addr ~r:base ~size:width () with
          | Some r -> Some r
          | None ->
            if addr + width > base then
              ci ~anchor:base ~l:base ~r:(addr + width) ~size:width ()
            else None
        end
        else
          (* no anchor (or underflow anchoring disabled, the §5.4 degraded
             mode): check only the accessed bytes *)
          ci ~l:addr ~r:(addr + width) ~size:width ())
  in
  let check_region ~lo ~hi =
    ci ~anchor:lo ~l:lo ~r:hi ~size:(hi - lo) ()
  in
  let cached_access (cache : San.cache) ~off ~width =
    let addr = cache.San.cache_base + off in
    if off < 0 && not check_underflow then
      (* degraded §5.4 mode: unanchored check of the accessed bytes only *)
      traced_access ~addr ~width (fun () ->
          ci ~l:addr ~r:(addr + width) ~size:width ())
    else if use_cache then
      traced_access ~addr ~width (fun () ->
          match Quasi_bound.access m counters cache ~off ~width with
          | Quasi_bound.Ok_cached ->
            Trace.emit_cache_hit ~tool:name ~off;
            None
          | Quasi_bound.Ok_checked ->
            Trace.emit_cache_update ~tool:name ~ub:(San.cache_ub cache);
            None
          | Quasi_bound.Bad addr ->
            report ~base:cache.San.cache_base ~addr ~size:width ())
    else access ~base:cache.San.cache_base ~addr ~width
  in
  let flush_cache cache =
    if not use_cache then None
    else
      match Quasi_bound.flush m counters cache with
      | None -> None
      | Some addr -> report ~base:cache.San.cache_base ~addr ~size:0 ()
  in
  let snapshot, restore =
    San.snapshot_slot
      ~cap:(fun () ->
        ( Memsim.Heap.snapshot heap,
          Shadow_mem.snapshot m,
          San.counters_copy counters,
          Hashtbl.copy quarantined_at ))
      ~put:(fun (hs, ss, cs, qs) ->
        Memsim.Heap.restore heap hs;
        Shadow_mem.restore m ss;
        San.counters_restore counters cs;
        Hashtbl.reset quarantined_at;
        Hashtbl.iter (Hashtbl.add quarantined_at) qs)
  in
  let san =
    {
      San.name;
      heap;
      counters;
      hists;
      shadow_loads = (fun () -> Shadow_mem.loads m);
      shadow_stores = (fun () -> Shadow_mem.stores m);
      malloc;
      free;
      access;
      check_region;
      new_cache = (fun ~base -> San.new_cache ~base);
      cached_access;
      flush_cache;
      supports_operation_level = true;
      snapshot;
      restore;
    }
  in
  San.Registry.register san;
  (san, m)

let create_variant ~name ~use_cache ?(check_underflow = true) config =
  fst (create_exposed_variant ~name ~use_cache ~check_underflow config)

let create config = create_variant ~name:"GiantSan" ~use_cache:true config

let create_exposed config =
  create_exposed_variant ~name:"GiantSan" ~use_cache:true
    ~check_underflow:true config
