module Shadow_mem = Giantsan_shadow.Shadow_mem

type outcome = Safe_fast | Safe_slow | Safe_word | Bad of int

let is_safe = function Safe_fast | Safe_slow | Safe_word -> true | Bad _ -> false

(* A literal transcription of Algorithm 1. [l] plays L, [r] plays R.
   Soundness rests on two invariants of the poisoning pass:
   - a folded code is a truthful claim that 2^i whole segments are good;
   - within one object, state codes never decrease along the object
     (monotone degrees), so the suffix test can use [<>] instead of [>].

   Kept as a selectable scalar path (and as the word kernel's ground truth
   in the equivalence qchecks): the word path below must agree with it
   byte-for-byte on ANY shadow contents, canonical or corrupted. *)
let check_scalar m ~l ~r =
  assert (l land 7 = 0);
  if r <= l then Safe_fast
  else begin
    let v = Shadow_mem.load m (l / 8) in
    let u = State_code.covered_bytes v in
    if u >= r - l then Safe_fast
    else begin
      let bad = ref None in
      if r - l >= 8 then begin
        (* prefix: the folded segment at l must cover at least half *)
        if 2 * u < r - l then bad := Some (l + u)
        else if Shadow_mem.load m ((r - u) / 8) <> v then
          (* suffix: a second folded segment of the same degree must cover
             the tail. The blamed address is the end of the suffix segment,
             clamped into the checked region: for small [u] the segment's
             last byte can sit at or past [r], and an error report outside
             [l, r) would point the user at bytes the access never touched. *)
          bad := Some (min (r - 1) (((r - u) / 8 * 8) + 7))
      end;
      (if !bad = None then
         (* the final, possibly partial segment *)
         let last = Shadow_mem.load m ((r - 1) / 8) in
         if last > 72 - (r land 7) then
           bad := Some (((r - 1) / 8 * 8) + State_code.addressable_in_segment last));
      match !bad with None -> Safe_slow | Some addr -> Bad addr
    end
  end

(* Word fast path, for regions spanning at most 8 segments (r - l <= 64,
   the overwhelmingly common case: every instruction-level access and most
   operation-level checks). One 64-bit shadow load fetches all the segments
   Algorithm 1 could ever probe for such a region; the three probe lanes
   (fold at l, same-degree suffix fold, final partial segment) are then
   served from the broadcast word instead of issuing separate loads.

   Exactness, not just soundness: each probe reads the identical shadow
   byte the scalar kernel would load, so verdict AND blamed address match
   [check_scalar] on arbitrary shadow contents — including corrupted or
   misfolded states, which is what lets the refinement harness audit the
   two paths in lockstep and a planted fault diverge identically in both.
   (A tempting cheaper settle — "all 8 lanes folded => safe" — is NOT
   equivalent: three degree-0 folds over a 24-byte region fail the scalar
   prefix test, so the word path would mask exactly the corruptions the
   mutation tests plant.) *)
let check_word m ~l ~r =
  (* precondition: l aligned, l < r, r - l <= 64 *)
  let l_seg = l / 8 in
  let w = Shadow_mem.load_word m l_seg in
  let v = Shadow_mem.word_byte w 0 in
  let u = State_code.covered_bytes v in
  if u >= r - l then Safe_word
  else begin
    let bad = ref None in
    if r - l >= 8 then begin
      if 2 * u < r - l then bad := Some (l + u)
        (* the suffix lane index is in [0, 7]: this branch needs [v] folded
           (else u = 0 fails the prefix test), so u >= 8 and
           l < r - u <= r - 8 *)
      else if Shadow_mem.word_byte w ((r - u) / 8 - l_seg) <> v then
        bad := Some (min (r - 1) (((r - u) / 8 * 8) + 7))
    end;
    (if !bad = None then
       let last = Shadow_mem.word_byte w ((r - 1) / 8 - l_seg) in
       if last > 72 - (r land 7) then
         bad := Some (((r - 1) / 8 * 8) + State_code.addressable_in_segment last));
    match !bad with None -> Safe_word | Some addr -> Bad addr
  end

let check m ~l ~r =
  assert (l land 7 = 0);
  if r <= l then Safe_fast
  else if r - l <= 64 then check_word m ~l ~r
  else check_scalar m ~l ~r

(* An empty region is vacuously safe BEFORE aligning: aligning first would
   turn [l, l) into a real check of the bytes below [l] — bytes the
   operation never touches — and report a zero-length memset/region check
   that happens to start over a redzone. Found by the refinement harness
   (model: an empty window is addressable). *)
let check_unaligned m ~l ~r =
  if r <= l then Safe_fast else check m ~l:(l land lnot 7) ~r

let check_unaligned_scalar m ~l ~r =
  if r <= l then Safe_fast else check_scalar m ~l:(l land lnot 7) ~r
