module Shadow_mem = Giantsan_shadow.Shadow_mem

type outcome = Safe_fast | Safe_slow | Bad of int

let is_safe = function Safe_fast | Safe_slow -> true | Bad _ -> false

(* A literal transcription of Algorithm 1. [l] plays L, [r] plays R.
   Soundness rests on two invariants of the poisoning pass:
   - a folded code is a truthful claim that 2^i whole segments are good;
   - within one object, state codes never decrease along the object
     (monotone degrees), so the suffix test can use [<>] instead of [>]. *)
let check m ~l ~r =
  assert (l land 7 = 0);
  if r <= l then Safe_fast
  else begin
    let v = Shadow_mem.load m (l / 8) in
    let u = State_code.covered_bytes v in
    if u >= r - l then Safe_fast
    else begin
      let bad = ref None in
      if r - l >= 8 then begin
        (* prefix: the folded segment at l must cover at least half *)
        if 2 * u < r - l then bad := Some (l + u)
        else if Shadow_mem.load m ((r - u) / 8) <> v then
          (* suffix: a second folded segment of the same degree must cover
             the tail. The blamed address is the end of the suffix segment,
             clamped into the checked region: for small [u] the segment's
             last byte can sit at or past [r], and an error report outside
             [l, r) would point the user at bytes the access never touched. *)
          bad := Some (min (r - 1) (((r - u) / 8 * 8) + 7))
      end;
      (if !bad = None then
         (* the final, possibly partial segment *)
         let last = Shadow_mem.load m ((r - 1) / 8) in
         if last > 72 - (r land 7) then
           bad := Some (((r - 1) / 8 * 8) + State_code.addressable_in_segment last));
      match !bad with None -> Safe_slow | Some addr -> Bad addr
    end
  end

(* An empty region is vacuously safe BEFORE aligning: aligning first would
   turn [l, l) into a real check of the bytes below [l] — bytes the
   operation never touches — and report a zero-length memset/region check
   that happens to start over a redzone. Found by the refinement harness
   (model: an empty window is addressable). *)
let check_unaligned m ~l ~r =
  if r <= l then Safe_fast else check m ~l:(l land lnot 7) ~r
