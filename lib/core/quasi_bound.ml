module Shadow_mem = Giantsan_shadow.Shadow_mem
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer

type result = Ok_cached | Ok_checked | Bad of int

let count_region (c : Counters.t) outcome =
  c.region_checks <- c.region_checks + 1;
  match outcome with
  | Region_check.Safe_fast -> c.fast_checks <- c.fast_checks + 1
  | Region_check.Safe_slow -> c.slow_checks <- c.slow_checks + 1
  | Region_check.Bad _ -> c.slow_checks <- c.slow_checks + 1

let access m (c : Counters.t) (cache : San.cache) ~off ~width =
  let base = cache.cache_base in
  if off < 0 then begin
    (* Figure 9 lines 9-11: a dedicated CI(y + off, y) per underflow-side
       access; no caching on this side. *)
    c.underflow_checks <- c.underflow_checks + 1;
    let o1 = Region_check.check_unaligned m ~l:(base + off) ~r:base in
    count_region c o1;
    match o1 with
    | Region_check.Bad a -> Bad a
    | Region_check.Safe_fast | Region_check.Safe_slow ->
      if off + width > 0 then begin
        (* the non-negative tail [base, base + off + width) is an ordinary
           overflow-side region: the quasi-bound applies to it just as it
           does on the positive path, so consult it before re-checking *)
        if off + width <= cache.cache_ub then begin
          c.cache_hits <- c.cache_hits + 1;
          Ok_checked
        end
        else begin
          let o2 = Region_check.check m ~l:base ~r:(base + off + width) in
          count_region c o2;
          match o2 with
          | Region_check.Bad a -> Bad a
          | Region_check.Safe_fast | Region_check.Safe_slow -> Ok_checked
        end
      end
      else Ok_checked
  end
  else if off + width <= cache.cache_ub then begin
    c.cache_hits <- c.cache_hits + 1;
    Ok_cached
  end
  else begin
    let outcome = Region_check.check m ~l:base ~r:(base + off + width) in
    count_region c outcome;
    match outcome with
    | Region_check.Bad a -> Bad a
    | Region_check.Safe_fast | Region_check.Safe_slow ->
      (* Figure 9 lines 6-7: refresh the quasi-bound from the folded
         segment at the access position (one extra metadata load). *)
      c.cache_updates <- c.cache_updates + 1;
      let v = Shadow_mem.load m ((base + off) / 8) in
      let seg_start_off = ((base + off) land lnot 7) - base in
      let nb = seg_start_off + State_code.covered_bytes v in
      if nb > cache.cache_ub then cache.cache_ub <- nb;
      Ok_checked
  end

let flush m (c : Counters.t) (cache : San.cache) =
  if cache.cache_ub <= 0 then None
  else begin
    let outcome =
      Region_check.check m ~l:cache.cache_base
        ~r:(cache.cache_base + cache.cache_ub)
    in
    count_region c outcome;
    match outcome with
    | Region_check.Bad a -> Some a
    | Region_check.Safe_fast | Region_check.Safe_slow -> None
  end
