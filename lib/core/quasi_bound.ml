module Shadow_mem = Giantsan_shadow.Shadow_mem
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer

type result = Ok_cached | Ok_checked | Bad of int

let count_region (c : Counters.t) outcome =
  c.region_checks <- c.region_checks + 1;
  match outcome with
  | Region_check.Safe_fast -> c.fast_checks <- c.fast_checks + 1
  | Region_check.Safe_word ->
    c.fast_checks <- c.fast_checks + 1;
    c.word_checks <- c.word_checks + 1
  | Region_check.Safe_slow -> c.slow_checks <- c.slow_checks + 1
  | Region_check.Bad _ -> c.slow_checks <- c.slow_checks + 1

(* Record the overflow side [base, hi_checked) just proven safe, extended
   by the folded segment at [probe] (Figure 9 lines 6-7: one extra
   metadata load enlarges the bound past the access). The extension is
   anchored at the probe's segment start — the sound reading documented in
   DESIGN.md — and can never shrink what the check itself proved. *)
let refresh_above m (c : Counters.t) (cache : San.cache) ~hi_checked ~probe =
  c.cache_updates <- c.cache_updates + 1;
  let v = Shadow_mem.load m (probe / 8) in
  let ext = (probe land lnot 7) + State_code.covered_bytes v in
  San.cache_note cache ~lo:cache.San.cache_base ~hi:(max hi_checked ext)

let access m (c : Counters.t) (cache : San.cache) ~off ~width =
  let base = cache.San.cache_base in
  if off >= 0 then begin
    if San.cache_hit cache ~lo:base ~hi:(base + off + width) then begin
      c.cache_hits <- c.cache_hits + 1;
      Ok_cached
    end
    else begin
      let outcome = Region_check.check m ~l:base ~r:(base + off + width) in
      count_region c outcome;
      match outcome with
      | Region_check.Bad a -> Bad a
      | Region_check.Safe_fast | Region_check.Safe_slow
      | Region_check.Safe_word ->
        refresh_above m c cache ~hi_checked:(base + off + width)
          ~probe:(base + off);
        Ok_checked
    end
  end
  else begin
    let addr = base + off in
    (* Underflow side [addr, base). The original Figure 9 lines 9-11 issue
       a dedicated CI(y + off, y) on EVERY such access — the single-sided
       summary had no lower bound, which is the §5.4 limitation that made
       reverse traversals pathological (fig11). The window history caches
       the low side too: a miss pays the dedicated check once, then
       extends the proven window down to the fold-derived run floor
       ([Folding.lower_bound], O(log) loads), so a descending or strided
       stream hits cache from the second access on. *)
    let low =
      (* the hit query spans the whole anchored gap [addr, base), the same
         extent the dedicated check proves — hit and miss give the access
         identical protection *)
      if San.cache_hit cache ~lo:addr ~hi:base then begin
        c.cache_hits <- c.cache_hits + 1;
        `Hit
      end
      else begin
        c.underflow_checks <- c.underflow_checks + 1;
        let o1 = Region_check.check_unaligned m ~l:addr ~r:base in
        count_region c o1;
        match o1 with
        | Region_check.Bad a -> `Bad a
        | Region_check.Safe_fast | Region_check.Safe_slow
        | Region_check.Safe_word ->
          c.cache_updates <- c.cache_updates + 1;
          let floor = Folding.lower_bound m ~addr in
          San.cache_note cache
            ~lo:(min floor (addr land lnot 7))
            ~hi:base;
          `Checked
      end
    in
    match low with
    | `Bad a -> Bad a
    | (`Hit | `Checked) as low ->
      if off + width > 0 then begin
        (* the non-negative tail [base, base + off + width) is an ordinary
           overflow-side region: consult the history before re-checking *)
        if San.cache_hit cache ~lo:base ~hi:(base + off + width) then begin
          c.cache_hits <- c.cache_hits + 1;
          if low = `Hit then Ok_cached else Ok_checked
        end
        else begin
          let o2 = Region_check.check m ~l:base ~r:(base + off + width) in
          count_region c o2;
          match o2 with
          | Region_check.Bad a -> Bad a
          | Region_check.Safe_fast | Region_check.Safe_slow
          | Region_check.Safe_word ->
            (* refresh after a successful tail check, exactly like the
               positive path — the tail used to be checked and forgotten,
               so straddling writes re-verified the same region forever *)
            refresh_above m c cache ~hi_checked:(base + off + width)
              ~probe:base;
            Ok_checked
        end
      end
      else if low = `Hit then Ok_cached
      else Ok_checked
  end

let flush m (c : Counters.t) (cache : San.cache) =
  (* Figure 9 line 14, per history window: everything the cache ever
     vouched for is re-verified, so a mid-loop free inside ANY window —
     upper or lower side — is caught at loop exit. *)
  let rec go = function
    | [] -> None
    | (lo, hi) :: rest -> (
      let outcome = Region_check.check_unaligned m ~l:lo ~r:hi in
      count_region c outcome;
      match outcome with
      | Region_check.Bad a -> Some a
      | Region_check.Safe_fast | Region_check.Safe_slow
      | Region_check.Safe_word ->
        go rest)
  in
  go (San.cache_windows cache)
