(** GiantSan's shadow state codes (Definition 1, §4.1).

    One unsigned shadow byte [m\[p\]] per 8-byte segment:

    - [m\[p\] = 64 - i]   : the p-th segment is an (i)-folded segment — it and
      the [2^i - 1] segments after it are all "good" (fully addressable);
    - [m\[p\] = 72 - k]   : k-partial segment, only the first [k] bytes
      (1..7) are addressable;
    - [m\[p\] > 72]       : error codes (redzone, freed, unallocated, ...).

    The encoding is monotone: a smaller state code means more consecutive
    addressable bytes follow — one unsigned compare answers "is the folding
    degree at least d?". *)

val good : int
(** The (0)-folded code, 64: exactly this segment is known good. *)

val folded : int -> int
(** [folded i] is the (i)-folded code [64 - i]. [0 <= i <= max_degree]. *)

val degree : int -> int
(** Inverse of [folded] for folded codes. *)

val partial : int -> int
(** [partial k] is the k-partial code [72 - k], [1 <= k <= 7]. *)

val max_degree : int
(** Folding degree cap. The paper bounds x by 64 (object sizes < 2^64); we
    cap at 45 so [8 * 2^x] stays comfortably within OCaml's 63-bit ints. *)

val is_folded : int -> bool
(** [v <= 64]. *)

val is_partial : int -> bool
(** [65 <= v <= 71]. *)

val is_error : int -> bool
(** [v > 72]. *)

(** Error codes (all > 72, keeping Definition 1's monotonicity). *)

val heap_redzone : int
(** Bytes of a heap allocation's surrounding redzone. *)

val freed : int
(** Bytes of a freed (possibly quarantined) object. *)

val stack_redzone : int
val global_redzone : int
(** Redzones of the corresponding {!Giantsan_memsim.Memobj.kind}. *)

val unallocated : int
(** Never-allocated shadow, the initial state of the arena. *)

val covered_bytes : int -> int
(** [covered_bytes v] is the number of addressable bytes guaranteed to start
    at the segment carrying state [v]: [8 * 2^i] for an (i)-folded code, [0]
    otherwise. This is the paper's branch-free trick
    [(v <= 64) << (67 - v)], implemented with an explicit guard because
    OCaml's [lsl] by a negative amount is undefined. *)

val addressable_in_segment : int -> int
(** Addressable prefix length of the single segment: 8 if folded, [k] if
    k-partial, 0 if error. *)

val redzone_code : Giantsan_memsim.Memobj.kind -> int
(** The redzone error code matching an object kind (heap, stack,
    global). *)

val describe : int -> string
(** Human-readable rendering, e.g. ["(3)-folded"], ["4-partial"],
    ["heap-redzone"]. *)
