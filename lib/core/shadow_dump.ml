module Shadow_mem = Giantsan_shadow.Shadow_mem

let segment_line m ~seg =
  Printf.sprintf "seg %5d [%d,%d)  %s" seg (8 * seg)
    (8 * (seg + 1))
    (State_code.describe (Shadow_mem.peek m seg))

let around m ~addr ?(radius = 4) () =
  let seg = addr / 8 in
  let buf = Buffer.create 256 in
  for s = max 0 (seg - radius) to min (Shadow_mem.segments m - 1) (seg + radius) do
    Buffer.add_string buf (if s = seg then "=> " else "   ");
    Buffer.add_string buf (segment_line m ~seg:s);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let class_of v =
  if State_code.is_folded v then `Folded
  else if State_code.is_partial v then `Partial v
  else `Error v

let class_name = function
  | `Folded -> "folded"
  | `Partial v -> State_code.describe v
  | `Error v -> State_code.describe v

let run_summary m ~lo ~hi =
  let lo_seg = lo / 8 and hi_seg = (hi + 7) / 8 in
  let runs = ref [] in
  (* word-wide scan: fetch 8 codes per (uncounted) word, walking lanes —
     same classing and output as the old per-byte walk, 8x fewer fetches *)
  let s = ref lo_seg in
  while !s < hi_seg do
    let w = Shadow_mem.peek_word m !s in
    let lanes = min 8 (hi_seg - !s) in
    for k = 0 to lanes - 1 do
      let c = class_of (Shadow_mem.word_byte w k) in
      match !runs with
      | (c', n) :: rest when c' = c -> runs := (c', n + 1) :: rest
      | _ -> runs := (c, 1) :: !runs
    done;
    s := !s + 8
  done;
  String.concat ", "
    (List.rev_map
       (fun (c, n) -> Printf.sprintf "%dx %s" n (class_name c))
       !runs)
