(** Segment folding: building the folded-segment summary for an allocation
    (§4.1, Figure 5).

    For an object with [G] good segments, the j-th good segment gets folding
    degree [floor (log2 (G - j))] — the largest [x] such that the [2^x]
    segments starting at j are all good. Counted from the object's tail this
    yields the paper's pattern: one (0)-folded, two (1)-folded, four
    (2)-folded segments, and so on. Poisoning is linear in the number of
    segments, like ASan's. *)

val degree_at : good_segments:int -> int
(** [degree_at ~good_segments] is the folding degree of a segment followed
    by [good_segments - 1] further good segments (i.e. [floor (log2
    good_segments)], capped at [State_code.max_degree]).
    Requires [good_segments >= 1]. *)

val poison_good_run :
  Giantsan_shadow.Shadow_mem.t -> first_seg:int -> count:int -> unit
(** Write the folded codes for a run of [count] good segments starting at
    segment index [first_seg]. The degree sequence depends only on [count]
    (position [j] carries [degree_at (count - j)]) and is the suffix of one
    shared sequence, so the codes come from a memoized byte template
    (rebuilt per power-of-two bracket) and land in the shadow as a single
    batched blit — same bytes and same store count as the scalar kernel,
    without the per-segment loop. *)

val poison_good_run_scalar :
  Giantsan_shadow.Shadow_mem.t -> first_seg:int -> count:int -> unit
(** The reference kernel: one counted store per segment, incremental
    floor-log2. Semantically identical to [poison_good_run] (byte-identical
    shadow, equal store counts, same fault-plan behaviour) — kept as the
    oracle for the equivalence property tests and the microbenchmark
    comparison. *)

type fault =
  | Overstate_last of int
      (** the final segment of every good run claims this folding degree
          instead of 0, vouching for up to [8 * (2^d - 1)] bytes past the
          object's end — a silent detection-window shrink, never a false
          positive. [Overstate_last 1] reproduces the historical
          [misfold_for_testing] switch. *)

val set_fault : fault option -> unit
(** Arm (or with [None] disarm) the poison-kernel fault plan for the
    {e calling domain}. Domain-local on purpose: parallel chaos cells each
    arm their own fault without racing, and a worker's fault never leaks to
    its siblings. Exists solely so the differential fuzzer's self-tests and
    the chaos engine can prove a real folding bug would be caught; nothing
    else may arm it. *)

val current_fault : unit -> fault option

val with_fault : fault option -> (unit -> 'a) -> 'a
(** [with_fault f body] arms [f], runs [body], and restores the previous
    plan even on exceptions. *)

val poison_alloc :
  Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit
(** Shadow for a fresh allocation: left redzone, folded good segments,
    trailing partial segment, right redzone. *)

val poison_free :
  Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit

val poison_evict :
  Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit

val upper_bound : Giantsan_shadow.Shadow_mem.t -> addr:int -> int
(** Locate the exact end of the addressable run containing [addr] by
    skipping over folded segments (Figure 7): returns the first
    non-addressable address at or after [addr]. At most
    [ceil (log2 (n/8))] folded-segment hops plus the final partial segment.
    Counts its shadow loads. Returns [addr] itself when [addr]'s segment
    state proves nothing (error code at its segment). The result is clamped
    to the arena end ([8 * segments]): a fold near the tail whose jump
    lands past the shadow never yields a quasi-bound beyond the arena. *)

val lower_bound : Giantsan_shadow.Shadow_mem.t -> addr:int -> int
(** The §5.4 mitigation for reverse traversals: locate the start of the
    good-segment run ending at [addr] "by enumerating the folding degrees
    and checking whether corresponding folded segments exist". From the
    current run start [p], try jumps of [2^d] segments (largest first): a
    segment [p - 2^d] whose folding degree is at least [d] proves the whole
    gap good. Within one object's layout the jump degrees are always
    available, so the object base is found in O(log^2 n) shadow loads —
    done once before a reverse scan, it makes the scan metadata-free.
    Returns the lowest address [l] (8-aligned) such that every byte of
    [\[l, align8 addr)] is addressable. *)
