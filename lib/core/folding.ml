module Bitops = Giantsan_util.Bitops
module Shadow_mem = Giantsan_shadow.Shadow_mem
module Memobj = Giantsan_memsim.Memobj

let degree_at ~good_segments =
  assert (good_segments >= 1);
  min (Bitops.log2_floor good_segments) State_code.max_degree

(* Scheduled fault plan for the poison kernels. Domain-local so parallel
   chaos cells can each arm their own fault without racing: a worker domain
   arms a fault for one task and disarms it before the next, and no other
   domain ever observes the flip. *)
type fault =
  | Overstate_last of int
      (* the final segment of every good run claims this folding degree
         instead of 0, vouching for [2^d - 1] segments past the object's
         end: a silent detection-window shrink, never a false positive *)

let fault_key : fault option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_fault f = Domain.DLS.get fault_key := f
let current_fault () = !(Domain.DLS.get fault_key)

let with_fault f body =
  let cell = Domain.DLS.get fault_key in
  let saved = !cell in
  cell := f;
  Fun.protect ~finally:(fun () -> cell := saved) body

let poison_good_run_scalar m ~first_seg ~count =
  (* Incremental floor-log2: walking j upward, [remaining = count - j]
     decreases by one each step, so the degree drops exactly when
     [remaining] falls below the current power of two. This keeps the whole
     poisoning pass linear, matching the paper's claim that the richer
     encoding costs no extra update time. *)
  if count > 0 then begin
    let fault = current_fault () in
    let d = ref (degree_at ~good_segments:count) in
    let remaining = ref count in
    for seg = first_seg to first_seg + count - 1 do
      while !remaining < 1 lsl !d do
        decr d
      done;
      let degree =
        (* Seeded bug for the fuzzer's self-test and the chaos engine: the
           last segment of the run claims an inflated degree, vouching for
           segments past the object's end. Overstated folds never cause
           false positives; they silently shrink the detection window,
           which is exactly the divergence the differential fuzzer and the
           shadow-vs-oracle self-check must be able to find. *)
        match fault with
        | Some (Overstate_last od) when !remaining = 1 -> od
        | _ -> !d
      in
      Shadow_mem.set m seg (State_code.folded degree);
      decr remaining
    done
  end

(* The degree sequence of a run of [G] good segments is a pure function of
   [G]: position j carries [degree_at (G - j)]. Moreover the sequence for
   [G] is a suffix of the sequence for any [N >= G] — both end in
   ..., degree_at 2, degree_at 1. So one memoized byte template (rebuilt
   only when a run outgrows it, to the next power of two) serves every run:
   poisoning becomes a single [Bytes.blit] of its last [G] bytes instead of
   [G] counted stores.

   The memo is domain-local: a shared [Bytes.t ref] would let one domain
   observe another's half-built template (grow-then-fill is not atomic), so
   each domain memoizes its own. Worst case each worker rebuilds the
   template once per power-of-two growth — noise next to the sweeps that
   amortize it. *)
let template_key = Domain.DLS.new_key (fun () -> ref Bytes.empty)

let template_for count =
  let template = Domain.DLS.get template_key in
  if Bytes.length !template < count then begin
    let n = Bitops.pow2 (Bitops.log2_ceil count) in
    let t = Bytes.create n in
    let d = ref (degree_at ~good_segments:n) in
    for j = 0 to n - 1 do
      let remaining = n - j in
      while remaining < 1 lsl !d do
        decr d
      done;
      Bytes.unsafe_set t j (Char.unsafe_chr (State_code.folded !d))
    done;
    template := t
  end;
  !template

let poison_good_run m ~first_seg ~count =
  if count > 0 then begin
    let tmpl = template_for count in
    let pat_off = Bytes.length tmpl - count in
    match current_fault () with
    | Some (Overstate_last od) ->
      (* same shadow and same store count as the scalar kernel: the run
         minus its last segment is template-blitted, then the overstated
         final degree is one counted store *)
      Shadow_mem.blit_pattern m ~lo:first_seg ~pattern:tmpl ~pat_off
        ~len:(count - 1);
      Shadow_mem.set m (first_seg + count - 1) (State_code.folded od)
    | None ->
      Shadow_mem.blit_pattern m ~lo:first_seg ~pattern:tmpl ~pat_off ~len:count
  end

let poison_alloc m (obj : Memobj.t) =
  let rz = State_code.redzone_code obj.kind in
  let base_seg = obj.base / 8 in
  let full = obj.size / 8 in
  let rem = obj.size mod 8 in
  Shadow_mem.fill_range m ~lo:(obj.block_base / 8) ~hi:base_seg rz;
  poison_good_run m ~first_seg:base_seg ~count:full;
  let after =
    if rem > 0 then begin
      Shadow_mem.set m (base_seg + full) (State_code.partial rem);
      base_seg + full + 1
    end
    else base_seg + full
  in
  Shadow_mem.fill_range m ~lo:after ~hi:(Memobj.block_end obj / 8) rz

let object_segments (obj : Memobj.t) =
  let base_seg = obj.base / 8 in
  let hi =
    if obj.size = 0 then base_seg else ((obj.base + obj.size - 1) / 8) + 1
  in
  (base_seg, hi)

let poison_free m obj =
  let lo, hi = object_segments obj in
  Shadow_mem.fill_range m ~lo ~hi State_code.freed

let poison_evict m (obj : Memobj.t) =
  Shadow_mem.fill_range m ~lo:(obj.block_base / 8)
    ~hi:(Memobj.block_end obj / 8) State_code.unallocated

let lower_bound m ~addr =
  let start = addr / 8 in
  (* largest d such that a degree-d fold at [p - 2^d] would not cross the
     shadow's origin *)
  let rec try_jump p d =
    if d < 0 then p
    else begin
      let cand = p - (1 lsl d) in
      if cand < 0 then try_jump p (d - 1)
      else
        let v = Shadow_mem.load m cand in
        if State_code.is_folded v && State_code.degree v >= d then
          (* the fold covers [cand, cand + 2^d) = [cand, p): extend left *)
          try_jump cand d
        else try_jump p (d - 1)
    end
  in
  let max_d =
    min State_code.max_degree
      (if start <= 1 then 0 else Giantsan_util.Bitops.log2_floor start)
  in
  8 * try_jump start max_d

let upper_bound m ~addr =
  let arena_end = 8 * Shadow_mem.segments m in
  let rec skip seg =
    let v = Shadow_mem.load m seg in
    if State_code.is_folded v then begin
      let next = seg + (1 lsl State_code.degree v) in
      (* a fold near the tail may jump past the shadow end; nothing beyond
         the arena is addressable, so the quasi-bound clamps there instead
         of overshooting into non-existent segments *)
      if next >= Shadow_mem.segments m then arena_end
      else skip next
    end
    else (seg * 8) + State_code.addressable_in_segment v
  in
  let bound = skip (addr / 8) in
  max addr bound
