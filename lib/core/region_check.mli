(** Algorithm 1: the O(1) region check [CI(L, R)] (§4.2).

    Safeguards an arbitrary-size region with at most three shadow loads:

    - {b fast check}: the folded segment at [L] already covers [R - L]
      bytes — one load, the common case (Figure 6b);
    - {b slow check}: the region must decompose into two folded segments of
      the same degree (Figure 6c) plus an addressable prefix of the final
      partial segment — two more loads.

    Contrast with ASan's guardian, which loads one shadow byte per 8-byte
    segment of the region. *)

type outcome =
  | Safe_fast  (** settled by the fast check *)
  | Safe_slow  (** needed the slow check *)
  | Bad of int  (** region contains a non-addressable byte; the address is a
                    best-effort pointer at the offending area *)

val check : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** [check m ~l ~r] safeguards [\[l, r)]. [l] must be 8-aligned (the paper's
    precondition; allocation bases always are — use [check_unaligned] for
    arbitrary [l]). Empty regions are [Safe_fast]. *)

val check_unaligned : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** [check] after aligning [l] down to a segment boundary. Sound for any
    region that starts inside an object (8-aligned object bases mean the
    aligned-down bytes belong to the same object). *)

val is_safe : outcome -> bool
(** True for [Safe_fast] and [Safe_slow]. *)
