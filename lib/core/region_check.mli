(** Algorithm 1: the O(1) region check [CI(L, R)] (§4.2).

    Safeguards an arbitrary-size region with at most three shadow loads:

    - {b word check}: for regions spanning at most 8 segments, one 64-bit
      shadow load fetches every segment Algorithm 1 could probe; all probe
      lanes are served from that word — one metadata load total;
    - {b fast check}: the folded segment at [L] already covers [R - L]
      bytes — one load, the common case (Figure 6b);
    - {b slow check}: the region must decompose into two folded segments of
      the same degree (Figure 6c) plus an addressable prefix of the final
      partial segment — two more loads.

    Contrast with ASan's guardian, which loads one shadow byte per 8-byte
    segment of the region. *)

type outcome =
  | Safe_fast  (** settled by the fast check *)
  | Safe_slow  (** needed the slow check *)
  | Safe_word  (** settled by the one-word kernel (a [fast_checks] flavour:
                   every probe served from a single 64-bit shadow load) *)
  | Bad of int  (** region contains a non-addressable byte; the address is a
                    best-effort pointer at the offending area *)

val check : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** [check m ~l ~r] safeguards [\[l, r)]. [l] must be 8-aligned (the paper's
    precondition; allocation bases always are — use [check_unaligned] for
    arbitrary [l]). Empty regions are [Safe_fast]. Regions of at most 64
    bytes take the word path ([Safe_word] when safe); larger regions run
    the scalar probes ([Safe_fast]/[Safe_slow]). Verdict and blamed address
    agree with [check_scalar] byte-for-byte on any shadow contents. *)

val check_unaligned : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** [check] after aligning [l] down to a segment boundary. Sound for any
    region that starts inside an object (8-aligned object bases mean the
    aligned-down bytes belong to the same object). *)

val check_scalar : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** The one-byte-at-a-time transcription of Algorithm 1, kept as a
    selectable slow path and as the word kernel's lockstep twin: [check]
    must agree with it exactly (verdict and blame) on arbitrary shadow
    contents, which the qcheck equivalence suite and the refinement
    harness enforce. Never returns [Safe_word]. *)

val check_unaligned_scalar :
  Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> outcome
(** [check_scalar] after aligning [l] down, with the same empty-before-align
    rule as [check_unaligned]. *)

val is_safe : outcome -> bool
(** True for [Safe_fast], [Safe_slow] and [Safe_word]. *)
