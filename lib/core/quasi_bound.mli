(** History caching with quasi-bounds (§4.3, Figure 9), over the MRU
    window history of {!Giantsan_sanitizer.Sanitizer.cache}.

    A cache holds, per base pointer, spans of addresses already proven
    addressable. Accesses inside a cached window need no metadata at all;
    an overflow-side access beyond every window pays one region check plus
    one shadow load to enlarge the bound from the folded segment at the
    access position. The bound reaches the object's true bound after at
    most [ceil (log2 (n/8))] updates.

    Negative offsets are cached too — the fix for the §5.4 limitation
    (visible in the Figure 11 reverse-traversal experiment), where the
    single-sided summary issued a dedicated underflow region check on
    every descending access. A low-side miss still pays the dedicated
    CI(y + off, y) once, then extends the proven window down to the
    fold-derived run floor ([Folding.lower_bound], O(log) loads); from the
    second access on, a descending or strided stream hits cache. When an
    access also spills past the base ([off < 0] and [off + width > 0]),
    its non-negative tail is an ordinary overflow-side region: a cached
    tail counts one hit, and a checked tail refreshes the bound exactly
    like the positive path (tails used to be checked and forgotten, so
    straddling writes re-verified the same region forever).

    Deviation from the paper, documented in DESIGN.md: Figure 9 line 7 sets
    [ub = off + covered(v)] even when [base + off] sits mid-segment, which
    over-claims by [(base + off) mod 8] bytes; we anchor the bound at the
    segment start ([ub = align8(base + off) - base + covered(v)]), which is
    the sound reading. *)

type result = Ok_cached | Ok_checked | Bad of int
(** [Ok_cached]: every side of the access was inside a cached window, zero
    metadata loads. [Ok_checked]: safe, but paid at least one region check
    (enlarging the window history). [Bad addr]: a region check failed at
    [addr]. *)

val access :
  Giantsan_shadow.Shadow_mem.t ->
  Giantsan_sanitizer.Counters.t ->
  Giantsan_sanitizer.Sanitizer.cache ->
  off:int ->
  width:int ->
  result
(** Check the access [\[base + off, base + off + width)] under the cache,
    updating counters ([cache_hits], [cache_updates], [underflow_checks],
    region-check counts) and the quasi-bound. *)

val flush :
  Giantsan_shadow.Shadow_mem.t ->
  Giantsan_sanitizer.Counters.t ->
  Giantsan_sanitizer.Sanitizer.cache ->
  int option
(** Figure 9 line 14: after the loop, re-verify every window the history
    ever vouched for (upper and lower side) to catch an object freed
    mid-loop. Returns a bad address if so. *)
