(** History caching with quasi-bounds (§4.3, Figure 9).

    A cache holds, per base pointer, how many bytes from the base have
    already been proven addressable (the {e quasi-bound}). Accesses inside
    the quasi-bound need no metadata at all; an access beyond it pays one
    region check plus one shadow load to enlarge the bound from the folded
    segment at the access position. The bound reaches the object's true
    bound after at most [ceil (log2 (n/8))] updates.

    Negative offsets get a dedicated underflow region check each time — the
    summary is single-sided, so there is no quasi-{e lower}-bound (the §5.4
    limitation, visible in the Figure 11 reverse-traversal experiment).
    When such an access also spills past the base ([off < 0] and
    [off + width > 0]), its non-negative tail is an ordinary overflow-side
    region and the quasi-bound does apply to it: a tail inside [cache_ub]
    skips the second region check and counts one cache hit.

    Deviation from the paper, documented in DESIGN.md: Figure 9 line 7 sets
    [ub = off + covered(v)] even when [base + off] sits mid-segment, which
    over-claims by [(base + off) mod 8] bytes; we anchor the bound at the
    segment start ([ub = align8(base + off) - base + covered(v)]), which is
    the sound reading. *)

type result = Ok_cached | Ok_checked | Bad of int
(** [Ok_cached]: inside the quasi-bound, zero metadata loads.
    [Ok_checked]: safe, but paid a region check (and enlarged the bound
    when the access was on the overflow side). [Bad addr]: the region
    check failed at [addr]. *)

val access :
  Giantsan_shadow.Shadow_mem.t ->
  Giantsan_sanitizer.Counters.t ->
  Giantsan_sanitizer.Sanitizer.cache ->
  off:int ->
  width:int ->
  result
(** Check the access [\[base + off, base + off + width)] under the cache,
    updating counters ([cache_hits], [cache_updates], [underflow_checks],
    region-check counts) and the quasi-bound. *)

val flush :
  Giantsan_shadow.Shadow_mem.t ->
  Giantsan_sanitizer.Counters.t ->
  Giantsan_sanitizer.Sanitizer.cache ->
  int option
(** Figure 9 line 14: after the loop, re-verify [\[base, base + ub)] to
    catch an object freed mid-loop. Returns a bad address if so. *)
