(** Design-space ablation: capped run-length shadow encoding.

    Binary folding spends 6 bits on a logarithm, covering up to [8 * 2^63]
    bytes per shadow byte. The obvious alternative with the same bit budget
    stores the run length itself: [m\[p\] = min(63, good segments from p)].
    Checks then hop runs — O(N / 63) loads for an N-segment region instead
    of folding's O(1) — and the cap cannot be raised without stealing code
    space from the partial/error states. This module implements that
    alternative so the repository can measure the paper's design choice
    instead of just asserting it (see the [ablation-encoding] experiment).

    Code layout (mirrors {!State_code}'s monotone style):
    - [1..63]: this and the next [v - 1] segments are good;
    - [72 - k] ([65..71]): k-partial;
    - [> 72]: error codes (shared with {!State_code}). *)

val max_run : int
(** 63. *)

val poison_good_run :
  Giantsan_shadow.Shadow_mem.t -> first_seg:int -> count:int -> unit
(** Write the run-length codes for [count] good segments starting at
    [first_seg]: [min (max_run, remaining)] at each position, descending
    to 1 at the run's end. *)

val poison_alloc :
  Giantsan_shadow.Shadow_mem.t -> Giantsan_memsim.Memobj.t -> unit
(** Allocation-time poisoning under this encoding: good run over the
    object's full segments, then the partial-tail code, mirroring
    {!Folding.poison_alloc}. *)

val check : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> bool
(** Region check by run hopping; [l] 8-aligned. True = safe. *)

val check_unaligned : Giantsan_shadow.Shadow_mem.t -> l:int -> r:int -> bool
(** [check] after aligning [l] down to its segment boundary, the same
    soundness argument as {!Region_check.check_unaligned}. *)
