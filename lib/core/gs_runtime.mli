(** The GiantSan runtime: folded poisoning + O(1) region checks +
    quasi-bound caching + anchor-based access checks, packaged behind the
    common {!Giantsan_sanitizer.Sanitizer.t} interface.

    Semantics of [access ~base]:
    - [base > 0] and [addr >= base]: anchor-based enhancement (§4.4.1) —
      check the whole [\[base, addr + width)] so an index large enough to
      jump over the redzone is still caught;
    - [base > 0] and [addr < base]: dedicated underflow check
      [CI(addr, base)];
    - [base = 0] (anchor unknown): plain [CI] over the accessed bytes only,
      the instruction-level fallback. *)

val create : Giantsan_memsim.Heap.config -> Giantsan_sanitizer.Sanitizer.t
(** The full GiantSan runtime as evaluated in Table 2: folding, region
    checks, quasi-bound cache and underflow anchoring all enabled. Each
    call builds a private heap and shadow memory, so independently
    created runtimes never share mutable state (the property the sharded
    execution engine in [lib/parallel] relies on). *)

val create_variant :
  name:string ->
  use_cache:bool ->
  ?check_underflow:bool ->
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t
(** Ablation variants (§5.2): [~use_cache:false] turns [cached_access] into
    a plain per-access check, producing the "EliminationOnly" configuration
    when combined with the instrumentation pipeline (the "CacheOnly"
    configuration is selected at instrumentation time instead).

    [?check_underflow:false] is the first §5.4 mitigation alternative:
    negative-offset accesses are no longer anchored (only the accessed
    bytes are checked, ASan-style), trading underflow precision for speed
    on reverse traversals. Default [true]. *)

val create_exposed :
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t * Giantsan_shadow.Shadow_mem.t
(** Like [create] but also hands back the runtime's shadow memory, for
    debugging/visualization ({!Shadow_dump}) and white-box tests. *)
