module Bitops = Giantsan_util.Bitops
module Memsim = Giantsan_memsim
module Memobj = Memsim.Memobj
module Heap = Memsim.Heap
module State_code = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Report = Giantsan_sanitizer.Report

module IntMap = Map.Make (Int)

type status = Live | Quarantined

type obj = {
  o_id : int;
  o_kind : Memobj.kind;
  o_base : int;
  o_size : int;
  o_block_base : int;
  o_block_len : int;
  o_status : status;
}

type t = {
  arena_size : int;
  redzone : int;
  budget : int;
  objects : obj IntMap.t;  (* live + quarantined; recycled objects vanish *)
  data : int IntMap.t;  (* arena byte -> value; absent = 0 *)
  fifo : int list;  (* quarantined heap object ids, oldest first *)
  held : int;
  bypasses : int;
  live_bytes : int;
}

let create (config : Heap.config) =
  {
    (* Arena.create rounds the same way, so the model and the real arena
       agree on where "outside" begins. *)
    arena_size = max 64 (Bitops.align_up 8 config.Heap.arena_size);
    redzone = config.Heap.redzone;
    budget = config.Heap.quarantine_budget;
    objects = IntMap.empty;
    data = IntMap.empty;
    fifo = [];
    held = 0;
    bypasses = 0;
    live_bytes = 0;
  }

let arena_size t = t.arena_size
let segments t = t.arena_size / 8
let live_bytes t = t.live_bytes
let quarantine_ids t = t.fifo
let quarantine_held t = t.held
let quarantine_length t = List.length t.fifo
let quarantine_bypasses t = t.bypasses

let obj_block_end o = o.o_block_base + o.o_block_len

let find_object t addr =
  if addr < 0 || addr >= t.arena_size then None
  else
    IntMap.fold
      (fun _ o acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if addr >= o.o_block_base && addr < obj_block_end o then Some o
          else None)
      t.objects None

(* ------------------------------------------------------------------ *)
(* Allocation: a specification operation parameterized by the          *)
(* implementation's placement choice (Fiat-style nondeterminism).      *)
(* ------------------------------------------------------------------ *)

type placement = {
  p_id : int;
  p_base : int;
  p_block_base : int;
  p_block_len : int;
}

let placement_of_obj (o : Memobj.t) =
  {
    p_id = o.Memobj.id;
    p_base = o.Memobj.base;
    p_block_base = o.Memobj.block_base;
    p_block_len = o.Memobj.block_len;
  }

(* The model does not choose where blocks go — the allocator does. The
   spec's job is to validate that the choice is one the paper's layout
   permits: an 8-aligned block inside the arena (above the null guard),
   with a full left redzone, at least the layout's right redzone, and no
   overlap with any block whose memory is still spoken for. *)
let alloc t ~kind ~size (p : placement) =
  let left = Bitops.align_up 8 t.redzone in
  let min_len = left + size + (Bitops.align_up 8 (size + t.redzone) - size) in
  if size < 0 then Error "negative size"
  else if IntMap.mem p.p_id t.objects then Error "id reused while still owned"
  else if
    p.p_base land 7 <> 0 || p.p_block_base land 7 <> 0
    || p.p_block_len land 7 <> 0
  then Error "misaligned placement"
  else if p.p_base <> p.p_block_base + left then
    Error "object base not at the left-redzone boundary"
  else if p.p_block_len < min_len then Error "block smaller than the layout"
  else if p.p_block_base < 64 then Error "block inside the null guard"
  else if p.p_block_base + p.p_block_len > t.arena_size then
    Error "block past the arena end"
  else if
    IntMap.exists
      (fun _ o ->
        not
          (p.p_block_base + p.p_block_len <= o.o_block_base
          || obj_block_end o <= p.p_block_base))
      t.objects
  then Error "block overlaps a live or quarantined block"
  else
    let o =
      {
        o_id = p.p_id;
        o_kind = kind;
        o_base = p.p_base;
        o_size = size;
        o_block_base = p.p_block_base;
        o_block_len = p.p_block_len;
        o_status = Live;
      }
    in
    Ok
      {
        t with
        objects = IntMap.add o.o_id o t.objects;
        live_bytes = t.live_bytes + size;
      }

(* ------------------------------------------------------------------ *)
(* Free and the FIFO quarantine                                        *)
(* ------------------------------------------------------------------ *)

let evict t id = { t with objects = IntMap.remove id t.objects }

(* Mirror of Quarantine.push: append, evict oldest while over budget but
   never the newcomer itself, count a bypass when the newcomer alone still
   exceeds the budget. *)
let quarantine_push t o =
  let fifo = t.fifo @ [ o.o_id ] in
  let held = t.held + o.o_block_len in
  let rec drain fifo held t =
    match fifo with
    | oldest :: rest when held > t.budget && rest <> [] ->
      let ob = IntMap.find oldest t.objects in
      drain rest (held - ob.o_block_len) (evict t oldest)
    | _ -> (fifo, held, t)
  in
  let fifo, held, t = drain fifo held t in
  let bypasses = if held > t.budget then t.bypasses + 1 else t.bypasses in
  { t with fifo; held; bypasses }

let free t ~ptr =
  if ptr = 0 then Error Heap.Free_null
  else
    match find_object t ptr with
    | None -> Error Heap.Invalid_free
    | Some o ->
      if o.o_status <> Live then Error Heap.Double_free
      else if ptr <> o.o_base then Error Heap.Free_not_at_start
      else
        let o = { o with o_status = Quarantined } in
        let t =
          {
            t with
            objects = IntMap.add o.o_id o t.objects;
            live_bytes = t.live_bytes - o.o_size;
          }
        in
        Ok
          (match o.o_kind with
          | Memobj.Heap -> quarantine_push t o
          | Memobj.Stack | Memobj.Global ->
            (* not quarantined: reusable as soon as the frame pops *)
            evict t o.o_id)

let flush_quarantine t =
  let t = List.fold_left evict t t.fifo in
  { t with fifo = []; held = 0 }

(* ------------------------------------------------------------------ *)
(* Arena data as a finite map                                          *)
(* ------------------------------------------------------------------ *)

let peek_byte t addr =
  match IntMap.find_opt addr t.data with Some v -> v | None -> 0

let write_byte t addr v =
  { t with data = IntMap.add addr (v land 0xff) t.data }

(* Clamp semantics of Interceptors.clamped_fill: negative destinations are
   a no-op, the tail past the arena is silently dropped. *)
let memset t ~dst ~n byte =
  if dst < 0 then t
  else
    let n = min n (t.arena_size - dst) in
    let rec go t i = if i >= n then t else go (write_byte t (dst + i) byte) (i + 1) in
    go t 0

(* Clamp semantics of Interceptors.clamped_blit, with memmove overlap
   behaviour: read everything before writing anything. *)
let memmove t ~src ~dst ~n =
  if src < 0 || dst < 0 then t
  else
    let n = min n (min (t.arena_size - src) (t.arena_size - dst)) in
    if n <= 0 then t
    else
      let bytes = List.init n (fun i -> peek_byte t (src + i)) in
      List.fold_left
        (fun (t, i) v -> (write_byte t (dst + i) v, i + 1))
        (t, 0) bytes
      |> fst

let blit_exact t ~src ~dst ~len = memmove t ~src ~dst ~n:len

(* ------------------------------------------------------------------ *)
(* Ground truth per byte, and the reference shadow                     *)
(* ------------------------------------------------------------------ *)

type byte_state = Unallocated | Addressable | Redzone | Freed

let byte_state t addr =
  match find_object t addr with
  | None -> Unallocated
  | Some o ->
    if addr >= o.o_base && addr < o.o_base + o.o_size then
      match o.o_status with Live -> Addressable | Quarantined -> Freed
    else Redzone

let range_addressable t ~lo ~hi =
  hi <= lo
  || lo >= 0
     && hi <= t.arena_size
     && (let rec go a = a >= hi || (byte_state t a = Addressable && go (a + 1)) in
         go lo)

(* The one shadow code a segment inside an object's block must carry: left
   redzone, folded good run with degree [degree_at (count - j)], trailing
   partial, right redzone — freed codes over the payload once the object is
   quarantined (§4.1). Shared verbatim with the chaos self-check, so the
   model and the live audit can never disagree about what "correct" means. *)
let code_in_object ~live ~kind ~base ~size seg =
  let base_seg = base / 8 in
  let full = size / 8 in
  let rem = size mod 8 in
  let rz = State_code.redzone_code kind in
  if seg < base_seg then rz
  else if seg < base_seg + full then
    if live then
      State_code.folded (Folding.degree_at ~good_segments:(base_seg + full - seg))
    else State_code.freed
  else if seg = base_seg + full && rem > 0 then
    if live then State_code.partial rem else State_code.freed
  else rz

let shadow_code t seg =
  match find_object t (seg * 8) with
  | None -> State_code.unallocated
  | Some o ->
    code_in_object ~live:(o.o_status = Live) ~kind:o.o_kind ~base:o.o_base
      ~size:o.o_size seg

(* One pass over the object table instead of an owner lookup per segment:
   blocks never overlap, so painting each block over an unallocated
   background is the same function as [shadow_code]. *)
let shadow_array t =
  let out = Array.make (segments t) State_code.unallocated in
  IntMap.iter
    (fun _ o ->
      for seg = o.o_block_base / 8 to (obj_block_end o / 8) - 1 do
        out.(seg) <-
          code_in_object ~live:(o.o_status = Live) ~kind:o.o_kind ~base:o.o_base
            ~size:o.o_size seg
      done)
    t.objects;
  out

(* ------------------------------------------------------------------ *)
(* Report classification, mirroring Report.classify_access             *)
(* ------------------------------------------------------------------ *)

let classify t ~addr ~base =
  if addr < 64 then Report.Null_dereference
  else if addr >= t.arena_size then Report.Wild_access
  else
    match byte_state t addr with
    | Freed -> Report.Use_after_free
    | Unallocated -> Report.Wild_access
    | Redzone | Addressable -> (
      match find_object t addr with
      | None -> Report.Wild_access
      | Some o ->
        let underflow =
          match base with Some b -> addr < b | None -> addr < o.o_base
        in
        (match o.o_kind with
        | Memobj.Heap ->
          if underflow then Report.Heap_buffer_underflow
          else Report.Heap_buffer_overflow
        | Memobj.Stack ->
          if underflow then Report.Stack_buffer_underflow
          else Report.Stack_buffer_overflow
        | Memobj.Global -> Report.Global_buffer_overflow))
