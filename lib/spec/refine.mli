(** The lockstep refinement harness.

    Runs the real GiantSan runtime and the pure {!Model} side by side over
    a seeded stream of operations — allocations of every kind, frees good
    and bad, realloc, anchored and wild accesses, cached access loops that
    straddle offset 0, region checks that straddle the arena end, and
    memcpy/memset with overlap — auditing {e full-state} equivalence after
    every single step: every shadow segment against the model's pure shadow
    function, every arena byte against the model's data map, the quarantine
    FIFO (ids, order, held bytes, bypasses), live-byte and pressure-flush
    accounting, and the counter partition invariant.

    Per operation it also checks report equivalence: a report appears
    exactly when the model says some checked window is not fully
    addressable, the blamed address lies inside that window, and the kind
    equals the model's classification of the blamed byte.

    The harness carries its own teeth check: {!check_mutation} plants a
    seeded shadow-plane fault (bit flip, stale free code, overclaimed fold,
    misfolded poisoning run) into the {e real} world only, and demands the
    very next audit diverge. *)

type mutation =
  | M_bit_flip of int  (** xor a mask into an owned shadow segment *)
  | M_stale_free  (** stamp a freed code over a segment that is not freed *)
  | M_overclaim  (** promote a segment to the maximal good code *)
  | M_misfold of int
      (** arm [Folding.Overstate_last] and force an allocation through the
          real poisoning kernel while the model poisons truthfully *)

val mutation_name : mutation -> string

val all_mutations : mutation list
(** The canonical kill set exercised by CI: one mutation per shadow-plane
    fault family. *)

type divergence = { d_step : int; d_op : string; d_detail : string }

val divergence_to_string : divergence -> string

type outcome =
  | Equivalent of { steps : int; reports : int; allocs : int; frees : int }
  | Diverged of divergence

val default_config : Giantsan_memsim.Heap.config
(** A deliberately small world (2 KiB arena, 16-byte redzones, 512-byte
    quarantine budget) so allocation pressure, quarantine churn and the
    arena end are all in constant play. *)

val run :
  ?config:Giantsan_memsim.Heap.config -> seed:int -> steps:int -> unit ->
  outcome
(** Deterministic in [seed]: same seed, same operation stream, same
    outcome. *)

val check_restore :
  ?config:Giantsan_memsim.Heap.config -> seed:int -> steps:int -> unit ->
  outcome
(** The fuzz-mode restore audit: [steps] audited operations, snapshot (the
    real world via [San.snapshot], the harness state saved alongside),
    [steps] more audited operations of drift (frees, reallocs, quarantine
    churn), then restore — and the very next full-state audit must pass,
    proving the restored world is byte-equal to the state a from-scratch
    rebuild replaying the first phase reaches. A final [steps] audited
    operations prove the restored world also behaves like a fresh one. *)

val check_mutation :
  ?config:Giantsan_memsim.Heap.config ->
  seed:int ->
  steps:int ->
  mutation ->
  bool * string
(** Run clean for [steps] operations, plant the mutation into the real
    world, audit once. [(true, detail)] means the audit caught it (the
    detail is the divergence message); [(false, detail)] is a surviving
    mutant — a harness bug. *)
