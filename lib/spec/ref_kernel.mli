(** Obviously-correct scalar reference implementations of every optimized
    shadow kernel, over a plain [int array] shadow.

    Each function here is the one-byte-at-a-time transcription of a kernel
    whose real implementation earns its keep through hoisted bounds,
    memoized templates, [unsafe_blit], or logarithmic fold hopping. The
    refinement properties in [test/spec] (and the lockstep harness in
    {!Refine}) assert byte-for-byte and counter-for-counter agreement, so
    the fast kernels are licensed by these references rather than by
    scattered hand-picked cases. *)

type t

val create : segments:int -> fill:int -> t
val of_shadow : Giantsan_shadow.Shadow_mem.t -> t
(** Snapshot a live shadow (uncounted peeks; the reference's own store
    counter starts at zero). *)

val segments : t -> int
val stores : t -> int
val peek : t -> int -> int
(** Total like the real shadow: out-of-range answers the fill byte. *)

val set : t -> int -> int -> unit
(** [Shadow_mem.set] discipline: the store counts even out of range. *)

val fill_range : t -> lo:int -> hi:int -> int -> unit
(** Reference for [Shadow_mem.fill_range]: per-byte writes, counting only
    bytes that land in the arena. *)

val blit_pattern :
  t -> lo:int -> pattern:Bytes.t -> pat_off:int -> len:int -> unit
(** Reference for [Shadow_mem.blit_pattern], same clamped counting. *)

val poison_good_run :
  ?fault:Giantsan_core.Folding.fault -> t -> first_seg:int -> count:int -> unit
(** Reference for both [Folding.poison_good_run] variants: the degree
    definition evaluated directly per position, fault plan included. *)

val object_segments : Giantsan_memsim.Memobj.t -> int * int

val poison_alloc :
  ?fault:Giantsan_core.Folding.fault -> t -> Giantsan_memsim.Memobj.t -> unit

val poison_free : t -> Giantsan_memsim.Memobj.t -> unit
val poison_evict : t -> Giantsan_memsim.Memobj.t -> unit

val addressable_byte : t -> int -> bool
(** A byte is addressable iff it sits inside its own segment's addressable
    prefix — no trust in fold claims about successor segments. *)

val region_check : t -> l:int -> r:int -> [ `Safe | `Bad of int ]
(** Reference for [Region_check.check]: byte-wise scan of [l, r), blaming
    the {e first} non-addressable byte. *)

val region_check_unaligned : t -> l:int -> r:int -> [ `Safe | `Bad of int ]

val word_at : t -> int -> int64
(** Reference for [Shadow_mem.load_word]/[peek_word]: eight single-byte
    peeks assembled little-endian — lane [k] holds segment [p + k], with
    out-of-range lanes answering the fill byte. *)

val word_load_counted : t -> int -> bool
(** Counting discipline of [Shadow_mem.load_word]: exactly one load is
    charged iff some lane of [p, p+8) lands in the arena. *)

val upper_bound : t -> addr:int -> int
(** Reference for [Folding.upper_bound]: linear byte walk from the start of
    [addr]'s segment, clamped to the arena end, never below [addr]. *)

val lower_bound_sound : t -> addr:int -> int -> bool
(** Soundness envelope for [Folding.lower_bound ~addr]: the returned bound
    must be aligned, within the arena, and only ever claim addressable
    bytes up to [addr]'s segment start. *)

val linear_poison_good_run : t -> first_seg:int -> count:int -> unit
(** Reference for [Linear_encoding.poison_good_run]:
    [min max_run (count - j)] per position. *)

val linear_poison_alloc : t -> Giantsan_memsim.Memobj.t -> unit
