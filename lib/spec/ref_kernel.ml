module Shadow_mem = Giantsan_shadow.Shadow_mem
module State_code = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Linear_encoding = Giantsan_core.Linear_encoding
module Memobj = Giantsan_memsim.Memobj

(* Every kernel here is the obviously-correct scalar version of an
   optimized one: one byte at a time, no hoisted bounds, no templates, no
   fold hopping. Performance is irrelevant — these run only inside the
   refinement properties that license the fast kernels. *)

type t = { cells : int array; fill : int; mutable stores : int }

let create ~segments ~fill =
  { cells = Array.make segments fill; fill; stores = 0 }

let of_shadow m =
  let n = Shadow_mem.segments m in
  {
    cells = Array.init n (Shadow_mem.peek m);
    (* an out-of-range peek answers the fill byte *)
    fill = Shadow_mem.peek m (-1);
    stores = 0;
  }

let segments t = Array.length t.cells
let stores t = t.stores

let peek t p = if p >= 0 && p < segments t then t.cells.(p) else t.fill

(* Counting discipline of Shadow_mem.set: the store is counted whether or
   not it lands in the arena. *)
let set t p v =
  t.stores <- t.stores + 1;
  if p >= 0 && p < segments t then t.cells.(p) <- v

(* Counting discipline of the batched kernels: only bytes that actually
   land in the arena are counted. *)
let write_clamped t p v =
  if p >= 0 && p < segments t then begin
    t.stores <- t.stores + 1;
    t.cells.(p) <- v
  end

let fill_range t ~lo ~hi v =
  (* same precondition as the real kernel: callers never invert the range *)
  assert (lo <= hi);
  for p = lo to hi - 1 do
    write_clamped t p v
  done

let blit_pattern t ~lo ~pattern ~pat_off ~len =
  for j = 0 to len - 1 do
    write_clamped t (lo + j) (Char.code (Bytes.get pattern (pat_off + j)))
  done

(* Position j of a run of [count] good segments carries degree
   [degree_at (count - j)] — the definition, evaluated directly, with the
   fault plan overriding the final segment exactly as the scalar kernel
   documents. One counted store per segment (the scalar discipline). *)
let poison_good_run ?fault t ~first_seg ~count =
  for j = 0 to count - 1 do
    let remaining = count - j in
    let degree =
      match fault with
      | Some (Folding.Overstate_last od) when remaining = 1 -> od
      | _ -> Folding.degree_at ~good_segments:remaining
    in
    set t (first_seg + j) (State_code.folded degree)
  done

let object_segments (obj : Memobj.t) =
  let base_seg = obj.Memobj.base / 8 in
  let hi =
    if obj.Memobj.size = 0 then base_seg
    else ((obj.Memobj.base + obj.Memobj.size - 1) / 8) + 1
  in
  (base_seg, hi)

let poison_alloc ?fault t (obj : Memobj.t) =
  let rz = State_code.redzone_code obj.Memobj.kind in
  let base_seg = obj.Memobj.base / 8 in
  let full = obj.Memobj.size / 8 in
  let rem = obj.Memobj.size mod 8 in
  fill_range t ~lo:(obj.Memobj.block_base / 8) ~hi:base_seg rz;
  poison_good_run ?fault t ~first_seg:base_seg ~count:full;
  let after =
    if rem > 0 then begin
      set t (base_seg + full) (State_code.partial rem);
      base_seg + full + 1
    end
    else base_seg + full
  in
  fill_range t ~lo:after ~hi:(Memobj.block_end obj / 8) rz

let poison_free t obj =
  let lo, hi = object_segments obj in
  fill_range t ~lo ~hi State_code.freed

let poison_evict t (obj : Memobj.t) =
  fill_range t ~lo:(obj.Memobj.block_base / 8)
    ~hi:(Memobj.block_end obj / 8) State_code.unallocated

(* ------------------------------------------------------------------ *)
(* Byte-level addressability, and the scalar checks built on it        *)
(* ------------------------------------------------------------------ *)

(* Floor division: OCaml's (/) truncates toward zero, which would map the
   bytes just below zero onto segment 0. *)
let seg_of a = if a >= 0 then a / 8 else (a - 7) / 8

(* A byte is addressable when it sits inside its own segment's addressable
   prefix. Only the byte's own segment is consulted — a fold's claim about
   its successors is exactly what the optimized kernels are being audited
   on, so the reference must not trust it. Works unchanged for the linear
   run-length encoding (run codes <= 64 mean "whole segment good"). *)
let addressable_byte t a =
  let s = seg_of a in
  a - (8 * s) < State_code.addressable_in_segment (peek t s)

(* Reference for Region_check.check: scan [l, r) one byte at a time.
   [`Bad] carries the first non-addressable byte; the optimized checker may
   blame a different byte of the same bad region (see Refine's report
   containment property), but safe/bad must agree exactly. *)
let region_check t ~l ~r =
  assert (l land 7 = 0);
  let rec go a =
    if a >= r then `Safe else if addressable_byte t a then go (a + 1) else `Bad a
  in
  go l

(* Empty means empty: vacuously safe before any aligning, exactly the
   semantics the zero-length fix pinned into Region_check.check_unaligned. *)
let region_check_unaligned t ~l ~r =
  if r <= l then `Safe else region_check t ~l:(l land lnot 7) ~r

(* Reference for Shadow_mem.load_word / peek_word: the word assembled from
   eight single-byte peeks, little-endian — lane k of the result is the
   code of segment p + k, with out-of-range lanes answering the fill byte.
   The optimized kernel reads Bytes.get_int64_le when the word sits inside
   the arena and falls back to per-byte assembly on straddles; either way
   it must equal this. *)
let word_at t p =
  let w = ref 0L in
  for k = 7 downto 0 do
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int (peek t (p + k)))
  done;
  !w

(* Counting discipline of Shadow_mem.load_word: one counted load exactly
   when some lane of [p, p+8) lands in the arena — the word-level mirror of
   the clamp-then-count rule the byte loads follow. *)
let word_load_counted t p = p + 8 > 0 && p < segments t

(* Reference for Folding.upper_bound: from the start of [addr]'s segment,
   walk forward one byte at a time while addressable, stopping at the arena
   end; never answer below [addr] itself. *)
let upper_bound t ~addr =
  let arena_end = 8 * segments t in
  let rec scan a =
    if a >= arena_end then arena_end
    else if addressable_byte t a then scan (a + 1)
    else a
  in
  max addr (scan (8 * (addr / 8)))

(* Soundness envelope for Folding.lower_bound: the result must be 8-aligned,
   at or below [addr]'s segment start, and everything between it and the
   segment start must be addressable. (The fast kernel's power-of-two
   back-jumps may stop early; they may never claim a byte that is not
   good.) *)
let lower_bound_sound t ~addr l =
  let hi = 8 * (addr / 8) in
  l land 7 = 0 && l >= 0 && l <= hi
  &&
  let rec go a = a >= hi || (addressable_byte t a && go (a + 1)) in
  go l

(* Reference for Linear_encoding.poison_good_run: position j of a run of
   [count] good segments carries [min max_run (count - j)]. *)
let linear_poison_good_run t ~first_seg ~count =
  for j = 0 to count - 1 do
    set t (first_seg + j) (min Linear_encoding.max_run (count - j))
  done

let linear_poison_alloc t (obj : Memobj.t) =
  let rz = State_code.redzone_code obj.Memobj.kind in
  let base_seg = obj.Memobj.base / 8 in
  let full = obj.Memobj.size / 8 in
  let rem = obj.Memobj.size mod 8 in
  fill_range t ~lo:(obj.Memobj.block_base / 8) ~hi:base_seg rz;
  linear_poison_good_run t ~first_seg:base_seg ~count:full;
  let after =
    if rem > 0 then begin
      set t (base_seg + full) (State_code.partial rem);
      base_seg + full + 1
    end
    else base_seg + full
  in
  fill_range t ~lo:after ~hi:(Memobj.block_end obj / 8) rz
