module Rng = Giantsan_util.Rng
module Memsim = Giantsan_memsim
module Heap = Memsim.Heap
module Memobj = Memsim.Memobj
module Arena = Memsim.Arena
module Shadow_mem = Giantsan_shadow.Shadow_mem
module State_code = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Gs_runtime = Giantsan_core.Gs_runtime
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Interceptors = Giantsan_sanitizer.Interceptors

(* The refinement harness: run the real GiantSan runtime and the pure
   [Model] in lockstep over a seeded stream of operations (allocs of every
   kind, frees good and bad, realloc, anchored and wild accesses, cached
   access loops that straddle offset 0, region checks that straddle the
   arena end, memcpy/memset with overlap), and after EVERY step audit full
   state equivalence:

   - every shadow segment equals the model's pure shadow function;
   - every arena byte equals the model's data map;
   - the quarantine queue (ids, order, held bytes, bypasses) equals the
     model's FIFO;
   - live-byte and pressure-flush accounting agree;
   - the counter partition invariant (fast + slow = region checks) holds;

   and per operation check report equivalence: a report is produced exactly
   when the model says the checked window is not fully addressable, the
   blamed address falls inside the checked window, and the report kind
   equals the model's classification of that address.

   The same harness doubles as its own mutation test: a seeded shadow-plane
   fault (bit flip, stale free code, overclaim, misfolded poisoning) must
   ALWAYS produce a divergence on the very next audit — proof the harness
   has teeth. *)

type mutation =
  | M_bit_flip of int
  | M_stale_free
  | M_overclaim
  | M_misfold of int

let mutation_name = function
  | M_bit_flip m -> Printf.sprintf "bit-flip x%02x" (m land 0xff)
  | M_stale_free -> "stale-free"
  | M_overclaim -> "overclaim"
  | M_misfold d -> Printf.sprintf "misfold d=%d" d

let all_mutations = [ M_bit_flip 0x11; M_stale_free; M_overclaim; M_misfold 2 ]

type divergence = { d_step : int; d_op : string; d_detail : string }

let divergence_to_string d =
  Printf.sprintf "step %d (%s): %s" d.d_step d.d_op d.d_detail

type outcome =
  | Equivalent of { steps : int; reports : int; allocs : int; frees : int }
  | Diverged of divergence

exception Mismatch of string

let fail fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

let default_config =
  { Heap.arena_size = 2048; redzone = 16; quarantine_budget = 512 }

type slot = { s_base : int; s_size : int }

type ctx = {
  san : San.t;
  shadow : Shadow_mem.t;
  mutable model : Model.t;
  slots : slot option array;
  mutable flushes_seen : int;
  mutable reports : int;
  mutable allocs : int;
  mutable frees : int;
}

let n_slots = 8

(* A pressure flush inside [Heap.malloc] empties the whole quarantine
   before the placement decision (and can even precede an
   [Out_of_memory]); fold the same flush into the model first so the
   subsequent placement validates against post-flush ownership. *)
let sync_pressure ctx =
  let real = Heap.pressure_flushes ctx.san.San.heap in
  while ctx.flushes_seen < real do
    ctx.model <- Model.flush_quarantine ctx.model;
    ctx.flushes_seen <- ctx.flushes_seen + 1
  done

(* ------------------------------------------------------------------ *)
(* Report equivalence                                                  *)
(* ------------------------------------------------------------------ *)

(* [windows] are the regions the real runtime checks, in order; the model
   predicts a report exactly when some window is not fully addressable.
   The optimized checker may blame any byte of the bad window (after
   aligning its start down to a segment boundary) — including an
   addressable one when a fold's suffix test fires — so the blame check is
   containment plus classification, not byte equality. *)
let check_report ctx ~what ~windows ~anchor (real : Report.t option) =
  let bad =
    List.find_opt
      (fun (lo, hi) -> not (Model.range_addressable ctx.model ~lo ~hi))
      windows
  in
  match (real, bad) with
  | None, None -> ()
  | None, Some (lo, hi) ->
    fail "%s: model says [%d, %d) is not addressable but no report was made"
      what lo hi
  | Some r, None ->
    fail "%s: false positive %s (model says every checked window is clean)"
      what (Report.to_string r)
  | Some r, Some (lo, hi) ->
    ctx.reports <- ctx.reports + 1;
    let a = r.Report.addr in
    if a < lo land lnot 7 || a >= hi then
      fail "%s: blamed address %d outside the bad window [%d, %d)" what a lo hi;
    let expect_kind = Model.classify ctx.model ~addr:a ~base:anchor in
    if r.Report.kind <> expect_kind then
      fail "%s: report kind %s but the model classifies address %d as %s" what
        (Report.kind_name r.Report.kind)
        a
        (Report.kind_name expect_kind)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let exec_alloc ctx ~slot ~kind ~size =
  ctx.allocs <- ctx.allocs + 1;
  match ctx.san.San.malloc ~kind size with
  | exception Out_of_memory -> sync_pressure ctx
  | obj ->
    sync_pressure ctx;
    (match
       Model.alloc ctx.model ~kind ~size (Model.placement_of_obj obj)
     with
    | Ok m -> ctx.model <- m
    | Error e -> fail "placement rejected by the spec: %s" e);
    ctx.slots.(slot) <- Some { s_base = obj.Memobj.base; s_size = size }

let exec_free ctx ~ptr =
  ctx.frees <- ctx.frees + 1;
  let real = ctx.san.San.free ptr in
  match Model.free ctx.model ~ptr with
  | Ok m -> (
    ctx.model <- m;
    match real with
    | None -> ()
    | Some r ->
      fail "free of a valid pointer reported %s" (Report.to_string r))
  | Error e -> (
    let expected = San.free_error_report ~name:ctx.san.San.name ~addr:ptr e in
    match (real, expected) with
    | None, None -> ()
    | Some r, Some x when r.Report.kind = x.Report.kind && r.Report.addr = ptr
      ->
      ctx.reports <- ctx.reports + 1
    | _ ->
      fail "free error mismatch: real %s, model %s"
        (match real with None -> "no report" | Some r -> Report.to_string r)
        (match expected with
        | None -> "no report"
        | Some r -> Report.kind_name r.Report.kind))

(* The anchored-access windows of Gs_runtime.access: everything between
   the anchor and the access on the overflow side; a dedicated
   [addr, base) check plus the non-negative tail on the underflow side. *)
let access_windows ~base ~addr ~width =
  if base > 0 && addr >= base then [ (base, addr + width) ]
  else if base > 0 then
    (addr, base)
    :: (if addr + width > base then [ (base, addr + width) ] else [])
  else [ (addr, addr + width) ]

let exec_access ctx ~base ~addr ~width =
  let real = ctx.san.San.access ~base ~addr ~width in
  check_report ctx ~what:"access"
    ~windows:(access_windows ~base ~addr ~width)
    ~anchor:(if base > 0 then Some base else None)
    real

(* A cached-access loop: same windows per iteration as a plain anchored
   access (the quasi-bound only elides re-checks it has already vouched
   for), plus a loop-exit flush that must stay silent — nothing is freed
   inside the loop, so the cached upper bound only ever covers addressable
   bytes. *)
let exec_loop ctx ~cbase ~offs ~width =
  let cache = ctx.san.San.new_cache ~base:cbase in
  List.iter
    (fun off ->
      let addr = cbase + off in
      let real = ctx.san.San.cached_access cache ~off ~width in
      check_report ctx ~what:"cached access"
        ~windows:(access_windows ~base:cbase ~addr ~width)
        ~anchor:(Some cbase) real)
    offs;
  match ctx.san.San.flush_cache cache with
  | None -> ()
  | Some r ->
    fail "loop-exit flush reported %s with no intra-loop free"
      (Report.to_string r)

let exec_region ctx ~lo ~len =
  let real = ctx.san.San.check_region ~lo ~hi:(lo + len) in
  check_report ctx ~what:"region check"
    ~windows:[ (lo, lo + len) ]
    ~anchor:(Some lo) real

let exec_memset ctx ~dst ~n ~byte =
  let reports = Interceptors.memset ctx.san ~dst ~n ~byte in
  if n <= 0 then begin
    if reports <> [] then fail "memset with n=%d produced a report" n
  end
  else begin
    (match reports with
    | [] -> ()
    | [ r ] ->
      check_report ctx ~what:"memset" ~windows:[ (dst, dst + n) ]
        ~anchor:(Some dst) (Some r)
    | _ -> fail "memset produced %d reports" (List.length reports));
    if reports = [] then begin
      check_report ctx ~what:"memset" ~windows:[ (dst, dst + n) ]
        ~anchor:(Some dst) None;
      ctx.model <- Model.memset ctx.model ~dst ~n byte
    end
  end

let exec_memcpy ctx ~src ~dst ~n =
  let reports = Interceptors.memmove ctx.san ~dst ~src ~n in
  if n <= 0 then begin
    if reports <> [] then fail "memcpy with n=%d produced a report" n
  end
  else begin
    let src_bad = not (Model.range_addressable ctx.model ~lo:src ~hi:(src + n))
    and dst_bad =
      not (Model.range_addressable ctx.model ~lo:dst ~hi:(dst + n))
    in
    (match (reports, src_bad, dst_bad) with
    | [], false, false -> ctx.model <- Model.memmove ctx.model ~src ~dst ~n
    | [ r ], true, false ->
      check_report ctx ~what:"memcpy src" ~windows:[ (src, src + n) ]
        ~anchor:(Some src) (Some r)
    | [ r ], false, true ->
      check_report ctx ~what:"memcpy dst" ~windows:[ (dst, dst + n) ]
        ~anchor:(Some dst) (Some r)
    | [ r1; r2 ], true, true ->
      check_report ctx ~what:"memcpy src" ~windows:[ (src, src + n) ]
        ~anchor:(Some src) (Some r1);
      check_report ctx ~what:"memcpy dst" ~windows:[ (dst, dst + n) ]
        ~anchor:(Some dst) (Some r2)
    | _ ->
      fail "memcpy reports (%d of them) disagree with the model (src %s, dst %s)"
        (List.length reports)
        (if src_bad then "bad" else "ok")
        (if dst_bad then "bad" else "ok"))
  end

let exec_realloc ctx ~slot ~ptr ~size =
  match Interceptors.realloc ctx.san ~ptr ~size with
  | exception Out_of_memory -> sync_pressure ctx
  | Ok fresh ->
    sync_pressure ctx;
    ctx.allocs <- ctx.allocs + 1;
    let keep =
      if ptr = 0 then 0
      else
        match Model.find_object ctx.model ptr with
        | Some o when o.Model.o_status = Model.Live && o.Model.o_base = ptr ->
          min size o.Model.o_size
        | _ ->
          fail "realloc succeeded but the model has no live object at %d" ptr
    in
    (match
       Model.alloc ctx.model ~kind:Memobj.Heap ~size
         (Model.placement_of_obj fresh)
     with
    | Ok m -> ctx.model <- m
    | Error e -> fail "realloc placement rejected by the spec: %s" e);
    if keep > 0 then
      ctx.model <-
        Model.blit_exact ctx.model ~src:ptr ~dst:fresh.Memobj.base ~len:keep;
    if ptr <> 0 then begin
      ctx.frees <- ctx.frees + 1;
      match Model.free ctx.model ~ptr with
      | Ok m -> ctx.model <- m
      | Error _ -> fail "model rejects the free inside a successful realloc"
    end;
    ctx.slots.(slot) <- Some { s_base = fresh.Memobj.base; s_size = size }
  | Error r -> (
    match Model.free ctx.model ~ptr with
    | Ok _ ->
      fail "realloc reported %s but the model frees %d cleanly"
        (Report.to_string r) ptr
    | Error e -> (
      ctx.reports <- ctx.reports + 1;
      match San.free_error_report ~name:ctx.san.San.name ~addr:ptr e with
      | Some x when x.Report.kind = r.Report.kind -> ()
      | _ ->
        fail "realloc error kind %s disagrees with the model's %s"
          (Report.kind_name r.Report.kind)
          (match San.free_error_report ~name:"spec" ~addr:ptr e with
          | Some x -> Report.kind_name x.Report.kind
          | None -> "no-report")))

(* ------------------------------------------------------------------ *)
(* The per-step audit                                                  *)
(* ------------------------------------------------------------------ *)

let audit ctx =
  let c = ctx.san.San.counters in
  if c.Counters.fast_checks + c.Counters.slow_checks <> c.Counters.region_checks
  then
    fail "counter partition broken: fast %d + slow %d <> region %d"
      c.Counters.fast_checks c.Counters.slow_checks c.Counters.region_checks;
  if c.Counters.word_checks > c.Counters.fast_checks then
    fail "word checks %d exceed the fast checks %d they subdivide"
      c.Counters.word_checks c.Counters.fast_checks;
  let heap = ctx.san.San.heap in
  let expect = Model.shadow_array ctx.model in
  let n = Array.length expect in
  if n <> Shadow_mem.segments ctx.shadow then
    fail "segment counts differ: model %d, real %d" n
      (Shadow_mem.segments ctx.shadow);
  for seg = 0 to n - 1 do
    let actual = Shadow_mem.peek ctx.shadow seg in
    if actual <> expect.(seg) then
      fail "shadow seg %d: model expects %s, real shadow holds %s" seg
        (State_code.describe expect.(seg))
        (State_code.describe actual)
  done;
  (* the word read path must agree lane-for-lane with the scalar peeks it
     batches — audited after every step so a word-assembly bug can't hide
     behind shadows that happen to be canonical *)
  let s = ref 0 in
  while !s < n do
    let w = Shadow_mem.peek_word ctx.shadow !s in
    for k = 0 to min 8 (n - !s) - 1 do
      let lane = Shadow_mem.word_byte w k
      and scalar = Shadow_mem.peek ctx.shadow (!s + k) in
      if lane <> scalar then
        fail "word lane %d of segment %d: word path %s, scalar peek %s" k !s
          (State_code.describe lane)
          (State_code.describe scalar)
    done;
    s := !s + 8
  done;
  let a = Heap.arena heap in
  for addr = 0 to Arena.size a - 1 do
    let actual = Arena.load a ~addr ~width:1 in
    let exp = Model.peek_byte ctx.model addr in
    if actual <> exp then
      fail "arena byte %d: model %d, real %d" addr exp actual
  done;
  if Heap.quarantine_ids heap <> Model.quarantine_ids ctx.model then
    fail "quarantine order: real [%s], model [%s]"
      (String.concat ";" (List.map string_of_int (Heap.quarantine_ids heap)))
      (String.concat ";"
         (List.map string_of_int (Model.quarantine_ids ctx.model)));
  if Heap.quarantine_held heap <> Model.quarantine_held ctx.model then
    fail "quarantine held bytes: real %d, model %d" (Heap.quarantine_held heap)
      (Model.quarantine_held ctx.model);
  if Heap.quarantine_length heap <> Model.quarantine_length ctx.model then
    fail "quarantine length: real %d, model %d" (Heap.quarantine_length heap)
      (Model.quarantine_length ctx.model);
  if Heap.quarantine_bypasses heap <> Model.quarantine_bypasses ctx.model then
    fail "quarantine bypasses: real %d, model %d"
      (Heap.quarantine_bypasses heap)
      (Model.quarantine_bypasses ctx.model);
  if Heap.live_bytes heap <> Model.live_bytes ctx.model then
    fail "live bytes: real %d, model %d" (Heap.live_bytes heap)
      (Model.live_bytes ctx.model);
  if Heap.pressure_flushes heap <> ctx.flushes_seen then
    fail "pressure flushes drifted: real %d, harness saw %d"
      (Heap.pressure_flushes heap) ctx.flushes_seen

(* ------------------------------------------------------------------ *)
(* Operation generation                                                *)
(* ------------------------------------------------------------------ *)

let gen_size rng =
  Rng.weighted rng
    [
      (1, 0);
      (3, 1 + Rng.int rng 15);
      (3, 8 * (1 + Rng.int rng 16));
      (2, 17 + Rng.int rng 184);
    ]

let gen_kind rng =
  Rng.weighted rng [ (6, Memobj.Heap); (1, Memobj.Stack); (1, Memobj.Global) ]

let gen_width rng = Rng.pick rng [| 1; 2; 4; 8 |]

let arena_end ctx = 8 * Shadow_mem.segments ctx.shadow

(* Pick a slot; stale bases are kept on purpose (use-after-free and
   double-free fuel). *)
let pick_slot ctx rng = ctx.slots.(Rng.int rng n_slots)

(* One generated operation, returning a description for divergence
   messages. The distribution deliberately over-weights the edges the
   satellites call out: zero lengths, arena-end straddles, offset-0
   straddling loops, quarantine churn via small arenas/budgets. *)
let step ctx rng =
  match Rng.int rng 100 with
  | n when n < 22 ->
    let slot = Rng.int rng n_slots in
    let kind = gen_kind rng in
    let size = gen_size rng in
    let d = Printf.sprintf "alloc slot=%d size=%d" slot size in
    (d, fun () -> exec_alloc ctx ~slot ~kind ~size)
  | n when n < 34 -> (
    match pick_slot ctx rng with
    | None -> ("free null", fun () -> exec_free ctx ~ptr:0)
    | Some s ->
      let delta =
        Rng.weighted rng [ (6, 0); (1, -8); (1, 1); (1, 8); (1, s.s_size) ]
      in
      let d = Printf.sprintf "free base=%d delta=%d" s.s_base delta in
      (d, fun () -> exec_free ctx ~ptr:(s.s_base + delta)))
  | n when n < 40 -> (
    match pick_slot ctx rng with
    | None -> ("free null", fun () -> exec_free ctx ~ptr:0)
    | Some s ->
      let slot = Rng.int rng n_slots in
      let size = gen_size rng in
      let d = Printf.sprintf "realloc ptr=%d size=%d" s.s_base size in
      (d, fun () -> exec_realloc ctx ~slot ~ptr:s.s_base ~size))
  | n when n < 62 -> (
    match pick_slot ctx rng with
    | None ->
      let addr = Rng.int rng (arena_end ctx + 64) in
      let width = gen_width rng in
      ( Printf.sprintf "access abs addr=%d w=%d" addr width,
        fun () -> exec_access ctx ~base:0 ~addr ~width )
    | Some s ->
      let base =
        if Rng.int rng 4 = 0 then s.s_base + Rng.int_in rng 0 s.s_size
        else s.s_base
      in
      let off = Rng.int_in rng (-24) (s.s_size + 24) in
      let width = gen_width rng in
      let d = Printf.sprintf "access base=%d off=%d w=%d" base off width in
      (d, fun () -> exec_access ctx ~base ~addr:(base + off) ~width))
  | n when n < 74 -> (
    match pick_slot ctx rng with
    | None -> ("free null", fun () -> exec_free ctx ~ptr:0)
    | Some s ->
      (* anchor sometimes mid-object (8-aligned, as Quasi_bound requires of
         its base) so negative offsets straddle 0 into addressable bytes —
         the cache_ub tail path *)
      let mid = 8 * Rng.int rng ((s.s_size / 8) + 1) in
      let cbase = s.s_base + mid in
      let width = gen_width rng in
      let from_ = Rng.int_in rng (-16) 8 in
      let count = 1 + Rng.int rng 16 in
      let offs = List.init count (fun i -> from_ + (i * width)) in
      let d =
        Printf.sprintf "loop base=%d from=%d count=%d w=%d" cbase from_ count
          width
      in
      (d, fun () -> exec_loop ctx ~cbase ~offs ~width))
  | n when n < 84 -> (
    match Rng.int rng 3 with
    | 0 ->
      (* arena-end straddles, including r exactly at the end and len 0 *)
      let lo = arena_end ctx - Rng.int_in rng 0 40 in
      let len = Rng.int_in rng 0 48 in
      ( Printf.sprintf "region abs lo=%d len=%d" lo len,
        fun () -> exec_region ctx ~lo ~len )
    | _ -> (
      match pick_slot ctx rng with
      | None -> ("free null", fun () -> exec_free ctx ~ptr:0)
      | Some s ->
        let off = Rng.int_in rng (-24) (s.s_size + 24) in
        let len = Rng.int_in rng 0 64 in
        ( Printf.sprintf "region base=%d off=%d len=%d" s.s_base off len,
          fun () -> exec_region ctx ~lo:(s.s_base + off) ~len )))
  | n when n < 92 -> (
    match pick_slot ctx rng with
    | None -> ("free null", fun () -> exec_free ctx ~ptr:0)
    | Some s ->
      let dst = s.s_base + Rng.int_in rng (-16) (s.s_size + 16) in
      let len = Rng.int_in rng 0 64 in
      let byte = Rng.int rng 256 in
      ( Printf.sprintf "memset dst=%d n=%d" dst len,
        fun () -> exec_memset ctx ~dst ~n:len ~byte ))
  | _ -> (
    match (pick_slot ctx rng, pick_slot ctx rng) with
    | Some a, Some b ->
      let src = a.s_base + Rng.int_in rng (-16) (a.s_size + 16) in
      let dst = b.s_base + Rng.int_in rng (-16) (b.s_size + 16) in
      let n = Rng.int_in rng 0 64 in
      ( Printf.sprintf "memcpy src=%d dst=%d n=%d" src dst n,
        fun () -> exec_memcpy ctx ~src ~dst ~n )
    | _ -> ("free null", fun () -> exec_free ctx ~ptr:0))

(* ------------------------------------------------------------------ *)
(* Mutations (the teeth check)                                         *)
(* ------------------------------------------------------------------ *)

(* Corrupt the real world only; the model stays truthful, so the next
   audit MUST diverge. Returns false when the fault could not be planted
   (treated as a surviving mutant by the caller — a too-weak schedule is a
   harness bug worth failing on). *)
let apply_mutation ctx = function
  | M_bit_flip mask ->
    let mask = if mask land 0xff = 0 then 1 else mask land 0xff in
    let seg =
      (* prefer an owned segment; fall back to the unallocated expanse *)
      let codes = Model.shadow_array ctx.model in
      let rec first i =
        if i >= Array.length codes then 0
        else if codes.(i) <> State_code.unallocated then i
        else first (i + 1)
      in
      first 0
    in
    Shadow_mem.poke ctx.shadow seg (Shadow_mem.peek ctx.shadow seg lxor mask);
    true
  | M_stale_free ->
    let codes = Model.shadow_array ctx.model in
    let rec first i =
      if i >= Array.length codes then None
      else if codes.(i) <> State_code.freed then Some i
      else first (i + 1)
    in
    (match first 0 with
    | None -> false
    | Some seg ->
      Shadow_mem.poke ctx.shadow seg State_code.freed;
      true)
  | M_overclaim ->
    let codes = Model.shadow_array ctx.model in
    let rec first i =
      if i >= Array.length codes then None
      else if codes.(i) <> State_code.good then Some i
      else first (i + 1)
    in
    (match first 0 with
    | None -> false
    | Some seg ->
      Shadow_mem.poke ctx.shadow seg State_code.good;
      true)
  | M_misfold d -> (
    (* arm the poison-kernel fault plan and force a foldable allocation
       through the REAL runtime while the model poisons truthfully; an
       Out_of_memory here means nothing was poisoned, i.e. the fault was
       never planted (reported as such, NOT as a kill) *)
    match
      Folding.with_fault
        (Some (Folding.Overstate_last d))
        (fun () -> ctx.san.San.malloc ~kind:Memobj.Heap 24)
    with
    | exception Out_of_memory ->
      sync_pressure ctx;
      false
    | obj ->
      sync_pressure ctx;
      (match
         Model.alloc ctx.model ~kind:Memobj.Heap ~size:24
           (Model.placement_of_obj obj)
       with
      | Ok m -> ctx.model <- m
      | Error _ -> () (* leaves the model behind — the audit will object *));
      true)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let make_ctx config =
  let san, shadow = Gs_runtime.create_exposed config in
  {
    san;
    shadow;
    model = Model.create config;
    slots = Array.make n_slots None;
    flushes_seen = 0;
    reports = 0;
    allocs = 0;
    frees = 0;
  }

let run ?(config = default_config) ~seed ~steps () =
  let rng = Rng.create seed in
  let ctx = make_ctx config in
  let result = ref None in
  (try
     audit ctx;
     for i = 0 to steps - 1 do
       if !result = None then begin
         let d, go = step ctx rng in
         try
           go ();
           audit ctx
         with Mismatch m ->
           result := Some { d_step = i; d_op = d; d_detail = m }
       end
     done
   with Mismatch m ->
     result := Some { d_step = -1; d_op = "initial state"; d_detail = m });
  match !result with
  | Some d -> Diverged d
  | None ->
    Equivalent
      {
        steps;
        reports = ctx.reports;
        allocs = ctx.allocs;
        frees = ctx.frees;
      }

(* The fuzz-mode restore audit. Three audited phases over one operation
   stream: [steps] ops, snapshot (real world via [San.snapshot], harness
   state saved alongside — the model is immutable, so saving it is keeping
   the reference), [steps] more ops of drift (frees, reallocs, quarantine
   churn), then restore and reinstate the saved harness state. The audit
   immediately after the restore is the ISSUE's byte-equality obligation:
   the model at the snapshot point IS what a from-scratch rebuild replaying
   phase one reaches (it was audited equal step by step), so a passing
   audit proves the restored shadow plane, arena bytes, quarantine FIFO
   and counters are byte-equal to that rebuild. The third phase proves the
   restored world also behaves like a fresh one going forward. *)
let check_restore ?(config = default_config) ~seed ~steps () =
  let rng = Rng.create seed in
  let ctx = make_ctx config in
  let result = ref None in
  let phase name n =
    for i = 0 to n - 1 do
      if !result = None then begin
        let d, go = step ctx rng in
        try
          go ();
          audit ctx
        with Mismatch m ->
          result := Some { d_step = i; d_op = name ^ ": " ^ d; d_detail = m }
      end
    done
  in
  (try audit ctx
   with Mismatch m ->
     result := Some { d_step = -1; d_op = "initial state"; d_detail = m });
  phase "pre-snapshot" steps;
  if !result = None then begin
    ctx.san.San.snapshot ();
    let saved_model = ctx.model
    and saved_slots = Array.copy ctx.slots
    and saved_flushes = ctx.flushes_seen
    and saved_reports = ctx.reports
    and saved_allocs = ctx.allocs
    and saved_frees = ctx.frees in
    phase "post-snapshot drift" steps;
    if !result = None then begin
      ctx.san.San.restore ();
      ctx.model <- saved_model;
      Array.blit saved_slots 0 ctx.slots 0 n_slots;
      ctx.flushes_seen <- saved_flushes;
      ctx.reports <- saved_reports;
      ctx.allocs <- saved_allocs;
      ctx.frees <- saved_frees;
      (try audit ctx
       with Mismatch m ->
         result :=
           Some { d_step = -1; d_op = "post-restore audit"; d_detail = m });
      phase "post-restore" steps
    end
  end;
  match !result with
  | Some d -> Diverged d
  | None ->
    Equivalent
      {
        steps = 3 * steps;
        reports = ctx.reports;
        allocs = ctx.allocs;
        frees = ctx.frees;
      }

(* Run clean for [steps] operations, plant the mutation, and demand the
   very next audit diverges. Returns [(killed, detail)]. *)
let check_mutation ?(config = default_config) ~seed ~steps m =
  let rng = Rng.create seed in
  let ctx = make_ctx config in
  let pre_divergence = ref None in
  (try
     for i = 0 to steps - 1 do
       if !pre_divergence = None then begin
         let d, go = step ctx rng in
         try
           go ();
           audit ctx
         with Mismatch msg ->
           pre_divergence := Some { d_step = i; d_op = d; d_detail = msg }
       end
     done
   with Mismatch msg ->
     pre_divergence :=
       Some { d_step = -1; d_op = "initial state"; d_detail = msg });
  match !pre_divergence with
  | Some d ->
    (false, "diverged before injection: " ^ divergence_to_string d)
  | None -> (
    match apply_mutation ctx m with
    | false -> (false, "fault could not be planted")
    | true -> (
      match audit ctx with
      | () -> (false, "mutant survived the audit")
      | exception Mismatch msg -> (true, msg)))
