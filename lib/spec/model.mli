(** The executable specification heap: the entire memsim + shadow world as
    a pure value (Fiat-style — a heap is a finite map, [alloc]/[free]/
    [memcpy]/[memset] are specification operations, and the GiantSan shadow
    is a {e pure function} of that state rather than mutable bytes).

    Every operation returns a new model; nothing here is mutable and
    nothing here is fast. That is the point: the refinement harness
    ([Refine]) runs the real, aggressively-optimized runtime and this model
    in lockstep and checks full-state equivalence after every step, so the
    unsafe kernels ([Shadow_mem.fill_range]/[blit_pattern], the memoized
    poison templates, [Region_check], [Quasi_bound]) are licensed by an
    obviously-correct contract instead of test-by-test folklore.

    Allocation is parameterized by the implementation's {e placement
    choice} ({!placement}): the allocator picks where a block goes, the
    spec validates that the pick satisfies the paper's layout invariants
    (alignment, redzones, null guard, no overlap with owned memory). *)

type status = Live | Quarantined

type obj = {
  o_id : int;
  o_kind : Giantsan_memsim.Memobj.kind;
  o_base : int;
  o_size : int;
  o_block_base : int;
  o_block_len : int;
  o_status : status;
}

type t

val create : Giantsan_memsim.Heap.config -> t
(** Empty model over the config's arena (rounded exactly as [Arena.create]
    rounds, so both worlds agree on where "outside" begins). *)

val arena_size : t -> int
val segments : t -> int
val live_bytes : t -> int

val quarantine_ids : t -> int list
(** Quarantined heap object ids, oldest first — the pure FIFO the real
    [Quarantine] must refine. *)

val quarantine_held : t -> int
val quarantine_length : t -> int
val quarantine_bypasses : t -> int

val find_object : t -> int -> obj option
(** Object whose block (redzones included) covers the address; [None]
    outside the arena or over unowned memory. *)

type placement = {
  p_id : int;
  p_base : int;
  p_block_base : int;
  p_block_len : int;
}

val placement_of_obj : Giantsan_memsim.Memobj.t -> placement

val alloc :
  t ->
  kind:Giantsan_memsim.Memobj.kind ->
  size:int ->
  placement ->
  (t, string) result
(** Record an allocation at the implementation's chosen placement, or
    explain which layout invariant the choice violates (a refinement
    failure, not a recoverable condition). *)

val free :
  t -> ptr:int -> (t, Giantsan_memsim.Heap.free_error) result
(** Free by pointer with the exact error taxonomy of [Heap.free]. Success
    pushes heap objects through the pure FIFO quarantine (evicting oldest
    blocks past the budget, never the newcomer, counting bypasses) and
    recycles stack/global objects immediately. *)

val flush_quarantine : t -> t
(** Evict everything — the model side of a pressure flush. *)

val peek_byte : t -> int -> int
val write_byte : t -> int -> int -> t

val memset : t -> dst:int -> n:int -> int -> t
(** Clamp semantics of [Interceptors.clamped_fill]: negative destination is
    a no-op; the tail past the arena is dropped. *)

val memmove : t -> src:int -> dst:int -> n:int -> t
(** Clamp semantics of [Interceptors.clamped_blit], reading everything
    before writing anything (memmove overlap behaviour). *)

val blit_exact : t -> src:int -> dst:int -> len:int -> t

type byte_state = Unallocated | Addressable | Redzone | Freed

val byte_state : t -> int -> byte_state
val range_addressable : t -> lo:int -> hi:int -> bool

val code_in_object :
  live:bool ->
  kind:Giantsan_memsim.Memobj.kind ->
  base:int ->
  size:int ->
  int ->
  int
(** The one GiantSan code segment [seg] must carry inside an object's
    block, as a pure function of the object's geometry and liveness. Shared
    with [Giantsan_chaos.Selfcheck] so the model and the live audit can
    never disagree about what "correct" means. *)

val shadow_code : t -> int -> int
(** The reference shadow, one segment at a time ([State_code.unallocated]
    over unowned memory). *)

val shadow_array : t -> int array
(** The whole reference shadow in one pass. *)

val classify :
  t -> addr:int -> base:int option -> Giantsan_sanitizer.Report.kind
(** Mirror of [Report.classify_access] over the model state. *)
