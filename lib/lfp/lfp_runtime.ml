module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Trace = Giantsan_telemetry.Trace
module Histogram = Giantsan_telemetry.Histogram

let believed_end (obj : Memsim.Memobj.t) =
  obj.base + Size_class.round_up obj.size

let create config =
  let heap = Memsim.Heap.create config in
  let counters = Counters.create () in
  let hists = Histogram.create_set () in
  let name = "LFP" in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    let r =
      Report.make
        ~kind:(Report.classify_access heap ~addr ~base)
        ~addr ~size ~detected_by:name
    in
    Trace.emit_report ~tool:name ~kind:(Report.kind_name r.Report.kind) ~addr;
    Some r
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    (* The allocator hands out the class size so the slot really exists;
       the oracle still only marks the requested bytes addressable, which
       is exactly LFP's blind spot. *)
    let obj = Memsim.Heap.malloc heap ?kind size in
    Trace.emit_malloc ~tool:name ~base:obj.Memsim.Memobj.base ~size
      ~kind:(Memsim.Memobj.kind_name obj.Memsim.Memobj.kind);
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    Trace.emit_free ~tool:name ~addr:ptr;
    match Memsim.Heap.free heap ptr with
    | Ok _ -> None
    | Error err ->
      let r = San.free_error_report ~name ~addr:ptr err in
      (match r with
      | Some r ->
        counters.Counters.errors <- counters.Counters.errors + 1;
        Trace.emit_report ~tool:name
          ~kind:(Report.kind_name r.Report.kind)
          ~addr:ptr
      | None -> ());
      r
  in
  (* Bounds check against the slot of [anchor] (the pointer the bounds were
     derived from). *)
  let bounds_check ~anchor ~lo ~hi =
    counters.Counters.bounds_checks <- counters.Counters.bounds_checks + 1;
    if anchor < 64 then report ~addr:anchor ~size:(hi - lo) ()
    else
      match Memsim.Heap.find_object heap anchor with
      | None ->
        (* The pointer does not point into any slot LFP knows about: the
           derived bounds are garbage and real LFP performs no check. *)
        None
      | Some obj ->
        if
          obj.Memsim.Memobj.kind = Memsim.Memobj.Stack
          && obj.Memsim.Memobj.size < 1024
        then
          (* LFP's stack protection is incomplete: only allocas moved to
             its aligned regions (large arrays) carry derivable bounds.
             This is why Table 3 shows LFP catching a sliver of CWE-121. *)
          None
        else if obj.Memsim.Memobj.status <> Memsim.Memobj.Live then
          report ~base:obj.Memsim.Memobj.base ~addr:lo ~size:(hi - lo) ()
        else begin
          let b_lo = obj.Memsim.Memobj.base and b_hi = believed_end obj in
          if lo < b_lo || hi > b_hi then
            report ~base:obj.Memsim.Memobj.base
              ~addr:(if lo < b_lo then lo else b_hi)
              ~size:(hi - lo) ()
          else None
        end
  in
  let access ~base ~addr ~width =
    if Trace.is_on () then
      Histogram.observe hists.Histogram.h_access_width width;
    let anchor = if base > 0 then base else addr in
    let r = bounds_check ~anchor ~lo:addr ~hi:(addr + width) in
    (* LFP consults its per-slot bound table, never shadow: every check is
       a constant-time fast-path comparison *)
    Trace.emit_access ~tool:name ~addr ~width ~fast:true;
    r
  in
  let check_region ~lo ~hi =
    if hi <= lo then None
    else begin
      let r = bounds_check ~anchor:lo ~lo ~hi in
      Trace.emit_region_check ~tool:name ~lo ~hi ~fast:true ~loads:0;
      r
    end
  in
  (* LFP keeps no metadata beyond the allocator's own object index, so the
     heap snapshot already carries its whole world. *)
  let snapshot, restore =
    San.snapshot_slot
      ~cap:(fun () ->
        (Memsim.Heap.snapshot heap, San.counters_copy counters))
      ~put:(fun (hs, cs) ->
        Memsim.Heap.restore heap hs;
        San.counters_restore counters cs)
  in
  let san = {
    San.name;
    heap;
    counters;
    hists;
    shadow_loads = (fun () -> 0);
    shadow_stores = (fun () -> 0);
    malloc;
    free;
    access;
    check_region;
    new_cache = (fun ~base -> San.new_cache ~base);
    cached_access =
      (fun cache ~off ~width ->
        access ~base:cache.San.cache_base
          ~addr:(cache.San.cache_base + off) ~width);
    flush_cache = (fun _ -> None);
    supports_operation_level = true;
    snapshot;
    restore;
  }
  in
  San.Registry.register san;
  san
