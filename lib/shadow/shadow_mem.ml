type t = {
  bytes : Bytes.t;
  fill : int;
  mutable loads : int;
  mutable stores : int;
}

let create ~segments ~fill =
  assert (segments > 0 && fill >= 0 && fill < 256);
  { bytes = Bytes.make segments (Char.chr fill); fill; loads = 0; stores = 0 }

let of_heap heap ~fill =
  create ~segments:(Giantsan_memsim.Heap.segment_count heap) ~fill

let segments t = Bytes.length t.bytes

let load t p =
  t.loads <- t.loads + 1;
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else Char.code (Bytes.get t.bytes p)

let peek t p =
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else Char.code (Bytes.get t.bytes p)

let set t p v =
  assert (v >= 0 && v < 256);
  t.stores <- t.stores + 1;
  if p >= 0 && p < Bytes.length t.bytes then Bytes.set t.bytes p (Char.chr v)

(* Uncounted store: the chaos engine's corruption primitive. Bypassing the
   stores counter is the point — an injected fault must not perturb the
   event-count-derived cost model, or the determinism and bench gates would
   see phantom work. *)
let poke t p v =
  assert (v >= 0 && v < 256);
  if p >= 0 && p < Bytes.length t.bytes then Bytes.set t.bytes p (Char.chr v)

(* The batched kernels below clamp once, count the clamped length once, and
   then run an unchecked fill/blit: the bounds checks are hoisted out of the
   per-byte loop, which is what makes poisoning O(memset) rather than
   O(stores-counter increments). Only bytes that actually land in the arena
   are counted — the virtual space beyond it absorbs writes silently, and
   counting them would overcharge the cost model (the fill_range drift bug). *)

let fill_range t ~lo ~hi v =
  assert (lo <= hi && v >= 0 && v < 256);
  let lo' = max 0 lo and hi' = min (Bytes.length t.bytes) hi in
  let len = hi' - lo' in
  if len > 0 then begin
    t.stores <- t.stores + len;
    Bytes.unsafe_fill t.bytes lo' len (Char.chr v)
  end

let blit_pattern t ~lo ~pattern ~pat_off ~len =
  assert (len >= 0 && pat_off >= 0 && pat_off + len <= Bytes.length pattern);
  (* clamp [lo, lo + len) to the arena, sliding the pattern window along *)
  let cut_lo = if lo < 0 then -lo else 0 in
  let lo' = lo + cut_lo and pat_off' = pat_off + cut_lo in
  let len' = min (len - cut_lo) (Bytes.length t.bytes - lo') in
  if len' > 0 then begin
    t.stores <- t.stores + len';
    Bytes.unsafe_blit pattern pat_off' t.bytes lo' len'
  end

let loads t = t.loads
let stores t = t.stores

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0
