type t = {
  bytes : Bytes.t;
  fill : int;
  mutable loads : int;
  mutable stores : int;
  (* Dirty-segment journal (fuzz-mode restore): while armed, every store
     kernel appends the clamped range it touched, so [restore] can blit the
     snapshot back over only the segments that changed since — the
     incremental-repoisoning trick that makes per-exec reset O(dirty)
     instead of O(arena). Newest entry first. *)
  mutable journal : (int * int) list;  (* (lo, len) *)
  mutable armed : bool;
}

let create ~segments ~fill =
  assert (segments > 0 && fill >= 0 && fill < 256);
  {
    bytes = Bytes.make segments (Char.chr fill);
    fill;
    loads = 0;
    stores = 0;
    journal = [];
    armed = false;
  }

let of_heap heap ~fill =
  create ~segments:(Giantsan_memsim.Heap.segment_count heap) ~fill

let segments t = Bytes.length t.bytes

(* Counting discipline (same clamp-then-count rule as the store kernels
   below): only probes that touch real metadata are charged. The virtual
   space beyond the arena answers with [fill] for free — charging it would
   overcount exactly like the fill_range drift bug did on the store side. *)
let load t p =
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else begin
    t.loads <- t.loads + 1;
    Char.code (Bytes.get t.bytes p)
  end

let peek t p =
  if p < 0 || p >= Bytes.length t.bytes then t.fill
  else Char.code (Bytes.get t.bytes p)

(* Word-wide metadata fetch: segments [p, p+8) packed little-endian, so
   byte [k] of the result is segment [p + k]. One counted load per word —
   the folding encoding exists precisely so a single 64-bit load can vouch
   for 64 segments, and the cost model must see it as a single event. A
   word that only straddles the arena end still costs one load (the arena
   part is a real fetch); a word entirely outside costs nothing. *)
let word_of_bytes t p =
  if p >= 0 && p + 8 <= Bytes.length t.bytes then Bytes.get_int64_le t.bytes p
  else begin
    (* arena-end (or -start) straddle: assemble per byte, fill outside *)
    let w = ref 0L in
    for k = 7 downto 0 do
      let q = p + k in
      let v =
        if q < 0 || q >= Bytes.length t.bytes then t.fill
        else Char.code (Bytes.get t.bytes q)
      in
      w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int v)
    done;
    !w
  end

let load_word t p =
  if p + 8 > 0 && p < Bytes.length t.bytes then t.loads <- t.loads + 1;
  word_of_bytes t p

(* Uncounted word fetch: the audit/dump twin of [peek]. Selfcheck and
   shadow dumps walk the whole arena; charging those scans would swamp the
   workload's own counters. *)
let peek_word t p = word_of_bytes t p

let word_byte w k = Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * k)) 0xFFL)

(* Journal a clamped (in-arena) range. The newest-entry containment check
   absorbs the common poison/unpoison-the-same-block churn without growing
   the journal; overlapping entries are harmless (restore blits twice). *)
let note_dirty t lo len =
  if t.armed && len > 0 then
    match t.journal with
    | (l, n) :: _ when lo >= l && lo + len <= l + n -> ()
    | _ -> t.journal <- (lo, len) :: t.journal

let set t p v =
  assert (v >= 0 && v < 256);
  t.stores <- t.stores + 1;
  if p >= 0 && p < Bytes.length t.bytes then begin
    note_dirty t p 1;
    Bytes.set t.bytes p (Char.chr v)
  end

(* Uncounted store: the chaos engine's corruption primitive. Bypassing the
   stores counter is the point — an injected fault must not perturb the
   event-count-derived cost model, or the determinism and bench gates would
   see phantom work. It still lands in the journal: a corrupted segment is
   dirty, and restore must repair it. *)
let poke t p v =
  assert (v >= 0 && v < 256);
  if p >= 0 && p < Bytes.length t.bytes then begin
    note_dirty t p 1;
    Bytes.set t.bytes p (Char.chr v)
  end

(* The batched kernels below clamp once, count the clamped length once, and
   then run an unchecked fill/blit: the bounds checks are hoisted out of the
   per-byte loop, which is what makes poisoning O(memset) rather than
   O(stores-counter increments). Only bytes that actually land in the arena
   are counted — the virtual space beyond it absorbs writes silently, and
   counting them would overcharge the cost model (the fill_range drift bug). *)

let fill_range t ~lo ~hi v =
  assert (lo <= hi && v >= 0 && v < 256);
  let lo' = max 0 lo and hi' = min (Bytes.length t.bytes) hi in
  let len = hi' - lo' in
  if len > 0 then begin
    t.stores <- t.stores + len;
    note_dirty t lo' len;
    Bytes.unsafe_fill t.bytes lo' len (Char.chr v)
  end

let blit_pattern t ~lo ~pattern ~pat_off ~len =
  assert (len >= 0 && pat_off >= 0 && pat_off + len <= Bytes.length pattern);
  (* clamp [lo, lo + len) to the arena, sliding the pattern window along *)
  let cut_lo = if lo < 0 then -lo else 0 in
  let lo' = lo + cut_lo and pat_off' = pat_off + cut_lo in
  let len' = min (len - cut_lo) (Bytes.length t.bytes - lo') in
  if len' > 0 then begin
    t.stores <- t.stores + len';
    note_dirty t lo' len';
    Bytes.unsafe_blit pattern pat_off' t.bytes lo' len'
  end

let loads t = t.loads
let stores t = t.stores

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0

(* {1 Snapshot / restore (the fuzz-mode profile)} *)

type snapshot = { s_bytes : Bytes.t; s_loads : int; s_stores : int }

let snapshot t =
  t.journal <- [];
  t.armed <- true;
  { s_bytes = Bytes.copy t.bytes; s_loads = t.loads; s_stores = t.stores }

let restore t s =
  assert (Bytes.length s.s_bytes = Bytes.length t.bytes);
  List.iter
    (fun (lo, len) -> Bytes.blit s.s_bytes lo t.bytes lo len)
    t.journal;
  t.journal <- [];
  t.loads <- s.s_loads;
  t.stores <- s.s_stores

let journal_entries t = List.length t.journal

let journal_segments t =
  List.fold_left (fun a (_, len) -> a + len) 0 t.journal

let chaos_drop_journal t ~pick =
  let n = List.length t.journal in
  if n = 0 then None
  else begin
    let k = ((pick mod n) + n) mod n in
    let victim = List.nth t.journal k in
    t.journal <- List.filteri (fun i _ -> i <> k) t.journal;
    Some victim
  end
