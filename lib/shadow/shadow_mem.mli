(** Shadow memory: one unsigned byte of metadata per 8-byte segment.

    This is the `ShadowUnitType m[N]` array of §2.2. Both ASan's and
    GiantSan's encodings live in this substrate; they differ only in how
    they interpret the byte. Reads issued on the check path go through
    [load] so the experiments can count metadata loadings — the quantity the
    protection-density argument is about. *)

type t

val create : segments:int -> fill:int -> t
(** [create ~segments ~fill] makes a shadow array of [segments] bytes, all
    initialised to [fill] (the encoding's "unallocated" code). *)

val of_heap : Giantsan_memsim.Heap.t -> fill:int -> t
(** Shadow sized to cover the heap's arena. *)

val segments : t -> int

val load : t -> int -> int
(** [load m p] reads segment state [m[p]] (0..255) and counts one metadata
    load. Out-of-range [p] returns the fill value (the virtual space beyond
    the arena is non-addressable) without counting — only probes that touch
    real metadata are charged, mirroring the clamp-then-count rule of the
    store kernels. *)

val peek : t -> int -> int
(** Like [load] but uncounted — for tests and pretty-printing only. *)

val load_word : t -> int -> int64
(** [load_word m p] fetches segments [p, p+8) in one counted metadata load,
    packed little-endian: byte [k] of the result is segment [p + k].
    Out-of-range segments read as the fill value (arena-end clamping is
    per-byte), and a word that lies entirely outside the arena costs no
    load at all. In-range words compile to a single 64-bit fetch. *)

val peek_word : t -> int -> int64
(** Like [load_word] but uncounted — for audits (selfcheck) and dumps whose
    whole-arena scans must not perturb the workload's cost model. *)

val word_byte : int64 -> int -> int
(** [word_byte w k] extracts lane [k] (0..7) of a shadow word: the state
    code of segment [p + k] when [w = load_word m p]. *)

val set : t -> int -> int -> unit
(** [set m p v] writes segment state (0..255), counting one metadata store. *)

val poke : t -> int -> int -> unit
(** Like [set] but uncounted: the chaos engine's corruption primitive.
    An injected fault must not perturb the event-count-derived cost model
    (phantom stores would break the determinism and bench gates), so it
    bypasses the counter on purpose. Out-of-range [p] is ignored. Nothing
    outside fault injection may use this. *)

val fill_range : t -> lo:int -> hi:int -> int -> unit
(** Set segments [lo, hi) to a value. The range is clamped to the arena
    first and only the clamped length is counted as stores — writes into
    the virtual space beyond the arena touch no metadata and therefore
    cost nothing (counting them would overcharge the cost model). The
    bounds check is hoisted: one clamp, then an unchecked fill. *)

val blit_pattern : t -> lo:int -> pattern:Bytes.t -> pat_off:int -> len:int -> unit
(** [blit_pattern m ~lo ~pattern ~pat_off ~len] copies
    [pattern[pat_off, pat_off + len)] onto segments [lo, lo + len) in one
    batched write: the destination range is clamped to the arena (the
    pattern window slides along with it), the clamped length is counted as
    stores in one increment, and the copy itself is an unchecked blit.
    This is the fast path under precomputed poisoning templates.
    Requires [0 <= pat_off] and [pat_off + len <= Bytes.length pattern]. *)

val loads : t -> int
(** Metadata loads so far. *)

val stores : t -> int
val reset_counters : t -> unit

(** {1 Snapshot / restore — the fuzz-mode execution profile}

    [snapshot] copies the whole shadow plane once and arms a dirty-segment
    journal: from then on every store kernel ({!set}, {!poke},
    {!fill_range}, {!blit_pattern}) records the clamped range it touched.
    [restore] blits the snapshot back over only the journaled ranges — the
    incremental re-poisoning that makes per-exec reset cost O(dirty
    segments) instead of O(arena) — and restores the load/store counters so
    a restored run is event-count-identical to a fresh one. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the shadow plane and counters; clears and (re)arms the dirty
    journal. *)

val restore : t -> snapshot -> unit
(** Blit the snapshot back over every journaled range, restore the
    counters, and clear the journal (it stays armed for the next exec).
    The snapshot must come from this [t]. *)

val journal_entries : t -> int
(** Ranges currently journaled (diagnostics and the chaos plane). *)

val journal_segments : t -> int
(** Total journaled segments, with multiplicity — the work {!restore} will
    do, which is what the fuzz-mode throughput model charges for. *)

val chaos_drop_journal : t -> pick:int -> (int * int) option
(** Fault-injection hook: remove the [pick]-th journaled range (newest
    first, modulo length) so the next {!restore} under-repairs and leaves
    stale segments behind — which the shadow-vs-oracle selfcheck must then
    flag. Returns the dropped range, or [None] when the journal is empty.
    Nothing outside fault injection may use this. *)
