module Memsim = Giantsan_memsim
module Shadow_mem = Giantsan_shadow.Shadow_mem
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module E = Asan_encoding
module Trace = Giantsan_telemetry.Trace
module Histogram = Giantsan_telemetry.Histogram

(* Example 1 (§2.2): one shadow load, one compare. *)
let check_access m ~addr ~width =
  assert (width >= 1 && width <= 8);
  let v = E.decode_signed (Shadow_mem.load m (addr / 8)) in
  not (v <> 0 && (addr land 7) + width > v)

let region_is_safe m ~lo ~hi =
  if hi <= lo then None
  else begin
    let first_seg = lo / 8 and last_seg = (hi - 1) / 8 in
    let bad = ref None in
    let seg = ref first_seg in
    while !bad = None && !seg <= last_seg do
      let v = Shadow_mem.load m !seg in
      let ok_upto = E.addressable_in_segment v in
      let seg_base = !seg * 8 in
      let want_from = max lo seg_base and want_to = min hi (seg_base + 8) in
      if want_to - seg_base > ok_upto then
        bad := Some (max want_from (seg_base + ok_upto));
      incr seg
    done;
    !bad
  end

let create_exposed_named name config =
  let heap = Memsim.Heap.create config in
  let m = Shadow_mem.of_heap heap ~fill:E.unallocated in
  Memsim.Heap.set_evict_hook heap (E.poison_evict m);
  let counters = Counters.create () in
  let hists = Histogram.create_set () in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    let r =
      Report.make
        ~kind:(Report.classify_access heap ~addr ~base)
        ~addr ~size ~detected_by:name
    in
    Trace.emit_report ~tool:name ~kind:(Report.kind_name r.Report.kind) ~addr;
    Some r
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    let obj = Memsim.Heap.malloc heap ?kind size in
    E.poison_alloc m obj;
    counters.Counters.poison_segments <-
      counters.Counters.poison_segments + (obj.Memsim.Memobj.block_len / 8);
    Trace.emit_malloc ~tool:name ~base:obj.Memsim.Memobj.base ~size
      ~kind:(Memsim.Memobj.kind_name obj.Memsim.Memobj.kind);
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    Trace.emit_free ~tool:name ~addr:ptr;
    match Memsim.Heap.free heap ptr with
    | Ok { freed; evicted } ->
      E.poison_free m freed;
      List.iter (E.poison_evict m) evicted;
      None
    | Error err -> (
      match San.free_error_report ~name ~addr:ptr err with
      | Some r ->
        counters.Counters.errors <- counters.Counters.errors + 1;
        Trace.emit_report ~tool:name
          ~kind:(Report.kind_name r.Report.kind)
          ~addr:ptr;
        Some r
      | None -> None)
  in
  (* ASan's instruction checks are single-load fast-path events; its linear
     region scans are the slow path. *)
  let region ?base ~lo ~hi ~size () =
    counters.Counters.region_checks <- counters.Counters.region_checks + 1;
    let loads_before = if Trace.is_on () then Shadow_mem.loads m else 0 in
    let bad = region_is_safe m ~lo ~hi in
    if Trace.is_on () then begin
      let loads = Shadow_mem.loads m - loads_before in
      Histogram.observe hists.Histogram.h_loads_per_check loads;
      Trace.emit_region_check ~tool:name ~lo ~hi ~fast:false ~loads;
      if loads > 0 then Trace.emit_shadow_load ~tool:name ~count:loads
    end;
    match bad with
    | None -> None
    | Some bad -> report ?base ~addr:bad ~size ()
  in
  let access ~base ~addr ~width =
    (* ASan ignores the anchor: instruction-level protection only. *)
    ignore base;
    if Trace.is_on () then
      Histogram.observe hists.Histogram.h_access_width width;
    if width <= 8 then begin
      counters.Counters.instr_checks <- counters.Counters.instr_checks + 1;
      let ok = check_access m ~addr ~width in
      if Trace.is_on () then begin
        Trace.emit_shadow_load ~tool:name ~count:1;
        Trace.emit_access ~tool:name ~addr ~width ~fast:true
      end;
      if ok then None else report ~addr ~size:width ()
    end
    else begin
      let r = region ~lo:addr ~hi:(addr + width) ~size:width () in
      Trace.emit_access ~tool:name ~addr ~width ~fast:false;
      r
    end
  in
  let check_region ~lo ~hi = region ~base:lo ~lo ~hi ~size:(hi - lo) () in
  let snapshot, restore =
    San.snapshot_slot
      ~cap:(fun () ->
        (Memsim.Heap.snapshot heap, Shadow_mem.snapshot m,
         San.counters_copy counters))
      ~put:(fun (hs, ss, cs) ->
        Memsim.Heap.restore heap hs;
        Shadow_mem.restore m ss;
        San.counters_restore counters cs)
  in
  let san = {
    San.name;
    heap;
    counters;
    hists;
    shadow_loads = (fun () -> Shadow_mem.loads m);
    shadow_stores = (fun () -> Shadow_mem.stores m);
    malloc;
    free;
    access;
    check_region;
    new_cache = (fun ~base -> San.new_cache ~base);
    cached_access =
      (fun cache ~off ~width ->
        (* No history caching in ASan: every iteration pays a fresh
           instruction-level check. *)
        access ~base:cache.San.cache_base
          ~addr:(cache.San.cache_base + off) ~width);
    flush_cache = (fun _ -> None);
    supports_operation_level = false;
    snapshot;
    restore;
  }
  in
  San.Registry.register san;
  (san, m)

let create_named name config = fst (create_exposed_named name config)
let create config = create_named "ASan" config
let create_exposed config = create_exposed_named "ASan" config
