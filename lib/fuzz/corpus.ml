module Scenario = Giantsan_bugs.Scenario
module Memobj = Giantsan_memsim.Memobj

let kind_of_string = function
  | "heap" -> Some Memobj.Heap
  | "stack" -> Some Memobj.Stack
  | "global" -> Some Memobj.Global
  | _ -> None

let step_to_string = function
  | Scenario.Alloc { slot; size; kind } ->
    Printf.sprintf "alloc %d %d %s" slot size (Memobj.kind_name kind)
  | Scenario.Free_slot slot -> Printf.sprintf "free %d" slot
  | Scenario.Free_at { slot; delta } -> Printf.sprintf "free_at %d %d" slot delta
  | Scenario.Access { slot; off; width } ->
    Printf.sprintf "access %d %d %d" slot off width
  | Scenario.Access_loop { slot; from_; to_; step; width } ->
    Printf.sprintf "loop %d %d %d %d %d" slot from_ to_ step width
  | Scenario.Region { slot; off; len } ->
    Printf.sprintf "region %d %d %d" slot off len
  | Scenario.Access_null { off; width } -> Printf.sprintf "null %d %d" off width

let to_string (t : Scenario.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# giantsan fuzz scenario\n";
  Buffer.add_string buf (Printf.sprintf "id %s\n" t.Scenario.sc_id);
  Buffer.add_string buf (Printf.sprintf "cwe %d\n" t.Scenario.sc_cwe);
  Buffer.add_string buf (Printf.sprintf "buggy %b\n" t.Scenario.sc_buggy);
  List.iter
    (fun s ->
      Buffer.add_string buf (step_to_string s);
      Buffer.add_char buf '\n')
    t.Scenario.sc_steps;
  Buffer.contents buf

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string text =
  let id = ref "corpus" and cwe = ref 0 and buggy = ref None in
  let steps = ref [] in
  let error = ref None in
  let fail lineno line =
    if !error = None then
      error := Some (Printf.sprintf "line %d: cannot parse %S" lineno line)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment line) in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "id"; v ] -> id := v
        | [ "cwe"; v ] -> (
          match int_of_string_opt v with
          | Some n -> cwe := n
          | None -> fail lineno line)
        | [ "buggy"; v ] -> (
          match bool_of_string_opt v with
          | Some b -> buggy := Some b
          | None -> fail lineno line)
        | [ "alloc"; slot; size; kind ] -> (
          match (int_of_string_opt slot, int_of_string_opt size, kind_of_string kind) with
          | Some slot, Some size, Some kind ->
            steps := Scenario.Alloc { slot; size; kind } :: !steps
          | _ -> fail lineno line)
        | [ "free"; slot ] -> (
          match int_of_string_opt slot with
          | Some slot -> steps := Scenario.Free_slot slot :: !steps
          | None -> fail lineno line)
        | [ "free_at"; slot; delta ] -> (
          match (int_of_string_opt slot, int_of_string_opt delta) with
          | Some slot, Some delta ->
            steps := Scenario.Free_at { slot; delta } :: !steps
          | _ -> fail lineno line)
        | [ "access"; slot; off; width ] -> (
          match
            (int_of_string_opt slot, int_of_string_opt off, int_of_string_opt width)
          with
          | Some slot, Some off, Some width ->
            steps := Scenario.Access { slot; off; width } :: !steps
          | _ -> fail lineno line)
        | [ "loop"; slot; from_; to_; step; width ] -> (
          match
            ( int_of_string_opt slot,
              int_of_string_opt from_,
              int_of_string_opt to_,
              int_of_string_opt step,
              int_of_string_opt width )
          with
          | Some slot, Some from_, Some to_, Some step, Some width
            when step <> 0 ->
            steps := Scenario.Access_loop { slot; from_; to_; step; width } :: !steps
          | _ -> fail lineno line)
        | [ "region"; slot; off; len ] -> (
          match
            (int_of_string_opt slot, int_of_string_opt off, int_of_string_opt len)
          with
          | Some slot, Some off, Some len ->
            steps := Scenario.Region { slot; off; len } :: !steps
          | _ -> fail lineno line)
        | [ "null"; off; width ] -> (
          match (int_of_string_opt off, int_of_string_opt width) with
          | Some off, Some width ->
            steps := Scenario.Access_null { off; width } :: !steps
          | _ -> fail lineno line)
        | _ -> fail lineno line)
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
    let steps = List.rev !steps in
    let truth =
      Scenario.ground_truth
        { sc_id = !id; sc_cwe = !cwe; sc_buggy = false; sc_steps = steps }
    in
    let label = Option.value ~default:truth !buggy in
    if label <> truth then
      Error
        (Printf.sprintf "%s: labelled %s but ground truth says %s" !id
           (if label then "buggy" else "clean")
           (if truth then "buggy" else "clean"))
    else
      Ok { Scenario.sc_id = !id; sc_cwe = !cwe; sc_buggy = label; sc_steps = steps }

let save_file ?(trace = []) path t =
  let oc = open_out path in
  output_string oc (to_string t);
  if trace <> [] then begin
    (* '#' lines are stripped by [of_string], so the annotated file stays
       replayable *)
    output_string oc "#\n# telemetry trace of this scenario (NDJSON):\n";
    List.iter (fun line -> output_string oc ("# trace: " ^ line ^ "\n")) trace
  end;
  close_out oc

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let names = Array.to_list names in
    List.filter_map
      (fun name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then None else Some (name, load_file path))
      (List.sort compare names)
