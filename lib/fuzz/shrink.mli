(** Greedy scenario minimization.

    Given a scenario satisfying some predicate (in practice: "the
    cross-sanitizer verdicts still diverge"), find a smaller one that still
    satisfies it. Delta-debugging over the step list (chunk removal, halving
    first) followed by per-step value shrinking (offsets toward the object
    boundary, sizes and widths toward small canon values, loops toward
    single accesses). Every candidate is repaired before the predicate runs,
    so shrinking can never manufacture a malformed scenario. *)

val shrink :
  interesting:(Giantsan_bugs.Scenario.t -> bool) ->
  Giantsan_bugs.Scenario.t ->
  Giantsan_bugs.Scenario.t
(** Deterministic greedy fixpoint. The result satisfies [interesting]
    whenever the input does; if the input does not, it is returned
    unchanged. *)
