module Rng = Giantsan_util.Rng
module Scenario = Giantsan_bugs.Scenario
module Memobj = Giantsan_memsim.Memobj

let max_steps = 96
let max_alloc = 1024
let alloc_budget = 20_000
let max_offset = 4096
let max_trips = 512

let clamp lo hi v = max lo (min hi v)

(* --- repair ------------------------------------------------------------ *)

let repair (t : Scenario.t) =
  let allocated = Hashtbl.create 8 in
  let budget = ref 0 in
  let kept = ref 0 in
  let steps =
    List.filter_map
      (fun step ->
        if !kept >= max_steps then None
        else
          let keep s =
            incr kept;
            Some s
          in
          let known slot = Hashtbl.mem allocated slot in
          match step with
          | Scenario.Alloc { slot; size; kind } ->
            let size = clamp 0 max_alloc size in
            if !budget + size > alloc_budget then None
            else begin
              budget := !budget + size;
              Hashtbl.replace allocated slot ();
              keep (Scenario.Alloc { slot; size; kind })
            end
          | Scenario.Free_slot slot ->
            if known slot then keep step else None
          | Scenario.Free_at { slot; delta } ->
            if known slot then
              keep (Scenario.Free_at { slot; delta = clamp (-64) 64 delta })
            else None
          | Scenario.Access { slot; off; width } ->
            if known slot then
              keep
                (Scenario.Access
                   {
                     slot;
                     off = clamp (-max_offset) max_offset off;
                     width = clamp 1 8 width;
                   })
            else None
          | Scenario.Access_loop { slot; from_; to_; step; width } ->
            if not (known slot) then None
            else
              let step = if step = 0 then 1 else clamp (-64) 64 step in
              let from_ = clamp (-max_offset) max_offset from_ in
              let to_ = clamp (-max_offset) max_offset to_ in
              (* bound the trip count by pulling [to_] toward [from_] *)
              let to_ =
                if step > 0 then min to_ (from_ + (step * max_trips))
                else max to_ (from_ + (step * max_trips))
              in
              keep
                (Scenario.Access_loop
                   { slot; from_; to_; step; width = clamp 1 8 width })
          | Scenario.Region { slot; off; len } ->
            if known slot then
              keep
                (Scenario.Region
                   {
                     slot;
                     off = clamp (-max_offset) max_offset off;
                     len = clamp 0 max_offset len;
                   })
            else None
          | Scenario.Access_null { off; width } ->
            keep
              (Scenario.Access_null
                 { off = clamp 0 max_offset off; width = clamp 1 8 width }))
      t.Scenario.sc_steps
  in
  let t = { t with Scenario.sc_steps = steps } in
  { t with Scenario.sc_buggy = Scenario.ground_truth t }

(* --- slot bookkeeping for targeted mutations --------------------------- *)

(* sizes of slots as allocated (last Alloc wins, in step order) *)
let slot_sizes steps =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Scenario.Alloc { slot; size; _ } -> Hashtbl.replace tbl slot size
      | _ -> ())
    steps;
  tbl

let slots_of steps =
  let tbl = slot_sizes steps in
  Hashtbl.fold (fun slot size acc -> (slot, size) :: acc) tbl []
  |> List.sort compare

let to_array steps = Array.of_list steps

(* --- individual operators ---------------------------------------------- *)

let truncate rng steps =
  match steps with
  | [] -> []
  | _ ->
    let arr = to_array steps in
    let n = Array.length arr in
    if Rng.bool rng then
      (* drop a random suffix *)
      Array.to_list (Array.sub arr 0 (Rng.int_in rng 1 n))
    else
      (* drop one random step *)
      let k = Rng.int rng n in
      List.filteri (fun i _ -> i <> k) steps

let splice rng ~(partner : Scenario.t) steps =
  let a = to_array steps in
  let b = to_array partner.Scenario.sc_steps in
  if Array.length a = 0 || Array.length b = 0 then steps
  else
    let i = Rng.int rng (Array.length a) in
    let j = Rng.int rng (Array.length b) in
    Array.to_list (Array.sub a 0 (i + 1))
    @ Array.to_list (Array.sub b j (Array.length b - j))

let nudge_amount rng =
  let deltas = [| -8; -1; 1; 8 |] in
  if Rng.int rng 4 = 0 then Rng.int_in rng (-64) 64 else Rng.pick rng deltas

let offset_nudge rng steps =
  let arr = to_array steps in
  let idxs =
    List.filteri
      (fun _ i ->
        match arr.(i) with
        | Scenario.Access _ | Scenario.Access_loop _ | Scenario.Region _
        | Scenario.Access_null _ | Scenario.Free_at _ -> true
        | _ -> false)
      (List.init (Array.length arr) Fun.id)
  in
  match idxs with
  | [] -> steps
  | _ ->
    let k = List.nth idxs (Rng.int rng (List.length idxs)) in
    let d = nudge_amount rng in
    arr.(k) <-
      (match arr.(k) with
      | Scenario.Access a -> Scenario.Access { a with off = a.off + d }
      | Scenario.Access_loop l ->
        if Rng.bool rng then Scenario.Access_loop { l with to_ = l.to_ + d }
        else Scenario.Access_loop { l with from_ = l.from_ + d }
      | Scenario.Region r ->
        if Rng.bool rng then Scenario.Region { r with len = r.len + abs d }
        else Scenario.Region { r with off = r.off + d }
      | Scenario.Access_null a ->
        Scenario.Access_null { a with off = a.off + abs d }
      | Scenario.Free_at f -> Scenario.Free_at { f with delta = f.delta + d }
      | s -> s);
    Array.to_list arr

let size_nudge rng steps =
  let arr = to_array steps in
  let idxs =
    List.filteri
      (fun _ i -> match arr.(i) with Scenario.Alloc _ -> true | _ -> false)
      (List.init (Array.length arr) Fun.id)
  in
  match idxs with
  | [] -> steps
  | _ ->
    let k = List.nth idxs (Rng.int rng (List.length idxs)) in
    (match arr.(k) with
    | Scenario.Alloc a ->
      arr.(k) <- Scenario.Alloc { a with size = max 0 (a.size + nudge_amount rng) }
    | _ -> ());
    Array.to_list arr

(* Convert an operation into a sibling shape covering the same bytes, so the
   same (possibly violating) range is probed through a different check path:
   anchored access <-> region <-> cached loop, plain free <-> interior free. *)
let op_flip rng steps =
  let arr = to_array steps in
  if Array.length arr = 0 then steps
  else begin
    let k = Rng.int rng (Array.length arr) in
    arr.(k) <-
      (match arr.(k) with
      | Scenario.Access { slot; off; width } -> (
        match Rng.int rng 2 with
        | 0 -> Scenario.Region { slot; off; len = width }
        | _ ->
          Scenario.Access_loop
            { slot; from_ = off; to_ = off + width; step = 1; width = 1 })
      | Scenario.Region { slot; off; len } ->
        if Rng.bool rng && len > 0 then
          Scenario.Access_loop
            { slot; from_ = off; to_ = off + len; step = 1; width = 1 }
        else Scenario.Access { slot; off; width = min 8 (max 1 len) }
      | Scenario.Access_loop { slot; from_; to_; step; width } ->
        if Rng.bool rng then
          Scenario.Access_loop
            { slot; from_ = to_ - step; to_ = from_ - step; step = -step; width }
        else Scenario.Access { slot; off = from_; width }
      | Scenario.Free_slot slot ->
        Scenario.Free_at { slot; delta = 8 * Rng.int_in rng (-2) 2 }
      | Scenario.Free_at { slot; _ } -> Scenario.Free_slot slot
      | s -> s);
    Array.to_list arr
  end

(* Append one deliberate violation on a known slot (the difftest seeding
   tails, but applied to an arbitrary evolved scenario). *)
let seed_violation rng steps =
  match slots_of steps with
  | [] -> steps
  | slots ->
    let slot, size = List.nth slots (Rng.int rng (List.length slots)) in
    let tail =
      match Rng.int rng 6 with
      | 0 -> [ Scenario.Access { slot; off = size + Rng.int rng 8; width = 1 } ]
      | 1 ->
        [ Scenario.Access { slot; off = -(1 + Rng.int rng 12); width = 1 } ]
      | 2 ->
        [
          Scenario.Free_slot slot;
          Scenario.Access { slot; off = Rng.int rng (max 1 size); width = 1 };
        ]
      | 3 -> [ Scenario.Free_slot slot; Scenario.Free_slot slot ]
      | 4 -> [ Scenario.Free_at { slot; delta = 8 } ]
      | _ ->
        [
          Scenario.Region
            { slot; off = Rng.int rng (max 1 size); len = size + 8 };
        ]
    in
    steps @ tail

(* The inverse: pull every out-of-bounds offset back inside its object, so a
   buggy lineage can fall back to a clean-but-structurally-rich ancestor. *)
let unseed_violation _rng steps =
  let sizes = slot_sizes steps in
  let size_of slot = Option.value ~default:0 (Hashtbl.find_opt sizes slot) in
  List.map
    (fun step ->
      match step with
      | Scenario.Access { slot; off; width } ->
        let size = size_of slot in
        if off < 0 || off + width > size then
          let width = min width (max 1 size) in
          Scenario.Access
            { slot; off = max 0 (min off (size - width)); width }
        else step
      | Scenario.Region { slot; off; len } ->
        let size = size_of slot in
        if off < 0 || off + len > size then
          Scenario.Region { slot; off = 0; len = max 0 (min len size) }
        else step
      | Scenario.Free_at { slot; _ } -> Scenario.Free_slot slot
      | s -> s)
    steps

(* --- the driver --------------------------------------------------------- *)

let operators =
  [
    (3, `Offset_nudge);
    (2, `Seed_violation);
    (2, `Splice);
    (2, `Truncate);
    (2, `Op_flip);
    (1, `Size_nudge);
    (1, `Unseed);
  ]

let mutate rng ~pool (t : Scenario.t) =
  let rounds = 1 + Rng.int rng 3 in
  let steps = ref t.Scenario.sc_steps in
  for _ = 1 to rounds do
    steps :=
      (match Rng.weighted rng operators with
      | `Truncate -> truncate rng !steps
      | `Splice ->
        let partner = pool.(Rng.int rng (Array.length pool)) in
        splice rng ~partner !steps
      | `Offset_nudge -> offset_nudge rng !steps
      | `Size_nudge -> size_nudge rng !steps
      | `Op_flip -> op_flip rng !steps
      | `Seed_violation -> seed_violation rng !steps
      | `Unseed -> unseed_violation rng !steps)
  done;
  repair { t with Scenario.sc_steps = !steps }
