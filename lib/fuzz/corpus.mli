(** Plain-text, replayable scenario files.

    One scenario per file, line-oriented so findings can be read, edited and
    code-reviewed like source:

    {v
    # anything after '#' is a comment
    id shrunk_misfold_42
    cwe 0
    buggy true
    alloc 0 64 heap
    access 0 64 1
    v}

    Step lines: [alloc SLOT SIZE KIND], [free SLOT], [free_at SLOT DELTA],
    [access SLOT OFF WIDTH], [loop SLOT FROM TO STEP WIDTH],
    [region SLOT OFF LEN], [null OFF WIDTH]. KIND is [heap], [stack] or
    [global]. Header lines ([id], [cwe], [buggy]) may appear in any order
    before the steps; missing headers default to ["corpus"], [0], and the
    computed ground truth.

    [test/corpus/regressions/] holds one file per past fuzzer finding; the
    tier-1 suite replays every one of them and fails on any divergence. *)

val to_string : Giantsan_bugs.Scenario.t -> string
val of_string : string -> (Giantsan_bugs.Scenario.t, string) result
(** Inverse of {!to_string}; [Error] names the first offending line. The
    [sc_buggy] label is cross-checked against the ground truth and rejected
    when inconsistent (a corpus file must never lie about its label). *)

val save_file : ?trace:string list -> string -> Giantsan_bugs.Scenario.t -> unit
(** [save_file ?trace path t] writes {!to_string}[ t]; when [trace] is
    non-empty, each line is appended as a [# trace: ...] comment so the
    event trace travels with the reproducer without breaking replay. *)

val load_file : string -> (Giantsan_bugs.Scenario.t, string) result

val load_dir : string -> (string * (Giantsan_bugs.Scenario.t, string) result) list
(** Every regular file in the directory, sorted by filename for
    deterministic replay order. A missing directory is an empty corpus. *)
