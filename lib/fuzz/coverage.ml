type t = (string, unit) Hashtbl.t

let create () : t = Hashtbl.create 256
let size t = Hashtbl.length t
let mem t f = Hashtbl.mem t f

let add t features =
  List.fold_left
    (fun novel f ->
      if Hashtbl.mem t f then novel
      else begin
        Hashtbl.add t f ();
        novel + 1
      end)
    0 features

let bucket n =
  if n < 0 then -1
  else if n = 0 then 0
  else 1 + Giantsan_util.Bitops.log2_floor n
