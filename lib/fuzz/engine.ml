module Rng = Giantsan_util.Rng
module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Folding = Giantsan_core.Folding

type config = {
  runs : int;
  seed : int;
  minimize : bool;
  inject_misfold : bool;
  mode : Exec.mode;
}

let default_config =
  {
    runs = 2000;
    seed = 0;
    minimize = true;
    inject_misfold = false;
    mode = Exec.Rebuild;
  }

type finding = {
  f_id : string;
  f_scenario : Scenario.t;
  f_original_steps : int;
  f_divergences : string list;
  f_trace : string list;
}

type summary = {
  s_config : config;
  s_executed : int;
  s_skipped : int;
  s_corpus : int;
  s_coverage : int;
  s_baseline_coverage : int;
  s_divergent_runs : int;
  s_findings : finding list;
}

let max_recorded_findings = 25

let violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
    Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
  ]

(* The pure-random generator both loops share: what difftest.ml produced
   before this subsystem existed. *)
let random_scenario ~seed i =
  if i mod 2 = 0 then Difftest.gen_clean ~seed:(seed + i)
  else
    Difftest.gen_buggy ~seed:(seed + i)
      (List.nth violations (i / 2 mod List.length violations))

let seed_corpus ~seed =
  List.init 8 (fun i -> Difftest.gen_clean ~seed:(seed + i))
  @ List.map (fun v -> Difftest.gen_buggy ~seed v) violations

let run config =
  Folding.with_fault
    (if config.inject_misfold then Some (Folding.Overstate_last 1) else None)
    (fun () ->
      let ctx =
        match config.mode with
        | Exec.Rebuild -> None
        | Exec.Persistent -> Some (Exec.make_ctx ())
      in
      let rng = Rng.create config.seed in
      let coverage = Coverage.create () in
      let corpus = ref [||] in
      let push sc = corpus := Array.append !corpus [| sc |] in
      let executed = ref 0 and skipped = ref 0 and divergent = ref 0 in
      let findings = ref [] and signatures = Hashtbl.create 8 in
      let record sc divs =
        incr divergent;
        let names =
          List.sort_uniq compare (List.map Exec.divergence_name divs)
        in
        let signature = String.concat "," names in
        if
          (not (Hashtbl.mem signatures signature))
          && List.length !findings < max_recorded_findings
        then begin
          Hashtbl.add signatures signature ();
          let original_steps = List.length sc.Scenario.sc_steps in
          let shrunk =
            if config.minimize then Shrink.shrink ~interesting:Exec.diverges sc
            else sc
          in
          let id = Printf.sprintf "finding_%d" (List.length !findings) in
          let scenario = { shrunk with Scenario.sc_id = id } in
          findings :=
            {
              f_id = id;
              f_scenario = scenario;
              f_original_steps = original_steps;
              f_divergences = names;
              (* the minimal reproducer's event trace rides along with the
                 finding so saved .scn files explain themselves *)
              f_trace = Exec.capture_trace scenario;
            }
            :: !findings
        end
      in
      let execute sc =
        match Exec.run ?ctx sc with
        | Error _ -> incr skipped
        | Ok outcome ->
          incr executed;
          let novel = Coverage.add coverage outcome.Exec.features in
          if novel > 0 then push sc;
          if outcome.Exec.divergences <> [] then
            record sc outcome.Exec.divergences
      in
      (* seed the corpus, then evolve it *)
      List.iter
        (fun sc -> execute (Mutate.repair sc))
        (seed_corpus ~seed:config.seed);
      if Array.length !corpus = 0 then
        (* degenerate but possible under an injected bug: keep a fallback
           parent so mutation always has something to work on *)
        push (Mutate.repair (Difftest.gen_clean ~seed:config.seed));
      for i = 1 to config.runs do
        let parent = !corpus.(Rng.int rng (Array.length !corpus)) in
        let child = Mutate.mutate rng ~pool:!corpus parent in
        let child =
          { child with Scenario.sc_id = Printf.sprintf "mut_%d" i }
        in
        execute child
      done;
      let total_budget = !executed + !skipped in
      (* control arm: the same execution budget spent on independent random
         scenarios, no mutation, no guidance *)
      let baseline = Coverage.create () in
      for i = 0 to total_budget - 1 do
        match Exec.run ?ctx (random_scenario ~seed:config.seed i) with
        | Ok outcome -> ignore (Coverage.add baseline outcome.Exec.features)
        | Error _ -> ()
      done;
      {
        s_config = config;
        s_executed = !executed;
        s_skipped = !skipped;
        s_corpus = Array.length !corpus;
        s_coverage = Coverage.size coverage;
        s_baseline_coverage = Coverage.size baseline;
        s_divergent_runs = !divergent;
        s_findings = List.rev !findings;
      })

let summary_to_string s =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "coverage-guided differential fuzz\n";
  p "  seed=%d runs=%d minimize=%b inject-misfold=%b mode=%s\n" s.s_config.seed
    s.s_config.runs s.s_config.minimize s.s_config.inject_misfold
    (Exec.mode_name s.s_config.mode);
  p "  executed %d scenarios (%d non-executable mutants skipped)\n"
    s.s_executed s.s_skipped;
  p "  corpus entries: %d\n" s.s_corpus;
  p "  coverage features: guided=%d pure-random-baseline=%d (%+d)\n"
    s.s_coverage s.s_baseline_coverage
    (s.s_coverage - s.s_baseline_coverage);
  p "  divergent runs: %d\n" s.s_divergent_runs;
  (match s.s_findings with
  | [] -> p "  findings: none — all cross-sanitizer invariants held\n"
  | fs ->
    p "  findings (deduplicated by divergence signature):\n";
    List.iter
      (fun f ->
        p "    %s: %s (%d steps, shrunk from %d)\n" f.f_id
          (String.concat ", " f.f_divergences)
          (List.length f.f_scenario.Scenario.sc_steps)
          f.f_original_steps;
        List.iter
          (fun line -> if line <> "" then p "      | %s\n" line)
          (String.split_on_char '\n' (Corpus.to_string f.f_scenario)))
      fs);
  Buffer.contents buf

let replay ?(mode = Exec.Rebuild) ~dir () =
  let ctx =
    match mode with
    | Exec.Rebuild -> None
    | Exec.Persistent -> Some (Exec.make_ctx ())
  in
  List.map
    (fun (name, parsed) ->
      match parsed with
      | Error e -> (name, [ "parse: " ^ e ])
      | Ok sc -> (
        match Exec.run ?ctx sc with
        | Error e -> (name, [ "execution: " ^ e ])
        | Ok outcome ->
          let problems =
            List.map
              (fun d -> "divergence: " ^ Exec.divergence_name d)
              outcome.Exec.divergences
          in
          (name, problems)))
    (Corpus.load_dir dir)
