(** Mutation engine over scenarios.

    Mutations are intentionally allowed to break memory safety — that is the
    point — but never well-formedness: every produced scenario goes through
    {!repair}, so it executes without unallocated-slot failures, keeps the
    arena within budget, and carries a ground-truth-consistent [sc_buggy]
    label. *)

val max_steps : int
(** Hard cap on scenario length after repair. *)

val repair : Giantsan_bugs.Scenario.t -> Giantsan_bugs.Scenario.t
(** Make a step list executable: drop operations on never-allocated slots,
    clamp sizes/offsets/loop trip counts to the harness arena's scale, cap
    the length, and relabel [sc_buggy] from {!Giantsan_bugs.Scenario.ground_truth}. *)

val mutate :
  Giantsan_util.Rng.t ->
  pool:Giantsan_bugs.Scenario.t array ->
  Giantsan_bugs.Scenario.t ->
  Giantsan_bugs.Scenario.t
(** One mutation round: apply 1–3 weighted operators (splice with a pool
    member, truncate, offset-nudge, size-nudge, op-flip, violation-seed,
    violation-unseed) and repair the result. [pool] must be non-empty; it
    supplies splice partners. *)
