(** Differential execution of one scenario across the tool matrix.

    Runs the scenario on a fresh sanitizer per tool, compares every verdict
    against the static ground truth ({!Giantsan_bugs.Scenario.ground_truth})
    and against the paper's cross-tool relations, and distils the run into
    coverage features for the greybox loop. *)

type divergence =
  | False_positive of Giantsan_bugs.Harness.tool
      (** ground truth says clean, the tool reported (Table 3's
          "no false-positive issues" claim, for every tool) *)
  | Dominance_violation
      (** ASan detected, GiantSan stayed silent — anchored operation-level
          checking must dominate instruction-level checking *)
  | Family_split
      (** ASan and ASan-- disagree; they share one runtime and may never *)

val divergence_name : divergence -> string

type outcome = {
  truth : bool;  (** static ground truth for this exact step list *)
  verdicts : (Giantsan_bugs.Harness.tool * bool) list;
  divergences : divergence list;  (** empty = all invariants held *)
  features : string list;  (** coverage features observed during the run *)
}

val run : Giantsan_bugs.Scenario.t -> (outcome, string) result
(** [Error _] when the scenario is not executable (unallocated-slot use or
    arena exhaustion); such inputs are skipped, not treated as findings. *)

val diverges : Giantsan_bugs.Scenario.t -> bool
(** Does the scenario currently produce at least one divergence? (The
    shrinker's "still interesting" predicate.) *)

val capture_trace : Giantsan_bugs.Scenario.t -> string list
(** Re-execute the scenario across the full tool matrix with the telemetry
    tracer enabled and return the NDJSON event lines. Deterministic: events
    carry sequence numbers, never timestamps, so the same scenario always
    yields byte-identical lines. *)
