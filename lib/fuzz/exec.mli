(** Differential execution of one scenario across the tool matrix.

    Runs the scenario on a fresh sanitizer per tool, compares every verdict
    against the static ground truth ({!Giantsan_bugs.Scenario.ground_truth})
    and against the paper's cross-tool relations, and distils the run into
    coverage features for the greybox loop. *)

type divergence =
  | False_positive of Giantsan_bugs.Harness.tool
      (** ground truth says clean, the tool reported (Table 3's
          "no false-positive issues" claim, for every tool) *)
  | Dominance_violation
      (** ASan detected, GiantSan stayed silent — anchored operation-level
          checking must dominate instruction-level checking *)
  | Family_split
      (** ASan and ASan-- disagree; they share one runtime and may never *)
  | Pac_dominance_violation
      (** GiantSan detected, PAC stayed silent — PAC's exact signed bounds
          subsume redzone granularity, so it must see everything GiantSan
          sees. The converse (PAC detecting where GiantSan is silent —
          use-after-free once the quarantine has recycled the block, or an
          overflow jumping clean past the redzone) is the tagged scheme's
          legitimate edge, labelled buggy by ground truth, and deliberately
          {e not} a divergence. *)

val divergence_name : divergence -> string

type outcome = {
  truth : bool;  (** static ground truth for this exact step list *)
  verdicts : (Giantsan_bugs.Harness.tool * bool) list;
  divergences : divergence list;  (** empty = all invariants held *)
  features : string list;  (** coverage features observed during the run *)
}

(** {1 Execution modes (the fuzz-mode profile)} *)

type mode =
  | Rebuild  (** fresh sanitizer per (tool, scenario): full construction *)
  | Persistent
      (** one long-lived sanitizer per tool, snapshot once, restore after
          every exec — incremental shadow re-poisoning via the dirty-segment
          journal, PAC salt rollback. Event-count-identical to [Rebuild],
          so verdicts, features and coverage are byte-identical too. *)

val mode_name : mode -> string
val mode_of_name : string -> mode option

type ctx
(** Persistent-mode execution context: the per-tool long-lived sanitizers
    and their pristine snapshots. *)

val make_ctx : unit -> ctx
(** Build one sanitizer per tool and snapshot each pristine. *)

val run : ?ctx:ctx -> Giantsan_bugs.Scenario.t -> (outcome, string) result
(** [Error _] when the scenario is not executable (unallocated-slot use or
    arena exhaustion); such inputs are skipped, not treated as findings.
    With [?ctx] the run executes in persistent mode: each tool's sanitizer
    is restored to its pristine snapshot afterwards, even when the scenario
    dies mid-exec. *)

val diverges : Giantsan_bugs.Scenario.t -> bool
(** Does the scenario currently produce at least one divergence? (The
    shrinker's "still interesting" predicate.) *)

val capture_trace : Giantsan_bugs.Scenario.t -> string list
(** Re-execute the scenario across the full tool matrix with the telemetry
    tracer enabled and return the NDJSON event lines. Deterministic: events
    carry sequence numbers, never timestamps, so the same scenario always
    yields byte-identical lines. *)
