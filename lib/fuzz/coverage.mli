(** The fuzzer's coverage map.

    Greybox fuzzing needs a cheap novelty signal: "did this input make the
    system do something no earlier input did?". There is no compiled-in edge
    instrumentation here, but the simulation already observes plenty of
    execution behaviour for free — counter deltas per sanitizer, report
    kinds produced, region-check fast/slow path mix, folding degrees of the
    allocations touched. Each such observation is rendered as a short
    feature string; the map is the set of features ever seen. An input that
    contributes a new feature is "interesting" and enters the corpus. *)

type t

val create : unit -> t
val size : t -> int
(** Number of distinct features observed so far. *)

val mem : t -> string -> bool

val add : t -> string list -> int
(** [add t features] records every feature and returns how many of them
    were novel (0 = the input exercised nothing new). *)

val bucket : int -> int
(** Coarse log2 bucketing for counter deltas, so "37 region checks" and
    "41 region checks" land in the same feature but 0, 1, ~10 and ~1000 do
    not: [bucket 0 = 0], [bucket n = 1 + log2_floor n] for [n > 0], and
    negative values (impossible for counters) collapse to [-1]. *)
