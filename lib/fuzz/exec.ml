module Scenario = Giantsan_bugs.Scenario
module Harness = Giantsan_bugs.Harness
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Folding = Giantsan_core.Folding
module Memobj = Giantsan_memsim.Memobj

type divergence =
  | False_positive of Harness.tool
  | Dominance_violation
  | Family_split
  | Pac_dominance_violation

let divergence_name = function
  | False_positive tool -> "false-positive:" ^ Harness.tool_name tool
  | Dominance_violation -> "dominance-violation"
  | Family_split -> "family-split"
  | Pac_dominance_violation -> "pac-dominance-violation"

type outcome = {
  truth : bool;
  verdicts : (Harness.tool * bool) list;
  divergences : divergence list;
  features : string list;
}

let tool_tag = function
  | Harness.Giantsan -> "GS"
  | Harness.Asan -> "AS"
  | Harness.Asanmm -> "AM"
  | Harness.Lfp -> "LF"
  | Harness.Pac -> "PA"

(* The counters whose magnitude says something about which paths a run
   exercised. [errors] is deliberately absent: report kinds cover it with
   more precision. *)
let feature_counters (c : Counters.t) =
  [
    ("ic", c.Counters.instr_checks);
    ("rc", c.Counters.region_checks);
    ("fc", c.Counters.fast_checks);
    ("sc", c.Counters.slow_checks);
    ("ch", c.Counters.cache_hits);
    ("cu", c.Counters.cache_updates);
    ("uc", c.Counters.underflow_checks);
    ("bc", c.Counters.bounds_checks);
    ("ps", c.Counters.poison_segments);
  ]

(* {1 Execution modes}

   [Rebuild] is the classic profile: a fresh sanitizer per (tool, scenario)
   pair, paying full construction — arena, shadow plane, tables — for every
   exec. [Persistent] is the ReZZan-style fuzz profile: one long-lived
   sanitizer per tool, snapshotted pristine once, restored after every exec
   (incremental shadow re-poisoning via the dirty-segment journal, PAC salt
   rollback). Restoring counters too makes the two modes event-count — and
   therefore feature- and verdict- — identical. *)

type mode = Rebuild | Persistent

let mode_name = function Rebuild -> "rebuild" | Persistent -> "persistent"

let mode_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "rebuild" -> Some Rebuild
  | "persistent" -> Some Persistent
  | _ -> None

type ctx = { c_sans : (Harness.tool * San.t) list }

let make_ctx () =
  {
    c_sans =
      List.map
        (fun tool ->
          let san = Harness.make_sanitizer tool in
          san.San.snapshot ();
          (tool, san))
        Harness.all_tools;
  }

let run_tool_on san tool scenario =
  let reports = Scenario.run_reports san scenario in
  let tag = tool_tag tool in
  let kind_features =
    List.sort_uniq compare
      (List.map (fun r -> "r:" ^ tag ^ ":" ^ Report.kind_name r.Report.kind) reports)
  in
  let counter_features =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some (Printf.sprintf "c:%s:%s:%d" tag name (Coverage.bucket v)))
      (feature_counters san.San.counters)
  in
  let path_feature =
    (* which region-check paths this run took: fast only, slow only, a mix,
       or none at all *)
    let c = san.San.counters in
    Printf.sprintf "p:%s:%c%c" tag
      (if c.Counters.fast_checks > 0 then 'f' else '-')
      (if c.Counters.slow_checks > 0 then 's' else '-')
  in
  (reports <> [], kind_features @ counter_features @ [ path_feature ])

let run_tool ?ctx tool scenario =
  match ctx with
  | None -> run_tool_on (Harness.make_sanitizer tool) tool scenario
  | Some c ->
    let san = List.assoc tool c.c_sans in
    (* restore even when the scenario dies mid-exec (unallocated slot,
       arena exhaustion): the next exec must still start pristine *)
    Fun.protect
      ~finally:(fun () -> san.San.restore ())
      (fun () -> run_tool_on san tool scenario)

(* Folding degrees the scenario's allocations put into the shadow: cheap to
   recompute from the sizes, and exactly the encoding surface a mutated
   size explores. *)
let degree_features scenario =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Scenario.Alloc { size; _ } when size >= 8 ->
           Some
             (Printf.sprintf "d:%d"
                (Folding.degree_at ~good_segments:(size / 8)))
         | _ -> None)
       scenario.Scenario.sc_steps)

let run ?ctx scenario =
  match
    let truth = Scenario.ground_truth scenario in
    let results =
      List.map
        (fun tool -> (tool, run_tool ?ctx tool scenario))
        Harness.all_tools
    in
    let verdicts = List.map (fun (tool, (v, _)) -> (tool, v)) results in
    let verdict tool = List.assoc tool verdicts in
    let divergences =
      List.filter_map
        (fun (tool, v) ->
          if v && not truth then Some (False_positive tool) else None)
        verdicts
      @ (if verdict Harness.Asan && not (verdict Harness.Giantsan) then
           [ Dominance_violation ]
         else [])
      @ (if verdict Harness.Asan <> verdict Harness.Asanmm then
           [ Family_split ]
         else [])
      @
      (* The PAC-aware expectation: exact signed bounds subsume redzone
         granularity, so PAC must see everything GiantSan sees. The
         legitimate asymmetry runs only the other way — PAC detecting a
         stale use after quarantine recycling (or a far jump past the
         redzone) where the shadow-based tools see plausible live state —
         and ground truth already labels those buggy, so a PAC detection
         there is a correct verdict, never a finding. *)
      if verdict Harness.Giantsan && not (verdict Harness.Pac) then
        [ Pac_dominance_violation ]
      else []
    in
    let features =
      Printf.sprintf "t:%b" truth
      :: Printf.sprintf "v:%s"
           (String.concat ""
              (List.map (fun (_, v) -> if v then "1" else "0") verdicts))
      :: degree_features scenario
      @ List.concat_map (fun (_, (_, fs)) -> fs) results
    in
    { truth; verdicts; divergences; features }
  with
  | outcome -> Ok outcome
  | exception Failure msg -> Error msg
  | exception Out_of_memory -> Error "arena exhausted"

let diverges scenario =
  match run scenario with
  | Ok { divergences; _ } -> divergences <> []
  | Error _ -> false

let capture_trace scenario =
  let _, events =
    Giantsan_telemetry.Trace.with_capture (fun () -> run scenario)
  in
  Giantsan_telemetry.Export.ndjson_lines events
