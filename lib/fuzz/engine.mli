(** The coverage-guided differential fuzzing loop.

    Supersedes one-shot random generation: a seed corpus of difftest
    scenarios evolves by mutation; inputs that light up new coverage
    features join the corpus; inputs whose cross-sanitizer verdicts
    diverge from the oracle or the paper's dominance relations are
    findings, shrunk to minimal reproducers. Everything is driven by one
    {!Giantsan_util.Rng} stream, so a (seed, runs) pair always produces a
    byte-identical summary. *)

type config = {
  runs : int;  (** mutation-execution iterations *)
  seed : int;
  minimize : bool;  (** shrink findings to minimal reproducers *)
  inject_misfold : bool;
      (** arm {!Giantsan_core.Folding.set_fault} with [Overstate_last 1]
          for the run — the fuzzer-finds-a-real-bug self-test *)
  mode : Exec.mode;
      (** execution profile: rebuild a sanitizer per exec, or snapshot once
          and restore between execs ({!Exec.Persistent}). Summaries are
          byte-identical between modes except for the config line. *)
}

val default_config : config
(** 2000 runs, seed 0, minimize on, no injected bug, rebuild mode. *)

type finding = {
  f_id : string;
  f_scenario : Giantsan_bugs.Scenario.t;  (** shrunk when [minimize] *)
  f_original_steps : int;  (** step count before shrinking *)
  f_divergences : string list;  (** divergence names, sorted *)
  f_trace : string list;
      (** NDJSON event trace of the minimal reproducer across all tools
          ({!Exec.capture_trace}); attached as comment lines when the
          finding is saved to a corpus file *)
}

type summary = {
  s_config : config;
  s_executed : int;  (** scenarios actually run (seeds + mutations) *)
  s_skipped : int;  (** mutants rejected as non-executable *)
  s_corpus : int;  (** corpus entries at the end of the run *)
  s_coverage : int;  (** distinct features, coverage-guided loop *)
  s_baseline_coverage : int;
      (** distinct features from pure-random generation on the same budget —
          the control the guided loop must beat *)
  s_divergent_runs : int;  (** executions with at least one divergence *)
  s_findings : finding list;  (** deduplicated by divergence signature *)
}

val run : config -> summary

val summary_to_string : summary -> string
(** Deterministic rendering (no timestamps, no wall-clock): two runs with
    the same config produce byte-identical output. *)

val replay :
  ?mode:Exec.mode -> dir:string -> unit -> (string * string list) list
(** Replay every corpus file in [dir]: parse it, execute it across all
    tools, and collect problems (parse errors, label drift, divergences).
    An empty problem list for every file means the regression corpus is
    green. [mode] defaults to {!Exec.Rebuild}; persistent-mode replay must
    produce the identical problem list (the snapshot/restore acceptance
    check the CI leg byte-compares). *)
