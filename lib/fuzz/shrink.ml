module Scenario = Giantsan_bugs.Scenario

let with_steps t steps = Mutate.repair { t with Scenario.sc_steps = steps }

(* Try removing [len] consecutive steps starting at every position, first
   position that stays interesting wins. *)
let try_remove_chunk ~interesting t len =
  let arr = Array.of_list t.Scenario.sc_steps in
  let n = Array.length arr in
  if len <= 0 || len > n then None
  else
    let rec at i =
      if i + len > n then None
      else
        let steps =
          Array.to_list (Array.sub arr 0 i)
          @ Array.to_list (Array.sub arr (i + len) (n - i - len))
        in
        let cand = with_steps t steps in
        if
          List.length cand.Scenario.sc_steps < n && interesting cand
        then Some cand
        else at (i + 1)
    in
    at 0

let remove_steps ~interesting t =
  let rec outer t =
    let n = List.length t.Scenario.sc_steps in
    let rec lens len =
      if len < 1 then None
      else
        match try_remove_chunk ~interesting t len with
        | Some t' -> Some t'
        | None -> lens (len / 2)
    in
    match lens (n / 2) with
    | Some t' -> outer t'
    | None -> (
      match try_remove_chunk ~interesting t 1 with
      | Some t' -> outer t'
      | None -> t)
  in
  outer t

(* Candidate simpler values for one step, most aggressive first. *)
let step_candidates sizes step =
  let size_of slot =
    Option.value ~default:0 (Hashtbl.find_opt sizes slot)
  in
  match step with
  | Scenario.Alloc a ->
    List.filter_map
      (fun s -> if s < a.size then Some (Scenario.Alloc { a with size = s }) else None)
      [ 8; 16; 32; a.size / 2; a.size - 8; a.size - 1 ]
  | Scenario.Access a ->
    let size = size_of a.slot in
    List.filter_map
      (fun (off, width) ->
        if (off, width) <> (a.off, a.width) then
          Some (Scenario.Access { a with off; width })
        else None)
      [
        (* the canonical one-past-the-end probe, then milder variants *)
        (size, 1);
        (0, 1);
        (a.off / 2, a.width);
        (a.off, 1);
        ((if a.off > size then size + ((a.off - size) / 2) else a.off), a.width);
      ]
  | Scenario.Access_loop l ->
    [
      Scenario.Access { slot = l.slot; off = l.from_; width = l.width };
      Scenario.Access
        { slot = l.slot; off = l.to_ - l.step; width = l.width };
      Scenario.Access_loop
        { l with from_ = l.to_ - (2 * l.step) };
    ]
  | Scenario.Region r ->
    List.filter_map
      (fun (off, len) ->
        if (off, len) <> (r.off, r.len) then
          Some (Scenario.Region { r with off; len })
        else None)
      [ (r.off, 1); (r.off + r.len - 1, 1); (r.off, r.len / 2) ]
  | Scenario.Access_null a ->
    if a.off > 0 || a.width > 1 then
      [ Scenario.Access_null { off = 0; width = 1 } ]
    else []
  | Scenario.Free_at f ->
    if f.delta <> 8 then [ Scenario.Free_at { f with delta = 8 } ] else []
  | Scenario.Free_slot _ -> []

let simplify_values ~interesting t =
  let rec pass t budget =
    if budget <= 0 then t
    else begin
      let sizes = Hashtbl.create 8 in
      List.iter
        (function
          | Scenario.Alloc { slot; size; _ } -> Hashtbl.replace sizes slot size
          | _ -> ())
        t.Scenario.sc_steps;
      let arr = Array.of_list t.Scenario.sc_steps in
      let improved = ref None in
      (try
         Array.iteri
           (fun i step ->
             List.iter
               (fun cand_step ->
                 let steps =
                   List.mapi
                     (fun j s -> if j = i then cand_step else s)
                     (Array.to_list arr)
                 in
                 let cand = with_steps t steps in
                 if cand <> t && interesting cand then begin
                   improved := Some cand;
                   raise Exit
                 end)
               (step_candidates sizes step))
           arr
       with Exit -> ());
      match !improved with
      | Some t' -> pass t' (budget - 1)
      | None -> t
    end
  in
  pass t 64

let shrink ~interesting t =
  if not (interesting t) then t
  else begin
    let t = remove_steps ~interesting t in
    let t = simplify_values ~interesting t in
    (* value simplification can unlock further removals *)
    remove_steps ~interesting t
  end
