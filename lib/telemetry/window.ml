type t = {
  w_ns : int;
  k : int;
  ring : int array;  (* last [k] closed windows, ring.(closed mod k) next *)
  mutable closed : int;
  mutable cur : int;  (* observations in the open window *)
  mutable cur_index : int;  (* open window's index = now_ns / w_ns *)
  mutable total : int;
}

let create ~window_ns ~windows =
  if window_ns < 1 then invalid_arg "Window.create: window_ns < 1";
  if windows < 1 then invalid_arg "Window.create: windows < 1";
  {
    w_ns = window_ns;
    k = windows;
    ring = Array.make windows 0;
    closed = 0;
    cur = 0;
    cur_index = 0;
    total = 0;
  }

let window_ns t = t.w_ns

let push_closed t n =
  t.ring.(t.closed mod t.k) <- n;
  t.closed <- t.closed + 1

let roll t ~now_ns =
  let idx = now_ns / t.w_ns in
  let before = t.closed in
  if idx > t.cur_index then begin
    push_closed t t.cur;
    t.cur <- 0;
    (* any fully skipped windows closed with zero ops; cap the zero-fill at
       the ring size — older zeros would be overwritten anyway *)
    let skipped = idx - t.cur_index - 1 in
    for _ = 1 to min skipped t.k do
      push_closed t 0
    done;
    if skipped > t.k then t.closed <- t.closed + (skipped - t.k);
    t.cur_index <- idx
  end;
  t.closed - before

let record t ~now_ns n =
  ignore (roll t ~now_ns);
  t.cur <- t.cur + n;
  t.total <- t.total + n

let closed t = t.closed

let last_window_ops t =
  if t.closed = 0 then 0 else t.ring.((t.closed - 1) mod t.k)

let rate t =
  let n = min t.closed t.k in
  if n = 0 then 0.0
  else begin
    let sum = ref 0 in
    for i = t.closed - n to t.closed - 1 do
      sum := !sum + t.ring.(i mod t.k)
    done;
    float_of_int !sum /. (float_of_int (n * t.w_ns) /. 1e9)
  end

let total t = t.total
