(** The event sink: one bounded ring {e per domain} the runtimes emit into.
    Disabled by default, and the disabled path is a no-op that allocates
    nothing — the [emit_*] entry points take their payloads as immediate
    arguments and only build the event value once the switch has been
    checked, so an instrumented hot loop pays a load-and-branch when tracing
    is off (verified by the zero-allocation test).

    The same switch gates histogram observation in the runtimes: when
    [is_on] is false the sanitizers run exactly the pre-telemetry code
    paths.

    {b Concurrency.} The sink lives in domain-local storage
    ([Domain.DLS]): every function below reads and mutates only the calling
    domain's switch and ring. A freshly spawned domain starts with tracing
    off, so worker domains emit nothing until they opt in — the parallel
    engine ({!Giantsan_parallel.Shard}) wraps each shard in [with_capture]
    to give it a private ring, and merges the captured event lists
    deterministically afterwards. Nothing here is shared across domains, so
    no locking is needed and the serial fast path is unchanged. *)

val is_on : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn the sink on with a fresh ring ([capacity] defaults to 65536
    events; older events are overwritten past that). *)

val disable : unit -> unit
val clear : unit -> unit

val events : unit -> (int * Event.t) list
(** Retained events of the calling domain's sink, oldest first, each with
    its per-sink sequence number. *)

val emitted : unit -> int
(** Total events emitted since [enable]/[clear] (monotonic through
    wraparound). *)

val dropped : unit -> int

val with_capture : ?capacity:int -> (unit -> 'a) -> 'a * (int * Event.t) list
(** Run the thunk with tracing on in a private fresh ring, restoring the
    previous sink state afterwards (even on exceptions), and return the
    thunk's result with the captured events. Per-domain, like everything
    else here: captures on different domains never interleave. *)

(** {1 Emission points} — free functions so call sites stay one line. *)

val emit_malloc : tool:string -> base:int -> size:int -> kind:string -> unit
val emit_free : tool:string -> addr:int -> unit
val emit_access : tool:string -> addr:int -> width:int -> fast:bool -> unit
val emit_shadow_load : tool:string -> count:int -> unit
val emit_cache_hit : tool:string -> off:int -> unit
val emit_cache_update : tool:string -> ub:int -> unit

val emit_region_check :
  tool:string -> lo:int -> hi:int -> fast:bool -> loads:int -> unit

val emit_report : tool:string -> kind:string -> addr:int -> unit
val emit_phase_begin : name:string -> unit
val emit_phase_end : name:string -> unit
