(** Bounded ring buffer: the event tracer's backing store. Pushing past
    capacity silently overwrites the oldest entries, so a long run keeps
    the trailing window of its trace and never grows without bound. *)

type 'a t

val create : capacity:int -> 'a t
(** Requires [capacity >= 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Entries currently held, [<= capacity]. *)

val pushed : 'a t -> int
(** Total entries ever pushed (monotonic, survives wraparound). *)

val dropped : 'a t -> int
(** [pushed - length]: entries lost to wraparound. *)

val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Oldest retained entry first. *)

val to_seq_list : 'a t -> (int * 'a) list
(** Like [to_list] but each entry is paired with its global sequence
    number (the index it was pushed at, counting from 0 and unaffected by
    wraparound). *)
