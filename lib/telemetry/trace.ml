let default_capacity = 65536
let on = ref false
let buf = ref (Ring.create ~capacity:default_capacity)

let is_on () = !on

let enable ?(capacity = default_capacity) () =
  buf := Ring.create ~capacity;
  on := true

let disable () = on := false
let clear () = Ring.clear !buf
let events () = Ring.to_seq_list !buf
let emitted () = Ring.pushed !buf
let dropped () = Ring.dropped !buf

let with_capture ?(capacity = default_capacity) f =
  let saved_on = !on and saved_buf = !buf in
  buf := Ring.create ~capacity;
  on := true;
  Fun.protect
    ~finally:(fun () ->
      on := saved_on;
      buf := saved_buf)
    (fun () ->
      let r = f () in
      (r, Ring.to_seq_list !buf))

(* Each emitter checks the switch before constructing the event, so the
   disabled path performs no allocation. *)

let emit_malloc ~tool ~base ~size ~kind =
  if !on then Ring.push !buf (Event.Malloc { tool; base; size; kind })

let emit_free ~tool ~addr =
  if !on then Ring.push !buf (Event.Free { tool; addr })

let emit_access ~tool ~addr ~width ~fast =
  if !on then
    Ring.push !buf
      (Event.Access
         { tool; addr; width; path = (if fast then Event.Fast else Event.Slow) })

let emit_shadow_load ~tool ~count =
  if !on then Ring.push !buf (Event.Shadow_load { tool; count })

let emit_cache_hit ~tool ~off =
  if !on then Ring.push !buf (Event.Cache_hit { tool; off })

let emit_cache_update ~tool ~ub =
  if !on then Ring.push !buf (Event.Cache_update { tool; ub })

let emit_region_check ~tool ~lo ~hi ~fast ~loads =
  if !on then
    Ring.push !buf
      (Event.Region_check
         {
           tool; lo; hi;
           path = (if fast then Event.Fast else Event.Slow);
           loads;
         })

let emit_report ~tool ~kind ~addr =
  if !on then Ring.push !buf (Event.Report { tool; kind; addr })

let emit_phase_begin ~name =
  if !on then Ring.push !buf (Event.Phase_begin { name })

let emit_phase_end ~name =
  if !on then Ring.push !buf (Event.Phase_end { name })
