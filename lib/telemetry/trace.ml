let default_capacity = 65536

(* One sink per domain (Domain.DLS): each worker domain spawned by the
   parallel engine gets its own switch + ring, so runtimes may emit from any
   domain without synchronisation and one shard's capture can never observe
   another shard's events. A freshly spawned domain starts with tracing off,
   which also keeps the disabled fast path allocation-free there. *)
type sink = { mutable on : bool; mutable buf : Event.t Ring.t }

let sink_key =
  (* the placeholder ring is never pushed to while [on] is false; [enable]
     installs a real one *)
  Domain.DLS.new_key (fun () -> { on = false; buf = Ring.create ~capacity:1 })

let sink () = Domain.DLS.get sink_key

let is_on () = (sink ()).on

let enable ?(capacity = default_capacity) () =
  let s = sink () in
  s.buf <- Ring.create ~capacity;
  s.on <- true

let disable () = (sink ()).on <- false
let clear () = Ring.clear (sink ()).buf
let events () = Ring.to_seq_list (sink ()).buf
let emitted () = Ring.pushed (sink ()).buf
let dropped () = Ring.dropped (sink ()).buf

let with_capture ?(capacity = default_capacity) f =
  let s = sink () in
  let saved_on = s.on and saved_buf = s.buf in
  s.buf <- Ring.create ~capacity;
  s.on <- true;
  Fun.protect
    ~finally:(fun () ->
      let s = sink () in
      s.on <- saved_on;
      s.buf <- saved_buf)
    (fun () ->
      let r = f () in
      (r, Ring.to_seq_list (sink ()).buf))

(* Each emitter checks the switch before constructing the event, so the
   disabled path performs no allocation. *)

let emit_malloc ~tool ~base ~size ~kind =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Malloc { tool; base; size; kind })

let emit_free ~tool ~addr =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Free { tool; addr })

let emit_access ~tool ~addr ~width ~fast =
  let s = sink () in
  if s.on then
    Ring.push s.buf
      (Event.Access
         { tool; addr; width; path = (if fast then Event.Fast else Event.Slow) })

let emit_shadow_load ~tool ~count =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Shadow_load { tool; count })

let emit_cache_hit ~tool ~off =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Cache_hit { tool; off })

let emit_cache_update ~tool ~ub =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Cache_update { tool; ub })

let emit_region_check ~tool ~lo ~hi ~fast ~loads =
  let s = sink () in
  if s.on then
    Ring.push s.buf
      (Event.Region_check
         {
           tool; lo; hi;
           path = (if fast then Event.Fast else Event.Slow);
           loads;
         })

let emit_report ~tool ~kind ~addr =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Report { tool; kind; addr })

let emit_phase_begin ~name =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Phase_begin { name })

let emit_phase_end ~name =
  let s = sink () in
  if s.on then Ring.push s.buf (Event.Phase_end { name })
