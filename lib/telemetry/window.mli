(** Sliding-window rate counters: ops/sec over the last [k] closed
    windows, driven entirely by an external clock value (see {!Clock}) so
    the readouts are deterministic under the virtual clock.

    Time is divided into fixed windows of [window_ns]. Observations
    accumulate into the current window; when the clock crosses a window
    boundary the accumulated count is pushed into a ring of the last [k]
    closed windows (empty windows in between are pushed as zeros, so a
    stall shows up as a rate collapse rather than being skipped). *)

type t

val create : window_ns:int -> windows:int -> t
(** [windows >= 1] closed windows are retained; [window_ns >= 1]. *)

val window_ns : t -> int

val record : t -> now_ns:int -> int -> unit
(** [record t ~now_ns n] first rolls any windows the clock has crossed,
    then adds [n] observations to the current window. [now_ns] must be
    monotone non-decreasing across calls. *)

val roll : t -> now_ns:int -> int
(** Close any windows the clock has passed without recording anything;
    returns how many windows were closed by this call. *)

val closed : t -> int
(** Total windows closed so far (monotonic). *)

val last_window_ops : t -> int
(** Observations in the most recently closed window (0 before any). *)

val rate : t -> float
(** Ops/sec averaged over the retained closed windows — at most [k], fewer
    while warming up; 0.0 before the first window closes. *)

val total : t -> int
(** All observations ever recorded, including the open window. *)
