(** Injectable time source for the service plane.

    Two implementations behind one value type: a {e monotonic} clock that
    reads real wall time (for live runs), and a {e virtual} clock that only
    moves when [advance] is called (for tests and CI). Everything in
    [lib/service] takes its notion of "now" from a [t], never from the
    ambient environment, so a service run under the virtual clock is a pure
    function of its seed — latency histograms, sliding windows, SLO
    verdicts and flight-recorder timestamps all reproduce byte-for-byte,
    the same determinism discipline the trace ring's sequence numbers
    follow. *)

type t

val virtual_ : ?start_ns:int -> unit -> t
(** A clock that starts at [start_ns] (default 0) and moves only via
    [advance]. *)

val monotonic : unit -> t
(** Real wall-clock time in nanoseconds since the clock value was created.
    [advance] is a no-op on it. *)

val is_virtual : t -> bool

val now_ns : t -> int
(** Current time in nanoseconds. Monotone non-decreasing for both kinds. *)

val advance : t -> int -> unit
(** [advance t ns] moves a virtual clock forward by [ns] (negative values
    are ignored); no-op on a monotonic clock. *)
