(** Log2-bucketed histograms of non-negative integer observations.

    Bucket 0 holds values [<= 0]; bucket [i >= 1] holds values [v] with
    [floor (log2 v) = i - 1], i.e. the half-open range [2^(i-1), 2^i).
    Exact powers of two therefore open a fresh bucket, matching the
    folding-degree intuition: degree [d] allocations land in bucket
    [d + 1].

    [merge] is a commutative monoid with [create name] as the identity
    (for equal names), so per-run histograms can be folded into a
    campaign-wide one in any order — the qcheck suite holds this to the
    associativity/commutativity/identity laws. *)

type t

val n_buckets : int
val bucket_of_value : int -> int

val bucket_lo : int -> int
(** Smallest value the bucket holds (0 for bucket 0, [2^(i-1)] else). *)

val create : string -> t
(** An empty histogram. The name tags exports and guards [merge]. *)

val name : t -> string
val observe : t -> int -> unit
val count : t -> int
(** Total observations. *)

val sum : t -> int
(** Sum of all observed values. *)

val max_value : t -> int
(** Largest observed value; 0 when empty. *)

val buckets : t -> int array
(** A copy of the per-bucket counts. *)

val reset : t -> unit

val merge : t -> t -> t
(** Pure pairwise sum. Raises [Invalid_argument] on a name mismatch. *)

val equal : t -> t -> bool

val bucket_hi : int -> int
(** Exclusive upper bound of the bucket's value range (1 for bucket 0,
    [2^i] else) — [bucket_lo i, bucket_hi i) is the half-open range. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: locate the bucket holding the order
    statistic at fractional rank [q * (count - 1)] and interpolate
    linearly within its [[bucket_lo, bucket_hi)] range, capped at
    [max_value] (so [quantile t 1.0 = max_value]). 0.0 when empty. The
    qcheck suite checks it against a sorted-array oracle: the readout
    always lands in the same log2 bucket as the true order statistic. *)

val to_assoc : t -> (string * int) list
(** Only non-empty buckets, as [("2^k", count)] pairs with ["0"] for the
    zero bucket; stable order, suitable for golden assertions. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit

(** The per-sanitizer histogram set the runtimes populate whenever the
    telemetry switch is on. *)
type set = {
  h_loads_per_check : t;  (** shadow loads consumed by one region check *)
  h_fold_degree : t;  (** max folding degree written at poison time *)
  h_access_width : t;  (** byte width of each checked access *)
  h_quarantine_residency : t;
      (** free operations a block survived in quarantine before eviction *)
}

val create_set : unit -> set
val reset_set : set -> unit
val merge_set : set -> set -> set
val set_to_list : set -> t list
val set_to_json : set -> Json.t
