type t = {
  sp_name : string;
  sp_wall_ns : int;
  sp_minor_words : float;
  sp_major_words : float;
}

(* Domain-local like the Trace sink: spans recorded on a worker domain land
   in that domain's log and do not race with the main domain's. *)
let log_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let log () = Domain.DLS.get log_key

let with_span name f =
  Trace.emit_phase_begin ~name;
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Unix.gettimeofday () in
      let g1 = Gc.quick_stat () in
      let log = log () in
      log :=
        {
          sp_name = name;
          sp_wall_ns = int_of_float ((t1 -. t0) *. 1e9);
          sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
        }
        :: !log;
      Trace.emit_phase_end ~name)
    f

let completed () = List.rev !(log ())
let reset () = log () := []

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.sp_name);
      ("wall_ns", Json.Int t.sp_wall_ns);
      ("minor_words", Json.Float t.sp_minor_words);
      ("major_words", Json.Float t.sp_major_words);
    ]
