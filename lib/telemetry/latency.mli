(** HDR-style latency histogram: log2 octaves subdivided into 32 linear
    sub-buckets, so any recorded value is represented with at most ~3%
    relative error while the whole 63-bit range fits in a fixed 1888-slot
    array — no allocation per observation, O(buckets) quantile readout.

    Values below 64 ns are recorded {e exactly} (unit-width buckets);
    octave [2^k, 2^(k+1)) for [k >= 6] is split into 32 buckets of width
    [2^(k-5)].

    [merge] is a commutative monoid with [create name] as identity (for
    equal names) — per-tenant histograms fold into the global one in any
    order, which is what keeps the service summary byte-identical across
    [--jobs] values. [quantile] interpolates linearly within the target
    bucket and clamps to the observed [min]/[max], so [quantile t 0.0] and
    [quantile t 1.0] are exact. *)

type t

val n_buckets : int

val bucket_of_value : int -> int
(** Bucket index for a value (negative values clamp to 0). *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] half-open value range of a bucket index. *)

val create : string -> t
val name : t -> string
val observe : t -> int -> unit
val count : t -> int
val sum : t -> int
val max_value : t -> int
val min_value : t -> int
(** Smallest observed value; 0 when empty. *)

val mean : t -> float
val reset : t -> unit

val merge : t -> t -> t
(** Pure pairwise sum; raises [Invalid_argument] on a name mismatch. *)

val merge_as : string -> t -> t -> t
(** [merge] with the name check waived and the result renamed — how the
    per-tenant histograms ("tenant-0", "tenant-1", ...) fold into the
    service's single "global" readout. *)

val equal : t -> t -> bool

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the linearly-interpolated value at
    fractional rank [q * (count - 1)] (the numpy-linear convention),
    clamped to [[min_value, max_value]]. 0.0 on an empty histogram. The
    qcheck suite holds it to the sorted-array oracle at bucket
    granularity. *)

val p50 : t -> float
val p99 : t -> float
val p999 : t -> float

val to_json : t -> Json.t
(** name/count/sum/min/max/mean plus the p50/p90/p99/p999 readouts. *)

val pp : Format.formatter -> t -> unit
