let ndjson_lines events =
  List.map (fun (seq, ev) -> Json.to_string (Event.to_json ~seq ev)) events

let trace_ndjson () = ndjson_lines (Trace.events ())

let check_ndjson_line ?(lax = false) line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
    match (Json.member "ev" json, Json.member "seq" json) with
    | Some (Json.Str ev), Some (Json.Int seq) when seq >= 0 ->
      (* strict by default: an "ev" tag no emitter produces is a lie about
         provenance, not a format quirk — name it instead of nodding *)
      if lax || List.mem ev Event.all_names then Ok ()
      else Error (Printf.sprintf "unknown event kind %S" ev)
    | Some (Json.Str _), _ -> Error "missing or invalid \"seq\" field"
    | _, _ -> Error "missing or invalid \"ev\" field")

let check_ndjson ?(lax = false) text =
  let lines = String.split_on_char '\n' text in
  let rec go i count = function
    | [] -> Ok count
    | line :: rest ->
      let line = String.trim line in
      if line = "" then go (i + 1) count rest
      else (
        match check_ndjson_line ~lax line with
        | Ok () -> go (i + 1) (count + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  go 1 0 lines

(* ------------------------------------------------------------------ *)

let summary_json ?(spans = []) ?(tools = []) () =
  (* Key the tool rows by name, never by caller position: merge duplicate
     names (sum counters field-wise, merge histograms) and sort, so a
     five-backend summary renders identically no matter which backends ran,
     in what order they registered, or how many instances each spawned. *)
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (name, counters, hists) ->
      match Hashtbl.find_opt merged name with
      | None ->
        Hashtbl.replace merged name
          (counters, Histogram.merge_set (Histogram.create_set ()) hists)
      | Some (acc_counters, acc_hists) ->
        let sum =
          List.map
            (fun (k, v) ->
              ( k,
                v
                + (match List.assoc_opt k counters with
                  | Some w -> w
                  | None -> 0) ))
            acc_counters
          @ List.filter
              (fun (k, _) -> not (List.mem_assoc k acc_counters))
              counters
        in
        Hashtbl.replace merged name
          (sum, Histogram.merge_set acc_hists hists))
    tools;
  Hashtbl.iter (fun name _ -> order := name :: !order) merged;
  let names = List.sort_uniq compare !order in
  let tool_json name =
    let counters, hists = Hashtbl.find merged name in
    Json.Obj
      [
        ("tool", Json.Str name);
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
        ("histograms", Histogram.set_to_json hists);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "giantsan-summary/v1");
         ("tools", Json.List (List.map tool_json names));
         ("spans", Json.List (List.map Span.to_json spans));
       ])

(* ------------------------------------------------------------------ *)

type bench_profile = {
  bp_profile : string;
  bp_config : string;
  bp_sim_ns : float;
  bp_ops : int;
  bp_shadow_loads : int;
  bp_shadow_stores : int;
  bp_region_checks : int;
  bp_fast_checks : int;
  bp_slow_checks : int;
  bp_word_checks : int;
}

type service_row = {
  sv_scope : string;
  sv_tenants : int;
  sv_windows : int;
  sv_ops : int;
  sv_errors : int;
  sv_breaches : int;
  sv_ops_per_sec : float;
  sv_latency_p50 : float;
  sv_latency_p99 : float;
  sv_latency_p999 : float;
}

let service_row_json r =
  Json.Obj
    [
      ("scope", Json.Str r.sv_scope);
      ("tenants", Json.Int r.sv_tenants);
      ("windows", Json.Int r.sv_windows);
      ("ops", Json.Int r.sv_ops);
      ("errors", Json.Int r.sv_errors);
      ("breaches", Json.Int r.sv_breaches);
      ("ops_per_sec", Json.Float r.sv_ops_per_sec);
      ("latency_p50", Json.Float r.sv_latency_p50);
      ("latency_p99", Json.Float r.sv_latency_p99);
      ("latency_p999", Json.Float r.sv_latency_p999);
    ]

let bench_json ~groups ~profiles ?(service = []) ?(spans = []) () =
  let group_json (name, rows) =
    Json.Obj
      [
        ("name", Json.Str name);
        ( "results",
          Json.List
            (List.map
               (fun (test, ns) ->
                 Json.Obj
                   [ ("name", Json.Str test); ("ns_per_run", Json.Float ns) ])
               rows) );
      ]
  in
  let profile_json p =
    let checks = p.bp_region_checks in
    let fast_ratio =
      if checks = 0 then 0.0
      else float_of_int p.bp_fast_checks /. float_of_int checks
    in
    Json.Obj
      [
        ("profile", Json.Str p.bp_profile);
        ("config", Json.Str p.bp_config);
        ("sim_ns", Json.Float p.bp_sim_ns);
        ("ops", Json.Int p.bp_ops);
        ( "ns_per_op",
          Json.Float
            (if p.bp_ops = 0 then 0.0
             else p.bp_sim_ns /. float_of_int p.bp_ops) );
        ("shadow_loads", Json.Int p.bp_shadow_loads);
        ("shadow_stores", Json.Int p.bp_shadow_stores);
        ("region_checks", Json.Int checks);
        ("fast_checks", Json.Int p.bp_fast_checks);
        ("slow_checks", Json.Int p.bp_slow_checks);
        ("word_checks", Json.Int p.bp_word_checks);
        ("fast_path_ratio", Json.Float fast_ratio);
        ( "word_path_ratio",
          Json.Float
            (if checks = 0 then 0.0
             else float_of_int p.bp_word_checks /. float_of_int checks) );
      ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.Str "giantsan-bench/v1");
          ("groups", Json.List (List.map group_json groups));
          ("profiles", Json.List (List.map profile_json profiles));
        ]
       @ (if service = [] then []
          else [ ("service", Json.List (List.map service_row_json service)) ])
       @ [ ("spans", Json.List (List.map Span.to_json spans)) ]))

(* Round-trip parser for the [service] section (the sustained-traffic rows
   the [serve] subcommand and the bench export write): used by the export
   round-trip tests and available to external consumers of the schema. *)
let parse_bench_service text =
  match Json.parse text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok json -> (
    let ( let* ) = Result.bind in
    let str k obj =
      match Json.member k obj with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let int_ k obj =
      match Json.member k obj with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "missing int field %S" k)
    in
    let num k obj =
      match Json.member k obj with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "missing numeric field %S" k)
    in
    let row obj =
      let* sv_scope = str "scope" obj in
      let* sv_tenants = int_ "tenants" obj in
      let* sv_windows = int_ "windows" obj in
      let* sv_ops = int_ "ops" obj in
      let* sv_errors = int_ "errors" obj in
      let* sv_breaches = int_ "breaches" obj in
      let* sv_ops_per_sec = num "ops_per_sec" obj in
      let* sv_latency_p50 = num "latency_p50" obj in
      let* sv_latency_p99 = num "latency_p99" obj in
      let* sv_latency_p999 = num "latency_p999" obj in
      Ok
        {
          sv_scope; sv_tenants; sv_windows; sv_ops; sv_errors; sv_breaches;
          sv_ops_per_sec; sv_latency_p50; sv_latency_p99; sv_latency_p999;
        }
    in
    match Json.member "service" json with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc obj ->
          let* acc = acc in
          let* r = row obj in
          Ok (r :: acc))
        (Ok []) l
      |> Result.map List.rev
    | None -> Ok []
    | Some _ -> Error "\"service\" is not a list")

(* ------------------------------------------------------------------ *)
(* Perf gate: compare two BENCH_giantsan.json documents                 *)
(* ------------------------------------------------------------------ *)

(* The gate only reads the [profiles] section. The simulated cost sweep is
   deterministic (seeded specgen, event-count cost model), so the event
   counts must match the baseline exactly and ns/op may drift only within
   the tolerance; the wall-clock bechamel [groups] vary per machine and are
   deliberately not gated. *)

let gate_count_fields =
  [ "ops"; "shadow_loads"; "shadow_stores"; "region_checks"; "fast_checks";
    "slow_checks"; "word_checks" ]

type gate_profile = {
  g_profile : string;
  g_config : string;
  g_ns_per_op : float;
  g_counts : (string * int) list;
}

let parse_bench_profiles text =
  match Json.parse text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok json -> (
    let str k obj =
      match Json.member k obj with Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let num k obj =
      match Json.member k obj with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "missing numeric field %S" k)
    in
    let int_ k obj =
      match Json.member k obj with Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "missing int field %S" k)
    in
    let ( let* ) = Result.bind in
    let profile obj =
      let* p = str "profile" obj in
      let* c = str "config" obj in
      let* ns = num "ns_per_op" obj in
      let* counts =
        List.fold_left
          (fun acc k ->
            let* acc = acc in
            let* v = int_ k obj in
            Ok ((k, v) :: acc))
          (Ok []) gate_count_fields
      in
      Ok { g_profile = p; g_config = c; g_ns_per_op = ns;
           g_counts = List.rev counts }
    in
    match Json.member "profiles" json with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc obj ->
          let* acc = acc in
          let* p = profile obj in
          Ok (p :: acc))
        (Ok []) l
      |> Result.map List.rev
    | _ -> Error "missing \"profiles\" list")

let compare_bench ~tolerance ~baseline ~current =
  match parse_bench_profiles baseline, parse_bench_profiles current with
  | Error e, _ -> Error [ "baseline: " ^ e ]
  | _, Error e -> Error [ "current: " ^ e ]
  | Ok base, Ok cur ->
    let key g = (g.g_profile, g.g_config) in
    let pretty (p, c) = Printf.sprintf "%s/%s" p c in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    List.iter
      (fun b ->
        match List.find_opt (fun c -> key c = key b) cur with
        | None -> fail "%s: missing from current run" (pretty (key b))
        | Some c ->
          List.iter
            (fun (name, bv) ->
              let cv = List.assoc name c.g_counts in
              if cv <> bv then
                fail "%s: %s changed %d -> %d (deterministic count must match)"
                  (pretty (key b)) name bv cv)
            b.g_counts;
          if b.g_ns_per_op > 0.0 then begin
            let ratio = c.g_ns_per_op /. b.g_ns_per_op in
            if ratio > 1.0 +. tolerance then
              fail "%s: ns/op regressed %.2f -> %.2f (%.0f%% > %.0f%% tolerance)"
                (pretty (key b)) b.g_ns_per_op c.g_ns_per_op
                ((ratio -. 1.0) *. 100.0) (tolerance *. 100.0)
            else if ratio < 1.0 -. tolerance then
              fail
                "%s: ns/op improved %.2f -> %.2f beyond tolerance — \
                 re-baseline if intentional"
                (pretty (key b)) b.g_ns_per_op c.g_ns_per_op
          end)
      base;
    List.iter
      (fun c ->
        if not (List.exists (fun b -> key b = key c) base) then
          fail "%s: not in baseline — re-baseline to admit it" (pretty (key c)))
      cur;
    if !failures = [] then Ok (List.length base) else Error (List.rev !failures)

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  output_char oc '\n';
  close_out oc
