let ndjson_lines events =
  List.map (fun (seq, ev) -> Json.to_string (Event.to_json ~seq ev)) events

let trace_ndjson () = ndjson_lines (Trace.events ())

let check_ndjson_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
    match (Json.member "ev" json, Json.member "seq" json) with
    | Some (Json.Str _), Some (Json.Int seq) when seq >= 0 -> Ok ()
    | Some (Json.Str _), _ -> Error "missing or invalid \"seq\" field"
    | _, _ -> Error "missing or invalid \"ev\" field")

let check_ndjson text =
  let lines = String.split_on_char '\n' text in
  let rec go i count = function
    | [] -> Ok count
    | line :: rest ->
      let line = String.trim line in
      if line = "" then go (i + 1) count rest
      else (
        match check_ndjson_line line with
        | Ok () -> go (i + 1) (count + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  go 1 0 lines

(* ------------------------------------------------------------------ *)

let summary_json ?(spans = []) ?(tools = []) () =
  let tool_json (name, counters, hists) =
    Json.Obj
      [
        ("tool", Json.Str name);
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
        ("histograms", Histogram.set_to_json hists);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "giantsan-summary/v1");
         ("tools", Json.List (List.map tool_json tools));
         ("spans", Json.List (List.map Span.to_json spans));
       ])

(* ------------------------------------------------------------------ *)

type bench_profile = {
  bp_profile : string;
  bp_config : string;
  bp_sim_ns : float;
  bp_ops : int;
  bp_shadow_loads : int;
  bp_region_checks : int;
  bp_fast_checks : int;
  bp_slow_checks : int;
}

let bench_json ~groups ~profiles ?(spans = []) () =
  let group_json (name, rows) =
    Json.Obj
      [
        ("name", Json.Str name);
        ( "results",
          Json.List
            (List.map
               (fun (test, ns) ->
                 Json.Obj
                   [ ("name", Json.Str test); ("ns_per_run", Json.Float ns) ])
               rows) );
      ]
  in
  let profile_json p =
    let checks = p.bp_region_checks in
    let fast_ratio =
      if checks = 0 then 0.0
      else float_of_int p.bp_fast_checks /. float_of_int checks
    in
    Json.Obj
      [
        ("profile", Json.Str p.bp_profile);
        ("config", Json.Str p.bp_config);
        ("sim_ns", Json.Float p.bp_sim_ns);
        ("ops", Json.Int p.bp_ops);
        ( "ns_per_op",
          Json.Float
            (if p.bp_ops = 0 then 0.0
             else p.bp_sim_ns /. float_of_int p.bp_ops) );
        ("shadow_loads", Json.Int p.bp_shadow_loads);
        ("region_checks", Json.Int checks);
        ("fast_checks", Json.Int p.bp_fast_checks);
        ("slow_checks", Json.Int p.bp_slow_checks);
        ("fast_path_ratio", Json.Float fast_ratio);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "giantsan-bench/v1");
         ("groups", Json.List (List.map group_json groups));
         ("profiles", Json.List (List.map profile_json profiles));
         ("spans", Json.List (List.map Span.to_json spans));
       ])

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  output_char oc '\n';
  close_out oc
