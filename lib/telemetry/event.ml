type path = Fast | Slow

type t =
  | Malloc of { tool : string; base : int; size : int; kind : string }
  | Free of { tool : string; addr : int }
  | Access of { tool : string; addr : int; width : int; path : path }
  | Shadow_load of { tool : string; count : int }
  | Cache_hit of { tool : string; off : int }
  | Cache_update of { tool : string; ub : int }
  | Region_check of {
      tool : string;
      lo : int;
      hi : int;
      path : path;
      loads : int;
    }
  | Report of { tool : string; kind : string; addr : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }
  (* service-plane events (lib/service): tenant-scoped, stamped with the
     injected clock's virtual/monotonic nanoseconds, not wall time *)
  | Service_op of {
      tenant : int;
      op : string;
      slot : int;
      arg : int;  (** alloc: size; access/region: byte offset *)
      width : int;  (** access: width; region: length; else 0 *)
      latency_ns : int;
      t_ns : int;
    }
  | Service_report of { tenant : int; kind : string; addr : int; t_ns : int }
  | Slo_breach of {
      tenant : int;
      slo : string;
      value : float;
      limit : float;
      t_ns : int;
    }
  | Tenant_state of { tenant : int; state : string; t_ns : int }
  | Tenant_fault of { tenant : int; detail : string; t_ns : int }
  | Tenant_backend of { tenant : int; backend : string; t_ns : int }

let name = function
  | Malloc _ -> "malloc"
  | Free _ -> "free"
  | Access _ -> "access"
  | Shadow_load _ -> "shadow_load"
  | Cache_hit _ -> "cache_hit"
  | Cache_update _ -> "cache_update"
  | Region_check _ -> "region_check"
  | Report _ -> "report"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Service_op _ -> "service_op"
  | Service_report _ -> "service_report"
  | Slo_breach _ -> "slo_breach"
  | Tenant_state _ -> "tenant_state"
  | Tenant_fault _ -> "tenant_fault"
  | Tenant_backend _ -> "tenant_backend"

(* Every kind [name] can produce — the strict check-ndjson validator's
   whitelist. Keep in sync with [name] (the pinned telemetry test renders
   one event of each constructor and validates it strictly). *)
let all_names =
  [
    "malloc"; "free"; "access"; "shadow_load"; "cache_hit"; "cache_update";
    "region_check"; "report"; "phase_begin"; "phase_end"; "service_op";
    "service_report"; "slo_breach"; "tenant_state"; "tenant_fault";
    "tenant_backend";
  ]

let path_name = function Fast -> "fast" | Slow -> "slow"

let to_json ~seq ev =
  let fields =
    match ev with
    | Malloc { tool; base; size; kind } ->
      [
        ("tool", Json.Str tool); ("base", Json.Int base);
        ("size", Json.Int size); ("kind", Json.Str kind);
      ]
    | Free { tool; addr } -> [ ("tool", Json.Str tool); ("addr", Json.Int addr) ]
    | Access { tool; addr; width; path } ->
      [
        ("tool", Json.Str tool); ("addr", Json.Int addr);
        ("width", Json.Int width); ("path", Json.Str (path_name path));
      ]
    | Shadow_load { tool; count } ->
      [ ("tool", Json.Str tool); ("count", Json.Int count) ]
    | Cache_hit { tool; off } ->
      [ ("tool", Json.Str tool); ("off", Json.Int off) ]
    | Cache_update { tool; ub } ->
      [ ("tool", Json.Str tool); ("ub", Json.Int ub) ]
    | Region_check { tool; lo; hi; path; loads } ->
      [
        ("tool", Json.Str tool); ("lo", Json.Int lo); ("hi", Json.Int hi);
        ("path", Json.Str (path_name path)); ("loads", Json.Int loads);
      ]
    | Report { tool; kind; addr } ->
      [
        ("tool", Json.Str tool); ("kind", Json.Str kind);
        ("addr", Json.Int addr);
      ]
    | Phase_begin { name } -> [ ("name", Json.Str name) ]
    | Phase_end { name } -> [ ("name", Json.Str name) ]
    | Service_op { tenant; op; slot; arg; width; latency_ns; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("op", Json.Str op);
        ("slot", Json.Int slot); ("arg", Json.Int arg);
        ("width", Json.Int width); ("latency_ns", Json.Int latency_ns);
        ("t_ns", Json.Int t_ns);
      ]
    | Service_report { tenant; kind; addr; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("kind", Json.Str kind);
        ("addr", Json.Int addr); ("t_ns", Json.Int t_ns);
      ]
    | Slo_breach { tenant; slo; value; limit; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("slo", Json.Str slo);
        ("value", Json.Float value); ("limit", Json.Float limit);
        ("t_ns", Json.Int t_ns);
      ]
    | Tenant_state { tenant; state; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("state", Json.Str state);
        ("t_ns", Json.Int t_ns);
      ]
    | Tenant_fault { tenant; detail; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("detail", Json.Str detail);
        ("t_ns", Json.Int t_ns);
      ]
    | Tenant_backend { tenant; backend; t_ns } ->
      [
        ("tenant", Json.Int tenant); ("backend", Json.Str backend);
        ("t_ns", Json.Int t_ns);
      ]
  in
  Json.Obj
    (("seq", Json.Int seq) :: ("ev", Json.Str (name ev)) :: fields)
