type path = Fast | Slow

type t =
  | Malloc of { tool : string; base : int; size : int; kind : string }
  | Free of { tool : string; addr : int }
  | Access of { tool : string; addr : int; width : int; path : path }
  | Shadow_load of { tool : string; count : int }
  | Cache_hit of { tool : string; off : int }
  | Cache_update of { tool : string; ub : int }
  | Region_check of {
      tool : string;
      lo : int;
      hi : int;
      path : path;
      loads : int;
    }
  | Report of { tool : string; kind : string; addr : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }

let name = function
  | Malloc _ -> "malloc"
  | Free _ -> "free"
  | Access _ -> "access"
  | Shadow_load _ -> "shadow_load"
  | Cache_hit _ -> "cache_hit"
  | Cache_update _ -> "cache_update"
  | Region_check _ -> "region_check"
  | Report _ -> "report"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"

let path_name = function Fast -> "fast" | Slow -> "slow"

let to_json ~seq ev =
  let fields =
    match ev with
    | Malloc { tool; base; size; kind } ->
      [
        ("tool", Json.Str tool); ("base", Json.Int base);
        ("size", Json.Int size); ("kind", Json.Str kind);
      ]
    | Free { tool; addr } -> [ ("tool", Json.Str tool); ("addr", Json.Int addr) ]
    | Access { tool; addr; width; path } ->
      [
        ("tool", Json.Str tool); ("addr", Json.Int addr);
        ("width", Json.Int width); ("path", Json.Str (path_name path));
      ]
    | Shadow_load { tool; count } ->
      [ ("tool", Json.Str tool); ("count", Json.Int count) ]
    | Cache_hit { tool; off } ->
      [ ("tool", Json.Str tool); ("off", Json.Int off) ]
    | Cache_update { tool; ub } ->
      [ ("tool", Json.Str tool); ("ub", Json.Int ub) ]
    | Region_check { tool; lo; hi; path; loads } ->
      [
        ("tool", Json.Str tool); ("lo", Json.Int lo); ("hi", Json.Int hi);
        ("path", Json.Str (path_name path)); ("loads", Json.Int loads);
      ]
    | Report { tool; kind; addr } ->
      [
        ("tool", Json.Str tool); ("kind", Json.Str kind);
        ("addr", Json.Int addr);
      ]
    | Phase_begin { name } -> [ ("name", Json.Str name) ]
    | Phase_end { name } -> [ ("name", Json.Str name) ]
  in
  Json.Obj
    (("seq", Json.Int seq) :: ("ev", Json.Str (name ev)) :: fields)
