(** Span-based phase profiling: wrap an experiment stage in [with_span]
    and the wall-clock duration plus GC allocation deltas are recorded
    into a process-wide log, with matching [Phase_begin]/[Phase_end]
    events in the trace when the sink is on.

    Span records carry real timestamps and therefore never enter the
    deterministic NDJSON trace — they are exported only through
    [summary.json] / [BENCH_giantsan.json], where run-to-run variation is
    expected. *)

type t = {
  sp_name : string;
  sp_wall_ns : int;  (** wall-clock duration *)
  sp_minor_words : float;  (** minor-heap words allocated inside the span *)
  sp_major_words : float;
}

val with_span : string -> (unit -> 'a) -> 'a
(** Nesting is fine; each span records independently. The record is kept
    even when the thunk raises. *)

val completed : unit -> t list
(** All spans closed so far, in completion order. *)

val reset : unit -> unit
val to_json : t -> Json.t
