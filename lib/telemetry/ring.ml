type 'a t = {
  slots : 'a option array;
  mutable next : int;  (* slot the next push writes to *)
  mutable pushed : int;
}

let create ~capacity =
  assert (capacity >= 1);
  { slots = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.slots
let pushed t = t.pushed
let length t = min t.pushed (Array.length t.slots)
let dropped t = t.pushed - length t

let push t x =
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.pushed <- 0

let to_seq_list t =
  let n = length t in
  let cap = Array.length t.slots in
  let first_slot = (t.next - n + cap) mod cap in
  let first_seq = t.pushed - n in
  List.init n (fun i ->
      match t.slots.((first_slot + i) mod cap) with
      | Some x -> (first_seq + i, x)
      | None -> assert false)

let to_list t = List.map snd (to_seq_list t)
