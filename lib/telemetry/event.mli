(** Typed trace events. One constructor per observable runtime action;
    every event carries the emitting tool's name so a multi-tool replay
    interleaves cleanly in one stream. Events carry no timestamps — the
    stream is a pure function of the executed scenario, which is what
    makes same-seed traces byte-identical (the determinism the fuzzer's
    divergence triage relies on). *)

type path = Fast | Slow

type t =
  | Malloc of { tool : string; base : int; size : int; kind : string }
  | Free of { tool : string; addr : int }
  | Access of { tool : string; addr : int; width : int; path : path }
  | Shadow_load of { tool : string; count : int }
  | Cache_hit of { tool : string; off : int }
  | Cache_update of { tool : string; ub : int }
  | Region_check of {
      tool : string;
      lo : int;
      hi : int;
      path : path;
      loads : int;
    }
  | Report of { tool : string; kind : string; addr : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }
  (* Service-plane events ([lib/service]): tenant-scoped and stamped with
     the injected {!Clock}'s nanoseconds ([t_ns]) — virtual in tests/CI,
     so flight-recorder dumps stay byte-deterministic. *)
  | Service_op of {
      tenant : int;
      op : string;  (** "alloc" | "free" | "access" | "region" | "oob" *)
      slot : int;  (** tenant-local pointer register *)
      arg : int;  (** alloc: size; access/region: byte offset; else 0 *)
      width : int;  (** access: width; region: length; else 0 *)
      latency_ns : int;
      t_ns : int;
    }
  | Service_report of { tenant : int; kind : string; addr : int; t_ns : int }
      (** a sanitizer report produced while serving a tenant request *)
  | Slo_breach of {
      tenant : int;
      slo : string;  (** "p999" | "error_rate" | "ops_per_sec" *)
      value : float;
      limit : float;
      t_ns : int;
    }
  | Tenant_state of { tenant : int; state : string; t_ns : int }
      (** watchdog escalation: "breached" / "degraded" / "quarantined" *)
  | Tenant_fault of { tenant : int; detail : string; t_ns : int }
      (** a planted or detected fault attributed to one tenant *)
  | Tenant_backend of { tenant : int; backend : string; t_ns : int }
      (** policy re-partitioning: the tenant was rebuilt on [backend]
          (a {!Giantsan_policy.Backend.name}) *)

val name : t -> string
(** The NDJSON ["ev"] tag: "malloc", "free", "access", "shadow_load",
    "cache_hit", "cache_update", "region_check", "report", "phase_begin",
    "phase_end", "service_op", "service_report", "slo_breach",
    "tenant_state", "tenant_fault", "tenant_backend". *)

val all_names : string list
(** Every tag [name] can produce — the whitelist the strict
    [check-ndjson] validator accepts (unknown kinds are a named error
    unless [--lax]). *)

val path_name : path -> string

val to_json : seq:int -> t -> Json.t
(** One NDJSON line's worth: an object with ["seq"], ["ev"] and the
    event's own fields. *)
