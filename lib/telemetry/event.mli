(** Typed trace events. One constructor per observable runtime action;
    every event carries the emitting tool's name so a multi-tool replay
    interleaves cleanly in one stream. Events carry no timestamps — the
    stream is a pure function of the executed scenario, which is what
    makes same-seed traces byte-identical (the determinism the fuzzer's
    divergence triage relies on). *)

type path = Fast | Slow

type t =
  | Malloc of { tool : string; base : int; size : int; kind : string }
  | Free of { tool : string; addr : int }
  | Access of { tool : string; addr : int; width : int; path : path }
  | Shadow_load of { tool : string; count : int }
  | Cache_hit of { tool : string; off : int }
  | Cache_update of { tool : string; ub : int }
  | Region_check of {
      tool : string;
      lo : int;
      hi : int;
      path : path;
      loads : int;
    }
  | Report of { tool : string; kind : string; addr : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }

val name : t -> string
(** The NDJSON ["ev"] tag: "malloc", "free", "access", "shadow_load",
    "cache_hit", "cache_update", "region_check", "report", "phase_begin",
    "phase_end". *)

val path_name : path -> string

val to_json : seq:int -> t -> Json.t
(** One NDJSON line's worth: an object with ["seq"], ["ev"] and the
    event's own fields. *)
