type 'a field = {
  f_name : string;
  f_get : 'a -> int;
  f_set : 'a -> int -> unit;
}

let field f_name f_get f_set = { f_name; f_get; f_set }

type 'a spec = 'a field list

let names spec = List.map (fun f -> f.f_name) spec
let reset spec t = List.iter (fun f -> f.f_set t 0) spec

let add spec acc x =
  List.iter (fun f -> f.f_set acc (f.f_get acc + f.f_get x)) spec

let to_assoc spec t = List.map (fun f -> (f.f_name, f.f_get t)) spec

let get spec name t =
  match List.find_opt (fun f -> f.f_name = name) spec with
  | Some f -> f.f_get t
  | None -> raise Not_found

let sum spec ~names t =
  List.fold_left (fun acc name -> acc + get spec name t) 0 names

let pp spec ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-16s %d@," k v)
    (to_assoc spec t);
  Format.fprintf ppf "@]"

let to_json spec t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_assoc spec t))
