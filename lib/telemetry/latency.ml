(* 32 linear sub-buckets per octave: relative error <= 1/32. Values below
   2*32 = 64 get unit buckets; octave k >= 6 has 32 buckets of width
   2^(k-5). The top octave of a 63-bit int lands at index 57*32 + 63. *)
let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let unit_limit = 2 * sub_count (* 64: exact below this *)
let n_buckets = 59 * sub_count

let bits v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_of_value v =
  if v < unit_limit then max 0 v
  else begin
    let shift = bits v - sub_bits - 1 in
    (shift * sub_count) + (v lsr shift)
  end

let bucket_bounds i =
  if i < unit_limit then (i, i + 1)
  else begin
    let shift = (i / sub_count) - 1 in
    let lo = (i - (shift * sub_count)) lsl shift in
    (lo, lo + (1 lsl shift))
  end

type t = {
  l_name : string;
  l_buckets : int array;
  mutable l_count : int;
  mutable l_sum : int;
  mutable l_min : int;
  mutable l_max : int;
}

let create name =
  {
    l_name = name;
    l_buckets = Array.make n_buckets 0;
    l_count = 0;
    l_sum = 0;
    l_min = 0;
    l_max = 0;
  }

let name t = t.l_name

let observe t v =
  let v = max 0 v in
  let b = bucket_of_value v in
  t.l_buckets.(b) <- t.l_buckets.(b) + 1;
  if t.l_count = 0 || v < t.l_min then t.l_min <- v;
  if v > t.l_max then t.l_max <- v;
  t.l_count <- t.l_count + 1;
  t.l_sum <- t.l_sum + v

let count t = t.l_count
let sum t = t.l_sum
let max_value t = t.l_max
let min_value t = t.l_min
let mean t = if t.l_count = 0 then 0.0 else float_of_int t.l_sum /. float_of_int t.l_count

let reset t =
  Array.fill t.l_buckets 0 n_buckets 0;
  t.l_count <- 0;
  t.l_sum <- 0;
  t.l_min <- 0;
  t.l_max <- 0

let merge_as name a b =
  let r = create name in
  Array.iteri (fun i v -> r.l_buckets.(i) <- v + b.l_buckets.(i)) a.l_buckets;
  r.l_count <- a.l_count + b.l_count;
  r.l_sum <- a.l_sum + b.l_sum;
  r.l_max <- max a.l_max b.l_max;
  r.l_min <-
    (if a.l_count = 0 then b.l_min
     else if b.l_count = 0 then a.l_min
     else min a.l_min b.l_min);
  r

let merge a b =
  if a.l_name <> b.l_name then
    invalid_arg (Printf.sprintf "Latency.merge: %s vs %s" a.l_name b.l_name);
  merge_as a.l_name a b

let equal a b =
  a.l_name = b.l_name && a.l_count = b.l_count && a.l_sum = b.l_sum
  && a.l_min = b.l_min && a.l_max = b.l_max && a.l_buckets = b.l_buckets

let quantile t q =
  if t.l_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int (t.l_count - 1) in
    (* find the bucket holding order statistic floor(rank) *)
    let rec find i cum =
      let c = t.l_buckets.(i) in
      if float_of_int (cum + c) > rank then (i, cum, c)
      else find (i + 1) (cum + c)
    in
    let i, cum, c = find 0 0 in
    let lo, hi = bucket_bounds i in
    let pos = (rank -. float_of_int cum) /. float_of_int c in
    let v = float_of_int lo +. (pos *. float_of_int (hi - lo)) in
    Float.max (float_of_int t.l_min) (Float.min (float_of_int t.l_max) v)
  end

let p50 t = quantile t 0.5
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.l_name);
      ("count", Json.Int t.l_count);
      ("sum", Json.Int t.l_sum);
      ("min", Json.Int t.l_min);
      ("max", Json.Int t.l_max);
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (p50 t));
      ("p90", Json.Float (quantile t 0.9));
      ("p99", Json.Float (p99 t));
      ("p999", Json.Float (p999 t));
    ]

let pp ppf t =
  Format.fprintf ppf
    "%s (n=%d, min=%d, max=%d, mean=%.1f, p50=%.1f, p99=%.1f, p999=%.1f)"
    t.l_name t.l_count t.l_min t.l_max (mean t) (p50 t) (p99 t) (p999 t)
