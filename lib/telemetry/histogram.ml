(* 63 value buckets cover every positive OCaml int; +1 for the <=0 bucket. *)
let n_buckets = 64

type t = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let bucket_of_value v =
  if v <= 0 then 0
  else begin
    (* floor (log2 v) + 1, by bit position *)
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let create name =
  { h_name = name; h_buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0; h_max = 0 }

let name t = t.h_name

let observe t v =
  let b = bucket_of_value v in
  t.h_buckets.(b) <- t.h_buckets.(b) + 1;
  t.h_count <- t.h_count + 1;
  t.h_sum <- t.h_sum + v;
  if v > t.h_max then t.h_max <- v

let count t = t.h_count
let sum t = t.h_sum
let max_value t = t.h_max
let buckets t = Array.copy t.h_buckets

let reset t =
  Array.fill t.h_buckets 0 n_buckets 0;
  t.h_count <- 0;
  t.h_sum <- 0;
  t.h_max <- 0

let merge a b =
  if a.h_name <> b.h_name then
    invalid_arg
      (Printf.sprintf "Histogram.merge: %s vs %s" a.h_name b.h_name);
  let r = create a.h_name in
  Array.iteri (fun i v -> r.h_buckets.(i) <- v + b.h_buckets.(i)) a.h_buckets;
  r.h_count <- a.h_count + b.h_count;
  r.h_sum <- a.h_sum + b.h_sum;
  r.h_max <- max a.h_max b.h_max;
  r

let equal a b =
  a.h_name = b.h_name && a.h_buckets = b.h_buckets && a.h_count = b.h_count
  && a.h_sum = b.h_sum && a.h_max = b.h_max

(* half-open value range of bucket [i]: [0,1) for the zero bucket,
   [2^(i-1), 2^i) above it *)
let bucket_hi i = if i <= 0 then 1 else 1 lsl i

let quantile t q =
  if t.h_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int (t.h_count - 1) in
    (* the bucket holding order statistic floor(rank), by cumulative count *)
    let rec find i cum =
      let c = t.h_buckets.(i) in
      if float_of_int (cum + c) > rank then (i, cum, c)
      else find (i + 1) (cum + c)
    in
    let i, cum, c = find 0 0 in
    let lo = bucket_lo i and hi = bucket_hi i in
    let pos = (rank -. float_of_int cum) /. float_of_int c in
    let v = float_of_int lo +. (pos *. float_of_int (hi - lo)) in
    (* the log2 bucket only bounds the value; never report past the
       observed maximum (makes [quantile t 1.0] exact) *)
    Float.min v (float_of_int t.h_max)
  end

let bucket_label i = if i = 0 then "0" else Printf.sprintf "2^%d" (i - 1)

let to_assoc t =
  List.filter_map
    (fun i ->
      if t.h_buckets.(i) = 0 then None
      else Some (bucket_label i, t.h_buckets.(i)))
    (List.init n_buckets Fun.id)

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.h_name);
      ("count", Json.Int t.h_count);
      ("sum", Json.Int t.h_sum);
      ("max", Json.Int t.h_max);
      ( "buckets",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_assoc t)) );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (n=%d, sum=%d, max=%d)@," t.h_name t.h_count
    t.h_sum t.h_max;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %-6s %d@," k v)
    (to_assoc t);
  Format.fprintf ppf "@]"

type set = {
  h_loads_per_check : t;
  h_fold_degree : t;
  h_access_width : t;
  h_quarantine_residency : t;
}

let create_set () =
  {
    h_loads_per_check = create "loads_per_region_check";
    h_fold_degree = create "fold_degree_at_poison";
    h_access_width = create "access_width";
    h_quarantine_residency = create "quarantine_residency";
  }

let reset_set s =
  reset s.h_loads_per_check;
  reset s.h_fold_degree;
  reset s.h_access_width;
  reset s.h_quarantine_residency

let merge_set a b =
  {
    h_loads_per_check = merge a.h_loads_per_check b.h_loads_per_check;
    h_fold_degree = merge a.h_fold_degree b.h_fold_degree;
    h_access_width = merge a.h_access_width b.h_access_width;
    h_quarantine_residency =
      merge a.h_quarantine_residency b.h_quarantine_residency;
  }

let set_to_list s =
  [
    s.h_loads_per_check; s.h_fold_degree; s.h_access_width;
    s.h_quarantine_residency;
  ]

let set_to_json s = Json.List (List.map to_json (set_to_list s))
