(** A minimal JSON value, printer and parser — just enough to write the
    telemetry exports and validate them back, with no external dependency.
    The printer escapes strings per RFC 8259; the parser accepts the full
    grammar (objects, arrays, strings with escapes, numbers, literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering — one call per NDJSON line. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON document; trailing non-whitespace is an error.
    Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)
