type t =
  | Virtual of { mutable now : int }
  | Monotonic of { epoch : float }

let virtual_ ?(start_ns = 0) () = Virtual { now = start_ns }

let monotonic () = Monotonic { epoch = Unix.gettimeofday () }

let is_virtual = function Virtual _ -> true | Monotonic _ -> false

let now_ns = function
  | Virtual v -> v.now
  | Monotonic { epoch } ->
    int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let advance t ns =
  match t with
  | Virtual v -> if ns > 0 then v.now <- v.now + ns
  | Monotonic _ -> ()
