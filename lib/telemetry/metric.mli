(** Declarative metric registry for mutable counter records.

    A record of [int] counters declares its fields once, as a [spec] of
    (name, getter, setter) triples; [reset], [add], [to_assoc], [pp] and
    [to_json] are all derived from that single list, so the operations can
    never drift from the field set (the failure mode the hand-written
    Counters boilerplate invited: add a field, forget one of the four
    copies). The derived [add] is a commutative monoid with the all-zero
    record as identity, which the qcheck suites verify on the concrete
    instance. *)

type 'a field

val field : string -> ('a -> int) -> ('a -> int -> unit) -> 'a field

type 'a spec = 'a field list

val names : 'a spec -> string list

val reset : 'a spec -> 'a -> unit
(** Set every declared field to 0. *)

val add : 'a spec -> 'a -> 'a -> unit
(** [add spec acc x] accumulates every declared field of [x] into [acc];
    [x] is left untouched. *)

val to_assoc : 'a spec -> 'a -> (string * int) list
(** In declaration order. *)

val get : 'a spec -> string -> 'a -> int
(** [get spec name t] reads one declared field; raises [Not_found] for an
    undeclared name. *)

val sum : 'a spec -> names:string list -> 'a -> int
(** Sum of the named fields; raises [Not_found] on an undeclared name. *)

val pp : 'a spec -> Format.formatter -> 'a -> unit

val to_json : 'a spec -> 'a -> Json.t
