(** Exporters: turn the in-memory telemetry (trace ring, counters,
    histograms, spans, bench rows) into NDJSON / JSON files, plus the
    line-by-line NDJSON checker the CI gate runs over every dump. *)

val ndjson_lines : (int * Event.t) list -> string list
(** One compact JSON object per event, in order. *)

val trace_ndjson : unit -> string list
(** [ndjson_lines] of the current global sink contents. *)

val check_ndjson_line : ?lax:bool -> string -> (unit, string) result
(** A valid trace line is one JSON object with an ["ev"] string field and
    a non-negative ["seq"] int field — and, unless [lax] (default
    [false]), the ["ev"] value must be one of {!Event.all_names}: an
    unknown kind fails with a named [unknown event kind] error instead of
    being accepted silently. *)

val check_ndjson : ?lax:bool -> string -> (int, string) result
(** Validate a whole NDJSON document (empty lines allowed); returns the
    number of event lines or the first error, prefixed with its line
    number. [lax] is the escape hatch for foreign dumps with event kinds
    this build does not know (the CLI exposes it as [--lax]). *)

(** {1 summary.json} *)

val summary_json :
  ?spans:Span.t list ->
  ?tools:(string * (string * int) list * Histogram.set) list ->
  unit ->
  string
(** Metrics snapshot: per-tool aggregated counters and histograms plus the
    completed spans. [tools] entries are (tool name, counters assoc,
    histogram set). Rows are keyed by tool name — duplicates are merged
    (counters summed, histograms merged) and the output is sorted by name,
    so the document is independent of registration order and stable when a
    backend is skipped. *)

(** {1 BENCH_giantsan.json} *)

type bench_profile = {
  bp_profile : string;
  bp_config : string;
  bp_sim_ns : float;  (** simulated ns for the whole profile run *)
  bp_ops : int;
  bp_shadow_loads : int;
  bp_shadow_stores : int;  (** metadata stores (poisoning traffic) *)
  bp_region_checks : int;
  bp_fast_checks : int;
  bp_slow_checks : int;
  bp_word_checks : int;
      (** fast checks settled by the word kernel (one 8-byte shadow load);
          a subdivision of [bp_fast_checks], exported with its own
          [word_path_ratio] *)
}

type service_row = {
  sv_scope : string;  (** ["global"] or ["tenant-N"] *)
  sv_tenants : int;
  sv_windows : int;  (** closed rate windows the row aggregates *)
  sv_ops : int;
  sv_errors : int;  (** sanitizer reports produced while serving *)
  sv_breaches : int;  (** SLO breach events *)
  sv_ops_per_sec : float;  (** sustained throughput over the run *)
  sv_latency_p50 : float;  (** ns, from the HDR latency histogram *)
  sv_latency_p99 : float;
  sv_latency_p999 : float;
}
(** One row of the [service] section: the sustained-traffic numbers the
    ROADMAP's service mode is measured by. *)

val bench_json :
  groups:(string * (string * float) list) list ->
  profiles:bench_profile list ->
  ?service:service_row list ->
  ?spans:Span.t list ->
  unit ->
  string
(** The BENCH_giantsan.json document: wall-clock ns/run per bechamel test
    (grouped), per-profile simulated cost with ns/op, shadow loads and
    fast-path ratio, the optional [service] sustained-traffic rows
    (latency percentiles + ops/sec), and optional spans. Schema documented
    in EXPERIMENTS.md. *)

val parse_bench_service : string -> (service_row list, string) result
(** Parse the [service] section back out of a BENCH_giantsan.json document
    ([Ok []] when the section is absent) — the export round-trip tests
    hold [bench_json]/[parse_bench_service] to a lossless loop. *)

(** {1 Performance regression gate}

    The profile sweep is deterministic — seeded scenario generation feeding
    the event-count cost model — so its event counts must reproduce exactly
    and [ns_per_op] may move only within a tolerance (cost-model drift).
    The wall-clock bechamel groups vary per machine and are not gated. *)

val gate_count_fields : string list
(** The per-profile fields the gate requires to match exactly:
    ops, shadow loads/stores, region/fast/slow/word check counts. *)

type gate_profile = {
  g_profile : string;
  g_config : string;
  g_ns_per_op : float;
  g_counts : (string * int) list;  (** in [gate_count_fields] order *)
}

val parse_bench_profiles : string -> (gate_profile list, string) result
(** Parse the [profiles] section of a BENCH_giantsan.json document into
    gate rows — what [compare_bench] diffs and the fig11 CI gate reads. *)

val compare_bench :
  tolerance:float -> baseline:string -> current:string ->
  (int, string list) result
(** [compare_bench ~tolerance ~baseline ~current] parses two
    BENCH_giantsan.json documents and checks every baseline profile row
    against the current run: exact equality on [gate_count_fields], and
    [ns_per_op] within [±tolerance] (relative). Rows missing from either
    side fail. Returns the number of compared rows, or the list of
    failures. *)

val write_file : string -> string -> unit
(** [write_file path body] truncates and writes (with a trailing
    newline). *)
