type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then
      (* JSON has no nan/infinity literal; null keeps the document valid *)
      Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "dangling escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub text !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "bad \\u escape"
               | Some code ->
                 (* keep it simple: store the low byte for codes < 256,
                    '?' otherwise (exports never emit higher ones) *)
                 Buffer.add_char buf
                   (if code < 256 then Char.chr code else '?');
                 pos := !pos + 4)
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
