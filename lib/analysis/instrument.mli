(** Check-instance generation (§4.4): turn a program into an instrumentation
    plan for a given tool.

    The pipeline mirrors Figure 8: first every access conceptually gets an
    instruction-level check, then static analysis upgrades or removes them:

    - {b aliased-check merging}: const-offset accesses off the same pointer
      in straight-line code become one span check — [p\[0\]] and [p\[1\]]
      collapse to [CI(p, p+16)] (GiantSan; ASan-- can only drop exact
      duplicates since its checks are instruction-level);
    - {b check-in-loop promotion}: a counted loop with an affine subscript
      and invariant bounds gets one preheader region check covering the
      whole footprint — the [CI(x, x+4N)] of Figure 8c (ASan-- can only
      hoist loop-invariant addresses);
    - {b history caching}: everything in a loop that cannot be promoted
      (unbounded loop, data-dependent subscript) is routed through the
      quasi-bound cache when the tool has one;
    - the rest stays a plain per-access check. *)

type mode =
  | Native  (** no checks (the overhead baseline) *)
  | Asan  (** instruction-level checks everywhere *)
  | Asanmm  (** ASan--: ASan minus statically redundant checks *)
  | Lfp
      (** pointer-derived bounds checks at every access; the plan passes the
          base pointer through (LFP needs to know which pointer the bounds
          derive from) but no static optimization applies *)
  | Pac
      (** tagged-pointer authentication at every access; like LFP the plan
          threads the base pointer through (the check authenticates the
          pointer's signing allocation) and no static optimization applies *)
  | Giantsan  (** merging + promotion + caching + anchors *)
  | Giantsan_cache_only  (** ablation: caching, no merging/promotion *)
  | Giantsan_elim_only  (** ablation: merging/promotion, no caching *)

val mode_name : mode -> string
val plan : mode -> Giantsan_ir.Ast.program -> Plan.t
