module Ast = Giantsan_ir.Ast

type mode =
  | Native
  | Asan
  | Asanmm
  | Lfp
  | Pac
  | Giantsan
  | Giantsan_cache_only
  | Giantsan_elim_only

let mode_name = function
  | Native -> "Native"
  | Asan -> "ASan"
  | Asanmm -> "ASan--"
  | Lfp -> "LFP"
  | Pac -> "PAC"
  | Giantsan -> "GiantSan"
  | Giantsan_cache_only -> "GiantSan-CacheOnly"
  | Giantsan_elim_only -> "GiantSan-ElimOnly"

(* Capability matrix: which static optimizations each tool can express. *)
type caps = {
  anchor : bool;
  cache : bool;
  promote_affine : bool;
  promote_invariant : bool;
  promote_endpoints : bool;
      (** ASan--'s bounded-loop optimization: instead of one O(1) region
          check (which instruction-level tools lack), check only the first
          and last accesses of a monotonic affine loop *)
  merge_span : bool;
  dedupe : bool;
}

let caps_of = function
  | Native | Asan ->
    {
      anchor = false;
      cache = false;
      promote_affine = false;
      promote_invariant = false;
      promote_endpoints = false;
      merge_span = false;
      dedupe = false;
    }
  | Asanmm ->
    {
      anchor = false;
      cache = false;
      promote_affine = false;
      promote_invariant = true;
      promote_endpoints = true;
      merge_span = false;
      dedupe = true;
    }
  | Lfp | Pac ->
    (* both derive checks from the pointer's provenance (LFP its bound
       table, PAC its signature), so both want the anchor threaded
       through; neither instruments loops or merges spans *)
    {
      anchor = true;
      cache = false;
      promote_affine = false;
      promote_invariant = false;
      promote_endpoints = false;
      merge_span = false;
      dedupe = false;
    }
  | Giantsan ->
    {
      anchor = true;
      cache = true;
      promote_affine = true;
      promote_invariant = true;
      promote_endpoints = false;
      merge_span = true;
      dedupe = true;
    }
  | Giantsan_cache_only ->
    {
      anchor = true;
      cache = true;
      promote_affine = false;
      promote_invariant = false;
      promote_endpoints = false;
      merge_span = false;
      dedupe = false;
    }
  | Giantsan_elim_only ->
    {
      anchor = true;
      cache = false;
      promote_affine = true;
      promote_invariant = true;
      promote_endpoints = false;
      merge_span = true;
      dedupe = true;
    }

type loop_ctx = {
  l_id : int;
  l_kind : [ `For of string * Ast.expr * Ast.expr | `While ];
      (** for-loops carry (idx, lo, hi) *)
  l_assigned : string list;  (** variables the loop body may write, + idx *)
  l_has_free : bool;
}

(* Anything that could deallocate or escape the loop mid-iteration makes
   footprint promotion unsound: frees (obviously), calls (the callee may
   free — the analysis is intra-procedural), and returns (later iterations
   may never run, so their footprint must not be checked up front). *)
let rec block_has_free stmts =
  List.exists
    (fun s ->
      match s with
      | Ast.Free _ | Ast.Call _ | Ast.Return _ -> true
      | Ast.Malloc _ | Ast.Alloca _ | Ast.Assign _ | Ast.Store _ | Ast.Memset _
      | Ast.Memcpy _ ->
        false
      | Ast.For { body; _ } | Ast.While { body; _ } -> block_has_free body
      | Ast.If { then_; else_; _ } ->
        block_has_free then_ || block_has_free else_)
    stmts

let expr_plus a b = Affine.simplify (Ast.Bin (Ast.Add, a, b))
let expr_mul k e = Affine.simplify (Ast.Bin (Ast.Mul, Ast.Int k, e))

(* The promoted footprint of [a*idx + rest] for idx in [lo, hi), access
   width w: a region [min_off, max_off + w) in byte offsets off the base. *)
let promoted_region (acc : Ast.access) ~a ~rest ~lo ~hi =
  let w = Ast.bytes_of_width acc.Ast.width in
  let at_lo = expr_plus (expr_mul a lo) rest in
  let at_last =
    expr_plus (expr_mul a (Affine.simplify (Ast.Bin (Ast.Sub, hi, Ast.Int 1)))) rest
  in
  let rg_lo, rg_last = if a >= 0 then (at_lo, at_last) else (at_last, at_lo) in
  {
    Plan.rg_base = acc.Ast.base;
    rg_lo;
    rg_hi = expr_plus rg_last (Ast.Int w);
  }

(* Two point checks at the loop's first and last accesses — all an
   instruction-level tool (ASan--) can hoist for a monotonic affine loop. *)
let endpoint_regions (acc : Ast.access) ~a ~rest ~lo ~hi =
  let w = Ast.bytes_of_width acc.Ast.width in
  let at_lo = expr_plus (expr_mul a lo) rest in
  let at_last =
    expr_plus (expr_mul a (Affine.simplify (Ast.Bin (Ast.Sub, hi, Ast.Int 1)))) rest
  in
  [
    { Plan.rg_base = acc.Ast.base; rg_lo = at_lo; rg_hi = expr_plus at_lo (Ast.Int w) };
    {
      Plan.rg_base = acc.Ast.base;
      rg_lo = at_last;
      rg_hi = expr_plus at_last (Ast.Int w);
    };
  ]

(* Try check-in-loop promotion of [acc] against the innermost loop.
   Returns the preheader checks replacing the per-iteration one. *)
let try_promote caps ~is_store (loop : loop_ctx) (acc : Ast.access) =
  match loop.l_kind with
  | `While -> None
  | `For (idx, lo, hi) ->
    if loop.l_has_free then None
    else if List.mem acc.Ast.base loop.l_assigned then None
    else if
      not
        (Affine.is_invariant ~assigned:loop.l_assigned lo
        && Affine.is_invariant ~assigned:loop.l_assigned hi)
    then None
    else (
      match Affine.byte_offset ~idx acc with
      | None -> None
      | Some (a, rest) ->
        if not (Affine.is_invariant ~assigned:loop.l_assigned rest) then None
        else if a = 0 && (caps.promote_affine || caps.promote_invariant) then
          Some [ promoted_region acc ~a ~rest ~lo ~hi ]
        else if a <> 0 && caps.promote_affine then
          Some [ promoted_region acc ~a ~rest ~lo ~hi ]
        else if a <> 0 && caps.promote_endpoints && not is_store then
          (* ASan-- only trusts first+last elision for reads; stores keep
             their per-iteration checks *)
          Some (endpoint_regions acc ~a ~rest ~lo ~hi)
        else None)

(* Straight-line window for aliased-check merging: per base variable, the
   const-offset accesses seen since the last barrier. *)
type window_entry = { w_acc : int; w_off : int; w_width : int }

let const_byte_offset (acc : Ast.access) =
  Option.map
    (fun i -> (i * acc.Ast.scale) + acc.Ast.disp)
    (Affine.const_eval acc.Ast.index)

let plan mode prog =
  let caps = caps_of mode in
  let enabled = mode <> Native in
  let t =
    Plan.create ~mode_name:(mode_name mode) ~enabled ~use_anchor:caps.anchor
  in
  if enabled then begin
    (* Everything starts instruction-level (Figure 8b)... *)
    List.iter
      (fun (acc : Ast.access) -> Plan.set_decision t acc.Ast.acc_id Plan.Plain)
      (Ast.program_accesses prog);
    (* ... then the analyses upgrade or remove checks (Figure 8c). *)
    let rec process_block ~loops ~under_if stmts =
      let window : (string, window_entry list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let flush_window () =
        Hashtbl.iter
          (fun base entries ->
            let entries = List.rev !entries in
            if caps.merge_span && List.length entries >= 2 then begin
              let lo =
                List.fold_left (fun m e -> min m e.w_off) max_int entries
              in
              let hi =
                List.fold_left
                  (fun m e -> max m (e.w_off + e.w_width))
                  min_int entries
              in
              let first = (List.hd entries).w_acc in
              Plan.add_stmt_pre t first
                { Plan.rg_base = base; rg_lo = Ast.Int lo; rg_hi = Ast.Int hi };
              List.iter
                (fun e -> Plan.set_decision t e.w_acc Plan.Eliminated)
                entries
            end
            else if caps.dedupe then begin
              (* keep the first check at each (offset, covering width);
                 drop later dominated duplicates *)
              let seen : (int, int) Hashtbl.t = Hashtbl.create 4 in
              List.iter
                (fun e ->
                  match Hashtbl.find_opt seen e.w_off with
                  | Some w when e.w_width <= w ->
                    Plan.set_decision t e.w_acc Plan.Eliminated
                  | _ -> Hashtbl.replace seen e.w_off e.w_width)
                entries
            end)
          window;
        Hashtbl.reset window
      in
      (* straight-line copy propagation: after [q = p], accesses through q
         must-alias accesses through p and may merge with them. [copies]
         maps an alias to its root; window groups are keyed by roots. *)
      let copies : (string, string) Hashtbl.t = Hashtbl.create 4 in
      let resolve v =
        match Hashtbl.find_opt copies v with Some r -> r | None -> v
      in
      let barrier_var v =
        (* v stops being an alias of anything *)
        Hashtbl.remove copies v;
        (* and if v was a root, its aliases and window group die with it *)
        let stale =
          Hashtbl.fold (fun a r acc -> if r = v then a :: acc else acc) copies []
        in
        List.iter (Hashtbl.remove copies) stale;
        Hashtbl.remove window v
      in
      let note_copy v w =
        barrier_var v;
        let root = resolve w in
        if root <> v then Hashtbl.replace copies v root
      in
      let note_access ?(is_store = false) (acc : Ast.access) =
        let acc = { acc with Ast.base = resolve acc.Ast.base } in
        (* First: loop-level decision. *)
        (match loops with
        | [] -> ()
        | innermost :: _ -> (
          let promoted =
            if under_if then None
            else try_promote caps ~is_store innermost acc
          in
          match promoted with
          | Some regions ->
            Plan.set_decision t acc.Ast.acc_id Plan.Eliminated;
            List.iter (Plan.add_loop_pre t innermost.l_id) regions
          | None ->
            if caps.cache && not (List.mem acc.Ast.base innermost.l_assigned)
            then begin
              Plan.set_decision t acc.Ast.acc_id Plan.Cached;
              Plan.add_loop_cache t innermost.l_id acc.Ast.base
            end));
        (* Second: feed still-plain const-offset accesses to the window. *)
        if Plan.decision_of t acc.Ast.acc_id = Plan.Plain then
          match const_byte_offset acc with
          | Some off ->
            let entry =
              {
                w_acc = acc.Ast.acc_id;
                w_off = off;
                w_width = Ast.bytes_of_width acc.Ast.width;
              }
            in
            (match Hashtbl.find_opt window acc.Ast.base with
            | Some cell -> cell := entry :: !cell
            | None -> Hashtbl.add window acc.Ast.base (ref [ entry ]))
          | None -> ()
      in
      let note_expr e = List.iter note_access (Ast.expr_accesses e) in
      List.iter
        (fun stmt ->
          match stmt with
          | Ast.Assign (v, Ast.Var w) when v <> w ->
            (* a pointer copy: v must-aliases w from here on *)
            note_copy v w
          | Ast.Assign (v, e) ->
            note_expr e;
            barrier_var v
          | Ast.Store (acc, e) ->
            note_expr acc.Ast.index;
            note_access ~is_store:true acc;
            note_expr e
          | Ast.Malloc (v, e) | Ast.Alloca (v, e) ->
            note_expr e;
            barrier_var v
          | Ast.Free e ->
            note_expr e;
            flush_window ()
          | Ast.Call { dst; args; _ } ->
            List.iter note_expr args;
            (* the callee may free anything: merge across calls is unsafe *)
            flush_window ();
            Option.iter barrier_var dst
          | Ast.Return e ->
            Option.iter note_expr e;
            flush_window ()
          | Ast.Memset { doff; len; value; _ } ->
            note_expr doff;
            note_expr len;
            note_expr value;
            flush_window ()
          | Ast.Memcpy { doff; soff; len; _ } ->
            note_expr doff;
            note_expr soff;
            note_expr len;
            flush_window ()
          | Ast.For { loop_id; idx; lo; hi; body } ->
            note_expr lo;
            note_expr hi;
            flush_window ();
            let ctx =
              {
                l_id = loop_id;
                l_kind = `For (idx, lo, hi);
                l_assigned = idx :: Ast.assigned_vars body;
                l_has_free = block_has_free body;
              }
            in
            process_block ~loops:(ctx :: loops) ~under_if:false body
          | Ast.While { loop_id; cond; body } ->
            flush_window ();
            let ctx =
              {
                l_id = loop_id;
                l_kind = `While;
                l_assigned = Ast.assigned_vars body;
                l_has_free = block_has_free body;
              }
            in
            (* the condition is evaluated inside the loop *)
            List.iter
              (fun acc ->
                if
                  caps.cache
                  && not (List.mem acc.Ast.base ctx.l_assigned)
                then begin
                  Plan.set_decision t acc.Ast.acc_id Plan.Cached;
                  Plan.add_loop_cache t ctx.l_id acc.Ast.base
                end)
              (Ast.expr_accesses cond);
            process_block ~loops:(ctx :: loops) ~under_if:false body
          | Ast.If { cond; then_; else_ } ->
            note_expr cond;
            flush_window ();
            process_block ~loops ~under_if:true then_;
            process_block ~loops ~under_if:true else_)
        stmts;
      flush_window ()
    in
    (* intra-procedural: each function body is analysed on its own *)
    List.iter
      (fun (f : Ast.func) ->
        process_block ~loops:[] ~under_if:false f.Ast.fn_body)
      prog.Ast.funcs;
    process_block ~loops:[] ~under_if:false prog.Ast.body
  end;
  t
