(** FIFO quarantine for freed heap blocks, as in ASan: a freed block's memory
    is kept poisoned (not reusable) until the total quarantined byte count
    exceeds a budget, at which point the oldest blocks are evicted and become
    reusable again. Temporal-error detection holds only while a block sits in
    the queue — eviction opens the (rare) bypass window the paper discusses
    in §5.4. *)

type t

val create : budget:int -> t
(** [budget] is the maximum number of bytes held in quarantine. The newest
    entry is always retained regardless of the budget (see {!push}); a
    budget of [0] therefore behaves as a one-deep quarantine — each push
    evicts the previous entry, never the new one. *)

val push : t -> Memobj.t -> Memobj.t list
(** Enqueue a freed object's block; returns the {e older} objects evicted
    to stay within budget. The just-pushed block is never part of the
    eviction list: a block bigger than the whole budget stays quarantined
    anyway (counted by {!bypasses}), so the use-after-free detection window
    never silently collapses to zero for large blocks. *)

val flush : t -> Memobj.t list
(** Evict everything (teardown, or allocator pressure — see
    [Heap.pressure_flushes]). *)

val bytes_held : t -> int
val length : t -> int

val ids : t -> int list
(** Object ids currently queued, oldest first. Read-only view for the
    refinement harness, which checks the live queue against the pure FIFO
    model in [lib/spec] after every operation. *)

val bypasses : t -> int
(** Number of pushes that left the quarantine over budget even after
    evicting every older entry — i.e. how often a single block exceeded the
    whole budget and the budget was overridden to preserve the detection
    window. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the FIFO contents, held-byte count and bypass counter (the
    queued [Memobj.t]s are shared, not copied — the heap snapshot records
    their mutable statuses separately). *)

val queued : snapshot -> Memobj.t list
(** The objects captured in a snapshot, oldest first — the heap snapshot
    walks these to record statuses of quarantined objects no owner slot
    references anymore. *)

val restore : t -> snapshot -> unit
(** Reinstate a snapshot. Must come from this quarantine. *)
