(** The simulated allocator: 8-byte-aligned placement with redzones and a
    freed-memory quarantine, mirroring the ASan allocator that GiantSan
    reuses unchanged (§4.5).

    The heap maintains ground truth (oracle byte states, object registry)
    but never touches shadow memory: each sanitizer runtime wraps [malloc] /
    [free] and poisons shadow according to its own encoding. *)

type config = {
  arena_size : int;
  redzone : int;
      (** requested inter-object redzone in bytes (paper default 16; the
          anchor-based study also uses 1 and 512). Rounded up so blocks stay
          8-aligned. *)
  quarantine_budget : int;  (** bytes of freed memory kept poisoned *)
}

val default_config : config
(** 1 MiB arena, 16-byte redzones, 256 KiB quarantine. *)

type t

type free_error =
  | Free_null  (** benign: [free NULL] is a no-op *)
  | Invalid_free  (** pointer into memory the allocator never returned *)
  | Free_not_at_start  (** pointer inside an object but not its base (CWE-761) *)
  | Double_free  (** object already freed *)

type free_outcome = {
  freed : Memobj.t;
  evicted : Memobj.t list;
      (** blocks leaving quarantine; their memory is reusable again and the
          wrapping sanitizer must reset their shadow *)
}

val create : config -> t
val arena : t -> Arena.t
val oracle : t -> Oracle.t
val config : t -> config

val malloc : t -> ?kind:Memobj.kind -> int -> Memobj.t
(** Allocate [size] bytes ([size >= 0]). The object's [base] is 8-aligned
    and its addressable range is exactly [size] bytes; everything else in
    the block is redzone. When the bump region and the free cache are both
    exhausted the allocator degrades gracefully: it flushes the quarantine
    (notifying {!set_evict_hook}), recycles the flushed blocks, and retries
    — trading the temporal-detection window for forward progress (counted by
    {!pressure_flushes}). Raises [Out_of_memory] only when even that fails. *)

val free : t -> int -> (free_outcome, free_error) result
(** Free by pointer. On success the object's bytes become [Freed] and the
    block enters quarantine (heap objects) — stack/global objects are
    recycled immediately. *)

val find_object : t -> int -> Memobj.t option
(** Object whose block (redzones included) covers the address. *)

val live_bytes : t -> int
(** Total addressable bytes currently live (for tests). *)

val segment_count : t -> int
(** Number of 8-byte segments in the arena (= shadow size). *)

val pressure_flushes : t -> int
(** How many times [malloc] had to flush the quarantine to satisfy an
    allocation (each flush empties the whole queue). Zero on a healthy run. *)

val quarantine_bypasses : t -> int
(** {!Quarantine.bypasses} of the heap's quarantine: pushes where a single
    freed block exceeded the whole budget and was retained anyway. *)

val quarantine_length : t -> int
val quarantine_held : t -> int

val quarantine_ids : t -> int list
(** Live view of the quarantine FIFO (object ids, oldest first), so the
    refinement harness can check it against the pure model's queue. *)

val set_evict_hook : t -> (Memobj.t -> unit) -> unit
(** Called for every block recycled by a pressure flush, after its oracle
    state is reset, so the wrapping sanitizer can unpoison its shadow (the
    same duty as [free_outcome.evicted] on the normal path). Default:
    [ignore]. *)

type snapshot

val snapshot : t -> snapshot
(** Capture everything the allocator can mutate — arena bytes, oracle
    state + owner map, quarantine FIFO, free cache, the scalar cursors
    ([brk], id counter, live bytes, pressure flushes) and the mutable
    [status] of every reachable object (objects are shared by reference
    across the owner map, the quarantine and caller-held pointers, so the
    statuses must be recorded explicitly). The fuzz-mode restore point. *)

val restore : t -> snapshot -> unit
(** Rewind the heap to a snapshot taken from this heap. Objects allocated
    after the snapshot become unreachable; statuses of snapshot-time
    objects are written back, so a block freed-and-recycled since the
    snapshot is live again afterwards. The evict hook is not part of the
    snapshot — it belongs to the wrapping runtime, not the heap state. *)

val chaos_oom_after : t -> int -> unit
(** Fault-injection hook: arm a countdown so the [n]-th subsequent [malloc]
    (0-based) raises [Out_of_memory] regardless of arena state, then
    disarms. Pass [-1] to disarm. Costs one integer compare per [malloc]
    when disarmed. *)
