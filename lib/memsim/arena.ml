type t = { data : Bytes.t; size : int }

let create ~size =
  let size = max 64 (Giantsan_util.Bitops.align_up 8 size) in
  { data = Bytes.make size '\000'; size }

let size t = t.size

let check_range t addr width =
  if addr < 0 || width < 0 || addr + width > t.size then
    invalid_arg
      (Printf.sprintf "Arena: access [%d, %d) outside arena of %d bytes" addr
         (addr + width) t.size)

let load t ~addr ~width =
  check_range t addr width;
  match width with
  | 1 -> Char.code (Bytes.get t.data addr)
  | 2 -> Bytes.get_uint16_le t.data addr
  | 4 -> Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le t.data addr)
  | _ -> invalid_arg "Arena.load: width must be 1, 2, 4 or 8"

let store t ~addr ~width v =
  check_range t addr width;
  match width with
  | 1 -> Bytes.set t.data addr (Char.chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_le t.data addr (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.data addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.data addr (Int64.of_int v)
  | _ -> invalid_arg "Arena.store: width must be 1, 2, 4 or 8"

let fill t ~addr ~len byte =
  check_range t addr len;
  Bytes.fill t.data addr len (Char.chr (byte land 0xFF))

let blit t ~src ~dst ~len =
  check_range t src len;
  check_range t dst len;
  Bytes.blit t.data src t.data dst len

type snapshot = Bytes.t

let snapshot t = Bytes.copy t.data

let restore t s =
  assert (Bytes.length s = t.size);
  Bytes.blit s 0 t.data 0 t.size
