module Bitops = Giantsan_util.Bitops

type config = { arena_size : int; redzone : int; quarantine_budget : int }

let default_config =
  { arena_size = 1 lsl 20; redzone = 16; quarantine_budget = 256 * 1024 }

type free_error = Free_null | Invalid_free | Free_not_at_start | Double_free
type free_outcome = { freed : Memobj.t; evicted : Memobj.t list }

type t = {
  arena : Arena.t;
  oracle : Oracle.t;
  config : config;
  quarantine : Quarantine.t;
  free_cache : (int, int list ref) Hashtbl.t;  (* block_len -> block bases *)
  mutable brk : int;
  mutable next_id : int;
  mutable live_bytes : int;
  mutable pressure_flushes : int;
  mutable evict_hook : Memobj.t -> unit;
  (* Chaos hook: when >= 0, counts down one per successful malloc and the
     malloc after it hits zero raises [Out_of_memory]. -1 = disabled (the
     only cost on the hot path is one integer compare — no event counts). *)
  mutable oom_countdown : int;
}

let create config =
  assert (config.redzone >= 1);
  let arena = Arena.create ~size:config.arena_size in
  {
    arena;
    oracle = Oracle.create ~arena_size:(Arena.size arena);
    config;
    quarantine = Quarantine.create ~budget:config.quarantine_budget;
    free_cache = Hashtbl.create 64;
    (* Address 0 is NULL; leave a small unallocated guard at the bottom so
       near-null dereferences land on unallocated bytes. *)
    brk = 64;
    next_id = 0;
    live_bytes = 0;
    pressure_flushes = 0;
    evict_hook = ignore;
    oom_countdown = -1;
  }

let arena t = t.arena
let oracle t = t.oracle
let config t = t.config
let segment_count t = Arena.size t.arena / 8
let live_bytes t = t.live_bytes

(* Block layout: [left redzone][object, 8-aligned][right redzone].
   The left redzone is the configured redzone rounded up to 8 so the object
   base stays aligned; the right redzone absorbs the alignment padding of
   the object size, guaranteeing at least [redzone] poisoned bytes after
   the object while keeping the next block 8-aligned. *)
let layout config size =
  let left = Bitops.align_up 8 config.redzone in
  let right = Bitops.align_up 8 (size + config.redzone) - size in
  let block_len = left + size + right in
  (left, block_len)

let take_cached t block_len =
  match Hashtbl.find_opt t.free_cache block_len with
  | Some ({ contents = base :: rest } as cell) ->
    cell := rest;
    Some base
  | _ -> None

let put_cached t block_len base =
  match Hashtbl.find_opt t.free_cache block_len with
  | Some cell -> cell := base :: !cell
  | None -> Hashtbl.add t.free_cache block_len (ref [ base ])

(* First-fit fallback once the bump pointer is exhausted: take the smallest
   recycled block that fits, splitting off the remainder. Returns the block
   base and the length actually consumed (the whole block when the
   remainder is too small to manage on its own). Keeps long-running
   fragmented workloads alive, like a real allocator. *)
let take_fit t block_len =
  let best = ref None in
  Hashtbl.iter
    (fun len cell ->
      if len >= block_len && !cell <> [] then
        match !best with
        | Some (blen, _) when blen <= len -> ()
        | _ -> best := Some (len, cell))
    t.free_cache;
  match !best with
  | None -> None
  | Some (len, cell) -> (
    match !cell with
    | [] -> None
    | base :: rest ->
      cell := rest;
      let remainder = len - block_len in
      if remainder >= 32 then begin
        put_cached t remainder (base + block_len);
        Some (base, block_len)
      end
      else Some (base, len))

let recycle t (obj : Memobj.t) =
  obj.status <- Recycled;
  Oracle.set_range t.oracle ~lo:obj.block_base ~hi:(Memobj.block_end obj)
    Oracle.Unallocated;
  Oracle.set_owner t.oracle ~lo:obj.block_base ~hi:(Memobj.block_end obj) None;
  put_cached t obj.block_len obj.block_base

let pressure_flushes t = t.pressure_flushes
let quarantine_bypasses t = Quarantine.bypasses t.quarantine
let quarantine_length t = Quarantine.length t.quarantine
let quarantine_held t = Quarantine.bytes_held t.quarantine
let quarantine_ids t = Quarantine.ids t.quarantine
let set_evict_hook t f = t.evict_hook <- f
let chaos_oom_after t n = t.oom_countdown <- n

(* Last resort before [Out_of_memory]: flush the quarantine, recycle every
   block it held (notifying the runtime via the evict hook so shadow state
   follows), and retry the free-cache paths. Trades the temporal-error
   detection window for forward progress — graceful degradation under
   allocator pressure, surfaced through [pressure_flushes]. *)
let pressure_alloc t block_len =
  let held = Quarantine.flush t.quarantine in
  if held = [] then raise Out_of_memory;
  List.iter
    (fun obj ->
      recycle t obj;
      t.evict_hook obj)
    held;
  t.pressure_flushes <- t.pressure_flushes + 1;
  match take_cached t block_len with
  | Some base -> (base, block_len)
  | None -> (
    match take_fit t block_len with
    | Some (base, len) -> (base, len)
    | None -> raise Out_of_memory)

let malloc t ?(kind = Memobj.Heap) size =
  if size < 0 then invalid_arg "Heap.malloc: negative size";
  if t.oom_countdown >= 0 then
    if t.oom_countdown = 0 then begin
      t.oom_countdown <- -1;
      raise Out_of_memory
    end
    else t.oom_countdown <- t.oom_countdown - 1;
  let left, block_len = layout t.config size in
  let block_base, block_len =
    match take_cached t block_len with
    | Some base -> (base, block_len)
    | None ->
      if t.brk + block_len <= Arena.size t.arena then begin
        let base = t.brk in
        t.brk <- base + block_len;
        (base, block_len)
      end
      else (
        (* bump space gone: first-fit over recycled blocks *)
        match take_fit t block_len with
        | Some (base, len) -> (base, len)
        | None -> pressure_alloc t block_len)
  in
  let base = block_base + left in
  let obj =
    {
      Memobj.id = t.next_id;
      kind;
      base;
      size;
      block_base;
      block_len;
      status = Live;
    }
  in
  t.next_id <- t.next_id + 1;
  Oracle.set_range t.oracle ~lo:block_base ~hi:base Oracle.Redzone;
  Oracle.set_range t.oracle ~lo:base ~hi:(base + size) Oracle.Addressable;
  Oracle.set_range t.oracle ~lo:(base + size) ~hi:(block_base + block_len)
    Oracle.Redzone;
  Oracle.set_owner t.oracle ~lo:block_base ~hi:(block_base + block_len)
    (Some obj);
  t.live_bytes <- t.live_bytes + size;
  obj

let find_object t addr =
  if addr < 0 || addr >= Arena.size t.arena then None
  else Oracle.owner t.oracle addr

(* {1 Snapshot / restore (the fuzz-mode profile)}

   Everything the allocator can mutate is captured: arena bytes, oracle
   flags + owner map, quarantine FIFO, the free cache (deep-copied — its
   cells are mutable refs), the scalar cursors, and — the subtle part —
   the [status] field of every reachable [Memobj.t]. Objects are shared by
   reference between the owner map, the quarantine queue and caller-held
   pointers, so restoring the maps alone would leave an object recycled
   after the snapshot still claiming [Recycled]; the snapshot therefore
   records (object, status) pairs for everything reachable and [restore]
   writes the statuses back. Objects allocated after the snapshot become
   unreachable on restore and their status no longer matters. *)

type snapshot = {
  s_arena : Arena.snapshot;
  s_oracle : Oracle.snapshot;
  s_quarantine : Quarantine.snapshot;
  s_free_cache : (int * int list) list;
  s_brk : int;
  s_next_id : int;
  s_live_bytes : int;
  s_pressure_flushes : int;
  s_oom_countdown : int;
  s_statuses : (Memobj.t * Memobj.status) list;
}

let snapshot t =
  let seen = Hashtbl.create 64 in
  let note acc (o : Memobj.t) =
    if Hashtbl.mem seen o.Memobj.id then acc
    else begin
      Hashtbl.add seen o.Memobj.id ();
      (o, o.Memobj.status) :: acc
    end
  in
  let q = Quarantine.snapshot t.quarantine in
  let statuses = Oracle.fold_owners t.oracle note [] in
  let statuses = List.fold_left note statuses (Quarantine.queued q) in
  {
    s_arena = Arena.snapshot t.arena;
    s_oracle = Oracle.snapshot t.oracle;
    s_quarantine = q;
    s_free_cache =
      Hashtbl.fold (fun len cell acc -> (len, !cell) :: acc) t.free_cache [];
    s_brk = t.brk;
    s_next_id = t.next_id;
    s_live_bytes = t.live_bytes;
    s_pressure_flushes = t.pressure_flushes;
    s_oom_countdown = t.oom_countdown;
    s_statuses = statuses;
  }

let restore t s =
  Arena.restore t.arena s.s_arena;
  Oracle.restore t.oracle s.s_oracle;
  Quarantine.restore t.quarantine s.s_quarantine;
  Hashtbl.reset t.free_cache;
  List.iter
    (fun (len, bases) -> Hashtbl.add t.free_cache len (ref bases))
    s.s_free_cache;
  t.brk <- s.s_brk;
  t.next_id <- s.s_next_id;
  t.live_bytes <- s.s_live_bytes;
  t.pressure_flushes <- s.s_pressure_flushes;
  t.oom_countdown <- s.s_oom_countdown;
  List.iter (fun ((o : Memobj.t), st) -> o.Memobj.status <- st) s.s_statuses

let free t ptr =
  if ptr = 0 then Error Free_null
  else
    match find_object t ptr with
    | None -> Error Invalid_free
    | Some obj ->
      if obj.Memobj.status <> Live then Error Double_free
      else if ptr <> obj.Memobj.base then Error Free_not_at_start
      else begin
        obj.status <- Quarantined;
        t.live_bytes <- t.live_bytes - obj.size;
        Oracle.set_range t.oracle ~lo:obj.base ~hi:(obj.base + obj.size)
          Oracle.Freed;
        let evicted =
          match obj.kind with
          | Heap -> Quarantine.push t.quarantine obj
          | Stack | Global ->
            (* Stack frames and globals are not quarantined: their memory is
               reusable as soon as the frame pops. *)
            [ obj ]
        in
        List.iter (recycle t) evicted;
        Ok { freed = obj; evicted }
      end
