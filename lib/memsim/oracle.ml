type byte_state = Unallocated | Addressable | Redzone | Freed

type t = {
  flags : Bytes.t;  (* one state byte per arena byte *)
  owners : Memobj.t option array;  (* one owner slot per 8-byte segment *)
  size : int;
}

let code = function
  | Unallocated -> '\000'
  | Addressable -> '\001'
  | Redzone -> '\002'
  | Freed -> '\003'

let decode = function
  | '\000' -> Unallocated
  | '\001' -> Addressable
  | '\002' -> Redzone
  | '\003' -> Freed
  | _ -> assert false

let create ~arena_size =
  let size = max 64 (Giantsan_util.Bitops.align_up 8 arena_size) in
  { flags = Bytes.make size '\000'; owners = Array.make (size / 8) None; size }

let check t lo hi =
  if lo < 0 || hi > t.size || lo > hi then
    invalid_arg (Printf.sprintf "Oracle: bad range [%d, %d)" lo hi)

let state t addr =
  check t addr (addr + 1);
  decode (Bytes.get t.flags addr)

let set_range t ~lo ~hi st =
  check t lo hi;
  Bytes.fill t.flags lo (hi - lo) (code st)

let range_addressable t ~lo ~hi =
  check t lo hi;
  let rec go i = i >= hi || (Bytes.get t.flags i = '\001' && go (i + 1)) in
  go lo

let first_bad t ~lo ~hi =
  check t lo hi;
  let rec go i =
    if i >= hi then None
    else if Bytes.get t.flags i <> '\001' then Some i
    else go (i + 1)
  in
  go lo

let set_owner t ~lo ~hi obj =
  check t lo hi;
  if hi > lo then
    for seg = lo / 8 to (hi - 1) / 8 do
      t.owners.(seg) <- obj
    done

let owner t addr =
  check t addr (addr + 1);
  t.owners.(addr / 8)

let fold_owners t f acc =
  Array.fold_left
    (fun acc slot -> match slot with Some o -> f acc o | None -> acc)
    acc t.owners

type snapshot = { s_flags : Bytes.t; s_owners : Memobj.t option array }

let snapshot t = { s_flags = Bytes.copy t.flags; s_owners = Array.copy t.owners }

let restore t s =
  assert (Bytes.length s.s_flags = t.size);
  Bytes.blit s.s_flags 0 t.flags 0 t.size;
  Array.blit s.s_owners 0 t.owners 0 (Array.length t.owners)
