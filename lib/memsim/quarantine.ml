type t = {
  budget : int;
  queue : Memobj.t Queue.t;
  mutable held : int;
  mutable bypasses : int;
}

let create ~budget =
  assert (budget >= 0);
  { budget; queue = Queue.create (); held = 0; bypasses = 0 }

(* The newest entry is never evicted by its own push: a block bigger than
   the whole budget used to be bounced straight back out, which silently
   collapsed the use-after-free detection window to zero for large blocks.
   Older entries are evicted to make room; if the newcomer alone still
   exceeds the budget it stays anyway and the overrun is counted as a
   bypass, so callers can see how often the budget was overridden. *)
let push t obj =
  Queue.push obj t.queue;
  t.held <- t.held + obj.Memobj.block_len;
  let evicted = ref [] in
  while t.held > t.budget && Queue.length t.queue > 1 do
    let old = Queue.pop t.queue in
    t.held <- t.held - old.Memobj.block_len;
    evicted := old :: !evicted
  done;
  if t.held > t.budget then t.bypasses <- t.bypasses + 1;
  List.rev !evicted

let flush t =
  let all = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  t.held <- 0;
  all

let bytes_held t = t.held
let length t = Queue.length t.queue
let bypasses t = t.bypasses

let ids t =
  List.map (fun (o : Memobj.t) -> o.Memobj.id) (List.of_seq (Queue.to_seq t.queue))

type snapshot = {
  s_queue : Memobj.t list;  (* oldest first *)
  s_held : int;
  s_bypasses : int;
}

let snapshot t =
  {
    s_queue = List.of_seq (Queue.to_seq t.queue);
    s_held = t.held;
    s_bypasses = t.bypasses;
  }

let queued s = s.s_queue

let restore t s =
  Queue.clear t.queue;
  List.iter (fun o -> Queue.push o t.queue) s.s_queue;
  t.held <- s.s_held;
  t.bypasses <- s.s_bypasses
