(** Flat byte-addressable memory arena.

    This stands in for the paper's 64-bit virtual address space: addresses
    are plain [int] offsets into one [Bytes.t]. Address [0] plays the role
    of [NULL] and is never handed out by the allocator. *)

type t

val create : size:int -> t
(** [create ~size] makes an arena of [size] bytes (rounded up to a multiple
    of 8, and at least 64). All bytes start as [0]. *)

val size : t -> int

val load : t -> addr:int -> width:int -> int
(** Little-endian load of [width] bytes ([1], [2], [4] or [8]); a width-8
    load truncates to OCaml's 63-bit int, which is harmless for the
    simulation. Bounds-checked against the arena (not against objects:
    object-level safety is the sanitizers' job). *)

val store : t -> addr:int -> width:int -> int -> unit
(** Little-endian store; excess high bits of the value are dropped. *)

val fill : t -> addr:int -> len:int -> int -> unit
(** [fill t ~addr ~len byte] is [memset]. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** [blit] is [memmove] (overlap-safe). *)

type snapshot

val snapshot : t -> snapshot
(** Copy of the arena contents (fuzz-mode restore point). *)

val restore : t -> snapshot -> unit
(** Blit a snapshot back over the arena. Must come from this arena. *)
