(** Byte-level ground truth about addressability.

    The oracle is the referee: property tests compare every sanitizer's
    verdicts against it, and the bug harness uses it to decide whether a
    synthetic access really was a violation. It is maintained by the heap,
    never consulted by sanitizers. *)

type byte_state =
  | Unallocated  (** never allocated, or recycled after quarantine *)
  | Addressable  (** inside a live object *)
  | Redzone  (** inside a redzone of a live or quarantined object *)
  | Freed  (** inside a quarantined (freed, not yet recycled) object *)

type t

val create : arena_size:int -> t
val state : t -> int -> byte_state
val set_range : t -> lo:int -> hi:int -> byte_state -> unit
(** Set bytes [lo, hi) to a state. *)

val range_addressable : t -> lo:int -> hi:int -> bool
(** Are all bytes of [lo, hi) addressable? [true] for an empty range. *)

val first_bad : t -> lo:int -> hi:int -> int option
(** Address of the first non-addressable byte in [lo, hi), if any. *)

val set_owner : t -> lo:int -> hi:int -> Memobj.t option -> unit
(** Record which object owns the 8-byte segments overlapping [lo, hi)
    (redzones included). *)

val owner : t -> int -> Memobj.t option
(** The object whose block covers [addr], if any. *)

val fold_owners : t -> ('a -> Memobj.t -> 'a) -> 'a -> 'a
(** Fold over every owner slot holding an object, segment order. An object
    spanning k segments is visited k times — callers dedupe by id (the heap
    snapshot does, to record each reachable object's status once). *)

type snapshot

val snapshot : t -> snapshot
(** Copy of the byte states and the owner map (fuzz-mode restore point). *)

val restore : t -> snapshot -> unit
(** Reinstate a snapshot. Must come from this oracle. *)
