(** Event counters: every sanitizer records what its runtime did. The cost
    model (Table 2) and the optimization breakdown (Figure 10) are computed
    from these, and the unit tests assert on them — e.g. that a folded
    region check really loaded O(1) shadow bytes.

    The operations are derived from one declarative field list ([spec]),
    so [reset]/[add]/[to_assoc]/[pp] cannot drift from the record: adding
    a field means adding exactly one line to the spec. *)

type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable poison_segments : int;  (** shadow bytes written while poisoning *)
  mutable instr_checks : int;  (** instruction-level checks executed *)
  mutable region_checks : int;  (** operation-level region checks executed *)
  mutable fast_checks : int;  (** region checks settled by the fast path *)
  mutable slow_checks : int;  (** region checks that entered the slow path *)
  mutable word_checks : int;
      (** the subset of [fast_checks] settled by the one-word kernel (all
          probes served from a single 64-bit shadow load) *)
  mutable cache_hits : int;  (** accesses settled by the quasi-bound *)
  mutable cache_updates : int;  (** quasi-bound refreshes (metadata loads) *)
  mutable underflow_checks : int;  (** dedicated negative-offset checks *)
  mutable bounds_checks : int;  (** LFP-style pointer-derived bound checks *)
  mutable auth_checks : int;
      (** PAC-style pointer authentications (signature recompute +
          compare) — the tagged-pointer backend's only check flavour *)
  mutable errors : int;  (** reports produced *)
}

val spec : t Giantsan_telemetry.Metric.spec
(** The declarative field list, in record order. *)

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val total_checks : t -> int
(** All check executions regardless of flavour:
    [instr_checks + region_checks + cache_hits + cache_updates +
    bounds_checks + auth_checks]. [fast_checks] and [slow_checks] are deliberately
    excluded because they are not independent check executions — they
    partition [region_checks] (every region check is settled by exactly
    one of the fast or the slow path, the invariant
    [fast_checks + slow_checks = region_checks] that the qcheck suite
    holds every tool to), so including them would double-count.
    [word_checks] is excluded for the same reason: it subdivides
    [fast_checks] ([word_checks <= fast_checks] always). *)

val to_assoc : t -> (string * int) list
val pp : Format.formatter -> t -> unit
