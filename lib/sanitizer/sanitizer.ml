module Memsim = Giantsan_memsim
module Histogram = Giantsan_telemetry.Histogram

type cache = { mutable cache_base : int; mutable cache_ub : int }

type t = {
  name : string;
  heap : Memsim.Heap.t;
  counters : Counters.t;
  hists : Histogram.set;
  shadow_loads : unit -> int;
  shadow_stores : unit -> int;
  malloc : ?kind:Memsim.Memobj.kind -> int -> Memsim.Memobj.t;
  free : int -> Report.t option;
  access : base:int -> addr:int -> width:int -> Report.t option;
  check_region : lo:int -> hi:int -> Report.t option;
  new_cache : base:int -> cache;
  cached_access : cache -> off:int -> width:int -> Report.t option;
  flush_cache : cache -> Report.t option;
  supports_operation_level : bool;
}

let record_error t = function
  | None -> None
  | Some r ->
    t.counters.Counters.errors <- t.counters.Counters.errors + 1;
    Some r

let plain_malloc heap counters ?kind size =
  counters.Counters.mallocs <- counters.Counters.mallocs + 1;
  Memsim.Heap.malloc heap ?kind size

module Registry = struct
  type cell = {
    c_name : string;
    c_counters : Counters.t;
    c_hists : Histogram.set;
  }

  (* [on] follows the initialized-before-fork discipline (flip it only while
     no worker domain runs); [cells] is the one piece of cross-domain shared
     state in the system, so pushes and reads go through a mutex. Snapshot
     aggregation is commutative (counter addition, histogram merge) and the
     result is sorted by name, so the summary is deterministic no matter
     which domain registered first. *)
  let on = ref false
  let lock = Mutex.create ()
  let cells : cell list ref = ref []
  let enable () = on := true
  let disable () = on := false
  let is_on () = !on
  let clear () = Mutex.protect lock (fun () -> cells := [])

  let register t =
    if !on then
      Mutex.protect lock (fun () ->
          cells :=
            { c_name = t.name; c_counters = t.counters; c_hists = t.hists }
            :: !cells)

  let snapshot () =
    let cells = Mutex.protect lock (fun () -> !cells) in
    let by_name = Hashtbl.create 8 in
    List.iter
      (fun c ->
        match Hashtbl.find_opt by_name c.c_name with
        | None ->
          let acc = Counters.create () in
          Counters.add acc c.c_counters;
          Hashtbl.replace by_name c.c_name
            (acc, Histogram.merge_set (Histogram.create_set ()) c.c_hists)
        | Some (acc, hists) ->
          Counters.add acc c.c_counters;
          Hashtbl.replace by_name c.c_name
            (acc, Histogram.merge_set hists c.c_hists))
      cells;
    Hashtbl.fold
      (fun name (acc, hists) l -> (name, Counters.to_assoc acc, hists) :: l)
      by_name []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
end

let free_error_report ~name ~addr err =
  let kind =
    match err with
    | Memsim.Heap.Free_null -> None
    | Memsim.Heap.Invalid_free -> Some Report.Invalid_free
    | Memsim.Heap.Free_not_at_start -> Some Report.Free_not_at_start
    | Memsim.Heap.Double_free -> Some Report.Double_free
  in
  Option.map
    (fun kind -> Report.make ~kind ~addr ~size:0 ~detected_by:name)
    kind
