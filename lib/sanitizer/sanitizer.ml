module Memsim = Giantsan_memsim
module Histogram = Giantsan_telemetry.Histogram

(* History-caching state (§4.3), generalized from the original single
   quasi-bound slot into a small MRU window history (the UM's two-slot
   recent-segment idiom). Each window [w_lo, w_hi) records a span of
   absolute addresses proven addressable at the time it was stored; a
   window is empty iff w_lo >= w_hi. Slot 0 is the most recently used;
   [cache_note] merges overlapping/adjacent windows and evicts the least
   recent when the slots overflow, so an evicted bound is always one that
   was itself proven — eviction can never manufacture a claim. Carrying
   windows (a lower AND an upper edge) instead of a single upper bound is
   what lets descending and strided access streams hit cache: the fix for
   the fig11 reverse-traversal regression. *)
type window = { mutable w_lo : int; mutable w_hi : int }
type cache = { mutable cache_base : int; windows : window array }

let mru_slots = 3

let new_cache ~base =
  { cache_base = base;
    windows = Array.init mru_slots (fun _ -> { w_lo = 0; w_hi = 0 }) }

let cache_windows c =
  Array.to_list c.windows
  |> List.filter_map (fun w ->
         if w.w_lo < w.w_hi then Some (w.w_lo, w.w_hi) else None)

(* Quasi-bound view for telemetry and compatibility: how far above
   [cache_base] the cache currently vouches. *)
let cache_ub c =
  let ub = ref 0 in
  Array.iter
    (fun w ->
      if w.w_lo < w.w_hi && w.w_lo <= c.cache_base && w.w_hi > c.cache_base
      then ub := max !ub (w.w_hi - c.cache_base))
    c.windows;
  !ub

let cache_hit c ~lo ~hi =
  hi <= lo
  ||
  let n = Array.length c.windows in
  let rec find k =
    if k >= n then -1
    else
      let w = c.windows.(k) in
      if w.w_lo < w.w_hi && w.w_lo <= lo && hi <= w.w_hi then k
      else find (k + 1)
  in
  let k = find 0 in
  k >= 0
  && begin
       (* promote the covering window to the MRU front *)
       let w = c.windows.(k) in
       for j = k downto 1 do
         c.windows.(j) <- c.windows.(j - 1)
       done;
       c.windows.(0) <- w;
       true
     end

let cache_note c ~lo ~hi =
  if hi > lo then begin
    (* union with every overlapping-or-adjacent window, to fixpoint (a
       grown union can newly touch a window an earlier pass skipped) *)
    let glo = ref lo and ghi = ref hi in
    let absorbed = Array.map (fun _ -> false) c.windows in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun k w ->
          if
            (not absorbed.(k))
            && w.w_lo < w.w_hi
            && w.w_lo <= !ghi
            && !glo <= w.w_hi
          then begin
            glo := min !glo w.w_lo;
            ghi := max !ghi w.w_hi;
            absorbed.(k) <- true;
            changed := true
          end)
        c.windows
    done;
    (* merged window takes the front; surviving disjoint windows keep
       their recency order behind it; the least recent falls off *)
    let survivors =
      Array.to_list c.windows
      |> List.filteri (fun k _ -> not absorbed.(k))
      |> List.filter_map (fun w ->
             if w.w_lo < w.w_hi then Some (w.w_lo, w.w_hi) else None)
    in
    let rest = ref survivors in
    Array.iteri
      (fun k w ->
        if k = 0 then begin
          w.w_lo <- !glo;
          w.w_hi <- !ghi
        end
        else
          match !rest with
          | (a, b) :: tl ->
            rest := tl;
            w.w_lo <- a;
            w.w_hi <- b
          | [] ->
            w.w_lo <- 0;
            w.w_hi <- 0)
      c.windows
  end

type t = {
  name : string;
  heap : Memsim.Heap.t;
  counters : Counters.t;
  hists : Histogram.set;
  shadow_loads : unit -> int;
  shadow_stores : unit -> int;
  malloc : ?kind:Memsim.Memobj.kind -> int -> Memsim.Memobj.t;
  free : int -> Report.t option;
  access : base:int -> addr:int -> width:int -> Report.t option;
  check_region : lo:int -> hi:int -> Report.t option;
  new_cache : base:int -> cache;
  cached_access : cache -> off:int -> width:int -> Report.t option;
  flush_cache : cache -> Report.t option;
  supports_operation_level : bool;
  snapshot : unit -> unit;
  restore : unit -> unit;
}

(* Single-slot snapshot plumbing shared by every runtime constructor: [cap]
   captures whatever backend state the tool owns, [put] reinstates it.
   One slot is all the fuzz-mode profile needs — each exec restores to the
   same pristine point — and re-snapshotting simply overwrites it. *)
let snapshot_slot ~cap ~put =
  let slot = ref None in
  let snapshot () = slot := Some (cap ()) in
  let restore () =
    match !slot with
    | None -> invalid_arg "Sanitizer.restore: no snapshot taken"
    | Some s -> put s
  in
  (snapshot, restore)

let counters_copy c =
  let s = Counters.create () in
  Counters.add s c;
  s

let counters_restore c s =
  Counters.reset c;
  Counters.add c s

let record_error t = function
  | None -> None
  | Some r ->
    t.counters.Counters.errors <- t.counters.Counters.errors + 1;
    Some r

let plain_malloc heap counters ?kind size =
  counters.Counters.mallocs <- counters.Counters.mallocs + 1;
  Memsim.Heap.malloc heap ?kind size

module Registry = struct
  type cell = {
    c_name : string;
    c_counters : Counters.t;
    c_hists : Histogram.set;
  }

  (* [on] follows the initialized-before-fork discipline (flip it only while
     no worker domain runs); [cells] is the one piece of cross-domain shared
     state in the system, so pushes and reads go through a mutex. Snapshot
     aggregation is commutative (counter addition, histogram merge) and the
     result is sorted by name, so the summary is deterministic no matter
     which domain registered first. *)
  let on = ref false
  let lock = Mutex.create ()
  let cells : cell list ref = ref []
  let enable () = on := true
  let disable () = on := false
  let is_on () = !on
  let clear () = Mutex.protect lock (fun () -> cells := [])

  let register t =
    if !on then
      Mutex.protect lock (fun () ->
          cells :=
            { c_name = t.name; c_counters = t.counters; c_hists = t.hists }
            :: !cells)

  let snapshot () =
    let cells = Mutex.protect lock (fun () -> !cells) in
    let by_name = Hashtbl.create 8 in
    List.iter
      (fun c ->
        match Hashtbl.find_opt by_name c.c_name with
        | None ->
          let acc = Counters.create () in
          Counters.add acc c.c_counters;
          Hashtbl.replace by_name c.c_name
            (acc, Histogram.merge_set (Histogram.create_set ()) c.c_hists)
        | Some (acc, hists) ->
          Counters.add acc c.c_counters;
          Hashtbl.replace by_name c.c_name
            (acc, Histogram.merge_set hists c.c_hists))
      cells;
    Hashtbl.fold
      (fun name (acc, hists) l -> (name, Counters.to_assoc acc, hists) :: l)
      by_name []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
end

let free_error_report ~name ~addr err =
  let kind =
    match err with
    | Memsim.Heap.Free_null -> None
    | Memsim.Heap.Invalid_free -> Some Report.Invalid_free
    | Memsim.Heap.Free_not_at_start -> Some Report.Free_not_at_start
    | Memsim.Heap.Double_free -> Some Report.Double_free
  in
  Option.map
    (fun kind -> Report.make ~kind ~addr ~size:0 ~detected_by:name)
    kind
