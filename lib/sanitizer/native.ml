module Memsim = Giantsan_memsim

let create config =
  let heap = Memsim.Heap.create config in
  let counters = Counters.create () in
  (* No metadata plane: restoring the heap and counters is the whole job. *)
  let snapshot, restore =
    Sanitizer.snapshot_slot
      ~cap:(fun () ->
        (Memsim.Heap.snapshot heap, Sanitizer.counters_copy counters))
      ~put:(fun (hs, cs) ->
        Memsim.Heap.restore heap hs;
        Sanitizer.counters_restore counters cs)
  in
  let san = {
    Sanitizer.name = "Native";
    heap;
    counters;
    hists = Giantsan_telemetry.Histogram.create_set ();
    shadow_loads = (fun () -> 0);
    shadow_stores = (fun () -> 0);
    malloc = (fun ?kind size -> Sanitizer.plain_malloc heap counters ?kind size);
    free =
      (fun ptr ->
        counters.Counters.frees <- counters.Counters.frees + 1;
        match Memsim.Heap.free heap ptr with
        | Ok _ | Error Memsim.Heap.Free_null -> None
        | Error _ ->
          (* Native execution has no detector: invalid frees go unnoticed
             (they would corrupt a real heap). *)
          None);
    access = (fun ~base:_ ~addr:_ ~width:_ -> None);
    check_region = (fun ~lo:_ ~hi:_ -> None);
    new_cache = (fun ~base -> Sanitizer.new_cache ~base);
    cached_access = (fun _ ~off:_ ~width:_ -> None);
    flush_cache = (fun _ -> None);
    supports_operation_level = false;
    snapshot;
    restore;
  }
  in
  Sanitizer.Registry.register san;
  san
