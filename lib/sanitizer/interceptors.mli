(** Guardian-checked libc-style functions over the simulated arena.

    ASan protects calls into uninstrumented standard functions with
    interceptors that validate the touched region first (§4.5: "a runtime
    guardian function invoked before calling standard functions (e.g.,
    strcpy)"); GiantSan swaps the linear validation for its constant-time
    region check. These helpers reproduce that layer for any
    {!Sanitizer.t}: the region-check cost profile of the underlying tool
    shows through ([check_region] is O(1) for GiantSan and LFP, linear for
    ASan).

    All functions return the reports their checks produced (empty list =
    clean); the data operation is skipped when a check fails, mirroring
    the interpreter's recovery semantics. *)

val strlen : Sanitizer.t -> addr:int -> int * Report.t list
(** Length of the NUL-terminated string at [addr]; the string bytes
    including the terminator are then validated as one region through the
    tool's own [check_region]. A string that runs past the arena's end has
    its length clamped and the walked bytes validated the same way — the
    interceptor never fabricates a report of its own, so each tool is only
    credited with what its shadow actually detects (Native detects
    nothing). *)

val strcpy : Sanitizer.t -> dst:int -> src:int -> Report.t list
(** Validate [src] (strlen + NUL) and [dst] regions, then copy. *)

val strncpy : Sanitizer.t -> dst:int -> src:int -> n:int -> Report.t list
(** Copies exactly [n] bytes (padding with NULs, as C does), validating
    both regions for the full [n]. *)

val strcat : Sanitizer.t -> dst:int -> src:int -> Report.t list
val memmove : Sanitizer.t -> dst:int -> src:int -> n:int -> Report.t list
val memset : Sanitizer.t -> dst:int -> n:int -> byte:int -> Report.t list

val calloc : Sanitizer.t -> count:int -> size:int -> Giantsan_memsim.Memobj.t
(** [malloc (count * size)] with zero-fill. Raises [Out_of_memory] like
    malloc; count/size overflow cannot happen with 63-bit ints at the
    simulated scales, so no NULL-on-overflow path is modelled. *)

val realloc :
  Sanitizer.t -> ptr:int -> size:int ->
  (Giantsan_memsim.Memobj.t, Report.t) result
(** Grow/shrink semantics: allocate, copy [min old new] bytes, free the
    old block (through the quarantine). [ptr = 0] behaves like malloc.
    Freeing errors (wild pointer, double free) surface as [Error]. *)
