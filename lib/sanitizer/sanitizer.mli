(** The common sanitizer interface.

    Every tool under study — Native (no protection), ASan, ASan--, GiantSan,
    LFP — is packaged as a value of type [t]: allocation hooks plus the
    runtime checks the instrumented program calls. The interpreter, the
    workload runner and the bug-detection harness are polymorphic over it.

    Checks return [Report.t option] instead of raising: the paper runs all
    tools with [halt_on_error=false]. *)

type window = {
  mutable w_lo : int;  (** inclusive absolute lower edge *)
  mutable w_hi : int;  (** exclusive absolute upper edge *)
}
(** One history entry: a span of absolute addresses proven addressable when
    it was stored. Empty iff [w_lo >= w_hi]. *)

type cache = {
  mutable cache_base : int;  (** the pointer this cache belongs to *)
  windows : window array;
      (** MRU history, slot 0 most recent. Every non-empty window was proven
          addressable at store time, so eviction can never manufacture a
          claim. Windows carry a lower {e and} an upper edge, which is what
          lets descending and strided streams hit cache (the fig11
          reverse-traversal fix). *)
}
(** History-caching state (§4.3), generalized from the single quasi-bound
    slot into a small MRU window history. Non-caching sanitizers never call
    [cache_note], so every cached access falls back to a plain check. *)

val mru_slots : int
(** Number of history entries per cache (small by design — the UM's
    two-slot recent-segment idiom shows how cheap this is). *)

val new_cache : base:int -> cache
(** A cache with all windows empty (shared by every runtime). *)

val cache_hit : cache -> lo:int -> hi:int -> bool
(** Does some window cover [\[lo, hi)]? Promotes the covering window to the
    MRU front. Empty queries ([hi <= lo]) hit vacuously. *)

val cache_note : cache -> lo:int -> hi:int -> unit
(** Record [\[lo, hi)] as proven addressable: merged with every
    overlapping-or-adjacent window (to fixpoint) and stored at the MRU
    front; the least recently used window is evicted if the slots overflow.
    Callers must only note spans a check just proved — the flush contract
    re-verifies exactly what was noted. *)

val cache_ub : cache -> int
(** The classic quasi-bound view: bytes above [cache_base] the history
    currently vouches for (0 when no window contains the base). Used by
    telemetry. *)

val cache_windows : cache -> (int * int) list
(** Non-empty [(w_lo, w_hi)] pairs in MRU order — for flushing, tests and
    diagnostics. *)

type t = {
  name : string;
  heap : Giantsan_memsim.Heap.t;
  counters : Counters.t;
  hists : Giantsan_telemetry.Histogram.set;
      (** per-sanitizer telemetry histograms, populated only while the
          global telemetry switch ([Giantsan_telemetry.Trace]) is on *)
  shadow_loads : unit -> int;
      (** metadata loads performed so far (0 for tools without shadow) *)
  shadow_stores : unit -> int;
      (** metadata stores performed so far — the poisoning-side cost the
          batched kernels are measured by (0 for tools without shadow) *)
  malloc : ?kind:Giantsan_memsim.Memobj.kind -> int -> Giantsan_memsim.Memobj.t;
  free : int -> Report.t option;
  access : base:int -> addr:int -> width:int -> Report.t option;
      (** Check one [width]-byte access at [addr]. [base] is the anchor (the
          object's base pointer) when the instrumentation knows it, or [0]:
          anchor-aware tools (GiantSan) then protect [\[base, addr+width)];
          the others check only [\[addr, addr+width)]. *)
  check_region : lo:int -> hi:int -> Report.t option;
      (** Operation-level check of an arbitrary region (the [memset] /
          [strcpy] guardian): O(1) for GiantSan, linear for ASan. *)
  new_cache : base:int -> cache;
  cached_access : cache -> off:int -> width:int -> Report.t option;
      (** Access [base + off] under history caching (Figure 9). *)
  flush_cache : cache -> Report.t option;
      (** The final check after a cached loop (Figure 9 line 14): re-verify
          the whole quasi-bound to catch a deallocation that happened during
          the loop. No-op for non-caching tools. *)
  supports_operation_level : bool;
      (** whether region checks are O(1) (drives check-merging decisions) *)
  snapshot : unit -> unit;
      (** Fuzz-mode profile: capture the full sanitizer state — heap (arena,
          oracle, quarantine, object statuses), metadata plane (shadow with
          a dirty-segment journal armed, or the PAC signature table and salt
          counter) and counters — into the tool's single restore slot,
          overwriting any previous snapshot. *)
  restore : unit -> unit;
      (** Rewind to the snapshot: the heap state is reinstated, shadow-based
          tools re-poison only the segments dirtied since (the journal),
          PAC rolls back its salt counter and signature table, native only
          restores the heap. Counters are restored too, so a restored exec
          is event-count-identical to one on a freshly built sanitizer.
          Raises [Invalid_argument] if no snapshot was taken. *)
}

val record_error : t -> Report.t option -> Report.t option
(** Count an error if one was produced (helper for implementers). *)

val snapshot_slot :
  cap:(unit -> 's) -> put:('s -> unit) -> (unit -> unit) * (unit -> unit)
(** Single-slot snapshot plumbing for runtime constructors:
    [snapshot_slot ~cap ~put] is [(snapshot, restore)] where [snapshot]
    stores [cap ()] (overwriting any previous capture) and [restore]
    applies [put] to it — raising [Invalid_argument] before the first
    snapshot. *)

val counters_copy : Counters.t -> Counters.t
(** A detached copy of a counter record (snapshot side). *)

val counters_restore : Counters.t -> Counters.t -> unit
(** [counters_restore live saved] overwrites [live] with [saved]'s values
    (restore side). *)

val plain_malloc :
  Giantsan_memsim.Heap.t ->
  Counters.t ->
  ?kind:Giantsan_memsim.Memobj.kind ->
  int ->
  Giantsan_memsim.Memobj.t
(** Allocation without shadow poisoning (shared by Native and LFP). *)

val free_error_report :
  name:string -> addr:int -> Giantsan_memsim.Heap.free_error -> Report.t option
(** Translate an allocator free error into a report ([Free_null] is benign
    and yields [None]). *)

(** Opt-in registry of every sanitizer instance created while it is
    enabled: the [--telemetry] CLI paths turn it on, run an experiment
    that internally builds thousands of short-lived sanitizers, and then
    snapshot the per-tool aggregate counters and histograms for
    [summary.json]. Only the (name, counters, histograms) triple is
    retained — never the heap — so registration is cheap.

    Registration from worker domains is mutex-protected (the cell list is
    the only cross-domain shared state in the system); [enable]/[disable]
    follow the initialized-before-fork discipline — flip them only while no
    worker domain is running, and call [snapshot] only once workers have
    been joined (the retained counter records are the runtimes' live,
    unsynchronised ones). Aggregation is commutative and the result sorted,
    so a parallel run snapshots exactly what the serial run would. *)
module Registry : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_on : unit -> bool
  val clear : unit -> unit

  val register : t -> unit
  (** Called by every runtime constructor; no-op while disabled. *)

  val snapshot :
    unit ->
    (string * (string * int) list * Giantsan_telemetry.Histogram.set) list
  (** Aggregated by tool name (merged counters and histograms), sorted by
      name. *)
end
