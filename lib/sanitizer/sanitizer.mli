(** The common sanitizer interface.

    Every tool under study — Native (no protection), ASan, ASan--, GiantSan,
    LFP — is packaged as a value of type [t]: allocation hooks plus the
    runtime checks the instrumented program calls. The interpreter, the
    workload runner and the bug-detection harness are polymorphic over it.

    Checks return [Report.t option] instead of raising: the paper runs all
    tools with [halt_on_error=false]. *)

type cache = {
  mutable cache_base : int;  (** the pointer this cache belongs to *)
  mutable cache_ub : int;
      (** quasi-bound: bytes from [cache_base] already proven addressable
          (exclusive offset). 0 = nothing proven yet. *)
}
(** History-caching state (§4.3). Non-caching sanitizers keep [cache_ub = 0]
    forever, so every cached access falls back to a plain check. *)

type t = {
  name : string;
  heap : Giantsan_memsim.Heap.t;
  counters : Counters.t;
  hists : Giantsan_telemetry.Histogram.set;
      (** per-sanitizer telemetry histograms, populated only while the
          global telemetry switch ([Giantsan_telemetry.Trace]) is on *)
  shadow_loads : unit -> int;
      (** metadata loads performed so far (0 for tools without shadow) *)
  shadow_stores : unit -> int;
      (** metadata stores performed so far — the poisoning-side cost the
          batched kernels are measured by (0 for tools without shadow) *)
  malloc : ?kind:Giantsan_memsim.Memobj.kind -> int -> Giantsan_memsim.Memobj.t;
  free : int -> Report.t option;
  access : base:int -> addr:int -> width:int -> Report.t option;
      (** Check one [width]-byte access at [addr]. [base] is the anchor (the
          object's base pointer) when the instrumentation knows it, or [0]:
          anchor-aware tools (GiantSan) then protect [\[base, addr+width)];
          the others check only [\[addr, addr+width)]. *)
  check_region : lo:int -> hi:int -> Report.t option;
      (** Operation-level check of an arbitrary region (the [memset] /
          [strcpy] guardian): O(1) for GiantSan, linear for ASan. *)
  new_cache : base:int -> cache;
  cached_access : cache -> off:int -> width:int -> Report.t option;
      (** Access [base + off] under history caching (Figure 9). *)
  flush_cache : cache -> Report.t option;
      (** The final check after a cached loop (Figure 9 line 14): re-verify
          the whole quasi-bound to catch a deallocation that happened during
          the loop. No-op for non-caching tools. *)
  supports_operation_level : bool;
      (** whether region checks are O(1) (drives check-merging decisions) *)
}

val record_error : t -> Report.t option -> Report.t option
(** Count an error if one was produced (helper for implementers). *)

val plain_malloc :
  Giantsan_memsim.Heap.t ->
  Counters.t ->
  ?kind:Giantsan_memsim.Memobj.kind ->
  int ->
  Giantsan_memsim.Memobj.t
(** Allocation without shadow poisoning (shared by Native and LFP). *)

val free_error_report :
  name:string -> addr:int -> Giantsan_memsim.Heap.free_error -> Report.t option
(** Translate an allocator free error into a report ([Free_null] is benign
    and yields [None]). *)

(** Opt-in registry of every sanitizer instance created while it is
    enabled: the [--telemetry] CLI paths turn it on, run an experiment
    that internally builds thousands of short-lived sanitizers, and then
    snapshot the per-tool aggregate counters and histograms for
    [summary.json]. Only the (name, counters, histograms) triple is
    retained — never the heap — so registration is cheap.

    Registration from worker domains is mutex-protected (the cell list is
    the only cross-domain shared state in the system); [enable]/[disable]
    follow the initialized-before-fork discipline — flip them only while no
    worker domain is running, and call [snapshot] only once workers have
    been joined (the retained counter records are the runtimes' live,
    unsynchronised ones). Aggregation is commutative and the result sorted,
    so a parallel run snapshots exactly what the serial run would. *)
module Registry : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_on : unit -> bool
  val clear : unit -> unit

  val register : t -> unit
  (** Called by every runtime constructor; no-op while disabled. *)

  val snapshot :
    unit ->
    (string * (string * int) list * Giantsan_telemetry.Histogram.set) list
  (** Aggregated by tool name (merged counters and histograms), sorted by
      name. *)
end
