module Memsim = Giantsan_memsim

let arena (san : Sanitizer.t) = Memsim.Heap.arena san.Sanitizer.heap

let collect checks = List.filter_map Fun.id checks

(* Walk to the NUL byte (or the arena's end). The walk itself never
   reports: whatever range it touched is handed to the tool's own
   [check_region], so a tool is only credited with what its shadow actually
   detects. (An earlier version fabricated a [Wild_access] report for
   unterminated strings in the interceptor, crediting every tool — Native
   included — with a detection its shadow never made, which over-credited
   weak tools in differential runs.) *)
let scan_string (san : Sanitizer.t) ~addr =
  let a = arena san in
  let limit = Memsim.Arena.size a in
  let rec scan i =
    if addr >= 0 && addr + i < limit then
      if Memsim.Arena.load a ~addr:(addr + i) ~width:1 = 0 then (i, true)
      else scan (i + 1)
    else (i, false)
  in
  scan 0

let strlen_checked (san : Sanitizer.t) ~addr =
  let len, terminated = scan_string san ~addr in
  (* Terminated: validate the string plus its NUL as one region.
     Unterminated: validate the bytes the scan walked — at least one byte,
     so a pointer already outside the arena still exercises the tool's
     shadow (which is total: out-of-range segments read as unallocated). *)
  let hi = if terminated then addr + len + 1 else max (addr + len) (addr + 1) in
  (len, terminated, collect [ san.Sanitizer.check_region ~lo:addr ~hi ])

let strlen (san : Sanitizer.t) ~addr =
  let len, _, reports = strlen_checked san ~addr in
  (len, reports)

(* A tool with no detector (Native) reaches the data operation even when
   the scan ran wild; clamp to the arena so the simulated undefined
   behaviour stays a missed detection instead of crashing the harness. *)
let clamped_blit (san : Sanitizer.t) ~src ~dst ~len =
  if src >= 0 && dst >= 0 then begin
    let limit = Memsim.Arena.size (arena san) in
    let n = min len (min (limit - src) (limit - dst)) in
    if n > 0 then Memsim.Arena.blit (arena san) ~src ~dst ~len:n
  end

let clamped_fill (san : Sanitizer.t) ~addr ~len byte =
  if addr >= 0 then begin
    let limit = Memsim.Arena.size (arena san) in
    let n = min len (limit - addr) in
    if n > 0 then Memsim.Arena.fill (arena san) ~addr ~len:n byte
  end

let strcpy (san : Sanitizer.t) ~dst ~src =
  let len, terminated, src_reports = strlen_checked san ~addr:src in
  let dst_reports =
    collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + len + 1) ]
  in
  let reports = src_reports @ dst_reports in
  if reports = [] then
    clamped_blit san ~src ~dst ~len:(if terminated then len + 1 else len);
  reports

let strncpy (san : Sanitizer.t) ~dst ~src ~n =
  if n <= 0 then []
  else begin
    let len, _, src_reports = strlen_checked san ~addr:src in
    let copy = min n (len + 1) in
    let reports =
      (if copy < n then src_reports
       else collect [ san.Sanitizer.check_region ~lo:src ~hi:(src + n) ])
      @ collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + n) ]
    in
    if reports = [] then begin
      clamped_blit san ~src ~dst ~len:copy;
      if copy < n then clamped_fill san ~addr:(dst + copy) ~len:(n - copy) 0
    end;
    reports
  end

let strcat (san : Sanitizer.t) ~dst ~src =
  let dlen, dst_reports = strlen san ~addr:dst in
  if dst_reports <> [] then dst_reports
  else strcpy san ~dst:(dst + dlen) ~src

let memmove (san : Sanitizer.t) ~dst ~src ~n =
  if n <= 0 then []
  else begin
    let reports =
      collect
        [
          san.Sanitizer.check_region ~lo:src ~hi:(src + n);
          san.Sanitizer.check_region ~lo:dst ~hi:(dst + n);
        ]
    in
    if reports = [] then clamped_blit san ~src ~dst ~len:n;
    reports
  end

let memset (san : Sanitizer.t) ~dst ~n ~byte =
  if n <= 0 then []
  else begin
    let reports = collect [ san.Sanitizer.check_region ~lo:dst ~hi:(dst + n) ] in
    if reports = [] then clamped_fill san ~addr:dst ~len:n byte;
    reports
  end

let calloc (san : Sanitizer.t) ~count ~size =
  assert (count >= 0 && size >= 0);
  let total = count * size in
  let obj = san.Sanitizer.malloc total in
  if total > 0 then
    Memsim.Arena.fill (arena san) ~addr:obj.Memsim.Memobj.base ~len:total 0;
  obj

let realloc (san : Sanitizer.t) ~ptr ~size =
  if ptr = 0 then Ok (san.Sanitizer.malloc size)
  else
    match Memsim.Heap.find_object san.Sanitizer.heap ptr with
    | Some old
      when old.Memsim.Memobj.status = Memsim.Memobj.Live
           && old.Memsim.Memobj.base = ptr ->
      let fresh = san.Sanitizer.malloc size in
      let keep = min size old.Memsim.Memobj.size in
      if keep > 0 then
        Memsim.Arena.blit (arena san) ~src:ptr
          ~dst:fresh.Memsim.Memobj.base ~len:keep;
      (match san.Sanitizer.free ptr with
      | None -> Ok fresh
      | Some r -> Error r)
    | _ -> (
      (* wild / mid-object / stale pointer: let free's detector speak *)
      match san.Sanitizer.free ptr with
      | Some r -> Error r
      | None ->
        Error
          (Report.make ~kind:Report.Invalid_free ~addr:ptr ~size:0
             ~detected_by:san.Sanitizer.name))
